package apollo

// Benchmarks, one per paper artifact. Each benchmark exercises the code path
// that regenerates the corresponding table or figure at a per-iteration cost
// small enough for `go test -bench=.`:
//
//	Table 1 / Fig. 1  → analytic memory model evaluations
//	Table 2 / Fig. 5/6/7 → pre-training steps per optimizer
//	Table 3/8        → 8-bit and INT8-weight step costs
//	Table 7          → optimizer step time (the paper's measurement, here
//	                   measured for real on proxy-shaped parameters)
//	Fig. 9           → SVD refresh vs random-projection refresh cost
//	Table 10         → directional-sharpness probe
//
// Run the full generators with `go run ./cmd/apollo-bench -run all`.

import (
	"testing"

	"apollo/internal/bench"
	"apollo/internal/cluster"
	"apollo/internal/core"
	"apollo/internal/data"
	"apollo/internal/eval"
	"apollo/internal/linalg"
	"apollo/internal/memmodel"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/quant"
	"apollo/internal/tensor"
)

// benchModel returns a small model plus a ready batch for step benchmarks.
func benchModel(b *testing.B) (*nn.Model, []int, []int) {
	b.Helper()
	cfg := nn.Config{Vocab: 256, Dim: 48, Hidden: 128, Heads: 4, Layers: 3, MaxSeq: 64}
	model := nn.NewModel(cfg, tensor.NewRNG(1))
	src, err := data.NewSource(data.DefaultSourceConfig())
	if err != nil {
		b.Fatal(err)
	}
	corpus := data.NewCorpus(src, 1, 2)
	batch := corpus.NextTrainBatch(4, 32)
	return model, batch.Tokens, batch.Targets
}

func benchOptimizerStep(b *testing.B, opt optim.Optimizer) {
	b.Helper()
	model, tokens, targets := benchModel(b)
	model.Params().ZeroGrad()
	model.Loss(tokens, targets, 4, 32)
	opt.Step(model.Params().List()) // allocate state outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(model.Params().List())
	}
	b.ReportMetric(float64(opt.StateBytes()), "state-bytes")
}

// BenchmarkTable7StepAdamW..Fira measure optimizer step time — Table 7's
// quantity — on identical proxy parameters. The paper's shape (GaLore/Fira
// pay for projection+SVD; APOLLO ≈ AdamW) shows up in ns/op, with the
// amortized SVD visible in the GaLore/Fira numbers at refresh steps.
func BenchmarkTable7StepAdamW(b *testing.B) {
	benchOptimizerStep(b, optim.NewAdamW(optim.Hyper{LR: 1e-3}))
}

func BenchmarkTable7StepAPOLLO(b *testing.B) {
	benchOptimizerStep(b, core.New(optim.Hyper{LR: 1e-3}, core.Config{Rank: 12, UpdateGap: 200}))
}

func BenchmarkTable7StepAPOLLOMini(b *testing.B) {
	benchOptimizerStep(b, core.NewMini(optim.Hyper{LR: 1e-3}))
}

func BenchmarkTable7StepGaLore(b *testing.B) {
	benchOptimizerStep(b, optim.NewGaLore(optim.Hyper{LR: 1e-3},
		optim.LowRankConfig{Rank: 12, Projection: linalg.SVDProjection, UpdateGap: 200}))
}

func BenchmarkTable7StepFira(b *testing.B) {
	benchOptimizerStep(b, optim.NewFira(optim.Hyper{LR: 1e-3},
		optim.LowRankConfig{Rank: 12, Projection: linalg.SVDProjection, UpdateGap: 200}))
}

// BenchmarkTable2PretrainStep times one full train step (forward + backward
// + APOLLO update) — the unit of every Table 2 run.
func BenchmarkTable2PretrainStep(b *testing.B) {
	model, tokens, targets := benchModel(b)
	opt := core.New(optim.Hyper{LR: 1e-3}, core.Config{Rank: 12})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Params().ZeroGrad()
		model.Loss(tokens, targets, 4, 32)
		opt.Step(model.Params().List())
	}
}

// BenchmarkTable3EightBitStep times the 8-bit Adam step (Table 3 baseline).
func BenchmarkTable3EightBitStep(b *testing.B) {
	benchOptimizerStep(b, optim.NewAdam8bit(optim.Hyper{LR: 1e-3}, 1))
}

// BenchmarkTable8QuantRoundTrip times the INT8 weight round-trip that
// Q-APOLLO pays per step (Table 8).
func BenchmarkTable8QuantRoundTrip(b *testing.B) {
	rng := tensor.NewRNG(1)
	w := tensor.NewMatrixRand(256, 256, 0.1, rng)
	q := quant.NewTensor8(256, 256, quant.DefaultGroupSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.Quantize(q, w, rng)
		quant.Dequantize(q, w)
	}
}

// BenchmarkFig9SVDRefresh vs BenchmarkFig9RandomRefresh measure the
// projection-refresh costs behind Fig. 9's throughput spikes: a full SVD
// against regenerating a seeded Gaussian.
func BenchmarkFig9SVDRefresh(b *testing.B) {
	rng := tensor.NewRNG(1)
	g := tensor.NewMatrixRand(96, 96, 1, rng)
	pr := linalg.NewProjector(linalg.SVDProjection, 24, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Refresh(g)
	}
}

func BenchmarkFig9RandomRefresh(b *testing.B) {
	rng := tensor.NewRNG(1)
	g := tensor.NewMatrixRand(96, 96, 1, rng)
	pr := linalg.NewProjector(linalg.RandomProjection, 24, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Refresh(g)
	}
}

// BenchmarkFig1MemoryModel evaluates the full 7B memory plan (Fig. 1
// middle / Table 1 instantiation).
func BenchmarkFig1MemoryModel(b *testing.B) {
	cfg, err := memmodel.ConfigByName("7B")
	if err != nil {
		b.Fatal(err)
	}
	plan := memmodel.Plan{
		Config: cfg, Method: memmodel.MethodAPOLLOMini, Rank: 1,
		SeqLen: 256, MicroBatch: 1, Int8Weights: true, LayerWiseGrad: true, ActivationCkpt: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := memmodel.Compute(plan)
		if br.Total() <= 0 {
			b.Fatal("bad plan")
		}
	}
}

// BenchmarkFig1Throughput evaluates the cluster throughput model (Fig. 1
// right), including the feasibility search.
func BenchmarkFig1Throughput(b *testing.B) {
	cfg, err := memmodel.ConfigByName("7B")
	if err != nil {
		b.Fatal(err)
	}
	w := cluster.Workload{Config: cfg, Dev: cluster.A100_80G(), World: 8, SeqLen: 1024, GlobalBatch: 512, LayerWise: true}
	prof := cluster.ProfileAPOLLO(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tps, _ := cluster.Throughput(w, prof)
		if tps <= 0 {
			b.Fatal("no throughput")
		}
	}
}

// BenchmarkFig2Timeline simulates a training timeline segment (Fig. 2/9).
func BenchmarkFig2Timeline(b *testing.B) {
	cfg, err := memmodel.ConfigByName("1B")
	if err != nil {
		b.Fatal(err)
	}
	w := cluster.Workload{Config: cfg, Dev: cluster.A100_80G(), World: 1, SeqLen: 256, GlobalBatch: 4, Ckpt: true}
	prof := cluster.ProfileGaLore(512, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := cluster.SimulateTimeline(w, prof, 50)
		if len(tl) != 50 {
			b.Fatal("bad timeline")
		}
	}
}

// BenchmarkFig3StructuredStep times the channel-wise structured AdamW step
// (the Fig. 3 construction).
func BenchmarkFig3StructuredStep(b *testing.B) {
	benchOptimizerStep(b, core.NewStructuredAdamW(optim.Hyper{LR: 1e-3}, core.Channel))
}

// BenchmarkFig4ScalingProbe times one APOLLO step with the Fig. 4 scaling
// probe attached.
func BenchmarkFig4ScalingProbe(b *testing.B) {
	opt := core.New(optim.Hyper{LR: 1e-3}, core.Config{Rank: 12})
	probes := 0
	opt.ScalingProbe = func(string, []float64) { probes++ }
	benchOptimizerStep(b, opt)
}

// BenchmarkFig5RankSweepStep times APOLLO at rank 1 vs the default — the
// unit of Fig. 5d.
func BenchmarkFig5RankSweepStep(b *testing.B) {
	benchOptimizerStep(b, core.New(optim.Hyper{LR: 1e-3}, core.Config{Rank: 1, Granularity: core.Tensor}))
}

// BenchmarkFig6ForwardBackward isolates the substrate cost of the Fig. 6
// training curves: one forward+backward on the proxy-350M shape.
func BenchmarkFig6ForwardBackward(b *testing.B) {
	proxy, err := bench.ProxyByName("350M")
	if err != nil {
		b.Fatal(err)
	}
	model := proxy.NewProxyModel(1)
	corpus, err := bench.NewCorpus(2)
	if err != nil {
		b.Fatal(err)
	}
	batch := corpus.NextTrainBatch(proxy.Batch, proxy.Seq)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Params().ZeroGrad()
		model.Loss(batch.Tokens, batch.Targets, batch.B, batch.T)
	}
}

// BenchmarkFig7LongContext measures the 4× context forward+backward (the
// per-step unit of Fig. 7).
func BenchmarkFig7LongContext(b *testing.B) {
	proxy, err := bench.ProxyByName("350M")
	if err != nil {
		b.Fatal(err)
	}
	model := proxy.NewProxyModel(1)
	corpus, err := bench.NewCorpus(2)
	if err != nil {
		b.Fatal(err)
	}
	batch := corpus.NextTrainBatch(2, proxy.Seq*4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Params().ZeroGrad()
		model.Loss(batch.Tokens, batch.Targets, batch.B, batch.T)
	}
}

// BenchmarkTable4ZeroShotItem scores one multiple-choice item (Table 4's
// evaluation unit).
func BenchmarkTable4ZeroShotItem(b *testing.B) {
	src, err := data.NewSource(data.DefaultSourceConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := nn.Config{Vocab: 256, Dim: 32, Hidden: 88, Heads: 4, Layers: 2, MaxSeq: 64}
	model := nn.NewModel(cfg, tensor.NewRNG(1))
	items := data.GenerateMCTask(src, data.MCTaskConfig{
		Name: "bench", Items: 4, CtxLen: 16, ContLen: 6, Options: 4, Distractor: 0.5, Seed: 3,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.ZeroShotAccuracy(model, items[:1])
	}
}

// BenchmarkTable5FineTuneStep times one fine-tuning step with LoRA (the
// Table 5/6 unit).
func BenchmarkTable5FineTuneStep(b *testing.B) {
	model, tokens, targets := benchModel(b)
	opt := optim.NewFactorized(optim.Hyper{LR: 1e-3}, optim.FactorizedConfig{Mode: optim.ModeLoRA, Rank: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Params().ZeroGrad()
		model.Loss(tokens, targets, 4, 32)
		opt.Step(model.Params().List())
	}
}

// BenchmarkTable10Sharpness times the directional-sharpness probe.
func BenchmarkTable10Sharpness(b *testing.B) {
	model, tokens, targets := benchModel(b)
	model.Params().ZeroGrad()
	model.Loss(tokens, targets, 4, 32)
	dir := eval.UpdateDirection(model.Params().List(), func(ps []*nn.Param) {
		optim.NewSGD(optim.Hyper{LR: 1}, 0).Step(ps)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.DirectionalSharpness(model, dir, tokens, targets, 4, 32, 0.05)
	}
}

// Substrate micro-benchmarks: the kernels everything above is built on.

func BenchmarkMatMul256(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.NewMatrixRand(256, 256, 1, rng)
	y := tensor.NewMatrixRand(256, 256, 1, rng)
	out := tensor.NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
	b.SetBytes(int64(256 * 256 * 256 * 2 * 4))
}

func BenchmarkSVD96(b *testing.B) {
	rng := tensor.NewRNG(1)
	g := tensor.NewMatrixRand(96, 96, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.SVD(g)
	}
}

func BenchmarkGaussianProjection(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.GaussianProjection(24, 96, uint64(i))
	}
}

func BenchmarkCorpusBatch(b *testing.B) {
	src, err := data.NewSource(data.DefaultSourceConfig())
	if err != nil {
		b.Fatal(err)
	}
	corpus := data.NewCorpus(src, 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus.NextTrainBatch(8, 32)
	}
}
