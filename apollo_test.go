package apollo

import (
	"math"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end: the documented
// three-line training flow must work and reduce perplexity.
func TestFacadeQuickstart(t *testing.T) {
	cfg := ModelConfig{Vocab: 64, Dim: 16, Hidden: 32, Heads: 2, Layers: 2, MaxSeq: 32}
	corpus, err := NewCorpus(cfg.Vocab, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(cfg, 7)
	opt := NewMini(Hyper{LR: 0.01})
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 4, Seq: 16, Steps: 60,
		Schedule: WarmupCosine(0.01, 60),
	})
	if res.Optimizer != "APOLLO-Mini" {
		t.Fatalf("optimizer name %q", res.Optimizer)
	}
	if math.IsNaN(res.FinalValPPL) || res.FinalValPPL >= 64 {
		t.Fatalf("final ppl %v not below uniform", res.FinalValPPL)
	}
}

func TestFacadeAPOLLOConfig(t *testing.T) {
	opt := New(Hyper{LR: 0.01}, Config{Rank: 4, Granularity: Channel})
	if opt.Name() != "APOLLO" {
		t.Fatalf("name %q", opt.Name())
	}
	if opt.Config().Scale != 1 {
		t.Fatalf("channel default scale %v want 1", opt.Config().Scale)
	}
	mini := NewMini(Hyper{LR: 0.01})
	if got := mini.Config().Scale; math.Abs(got-math.Sqrt(128)) > 1e-9 {
		t.Fatalf("mini default scale %v want √128", got)
	}
	svd := New(Hyper{LR: 0.01}, Config{Rank: 4, Projection: SVDProjection})
	if svd.Name() != "APOLLO w. SVD" {
		t.Fatalf("svd name %q", svd.Name())
	}
}

func TestFacadeBaselines(t *testing.T) {
	for _, opt := range []Optimizer{
		NewAdamW(Hyper{LR: 0.01}),
		NewSGD(Hyper{LR: 0.01}, 0.9),
	} {
		if opt.Name() == "" {
			t.Fatal("empty name")
		}
		if opt.LR() != 0.01 {
			t.Fatalf("LR %v", opt.LR())
		}
	}
}

// TestFacadeCheckpoint exercises the public checkpoint surface: save at
// step K through the training loop, resume via the facade helpers, and
// match the uninterrupted run bit-for-bit.
func TestFacadeCheckpoint(t *testing.T) {
	cfg := ModelConfig{Vocab: 64, Dim: 16, Hidden: 32, Heads: 2, Layers: 2, MaxSeq: 32}
	pcfg := PretrainConfig{Batch: 4, Seq: 16, Steps: 12, Schedule: WarmupCosine(0.01, 12)}
	setup := func() (*Model, *Corpus) {
		corpus, err := NewCorpus(cfg.Vocab, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return NewModel(cfg, 7), corpus
	}

	refModel, refCorpus := setup()
	ref := Pretrain(refModel, NewMini(Hyper{LR: 0.01}), refCorpus, pcfg)

	path := t.TempDir() + "/run.ckpt"
	halfModel, halfCorpus := setup()
	halfCfg := pcfg
	halfCfg.Steps = 6
	halfCfg.CkptEvery = 6
	halfCfg.CkptPath = path
	Pretrain(halfModel, NewMini(Hyper{LR: 0.01}), halfCorpus, halfCfg)

	st, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resModel, resCorpus := setup()
	resOpt := NewMini(Hyper{LR: 0.01})
	if err := RestoreCheckpoint(st, resModel, resOpt, resCorpus); err != nil {
		t.Fatal(err)
	}
	resCfg := pcfg
	resCfg.StartStep = st.Step
	got := Pretrain(resModel, resOpt, resCorpus, resCfg)
	if got.FinalValPPL != ref.FinalValPPL {
		t.Fatalf("resumed ppl %v != straight %v", got.FinalValPPL, ref.FinalValPPL)
	}
	refParams := refModel.Params().List()
	for i, p := range resModel.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs after resume", p.Name)
		}
	}
	if err := SaveCheckpoint(path, got.Steps, resModel, resOpt, resCorpus); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeZeRO exercises the sharded-optimizer surface: a ZeRO-wrapped
// AdamW under DPPretrain must reproduce the plain single-replica run
// bit-for-bit while reporting per-replica state footprints.
func TestFacadeZeRO(t *testing.T) {
	cfg := ModelConfig{Vocab: 64, Dim: 16, Hidden: 32, Heads: 2, Layers: 2, MaxSeq: 32}
	run := func(opt Optimizer, replicas int) Result {
		corpus, err := NewCorpus(cfg.Vocab, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		model := NewModel(cfg, 7)
		return DPPretrain(model, opt, corpus, DPConfig{
			PretrainConfig: PretrainConfig{Batch: 4, Seq: 16, Steps: 10},
			Replicas:       replicas,
		})
	}
	plain := run(NewAdamW(Hyper{LR: 0.01}), 1)
	sharded := run(NewZeRO(func() Optimizer { return NewAdamW(Hyper{LR: 0.01}) }, 4), 4)
	if sharded.FinalValPPL != plain.FinalValPPL {
		t.Fatalf("zero ppl %v != plain %v", sharded.FinalValPPL, plain.FinalValPPL)
	}
	if len(sharded.ReplicaStateBytes) != 4 {
		t.Fatalf("replica state entries %d", len(sharded.ReplicaStateBytes))
	}
	var sum int64
	for _, b := range sharded.ReplicaStateBytes {
		sum += b
	}
	if sum != plain.StateBytes {
		t.Fatalf("sharded state sum %d != unsharded %d", sum, plain.StateBytes)
	}
}
