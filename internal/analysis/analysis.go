// Package analysis is a self-contained, stdlib-only static-analysis
// framework modeled on golang.org/x/tools/go/analysis, scoped to what the
// apollo contract linters need: an Analyzer is a named Run function over a
// type-checked package (a Pass), reporting Diagnostics at token positions.
//
// The repo's three load-bearing invariants are defended by convention and
// parity tests; the analyzers in the sibling packages (mapiter, floateq,
// obsguard, closecheck) turn them into compile-time checks:
//
//   - numeric bit-parity: `-replicas N -zero` ≡ `-replicas 1`
//     float-for-float, served == offline char-for-char (mapiter, floateq)
//   - the obs nil-handle cost contract: nil registry → nil handles → one
//     predictable branch per event when disabled (obsguard)
//   - the crash-honest ledger: every exit path recorded, every writer
//     flushed, no silently dropped Close/Flush errors (closecheck)
//
// Suppression is explicit and justified: a finding is silenced only by an
// `//apollo:<directive> <justification>` comment on the offending line (or
// the line above, or the enclosing declaration's doc comment). A directive
// with an empty justification is itself a diagnostic — the point is a
// reviewable paper trail, not a mute button.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in CLI flags, JSON output
	// and diagnostics.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources (comments retained).
	Files []*ast.File
	// PkgPath is the canonical import path: for a test-augmented package
	// variant this is the path of the package under test, without the
	// go list "[pkg.test]" decoration.
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	report     func(Diagnostic)
	directives map[string][]directive // filename → line-sorted directives
}

// NewPass assembles a pass; the driver and the analysistest harness both
// build passes through here so directive indexing stays consistent.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkgPath string,
	pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		PkgPath:  pkgPath,
		Pkg:      pkg,
		Info:     info,
		report:   report,
	}
	p.indexDirectives()
	return p
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //apollo:<name> comment.
type directive struct {
	line   int
	name   string
	reason string
}

// DirectivePrefix introduces every suppression comment.
const DirectivePrefix = "//apollo:"

// parseDirective decodes one comment; ok is false for ordinary comments.
func parseDirective(c *ast.Comment) (name, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	name, reason, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(reason), true
}

func (p *Pass) indexDirectives() {
	p.directives = map[string][]directive{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.directives[pos.Filename] = append(p.directives[pos.Filename],
					directive{line: pos.Line, name: name, reason: reason})
			}
		}
	}
	for _, ds := range p.directives {
		sort.Slice(ds, func(i, j int) bool { return ds[i].line < ds[j].line })
	}
}

// Directive looks for an //apollo:<name> comment attached to the statement
// at pos: on the same line or on the line immediately above. It returns the
// justification text and whether the directive was found at all — a found
// directive with an empty reason is the caller's cue to demand one.
func (p *Pass) Directive(pos token.Pos, name string) (reason string, found bool) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.name != name {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			return d.reason, true
		}
	}
	return "", false
}

// DocDirective looks for the directive inside a declaration's doc comment.
func (p *Pass) DocDirective(doc *ast.CommentGroup, name string) (reason string, found bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		n, r, ok := parseDirective(c)
		if ok && n == name {
			return r, true
		}
	}
	return "", false
}

// Suppressed resolves the standard three-way outcome for a finding at pos
// governed by //apollo:<name>: directive present with a justification →
// suppressed; present without one → a "missing justification" diagnostic;
// absent → not suppressed. docs, when non-nil, are also searched (for
// declaration-level directives).
func (p *Pass) Suppressed(pos token.Pos, name string, docs ...*ast.CommentGroup) bool {
	reason, found := p.Directive(pos, name)
	if !found {
		for _, doc := range docs {
			if reason, found = p.DocDirective(doc, name); found {
				break
			}
		}
	}
	if !found {
		return false
	}
	if reason == "" {
		p.Reportf(pos, "%s%s requires a justification: write %s%s <why this is safe>",
			DirectivePrefix, name, DirectivePrefix, name)
		return true // the bare directive diagnostic replaces the original finding
	}
	return true
}

// MatchPath reports whether an import path matches any pattern. Patterns
// are exact import paths, or a prefix ending in "/..." matching the prefix
// itself and everything below it.
func MatchPath(path string, patterns []string) bool {
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
			continue
		}
		if path == pat {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file at pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf is Info.TypeOf with a nil guard for robustness on partially
// checked code.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}
