package mapiter_test

import (
	"testing"

	"apollo/internal/analysis/analysistest"
	"apollo/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "../testdata/mapiter", mapiter.Analyzer)
}
