// Package mapiter flags `range` over maps in determinism-critical
// packages. Go map iteration order is deliberately randomized, so a map
// range anywhere on a path whose results reach bytes on disk, the wire, or
// floating-point accumulation order is the classic silent bit-parity
// killer: state gather/save, projector-seed walks and all-reduce layouts
// must traverse in a sorted or index-derived order.
//
// Allowed without annotation:
//
//   - `for range m` / `for k := range m { keys = append(keys, k) }` — the
//     canonical collect-then-sort idiom; collecting keys is order-free
//     because the caller sorts before use (the analyzer cannot see the
//     sort, but the collect loop itself cannot leak order into anything
//     but the slice).
//   - map ranges in _test.go files: assertions are order-insensitive by
//     construction, and the parity tests are the runtime backstop.
//
// Every other map range needs `//apollo:orderfree <justification>` on the
// statement (or the line above) explaining why iteration order cannot
// reach observable bytes — e.g. an exact integer sum, or writes into
// another map.
package mapiter

import (
	"go/ast"
	"go/types"

	"apollo/internal/analysis"
)

// Config scopes the check.
type Config struct {
	// Packages are the determinism-critical import paths (exact or
	// prefix/...); only code in these packages is checked.
	Packages []string
}

// DefaultConfig covers the packages where iteration order can reach
// checkpoint bytes, the DP wire format, or float accumulation order.
var DefaultConfig = Config{
	Packages: []string{
		"apollo/internal/optim",
		"apollo/internal/zero",
		"apollo/internal/ckpt",
		"apollo/internal/train",
		"apollo/internal/tensor",
		"apollo/internal/linalg",
	},
}

// Directive is the suppression annotation name.
const Directive = "orderfree"

// Analyzer is the default-configured instance.
var Analyzer = New(DefaultConfig)

// New builds the analyzer for a custom package scope (used by the
// fixture tests).
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "mapiter",
		Doc: "flags range over maps in determinism-critical packages: iteration order is " +
			"randomized and silently breaks the bit-parity contract on state gather/save paths",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.MatchPath(pass.PkgPath, cfg.Packages) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if pass.IsTestFile(rs.Pos()) {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderCannotEscape(rs, pass) {
					return true
				}
				if pass.Suppressed(rs.Pos(), Directive) {
					return true
				}
				pass.Reportf(rs.Pos(),
					"range over map %s in determinism-critical package %s: iteration order is randomized; "+
						"iterate sorted keys (collect, sort.Strings/Slice, then index) or annotate //apollo:%s <justification>",
					types.ExprString(rs.X), pass.PkgPath, Directive)
				return true
			})
		}
		return nil
	}
	return a
}

// orderCannotEscape recognizes the loop shapes whose observable effect is
// independent of iteration order without needing an annotation.
func orderCannotEscape(rs *ast.RangeStmt, pass *analysis.Pass) bool {
	// `for range m` binds nothing: order cannot be observed at all.
	if rs.Key == nil && rs.Value == nil {
		return true
	}
	// The collect-keys idiom: exactly `keys = append(keys, k)`, the
	// pre-sort half of collect-then-sort.
	if rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok.String() != "=" || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if obj, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin || obj.Name() != "append" {
		return false
	}
	// append's destination must be the assignment target...
	dst, ok := asg.Lhs[0].(*ast.Ident)
	arg0, ok2 := call.Args[0].(*ast.Ident)
	if !ok || !ok2 || pass.Info.Uses[arg0] == nil ||
		pass.Info.ObjectOf(dst) != pass.Info.Uses[arg0] {
		return false
	}
	// ...and the appended element must be the range key itself.
	arg1, ok := call.Args[1].(*ast.Ident)
	return ok && pass.Info.Uses[arg1] == pass.Info.ObjectOf(key)
}
