// Package vet is the multichecker core shared by cmd/apollo-vet and its
// tests: it loads packages once, runs every enabled analyzer over each
// analysis target, and returns position-sorted diagnostics.
package vet

import (
	"sort"

	"apollo/internal/analysis"
	"apollo/internal/analysis/closecheck"
	"apollo/internal/analysis/floateq"
	"apollo/internal/analysis/load"
	"apollo/internal/analysis/mapiter"
	"apollo/internal/analysis/obsguard"
)

// Suite lists every contract analyzer in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		floateq.Analyzer,
		obsguard.Analyzer,
		closecheck.Analyzer,
	}
}

// Run loads patterns under cfg and applies the analyzers to every target
// package. Diagnostics come back sorted by file, line, column, analyzer —
// deterministic across runs, which the CI gate diffs against.
func Run(cfg load.Config, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Diagnostic, error) {
	res, err := load.Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	return RunOnResult(res, analyzers), nil
}

// RunOnResult applies the analyzers to an already-loaded result.
func RunOnResult(res *load.Result, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	seen := map[analysis.Diagnostic]bool{}
	report := func(d analysis.Diagnostic) {
		if !seen[d] { // test variants re-check non-test files; dedupe
			seen[d] = true
			diags = append(diags, d)
		}
	}
	for _, pkg := range res.Targets() {
		for _, a := range analyzers {
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.PkgPath, pkg.Types, pkg.Info, report)
			if err := a.Run(pass); err != nil {
				report(analysis.Diagnostic{
					Analyzer: a.Name,
					File:     pkg.Dir,
					Message:  "analyzer failed: " + err.Error(),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
