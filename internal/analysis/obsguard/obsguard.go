// Package obsguard structurally pins the obs nil-handle cost contract:
// a nil *Registry hands out nil handles, and every operation on a nil
// handle must cost exactly one predictable branch. That only holds if
// every exported pointer-receiver method on a handle type starts with a
// nil-receiver guard — one stray method without it turns "observability
// disabled" into a panic at the first hot-path event.
//
// The accepted guard shapes, as the first statement of the method body:
//
//	if h == nil { ... return ... }        // early return (any results)
//	return h != nil && <rest>             // single-expression predicates
//	return h == nil || <rest>
//
// Methods that intentionally break the contract (none today) carry
// `//apollo:noguard <justification>`.
package obsguard

import (
	"go/ast"
	"go/token"

	"apollo/internal/analysis"
)

// Config maps package import paths to the handle type names whose exported
// pointer-receiver methods must guard.
type Config struct {
	HandleTypes map[string][]string
}

// DefaultConfig lists every nil-safe handle type the obs layer hands out.
var DefaultConfig = Config{
	HandleTypes: map[string][]string{
		"apollo/internal/obs": {
			"Registry", "Counter", "Gauge", "Histogram", "HistogramWindow",
			"Tracer", "Span", "JSONLWriter", "TrainRecorder",
		},
		"apollo/internal/obs/runlog":  {"Run", "Watchdog"},
		"apollo/internal/obs/memprof": {"Profiler"},
	},
}

// Directive is the suppression annotation name.
const Directive = "noguard"

// Analyzer is the default-configured instance.
var Analyzer = New(DefaultConfig)

// New builds the analyzer for a custom handle-type map (used by the
// fixture tests).
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "obsguard",
		Doc: "verifies every exported pointer-receiver method on obs handle types begins with a " +
			"nil-receiver guard, pinning the nil-registry → nil-handles → one-branch cost contract",
	}
	a.Run = func(pass *analysis.Pass) error {
		typeNames := cfg.HandleTypes[pass.PkgPath]
		if len(typeNames) == 0 {
			return nil
		}
		guarded := map[string]bool{}
		for _, n := range typeNames {
			guarded[n] = true
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				if pass.IsTestFile(fd.Pos()) {
					continue // in-package test helpers are not part of the handle API
				}
				recvName, typeName, isPtr := receiver(fd)
				if !isPtr || !guarded[typeName] {
					continue
				}
				if hasNilGuard(fd, recvName) {
					continue
				}
				if pass.Suppressed(fd.Pos(), Directive, fd.Doc) {
					continue
				}
				pass.Reportf(fd.Name.Pos(),
					"exported method (*%s).%s lacks a leading nil-receiver guard: the obs cost contract "+
						"requires `if %s == nil { return ... }` as the first statement (or //apollo:%s <justification>)",
					typeName, fd.Name.Name, recvNameOr(recvName, "recv"), Directive)
			}
		}
		return nil
	}
	return a
}

func recvNameOr(name, fallback string) string {
	if name == "" {
		return fallback
	}
	return name
}

// receiver extracts the receiver identifier and named type of a method.
func receiver(fd *ast.FuncDecl) (recvName, typeName string, isPtr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		isPtr = true
		t = star.X
	}
	// Strip generic instantiations (Type[T]).
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName, isPtr
}

// hasNilGuard reports whether the method's first statement is one of the
// accepted nil-receiver guard shapes.
func hasNilGuard(fd *ast.FuncDecl, recvName string) bool {
	// An unnamed (or blank) receiver cannot be dereferenced by the body,
	// so the nil case is trivially safe for any body that compiles without
	// touching it; still require a named receiver for guarded types to
	// keep the contract greppable — except for empty bodies.
	if recvName == "" || recvName == "_" {
		return len(fd.Body.List) == 0
	}
	if len(fd.Body.List) == 0 {
		return true // nothing to guard
	}
	switch first := fd.Body.List[0].(type) {
	case *ast.IfStmt:
		// if recv == nil { ...; return ... } — possibly widened with
		// further disjuncts (`if recv == nil || other { return }`), which
		// short-circuit left-to-right and keep the nil case first.
		if first.Init != nil || !hasNilDisjunct(first.Cond, recvName) {
			return false
		}
		if n := len(first.Body.List); n > 0 {
			_, isReturn := first.Body.List[n-1].(*ast.ReturnStmt)
			return isReturn
		}
		return false
	case *ast.ReturnStmt:
		// return recv != nil && ... / return recv == nil || ...
		for _, res := range first.Results {
			if exprContainsNilCheck(res, recvName) {
				return true
			}
		}
		return false
	}
	return false
}

// hasNilDisjunct reports whether cond is `recv == nil` or an || chain
// containing it as a disjunct.
func hasNilDisjunct(cond ast.Expr, recvName string) bool {
	if isNilCheck(cond, recvName, token.EQL) {
		return true
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.LOR {
		return false
	}
	return hasNilDisjunct(be.X, recvName) || hasNilDisjunct(be.Y, recvName)
}

// isNilCheck matches `name <op> nil` (either operand order).
func isNilCheck(e ast.Expr, name string, op token.Token) bool {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return false
	}
	return (isIdent(be.X, name) && isIdent(be.Y, "nil")) ||
		(isIdent(be.Y, name) && isIdent(be.X, "nil"))
}

func exprContainsNilCheck(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			if isNilCheck(be, name, token.EQL) || isNilCheck(be, name, token.NEQ) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
