package obsguard_test

import (
	"testing"

	"apollo/internal/analysis/analysistest"
	"apollo/internal/analysis/obsguard"
)

func TestObsguard(t *testing.T) {
	analysistest.Run(t, "../testdata/obsguard", obsguard.Analyzer)
}
