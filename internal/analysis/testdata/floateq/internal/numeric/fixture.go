// Package numeric is a floateq fixture; the analyzer's default
// configuration checks every package.
package numeric

// Eq compares floats exactly without saying so: flagged.
func Eq(a, b float64) bool {
	return a == b // want `float == comparison`
}

// Neq on float32: flagged.
func Neq(a, b float32) bool {
	return a != b // want `float != comparison`
}

// SentinelMixed compares a float against an untyped constant: flagged.
func SentinelMixed(x float64) bool {
	return x == 0 // want `float == comparison`
}

// Ints are not floats.
func Ints(a, b int) bool {
	return a == b
}

// Tolerant compares with an epsilon: ordering operators are fine.
func Tolerant(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// Annotated carries a line-level justification: suppressed.
func Annotated(a, b float64) bool {
	return a == b //apollo:exactfloat parity check; bitwise equality is the point
}

// EqualSlices is an explicitly-exact helper: the doc directive exempts
// every comparison in its body.
//
//apollo:exactfloat bitwise slice equality is this helper's contract
func EqualSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

//apollo:exactfloat
func Bare(a, b float64) bool {
	return a == b // want `//apollo:exactfloat requires a justification`
}
