package numeric

import "testing"

// Test files compare floats exactly by design: exempt.
func TestExactEquality(t *testing.T) {
	if got := 1.0 + 2.0; got != 3.0 {
		t.Fatal(got)
	}
}
