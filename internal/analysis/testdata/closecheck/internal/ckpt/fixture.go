// Package ckpt is a fixture: it lives at a crash-honest-writer import path
// from closecheck's default configuration.
package ckpt

// W is a writer stand-in with the tracked cleanup methods.
type W struct {
	closed bool
}

// Close implements the tracked signature: exactly one error result.
func (w *W) Close() error {
	w.closed = true
	return nil
}

// Flush is also tracked.
func (w *W) Flush() error {
	return nil
}

// Stop returns an error but is not a tracked method name.
func (w *W) Stop() error {
	return nil
}

// Sync has the tracked name but not the one-error signature.
func (w *W) Sync() (int, error) {
	return 0, nil
}

func discardExpr(w *W) {
	w.Close() // want `w.Close error discarded \(result ignored\)`
}

func discardDefer(w *W) {
	defer w.Close() // want `w.Close error discarded \(deferred without error handling\)`
}

func discardGo(w *W) {
	go w.Flush() // want `w.Flush error discarded \(goroutine result unobservable\)`
}

func discardBlank(w *W) {
	_ = w.Close() // want `w.Close error discarded \(assigned to blank\)`
}

func checked(w *W) error {
	if err := w.Close(); err != nil {
		return err
	}
	return nil
}

func returned(w *W) error {
	return w.Close()
}

func annotated(w *W) {
	w.Close() //apollo:allowdiscard fixture writer holds no buffered bytes
}

func bare(w *W) {
	//apollo:allowdiscard
	w.Close() // want `//apollo:allowdiscard requires a justification`
}

func untrackedName(w *W) {
	w.Stop()
}

func untrackedSignature(w *W) {
	w.Sync()
}

var (
	_ = discardExpr
	_ = discardDefer
	_ = discardGo
	_ = discardBlank
	_ = checked
	_ = returned
	_ = annotated
	_ = bare
	_ = untrackedName
	_ = untrackedSignature
)
