// Package scratch is outside closecheck's configured scope: discards here
// are unchecked.
package scratch

// W mirrors the tracked signature.
type W struct{}

// Close returns an error nobody is required to look at here.
func (w *W) Close() error {
	return nil
}

func discard(w *W) {
	w.Close()
}

var _ = discard
