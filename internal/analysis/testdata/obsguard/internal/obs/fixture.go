// Package obs is a fixture standing in for the real handle package: the
// type names below appear in obsguard's default configuration for
// apollo/internal/obs.
package obs

// Counter is a nil-safe handle type.
type Counter struct {
	n int64
}

// Add starts with the canonical guard: clean.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n += delta
}

// Value guards and returns a zero value: clean.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Enabled is the single-expression predicate shape: clean.
func (c *Counter) Enabled() bool {
	return c != nil && c.n >= 0
}

// Inc forgets the guard: a nil Counter panics at the first event.
func (c *Counter) Inc() { // want `exported method \(\*Counter\).Inc lacks a leading nil-receiver guard`
	c.n++
}

// Gauge is also a configured handle type.
type Gauge struct {
	v float64
}

// Set widens the guard with a second disjunct; short-circuit evaluation
// keeps the nil case first: clean.
func (g *Gauge) Set(v float64) {
	if g == nil || v < 0 {
		return
	}
	g.v = v
}

// reset is unexported: not part of the handle API.
func (g *Gauge) reset() {
	g.v = 0
}

// Snapshot has a value receiver: it cannot observe a nil handle.
func (g Gauge) Snapshot() float64 {
	return g.v
}

// LateGuard checks nil, but not as the first statement: flagged — the
// statement before the guard already dereferences.
func (g *Gauge) LateGuard(v float64) { // want `lacks a leading nil-receiver guard`
	g.v = v
	if g == nil {
		return
	}
}

var _ = (&Gauge{}).reset

// Tracer is configured; its methods opt out explicitly.
type Tracer struct {
	on bool
}

// Start opts out with a justification: suppressed.
//
//apollo:noguard fixture type is constructed locally and never handed out nil
func (t *Tracer) Start() {
	t.on = true
}

//apollo:noguard
func (t *Tracer) Stop() { // want `//apollo:noguard requires a justification`
	t.on = false
}

// helper is not a configured handle type: no guard required.
type helper struct {
	n int
}

// Bump dereferences freely.
func (h *helper) Bump() {
	h.n++
}

var _ = (&helper{}).Bump
