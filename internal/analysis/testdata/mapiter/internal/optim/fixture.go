// Package optim is a fixture: it lives at a determinism-critical import
// path from mapiter's default configuration.
package optim

import "sort"

// SumFloats accumulates floats in map order: the classic parity killer.
func SumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map m in determinism-critical package apollo/internal/optim`
		total += v
	}
	return total
}

// SumAnnotated carries a justified suppression: no diagnostic.
func SumAnnotated(m map[string]int64) int64 {
	var total int64
	for _, v := range m { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += v
	}
	return total
}

// SumBare carries the directive without a justification: the suppression
// itself becomes the finding.
func SumBare(m map[string]int64) int64 {
	var total int64
	//apollo:orderfree
	for _, v := range m { // want `//apollo:orderfree requires a justification`
		total += v
	}
	return total
}

// CountOnly binds nothing: order cannot be observed.
func CountOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SortedKeys is the canonical collect-then-sort idiom: the collect half is
// recognized and allowed without annotation.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SliceRange is not a map range at all.
func SliceRange(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

// AlmostCollect binds the key but does more than collect: flagged.
func AlmostCollect(m map[string]int) []string {
	var keys []string
	n := 0
	for k := range m { // want `range over map m`
		keys = append(keys, k)
		n++
	}
	_ = n
	return keys
}
