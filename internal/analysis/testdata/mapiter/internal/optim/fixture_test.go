package optim

import "testing"

// Test files are exempt: assertions are order-insensitive by construction.
func TestMapRangeAllowed(t *testing.T) {
	m := map[string]float64{"a": 1, "b": 2}
	var total float64
	for _, v := range m {
		total += v
	}
	if total != 3 {
		t.Fatal(total)
	}
}
