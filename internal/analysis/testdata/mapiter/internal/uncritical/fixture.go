// Package uncritical is outside mapiter's configured scope: map iteration
// here is unchecked.
package uncritical

// Sum ranges a map freely.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
