// Package floateq flags `==` and `!=` between floating-point operands.
// Almost every float equality in numeric code is a latent bug — a value
// that arrives via a different (but mathematically equal) operation order
// compares unequal — and the few places where bitwise equality IS the
// point (parity checks, CRC-covered decode verification, bucket-layout
// identity) must say so out loud.
//
// Exempt without annotation: _test.go files — the parity suites compare
// floats for exact equality by design, it is their entire job.
//
// Everything else needs `//apollo:exactfloat <justification>` on the
// comparison (or the line above, or in the enclosing function's doc
// comment to exempt a whole explicitly-exact helper).
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"apollo/internal/analysis"
)

// Config scopes the check.
type Config struct {
	// Packages limits the check when non-empty; empty means every
	// analyzed package.
	Packages []string
}

// DefaultConfig checks the whole module.
var DefaultConfig = Config{}

// Directive is the suppression annotation name.
const Directive = "exactfloat"

// Analyzer is the default-configured instance.
var Analyzer = New(DefaultConfig)

// New builds the analyzer (package scoping is used by the fixture tests).
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "floateq",
		Doc: "flags ==/!= on floating-point operands outside _test.go: exact float equality is " +
			"either a bug or a parity check, and parity checks must be annotated as exact on purpose",
	}
	a.Run = func(pass *analysis.Pass) error {
		if len(cfg.Packages) > 0 && !analysis.MatchPath(pass.PkgPath, cfg.Packages) {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				// The enclosing declaration's doc comment can carry the
				// directive to exempt a whole explicitly-exact helper.
				var doc *ast.CommentGroup
				if fd, ok := decl.(*ast.FuncDecl); ok {
					doc = fd.Doc
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
						return true
					}
					if pass.IsTestFile(be.Pos()) {
						return true
					}
					if pass.Suppressed(be.OpPos, Directive, doc) {
						return true
					}
					pass.Reportf(be.OpPos,
						"float %s comparison: exact float equality breaks under reassociation; "+
							"compare with a tolerance, or annotate //apollo:%s <justification> if bitwise equality is the point",
						be.Op, Directive)
					return true
				})
			}
		}
		return nil
	}
	return a
}

// isFloat reports whether t's underlying type is a float or complex kind
// (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
