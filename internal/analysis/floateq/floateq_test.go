package floateq_test

import (
	"testing"

	"apollo/internal/analysis/analysistest"
	"apollo/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "../testdata/floateq", floateq.Analyzer)
}
