// Package closecheck flags discarded error results from Close, Flush,
// Sync and Finalize calls in the packages that own the crash-honest
// writers: the run ledger, checkpoint files and telemetry streams promise
// that every exit path is recorded and every writer flushed, and that
// promise dies silently the first time a Close error is dropped — the
// bytes never hit the disk and nothing ever says so.
//
// A call is flagged when every result is discarded: a bare expression
// statement, a defer/go statement, or an assignment with only blank
// targets (`_ = f.Close()` drops the crash-honest evidence just as
// thoroughly as not assigning it).
//
// The fix is to check the error — or, for emitters with no caller in a
// position to act (mirroring obs.JSONLWriter.Emit), to route it into
// obs.CountWriteError so apollo_obs_write_errors_total accounts for it.
// Genuinely inconsequential discards (closing a file opened read-only
// after a successful read) carry `//apollo:allowdiscard <justification>`.
//
// _test.go files are exempt: tests close fixtures constantly and a leaked
// test-file close error fails no contract.
package closecheck

import (
	"go/ast"
	"go/types"

	"apollo/internal/analysis"
)

// Config scopes the check.
type Config struct {
	// Packages are the import paths (exact or prefix/...) owning
	// crash-honest writers.
	Packages []string
	// Methods are the error-returning cleanup methods to track.
	Methods []string
}

// DefaultConfig covers the ledger/checkpoint/telemetry writer packages and
// the CLIs that open their output files.
var DefaultConfig = Config{
	Packages: []string{
		"apollo/internal/obs",
		"apollo/internal/obs/runlog",
		"apollo/internal/obs/memprof",
		"apollo/internal/ckpt",
		"apollo/internal/serve",
		"apollo/internal/bench",
		"apollo/cmd/...",
	},
	Methods: []string{"Close", "Flush", "Sync", "Finalize"},
}

// Directive is the suppression annotation name.
const Directive = "allowdiscard"

// Analyzer is the default-configured instance.
var Analyzer = New(DefaultConfig)

// New builds the analyzer for a custom scope (used by the fixture tests).
func New(cfg Config) *analysis.Analyzer {
	methods := map[string]bool{}
	for _, m := range cfg.Methods {
		methods[m] = true
	}
	a := &analysis.Analyzer{
		Name: "closecheck",
		Doc: "flags discarded errors from Close/Flush/Sync/Finalize on ledger, checkpoint and " +
			"telemetry writers: the crash-honest contract requires every writer flush to be checked or accounted",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.MatchPath(pass.PkgPath, cfg.Packages) {
			return nil
		}
		check := func(call *ast.CallExpr, how string) {
			name, ok := cleanupMethod(pass, call, methods)
			if !ok {
				return
			}
			if pass.IsTestFile(call.Pos()) {
				return
			}
			if pass.Suppressed(call.Pos(), Directive) {
				return
			}
			pass.Reportf(call.Pos(),
				"%s error discarded (%s): the crash-honest contract requires checking writer cleanup errors "+
					"— handle it, route it into obs.CountWriteError, or annotate //apollo:%s <justification>",
				name, how, Directive)
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						check(call, "result ignored")
					}
				case *ast.DeferStmt:
					check(st.Call, "deferred without error handling")
				case *ast.GoStmt:
					check(st.Call, "goroutine result unobservable")
				case *ast.AssignStmt:
					if len(st.Rhs) != 1 || !allBlank(st.Lhs) {
						return true
					}
					if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
						check(call, "assigned to blank")
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// cleanupMethod reports whether call is `recv.M(...)` for a tracked method
// M whose signature returns exactly one error.
func cleanupMethod(pass *analysis.Pass, call *ast.CallExpr, methods map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !methods[sel.Sel.Name] {
		return "", false
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return "", false
	}
	if pass.Info.Selections[sel] == nil {
		// Package-qualified function calls (pkg.Close(...)) are out of
		// scope; only method calls carry the writer contract.
		return "", false
	}
	if sig.Results().Len() != 1 ||
		!types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return types.ExprString(sel.X) + "." + sel.Sel.Name, true
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
