package closecheck_test

import (
	"testing"

	"apollo/internal/analysis/analysistest"
	"apollo/internal/analysis/closecheck"
)

func TestClosecheck(t *testing.T) {
	analysistest.Run(t, "../testdata/closecheck", closecheck.Analyzer)
}
