// Package analysistest runs analyzers over fixture modules and checks their
// diagnostics against expectations written in the fixtures themselves, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `range over map`
//
// A `// want "re1" "re2"` comment expects exactly the listed diagnostics on
// its own line, each matching the (unanchored) regexp. Lines without a want
// comment expect no diagnostics. Expectation strings may be quoted ("...")
// or backquoted (`...`).
//
// Fixtures are miniature modules under testdata/<analyzer>/ with their own
// `go.mod` declaring `module apollo`, so analyzer default configurations —
// which key on apollo/... import paths — apply to fixture code verbatim.
// The testdata/ location keeps them invisible to the repo's own `./...`
// patterns (build, test, vet and apollo-vet itself all skip testdata).
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"apollo/internal/analysis"
	"apollo/internal/analysis/load"
	"apollo/internal/analysis/vet"
)

// expectation is one want entry: a compiled pattern at a file:line.
type expectation struct {
	file    string // absolute path
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE captures the expectation list after a want marker.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture module rooted at dir (relative paths resolve against
// the test's working directory), applies the analyzers to every package in
// it, and fails t on any mismatch between reported diagnostics and the
// fixtures' want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants, err := parseWants(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	diags, err := vet.Run(load.Config{Dir: abs, IncludeTests: true}, analyzers, "./...")
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation satisfied by d.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Line || w.file != d.File {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants scans every fixture .go file for want comments.
func parseWants(root string) ([]*expectation, error) {
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(blob), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats, err := splitPatterns(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, i+1, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return fmt.Errorf("%s:%d: want pattern %q: %w", path, i+1, p, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re, raw: p})
			}
		}
		return nil
	})
	return wants, err
}

// splitPatterns decodes the sequence of quoted/backquoted strings after
// `// want`.
func splitPatterns(s string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(s)
	for rest != "" {
		switch rest[0] {
		case '"':
			// strconv.Unquote needs the full quoted token; find its end by
			// scanning for an unescaped closing quote.
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end == len(rest) {
				return nil, fmt.Errorf("unterminated want pattern")
			}
			p, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("want pattern %s: %w", rest[:end+1], err)
			}
			out = append(out, p)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern")
			}
			out = append(out, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("want expects quoted patterns, found %q", rest)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want with no patterns")
	}
	return out, nil
}
