// Package load type-checks Go packages for the apollo-vet analyzers using
// only the standard library: it shells out to `go list -deps -json` for
// package discovery and build-constraint resolution, then parses and
// type-checks every package in the dependency closure from source —
// standard library included — in topological order. This trades a couple of
// seconds of CPU for zero dependencies: the usual driver stack
// (golang.org/x/tools/go/packages + export data) is unavailable here by the
// no-new-modules constraint, and the repo's entire closure (~200 packages)
// source-checks in under 3s.
//
// With IncludeTests set, `go list -test` also yields each package's
// test-augmented variant (import path "pkg [pkg.test]" with _test.go files
// merged into GoFiles) and external _test packages; the loader analyzes the
// augmented variant instead of the plain one so analyzers see test files
// too, while dependents keep resolving the plain package. Synthesized
// ".test" main packages (generated _testmain.go) are skipped.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the canonical import path: test-augmented variants carry
	// the path of the package under test, not the bracketed go list form.
	PkgPath string
	// ListPath is the raw go list ImportPath (brackets and all).
	ListPath string
	Dir      string
	// Target marks packages named by the load patterns (the ones analyzers
	// should inspect), as opposed to dependencies.
	Target bool
	// TestVariant marks a package whose file set includes _test.go files.
	TestVariant bool
	Files       []*ast.File
	Types       *types.Package
	Info        *types.Info
	// TypeErrors collects soft type-check failures; analysis proceeds on
	// what was resolved.
	TypeErrors []error
}

// Result is one load: a shared FileSet plus every package in the closure,
// dependency-ordered. Targets returns the analysis subset.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Targets returns the packages analyzers should run over: pattern-named,
// in dependency order, with test-augmented variants replacing their plain
// counterparts when present.
func (r *Result) Targets() []*Package {
	shadowed := map[string]bool{}
	for _, p := range r.Packages {
		if p.TestVariant && p.Target {
			shadowed[p.PkgPath] = true
		}
	}
	var out []*Package
	for _, p := range r.Packages {
		if !p.Target {
			continue
		}
		if !p.TestVariant && shadowed[p.PkgPath] {
			continue // the augmented variant supersedes it
		}
		out = append(out, p)
	}
	return out
}

// Config controls a load.
type Config struct {
	// Dir is the working directory for go list (module root or below);
	// empty means the current directory.
	Dir string
	// IncludeTests loads _test.go files via test-augmented variants.
	IncludeTests bool
	// Env overrides (appended to os.Environ). CGO_ENABLED=0 is always
	// forced: type-checking from source cannot expand cgo, and the repo is
	// pure Go.
	Env []string
}

// listPkg mirrors the go list -json fields we consume.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	Incomplete bool
}

// Load lists patterns and type-checks the full dependency closure from
// source. Hard errors (go list failure, unparseable target) abort; type
// errors inside dependencies degrade to Package.TypeErrors.
func Load(cfg Config, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	cache := map[string]*types.Package{"unsafe": types.Unsafe}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	res := &Result{Fset: fset}

	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" || strings.HasSuffix(lp.ImportPath, ".test") {
			// unsafe is predeclared; ".test" mains are generated
			// _testmain.go stubs living in the build cache.
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo; run with CGO_ENABLED=0", lp.ImportPath)
		}

		var files []*ast.File
		for _, name := range lp.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}

		pkg := &Package{
			PkgPath:     lp.ImportPath,
			ListPath:    lp.ImportPath,
			Dir:         lp.Dir,
			Target:      !lp.DepOnly && !lp.Standard,
			TestVariant: lp.ForTest != "",
		}
		if lp.ForTest != "" {
			pkg.PkgPath = lp.ForTest
		}

		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: &mapImporter{cache: cache, importMap: lp.ImportMap},
			Sizes:    sizes,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, err := conf.Check(pkg.PkgPath, fset, files, info)
		if err != nil && pkg.Target {
			return nil, fmt.Errorf("load: type-check %s: %w", lp.ImportPath, err)
		}
		pkg.Files = files
		pkg.Types = tpkg
		pkg.Info = info
		if tpkg != nil {
			cache[lp.ImportPath] = tpkg
		}
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

// goList runs go list and decodes its JSON stream. -deps guarantees
// dependencies precede dependents, which is what lets one linear pass
// type-check the closure.
func goList(cfg Config, patterns []string) ([]*listPkg, error) {
	args := []string{
		"list", "-deps",
		"-json=Dir,ImportPath,Name,Standard,DepOnly,ForTest,GoFiles,CgoFiles,Imports,ImportMap,Error,Incomplete",
	}
	if cfg.IncludeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(append(os.Environ(), cfg.Env...), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// mapImporter resolves imports from the already-checked cache, honoring the
// per-package ImportMap (vendored std paths, test variants).
type mapImporter struct {
	cache     map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not yet loaded (go list order violated?)", path)
}
