// Package cluster models the system side of the paper: an A100-80GB device
// (HBM capacity, BF16 FLOPs, NVLink), DDP all-reduce, per-optimizer step
// overheads including GaLore's SVD spikes, micro-batch feasibility from the
// memory model, and end-to-end wall-clock simulation. It regenerates the
// throughput bars of Fig. 1 (right), the time axis of Fig. 2, the Fig. 9
// throughput timeline and the Section 5.3 feasibility claims.
//
// The paper's numbers come from real hardware; this simulator reproduces
// their *mechanism* — memory arithmetic decides the feasible batch size,
// batch size and SVD amortization decide throughput — with constants
// calibrated to the figures the paper reports (10-minute 7B SVD, ~0.17 s
// AdamW 7B step, ~3× APOLLO speedup at 4× batch).
package cluster

import (
	"fmt"
	"math"

	"apollo/internal/linalg"
	"apollo/internal/memmodel"
)

// Device describes one accelerator.
type Device struct {
	Name      string
	MemBytes  float64 // HBM capacity
	PeakFLOPS float64 // dense BF16 peak
	MFUMax    float64 // best-case model FLOPs utilization at large batch
	// MFUHalfBatch is the micro-batch at which utilization reaches half of
	// MFUMax — small batches leave the GPU memory-bound, the effect that
	// makes APOLLO's larger batches pay off (Section 5.3).
	MFUHalfBatch float64
	HBMBW        float64 // bytes/s for optimizer (memory-bound) passes
	LinkBW       float64 // effective per-GPU all-reduce bandwidth, bytes/s
	// SVDFLOPS is the effective throughput of dense SVD on this device —
	// SVD parallelizes poorly on GPUs; calibrated so a full LLaMA-7B
	// projection refresh costs ≈10 minutes as reported in Section 5.4.
	SVDFLOPS float64
	// LaunchOverhead is the fixed per-micro-step host/kernel overhead.
	LaunchOverhead float64
}

// A100_80G returns the calibrated device used across the paper.
func A100_80G() Device {
	return Device{
		Name:           "A100-80GB",
		MemBytes:       80e9,
		PeakFLOPS:      312e12,
		MFUMax:         0.55,
		MFUHalfBatch:   8,
		HBMBW:          1.7e12,
		LinkBW:         250e9,
		SVDFLOPS:       2.2e11,
		LaunchOverhead: 3e-3,
	}
}

// RTX4090 is a 24 GB consumer card used for the low-end-GPU narrative
// (Q-APOLLO-Mini trains 7B under 12 GB, i.e. it even fits here).
func RTX4090() Device {
	return Device{
		Name:           "RTX4090-24GB",
		MemBytes:       24e9,
		PeakFLOPS:      165e12,
		MFUMax:         0.45,
		MFUHalfBatch:   4,
		HBMBW:          1.0e12,
		LinkBW:         30e9,
		SVDFLOPS:       1.2e11,
		LaunchOverhead: 4e-3,
	}
}

// OptimizerProfile captures how an optimizer loads the system.
type OptimizerProfile struct {
	Name string
	// Method/Rank feed the memory model.
	Method memmodel.Method
	Rank   int // 0 = config default rank
	// StateBytesTouched multiplies parameter count to estimate the
	// memory-bound optimizer pass (read W,G + read/write states).
	StateBytesTouched float64
	// ProjectionFlopsPerParam models per-step projection matmuls
	// (GaLore/Fira project and lift every step; APOLLO only projects).
	ProjectionFlopsPerParam float64
	// SVDEvery is the projection refresh period via SVD (0 = никогда; the
	// cost is paid on refresh steps and shows up as Fig. 9's spikes).
	SVDEvery int
	// FullRankResidual marks Fira's extra full-rank residual pass.
	FullRankResidual bool
}

// Profiles for the methods the system experiments compare.
func ProfileAdamW() OptimizerProfile {
	return OptimizerProfile{
		Name: "AdamW", Method: memmodel.MethodAdamW,
		StateBytesTouched: 4 * 6, // read W,G,M,V; write W,M,V ≈ 6 fp32 passes
	}
}

func ProfileGaLore(rank, svdEvery int) OptimizerProfile {
	return OptimizerProfile{
		Name: "GaLore", Method: memmodel.MethodGaLore, Rank: rank,
		StateBytesTouched:       4 * 3,
		ProjectionFlopsPerParam: 4 * float64(rank), // project + lift, 2·2·r flops/param
		SVDEvery:                svdEvery,
	}
}

func ProfileFira(rank, svdEvery int) OptimizerProfile {
	p := ProfileGaLore(rank, svdEvery)
	p.Name = "Fira"
	p.Method = memmodel.MethodFira
	p.FullRankResidual = true
	p.StateBytesTouched += 4 * 2
	return p
}

func ProfileAPOLLO(rank int) OptimizerProfile {
	return OptimizerProfile{
		Name: "APOLLO", Method: memmodel.MethodAPOLLO, Rank: rank,
		StateBytesTouched:       4 * 3,
		ProjectionFlopsPerParam: 2 * float64(rank), // project only; no lift
	}
}

func ProfileAPOLLOMini() OptimizerProfile {
	return OptimizerProfile{
		Name: "APOLLO-Mini", Method: memmodel.MethodAPOLLOMini, Rank: 1,
		StateBytesTouched:       4 * 3,
		ProjectionFlopsPerParam: 2,
	}
}

// Workload is one training configuration on a cluster.
type Workload struct {
	Config      memmodel.LLaMAConfig
	Dev         Device
	World       int // number of GPUs (DDP)
	SeqLen      int
	GlobalBatch int // sequences per optimizer step across the cluster
	Ckpt        bool
	LayerWise   bool
	Int8Weights bool
	// ZeroShard partitions optimizer states ZeRO-style across the World
	// replicas: per-GPU state memory and the optimizer pass drop to ~1/World,
	// at the price of an extra post-step weight broadcast (each replica must
	// receive the (World−1)/World fraction of the weights it does not own).
	ZeroShard bool
}

// StepBreakdown decomposes one optimizer-step wall time (seconds).
type StepBreakdown struct {
	Compute   float64 // forward+backward across all micro-steps
	Optimizer float64 // optimizer math (memory-bound) + projections
	Comm      float64 // DDP all-reduce
	SVD       float64 // amortized projection-refresh cost
}

// Total sums the breakdown.
func (s StepBreakdown) Total() float64 { return s.Compute + s.Optimizer + s.Comm + s.SVD }

// MaxMicroBatch returns the largest per-GPU micro-batch that fits, or 0 if
// even batch 1 OOMs.
func MaxMicroBatch(w Workload, prof OptimizerProfile) int {
	best := 0
	for b := 1; b <= 512; b *= 2 {
		plan := memmodel.Plan{
			Config: w.Config, Method: prof.Method, Rank: prof.Rank,
			SeqLen: w.SeqLen, MicroBatch: b,
			Int8Weights: w.Int8Weights, LayerWiseGrad: w.LayerWise, ActivationCkpt: w.Ckpt,
		}
		if w.ZeroShard {
			plan.ZeroWorld = w.World
		}
		if memmodel.Compute(plan).Total() <= w.Dev.MemBytes {
			best = b
		} else {
			break
		}
	}
	return best
}

// mfu returns the utilization at a given micro-batch. The saturating
// power-law is calibrated so that growing the 7B micro-batch from 4 to 16
// yields the ≈3× throughput the paper measures (Fig. 1 right): small
// batches leave the device memory-bound far below its roofline.
func mfu(d Device, micro int) float64 {
	b := float64(micro)
	frac := b / (b + d.MFUHalfBatch)
	return d.MFUMax * math.Pow(frac, 1.5)
}

// svdRefreshSeconds returns the cost of one full projection refresh for the
// model (an SVD per projectable matrix).
func svdRefreshSeconds(cfg memmodel.LLaMAConfig, d Device) float64 {
	var flops float64
	for _, s := range cfg.Shapes() {
		if s.Projectable {
			flops += linalg.SVDFlops(s.Rows, s.Cols)
		}
	}
	return flops / d.SVDFLOPS
}

// StepTime computes the wall time of one optimizer step at the given
// micro-batch.
func StepTime(w Workload, prof OptimizerProfile, micro int) StepBreakdown {
	if micro <= 0 {
		return StepBreakdown{Compute: math.Inf(1)}
	}
	params := float64(w.Config.NumParams())
	microSteps := math.Ceil(float64(w.GlobalBatch) / float64(w.World*micro))
	tokensPerMicro := float64(micro * w.SeqLen)

	// Forward+backward ≈ 6·P flops per token (+33% recompute with ckpt).
	flopsPerToken := 6 * params
	if w.Ckpt {
		flopsPerToken *= 4.0 / 3.0
	}
	eff := w.Dev.PeakFLOPS * mfu(w.Dev, micro)
	compute := microSteps * (tokensPerMicro*flopsPerToken/eff + w.Dev.LaunchOverhead)

	// Optimizer pass: memory-bound over weights+grads+states, plus the
	// per-step projection matmuls. Under ZeRO sharding each replica steps
	// only its ~1/World of the parameters.
	optBytes := params * prof.StateBytesTouched
	opt := optBytes / w.Dev.HBMBW
	if prof.ProjectionFlopsPerParam > 0 {
		opt += params * prof.ProjectionFlopsPerParam / (w.Dev.PeakFLOPS * 0.3)
	}
	if prof.FullRankResidual {
		opt += params * 4 / w.Dev.HBMBW
	}
	if w.ZeroShard && w.World > 1 {
		opt /= float64(w.World)
	}

	// Ring all-reduce of BF16 gradients once per optimizer step; with
	// sharded states, also the post-step weight broadcast — every replica
	// receives the (World−1)/World fraction of the weights it doesn't own.
	var comm float64
	if w.World > 1 {
		gradBytes := params * memmodel.BytesBF16
		comm = 2 * gradBytes * float64(w.World-1) / float64(w.World) / w.Dev.LinkBW
		if w.ZeroShard {
			wtBytes := params * memmodel.BytesBF16
			comm += wtBytes * float64(w.World-1) / float64(w.World) / w.Dev.LinkBW
		}
	}

	var svd float64
	if prof.SVDEvery > 0 {
		svd = svdRefreshSeconds(w.Config, w.Dev) / float64(prof.SVDEvery)
	}
	return StepBreakdown{Compute: compute, Optimizer: opt, Comm: comm, SVD: svd}
}

// Throughput returns end-to-end training tokens/second at the feasible
// micro-batch (0 if the model does not fit at all).
func Throughput(w Workload, prof OptimizerProfile) (tokensPerSec float64, micro int) {
	micro = MaxMicroBatch(w, prof)
	if micro == 0 {
		return 0, 0
	}
	st := StepTime(w, prof, micro)
	tokens := float64(w.GlobalBatch * w.SeqLen)
	return tokens / st.Total(), micro
}

// TimePoint is one entry of a simulated training timeline.
type TimePoint struct {
	Step        int
	WallSeconds float64 // cumulative
	StepSeconds float64 // this step (includes any SVD spike)
	TokensPerS  float64 // instantaneous throughput
}

// SimulateTimeline produces a per-step wall-clock trace with explicit SVD
// spikes at refresh steps (Fig. 9) instead of amortizing them.
func SimulateTimeline(w Workload, prof OptimizerProfile, steps int) []TimePoint {
	micro := MaxMicroBatch(w, prof)
	if micro == 0 {
		return nil
	}
	base := StepTime(w, prof, micro)
	base.SVD = 0
	perStep := base.Total()
	refresh := 0.0
	if prof.SVDEvery > 0 {
		refresh = svdRefreshSeconds(w.Config, w.Dev)
	}
	tokens := float64(w.GlobalBatch * w.SeqLen)
	out := make([]TimePoint, steps)
	wall := 0.0
	for i := 0; i < steps; i++ {
		t := perStep
		if prof.SVDEvery > 0 && i%prof.SVDEvery == 0 {
			t += refresh
		}
		wall += t
		out[i] = TimePoint{Step: i, WallSeconds: wall, StepSeconds: t, TokensPerS: tokens / t}
	}
	return out
}

// StepsWithinBudget returns how many optimizer steps fit in a wall-clock
// budget (Fig. 2's half-month horizontal line).
func StepsWithinBudget(w Workload, prof OptimizerProfile, budgetSeconds float64) int {
	micro := MaxMicroBatch(w, prof)
	if micro == 0 {
		return 0
	}
	st := StepTime(w, prof, micro)
	if st.Total() <= 0 {
		return 0
	}
	return int(budgetSeconds / st.Total())
}

// Fits reports whether the workload fits in device memory at micro-batch 1.
func Fits(w Workload, prof OptimizerProfile) bool {
	return MaxMicroBatch(w, prof) >= 1
}

// Describe renders a human-readable summary for the CLI tools.
func Describe(w Workload, prof OptimizerProfile) string {
	tps, micro := Throughput(w, prof)
	if micro == 0 {
		return fmt.Sprintf("%-12s OOM (does not fit at micro-batch 1)", prof.Name)
	}
	st := StepTime(w, prof, micro)
	return fmt.Sprintf("%-12s micro=%-3d step=%6.2fs (compute %.2f, opt %.3f, comm %.3f, svd %.3f) → %.0f tok/s",
		prof.Name, micro, st.Total(), st.Compute, st.Optimizer, st.Comm, st.SVD, tps)
}
