package cluster

import (
	"math"
	"testing"

	"apollo/internal/memmodel"
)

func workload7B() Workload {
	cfg, _ := memmodel.ConfigByName("7B")
	// Table 7 / Fig. 1 setup: seq 1024, no full recompute (selective only).
	return Workload{
		Config: cfg, Dev: A100_80G(), World: 8,
		SeqLen: 1024, GlobalBatch: 512,
	}
}

func TestAdamWMicroBatchSmallerThanAPOLLO(t *testing.T) {
	w := workload7B()
	bAdam := MaxMicroBatch(w, ProfileAdamW())
	wLW := w
	wLW.LayerWise = true
	bApollo := MaxMicroBatch(wLW, ProfileAPOLLO(256))
	bMini := MaxMicroBatch(wLW, ProfileAPOLLOMini())
	if bAdam == 0 {
		t.Fatal("AdamW should fit at some micro-batch with checkpointing")
	}
	if bApollo < 2*bAdam {
		t.Fatalf("APOLLO micro-batch %d not ≥ 2× AdamW's %d (paper: 4×)", bApollo, bAdam)
	}
	if bMini < bApollo {
		t.Fatalf("Mini micro-batch %d < APOLLO's %d", bMini, bApollo)
	}
}

func TestThroughputOrderingFig1(t *testing.T) {
	// Fig. 1 right: APOLLO ≈ APOLLO-Mini > GaLore > AdamW, with
	// APOLLO/AdamW ≈ 3×.
	w := workload7B()
	wLW := w
	wLW.LayerWise = true
	tAdam, _ := Throughput(w, ProfileAdamW())
	tGaLore, _ := Throughput(wLW, ProfileGaLore(1024, 200))
	tApollo, _ := Throughput(wLW, ProfileAPOLLO(256))
	tMini, _ := Throughput(wLW, ProfileAPOLLOMini())
	if !(tApollo > tGaLore && tGaLore > tAdam) {
		t.Fatalf("ordering violated: apollo=%v galore=%v adamw=%v", tApollo, tGaLore, tAdam)
	}
	if tMini < 0.95*tApollo {
		t.Fatalf("Mini %v should be ≈ APOLLO %v", tMini, tApollo)
	}
	speedup := tApollo / tAdam
	if speedup < 2.0 || speedup > 4.5 {
		t.Fatalf("APOLLO/AdamW speedup %vx, paper reports ≈3x", speedup)
	}
}

func TestSVDSpikesInTimeline(t *testing.T) {
	// Fig. 9: GaLore's timeline has periodic spikes; APOLLO's does not.
	cfg, _ := memmodel.ConfigByName("1B")
	// Fig. 9 setup: LLaMA-1B, modest batch, SVD refresh every 10 steps for
	// a short trace (the paper uses 200 over a long run).
	w := Workload{Config: cfg, Dev: A100_80G(), World: 1, SeqLen: 256, GlobalBatch: 4, Ckpt: true}
	galore := SimulateTimeline(w, ProfileGaLore(512, 10), 30)
	apollo := SimulateTimeline(w, ProfileAPOLLO(512), 30)
	if len(galore) != 30 || len(apollo) != 30 {
		t.Fatal("timeline length wrong")
	}
	spike := galore[10].StepSeconds / galore[5].StepSeconds
	if spike < 5 {
		t.Fatalf("GaLore SVD spike only %vx baseline", spike)
	}
	for i := 1; i < len(apollo); i++ {
		if math.Abs(apollo[i].StepSeconds-apollo[1].StepSeconds) > 1e-9 {
			t.Fatal("APOLLO timeline should be flat (no SVD)")
		}
	}
}

func TestSVDRefreshCalibration(t *testing.T) {
	// Section 5.4: one full 7B projection refresh ≈ 10 minutes.
	cfg, _ := memmodel.ConfigByName("7B")
	secs := svdRefreshSeconds(cfg, A100_80G())
	if secs < 200 || secs > 2000 {
		t.Fatalf("7B SVD refresh %vs, want minutes-scale (paper: ≈600s)", secs)
	}
}

func TestAdamW7BStepTimeCalibration(t *testing.T) {
	// Table 7: AdamW optimizer step on 7B ≈ 0.17 s (single GPU, batch 4).
	cfg, _ := memmodel.ConfigByName("7B")
	w := Workload{Config: cfg, Dev: A100_80G(), World: 1, SeqLen: 1024, GlobalBatch: 4, Ckpt: true}
	st := StepTime(w, ProfileAdamW(), 4)
	if st.Optimizer < 0.05 || st.Optimizer > 0.5 {
		t.Fatalf("AdamW 7B optimizer pass %vs, paper reports 0.173s", st.Optimizer)
	}
	// GaLore's per-step cost including amortized SVD must be much larger
	// (paper: 2.87s vs 0.17s).
	stG := StepTime(w, ProfileGaLore(1024, 200), 4)
	if stG.Optimizer+stG.SVD < 5*(st.Optimizer) {
		t.Fatalf("GaLore step cost %v not ≫ AdamW %v", stG.Optimizer+stG.SVD, st.Optimizer)
	}
}

func TestAdamW13BOOMButMiniFits(t *testing.T) {
	cfg, _ := memmodel.ConfigByName("13B")
	w := Workload{Config: cfg, Dev: A100_80G(), World: 1, SeqLen: 256, GlobalBatch: 8, Ckpt: true}
	if Fits(w, ProfileAdamW()) {
		t.Fatal("AdamW 13B should OOM on one 80G device")
	}
	wLW := w
	wLW.LayerWise = true
	if !Fits(wLW, ProfileAPOLLOMini()) {
		t.Fatal("APOLLO-Mini 13B should fit on one 80G device (Section 5.3)")
	}
}

func TestQAPOLLOMiniFitsLowEndGPU(t *testing.T) {
	// The <12GB claim implies 7B fits a 24 GB consumer card with room.
	cfg, _ := memmodel.ConfigByName("7B")
	w := Workload{
		Config: cfg, Dev: RTX4090(), World: 1, SeqLen: 256, GlobalBatch: 1,
		Ckpt: true, LayerWise: true, Int8Weights: true,
	}
	if !Fits(w, ProfileAPOLLOMini()) {
		t.Fatal("Q-APOLLO-Mini 7B should fit a 24G consumer GPU")
	}
	if Fits(w, ProfileAdamW()) {
		t.Fatal("AdamW 7B must OOM on a 24G card even with INT8 weights")
	}
}

func TestStepsWithinBudgetMonotone(t *testing.T) {
	w := workload7B()
	wLW := w
	wLW.LayerWise = true
	day := 86400.0
	adam := StepsWithinBudget(w, ProfileAdamW(), 15*day)
	apollo := StepsWithinBudget(wLW, ProfileAPOLLO(256), 15*day)
	if apollo <= adam {
		t.Fatalf("APOLLO steps %d not > AdamW steps %d in the same budget", apollo, adam)
	}
	// Fig. 2: only APOLLO-class methods finish 150K steps in half a month.
	if apollo < 150_000 && adam >= 150_000 {
		t.Fatal("budget ordering inverted")
	}
}

func TestTimelineCumulative(t *testing.T) {
	cfg, _ := memmodel.ConfigByName("60M")
	w := Workload{Config: cfg, Dev: A100_80G(), World: 1, SeqLen: 256, GlobalBatch: 8}
	tl := SimulateTimeline(w, ProfileAPOLLO(128), 10)
	for i := 1; i < len(tl); i++ {
		if tl[i].WallSeconds <= tl[i-1].WallSeconds {
			t.Fatal("wall clock must be strictly increasing")
		}
	}
}

func TestDescribeOOM(t *testing.T) {
	cfg, _ := memmodel.ConfigByName("13B")
	w := Workload{Config: cfg, Dev: RTX4090(), World: 1, SeqLen: 1024, GlobalBatch: 8}
	got := Describe(w, ProfileAdamW())
	if got == "" {
		t.Fatal("empty description")
	}
}

func TestZeroShardMemoryAndComm(t *testing.T) {
	// ZeRO sharding across 8 GPUs: per-replica state memory drops ~1/8, so
	// the feasible micro-batch can only grow; comm grows by the weight
	// broadcast; the optimizer pass shrinks.
	w := workload7B()
	z := w
	z.ZeroShard = true
	prof := ProfileAdamW()

	plain := MaxMicroBatch(w, prof)
	sharded := MaxMicroBatch(z, prof)
	if sharded < plain {
		t.Fatalf("sharded micro-batch %d < plain %d", sharded, plain)
	}

	micro := plain
	stPlain := StepTime(w, prof, micro)
	stZero := StepTime(z, prof, micro)
	if stZero.Comm <= stPlain.Comm {
		t.Fatalf("sharded comm %v must exceed plain %v (weight broadcast)", stZero.Comm, stPlain.Comm)
	}
	if stZero.Optimizer >= stPlain.Optimizer {
		t.Fatalf("sharded optimizer pass %v must be under plain %v", stZero.Optimizer, stPlain.Optimizer)
	}

	// The per-replica state prediction matches the memmodel division.
	cfg := w.Config
	full := memmodel.OptimizerStateBytes(cfg, memmodel.MethodAdamW, cfg.DefaultRank())
	per := memmodel.ShardedOptimizerStateBytes(cfg, memmodel.MethodAdamW, cfg.DefaultRank(), w.World)
	if per*float64(w.World) != full {
		t.Fatalf("sharded prediction %v × %d != full %v", per, w.World, full)
	}
}

func TestZeroShardSingleWorldNoop(t *testing.T) {
	w := workload7B()
	w.World = 1
	z := w
	z.ZeroShard = true
	prof := ProfileAPOLLO(256)
	if MaxMicroBatch(w, prof) != MaxMicroBatch(z, prof) {
		t.Fatal("ZeroShard must be a no-op at world 1")
	}
	if StepTime(w, prof, 4) != StepTime(z, prof, 4) {
		t.Fatal("ZeroShard step time must match at world 1")
	}
}
