// Package eval implements the evaluation harnesses of the paper's Section 5:
// validation perplexity, likelihood-based zero-shot multiple choice (Table 4),
// fine-tuning accuracy aggregation (Tables 5/6) and the directional-sharpness
// probe of Section 5.5 (Table 10).
package eval

import (
	"math"

	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// OptionLogProb scores one candidate continuation: the mean log-probability
// of the option tokens conditioned on the context, exactly the
// length-normalized scoring rule used by lm-eval-harness for the paper's
// zero-shot suites.
//
// With an empty context the first option token has no conditioning position
// (the model has no BOS convention), so the mean runs over the remaining
// option tokens; a query with nothing scoreable at all returns 0.
func OptionLogProb(model *nn.Model, context, option []int) float64 {
	seq := make([]int, 0, len(context)+len(option))
	seq = append(seq, context...)
	seq = append(seq, option...)
	if len(option) == 0 || len(seq) < 2 {
		return 0
	}
	logits := model.Forward(seq[:len(seq)-1], 1, len(seq)-1)
	// Position i of logits predicts seq[i+1]; option tokens start at
	// len(context).
	start := len(context) - 1
	if start < 0 {
		start = 0
	}
	var total float64
	for i := start; i < len(seq)-1; i++ {
		row := logits.Row(i)
		lse := tensor.LogSumExp(row)
		total += float64(row[seq[i+1]]) - lse
	}
	return total / float64(len(seq)-1-start)
}

// ZeroShotAccuracy scores a multiple-choice suite: an item is correct when
// the genuine continuation receives the highest mean log-probability.
func ZeroShotAccuracy(model *nn.Model, items []data.MCItem) float64 {
	if len(items) == 0 {
		return 0
	}
	correct := 0
	for _, item := range items {
		best, bi := math.Inf(-1), 0
		for o, opt := range item.Options {
			if lp := OptionLogProb(model, item.Context, opt); lp > best {
				best, bi = lp, o
			}
		}
		if bi == item.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(items))
}

// SuiteResult is one task's score.
type SuiteResult struct {
	Task     string
	Accuracy float64
}

// RunZeroShotSuite evaluates the full Table 4 suite on a model.
func RunZeroShotSuite(model *nn.Model, src *data.Source, seed uint64) []SuiteResult {
	var out []SuiteResult
	for _, cfg := range data.ZeroShotSuite(seed) {
		items := data.GenerateMCTask(src, cfg)
		out = append(out, SuiteResult{Task: cfg.Name, Accuracy: ZeroShotAccuracy(model, items)})
	}
	return out
}

// Average returns the mean accuracy across suite results.
func Average(rs []SuiteResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.Accuracy
	}
	return sum / float64(len(rs))
}

// DirectionalSharpness estimates vᵀ∇²L(θ)v along a normalized direction v
// via the central second difference (L(θ+εv) − 2L(θ) + L(θ−εv))/ε². This is
// the quantity of Pan & Li (2023) that Section 5.5 uses to explain why
// APOLLO's SGD-like updates still optimize transformers well (Table 10).
//
// dir must be parallel to the parameter list; it is normalized internally.
func DirectionalSharpness(model *nn.Model, dir []*tensor.Matrix, tokens, targets []int, b, t int, eps float64) float64 {
	params := model.Params().List()
	if len(dir) != len(params) {
		panic("eval: direction/parameter length mismatch")
	}
	var sq float64
	for _, d := range dir {
		sq += d.SqNorm()
	}
	norm := math.Sqrt(sq)
	if norm == 0 { //apollo:exactfloat guard against division by an exact-zero norm
		return 0
	}
	scale := float32(eps / norm)

	move := func(sign float32) {
		for i, p := range params {
			tensor.AxpyInPlace(p.W, sign*scale, dir[i])
		}
	}

	base := model.EvalLoss(tokens, targets, b, t)
	move(+1)
	plus := model.EvalLoss(tokens, targets, b, t)
	move(-2)
	minus := model.EvalLoss(tokens, targets, b, t)
	move(+1) // restore

	return (plus - 2*base + minus) / (eps * eps)
}

// UpdateDirection extracts an optimizer's current update direction by
// cloning the parameters, applying one step at the given gradients, and
// differencing. The returned matrices are parallel to the model parameters.
func UpdateDirection(params []*nn.Param, step func(ps []*nn.Param)) []*tensor.Matrix {
	clones := make([]*nn.Param, len(params))
	for i, p := range params {
		c := nn.NewParam(p.Name, p.Kind, p.W.Clone())
		c.Grad.CopyFrom(p.Grad)
		clones[i] = c
	}
	step(clones)
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = tensor.Sub(params[i].W, clones[i].W) // −Δ = descent direction
		_ = p
	}
	return out
}
