package eval

import (
	"math"
	"testing"

	"apollo/internal/core"
	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

func tinyModel(seed uint64, vocab int) *nn.Model {
	cfg := nn.Config{Vocab: vocab, Dim: 16, Hidden: 32, Heads: 2, Layers: 2, MaxSeq: 64}
	return nn.NewModel(cfg, tensor.NewRNG(seed))
}

func TestOptionLogProbFavorsLikelyTokens(t *testing.T) {
	// Train a model briefly on the source; the genuine continuation should
	// then outscore uniform-random distractors on average.
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	srcCfg.CopyLagMin = 4
	srcCfg.CopyLagMax = 16
	src, err := data.NewSource(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(src, 1, 2)
	model := tinyModel(1, 64)
	opt := optim.NewAdamW(optim.Hyper{LR: 3e-3})
	for step := 0; step < 120; step++ {
		b := corpus.NextTrainBatch(4, 16)
		model.Params().ZeroGrad()
		model.Loss(b.Tokens, b.Targets, b.B, b.T)
		opt.Step(model.Params().List())
	}

	items := data.GenerateMCTask(src, data.MCTaskConfig{
		Name: "easy", Items: 60, CtxLen: 12, ContLen: 6, Options: 4, Distractor: 0, Seed: 3,
	})
	acc := ZeroShotAccuracy(model, items)
	if acc <= 0.3 { // chance = 0.25
		t.Fatalf("trained model zero-shot accuracy %v not above chance", acc)
	}
}

// TestOptionLogProbEmptyContext is the regression for the evaluation
// service's unconditioned queries: an empty context used to start the
// scoring loop at position -1 and panic in logits.Row. The score must be
// finite and equal the mean log-probability of the scoreable option tokens
// (all but the first, which has no conditioning position).
func TestOptionLogProbEmptyContext(t *testing.T) {
	model := tinyModel(11, 32)
	option := []int{3, 7, 1, 4}
	got := OptionLogProb(model, nil, option)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("empty-context logprob %v not finite", got)
	}
	if got >= 0 {
		t.Fatalf("empty-context logprob %v not negative", got)
	}
	// Hand-computed reference: forward option[:3], score option[1:] from
	// positions 0..2, mean over 3 scored tokens.
	logits := model.Forward(option[:len(option)-1], 1, len(option)-1)
	var want float64
	for i := 0; i < len(option)-1; i++ {
		row := logits.Row(i)
		want += float64(row[option[i+1]]) - tensor.LogSumExp(row)
	}
	want /= float64(len(option) - 1)
	if got != want {
		t.Fatalf("empty-context logprob %v, want %v", got, want)
	}
	if OptionLogProb(model, []int{5}, option) == got {
		t.Fatal("context must condition the score")
	}
}

// TestOptionLogProbDegenerateQueries: queries with nothing scoreable must
// not panic (the service receives arbitrary client input).
func TestOptionLogProbDegenerateQueries(t *testing.T) {
	model := tinyModel(12, 32)
	if got := OptionLogProb(model, nil, []int{3}); got != 0 {
		t.Fatalf("single-token option with empty context scored %v, want 0", got)
	}
	if got := OptionLogProb(model, []int{1, 2}, nil); got != 0 {
		t.Fatalf("empty option scored %v, want 0", got)
	}
	if got := OptionLogProb(model, nil, nil); got != 0 {
		t.Fatalf("empty query scored %v, want 0", got)
	}
}

// TestZeroShotAccuracyEmptyContextItems: a whole suite of context-free items
// (CtxLen 0) must evaluate without panicking — the MCItem.Context flattening
// removed the empty-outer-slice trap alongside.
func TestZeroShotAccuracyEmptyContextItems(t *testing.T) {
	src, _ := data.NewSource(data.DefaultSourceConfig())
	model := tinyModel(13, 256)
	items := data.GenerateMCTask(src, data.MCTaskConfig{
		Name: "ctxfree", Items: 6, CtxLen: 0, ContLen: 4, Options: 3, Distractor: 0.5, Seed: 9,
	})
	for _, it := range items {
		if len(it.Context) != 0 {
			t.Fatalf("ctx len %d, want 0", len(it.Context))
		}
	}
	acc := ZeroShotAccuracy(model, items)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of bounds", acc)
	}
}

func TestZeroShotAccuracyBounds(t *testing.T) {
	src, _ := data.NewSource(data.DefaultSourceConfig())
	model := tinyModel(2, 256)
	items := data.GenerateMCTask(src, data.MCTaskConfig{
		Name: "x", Items: 10, CtxLen: 8, ContLen: 4, Options: 2, Distractor: 0.5, Seed: 5,
	})
	acc := ZeroShotAccuracy(model, items)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of bounds", acc)
	}
	if got := ZeroShotAccuracy(model, nil); got != 0 {
		t.Fatalf("empty suite accuracy %v", got)
	}
}

func TestRunZeroShotSuiteCoversAllTasks(t *testing.T) {
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	src, _ := data.NewSource(srcCfg)
	model := tinyModel(3, 64)
	// Use a reduced suite by shrinking item counts via direct generation:
	// RunZeroShotSuite exercises the full ten tasks.
	results := RunZeroShotSuite(model, src, 7)
	if len(results) != 10 {
		t.Fatalf("%d results want 10", len(results))
	}
	avg := Average(results)
	if avg < 0 || avg > 1 {
		t.Fatalf("average %v out of bounds", avg)
	}
}

func TestDirectionalSharpnessPositiveNearConvexMin(t *testing.T) {
	// For a model trained to a local basin, random directions should show
	// non-negative curvature on the training batch (up to float noise).
	model := tinyModel(4, 32)
	rng := tensor.NewRNG(5)
	tokens := make([]int, 2*8)
	targets := make([]int, 2*8)
	for i := range tokens {
		tokens[i] = rng.Intn(32)
		targets[i] = rng.Intn(32)
	}
	opt := optim.NewAdamW(optim.Hyper{LR: 5e-3})
	for i := 0; i < 60; i++ {
		model.Params().ZeroGrad()
		model.Loss(tokens, targets, 2, 8)
		opt.Step(model.Params().List())
	}
	model.Params().ZeroGrad()
	model.Loss(tokens, targets, 2, 8)
	dir := UpdateDirection(model.Params().List(), func(ps []*nn.Param) {
		optim.NewSGD(optim.Hyper{LR: 1}, 0).Step(ps)
	})
	sharp := DirectionalSharpness(model, dir, tokens, targets, 2, 8, 0.05)
	if math.IsNaN(sharp) {
		t.Fatal("sharpness is NaN")
	}
	if sharp < -2 {
		t.Fatalf("sharpness %v strongly negative near a trained basin", sharp)
	}
}

// TestSharpnessOrderingSGDvsAdamAPOLLO reproduces the Table 10 mechanism:
// along SGD's raw-gradient direction, curvature is higher than along the
// Adam/APOLLO normalized directions.
func TestSharpnessOrderingSGDvsAdamAPOLLO(t *testing.T) {
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	srcCfg.CopyLagMin = 4
	srcCfg.CopyLagMax = 16
	src, _ := data.NewSource(srcCfg)
	corpus := data.NewCorpus(src, 3, 4)
	model := tinyModel(6, 64)
	warm := optim.NewAdamW(optim.Hyper{LR: 3e-3})
	for i := 0; i < 80; i++ {
		b := corpus.NextTrainBatch(4, 16)
		model.Params().ZeroGrad()
		model.Loss(b.Tokens, b.Targets, b.B, b.T)
		warm.Step(model.Params().List())
	}
	b := corpus.ValBatch(0, 4, 16)
	model.Params().ZeroGrad()
	model.Loss(b.Tokens, b.Targets, b.B, b.T)

	sharpAlong := func(step func(ps []*nn.Param)) float64 {
		dir := UpdateDirection(model.Params().List(), step)
		return DirectionalSharpness(model, dir, b.Tokens, b.Targets, b.B, b.T, 0.05)
	}
	sgd := sharpAlong(func(ps []*nn.Param) { optim.NewSGD(optim.Hyper{LR: 1}, 0).Step(ps) })
	adam := sharpAlong(func(ps []*nn.Param) { optim.NewAdamW(optim.Hyper{LR: 1}).Step(ps) })
	apollo := sharpAlong(func(ps []*nn.Param) {
		core.New(optim.Hyper{LR: 1}, core.Config{Rank: 4}).Step(ps)
	})
	if math.IsNaN(sgd) || math.IsNaN(adam) || math.IsNaN(apollo) {
		t.Fatal("NaN sharpness")
	}
	// Table 10's ordering: SGD ≫ Adam ≈ APOLLO. We require SGD to be the
	// largest by a clear margin.
	if !(sgd > adam && sgd > apollo) {
		t.Fatalf("sharpness ordering violated: sgd=%v adam=%v apollo=%v", sgd, adam, apollo)
	}
}

func TestUpdateDirectionDoesNotTouchParams(t *testing.T) {
	model := tinyModel(7, 32)
	rng := tensor.NewRNG(8)
	for _, p := range model.Params().List() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat32()
		}
	}
	before := model.Params().List()[2].W.Clone()
	UpdateDirection(model.Params().List(), func(ps []*nn.Param) {
		optim.NewAdamW(optim.Hyper{LR: 0.5}).Step(ps)
	})
	if !model.Params().List()[2].W.Equal(before) {
		t.Fatal("UpdateDirection must not mutate the live parameters")
	}
}

func TestDirectionalSharpnessRestoresWeights(t *testing.T) {
	model := tinyModel(9, 32)
	tokens := []int{1, 2, 3, 4}
	targets := []int{2, 3, 4, 5}
	dirs := make([]*tensor.Matrix, len(model.Params().List()))
	rng := tensor.NewRNG(10)
	for i, p := range model.Params().List() {
		dirs[i] = tensor.NewMatrixRand(p.W.Rows, p.W.Cols, 1, rng)
	}
	before := model.Params().List()[0].W.Clone()
	DirectionalSharpness(model, dirs, tokens, targets, 1, 4, 0.01)
	after := model.Params().List()[0].W
	if !after.AllClose(before, 1e-5) {
		t.Fatal("weights not restored after the sharpness probe")
	}
}
