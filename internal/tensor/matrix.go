// Package tensor provides the dense float32 linear-algebra kernels used by
// every other package in this repository: matrices, vectors, a deterministic
// RNG, parallel blocked matrix multiplication and the elementwise/reduction
// kernels needed for transformer training and APOLLO-style optimizers.
//
// Matrices are row-major. The package is deliberately small and allocation
// conscious: optimizer inner loops call the *Into variants which write into
// caller-provided storage.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// NewMatrixRand fills a matrix with N(0, std²) entries drawn from rng.
func NewMatrixRand(rows, cols int, std float64, rng *RNG) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.Norm() * std)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Matrix) Col(j int) []float32 {
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero clears all elements.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// NumEl returns the element count.
func (m *Matrix) NumEl() int { return m.Rows * m.Cols }

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	const blk = 32
	for ib := 0; ib < m.Rows; ib += blk {
		imax := min(ib+blk, m.Rows)
		for jb := 0; jb < m.Cols; jb += blk {
			jmax := min(jb+blk, m.Cols)
			for i := ib; i < imax; i++ {
				for j := jb; j < jmax; j++ {
					t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
				}
			}
		}
	}
	return t
}

// Equal reports whether two matrices have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] { //apollo:exactfloat bitwise equality is this method's contract
			return false
		}
	}
	return true
}

// AllClose reports whether every element differs by at most tol.
func (m *Matrix) AllClose(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(float64(v)-float64(o.Data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.NumEl() > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
