package tensor

import (
	"fmt"

	"apollo/internal/runtime"
)

// Parallel runs fn over disjoint index ranges covering [0, n) on the shared
// runtime worker pool when n is large enough (at least minPerTask items per
// task). It is the general-purpose fan-out used by the attention kernels and
// optimizer loops. fn must write only to data owned by its range, which
// makes the result bit-identical to fn(0, n) at any pool size.
func Parallel(n, minPerTask int, fn func(i0, i1 int)) {
	runtime.ForRange(n, minPerTask, fn)
}

// parallelRows is the historical name used inside this package.
func parallelRows(rows int, minRowsPerTask int, fn func(i0, i1 int)) {
	runtime.ForRange(rows, minRowsPerTask, fn)
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b. out must be a.Rows × b.Cols and distinct
// from a and b.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	runtime.MatMul(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
}

// Dot returns the inner product of equal-length slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// MatMulT returns a·bᵀ without materializing the transpose.
func MatMulT(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes out = a·bᵀ. a is r×k, b is c×k, out is r×c.
func MatMulTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dim mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	runtime.MatMulT(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Rows)
}

// TMatMul returns aᵀ·b without materializing the transpose.
func TMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Cols, b.Cols)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes out = aᵀ·b. a is k×r, b is k×c, out is r×c.
func TMatMulInto(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dim mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	// Parallelism is over output rows (columns of a) to avoid write
	// contention.
	runtime.TMatMul(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Add")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace computes a += b, fanning out on the pool for large matrices
// (1·x is exact in IEEE arithmetic, so delegating to Axpy is bit-neutral).
func AddInPlace(a, b *Matrix) {
	a.mustSameShape(b, "AddInPlace")
	runtime.Axpy(1, b.Data, a.Data)
}

// AxpyInPlace computes a += alpha*b.
func AxpyInPlace(a *Matrix, alpha float32, b *Matrix) {
	a.mustSameShape(b, "AxpyInPlace")
	runtime.Axpy(alpha, b.Data, a.Data)
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Sub")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns alpha*a.
func Scale(alpha float32, a *Matrix) *Matrix {
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= alpha
	}
	return out
}

// ScaleInPlace computes a *= alpha, fanning out for large matrices.
func ScaleInPlace(a *Matrix, alpha float32) {
	runtime.Scale(a.Data, alpha)
}

// Hadamard returns the elementwise product a∘b.
func Hadamard(a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Hadamard")
	out := a.Clone()
	HadamardInPlace(out, b)
	return out
}

// HadamardInPlace computes a ∘= b, fanning out for large matrices.
func HadamardInPlace(a, b *Matrix) {
	a.mustSameShape(b, "HadamardInPlace")
	Parallel(len(a.Data), 1<<14, func(i0, i1 int) {
		ad, bd := a.Data[i0:i1], b.Data[i0:i1]
		for i, v := range bd {
			ad[i] *= v
		}
	})
}

// ScaleColsInPlace multiplies column j of a by s[j].
func ScaleColsInPlace(a *Matrix, s []float32) {
	if len(s) != a.Cols {
		panic(fmt.Sprintf("tensor: ScaleCols got %d factors for %d cols", len(s), a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, f := range s {
			row[j] *= f
		}
	}
}

// ScaleRowsInPlace multiplies row i of a by s[i].
func ScaleRowsInPlace(a *Matrix, s []float32) {
	if len(s) != a.Rows {
		panic(fmt.Sprintf("tensor: ScaleRows got %d factors for %d rows", len(s), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ScaleSlice(row, s[i])
	}
}

// ScaleSlice multiplies every element of x by alpha.
func ScaleSlice(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}
