package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// maxWorkers caps parallelism for the blocked kernels.
var maxWorkers = runtime.GOMAXPROCS(0)

// Parallel runs fn over disjoint index ranges covering [0, n), splitting the
// work across CPUs when n is large enough (at least minPerTask items per
// task). It is the general-purpose fan-out used by the attention kernels and
// optimizer loops.
func Parallel(n, minPerTask int, fn func(i0, i1 int)) {
	parallelRows(n, minPerTask, fn)
}

// parallelRows runs fn(i0, i1) over disjoint row ranges covering [0, rows).
func parallelRows(rows int, minRowsPerTask int, fn func(i0, i1 int)) {
	if rows <= 0 {
		return
	}
	workers := maxWorkers
	if workers > rows/minRowsPerTask {
		workers = rows / minRowsPerTask
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < rows; i0 += chunk {
		i1 := min(i0+chunk, rows)
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			fn(a, b)
		}(i0, i1)
	}
	wg.Wait()
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b. out must be a.Rows × b.Cols and distinct
// from a and b.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	out.Zero()
	k := a.Cols
	n := b.Cols
	parallelRows(a.Rows, 8, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				axpy(av, brow, orow)
			}
		}
	})
}

// axpy computes y += a*x for equal-length slices. The 4-way unroll keeps the
// hot loop friendly to the compiler's bounds-check elimination.
func axpy(a float32, x, y []float32) {
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// Dot returns the inner product of equal-length slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// MatMulT returns a·bᵀ without materializing the transpose.
func MatMulT(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes out = a·bᵀ. a is r×k, b is c×k, out is r×c.
func MatMulTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dim mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	k := a.Cols
	parallelRows(a.Rows, 8, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*b.Rows : (i+1)*b.Rows]
			for j := 0; j < b.Rows; j++ {
				orow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
			}
		}
	})
}

// TMatMul returns aᵀ·b without materializing the transpose.
func TMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Cols, b.Cols)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes out = aᵀ·b. a is k×r, b is k×c, out is r×c.
func TMatMulInto(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dim mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	out.Zero()
	// Parallelize over output rows (columns of a) to avoid write contention.
	parallelRows(a.Cols, 4, func(r0, r1 int) {
		for p := 0; p < a.Rows; p++ {
			arow := a.Data[p*a.Cols : (p+1)*a.Cols]
			brow := b.Data[p*b.Cols : (p+1)*b.Cols]
			for r := r0; r < r1; r++ {
				av := arow[r]
				if av == 0 {
					continue
				}
				axpy(av, brow, out.Data[r*b.Cols:(r+1)*b.Cols])
			}
		}
	})
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Add")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	a.mustSameShape(b, "AddInPlace")
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// AxpyInPlace computes a += alpha*b.
func AxpyInPlace(a *Matrix, alpha float32, b *Matrix) {
	a.mustSameShape(b, "AxpyInPlace")
	axpy(alpha, b.Data, a.Data)
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Sub")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns alpha*a.
func Scale(alpha float32, a *Matrix) *Matrix {
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= alpha
	}
	return out
}

// ScaleInPlace computes a *= alpha.
func ScaleInPlace(a *Matrix, alpha float32) {
	for i := range a.Data {
		a.Data[i] *= alpha
	}
}

// Hadamard returns the elementwise product a∘b.
func Hadamard(a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Hadamard")
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// HadamardInPlace computes a ∘= b.
func HadamardInPlace(a, b *Matrix) {
	a.mustSameShape(b, "HadamardInPlace")
	for i, v := range b.Data {
		a.Data[i] *= v
	}
}

// ScaleColsInPlace multiplies column j of a by s[j].
func ScaleColsInPlace(a *Matrix, s []float32) {
	if len(s) != a.Cols {
		panic(fmt.Sprintf("tensor: ScaleCols got %d factors for %d cols", len(s), a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, f := range s {
			row[j] *= f
		}
	}
}

// ScaleRowsInPlace multiplies row i of a by s[i].
func ScaleRowsInPlace(a *Matrix, s []float32) {
	if len(s) != a.Rows {
		panic(fmt.Sprintf("tensor: ScaleRows got %d factors for %d rows", len(s), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ScaleSlice(row, s[i])
	}
}

// ScaleSlice multiplies every element of x by alpha.
func ScaleSlice(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}
