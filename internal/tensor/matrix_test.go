package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zeroed: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v want 7", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep copy")
	}
}

func TestTransposeKnown(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	want := FromSlice(3, 2, []float32{1, 4, 2, 5, 3, 6})
	if !m.T().Equal(want) {
		t.Fatalf("T() = %v want %v", m.T(), want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.Intn(40), 1+rng.Intn(40)
		m := NewMatrixRand(r, c, 1, rng)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float32{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := NewMatrixRand(5, 7, 1, rng)
	id := NewMatrix(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).AllClose(a, 1e-6) {
		t.Fatal("A·I != A")
	}
}

// naiveMul is the reference implementation used to cross-check the blocked
// parallel kernels.
func naiveMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, k, c := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := NewMatrixRand(r, k, 1, rng)
		b := NewMatrixRand(k, c, 1, rng)
		return MatMul(a, b).AllClose(naiveMul(a, b), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, k, c := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := NewMatrixRand(r, k, 1, rng)
		b := NewMatrixRand(c, k, 1, rng)
		return MatMulT(a, b).AllClose(MatMul(a, b.T()), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, k, c := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := NewMatrixRand(k, r, 1, rng)
		b := NewMatrixRand(k, c, 1, rng)
		return TMatMul(a, b).AllClose(MatMul(a.T(), b), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestAddSubScaleHadamard(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	if got := Add(a, b); !got.Equal(FromSlice(1, 3, []float32{5, 7, 9})) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromSlice(1, 3, []float32{3, 3, 3})) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(2, a); !got.Equal(FromSlice(1, 3, []float32{2, 4, 6})) {
		t.Fatalf("Scale = %v", got)
	}
	if got := Hadamard(a, b); !got.Equal(FromSlice(1, 3, []float32{4, 10, 18})) {
		t.Fatalf("Hadamard = %v", got)
	}
}

func TestAxpyInPlace(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 1, 1})
	b := FromSlice(1, 3, []float32{1, 2, 3})
	AxpyInPlace(a, 2, b)
	if !a.Equal(FromSlice(1, 3, []float32{3, 5, 7})) {
		t.Fatalf("Axpy = %v", a)
	}
}

func TestScaleColsRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 1, 1, 1, 1, 1})
	ScaleColsInPlace(m, []float32{1, 2, 3})
	if !m.Equal(FromSlice(2, 3, []float32{1, 2, 3, 1, 2, 3})) {
		t.Fatalf("ScaleCols = %v", m)
	}
	ScaleRowsInPlace(m, []float32{10, 100})
	if !m.Equal(FromSlice(2, 3, []float32{10, 20, 30, 100, 200, 300})) {
		t.Fatalf("ScaleRows = %v", m)
	}
}

func TestDistributivity(t *testing.T) {
	// (A+B)·C == A·C + B·C within float tolerance.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, k, c := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := NewMatrixRand(r, k, 1, rng)
		b := NewMatrixRand(r, k, 1, rng)
		cm := NewMatrixRand(k, c, 1, rng)
		lhs := MatMul(Add(a, b), cm)
		rhs := Add(MatMul(a, cm), MatMul(b, cm))
		return lhs.AllClose(rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	m := FromSlice(2, 2, []float32{3, 0, 0, 4})
	if got := m.Norm(); math.Abs(got-5) > 1e-6 {
		t.Fatalf("Norm = %v want 5", got)
	}
	if got := m.AbsSum(); math.Abs(got-7) > 1e-6 {
		t.Fatalf("AbsSum = %v want 7", got)
	}
	cn := m.ColNorms()
	if math.Abs(cn[0]-3) > 1e-6 || math.Abs(cn[1]-4) > 1e-6 {
		t.Fatalf("ColNorms = %v", cn)
	}
	rn := m.RowNorms()
	if math.Abs(rn[0]-3) > 1e-6 || math.Abs(rn[1]-4) > 1e-6 {
		t.Fatalf("RowNorms = %v", rn)
	}
}

func TestSoftmax(t *testing.T) {
	x := []float32{1, 2, 3}
	SoftmaxInPlace(x)
	var sum float64
	for _, v := range x {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(x[2] > x[1] && x[1] > x[0]) {
		t.Fatalf("softmax not monotone: %v", x)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := []float32{1000, 1001, 1002}
	SoftmaxInPlace(x)
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflow: %v", x)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float32{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-6 {
		t.Fatalf("LogSumExp = %v want ln2", got)
	}
	// Large values must not overflow.
	if got := LogSumExp([]float32{1e4, 1e4}); math.IsInf(got, 0) {
		t.Fatal("LogSumExp overflow")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float32{1, 5, 3}) != 1 {
		t.Fatal("wrong argmax")
	}
	if ArgMax([]float32{7, 7}) != 0 {
		t.Fatal("ties must go to first index")
	}
}

func TestHasNaN(t *testing.T) {
	m := NewMatrix(1, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	m.Set(0, 1, float32(math.NaN()))
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
}

func TestSoftmaxRowsMatchesPerRow(t *testing.T) {
	rng := NewRNG(3)
	m := NewMatrixRand(50, 17, 2, rng)
	ref := m.Clone()
	for i := 0; i < ref.Rows; i++ {
		SoftmaxInPlace(ref.Row(i))
	}
	SoftmaxRowsInPlace(m)
	if !m.AllClose(ref, 1e-6) {
		t.Fatal("parallel softmax diverges from per-row softmax")
	}
}
