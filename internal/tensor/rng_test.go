package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) covered only %d values", len(seen))
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(17)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children should start at distinct states")
	}
}

func TestNewMatrixRandStd(t *testing.T) {
	rng := NewRNG(19)
	m := NewMatrixRand(200, 200, 0.5, rng)
	var sumsq float64
	for _, v := range m.Data {
		sumsq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumsq / float64(m.NumEl()))
	if math.Abs(std-0.5) > 0.02 {
		t.Fatalf("sample std = %v want 0.5", std)
	}
}
