package tensor

import (
	"fmt"
	"math"

	"apollo/internal/runtime"
)

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
// Large matrices reduce in parallel over the runtime package's fixed chunk
// grid, which keeps the bits independent of the worker count.
func (m *Matrix) Sum() float64 {
	if len(m.Data) >= runtime.ParallelReduceMin {
		return runtime.SumChunked(m.Data)
	}
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// AbsSum returns the ℓ1 norm of the flattened matrix.
func (m *Matrix) AbsSum() float64 {
	var s float64
	for _, v := range m.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// SqNorm returns the squared Frobenius norm. Large matrices reduce in
// parallel over the fixed chunk grid (worker-count independent bits).
func (m *Matrix) SqNorm() float64 {
	if len(m.Data) >= runtime.ParallelReduceMin {
		return runtime.SqNormChunked(m.Data)
	}
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return s
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 { return math.Sqrt(m.SqNorm()) }

// Max returns the maximum element; -Inf for an empty matrix.
func (m *Matrix) Max() float32 {
	best := float32(math.Inf(-1))
	for _, v := range m.Data {
		if v > best {
			best = v
		}
	}
	return best
}

// AbsMax returns the maximum |element|; 0 for an empty matrix.
func (m *Matrix) AbsMax() float32 {
	var best float32
	for _, v := range m.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > best {
			best = a
		}
	}
	return best
}

// ColNorms returns the per-column ℓ2 norms.
func (m *Matrix) ColNorms() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += float64(v) * float64(v)
		}
	}
	for j := range out {
		out[j] = math.Sqrt(out[j])
	}
	return out
}

// ColAbsSums returns the per-column ℓ1 norms.
func (m *Matrix) ColAbsSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += math.Abs(float64(v))
		}
	}
	return out
}

// RowNorms returns the per-row ℓ2 norms.
func (m *Matrix) RowNorms() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = math.Sqrt(SqNormSlice(m.Row(i)))
	}
	return out
}

// SqNormSlice returns Σ x².
func SqNormSlice(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}

// NormSlice returns the ℓ2 norm of x.
func NormSlice(x []float32) float64 { return math.Sqrt(SqNormSlice(x)) }

// SoftmaxRowsInPlace applies a numerically stable softmax to each row.
func SoftmaxRowsInPlace(m *Matrix) {
	parallelRows(m.Rows, 16, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			SoftmaxInPlace(m.Row(i))
		}
	})
}

// SoftmaxInPlace applies a numerically stable softmax to x.
func SoftmaxInPlace(x []float32) {
	if len(x) == 0 {
		return
	}
	mx := x[0]
	for _, v := range x[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range x {
		e := float32(math.Exp(float64(v - mx)))
		x[i] = e
		sum += float64(e)
	}
	inv := float32(1.0 / sum)
	for i := range x {
		x[i] *= inv
	}
}

// LogSumExp returns log Σ exp(x) computed stably.
func LogSumExp(x []float32) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	mx := float64(x[0])
	for _, v := range x[1:] {
		if float64(v) > mx {
			mx = float64(v)
		}
	}
	var s float64
	for _, v := range x {
		s += math.Exp(float64(v) - mx)
	}
	return mx + math.Log(s)
}

// ArgMax returns the index of the largest element of x (first on ties).
func ArgMax(x []float32) int {
	if len(x) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Mean returns the arithmetic mean of all elements.
func (m *Matrix) Mean() float64 {
	if m.NumEl() == 0 {
		return 0
	}
	return m.Sum() / float64(m.NumEl())
}

// HasNaN reports whether any element is NaN or ±Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// CheckFinite panics with context if the matrix contains NaN/Inf. Training
// code calls this behind a debug flag.
func (m *Matrix) CheckFinite(label string) {
	if m.HasNaN() {
		panic(fmt.Sprintf("tensor: non-finite values in %s", label))
	}
}
