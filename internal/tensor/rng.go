package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (PCG-XSH-RR 64/32-inspired splitmix64 core). Every stochastic component in
// this repository draws from an RNG seeded explicitly, so all experiments are
// reproducible bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so nearby seeds decorrelate quickly.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 uniformly distributed bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform sample in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	for {
		u1 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// NormFloat32 returns a standard normal sample as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.Norm()) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child generator. The child's stream does not
// overlap the parent's for any practical sequence length.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A5A5A5A5A5)
}

// State returns the generator's full internal state. Together with SetState
// it lets checkpoints persist the exact phase of any RNG stream, so a
// resumed run draws the identical continuation of the sequence.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously captured with State. Unlike NewRNG
// it performs no warm-up: the next draw continues exactly where the
// captured generator left off.
func (r *RNG) SetState(s uint64) { r.state = s }
