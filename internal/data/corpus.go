package data

import (
	"math"

	"apollo/internal/tensor"
)

// Batch is one training batch: Tokens[i] is the input at flat position i and
// Targets[i] the next-token label (standard causal LM shift). Both have
// length B·T, row-major by sequence.
type Batch struct {
	Tokens  []int
	Targets []int
	B, T    int
}

// Corpus yields batches of fresh sequences from a Source. Training batches
// advance an internal RNG; validation batches are fixed by an independent
// seed so every optimizer sees the identical evaluation set (the paper's
// validation-perplexity protocol).
type Corpus struct {
	src     *Source
	trainRG *tensor.RNG
	valSeed uint64

	// HookTrainBatch, when non-nil, post-processes every training batch
	// before NextTrainBatch returns it. Tests use it to produce batches the
	// synthetic source never emits on its own — e.g. fully ignore-masked
	// targets, which exercise the trainers' counted==0 path. The hook runs
	// after the stream RNG has advanced, so it never perturbs the data
	// cursor that checkpoints persist.
	HookTrainBatch func(*Batch)
}

// NewCorpus builds a corpus over src. trainSeed drives the training stream;
// validation content is derived from valSeed.
func NewCorpus(src *Source, trainSeed, valSeed uint64) *Corpus {
	return &Corpus{src: src, trainRG: tensor.NewRNG(trainSeed), valSeed: valSeed}
}

// Source returns the underlying generator.
func (c *Corpus) Source() *Source { return c.src }

// NextTrainBatch samples B sequences of length T (+1 shift token each).
func (c *Corpus) NextTrainBatch(b, t int) Batch {
	batch := c.batchFrom(c.trainRG.Uint64(), b, t)
	if c.HookTrainBatch != nil {
		c.HookTrainBatch(&batch)
	}
	return batch
}

// TrainCursor returns the training stream's RNG phase — the only mutable
// state a corpus carries. Checkpoints persist it so a resumed run draws the
// exact batch sequence an uninterrupted run would have seen.
func (c *Corpus) TrainCursor() uint64 { return c.trainRG.State() }

// SeekTrain restores a cursor captured by TrainCursor.
func (c *Corpus) SeekTrain(cursor uint64) { c.trainRG.SetState(cursor) }

// ValBatch returns the idx-th deterministic validation batch. Calling it
// twice with the same arguments returns identical data.
func (c *Corpus) ValBatch(idx, b, t int) Batch {
	return c.batchFrom(c.valSeed+uint64(idx)*0x9E3779B9, b, t)
}

func (c *Corpus) batchFrom(seed uint64, b, t int) Batch {
	batch := Batch{
		Tokens:  make([]int, b*t),
		Targets: make([]int, b*t),
		B:       b,
		T:       t,
	}
	rng := tensor.NewRNG(seed)
	buf := make([]int, t+1)
	for row := 0; row < b; row++ {
		st := c.src.NewStream(rng.Uint64())
		// Burn in past the copy horizon so sequences are stationary.
		for i := 0; i < c.src.cfg.CopyLagMin; i++ {
			st.Next()
		}
		st.Fill(buf)
		copy(batch.Tokens[row*t:(row+1)*t], buf[:t])
		copy(batch.Targets[row*t:(row+1)*t], buf[1:])
	}
	return batch
}

// UnigramLogLoss returns the cross-entropy (nats/token) of the best constant
// unigram predictor estimated over n sampled tokens — the trivial baseline a
// trained model must beat.
func (c *Corpus) UnigramLogLoss(n int) float64 {
	counts := make([]float64, c.src.cfg.Vocab)
	st := c.src.NewStream(c.valSeed ^ 0xABCDEF)
	for i := 0; i < n; i++ {
		counts[st.Next()]++
	}
	var h float64
	for _, cnt := range counts {
		if cnt > 0 {
			p := cnt / float64(n)
			h -= p * math.Log(p)
		}
	}
	return h
}
