package data

import (
	"math"
	"testing"
	"testing/quick"
)

func testSource(t *testing.T) *Source {
	t.Helper()
	src, err := NewSource(DefaultSourceConfig())
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestSourceConfigValidate(t *testing.T) {
	good := DefaultSourceConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*SourceConfig){
		func(c *SourceConfig) { c.Vocab = 1 },
		func(c *SourceConfig) { c.Branch = 0 },
		func(c *SourceConfig) { c.Branch = c.Vocab + 1 },
		func(c *SourceConfig) { c.CopyProb = 1.5 },
		func(c *SourceConfig) { c.CopyLagMax = c.CopyLagMin - 1 },
		func(c *SourceConfig) { c.TopicSwitch = -0.1 },
	}
	for i, mutate := range cases {
		c := DefaultSourceConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, c)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	src := testSource(t)
	a := src.NewStream(42)
	b := src.NewStream(42)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same stream seed must generate identical tokens")
		}
	}
}

func TestStreamsWithDifferentSeedsDiffer(t *testing.T) {
	src := testSource(t)
	a := src.NewStream(1)
	b := src.NewStream(2)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 150 {
		t.Fatalf("streams nearly identical: %d/200 matches", same)
	}
}

func TestTokensInRange(t *testing.T) {
	src := testSource(t)
	st := src.NewStream(7)
	for i := 0; i < 5000; i++ {
		tok := st.Next()
		if tok < 0 || tok >= src.Config().Vocab {
			t.Fatalf("token %d out of range", tok)
		}
	}
}

func TestStreamIsNotUniform(t *testing.T) {
	// The Markov structure must make the bigram distribution far from
	// uniform — otherwise there is nothing to learn.
	src := testSource(t)
	st := src.NewStream(9)
	prev := st.Next()
	repeats := map[[2]int]int{}
	for i := 0; i < 20000; i++ {
		tok := st.Next()
		repeats[[2]int{prev, tok}]++
		prev = tok
	}
	// A uniform process over 256² bigrams would almost never exceed ~5
	// occurrences of any pair in 20k draws; the Markov chain concentrates.
	maxCount := 0
	for _, c := range repeats {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 10 {
		t.Fatalf("bigram concentration too weak (max count %d)", maxCount)
	}
}

func TestEntropyUpperBoundPositiveAndBelowUniform(t *testing.T) {
	src := testSource(t)
	h := src.EntropyUpperBound()
	if h <= 0 {
		t.Fatalf("entropy bound %v must be positive", h)
	}
	if h >= math.Log(float64(src.Config().Vocab)) {
		t.Fatalf("entropy bound %v must beat uniform %v", h, math.Log(float64(src.Config().Vocab)))
	}
}

func TestBatchShiftInvariant(t *testing.T) {
	src := testSource(t)
	c := NewCorpus(src, 1, 2)
	b := c.NextTrainBatch(3, 16)
	if len(b.Tokens) != 48 || len(b.Targets) != 48 {
		t.Fatalf("batch sizes %d/%d", len(b.Tokens), len(b.Targets))
	}
	// Targets must be inputs shifted by one within each row.
	for row := 0; row < 3; row++ {
		for i := 0; i < 15; i++ {
			if b.Targets[row*16+i] != b.Tokens[row*16+i+1] {
				t.Fatalf("row %d pos %d: target %d != next token %d",
					row, i, b.Targets[row*16+i], b.Tokens[row*16+i+1])
			}
		}
	}
}

func TestValBatchDeterministic(t *testing.T) {
	src := testSource(t)
	c := NewCorpus(src, 1, 99)
	a := c.ValBatch(0, 2, 8)
	b := c.ValBatch(0, 2, 8)
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatal("validation batches must be reproducible")
		}
	}
	other := c.ValBatch(1, 2, 8)
	diff := false
	for i := range a.Tokens {
		if a.Tokens[i] != other.Tokens[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different val indices should give different data")
	}
}

func TestTrainBatchesAdvance(t *testing.T) {
	src := testSource(t)
	c := NewCorpus(src, 5, 6)
	a := c.NextTrainBatch(1, 16)
	b := c.NextTrainBatch(1, 16)
	same := true
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive train batches must differ")
	}
}

func TestUnigramLogLossReasonable(t *testing.T) {
	src := testSource(t)
	c := NewCorpus(src, 1, 2)
	h := c.UnigramLogLoss(20000)
	if h <= 0 || h > math.Log(float64(src.Config().Vocab))+0.01 {
		t.Fatalf("unigram loss %v out of range", h)
	}
}

func TestGenerateMCTaskShape(t *testing.T) {
	src := testSource(t)
	cfg := MCTaskConfig{Name: "t", Items: 10, CtxLen: 8, ContLen: 4, Options: 3, Distractor: 0.5, Seed: 1}
	items := GenerateMCTask(src, cfg)
	if len(items) != 10 {
		t.Fatalf("%d items", len(items))
	}
	for _, it := range items {
		if len(it.Context) != 8 {
			t.Fatalf("ctx len %d", len(it.Context))
		}
		if len(it.Options) != 3 {
			t.Fatalf("%d options", len(it.Options))
		}
		if it.Answer < 0 || it.Answer >= 3 {
			t.Fatalf("answer %d", it.Answer)
		}
		for _, o := range it.Options {
			if len(o) != 4 {
				t.Fatalf("option len %d", len(o))
			}
		}
	}
}

func TestGenerateMCTaskDeterministic(t *testing.T) {
	src := testSource(t)
	cfg := MCTaskConfig{Name: "t", Items: 5, CtxLen: 8, ContLen: 4, Options: 2, Distractor: 0.5, Seed: 7}
	a := GenerateMCTask(src, cfg)
	b := GenerateMCTask(src, cfg)
	for i := range a {
		if a[i].Answer != b[i].Answer {
			t.Fatal("task generation must be deterministic")
		}
	}
}

func TestZeroShotSuiteNames(t *testing.T) {
	suite := ZeroShotSuite(1)
	if len(suite) != 10 {
		t.Fatalf("%d tasks, want 10 (Table 4)", len(suite))
	}
	names := map[string]bool{}
	for _, cfg := range suite {
		if names[cfg.Name] {
			t.Fatalf("duplicate task %q", cfg.Name)
		}
		names[cfg.Name] = true
	}
	for _, want := range []string{"BoolQ", "RTE", "HellaSwag", "WinoGrande", "OBQA", "ARC-E", "ARC-C", "PIQA", "SciQ", "MathQA"} {
		if !names[want] {
			t.Fatalf("missing task %q", want)
		}
	}
}

func TestGenerateFTTaskLabels(t *testing.T) {
	src := testSource(t)
	cfg := FTTaskConfig{Name: "x", Train: 20, Test: 10, CtxLen: 12, Classes: 4, Noise: 0, Seed: 3}
	task := GenerateFTTask(src, cfg)
	if len(task.TrainSet) != 20 || len(task.TestSet) != 10 {
		t.Fatalf("sizes %d/%d", len(task.TrainSet), len(task.TestSet))
	}
	for _, ex := range append(task.TrainSet, task.TestSet...) {
		if ex.Label < 0 || ex.Label >= 4 {
			t.Fatalf("label %d", ex.Label)
		}
		if len(ex.Context) != 12 {
			t.Fatalf("ctx len %d", len(ex.Context))
		}
	}
	if task.LabelBase+task.Cfg.Classes > src.Config().Vocab {
		t.Fatal("label tokens exceed vocab")
	}
}

func TestFTTaskTopicDecodable(t *testing.T) {
	// With zero label noise, contexts from different classes must have
	// different empirical distributions — check that the most frequent
	// token differs between at least one pair of classes.
	src := testSource(t)
	cfg := FTTaskConfig{Name: "x", Train: 200, Test: 10, CtxLen: 24, Classes: 4, Noise: 0, Seed: 5}
	task := GenerateFTTask(src, cfg)
	hist := make([][]int, 4)
	for i := range hist {
		hist[i] = make([]int, src.Config().Vocab)
	}
	for _, ex := range task.TrainSet {
		for _, tok := range ex.Context {
			hist[ex.Label][tok]++
		}
	}
	argmax := func(xs []int) int {
		bi, best := 0, xs[0]
		for i, v := range xs {
			if v > best {
				bi, best = i, v
			}
		}
		return bi
	}
	tops := map[int]bool{}
	for _, h := range hist {
		tops[argmax(h)] = true
	}
	if len(tops) < 2 {
		t.Fatal("class-conditional distributions indistinguishable")
	}
}

func TestSuitesHaveExpectedSizes(t *testing.T) {
	if got := len(CommonsenseSuite(1)); got != 8 {
		t.Fatalf("commonsense suite %d tasks, want 8 (Table 5)", got)
	}
	if got := len(MMLUSuite(1)); got != 4 {
		t.Fatalf("MMLU suite %d domains, want 4 (Table 6)", got)
	}
}

func TestStreamPropertyTokensBounded(t *testing.T) {
	src := testSource(t)
	f := func(seed uint64) bool {
		st := src.NewStream(seed)
		for i := 0; i < 64; i++ {
			tok := st.Next()
			if tok < 0 || tok >= src.Config().Vocab {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
