// Package data provides the synthetic corpus and task generators that stand
// in for C4 and the zero-shot/fine-tuning suites in the paper (the repo has
// no network access and no tokenized C4). The generator is a hierarchical
// Markov process: a latent topic chain modulates per-token transition
// tables with Zipf-weighted successors, and a small copy mechanism injects
// long-range dependencies so that longer context windows genuinely lower the
// achievable loss (needed for the Fig. 7 long-context experiment).
//
// What matters for reproducing the paper is not the text itself but that the
// stream (a) is learnable, (b) has capacity-dependent achievable loss, and
// (c) produces dense, noisy transformer gradients — which is what drives the
// optimizer comparisons.
package data

import (
	"fmt"
	"math"

	"apollo/internal/tensor"
)

// SourceConfig parameterizes the synthetic language.
type SourceConfig struct {
	Vocab       int     // token alphabet size
	Topics      int     // latent topic states
	Branch      int     // successor fan-out per (topic, token)
	TopicSwitch float64 // probability of resampling the topic per step
	CopyProb    float64 // probability of emitting a long-range copy
	CopyLagMin  int     // minimum copy distance
	CopyLagMax  int     // maximum copy distance
	Seed        uint64  // structure seed (fixes the language itself)
}

// DefaultSourceConfig returns the configuration used by the experiment
// harness: a 256-token alphabet, 8 topics, mild branching.
func DefaultSourceConfig() SourceConfig {
	return SourceConfig{
		Vocab:       256,
		Topics:      8,
		Branch:      6,
		TopicSwitch: 0.02,
		CopyProb:    0.08,
		CopyLagMin:  16,
		CopyLagMax:  192,
		Seed:        0xC4C4C4,
	}
}

// Validate checks configuration consistency.
func (c SourceConfig) Validate() error {
	if c.Vocab < 2 || c.Topics < 1 || c.Branch < 1 {
		return fmt.Errorf("data: invalid source config %+v", c)
	}
	if c.Branch > c.Vocab {
		return fmt.Errorf("data: branch %d exceeds vocab %d", c.Branch, c.Vocab)
	}
	if c.CopyProb < 0 || c.CopyProb >= 1 || c.TopicSwitch < 0 || c.TopicSwitch > 1 {
		return fmt.Errorf("data: invalid probabilities in %+v", c)
	}
	if c.CopyLagMin < 1 || c.CopyLagMax < c.CopyLagMin {
		return fmt.Errorf("data: invalid copy lags in %+v", c)
	}
	return nil
}

// Source is an instantiated synthetic language: fixed transition structure
// shared by every stream drawn from it.
type Source struct {
	cfg SourceConfig
	// succ[topic][token] lists Branch successor tokens; probs are the
	// shared Zipf-like weights over branch slots.
	succ  [][][]int32
	cumul []float64 // cumulative branch weights, length Branch
}

// NewSource builds the language structure deterministically from cfg.Seed.
func NewSource(cfg SourceConfig) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	s := &Source{cfg: cfg}
	s.succ = make([][][]int32, cfg.Topics)
	for t := 0; t < cfg.Topics; t++ {
		s.succ[t] = make([][]int32, cfg.Vocab)
		for v := 0; v < cfg.Vocab; v++ {
			list := make([]int32, cfg.Branch)
			for b := range list {
				list[b] = int32(rng.Intn(cfg.Vocab))
			}
			s.succ[t][v] = list
		}
	}
	// Zipf-like branch weights: w_b ∝ 1/(b+1), shared across all contexts.
	weights := make([]float64, cfg.Branch)
	var total float64
	for b := range weights {
		weights[b] = 1 / float64(b+1)
		total += weights[b]
	}
	s.cumul = make([]float64, cfg.Branch)
	acc := 0.0
	for b := range weights {
		acc += weights[b] / total
		s.cumul[b] = acc
	}
	return s, nil
}

// Config returns the source configuration.
func (s *Source) Config() SourceConfig { return s.cfg }

// Stream is one infinite token sequence drawn from a Source.
type Stream struct {
	src     *Source
	rng     *tensor.RNG
	topic   int
	prev    int
	history []int32
}

// NewStream starts a stream with its own RNG seed (content seed; the
// language structure stays fixed).
func (s *Source) NewStream(seed uint64) *Stream {
	rng := tensor.NewRNG(seed)
	return &Stream{
		src:   s,
		rng:   rng,
		topic: rng.Intn(s.cfg.Topics),
		prev:  rng.Intn(s.cfg.Vocab),
	}
}

// Next emits the next token.
func (st *Stream) Next() int {
	cfg := st.src.cfg
	if st.rng.Float64() < cfg.TopicSwitch {
		st.topic = st.rng.Intn(cfg.Topics)
	}
	var tok int
	if len(st.history) > cfg.CopyLagMin && st.rng.Float64() < cfg.CopyProb {
		span := cfg.CopyLagMax - cfg.CopyLagMin + 1
		lag := cfg.CopyLagMin + st.rng.Intn(span)
		if lag >= len(st.history) {
			lag = len(st.history)
		}
		tok = int(st.history[len(st.history)-lag])
	} else {
		u := st.rng.Float64()
		b := 0
		for b < cfg.Branch-1 && u > st.src.cumul[b] {
			b++
		}
		tok = int(st.src.succ[st.topic][st.prev][b])
	}
	st.prev = tok
	st.history = append(st.history, int32(tok))
	if len(st.history) > cfg.CopyLagMax*2 {
		// Keep the window bounded; copies never reach further back.
		st.history = st.history[len(st.history)-cfg.CopyLagMax:]
	}
	return tok
}

// Topic returns the current latent topic (used by the task generators to
// derive labels).
func (st *Stream) Topic() int { return st.topic }

// Fill writes n consecutive tokens into dst.
func (st *Stream) Fill(dst []int) {
	for i := range dst {
		dst[i] = st.Next()
	}
}

// EntropyUpperBound estimates the per-token conditional entropy of the
// Markov component in nats (ignoring the copy mechanism, which only lowers
// it for long-context models). Training perplexity should approach
// exp(H) from above as capacity grows.
func (s *Source) EntropyUpperBound() float64 {
	var h float64
	prev := 0.0
	for b := 0; b < s.cfg.Branch; b++ {
		p := s.cumul[b] - prev
		prev = s.cumul[b]
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}
