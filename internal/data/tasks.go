package data

import (
	"fmt"

	"apollo/internal/tensor"
)

// MCItem is one multiple-choice item: a shared context followed by K
// candidate continuations, exactly one of which was really sampled from the
// source. Zero-shot accuracy = fraction of items where the model assigns the
// correct continuation the highest conditional likelihood — the same
// likelihood-comparison protocol used by lm-eval-harness for BoolQ, ARC,
// PIQA, etc.
type MCItem struct {
	Context []int   // shared prefix (len ctxLen; may be empty)
	Options [][]int // K continuations, each contLen tokens
	Answer  int     // index of the genuine continuation
}

// MCTaskConfig controls the difficulty profile of a generated suite. The
// paper's ten zero-shot tasks are emulated by ten configs differing in
// context length, continuation length and distractor temperature.
type MCTaskConfig struct {
	Name       string
	Items      int
	CtxLen     int
	ContLen    int
	Options    int
	Distractor float64 // 0 = uniform-random distractors (easy) … 1 = sampled from the true source (hard)
	Seed       uint64
}

// GenerateMCTask builds a deterministic suite of items from the source.
func GenerateMCTask(src *Source, cfg MCTaskConfig) []MCItem {
	if cfg.Options < 2 {
		panic(fmt.Sprintf("data: task %q needs ≥2 options", cfg.Name))
	}
	rng := tensor.NewRNG(cfg.Seed)
	items := make([]MCItem, cfg.Items)
	for i := range items {
		st := src.NewStream(rng.Uint64())
		for b := 0; b < src.cfg.CopyLagMin; b++ {
			st.Next()
		}
		ctx := make([]int, cfg.CtxLen)
		st.Fill(ctx)
		correct := make([]int, cfg.ContLen)
		st.Fill(correct)

		options := make([][]int, cfg.Options)
		answer := rng.Intn(cfg.Options)
		for o := range options {
			if o == answer {
				options[o] = correct
				continue
			}
			opt := make([]int, cfg.ContLen)
			if rng.Float64() < cfg.Distractor {
				// Hard distractor: genuine source text from an unrelated
				// stream — plausible surface statistics, wrong content.
				alt := src.NewStream(rng.Uint64())
				for b := 0; b < src.cfg.CopyLagMin; b++ {
					alt.Next()
				}
				alt.Fill(opt)
			} else {
				for j := range opt {
					opt[j] = rng.Intn(src.cfg.Vocab)
				}
			}
			options[o] = opt
		}
		items[i] = MCItem{Context: ctx, Options: options, Answer: answer}
	}
	return items
}

// ZeroShotSuite returns the ten task configs mirroring Table 4's evaluation
// set. Difficulty increases with distractor quality; context/continuation
// lengths vary the way the real suites do (short yes/no style vs long
// cloze-completion style).
func ZeroShotSuite(seed uint64) []MCTaskConfig {
	mk := func(name string, ctx, cont, opts int, distractor float64, i uint64) MCTaskConfig {
		return MCTaskConfig{
			Name: name, Items: 120, CtxLen: ctx, ContLen: cont,
			Options: opts, Distractor: distractor, Seed: seed + i*7919,
		}
	}
	return []MCTaskConfig{
		mk("BoolQ", 48, 4, 2, 0.30, 1),
		mk("RTE", 40, 4, 2, 0.85, 2),
		mk("HellaSwag", 32, 12, 4, 0.55, 3),
		mk("WinoGrande", 24, 4, 2, 0.60, 4),
		mk("OBQA", 24, 8, 4, 0.45, 5),
		mk("ARC-E", 24, 8, 4, 0.30, 6),
		mk("ARC-C", 24, 8, 4, 0.70, 7),
		mk("PIQA", 32, 8, 2, 0.35, 8),
		mk("SciQ", 32, 8, 4, 0.25, 9),
		mk("MathQA", 24, 6, 5, 0.80, 10),
	}
}

// FTExample is one supervised fine-tuning example: a context whose latent
// topic determines the label token. The model is trained to emit the label
// after the context (classification-as-LM, the protocol used by the paper's
// commonsense fine-tuning suite).
type FTExample struct {
	Context []int
	Label   int // label token id (within [0, classes))
}

// FTTaskConfig describes a fine-tuning task.
type FTTaskConfig struct {
	Name    string
	Train   int // number of training examples
	Test    int // number of held-out examples
	CtxLen  int
	Classes int
	Noise   float64 // label-noise probability: higher = lower achievable accuracy
	Seed    uint64
}

// FTTask is a generated fine-tuning dataset.
type FTTask struct {
	Cfg       FTTaskConfig
	TrainSet  []FTExample
	TestSet   []FTExample
	LabelBase int // labels occupy token ids [LabelBase, LabelBase+Classes)
	SepToken  int // separator emitted between context and label
}

// GenerateFTTask builds a topic-classification task over the source. Labels
// are topic ids mapped into the upper vocab range so that pretraining has
// seen the tokens but attaches no prior meaning to them.
func GenerateFTTask(src *Source, cfg FTTaskConfig) *FTTask {
	if cfg.Classes > src.cfg.Topics {
		cfg.Classes = src.cfg.Topics
	}
	rng := tensor.NewRNG(cfg.Seed)
	labelBase := src.cfg.Vocab - cfg.Classes - 1
	sep := src.cfg.Vocab - 1
	gen := func(n int) []FTExample {
		out := make([]FTExample, n)
		for i := range out {
			// Hold the topic fixed for the whole context so it is decodable.
			topicWant := rng.Intn(cfg.Classes)
			st := src.NewStream(rng.Uint64())
			st.topic = topicWant
			ctx := make([]int, cfg.CtxLen)
			for j := range ctx {
				// Suppress topic switching: resample manually from the
				// chosen topic's row.
				st.topic = topicWant
				ctx[j] = st.Next()
			}
			label := topicWant
			if rng.Float64() < cfg.Noise {
				label = rng.Intn(cfg.Classes)
			}
			out[i] = FTExample{Context: ctx, Label: label}
		}
		return out
	}
	return &FTTask{
		Cfg:       cfg,
		TrainSet:  gen(cfg.Train),
		TestSet:   gen(cfg.Test),
		LabelBase: labelBase,
		SepToken:  sep,
	}
}

// CommonsenseSuite mirrors Table 5's eight fine-tuning tasks.
func CommonsenseSuite(seed uint64) []FTTaskConfig {
	mk := func(name string, classes int, noise float64, i uint64) FTTaskConfig {
		return FTTaskConfig{
			Name: name, Train: 160, Test: 96, CtxLen: 24,
			Classes: classes, Noise: noise, Seed: seed + i*104729,
		}
	}
	return []FTTaskConfig{
		mk("WG", 2, 0.22, 1),
		mk("PIQA", 2, 0.15, 2),
		mk("SIQA", 3, 0.18, 3),
		mk("OBQA", 4, 0.20, 4),
		mk("HS", 4, 0.22, 5),
		mk("BoolQ", 2, 0.25, 6),
		mk("ARC-E", 4, 0.14, 7),
		mk("ARC-C", 4, 0.28, 8),
	}
}

// MMLUSuite mirrors Table 6's four domains.
func MMLUSuite(seed uint64) []FTTaskConfig {
	mk := func(name string, noise float64, i uint64) FTTaskConfig {
		return FTTaskConfig{
			Name: name, Train: 128, Test: 96, CtxLen: 24,
			Classes: 4, Noise: noise, Seed: seed + i*15485863,
		}
	}
	return []FTTaskConfig{
		mk("STEM", 0.30, 1),
		mk("SocialSciences", 0.18, 2),
		mk("Humanities", 0.26, 3),
		mk("Other", 0.21, 4),
	}
}
