// Checkpoint gather/scatter: the elastic half of checkpoint/resume. A
// Sharded optimizer saves its state in the *canonical unsharded layout* —
// for every parameter, the full-row state exactly as one unsharded inner
// optimizer would expose it — by merging the row segments owned by
// different shards on capture and re-slicing them for the current partition
// on restore. Because the on-disk layout never mentions the world size, a
// checkpoint written under `-replicas N -zero` resumes under any
// `-replicas M -zero` (the new Init computes a fresh partition and the
// scatter follows it) or under a plain unsharded optimizer, bit-for-bit.
//
// Globals (the projector-seed RNG phase for GaLore/Fira/Flora/APOLLO) are
// identical across shards by construction: every shard's PrepareShard walks
// the full parameter list in global order, consuming the seed stream
// exactly as an unsharded first Step would. Capture verifies that invariant
// and refuses to write a checkpoint if any shard disagrees — which is what
// keeps the non-shardable 8-bit stochastic-rounding optimizers from
// silently producing a bogus canonical state.
package zero

import (
	"fmt"

	"apollo/internal/nn"
	"apollo/internal/optim"
)

// CheckpointName implements optim.CheckpointNamer: checkpoints are keyed by
// the inner optimizer's identity, not the world size, so they reshard.
func (s *Sharded) CheckpointName() string {
	if n, ok := s.inner[0].(optim.CheckpointNamer); ok {
		return n.CheckpointName()
	}
	return s.inner[0].Name()
}

// saver returns shard i's inner optimizer as a StateSaver.
func (s *Sharded) saver(i int) (optim.StateSaver, error) {
	sv, ok := s.inner[i].(optim.StateSaver)
	if !ok {
		return nil, fmt.Errorf("zero: inner optimizer %s is not checkpointable", s.inner[i].Name())
	}
	return sv, nil
}

// loader returns shard i's inner optimizer as a StateLoader.
func (s *Sharded) loader(i int) (optim.StateLoader, error) {
	ld, ok := s.inner[i].(optim.StateLoader)
	if !ok {
		return nil, fmt.Errorf("zero: inner optimizer %s is not checkpointable", s.inner[i].Name())
	}
	return ld, nil
}

// CaptureGlobals implements optim.StateSaver: the canonical global cursors,
// verified identical across every shard.
func (s *Sharded) CaptureGlobals() ([]uint64, error) {
	first, err := s.saver(0)
	if err != nil {
		return nil, err
	}
	ref, err := first.CaptureGlobals()
	if err != nil {
		return nil, err
	}
	for i := 1; i < s.n; i++ {
		sv, err := s.saver(i)
		if err != nil {
			return nil, err
		}
		gs, err := sv.CaptureGlobals()
		if err != nil {
			return nil, err
		}
		if len(gs) != len(ref) {
			return nil, fmt.Errorf("zero: shard %d has %d global cursors, shard 0 has %d", i, len(gs), len(ref))
		}
		for j := range gs {
			if gs[j] != ref[j] {
				return nil, fmt.Errorf("zero: shard %d global cursor %d diverged from shard 0 — %s has per-shard randomness and cannot be checkpointed canonically",
					i, j, s.inner[0].Name())
			}
		}
	}
	return ref, nil
}

// CaptureParam implements optim.StateSaver: gather the parameter's state
// from its owner shard(s) into the canonical full-row layout.
func (s *Sharded) CaptureParam(p *nn.Param) (*optim.ParamState, error) {
	if !s.ready {
		return nil, fmt.Errorf("zero: CaptureParam before Init")
	}
	idx, ok := s.paramIndex[p]
	if !ok {
		return nil, fmt.Errorf("zero: CaptureParam for unknown parameter %s", p.Name)
	}
	units := s.unitsByParam[idx]
	if len(units) == 1 && s.wholeUnit(units[0]) {
		sv, err := s.saver(s.ownerOf[units[0]])
		if err != nil {
			return nil, err
		}
		return sv.CaptureParam(p)
	}

	parts := make([]*optim.ParamState, 0, len(units))
	segs := make([][2]int, 0, len(units))
	absent := 0
	for _, u := range units {
		sv, err := s.saver(s.ownerOf[u])
		if err != nil {
			return nil, err
		}
		part, err := sv.CaptureParam(s.views[u])
		if err != nil {
			return nil, err
		}
		if part == nil {
			absent++
			continue
		}
		parts = append(parts, part)
		segs = append(segs, [2]int{s.segs[u].Row0, s.segs[u].Row1})
	}
	if absent == len(units) {
		return nil, nil
	}
	if absent > 0 {
		return nil, fmt.Errorf("zero: parameter %s has state on only %d of %d segments", p.Name, len(parts), len(units))
	}
	merged, err := optim.MergeRowStates(p.W.Rows, parts, segs)
	if err != nil {
		return nil, fmt.Errorf("zero: gather %s: %w", p.Name, err)
	}
	return merged, nil
}

// RestoreGlobals implements optim.StateLoader: every shard receives the
// same canonical cursors, restoring the cross-shard invariant.
func (s *Sharded) RestoreGlobals(gs []uint64) error {
	for i := 0; i < s.n; i++ {
		ld, err := s.loader(i)
		if err != nil {
			return err
		}
		if err := ld.RestoreGlobals(gs); err != nil {
			return err
		}
	}
	return nil
}

// RestoreParam implements optim.StateLoader: scatter the canonical state
// across the current partition, slicing row-aligned matrices per segment.
// The partition restored into need not match the one that saved — this is
// the elastic-resharding entry point.
func (s *Sharded) RestoreParam(p *nn.Param, st *optim.ParamState) error {
	if !s.ready {
		return fmt.Errorf("zero: RestoreParam before Init")
	}
	idx, ok := s.paramIndex[p]
	if !ok {
		return fmt.Errorf("zero: RestoreParam for unknown parameter %s", p.Name)
	}
	units := s.unitsByParam[idx]
	if len(units) == 1 && s.wholeUnit(units[0]) {
		ld, err := s.loader(s.ownerOf[units[0]])
		if err != nil {
			return err
		}
		return ld.RestoreParam(p, st)
	}
	for _, u := range units {
		seg := s.segs[u]
		sub, err := st.SliceRows(seg.Row0, seg.Row1)
		if err != nil {
			return fmt.Errorf("zero: scatter %s: %w", p.Name, err)
		}
		ld, err := s.loader(s.ownerOf[u])
		if err != nil {
			return err
		}
		if err := ld.RestoreParam(s.views[u], sub); err != nil {
			return err
		}
	}
	return nil
}

// wholeUnit reports whether unit u covers all rows of its parameter (in
// which case its view *is* the original parameter and no row surgery is
// needed — the path every projected parameter takes).
func (s *Sharded) wholeUnit(u int) bool {
	seg := s.segs[u]
	return seg.Row0 == 0 && seg.Row1 == s.all[seg.Param].W.Rows
}
