// Package zero implements ZeRO-style sharded optimizer states (Rajbhandari
// et al., 2020) on top of the data-parallel trainer: the remaining
// optimizer state — already shrunk by APOLLO's rank reduction — is
// partitioned across the DP replicas so each holds only ~1/N of it.
//
// Sharded wraps any optim.Optimizer constructor. Ownership is partitioned
// at row-segment granularity: parameters whose update the inner optimizer
// reports as element-wise (optim.StateIntrospector.RowSplittable — dense
// AdamW state, embeddings, SGD velocity) may be split across row ranges,
// mirroring ZeRO's flat partitioning, while projected parameters (whose
// subspace statistics couple the whole matrix) stay whole. Units are
// weighted by introspected state cost, so the thing that actually gets
// balanced is the footprint ZeRO divides — not parameter count. Each shard
// gets its own inner optimizer instance that steps only the owned
// segments; updated weights then flow to the other replicas via the same
// balanced-tree pattern the DP trainer uses for gradients (see
// internal/train/dp.go).
//
// Determinism contract. Sharded stepping is bit-identical to the unsharded
// inner optimizer whenever (1) the inner update for a parameter depends
// only on that parameter's own gradient and state — true across the zoo —
// with row splits applied only where the update is element- or row-wise,
// and (2) any order-dependent randomness is consumed in global parameter
// order, which the optim.StateSharder hook restores for the
// seeded-projection methods (GaLore, Fira, Flora, APOLLO). Consequently
// `-replicas N -zero` reproduces `-replicas 1` float-for-float while each
// replica's measured StateBytes is ~1/N of the unsharded footprint
// (enforced by TestShardedStepParity and train.TestZeroDPParity). The
// 8-bit optimizers are the exception: their stochastic rounding draws from
// a shared per-step RNG, so they stay exact only at one shard.
package zero

import (
	"fmt"
	"sync"

	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// rowView wraps rows of a row-major matrix as a matrix sharing the backing
// storage — writes through the view land in the original tensor.
func rowView(m *tensor.Matrix, rows, lo, hi int) *tensor.Matrix {
	return &tensor.Matrix{Rows: rows, Cols: m.Cols, Data: m.Data[lo:hi]}
}

// Sharded partitions optimizer state across N owner shards. It implements
// optim.Optimizer (Step runs every shard, so it is a drop-in replacement
// in any training loop) and optim.ShardedStepper (the DP trainer steps
// each shard on its owner replica and tree-broadcasts the weights).
type Sharded struct {
	inner []optim.Optimizer
	n     int

	all   []*nn.Param
	segs  []optim.Segment // all ownership units, ascending (Param, Row0)
	views []*nn.Param     // view param per unit (aliases the unit's rows)
	parts [][]int         // per-shard unit indices
	ready bool

	// Checkpoint gather/scatter indexes (built by Init).
	ownerOf      []int             // unit index → owning shard
	unitsByParam [][]int           // param index → unit indices, ascending Row0
	paramIndex   map[*nn.Param]int // original param pointer → index in all
}

// NewSharded builds a wrapper with one inner optimizer per shard. The
// constructor must return a fresh, identically configured instance on every
// call (same seeds — the StateSharder walk, not the constructor, is what
// differentiates the shards).
func NewSharded(build func() optim.Optimizer, replicas int) *Sharded {
	if replicas < 1 {
		replicas = 1
	}
	s := &Sharded{inner: make([]optim.Optimizer, replicas), n: replicas}
	for i := range s.inner {
		s.inner[i] = build()
	}
	return s
}

// viewOf materializes a Segment as a parameter aliasing the rows
// [Row0, Row1) of p — weight and gradient share p's backing storage, so
// stepping the view steps those rows of p in place. A whole-parameter
// segment returns p itself (projected optimizers key their state on the
// original pointer).
func viewOf(p *nn.Param, seg optim.Segment) *nn.Param {
	if seg.Row0 == 0 && seg.Row1 == p.W.Rows {
		return p
	}
	rows := seg.Row1 - seg.Row0
	lo, hi := seg.Row0*p.W.Cols, seg.Row1*p.W.Cols
	return &nn.Param{
		Name: fmt.Sprintf("%s[%d:%d]", p.Name, seg.Row0, seg.Row1),
		Kind: p.Kind,
		W:    rowView(p.W, rows, lo, hi),
		Grad: rowView(p.Grad, rows, lo, hi),
	}
}

// Init implements optim.ShardedStepper: build the ownership units,
// partition them by introspected state cost and prepare each shard's inner
// optimizer. Idempotent for the same list; a Sharded instance is bound to
// one parameter list for its lifetime.
func (s *Sharded) Init(all []*nn.Param) {
	if s.ready {
		if len(all) != len(s.all) || (len(all) > 0 && all[0] != s.all[0]) {
			panic("zero: Sharded re-initialized with a different parameter list")
		}
		return
	}
	s.all = all
	intro, _ := s.inner[0].(optim.StateIntrospector)

	// Build units: whole parameters by default; element-wise parameters
	// split into up to N balanced row chunks so no single tensor's state
	// can unbalance the shards (ZeRO's flat-partition property at row
	// granularity).
	for i, p := range all {
		chunks := 1
		if intro != nil && intro.RowSplittable(p) && s.n > 1 {
			chunks = s.n
			if chunks > p.W.Rows {
				chunks = p.W.Rows
			}
		}
		for c := 0; c < chunks; c++ {
			seg := optim.Segment{
				Param: i,
				Row0:  c * p.W.Rows / chunks,
				Row1:  (c + 1) * p.W.Rows / chunks,
			}
			s.segs = append(s.segs, seg)
			s.views = append(s.views, viewOf(p, seg))
		}
	}

	// Weight units by state cost (the quantity ZeRO balances), with the
	// unit's element count as a minor tiebreaker so zero-state methods
	// still spread their weight-broadcast payload.
	weights := make([]int64, len(s.views))
	for u, v := range s.views {
		cost := int64(v.NumEl())
		if intro != nil {
			cost = intro.StateElemsFor(v)*256 + int64(v.NumEl())
		}
		weights[u] = cost
	}
	s.parts = PartitionWeighted(weights, s.n)

	// Index ownership for the checkpoint gather/scatter paths: which shard
	// owns each unit, and which units tile each parameter.
	s.ownerOf = make([]int, len(s.segs))
	for shard, units := range s.parts {
		for _, u := range units {
			s.ownerOf[u] = shard
		}
	}
	s.unitsByParam = make([][]int, len(all))
	for u, seg := range s.segs {
		s.unitsByParam[seg.Param] = append(s.unitsByParam[seg.Param], u)
	}
	s.paramIndex = make(map[*nn.Param]int, len(all))
	for i, p := range all {
		s.paramIndex[p] = i
	}

	for shard, units := range s.parts {
		own := make(map[*nn.Param]bool, len(units))
		for _, u := range units {
			own[s.views[u]] = true
		}
		if sh, ok := s.inner[shard].(optim.StateSharder); ok {
			// Whole-parameter units reuse the original pointer, so the
			// global walk sees owned projectable params; split units are
			// never projectable and allocate their dense state lazily.
			sh.PrepareShard(all, func(p *nn.Param) bool { return own[p] })
		}
	}
	s.ready = true
}

// Shards implements optim.ShardedStepper.
func (s *Sharded) Shards() int { return s.n }

// OwnedSegments implements optim.ShardedStepper.
func (s *Sharded) OwnedSegments(shard int) []optim.Segment {
	out := make([]optim.Segment, len(s.parts[shard]))
	for i, u := range s.parts[shard] {
		out[i] = s.segs[u]
	}
	return out
}

// StepShard implements optim.ShardedStepper. Shards own disjoint rows and
// separate inner optimizers, so concurrent calls for distinct shards are
// race-free.
func (s *Sharded) StepShard(shard int) {
	if !s.ready {
		panic("zero: StepShard before Init")
	}
	ps := make([]*nn.Param, len(s.parts[shard]))
	for i, u := range s.parts[shard] {
		ps[i] = s.views[u]
	}
	s.inner[shard].Step(ps)
}

// Step implements optim.Optimizer: initialize on first use, then run every
// shard concurrently. Bit-identical to the unsharded inner optimizer (see
// the package contract), so Sharded drops into the fused loop too.
func (s *Sharded) Step(ps []*nn.Param) {
	s.Init(ps)
	var wg sync.WaitGroup
	for shard := 0; shard < s.n; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			s.StepShard(shard)
		}(shard)
	}
	wg.Wait()
}

// Name implements optim.Optimizer.
func (s *Sharded) Name() string {
	return fmt.Sprintf("%s+ZeRO%d", s.inner[0].Name(), s.n)
}

// SetLR implements optim.Optimizer.
func (s *Sharded) SetLR(lr float64) {
	for _, o := range s.inner {
		o.SetLR(lr)
	}
}

// LR implements optim.Optimizer.
func (s *Sharded) LR() float64 { return s.inner[0].LR() }

// StateBytes implements optim.Optimizer: the aggregate footprint across all
// shards — what one unsharded instance would hold.
func (s *Sharded) StateBytes() int64 {
	var total int64
	for _, o := range s.inner {
		total += o.StateBytes()
	}
	return total
}

// ReplicaStateBytes implements optim.ShardedStepper: each shard's resident
// footprint, the number the paper-style memory tables care about per GPU.
func (s *Sharded) ReplicaStateBytes() []int64 {
	out := make([]int64, s.n)
	for i, o := range s.inner {
		out[i] = o.StateBytes()
	}
	return out
}
