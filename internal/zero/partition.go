package zero

import (
	"sort"

	"apollo/internal/nn"
)

// PartitionWeighted splits unit indices 0..len(weights)-1 into n
// deterministic, balanced shards by greedy largest-first: units are visited
// in decreasing weight (ties broken by unit index) and each is assigned to
// the currently lightest shard (ties broken by lowest shard id). The
// assignment depends only on the weights and n — never on map iteration,
// scheduling or addresses — so every replica computes the same ownership.
// Greedy largest-first guarantees max-shard load ≤ ideal + largest unit;
// TestPartitionBalance enforces that bound.
func PartitionWeighted(weights []int64, n int) [][]int {
	if n < 1 {
		n = 1
	}
	if n > len(weights) {
		n = len(weights)
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})

	shards := make([][]int, n)
	loads := make([]int64, n)
	for _, idx := range order {
		best := 0
		for s := 1; s < n; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		shards[best] = append(shards[best], idx)
		loads[best] += weights[idx]
	}
	for s := range shards {
		sort.Ints(shards[s])
	}
	return shards
}

// Partition is the whole-parameter convenience form: a size-balanced
// partition of the list by element count, one unit per parameter. The
// Sharded wrapper partitions finer (row segments weighted by introspected
// state cost); this form is the shape-only contract exported for callers
// and the balance tests.
func Partition(params []*nn.Param, n int) [][]int {
	weights := make([]int64, len(params))
	for i, p := range params {
		weights[i] = int64(p.NumEl())
	}
	return PartitionWeighted(weights, n)
}
