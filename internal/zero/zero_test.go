package zero

import (
	"fmt"
	"reflect"
	"testing"

	"apollo/internal/core"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// testParams builds a parameter list shaped like a small model: a mix of
// matrices, an embedding and vectors, with unequal sizes so balancing is
// non-trivial.
func testParams(seed uint64) []*nn.Param {
	rng := tensor.NewRNG(seed)
	mk := func(name string, kind nn.ParamKind, rows, cols int) *nn.Param {
		return nn.NewParam(name, kind, tensor.NewMatrixRand(rows, cols, 0.1, rng))
	}
	return []*nn.Param{
		mk("embed", nn.KindEmbedding, 64, 16),
		mk("norm1", nn.KindVector, 1, 16),
		mk("wq", nn.KindMatrix, 16, 16),
		mk("wk", nn.KindMatrix, 16, 16),
		mk("wv", nn.KindMatrix, 16, 16),
		mk("wo", nn.KindMatrix, 16, 16),
		mk("gate", nn.KindMatrix, 40, 16),
		mk("up", nn.KindMatrix, 40, 16),
		mk("down", nn.KindMatrix, 16, 40),
		mk("norm2", nn.KindVector, 1, 16),
		mk("head", nn.KindMatrix, 64, 16),
	}
}

func TestPartitionBalance(t *testing.T) {
	params := testParams(1)
	var total, largest int64
	for _, p := range params {
		total += int64(p.NumEl())
		if int64(p.NumEl()) > largest {
			largest = int64(p.NumEl())
		}
	}
	for _, n := range []int{1, 2, 3, 4, 7} {
		parts := Partition(params, n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d shards", n, len(parts))
		}
		seen := map[int]bool{}
		for _, idxs := range parts {
			for _, i := range idxs {
				if seen[i] {
					t.Fatalf("n=%d: index %d owned twice", n, i)
				}
				seen[i] = true
			}
		}
		if len(seen) != len(params) {
			t.Fatalf("n=%d: %d of %d params owned", n, len(seen), len(params))
		}
		// Greedy largest-first bound: max load ≤ ideal + largest item.
		ideal := total / int64(n)
		for s, idxs := range parts {
			var load int64
			for _, i := range idxs {
				load += int64(params[i].NumEl())
			}
			if load > ideal+largest {
				t.Fatalf("n=%d shard %d holds %d elems, bound %d", n, s, load, ideal+largest)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := Partition(testParams(1), 4)
	b := Partition(testParams(2), 4) // same shapes, different values/addresses
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition depends on more than shapes:\n%v\n%v", a, b)
	}
}

func TestPartitionClampsShardCount(t *testing.T) {
	params := testParams(1)
	parts := Partition(params, len(params)+5)
	if len(parts) != len(params) {
		t.Fatalf("got %d shards for %d params", len(parts), len(params))
	}
	if len(Partition(params, 0)) != 1 {
		t.Fatal("n=0 should clamp to one shard")
	}
}

// fillGrads writes a deterministic pseudo-gradient into every parameter.
func fillGrads(params []*nn.Param, step int) {
	rng := tensor.NewRNG(uint64(step)*7919 + 13)
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat32() * 0.05
		}
	}
}

// shardableBuilders covers every optimizer family the determinism contract
// claims: per-param-independent updates, with the StateSharder hook for the
// seeded-projection methods. Small rank and update gap exercise projection
// refreshes within the test horizon.
func shardableBuilders() map[string]func() optim.Optimizer {
	h := optim.Hyper{LR: 0.01, WeightDecay: 0.1}
	return map[string]func() optim.Optimizer{
		"AdamW":     func() optim.Optimizer { return optim.NewAdamW(h) },
		"SGD-M":     func() optim.Optimizer { return optim.NewSGD(h, 0.9) },
		"Adam-mini": func() optim.Optimizer { return optim.NewAdamMini(h) },
		"GaLore": func() optim.Optimizer {
			return optim.NewGaLore(h, optim.LowRankConfig{Rank: 4, Seed: 11, UpdateGap: 3})
		},
		"Fira": func() optim.Optimizer {
			return optim.NewFira(h, optim.LowRankConfig{Rank: 4, Seed: 11, UpdateGap: 3})
		},
		"Flora": func() optim.Optimizer {
			return optim.NewFlora(h, optim.LowRankConfig{Rank: 4, Seed: 11, UpdateGap: 3})
		},
		"APOLLO": func() optim.Optimizer {
			return core.New(h, core.Config{Rank: 4, Seed: 11, UpdateGap: 3})
		},
		"APOLLO-Mini": func() optim.Optimizer { return core.NewMini(h) },
	}
}

// TestShardedStepParity is the core contract: for every shardable optimizer
// and shard count, stepping through zero.Sharded leaves weights bit-identical
// to the unsharded instance.
func TestShardedStepParity(t *testing.T) {
	for name, build := range shardableBuilders() {
		for _, n := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, n), func(t *testing.T) {
				ref := testParams(5)
				got := testParams(5)
				refOpt := build()
				shOpt := NewSharded(build, n)
				const steps = 8
				for step := 0; step < steps; step++ {
					fillGrads(ref, step)
					fillGrads(got, step)
					refOpt.Step(ref)
					shOpt.Step(got)
				}
				for i, p := range got {
					if !p.W.Equal(ref[i].W) {
						t.Fatalf("param %s differs bitwise after %d steps", p.Name, steps)
					}
				}
			})
		}
	}
}

// TestShardedStateBytesPartition checks the memory claim: per-shard state
// sums to the unsharded footprint, and at 4 shards no replica holds more
// than 1/3 of it (the balanced-partition bound the acceptance criteria use).
func TestShardedStateBytesPartition(t *testing.T) {
	for name, build := range shardableBuilders() {
		if name == "SGD-M" {
			continue // velocity-only state follows the same partition; skip noise
		}
		t.Run(name, func(t *testing.T) {
			params := testParams(5)
			unsharded := build()
			fillGrads(params, 0)
			unsharded.Step(params)
			total := unsharded.StateBytes()

			sh := NewSharded(build, 4)
			params2 := testParams(5)
			fillGrads(params2, 0)
			sh.Step(params2)
			per := sh.ReplicaStateBytes()
			var sum int64
			for s, b := range per {
				sum += b
				if total > 0 && b > total/3 {
					t.Fatalf("shard %d holds %d of %d bytes (> 1/3)", s, b, total)
				}
			}
			if sum != total {
				t.Fatalf("sharded total %d != unsharded %d", sum, total)
			}
			if got := sh.StateBytes(); got != total {
				t.Fatalf("aggregate StateBytes %d != unsharded %d", got, total)
			}
		})
	}
}

func TestShardedOptimizerInterface(t *testing.T) {
	sh := NewSharded(func() optim.Optimizer { return optim.NewAdamW(optim.Hyper{LR: 0.5}) }, 3)
	if sh.Name() != "AdamW+ZeRO3" {
		t.Fatalf("name %q", sh.Name())
	}
	sh.SetLR(0.25)
	if sh.LR() != 0.25 {
		t.Fatalf("lr %v", sh.LR())
	}
	params := testParams(1)
	sh.Init(params)
	sh.Init(params) // idempotent
	// The shards' segments must tile every parameter's rows exactly once.
	rowsOwned := make([]map[int]int, len(params))
	for i := range rowsOwned {
		rowsOwned[i] = map[int]int{}
	}
	for s := 0; s < sh.Shards(); s++ {
		for _, sg := range sh.OwnedSegments(s) {
			for r := sg.Row0; r < sg.Row1; r++ {
				rowsOwned[sg.Param][r]++
			}
		}
	}
	for i, p := range params {
		for r := 0; r < p.W.Rows; r++ {
			if rowsOwned[i][r] != 1 {
				t.Fatalf("param %d row %d owned %d times", i, r, rowsOwned[i][r])
			}
		}
	}
	var _ optim.ShardedStepper = sh
}

func TestShardedRejectsNewParamList(t *testing.T) {
	sh := NewSharded(func() optim.Optimizer { return optim.NewAdamW(optim.Hyper{LR: 0.5}) }, 2)
	sh.Init(testParams(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on re-Init with a different list")
		}
	}()
	sh.Init(testParams(2))
}
