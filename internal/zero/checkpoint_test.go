package zero

import (
	"testing"

	"apollo/internal/optim"
)

// sameParamState compares two canonical states bit-for-bit.
func sameParamState(t *testing.T, name string, got, want *optim.ParamState) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: state presence differs (got %v, want %v)", name, got != nil, want != nil)
	}
	if got == nil {
		return
	}
	if len(got.Scalars) != len(want.Scalars) || len(got.RowMats) != len(want.RowMats) ||
		len(got.Whole) != len(want.Whole) || len(got.Blobs) != len(want.Blobs) {
		t.Fatalf("%s: state layout differs", name)
	}
	for i := range want.Scalars {
		if got.Scalars[i] != want.Scalars[i] {
			t.Fatalf("%s: scalar %d = %d, want %d", name, i, got.Scalars[i], want.Scalars[i])
		}
	}
	for i := range want.RowMats {
		if !got.RowMats[i].Equal(want.RowMats[i]) {
			t.Fatalf("%s: row matrix %d differs", name, i)
		}
	}
	for i := range want.Whole {
		if !got.Whole[i].Equal(want.Whole[i]) {
			t.Fatalf("%s: whole matrix %d differs", name, i)
		}
	}
}

// TestGatherMatchesUnshardedCapture pins the canonical-layout contract at
// the unit level: after identical training steps, a Sharded wrapper's
// gathered per-parameter states and globals must equal the unsharded inner
// optimizer's bit-for-bit — which is exactly why a sharded checkpoint can
// resume anywhere.
func TestGatherMatchesUnshardedCapture(t *testing.T) {
	const steps = 4
	for name, build := range shardableBuilders() {
		t.Run(name, func(t *testing.T) {
			plainParams := testParams(3)
			plain := build()
			shardParams := testParams(3)
			sh := NewSharded(build, 3)

			for s := 0; s < steps; s++ {
				fillGrads(plainParams, s)
				fillGrads(shardParams, s)
				plain.Step(plainParams)
				sh.Step(shardParams)
			}

			plainSaver := plain.(optim.StateSaver)
			wantG, err := plainSaver.CaptureGlobals()
			if err != nil {
				t.Fatal(err)
			}
			gotG, err := sh.CaptureGlobals()
			if err != nil {
				t.Fatal(err)
			}
			if len(gotG) != len(wantG) {
				t.Fatalf("globals length %d != %d", len(gotG), len(wantG))
			}
			for i := range wantG {
				if gotG[i] != wantG[i] {
					t.Fatalf("global %d = %d, want %d", i, gotG[i], wantG[i])
				}
			}
			for i := range plainParams {
				want, err := plainSaver.CaptureParam(plainParams[i])
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.CaptureParam(shardParams[i])
				if err != nil {
					t.Fatal(err)
				}
				sameParamState(t, plainParams[i].Name, got, want)
			}
			if sh.CheckpointName() != plain.Name() {
				t.Fatalf("checkpoint name %q, want %q", sh.CheckpointName(), plain.Name())
			}
		})
	}
}

// TestSharded8bitRefusesCanonicalCapture pins the guard that keeps the
// non-shardable 8-bit optimizers from writing a bogus canonical snapshot:
// their shared stochastic-rounding RNG diverges across shards, and
// CaptureGlobals must refuse rather than pick one shard's cursor.
func TestSharded8bitRefusesCanonicalCapture(t *testing.T) {
	params := testParams(5)
	sh := NewSharded(func() optim.Optimizer {
		return optim.NewAdam8bit(optim.Hyper{LR: 0.01}, 7)
	}, 2)
	for s := 0; s < 2; s++ {
		fillGrads(params, s)
		sh.Step(params)
	}
	if _, err := sh.CaptureGlobals(); err == nil {
		t.Fatal("canonical capture of a sharded 8-bit optimizer was allowed")
	}
}
