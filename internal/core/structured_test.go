package core

import (
	"math"
	"testing"

	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

func TestStructuredChannelNormMatchesAdamWChannelNorm(t *testing.T) {
	// By construction, the channel-wise structured update satisfies
	// ‖u[:,j]‖ = s_j·‖G[:,j]‖ = ‖˜G[:,j]‖, i.e. it reproduces AdamW's
	// per-channel update magnitude while following the raw gradient's
	// direction. Verify against a live AdamW on identical gradients.
	const m, n = 8, 24
	pS := matParam(t, "w", m, n, 31)
	pA := matParam(t, "w", m, n, 31)
	h := optim.Hyper{LR: 0.1}
	structured := NewStructuredAdamW(h, Channel)
	structured.Gamma = 0 // isolate the structural property from the limiter
	adam := optim.NewAdamW(h)

	rng := tensor.NewRNG(32)
	for step := 0; step < 5; step++ {
		fillGrad(pS, rng, 1)
		pA.Grad.CopyFrom(pS.Grad)
		beforeS := pS.W.Clone()
		beforeA := pA.W.Clone()
		structured.Step([]*nn.Param{pS})
		adam.Step([]*nn.Param{pA})
		dS := tensor.Sub(pS.W, beforeS)
		dA := tensor.Sub(pA.W, beforeA)
		nS := dS.ColNorms()
		nA := dA.ColNorms()
		for j := range nS {
			if nA[j] < 1e-12 {
				continue
			}
			if math.Abs(nS[j]-nA[j])/nA[j] > 1e-3 {
				t.Fatalf("step %d channel %d: structured ‖Δ‖=%v adamw ‖Δ‖=%v", step, j, nS[j], nA[j])
			}
		}
	}
}

func TestStructuredTensorSingleFactor(t *testing.T) {
	// Tensor granularity scales the whole gradient by one factor: update
	// must be exactly collinear with G.
	p := matParam(t, "w", 8, 24, 33)
	h := optim.Hyper{LR: 0.1}
	s := NewStructuredAdamW(h, Tensor)
	s.Gamma = 0
	rng := tensor.NewRNG(34)
	fillGrad(p, rng, 1)
	g := p.Grad.Clone()
	before := p.W.Clone()
	s.Step([]*nn.Param{p})
	delta := tensor.Sub(p.W, before)
	cos := float64(tensor.Dot(delta.Data, g.Data)) / (delta.Norm()*g.Norm() + 1e-20)
	if math.Abs(cos+1) > 1e-5 { // descent: cosine ≈ −1
		t.Fatalf("tensor-scaled update not collinear with gradient: cos=%v", cos)
	}
}

func TestStructuredLossDecreasesOnTinyModel(t *testing.T) {
	cfg := nn.Config{Vocab: 19, Dim: 8, Hidden: 16, Heads: 2, Layers: 1, MaxSeq: 8}
	model := nn.NewModel(cfg, tensor.NewRNG(35))
	opt := NewStructuredAdamW(optim.Hyper{LR: 0.01}, Channel)
	rng := tensor.NewRNG(36)
	tokens := make([]int, 2*8)
	targets := make([]int, 2*8)
	for i := range tokens {
		tokens[i] = rng.Intn(cfg.Vocab)
		targets[i] = rng.Intn(cfg.Vocab)
	}
	var first, last float64
	for step := 0; step < 40; step++ {
		model.Params().ZeroGrad()
		loss := model.Loss(tokens, targets, 2, 8)
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(model.Params().List())
	}
	if last >= first {
		t.Fatalf("structured AdamW failed to reduce loss: %v → %v", first, last)
	}
}

func TestAPOLLOLossDecreasesOnTinyModel(t *testing.T) {
	cfg := nn.Config{Vocab: 19, Dim: 8, Hidden: 16, Heads: 2, Layers: 1, MaxSeq: 8}
	for _, mk := range []func() optim.Optimizer{
		func() optim.Optimizer { return New(optim.Hyper{LR: 0.01}, Config{Rank: 2}) },
		func() optim.Optimizer { return NewMini(optim.Hyper{LR: 0.01}) },
	} {
		model := nn.NewModel(cfg, tensor.NewRNG(37))
		opt := mk()
		rng := tensor.NewRNG(38)
		tokens := make([]int, 2*8)
		targets := make([]int, 2*8)
		for i := range tokens {
			tokens[i] = rng.Intn(cfg.Vocab)
			targets[i] = rng.Intn(cfg.Vocab)
		}
		var first, last float64
		for step := 0; step < 40; step++ {
			model.Params().ZeroGrad()
			loss := model.Loss(tokens, targets, 2, 8)
			if step == 0 {
				first = loss
			}
			last = loss
			opt.Step(model.Params().List())
		}
		if last >= first {
			t.Fatalf("%s failed to reduce loss: %v → %v", opt.Name(), first, last)
		}
	}
}

func TestStructuredStateBytesLikeAdamW(t *testing.T) {
	const m, n = 8, 24
	p := matParam(t, "w", m, n, 39)
	s := NewStructuredAdamW(optim.Hyper{LR: 0.01}, Channel)
	rng := tensor.NewRNG(40)
	fillGrad(p, rng, 1)
	s.Step([]*nn.Param{p})
	want := int64(4 * (2*m*n + 1))
	if got := s.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d want %d (full moments + limiter)", got, want)
	}
}

func TestChannelScalesGuardZeroColumns(t *testing.T) {
	num := tensor.NewMatrix(4, 3)
	den := tensor.NewMatrix(4, 3)
	num.Set(0, 0, 1)
	// den column 0 is zero → scale must be 0, not Inf.
	s := channelScales(num, den)
	if s[0] != 0 {
		t.Fatalf("scale for zero-denominator channel = %v, want 0", s[0])
	}
}

func TestTensorScaleGuardZero(t *testing.T) {
	num := tensor.NewMatrix(2, 2)
	den := tensor.NewMatrix(2, 2)
	if f := tensorScale(num, den); f != 0 {
		t.Fatalf("tensorScale(0,0) = %v want 0", f)
	}
}
