package core

import (
	"fmt"
	"math"

	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// Config parameterizes APOLLO (Algorithm 1). Zero values resolve to the
// paper defaults via withDefaults.
type Config struct {
	// Rank of the auxiliary space (paper: n/4 or n/8 for APOLLO, 1 for
	// APOLLO-Mini).
	Rank int
	// Granularity of the scaling factor: Channel (APOLLO) or Tensor
	// (APOLLO-Mini).
	Granularity Granularity
	// Scale is the gradient scale α. Defaults: 1 for channel granularity,
	// √128 for tensor granularity — the Theorem-A.4 √(n/r) compensation
	// folded into a constant, as the paper does.
	Scale float64
	// UpdateGap is the projection refresh period T (paper: 200). For random
	// projection a refresh is just a new seed.
	UpdateGap int
	// Projection selects random (default) or SVD subspaces ("APOLLO w. SVD").
	Projection linalg.ProjectionKind
	// Gamma is the norm-growth limiter threshold; 0 keeps the default 1.01.
	Gamma float64
	// DisableNL switches the limiter off (ablation).
	DisableNL bool
	// Seed drives all projection randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		if c.Granularity == Tensor {
			c.Scale = math.Sqrt(128)
		} else {
			c.Scale = 1
		}
	}
	if c.UpdateGap == 0 {
		c.UpdateGap = 200
	}
	if c.Gamma == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		c.Gamma = DefaultGamma
	}
	if c.Seed == 0 {
		c.Seed = 0xA9011_0
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rank < 1 {
		return fmt.Errorf("core: rank %d < 1", c.Rank)
	}
	if c.Scale < 0 {
		return fmt.Errorf("core: negative scale %v", c.Scale)
	}
	return nil
}

// APOLLO is the paper's optimizer: AdamW moments are kept only in an
// auxiliary rank-r space fed by a (re-seedable) random projection of the
// gradient; the only thing read out of that space is a channel- or
// tensor-wise norm ratio, which rescales the *raw full-rank gradient*. The
// weight update is therefore SGD-shaped with a structured adaptive step
// size — SGD-like memory, AdamW-level behaviour.
type APOLLO struct {
	h   optim.Hyper
	cfg Config

	// ScalingProbe, when non-nil, receives each matrix parameter's
	// channel scaling factors every step (Fig. 4 instrumentation).
	ScalingProbe func(param string, s []float64)

	states map[*nn.Param]*apolloState
	dense  *optim.AdamW
	rng    *tensor.RNG
}

type apolloState struct {
	proj     *linalg.Projector
	mR, vR   *tensor.Matrix // auxiliary moments, r×n
	t        int
	since    int
	prevNorm float64 // for the norm-growth limiter
	trans    bool    // stored matrix is n×m (rows > cols)
}

// New constructs an APOLLO optimizer from cfg.
func New(h optim.Hyper, cfg Config) *APOLLO {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &APOLLO{
		h:      fillHyper(h),
		cfg:    cfg,
		states: map[*nn.Param]*apolloState{},
		dense:  optim.NewAdamW(h),
		rng:    tensor.NewRNG(cfg.Seed),
	}
}

// NewMini constructs APOLLO-Mini: rank-1 auxiliary space, tensor-wise
// scaling, α = √128 (Section 4.2).
func NewMini(h optim.Hyper) *APOLLO {
	return New(h, Config{Rank: 1, Granularity: Tensor})
}

// Name implements optim.Optimizer.
func (a *APOLLO) Name() string {
	base := "APOLLO"
	if a.cfg.Granularity == Tensor && a.cfg.Rank == 1 {
		base = "APOLLO-Mini"
	}
	if a.cfg.Projection == linalg.SVDProjection {
		base += " w. SVD"
	}
	return base
}

// Config returns the resolved configuration.
func (a *APOLLO) Config() Config { return a.cfg }

// SetLR implements optim.Optimizer.
func (a *APOLLO) SetLR(lr float64) {
	a.h.LR = lr
	a.dense.SetLR(lr)
}

// LR implements optim.Optimizer.
func (a *APOLLO) LR() float64 { return a.h.LR }

// projectable mirrors GaLore's policy: 2-D matrices whose smaller dimension
// exceeds the rank. With rank 1 (Mini) every matrix qualifies.
func (a *APOLLO) projectable(p *nn.Param) bool {
	if p.Kind != nn.KindMatrix {
		return false
	}
	m := p.W.Rows
	if p.W.Cols < m {
		m = p.W.Cols
	}
	return m > a.cfg.Rank
}

// StateElemsFor implements optim.StateIntrospector (Table 1: 2nr + 2 — the
// auxiliary moments plus the projection seed and the limiter's previous
// norm; the SVD variant persists its r×m projection instead of the seed).
// APOLLO's projectability rule matches the shared low-rank policy, so the
// shared accounting applies with extra = 1 for prevNorm.
func (a *APOLLO) StateElemsFor(p *nn.Param) int64 {
	return optim.ProjectedStateElems(p, a.cfg.Rank, a.cfg.Projection, 1)
}

// RowSplittable implements optim.StateIntrospector: only the dense AdamW
// fallback is element-wise; projected matrices couple whole channels.
func (a *APOLLO) RowSplittable(p *nn.Param) bool { return !a.projectable(p) }

// PrepareShard implements optim.StateSharder: APOLLO draws one projector
// seed per projectable parameter from its RNG at first touch, in step
// order. For ZeRO-style partitioning (internal/zero) this walks the full
// parameter list in global order — consuming the seed stream exactly as an
// unsharded first Step would — while allocating the auxiliary moments only
// for the owned shard, so a shard-local APOLLO is bit-identical to the
// unsharded instance on its parameters at ~1/N of the state.
func (a *APOLLO) PrepareShard(all []*nn.Param, owned func(*nn.Param) bool) {
	optim.PrepareProjectedShard(all, owned, a.projectable, a.rng.Uint64,
		func(p *nn.Param, seed uint64) {
			if _, ok := a.states[p]; ok {
				return
			}
			trans := p.W.Rows > p.W.Cols
			n := p.W.Cols
			if trans {
				n = p.W.Rows
			}
			a.states[p] = &apolloState{
				proj:  linalg.NewProjector(a.cfg.Projection, a.cfg.Rank, seed),
				mR:    tensor.NewMatrix(a.cfg.Rank, n),
				vR:    tensor.NewMatrix(a.cfg.Rank, n),
				trans: trans,
			}
		})
}

// Step implements optim.Optimizer (Algorithm 1).
func (a *APOLLO) Step(ps []*nn.Param) {
	var fallback []*nn.Param
	for _, p := range ps {
		if !a.projectable(p) {
			fallback = append(fallback, p)
			continue
		}
		st, ok := a.states[p]
		if !ok {
			trans := p.W.Rows > p.W.Cols
			n := p.W.Cols
			if trans {
				n = p.W.Rows
			}
			st = &apolloState{
				proj:  linalg.NewProjector(a.cfg.Projection, a.cfg.Rank, a.rng.Uint64()),
				mR:    tensor.NewMatrix(a.cfg.Rank, n),
				vR:    tensor.NewMatrix(a.cfg.Rank, n),
				trans: trans,
			}
			a.states[p] = st
		}

		// Step 1: project the gradient into the rank-r auxiliary space,
		// re-drawing the subspace every UpdateGap steps (a new seed for
		// random projection; an SVD for the w.-SVD variant).
		grad := p.Grad
		if st.trans {
			grad = p.Grad.T()
		}
		if !st.proj.Ready() || (a.cfg.UpdateGap > 0 && st.since >= a.cfg.UpdateGap) {
			st.proj.Refresh(grad)
			st.since = 0
		}
		st.since++
		st.t++

		r := st.proj.Project(grad) // R_t, r×n

		// Step 2: auxiliary AdamW moments (λ = 0 inside the aux space).
		rTilde := tensor.NewMatrix(r.Rows, r.Cols)
		updateMoments(st.mR, st.vR, rTilde, r, a.h, st.t)

		// Step 3: structured scaling factors from the compressed space.
		update := p.Grad.Clone()
		oriented := update
		if st.trans {
			oriented = update.T()
		}
		var scales []float64
		switch a.cfg.Granularity {
		case Channel:
			scales = channelScales(rTilde, r)
			applyChannelScales(oriented, scales)
		case Tensor:
			f := tensorScale(rTilde, r)
			scales = []float64{f}
			tensor.ScaleInPlace(oriented, float32(f))
		}
		if st.trans {
			update = oriented.T()
		}
		if a.ScalingProbe != nil {
			a.ScalingProbe(p.Name, scales)
		}

		// Step 4: scale by α, tame growth, apply with decoupled decay.
		tensor.ScaleInPlace(update, float32(a.cfg.Scale))
		if !a.cfg.DisableNL {
			st.prevNorm = LimitNormGrowth(update, st.prevNorm, a.cfg.Gamma)
		}
		applyUpdate(p, update, a.h)
	}
	if len(fallback) > 0 {
		a.dense.Step(fallback)
	}
}

// StateBytes implements optim.Optimizer. Per projected m×n parameter the
// resident state is the two r×n auxiliary moments plus two scalars (the
// projection seed and the limiter's previous norm) — Table 1's 2nr + 2; the
// SVD variant additionally persists its r×m projection.
func (a *APOLLO) StateBytes() int64 {
	total := a.dense.StateBytes()
	for _, st := range a.states {
		total += 4 * int64(st.mR.NumEl()+st.vR.NumEl())
		total += 4 * int64(st.proj.StateFloats()) // seed slot (1) or SVD matrix
		total += 4                                // prevNorm for the limiter
	}
	return total
}
