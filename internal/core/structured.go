package core

import (
	"math"

	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// StructuredAdamW is the Section 3 construction used to establish that
// coarse learning-rate adaptation suffices: it maintains *full* AdamW
// moments but collapses the element-wise scaling S = ˜G/G into a channel- or
// tensor-wise factor s_j = ‖˜G[:,j]‖/‖G[:,j]‖ before applying it to the raw
// gradient. It saves no memory — it exists to isolate the effect of
// structuring the update (Fig. 3 and the Fig. 4 "golden" reference).
type StructuredAdamW struct {
	h           optim.Hyper
	Granularity Granularity
	// Gamma is the norm-growth limiter threshold; 0 disables the limiter
	// (the "w/o NL" curve in Fig. 3).
	Gamma float64

	// ScalingProbe, when non-nil, receives the per-channel scaling factors
	// of every matrix parameter each step (Fig. 4 instrumentation).
	ScalingProbe func(param string, s []float64)

	states map[*nn.Param]*structState
	dense  *optim.AdamW
}

type structState struct {
	m, v     *tensor.Matrix
	t        int
	prevNorm float64
}

// NewStructuredAdamW builds the optimizer with the limiter enabled.
func NewStructuredAdamW(h optim.Hyper, g Granularity) *StructuredAdamW {
	return &StructuredAdamW{
		h:           fillHyper(h),
		Granularity: g,
		Gamma:       DefaultGamma,
		states:      map[*nn.Param]*structState{},
		dense:       optim.NewAdamW(h),
	}
}

// Name implements optim.Optimizer.
func (s *StructuredAdamW) Name() string {
	return "StructuredAdamW-" + s.Granularity.String()
}

// SetLR implements optim.Optimizer.
func (s *StructuredAdamW) SetLR(lr float64) {
	s.h.LR = lr
	s.dense.SetLR(lr)
}

// LR implements optim.Optimizer.
func (s *StructuredAdamW) LR() float64 { return s.h.LR }

// Step implements optim.Optimizer.
func (s *StructuredAdamW) Step(ps []*nn.Param) {
	var fallback []*nn.Param
	for _, p := range ps {
		if p.Kind != nn.KindMatrix {
			fallback = append(fallback, p)
			continue
		}
		st, ok := s.states[p]
		if !ok {
			st = &structState{
				m: tensor.NewMatrix(p.W.Rows, p.W.Cols),
				v: tensor.NewMatrix(p.W.Rows, p.W.Cols),
			}
			s.states[p] = st
		}
		st.t++
		// Full AdamW moments → element-wise normalized direction ˜G.
		gt := tensor.NewMatrix(p.W.Rows, p.W.Cols)
		updateMoments(st.m, st.v, gt, p.Grad, s.h, st.t)

		// Collapse to the structured factor and rescale the raw gradient.
		update := p.Grad.Clone()
		oriented := update
		gtOriented := gt
		transposed := p.W.Rows > p.W.Cols
		if transposed {
			oriented = update.T()
			gtOriented = gt.T()
		}
		scales := channelScales(gtOriented, oriented)
		switch s.Granularity {
		case Channel:
			applyChannelScales(oriented, scales)
		case Tensor:
			f := tensorScale(gtOriented, oriented)
			tensor.ScaleInPlace(oriented, float32(f))
		}
		if transposed {
			update = oriented.T()
		} else {
			update = oriented
		}
		if s.ScalingProbe != nil {
			s.ScalingProbe(p.Name, scales)
		}
		if s.Gamma > 0 {
			st.prevNorm = LimitNormGrowth(update, st.prevNorm, s.Gamma)
		}
		applyUpdate(p, update, s.h)
	}
	if len(fallback) > 0 {
		s.dense.Step(fallback)
	}
}

// StateBytes implements optim.Optimizer — deliberately the same cost as
// AdamW, since this variant is about structure, not memory.
func (s *StructuredAdamW) StateBytes() int64 {
	total := s.dense.StateBytes()
	for _, st := range s.states {
		total += 4 * int64(st.m.NumEl()+st.v.NumEl())
		total += 4
	}
	return total
}

// updateMoments runs one bias-corrected AdamW moment update, writing the
// element-wise direction m̂/(√v̂+ε) into out.
func updateMoments(m, v, out, g *tensor.Matrix, h optim.Hyper, t int) {
	b1 := float32(h.Beta1)
	b2 := float32(h.Beta2)
	c1 := float32(1 / (1 - math.Pow(h.Beta1, float64(t))))
	c2 := float32(1 / (1 - math.Pow(h.Beta2, float64(t))))
	eps := float32(h.Eps)
	for i, gv := range g.Data {
		m.Data[i] = b1*m.Data[i] + (1-b1)*gv
		v.Data[i] = b2*v.Data[i] + (1-b2)*gv*gv
		vhat := v.Data[i] * c2
		den := float32(math.Sqrt(float64(vhat))) + eps
		out.Data[i] = m.Data[i] * c1 / den
	}
}

// channelScales returns s_j = ‖num[:,j]‖ / ‖den[:,j]‖ for every column j of
// the m×n-oriented pair.
func channelScales(num, den *tensor.Matrix) []float64 {
	nn := num.ColNorms()
	dn := den.ColNorms()
	out := make([]float64, len(nn))
	for j := range out {
		if dn[j] > 1e-12 {
			out[j] = nn[j] / dn[j]
		}
	}
	return out
}

// tensorScale returns ‖num‖ / ‖den‖.
func tensorScale(num, den *tensor.Matrix) float64 {
	d := den.Norm()
	if d < 1e-12 {
		return 0
	}
	return num.Norm() / d
}

func applyChannelScales(g *tensor.Matrix, s []float64) {
	fs := make([]float32, len(s))
	for i, v := range s {
		fs[i] = float32(v)
	}
	tensor.ScaleColsInPlace(g, fs)
}

// applyUpdate performs the decoupled weight-decay step w ← w − lr·u − lr·λ·w.
func applyUpdate(p *nn.Param, u *tensor.Matrix, h optim.Hyper) {
	if h.WeightDecay != 0 { //apollo:exactfloat zero weight decay disables the term exactly, matching optim
		tensor.ScaleInPlace(p.W, float32(1-h.LR*h.WeightDecay))
	}
	tensor.AxpyInPlace(p.W, float32(-h.LR), u)
}

// fillHyper mirrors optim's private defaults for use inside this package.
func fillHyper(h optim.Hyper) optim.Hyper {
	if h.Beta1 == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		h.Beta1 = 0.9
	}
	if h.Beta2 == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		h.Beta2 = 0.999
	}
	if h.Eps == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		h.Eps = 1e-8
	}
	return h
}
