package core

import (
	"math"
	"testing"

	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// trainTiny runs a fixed training job and returns the final loss — shared by
// the ablation tests below (DESIGN.md §5).
func trainTiny(t *testing.T, mk func() optim.Optimizer, steps int) float64 {
	t.Helper()
	cfg := nn.Config{Vocab: 32, Dim: 16, Hidden: 32, Heads: 2, Layers: 2, MaxSeq: 16}
	model := nn.NewModel(cfg, tensor.NewRNG(71))
	opt := mk()
	rng := tensor.NewRNG(72)
	var last float64
	for step := 0; step < steps; step++ {
		tokens := make([]int, 4*8)
		targets := make([]int, 4*8)
		for i := range tokens {
			tokens[i] = rng.Intn(cfg.Vocab)
			targets[i] = (tokens[i] + 1) % cfg.Vocab // learnable successor rule
		}
		model.Params().ZeroGrad()
		last = model.Loss(tokens, targets, 4, 8)
		opt.Step(model.Params().List())
	}
	return last
}

// TestAblationUpdateGap: the projection refresh period T should not be
// critical (the paper uses 200 without tuning) — overly frequent refreshes
// must not break training.
func TestAblationUpdateGap(t *testing.T) {
	for _, gap := range []int{1, 10, 200} {
		gap := gap
		loss := trainTiny(t, func() optim.Optimizer {
			return New(optim.Hyper{LR: 0.02}, Config{Rank: 4, UpdateGap: gap})
		}, 60)
		if math.IsNaN(loss) || loss > 3.4 {
			t.Fatalf("UpdateGap=%d: loss %v (training broken)", gap, loss)
		}
	}
}

// TestAblationScaleCompensation: a reasonable range of α must all train;
// larger α within the √(n/r) ballpark should not diverge thanks to the
// norm-growth limiter.
func TestAblationScaleCompensation(t *testing.T) {
	losses := map[float64]float64{}
	for _, alpha := range []float64{0.5, 1, 2, 4} {
		alpha := alpha
		losses[alpha] = trainTiny(t, func() optim.Optimizer {
			return New(optim.Hyper{LR: 0.02}, Config{Rank: 4, Scale: alpha})
		}, 60)
		if math.IsNaN(losses[alpha]) {
			t.Fatalf("α=%v diverged", alpha)
		}
	}
	// All configurations must have learned something.
	for alpha, l := range losses {
		if l > 3.4 {
			t.Fatalf("α=%v failed to learn: loss %v", alpha, l)
		}
	}
}

// TestAblationGranularityBothTrain: channel and tensor scaling at equal rank
// both train (Table 9's finding at moderate rank).
func TestAblationGranularityBothTrain(t *testing.T) {
	ch := trainTiny(t, func() optim.Optimizer {
		return New(optim.Hyper{LR: 0.02}, Config{Rank: 4, Granularity: Channel})
	}, 80)
	te := trainTiny(t, func() optim.Optimizer {
		return New(optim.Hyper{LR: 0.02}, Config{Rank: 4, Granularity: Tensor, Scale: 1})
	}, 80)
	if ch > 3.4 || te > 3.4 {
		t.Fatalf("granularity ablation failed: channel %v tensor %v", ch, te)
	}
}

// TestAblationSVDvsRandomClose: for APOLLO the projection type should not
// change outcomes much (Fig. 5's core claim), unlike GaLore.
func TestAblationSVDvsRandomClose(t *testing.T) {
	rp := trainTiny(t, func() optim.Optimizer {
		return New(optim.Hyper{LR: 0.02}, Config{Rank: 4})
	}, 80)
	svd := trainTiny(t, func() optim.Optimizer {
		return New(optim.Hyper{LR: 0.02}, Config{Rank: 4, Projection: 1 /* SVD */})
	}, 80)
	if math.Abs(rp-svd) > 0.8 {
		t.Fatalf("APOLLO projection sensitivity too high: RP %v vs SVD %v", rp, svd)
	}
}

// TestMiniBeatsPlainSGDAtEqualMemory: APOLLO-Mini's headline — SGD-like
// memory, far better optimization than SGD at the same learning rate scale.
func TestMiniBeatsPlainSGDAtEqualMemory(t *testing.T) {
	sgd := trainTiny(t, func() optim.Optimizer {
		return optim.NewSGD(optim.Hyper{LR: 0.02}, 0)
	}, 80)
	mini := trainTiny(t, func() optim.Optimizer {
		return NewMini(optim.Hyper{LR: 0.02})
	}, 80)
	if mini >= sgd {
		t.Fatalf("Mini (%v) should out-optimize plain SGD (%v)", mini, sgd)
	}
}

// TestAPOLLORankRobustness: halving the rank should barely change the
// result (Table 2's ✝ row), unlike GaLore (Fig. 5d).
func TestAPOLLORankRobustness(t *testing.T) {
	full := trainTiny(t, func() optim.Optimizer {
		return New(optim.Hyper{LR: 0.02}, Config{Rank: 4})
	}, 80)
	half := trainTiny(t, func() optim.Optimizer {
		return New(optim.Hyper{LR: 0.02}, Config{Rank: 2})
	}, 80)
	if math.Abs(full-half) > 0.6 {
		t.Fatalf("rank halving changed loss too much: %v vs %v", full, half)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{Rank: 0}).Validate(); err == nil {
		t.Fatal("rank 0 must be rejected")
	}
	if err := (Config{Rank: 1, Scale: -1}).Validate(); err == nil {
		t.Fatal("negative scale must be rejected")
	}
	cfg := Config{Rank: 1}.withDefaults()
	if cfg.UpdateGap != 200 || cfg.Gamma != DefaultGamma {
		t.Fatalf("defaults %+v", cfg)
	}
}

func TestGranularityString(t *testing.T) {
	if Channel.String() != "channel" || Tensor.String() != "tensor" {
		t.Fatal("granularity strings")
	}
}
