package core

import (
	"math"
	"testing"

	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

func matParam(t *testing.T, name string, rows, cols int, seed uint64) *nn.Param {
	t.Helper()
	rng := tensor.NewRNG(seed)
	return nn.NewParam(name, nn.KindMatrix, tensor.NewMatrixRand(rows, cols, 0.1, rng))
}

func fillGrad(p *nn.Param, rng *tensor.RNG, std float64) {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = float32(rng.Norm() * std)
	}
}

func TestLimitNormGrowth(t *testing.T) {
	rng := tensor.NewRNG(1)
	g := tensor.NewMatrixRand(4, 4, 1, rng)
	norm := g.Norm()
	// First step: no limiting.
	got := LimitNormGrowth(g, 0, 1.01)
	if math.Abs(got-norm) > 1e-9 {
		t.Fatalf("first-step norm %v want %v", got, norm)
	}
	// Growth above γ·prev is clamped to exactly γ·prev.
	prev := norm / 10
	got = LimitNormGrowth(g, prev, 1.01)
	if math.Abs(got-1.01*prev) > 1e-6 {
		t.Fatalf("limited norm %v want %v", got, 1.01*prev)
	}
	if math.Abs(g.Norm()-1.01*prev) > 1e-6 {
		t.Fatalf("matrix norm %v not rescaled to %v", g.Norm(), 1.01*prev)
	}
	// Growth below the threshold passes through.
	g2 := tensor.NewMatrixRand(4, 4, 1, rng)
	n2 := g2.Norm()
	got = LimitNormGrowth(g2, n2, 1.01)
	if math.Abs(got-n2) > 1e-9 {
		t.Fatalf("unlimited norm %v want %v", got, n2)
	}
}

func TestAPOLLOStateBytesMatchesTable1(t *testing.T) {
	// Table 1: APOLLO keeps 2nr + 2 state for an m×n matrix.
	const m, n, r = 16, 48, 4
	p := matParam(t, "w", m, n, 1)
	a := New(optim.Hyper{LR: 0.01}, Config{Rank: r, Granularity: Channel})
	rng := tensor.NewRNG(2)
	fillGrad(p, rng, 1)
	a.Step([]*nn.Param{p})
	want := int64(4 * (2*n*r + 2))
	if got := a.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d want %d (= 4·(2nr+2))", got, want)
	}
}

func TestAPOLLOMiniStateBytesMatchesTable1(t *testing.T) {
	// Table 1: APOLLO-Mini keeps 2n + 2 state.
	const m, n = 16, 48
	p := matParam(t, "w", m, n, 3)
	a := NewMini(optim.Hyper{LR: 0.01})
	rng := tensor.NewRNG(4)
	fillGrad(p, rng, 1)
	a.Step([]*nn.Param{p})
	want := int64(4 * (2*n + 2))
	if got := a.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d want %d (= 4·(2n+2))", got, want)
	}
}

func TestAPOLLOSVDStateIncludesProjection(t *testing.T) {
	const m, n, r = 16, 48, 4
	p := matParam(t, "w", m, n, 5)
	a := New(optim.Hyper{LR: 0.01}, Config{Rank: r, Projection: linalg.SVDProjection})
	rng := tensor.NewRNG(6)
	fillGrad(p, rng, 1)
	a.Step([]*nn.Param{p})
	want := int64(4 * (2*n*r + r*m + 1))
	if got := a.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d want %d (2nr moments + rm projection + limiter)", got, want)
	}
}

func TestAPOLLOStateTinyVsAdamW(t *testing.T) {
	// The headline claim: APOLLO-Mini's state is negligible next to AdamW's
	// 2mn on the same parameter.
	const m, n = 64, 256
	p1 := matParam(t, "w", m, n, 7)
	p2 := matParam(t, "w", m, n, 7)
	rng := tensor.NewRNG(8)
	fillGrad(p1, rng, 1)
	p2.Grad.CopyFrom(p1.Grad)

	mini := NewMini(optim.Hyper{LR: 0.01})
	adam := optim.NewAdamW(optim.Hyper{LR: 0.01})
	mini.Step([]*nn.Param{p1})
	adam.Step([]*nn.Param{p2})
	if mini.StateBytes()*20 > adam.StateBytes() {
		t.Fatalf("Mini state %d not ≪ AdamW state %d", mini.StateBytes(), adam.StateBytes())
	}
}

func TestAPOLLOUpdateDirectionIsScaledGradient(t *testing.T) {
	// APOLLO's update must be the raw gradient with per-channel rescaling:
	// zero weight decay ⇒ ΔW[:,j] ∝ G[:,j] for every channel j.
	const m, n, r = 8, 24, 4
	p := matParam(t, "w", m, n, 9)
	before := p.W.Clone()
	a := New(optim.Hyper{LR: 0.01}, Config{Rank: r, Granularity: Channel, DisableNL: true})
	rng := tensor.NewRNG(10)
	fillGrad(p, rng, 1)
	g := p.Grad.Clone()
	a.Step([]*nn.Param{p})
	delta := tensor.Sub(p.W, before)
	for j := 0; j < n; j++ {
		dcol := delta.Col(j)
		gcol := g.Col(j)
		// Cosine between Δ column and −G column should be ±1.
		dot := tensor.Dot(dcol, gcol)
		cos := float64(dot) / (tensor.NormSlice(dcol)*tensor.NormSlice(gcol) + 1e-20)
		if math.Abs(math.Abs(cos)-1) > 1e-4 {
			t.Fatalf("channel %d: |cos|=%v, update not collinear with gradient", j, math.Abs(cos))
		}
	}
}

// TestScalingRatioTheorem empirically validates Theorem A.4 / Fig. 4: the
// APOLLO channel scaling factor at rank r is ≈ √(r/n) times the full-rank
// structured factor. The paper validates this on square layers (m = n, the
// LLaMA-350M attention matrices); for m ≠ n the ratio actually tracks
// √(r/m) because channel norms span the smaller dimension — we follow the
// paper's square setup here and record the distinction in EXPERIMENTS.md.
func TestScalingRatioTheorem(t *testing.T) {
	const m, n = 96, 96
	hyper := optim.Hyper{LR: 0} // LR 0: probe scales without moving weights

	run := func(rank int) float64 {
		var full *StructuredAdamW
		var apollo *APOLLO
		pF := matParam(t, "w", m, n, 11)
		pA := matParam(t, "w", m, n, 11)
		full = NewStructuredAdamW(hyper, Channel)
		apollo = New(hyper, Config{Rank: rank, Granularity: Channel, Scale: 1, DisableNL: true})

		var fullScales, apolloScales []float64
		full.ScalingProbe = func(_ string, s []float64) {
			fullScales = append([]float64{}, s...)
		}
		apollo.ScalingProbe = func(_ string, s []float64) {
			apolloScales = append([]float64{}, s...)
		}
		rng := tensor.NewRNG(12)
		var ratioSum float64
		var count int
		for step := 0; step < 25; step++ {
			fillGrad(pF, rng, 1)
			pA.Grad.CopyFrom(pF.Grad)
			full.Step([]*nn.Param{pF})
			apollo.Step([]*nn.Param{pA})
			if step < 5 {
				continue // let the moments warm up
			}
			for j := range fullScales {
				if fullScales[j] > 1e-9 {
					ratioSum += apolloScales[j] / fullScales[j]
					count++
				}
			}
		}
		return ratioSum / float64(count)
	}

	for _, rank := range []int{12, 24} {
		got := run(rank)
		want := math.Sqrt(float64(rank) / float64(n))
		if math.Abs(got-want)/want > 0.25 {
			t.Fatalf("rank %d: mean scale ratio %v want ≈ √(r/n) = %v", rank, got, want)
		}
	}
}

func TestAPOLLODeterministic(t *testing.T) {
	mk := func() *nn.Param { return matParam(t, "w", 8, 16, 13) }
	run := func() *tensor.Matrix {
		p := mk()
		a := New(optim.Hyper{LR: 0.01}, Config{Rank: 2, Seed: 99})
		rng := tensor.NewRNG(14)
		for i := 0; i < 10; i++ {
			fillGrad(p, rng, 1)
			a.Step([]*nn.Param{p})
		}
		return p.W
	}
	if !run().Equal(run()) {
		t.Fatal("APOLLO must be deterministic given its seed")
	}
}

func TestAPOLLOFallbackForVectors(t *testing.T) {
	rng := tensor.NewRNG(15)
	vec := nn.NewParam("gain", nn.KindVector, tensor.NewMatrixRand(1, 8, 0.1, rng))
	before := vec.W.Clone()
	a := NewMini(optim.Hyper{LR: 0.05})
	fillGrad(vec, rng, 1)
	a.Step([]*nn.Param{vec})
	if vec.W.Equal(before) {
		t.Fatal("vector param not updated through the dense fallback")
	}
}

func TestAPOLLOSubspaceRefresh(t *testing.T) {
	// With UpdateGap = 2, the projection seed must change across refreshes.
	p := matParam(t, "w", 8, 16, 16)
	a := New(optim.Hyper{LR: 0.001}, Config{Rank: 2, UpdateGap: 2, Seed: 7})
	rng := tensor.NewRNG(17)
	seeds := map[uint64]bool{}
	for i := 0; i < 6; i++ {
		fillGrad(p, rng, 1)
		a.Step([]*nn.Param{p})
		for _, st := range a.states {
			seeds[st.proj.Seed()] = true
		}
	}
	if len(seeds) < 3 {
		t.Fatalf("projection refreshed only %d times over 6 steps with gap 2", len(seeds))
	}
}

// structuredSpikeGrads builds the two-step scenario where the update norm
// genuinely spikes without the limiter: step one activates a single channel
// (update norm ≈ u), step two activates all n channels (≈ √n·u). Pure
// magnitude blow-ups do NOT spike APOLLO — the scaling factor is
// self-normalizing in ‖G‖ — so the spike must come from a structural change.
func structuredSpikeGrads(p *nn.Param, rng *tensor.RNG, allChannels bool) {
	p.Grad.Zero()
	for i := 0; i < p.Grad.Rows; i++ {
		row := p.Grad.Row(i)
		for j := range row {
			if allChannels || j == 0 {
				row[j] = rng.NormFloat32()
			}
		}
	}
}

func TestAPOLLONormGrowthLimited(t *testing.T) {
	p := matParam(t, "w", 8, 16, 18)
	a := New(optim.Hyper{LR: 1}, Config{Rank: 2, Granularity: Channel, Scale: 1})
	rng := tensor.NewRNG(19)

	structuredSpikeGrads(p, rng, false)
	before := p.W.Clone()
	a.Step([]*nn.Param{p})
	normalStep := tensor.Sub(p.W, before).Norm()

	structuredSpikeGrads(p, rng, true)
	before = p.W.Clone()
	a.Step([]*nn.Param{p})
	bigStep := tensor.Sub(p.W, before).Norm()

	if bigStep > normalStep*DefaultGamma*1.05 {
		t.Fatalf("limiter failed: step grew from %v to %v", normalStep, bigStep)
	}
}

func TestAPOLLOWithoutNLCanSpike(t *testing.T) {
	p := matParam(t, "w", 8, 16, 20)
	a := New(optim.Hyper{LR: 1}, Config{Rank: 2, Granularity: Channel, Scale: 1, DisableNL: true})
	rng := tensor.NewRNG(21)

	structuredSpikeGrads(p, rng, false)
	before := p.W.Clone()
	a.Step([]*nn.Param{p})
	normalStep := tensor.Sub(p.W, before).Norm()

	structuredSpikeGrads(p, rng, true)
	before = p.W.Clone()
	a.Step([]*nn.Param{p})
	bigStep := tensor.Sub(p.W, before).Norm()

	if bigStep < normalStep*2 {
		t.Fatalf("expected an unlimited spike: %v vs %v", normalStep, bigStep)
	}
}

func TestAPOLLOTransposedMatrices(t *testing.T) {
	// Tall matrices (rows > cols) must be handled through the orientation
	// logic: channels live on the larger dimension.
	p := matParam(t, "w", 32, 8, 22)
	a := New(optim.Hyper{LR: 0.01}, Config{Rank: 2})
	rng := tensor.NewRNG(23)
	before := p.W.Clone()
	for i := 0; i < 3; i++ {
		fillGrad(p, rng, 1)
		a.Step([]*nn.Param{p})
	}
	if p.W.Equal(before) {
		t.Fatal("tall matrix not updated")
	}
	if p.W.HasNaN() {
		t.Fatal("NaN in weights after transposed update")
	}
	// State is 2·n·r + 2 where n = 32 (the larger dim).
	want := int64(4 * (2*32*2 + 2))
	if got := a.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d want %d", got, want)
	}
}

func TestAPOLLONamesDistinguishVariants(t *testing.T) {
	h := optim.Hyper{LR: 0.01}
	if got := New(h, Config{Rank: 4}).Name(); got != "APOLLO" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewMini(h).Name(); got != "APOLLO-Mini" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(h, Config{Rank: 4, Projection: linalg.SVDProjection}).Name(); got != "APOLLO w. SVD" {
		t.Fatalf("Name = %q", got)
	}
}

func TestAPOLLOWeightDecayApplied(t *testing.T) {
	p := matParam(t, "w", 8, 16, 24)
	a := New(optim.Hyper{LR: 0.1, WeightDecay: 0.5}, Config{Rank: 2})
	// Zero gradient: the update must be pure decay (scaling factors are 0
	// because R = 0).
	before := p.W.Clone()
	a.Step([]*nn.Param{p})
	want := tensor.Scale(float32(1-0.1*0.5), before)
	if !p.W.AllClose(want, 1e-6) {
		t.Fatal("decoupled weight decay not applied")
	}
}
