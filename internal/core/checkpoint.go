// Checkpoint hooks for the paper's own optimizers, mirroring the
// optim.StateSaver / optim.StateLoader implementations of the baseline zoo
// (see internal/optim/checkpoint.go for the canonical-form contract).
// APOLLO's persistent state per projected parameter is exactly what Table 1
// advertises — the rank-space moments plus the projector seed/phase and the
// limiter's previous norm — so a checkpoint restores the trajectory
// bit-for-bit without ever persisting the random projection matrix.
package core

import (
	"fmt"

	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// CaptureGlobals implements optim.StateSaver: the projector-seed RNG phase.
func (a *APOLLO) CaptureGlobals() ([]uint64, error) { return []uint64{a.rng.State()}, nil }

// CaptureParam implements optim.StateSaver — layout: Scalars [t, since,
// prevNorm bits, proj seed, proj rng, proj m, proj ready]; Whole [mR, vR]
// (+ the SVD projection for the w.-SVD variant). Dense fallback delegates.
func (a *APOLLO) CaptureParam(p *nn.Param) (*optim.ParamState, error) {
	if !a.projectable(p) {
		return a.dense.CaptureParam(p)
	}
	st, ok := a.states[p]
	if !ok {
		return nil, nil
	}
	return optim.CaptureProjectedState(st.proj, st.mR, st.vR, st.t, st.since, &st.prevNorm), nil
}

// RestoreGlobals implements optim.StateLoader.
func (a *APOLLO) RestoreGlobals(gs []uint64) error {
	if len(gs) != 1 {
		return fmt.Errorf("core: APOLLO: %d global cursors, want 1", len(gs))
	}
	a.rng.SetState(gs[0])
	return nil
}

// RestoreParam implements optim.StateLoader.
func (a *APOLLO) RestoreParam(p *nn.Param, st *optim.ParamState) error {
	if !a.projectable(p) {
		return a.dense.RestoreParam(p, st)
	}
	trans := p.W.Rows > p.W.Cols
	n := p.W.Cols
	if trans {
		n = p.W.Rows
	}
	proj, mR, vR, t, since, prevNorm, err := optim.RestoreProjectedState(
		st, a.cfg.Projection, a.cfg.Rank, n, true, "APOLLO "+p.Name)
	if err != nil {
		return err
	}
	a.states[p] = &apolloState{
		proj: proj, mR: mR, vR: vR,
		t: t, since: since, prevNorm: prevNorm, trans: trans,
	}
	return nil
}

// CaptureGlobals implements optim.StateSaver (no global cursors).
func (s *StructuredAdamW) CaptureGlobals() ([]uint64, error) { return nil, nil }

// CaptureParam implements optim.StateSaver — layout: Scalars [t, prevNorm
// bits]; RowMats [m, v]. Non-matrix parameters delegate to the dense AdamW.
func (s *StructuredAdamW) CaptureParam(p *nn.Param) (*optim.ParamState, error) {
	if p.Kind != nn.KindMatrix {
		return s.dense.CaptureParam(p)
	}
	st, ok := s.states[p]
	if !ok {
		return nil, nil
	}
	return &optim.ParamState{
		Scalars: []uint64{uint64(st.t), optim.F64Bits(st.prevNorm)},
		RowMats: []*tensor.Matrix{st.m.Clone(), st.v.Clone()},
	}, nil
}

// RestoreGlobals implements optim.StateLoader.
func (s *StructuredAdamW) RestoreGlobals(gs []uint64) error {
	if len(gs) != 0 {
		return fmt.Errorf("core: StructuredAdamW: %d global cursors, want 0", len(gs))
	}
	return nil
}

// RestoreParam implements optim.StateLoader.
func (s *StructuredAdamW) RestoreParam(p *nn.Param, st *optim.ParamState) error {
	if p.Kind != nn.KindMatrix {
		return s.dense.RestoreParam(p, st)
	}
	who := "StructuredAdamW " + p.Name
	if st == nil || len(st.Scalars) != 2 || len(st.RowMats) != 2 ||
		len(st.Whole) != 0 || len(st.Blobs) != 0 || st.Sub != nil {
		return fmt.Errorf("core: %s: unexpected state layout", who)
	}
	for _, m := range st.RowMats {
		if m.Rows != p.W.Rows || m.Cols != p.W.Cols {
			return fmt.Errorf("core: %s: state matrix %dx%d, want %dx%d",
				who, m.Rows, m.Cols, p.W.Rows, p.W.Cols)
		}
	}
	s.states[p] = &structState{
		m: st.RowMats[0].Clone(), v: st.RowMats[1].Clone(),
		t: int(st.Scalars[0]), prevNorm: optim.F64From(st.Scalars[1]),
	}
	return nil
}
