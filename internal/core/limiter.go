// Package core implements the paper's contribution: structured (channel- or
// tensor-wise) learning-rate adaptation for LLM training, and its
// memory-efficient realization APOLLO / APOLLO-Mini, which estimate the
// structured gradient-scaling factors inside a low-rank auxiliary optimizer
// state fed by pure random projection (Algorithm 1).
package core

import (
	"fmt"

	"apollo/internal/tensor"
)

// DefaultGamma is the norm-growth limiter threshold used throughout the
// paper (γ = 1.01, Section 3.2).
const DefaultGamma = 1.01

// LimitNormGrowth applies the paper's norm-growth limiter (equation 4): if
// ‖g‖ / prevNorm > gamma, g is rescaled so its norm equals gamma·prevNorm.
// It returns the post-limit norm, which the caller stores as the next
// prevNorm. A prevNorm of zero (first step) disables limiting. This replaces
// vanilla gradient clipping and is what removes the early-training loss
// spike of structured updates (Fig. 3).
func LimitNormGrowth(g *tensor.Matrix, prevNorm, gamma float64) float64 {
	norm := g.Norm()
	if prevNorm > 0 && norm > gamma*prevNorm {
		target := gamma * prevNorm
		tensor.ScaleInPlace(g, float32(target/(norm+1e-30)))
		return target
	}
	return norm
}

// Granularity selects how coarse the structured scaling factor is.
type Granularity int

const (
	// Channel scaling assigns one factor per channel along the larger
	// matrix dimension (APOLLO, Section 4.1).
	Channel Granularity = iota
	// Tensor scaling assigns a single factor to the whole matrix
	// (APOLLO-Mini, Section 4.2).
	Tensor
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case Channel:
		return "channel"
	case Tensor:
		return "tensor"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}
