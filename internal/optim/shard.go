// ZeRO-style state partitioning hooks (Rajbhandari et al., 2020; the
// state-sharding lineage of Anil et al., 2019). Every optimizer in this zoo
// keeps per-parameter state, so an external partitioner (internal/zero) can
// hand each replica a disjoint sub-slice of the parameter list and have each
// inner optimizer step only its shard. Two things make that bit-identical to
// an unsharded run:
//
//  1. Per-parameter independence: Step's update for a parameter reads only
//     that parameter's gradient and state. This holds for the whole zoo
//     (clipping, the one cross-parameter coupling, happens in the trainer
//     before Step).
//  2. Order-independent randomness: the seeded-projection methods (GaLore,
//     Fira, Flora, APOLLO) draw one projector seed per parameter from a
//     shared RNG at first touch — in *step order*. A sharded optimizer that
//     only ever sees its shard would draw a different seed sequence, so it
//     must pre-walk the full list via StateSharder.
package optim

import (
	"apollo/internal/linalg"
	"apollo/internal/nn"
)

// StateSharder is the state-introspection hook for partitioned optimizers.
// PrepareShard walks the FULL parameter list in global order, consuming any
// order-dependent randomness exactly as an unsharded first Step would, but
// allocates state only for parameters where owned(p) is true. After
// PrepareShard, stepping only the owned sub-slice produces per-parameter
// updates bit-identical to the unsharded optimizer.
//
// Optimizers without order-dependent randomness (AdamW, SGD, Adam-mini)
// need no hook: their lazy per-parameter state is already subset-safe. The
// 8-bit variants are NOT shardable — stochastic rounding draws from a
// shared RNG on every step, so their updates depend on which parameters an
// instance steps.
type StateSharder interface {
	PrepareShard(all []*nn.Param, owned func(*nn.Param) bool)
}

// StateIntrospector describes an optimizer's per-parameter state without
// allocating it, so a partitioner can balance by actual state cost (the
// quantity ZeRO divides) instead of parameter size — for low-rank methods
// the two differ wildly: a dense-fallback embedding carries 2·mn state
// while a projected matrix of the same size carries only 2·nr.
type StateIntrospector interface {
	// StateElemsFor returns the resident state element count Step would
	// allocate for p.
	StateElemsFor(p *nn.Param) int64
	// RowSplittable reports whether Step's update for p is element-wise
	// (or per-row), so ownership of p may be split across row ranges with
	// bit-identical results. Projected parameters are never splittable —
	// their subspace statistics couple the whole matrix.
	RowSplittable(p *nn.Param) bool
}

// Segment is a row range [Row0, Row1) of the parameter at index Param in
// the Init list — the ownership granularity of the partitioned optimizer.
// Whole parameters are the common case (Row0=0, Row1=Rows); large
// element-wise parameters are split finer, mirroring ZeRO's flat
// partitioning, so no single tensor's state can unbalance the shards.
type Segment struct {
	Param      int
	Row0, Row1 int
}

// ShardedStepper is what a ZeRO-style wrapper (internal/zero) exposes to
// the data-parallel trainer: a partition of the parameter list into owner
// shards plus per-shard stepping, so the trainer can run each shard's
// optimizer on its owner replica and tree-broadcast the updated weights.
type ShardedStepper interface {
	Optimizer
	// Init fixes the parameter list, partitions it and prepares the
	// per-shard inner optimizers. Idempotent for the same list.
	Init(all []*nn.Param)
	// Shards returns the number of owner shards.
	Shards() int
	// OwnedSegments returns the row segments owned by a shard, in
	// ascending (Param, Row0) order. Segments of distinct shards are
	// disjoint and together tile every parameter exactly once.
	OwnedSegments(shard int) []Segment
	// StepShard runs the shard's inner optimizer on its owned segments.
	// Distinct shards touch disjoint rows and may run concurrently.
	StepShard(shard int)
	// ReplicaStateBytes reports each shard's resident optimizer-state
	// footprint; the sum is the unsharded StateBytes.
	ReplicaStateBytes() []int64
}

// StateElemsFor implements StateIntrospector: dense first+second moments.
func (a *AdamW) StateElemsFor(p *nn.Param) int64 { return 2 * int64(p.NumEl()) }

// RowSplittable implements StateIntrospector: the AdamW update is fully
// element-wise.
func (a *AdamW) RowSplittable(p *nn.Param) bool { return true }

// StateElemsFor implements StateIntrospector: velocity only with momentum.
func (s *SGD) StateElemsFor(p *nn.Param) int64 {
	if s.Momentum > 0 {
		return int64(p.NumEl())
	}
	return 0
}

// RowSplittable implements StateIntrospector: element-wise update.
func (s *SGD) RowSplittable(p *nn.Param) bool { return true }

// StateElemsFor implements StateIntrospector: full M plus one block second
// moment per row (one total for vectors).
func (a *AdamMini) StateElemsFor(p *nn.Param) int64 {
	if p.Kind == nn.KindVector {
		return int64(p.NumEl()) + 1
	}
	return int64(p.NumEl()) + int64(p.W.Rows)
}

// RowSplittable implements StateIntrospector: matrix/embedding blocks are
// per-row, so row splits preserve them exactly; vectors share one block.
func (a *AdamMini) RowSplittable(p *nn.Param) bool { return p.Kind != nn.KindVector }

// ProjectedStateElems is the shared Table 1 accounting for a projected
// optimizer: moments in the r×n auxiliary space plus the projector's
// resident floats, plus extra per-parameter scalars; dense AdamW states
// otherwise. internal/core reuses it for APOLLO (extra = 1: the limiter's
// previous norm).
func ProjectedStateElems(p *nn.Param, rank int, kind linalg.ProjectionKind, extra int64) int64 {
	if !projects(p, rank) {
		return 2 * int64(p.NumEl())
	}
	o := orient(p.W.Rows, p.W.Cols)
	elems := 2*int64(rank)*int64(o.n) + extra
	if kind == linalg.SVDProjection {
		elems += int64(rank) * int64(o.m)
	} else {
		elems++ // the stored projection seed
	}
	return elems
}

// StateElemsFor implements StateIntrospector (Table 1: 2nr + mr for SVD).
func (g *GaLore) StateElemsFor(p *nn.Param) int64 {
	return ProjectedStateElems(p, g.cfg.Rank, g.cfg.Projection, 0)
}

// RowSplittable implements StateIntrospector: only the dense fallback is
// element-wise.
func (g *GaLore) RowSplittable(p *nn.Param) bool { return !projects(p, g.cfg.Rank) }

// StateElemsFor implements StateIntrospector (Table 1: 2nr + mr + 1).
func (f *Fira) StateElemsFor(p *nn.Param) int64 {
	return ProjectedStateElems(p, f.cfg.Rank, f.cfg.Projection, 1)
}

// RowSplittable implements StateIntrospector.
func (f *Fira) RowSplittable(p *nn.Param) bool { return !projects(p, f.cfg.Rank) }

// StateElemsFor implements StateIntrospector (Table 1: 2nr + 1).
func (f *Flora) StateElemsFor(p *nn.Param) int64 {
	return ProjectedStateElems(p, f.cfg.Rank, linalg.RandomProjection, 0)
}

// RowSplittable implements StateIntrospector.
func (f *Flora) RowSplittable(p *nn.Param) bool { return !projects(p, f.cfg.Rank) }

// PrepareProjectedShard is the single copy of the determinism-critical seed
// walk behind every StateSharder implementation: visit the FULL parameter
// list in global order, draw one seed per projectable parameter (matching
// an unsharded first Step exactly), and invoke alloc only for owned
// parameters. Keeping the skip conditions and draw order in one place is
// what makes the bit-parity contract a single invariant rather than four
// copies that can drift.
func PrepareProjectedShard(all []*nn.Param, owned, projectable func(*nn.Param) bool,
	nextSeed func() uint64, alloc func(p *nn.Param, seed uint64)) {
	for _, p := range all {
		if !projectable(p) {
			continue
		}
		seed := nextSeed()
		if owned(p) {
			alloc(p, seed)
		}
	}
}

// PrepareShard implements StateSharder: projector seeds are drawn in global
// parameter order so a shard-local GaLore matches the unsharded instance.
func (g *GaLore) PrepareShard(all []*nn.Param, owned func(*nn.Param) bool) {
	PrepareProjectedShard(all, owned,
		func(p *nn.Param) bool { return projects(p, g.cfg.Rank) },
		g.rng.Uint64,
		func(p *nn.Param, seed uint64) {
			if _, ok := g.states[p]; ok {
				return
			}
			o := orient(p.W.Rows, p.W.Cols)
			g.states[p] = &galoreState{
				proj: linalg.NewProjector(g.cfg.Projection, g.cfg.Rank, seed),
				adam: newAdamState(g.cfg.Rank, o.n),
				o:    o,
			}
		})
}

// PrepareShard implements StateSharder (see GaLore.PrepareShard).
func (f *Fira) PrepareShard(all []*nn.Param, owned func(*nn.Param) bool) {
	PrepareProjectedShard(all, owned,
		func(p *nn.Param) bool { return projects(p, f.cfg.Rank) },
		f.rng.Uint64,
		func(p *nn.Param, seed uint64) {
			if _, ok := f.states[p]; ok {
				return
			}
			o := orient(p.W.Rows, p.W.Cols)
			f.states[p] = &firaState{
				proj: linalg.NewProjector(f.cfg.Projection, f.cfg.Rank, seed),
				adam: newAdamState(f.cfg.Rank, o.n),
				o:    o,
			}
		})
}

// PrepareShard implements StateSharder (see GaLore.PrepareShard).
func (f *Flora) PrepareShard(all []*nn.Param, owned func(*nn.Param) bool) {
	PrepareProjectedShard(all, owned,
		func(p *nn.Param) bool { return projects(p, f.cfg.Rank) },
		f.rng.Uint64,
		func(p *nn.Param, seed uint64) {
			if _, ok := f.states[p]; ok {
				return
			}
			o := orient(p.W.Rows, p.W.Cols)
			f.states[p] = &floraState{
				proj: linalg.NewProjector(linalg.RandomProjection, f.cfg.Rank, seed),
				adam: newAdamState(f.cfg.Rank, o.n),
				o:    o,
			}
		})
}
