package optim

import (
	"fmt"

	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// FactorizedMode selects which weight-factorization baseline to run. All
// four share the machinery: W is reparameterized through rank-r factors and
// only the factors receive AdamW updates. The chain rule gives the factor
// gradients directly from the dense dW produced by backprop (dA = s·Bᵀ·dW,
// dB = s·dW·Aᵀ), so the wrappers live entirely at the optimizer level and
// work with any model.
type FactorizedMode int

const (
	// ModeLowRank trains W = B·A from scratch with no frozen base — the
	// paper's "Low-Rank" pre-training baseline (Table 2), which collapses
	// at the 1B scale.
	ModeLowRank FactorizedMode = iota
	// ModeLoRA freezes the pretrained W0 and trains W = W0 + s·B·A.
	ModeLoRA
	// ModeReLoRA periodically merges the adapter into W0 and restarts it,
	// recovering high-rank updates from a sequence of low-rank ones.
	ModeReLoRA
	// ModeDoRA decomposes W into per-column magnitude and direction,
	// applying the adapter to the direction only (Liu et al., 2024a).
	ModeDoRA
)

// String implements fmt.Stringer.
func (m FactorizedMode) String() string {
	switch m {
	case ModeLowRank:
		return "Low-Rank"
	case ModeLoRA:
		return "LoRA"
	case ModeReLoRA:
		return "ReLoRA"
	case ModeDoRA:
		return "DoRA"
	default:
		return fmt.Sprintf("FactorizedMode(%d)", int(m))
	}
}

// FactorizedConfig parameterizes the factorized optimizers.
type FactorizedConfig struct {
	Mode       FactorizedMode
	Rank       int
	Alpha      float64 // adapter scaling s = Alpha/Rank (LoRA convention)
	MergeEvery int     // ReLoRA merge period
	Seed       uint64
}

func (c FactorizedConfig) withDefaults() FactorizedConfig {
	if c.Alpha == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		c.Alpha = float64(2 * c.Rank) // the common α = 2r heuristic
	}
	if c.MergeEvery == 0 {
		c.MergeEvery = 200
	}
	if c.Seed == 0 {
		c.Seed = 0x10A4
	}
	return c
}

type factorState struct {
	w0    *tensor.Matrix // frozen base (nil for ModeLowRank: implicit zero)
	a, b  *tensor.Matrix // factors: b is out×r, a is r×in
	mag   []float32      // DoRA per-column magnitudes (len = in)
	adamA *adamState
	adamB *adamState
	adamM *adamState
	steps int
}

// Factorized implements the four reparameterized baselines behind one
// Optimizer.
type Factorized struct {
	h   Hyper
	cfg FactorizedConfig

	states map[*nn.Param]*factorState
	dense  *AdamW
	rng    *tensor.RNG
}

// NewFactorized builds the wrapper.
func NewFactorized(h Hyper, cfg FactorizedConfig) *Factorized {
	cfg = cfg.withDefaults()
	if cfg.Rank < 1 {
		panic(fmt.Sprintf("optim: factorized rank %d", cfg.Rank))
	}
	return &Factorized{
		h:      h.withDefaults(),
		cfg:    cfg,
		states: map[*nn.Param]*factorState{},
		dense:  NewAdamW(h),
		rng:    tensor.NewRNG(cfg.Seed),
	}
}

// Name implements Optimizer.
func (f *Factorized) Name() string { return f.cfg.Mode.String() }

// SetLR implements Optimizer.
func (f *Factorized) SetLR(lr float64) {
	f.h.LR = lr
	f.dense.SetLR(lr)
}

// LR implements Optimizer.
func (f *Factorized) LR() float64 { return f.h.LR }

// scale returns the adapter scaling factor s.
func (f *Factorized) scale() float32 {
	return float32(f.cfg.Alpha / float64(f.cfg.Rank))
}

func (f *Factorized) initState(p *nn.Param) *factorState {
	out, in := p.W.Rows, p.W.Cols
	r := f.cfg.Rank
	st := &factorState{
		a:     tensor.NewMatrixRand(r, in, 0.02, f.rng),
		b:     tensor.NewMatrix(out, r),
		adamA: newAdamState(r, in),
		adamB: newAdamState(out, r),
	}
	switch f.cfg.Mode {
	case ModeLowRank:
		// Train W = B·A from scratch: random B too, otherwise W stays 0.
		st.b = tensor.NewMatrixRand(out, r, 0.02, f.rng)
	default:
		st.w0 = p.W.Clone()
	}
	if f.cfg.Mode == ModeDoRA {
		st.mag = make([]float32, in)
		for j, n := range p.W.ColNorms() {
			st.mag[j] = float32(n)
		}
		st.adamM = newAdamState(1, in)
	}
	return st
}

// effective recomputes the materialized weight from the factor state.
func (f *Factorized) effective(st *factorState, w *tensor.Matrix) {
	s := f.scale()
	ba := tensor.MatMul(st.b, st.a)
	tensor.ScaleInPlace(ba, s)
	switch {
	case st.w0 == nil: // ModeLowRank
		w.CopyFrom(ba)
	case st.mag != nil: // ModeDoRA: W = mag ∘ (W0+sBA)/‖·‖_col
		v := tensor.Add(st.w0, ba)
		norms := v.ColNorms()
		for j := range norms {
			if norms[j] < 1e-12 {
				norms[j] = 1e-12
			}
		}
		for i := 0; i < w.Rows; i++ {
			vrow := v.Row(i)
			wrow := w.Row(i)
			for j := range wrow {
				wrow[j] = st.mag[j] * vrow[j] / float32(norms[j])
			}
		}
	default: // LoRA / ReLoRA
		w.CopyFrom(st.w0)
		tensor.AddInPlace(w, ba)
	}
}

// Step implements Optimizer.
func (f *Factorized) Step(ps []*nn.Param) {
	var fallback []*nn.Param
	for _, p := range ps {
		if p.Kind != nn.KindMatrix || min(p.W.Rows, p.W.Cols) <= f.cfg.Rank {
			fallback = append(fallback, p)
			continue
		}
		st, ok := f.states[p]
		if !ok {
			st = f.initState(p)
			f.states[p] = st
			f.effective(st, p.W)
		}
		st.steps++
		s := f.scale()
		dW := p.Grad

		var dV *tensor.Matrix
		if st.mag != nil {
			// DoRA: route dW through the magnitude/direction decomposition.
			ba := tensor.MatMul(st.b, st.a)
			tensor.ScaleInPlace(ba, s)
			v := tensor.Add(st.w0, ba)
			norms := v.ColNorms()
			dV = tensor.NewMatrix(dW.Rows, dW.Cols)
			dmag := tensor.NewMatrix(1, len(st.mag))
			for j := 0; j < dW.Cols; j++ {
				c := norms[j]
				if c < 1e-12 {
					c = 1e-12
				}
				var u float64
				for i := 0; i < dW.Rows; i++ {
					u += float64(dW.At(i, j)) * float64(v.At(i, j))
				}
				dmag.Set(0, j, float32(u/c))
				mOverC := float64(st.mag[j]) / c
				corr := u / (c * c)
				for i := 0; i < dW.Rows; i++ {
					dV.Set(i, j, float32(mOverC*(float64(dW.At(i, j))-float64(v.At(i, j))*corr)))
				}
			}
			dirM := dmag.Clone()
			st.adamM.update(dirM, dmag, f.h)
			for j := range st.mag {
				st.mag[j] -= float32(f.h.LR) * dirM.At(0, j)
			}
		} else {
			dV = dW
		}

		// Factor gradients: dB = s·dV·Aᵀ, dA = s·Bᵀ·dV.
		dB := tensor.MatMulT(dV, st.a)
		tensor.ScaleInPlace(dB, s)
		dA := tensor.TMatMul(st.b, dV)
		tensor.ScaleInPlace(dA, s)

		dirB := dB.Clone()
		st.adamB.update(dirB, dB, f.h)
		tensor.AxpyInPlace(st.b, float32(-f.h.LR), dirB)
		dirA := dA.Clone()
		st.adamA.update(dirA, dA, f.h)
		tensor.AxpyInPlace(st.a, float32(-f.h.LR), dirA)

		// ReLoRA merge-and-restart.
		if f.cfg.Mode == ModeReLoRA && f.cfg.MergeEvery > 0 && st.steps%f.cfg.MergeEvery == 0 {
			ba := tensor.MatMul(st.b, st.a)
			tensor.ScaleInPlace(ba, s)
			tensor.AddInPlace(st.w0, ba)
			st.a = tensor.NewMatrixRand(f.cfg.Rank, p.W.Cols, 0.02, f.rng)
			st.b.Zero()
			st.adamA = newAdamState(f.cfg.Rank, p.W.Cols)
			st.adamB = newAdamState(p.W.Rows, f.cfg.Rank)
		}

		f.effective(st, p.W)
	}
	if len(fallback) > 0 {
		f.dense.Step(fallback)
	}
}

// StateBytes implements Optimizer: frozen base + factors + their moments
// (everything this method must keep resident beyond the live weight).
func (f *Factorized) StateBytes() int64 {
	total := f.dense.StateBytes()
	for _, st := range f.states { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		if st.w0 != nil {
			total += 4 * int64(st.w0.NumEl())
		}
		total += 4 * int64(st.a.NumEl()+st.b.NumEl())
		total += st.adamA.bytes() + st.adamB.bytes()
		if st.adamM != nil {
			total += st.adamM.bytes() + 4*int64(len(st.mag))
		}
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
