package optim

import (
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// SGD is plain stochastic gradient descent with optional heavyweight
// momentum and decoupled weight decay. It is the paper's memory floor
// (Momentum = 0 keeps zero optimizer state) and the baseline known to fail
// on transformer pre-training (Zhang et al., 2024a), which Table 2 and
// Table 10 rely on.
type SGD struct {
	h        Hyper
	Momentum float64

	vel map[*nn.Param]*tensor.Matrix
}

// NewSGD builds the optimizer; momentum 0 disables velocity state entirely.
func NewSGD(h Hyper, momentum float64) *SGD {
	return &SGD{h: h.withDefaults(), Momentum: momentum, vel: map[*nn.Param]*tensor.Matrix{}}
}

// Name implements Optimizer.
func (s *SGD) Name() string {
	if s.Momentum > 0 {
		return "SGD-M"
	}
	return "SGD"
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.h.LR = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.h.LR }

// Step implements Optimizer.
func (s *SGD) Step(ps []*nn.Param) {
	for _, p := range ps {
		dir := p.Grad
		if s.Momentum > 0 {
			v, ok := s.vel[p]
			if !ok {
				v = tensor.NewMatrix(p.W.Rows, p.W.Cols)
				s.vel[p] = v
			}
			tensor.ScaleInPlace(v, float32(s.Momentum))
			tensor.AddInPlace(v, p.Grad)
			dir = v
		}
		decayAndApply(p, dir, s.h.LR, s.h.WeightDecay)
	}
}

// StateBytes implements Optimizer.
func (s *SGD) StateBytes() int64 {
	var total int64
	for _, v := range s.vel { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += 4 * int64(v.NumEl())
	}
	return total
}
