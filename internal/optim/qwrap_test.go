package optim

import (
	"math"
	"testing"

	"apollo/internal/nn"
	"apollo/internal/tensor"
)

func TestWeightQuantizedName(t *testing.T) {
	w := NewWeightQuantized(NewAdamW(Hyper{LR: 0.01}), 1)
	if w.Name() != "Q-AdamW" {
		t.Fatalf("name %q", w.Name())
	}
}

func TestWeightQuantizedTracksInner(t *testing.T) {
	// Q-AdamW must follow plain AdamW closely over a few steps.
	const m, n = 16, 128
	pq := matParam(t, m, n, 41)
	pf := matParam(t, m, n, 41)
	q := NewWeightQuantized(NewAdamW(Hyper{LR: 0.01}), 1)
	f := NewAdamW(Hyper{LR: 0.01})
	rng := tensor.NewRNG(42)
	for i := 0; i < 12; i++ {
		fillGrad(pq, rng)
		pf.Grad.CopyFrom(pq.Grad)
		q.Step([]*nn.Param{pq})
		f.Step([]*nn.Param{pf})
	}
	rel := tensor.Sub(pq.W, pf.W).Norm() / (pf.W.Norm() + 1e-12)
	if rel > 0.05 {
		t.Fatalf("Q- weights diverged from fp by %v", rel)
	}
}

func TestWeightQuantizedSkipsVectors(t *testing.T) {
	rng := tensor.NewRNG(43)
	vec := nn.NewParam("g", nn.KindVector, tensor.NewMatrixRand(1, 7, 0.1, rng))
	q := NewWeightQuantized(NewAdamW(Hyper{LR: 0.1}), 1)
	fillGrad(vec, rng)
	before := vec.W.Clone()
	q.Step([]*nn.Param{vec})
	// The vector must still be updated (by the inner optimizer) but must
	// not be INT8-snapped: its values should differ from any 127-level grid
	// reconstruction of before.
	if vec.W.Equal(before) {
		t.Fatal("vector not updated")
	}
	if q.WeightBytes() != 0 {
		t.Fatalf("vectors must not be quantized, got %d weight bytes", q.WeightBytes())
	}
}

func TestWeightQuantizedLRPassthrough(t *testing.T) {
	q := NewWeightQuantized(NewAdamW(Hyper{LR: 0.01}), 1)
	q.SetLR(0.5)
	if q.LR() != 0.5 {
		t.Fatalf("LR %v", q.LR())
	}
}

func TestWeightQuantizedWeightBytes(t *testing.T) {
	p := matParam(t, 16, 16, 44)
	q := NewWeightQuantized(NewAdamW(Hyper{LR: 0.01}), 1)
	rng := tensor.NewRNG(45)
	fillGrad(p, rng)
	q.Step([]*nn.Param{p})
	// 256 codes + 2 group scales (group 128).
	want := int64(256 + 4*2)
	if got := q.WeightBytes(); got != want {
		t.Fatalf("WeightBytes = %d want %d", got, want)
	}
}

func TestAdamMiniVectorSingleBlock(t *testing.T) {
	rng := tensor.NewRNG(46)
	vec := nn.NewParam("g", nn.KindVector, tensor.NewMatrixRand(1, 8, 0.1, rng))
	a := NewAdamMini(Hyper{LR: 0.01})
	fillGrad(vec, rng)
	a.Step([]*nn.Param{vec})
	// State = full M (8) + single-block V (1) = 9 floats.
	if got := a.StateBytes(); got != 4*9 {
		t.Fatalf("vector Adam-mini state %d want 36", got)
	}
}

func TestGaLoreRefreshChangesSubspace(t *testing.T) {
	const m, n, r = 8, 16, 2
	p := matParam(t, m, n, 47)
	g := NewGaLore(Hyper{LR: 0.001}, LowRankConfig{Rank: r, UpdateGap: 2})
	rng := tensor.NewRNG(48)
	var first *tensor.Matrix
	for i := 0; i < 5; i++ {
		fillGrad(p, rng)
		g.Step([]*nn.Param{p})
		if i == 0 {
			for _, st := range g.states {
				first = st.proj.Matrix().Clone()
			}
		}
	}
	for _, st := range g.states {
		if st.proj.Matrix().Equal(first) {
			t.Fatal("projection never refreshed with UpdateGap=2")
		}
	}
}

func TestFactorizedAlphaDefault(t *testing.T) {
	f := NewFactorized(Hyper{LR: 0.01}, FactorizedConfig{Mode: ModeLoRA, Rank: 4})
	if got := f.scale(); math.Abs(float64(got)-2) > 1e-9 {
		t.Fatalf("default adapter scale %v want α/r = 2r/r = 2", got)
	}
}

func TestLowRankConfigValidate(t *testing.T) {
	if err := (LowRankConfig{Rank: 0}).Validate(); err == nil {
		t.Fatal("rank 0 must be rejected")
	}
	if err := (LowRankConfig{Rank: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHyperDefaults(t *testing.T) {
	h := Hyper{LR: 1}.withDefaults()
	if h.Beta1 != 0.9 || h.Beta2 != 0.999 || h.Eps != 1e-8 {
		t.Fatalf("defaults %+v", h)
	}
	// Explicit values survive.
	h2 := Hyper{LR: 1, Beta1: 0.5}.withDefaults()
	if h2.Beta1 != 0.5 {
		t.Fatalf("explicit beta1 overwritten: %v", h2.Beta1)
	}
}

func TestOrientation(t *testing.T) {
	o := orient(4, 8)
	if o.transposed || o.m != 4 || o.n != 8 {
		t.Fatalf("orient(4,8) = %+v", o)
	}
	o = orient(8, 4)
	if !o.transposed || o.m != 4 || o.n != 8 {
		t.Fatalf("orient(8,4) = %+v", o)
	}
	rng := tensor.NewRNG(49)
	g := tensor.NewMatrixRand(8, 4, 1, rng)
	ov := orientedView(g, o)
	if ov.Rows != 4 || ov.Cols != 8 {
		t.Fatalf("oriented view %dx%d", ov.Rows, ov.Cols)
	}
	back := unorient(ov, o)
	if !back.AllClose(g, 0) {
		t.Fatal("unorient(orientedView(g)) != g")
	}
}

func TestAdam8bitStateBytesBelowFP(t *testing.T) {
	p := matParam(t, 16, 128, 50)
	a := NewAdam8bit(Hyper{LR: 0.01}, 1)
	rng := tensor.NewRNG(51)
	fillGrad(p, rng)
	a.Step([]*nn.Param{p})
	fp := int64(4 * 2 * 16 * 128)
	if a.StateBytes() >= fp/3 {
		t.Fatalf("8-bit states %d not well below fp32 %d", a.StateBytes(), fp)
	}
}
