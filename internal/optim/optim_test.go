package optim

import (
	"math"
	"testing"

	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

func matParam(t *testing.T, rows, cols int, seed uint64) *nn.Param {
	t.Helper()
	rng := tensor.NewRNG(seed)
	return nn.NewParam("w", nn.KindMatrix, tensor.NewMatrixRand(rows, cols, 0.1, rng))
}

func fillGrad(p *nn.Param, rng *tensor.RNG) {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = rng.NormFloat32()
	}
}

func TestAdamWScalarReference(t *testing.T) {
	// Single-element parameter: verify one step against hand-computed AdamW.
	p := nn.NewParam("w", nn.KindVector, tensor.FromSlice(1, 1, []float32{1.0}))
	p.Grad.Data[0] = 0.5
	h := Hyper{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a := NewAdamW(h)
	a.Step([]*nn.Param{p})
	// m = 0.05, v = 0.00025; m̂ = 0.5, v̂ = 0.25 → dir = 0.5/(0.5+1e-8) ≈ 1.
	want := 1.0 - 0.1*(0.5/(math.Sqrt(0.25)+1e-8))
	if math.Abs(float64(p.W.Data[0])-want) > 1e-6 {
		t.Fatalf("w after step = %v want %v", p.W.Data[0], want)
	}
}

func TestAdamWWeightDecayDecoupled(t *testing.T) {
	p := nn.NewParam("w", nn.KindVector, tensor.FromSlice(1, 1, []float32{2.0}))
	// Zero gradient: only decay acts, independent of moments.
	h := Hyper{LR: 0.1, WeightDecay: 0.5}
	a := NewAdamW(h)
	a.Step([]*nn.Param{p})
	want := 2.0 * (1 - 0.1*0.5)
	if math.Abs(float64(p.W.Data[0])-want) > 1e-6 {
		t.Fatalf("w = %v want %v", p.W.Data[0], want)
	}
}

func TestAdamWStateBytes(t *testing.T) {
	p := matParam(t, 8, 16, 1)
	a := NewAdamW(Hyper{LR: 0.01})
	rng := tensor.NewRNG(2)
	fillGrad(p, rng)
	a.Step([]*nn.Param{p})
	want := int64(4 * 2 * 8 * 16)
	if got := a.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d want %d (2mn floats)", got, want)
	}
}

func TestSGDStatelessAndWithMomentum(t *testing.T) {
	p := nn.NewParam("w", nn.KindVector, tensor.FromSlice(1, 1, []float32{1.0}))
	p.Grad.Data[0] = 1
	s := NewSGD(Hyper{LR: 0.1}, 0)
	s.Step([]*nn.Param{p})
	if math.Abs(float64(p.W.Data[0])-0.9) > 1e-7 {
		t.Fatalf("sgd step: %v", p.W.Data[0])
	}
	if s.StateBytes() != 0 {
		t.Fatalf("plain SGD must hold zero state, got %d", s.StateBytes())
	}

	sm := NewSGD(Hyper{LR: 0.1}, 0.9)
	p2 := nn.NewParam("w", nn.KindVector, tensor.FromSlice(1, 1, []float32{0.0}))
	p2.Grad.Data[0] = 1
	sm.Step([]*nn.Param{p2}) // v=1, w=-0.1
	sm.Step([]*nn.Param{p2}) // v=1.9, w=-0.29
	if math.Abs(float64(p2.W.Data[0])+0.29) > 1e-6 {
		t.Fatalf("momentum step: %v want -0.29", p2.W.Data[0])
	}
	if sm.StateBytes() != 4 {
		t.Fatalf("momentum state bytes = %d want 4", sm.StateBytes())
	}
}

func TestAdamMiniStateBytesHalved(t *testing.T) {
	const m, n = 16, 32
	p := matParam(t, m, n, 3)
	a := NewAdamMini(Hyper{LR: 0.01})
	rng := tensor.NewRNG(4)
	fillGrad(p, rng)
	a.Step([]*nn.Param{p})
	want := int64(4 * (m*n + m)) // full M + per-row V
	if got := a.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d want %d", got, want)
	}
	full := NewAdamW(Hyper{LR: 0.01})
	p2 := matParam(t, m, n, 3)
	fillGrad(p2, rng)
	full.Step([]*nn.Param{p2})
	if a.StateBytes() >= full.StateBytes() {
		t.Fatal("Adam-mini must use less state than AdamW")
	}
}

func TestGaLoreUpdateStaysInSubspace(t *testing.T) {
	// With zero weight decay, a GaLore update is Pᵀ·(...) — rank ≤ r.
	const m, n, r = 12, 24, 3
	p := matParam(t, m, n, 5)
	before := p.W.Clone()
	g := NewGaLore(Hyper{LR: 0.1}, LowRankConfig{Rank: r, Projection: linalg.SVDProjection})
	rng := tensor.NewRNG(6)
	fillGrad(p, rng)
	g.Step([]*nn.Param{p})
	delta := tensor.Sub(p.W, before)
	res := linalg.SVD(delta)
	if res.S[0] < 1e-9 {
		t.Fatal("no update applied")
	}
	for i := r; i < len(res.S); i++ {
		if res.S[i] > 1e-4*res.S[0] {
			t.Fatalf("update has rank > %d: σ%d = %v (σ0 = %v)", r, i, res.S[i], res.S[0])
		}
	}
}

func TestGaLoreStateBytes(t *testing.T) {
	const m, n, r = 12, 24, 3
	p := matParam(t, m, n, 7)
	rng := tensor.NewRNG(8)

	svd := NewGaLore(Hyper{LR: 0.1}, LowRankConfig{Rank: r, Projection: linalg.SVDProjection})
	fillGrad(p, rng)
	svd.Step([]*nn.Param{p})
	wantSVD := int64(4 * (2*n*r + r*m)) // Table 1: 2nr moments + mr projection
	if got := svd.StateBytes(); got != wantSVD {
		t.Fatalf("SVD GaLore StateBytes = %d want %d", got, wantSVD)
	}

	p2 := matParam(t, m, n, 7)
	rp := NewGaLore(Hyper{LR: 0.1}, LowRankConfig{Rank: r, Projection: linalg.RandomProjection})
	fillGrad(p2, rng)
	rp.Step([]*nn.Param{p2})
	wantRP := int64(4 * (2*n*r + 1)) // random projection stores only its seed
	if got := rp.StateBytes(); got != wantRP {
		t.Fatalf("RP GaLore StateBytes = %d want %d", got, wantRP)
	}
}

func TestGaLoreFallbackForSmallAndVectorParams(t *testing.T) {
	rng := tensor.NewRNG(9)
	vec := nn.NewParam("g", nn.KindVector, tensor.NewMatrixRand(1, 8, 0.1, rng))
	small := matParam(t, 2, 4, 10) // min dim 2 ≤ rank
	g := NewGaLore(Hyper{LR: 0.1}, LowRankConfig{Rank: 3})
	beforeV := vec.W.Clone()
	beforeS := small.W.Clone()
	fillGrad(vec, rng)
	fillGrad(small, rng)
	g.Step([]*nn.Param{vec, small})
	if vec.W.Equal(beforeV) || small.W.Equal(beforeS) {
		t.Fatal("fallback params not updated")
	}
}

func TestFiraUpdateIsFullRank(t *testing.T) {
	// Fira adds the scaled residual: the update must NOT be confined to a
	// rank-r subspace.
	const m, n, r = 12, 24, 3
	p := matParam(t, m, n, 11)
	before := p.W.Clone()
	f := NewFira(Hyper{LR: 0.1}, LowRankConfig{Rank: r, Projection: linalg.SVDProjection})
	rng := tensor.NewRNG(12)
	fillGrad(p, rng)
	f.Step([]*nn.Param{p})
	delta := tensor.Sub(p.W, before)
	res := linalg.SVD(delta)
	if res.S[r] < 1e-6*res.S[0] {
		t.Fatalf("Fira update collapsed to rank %d (σ%d = %v)", r, r, res.S[r])
	}
}

func TestFiraResidualLimiter(t *testing.T) {
	// A 100× gradient spike: Fira's residual term is raw-gradient-scaled,
	// so without the limiter it would explode. Check two consecutive steps
	// keep the update growth bounded.
	const m, n, r = 8, 16, 2
	p := matParam(t, m, n, 13)
	f := NewFira(Hyper{LR: 1}, LowRankConfig{Rank: r, Projection: linalg.RandomProjection, Scale: 1})
	rng := tensor.NewRNG(14)

	fillGrad(p, rng)
	tensor.ScaleInPlace(p.Grad, 0.01)
	f.Step([]*nn.Param{p})

	fillGrad(p, rng) // 100× larger
	before := p.W.Clone()
	f.Step([]*nn.Param{p})
	_ = before
	// The residual portion is limited; we simply require no NaN/Inf and a
	// bounded weight change.
	if p.W.HasNaN() {
		t.Fatal("Fira produced non-finite weights after a gradient spike")
	}
}

func TestFloraMomentumTransferKeepsVNonNegative(t *testing.T) {
	const m, n, r = 8, 16, 2
	p := matParam(t, m, n, 15)
	f := NewFlora(Hyper{LR: 0.01}, LowRankConfig{Rank: r, UpdateGap: 2})
	rng := tensor.NewRNG(16)
	for i := 0; i < 8; i++ {
		fillGrad(p, rng)
		f.Step([]*nn.Param{p})
	}
	for _, st := range f.states {
		for _, v := range st.adam.v.Data {
			if v < 0 {
				t.Fatalf("negative second moment %v after transfer", v)
			}
		}
	}
	if p.W.HasNaN() {
		t.Fatal("Flora produced NaN weights")
	}
}

func TestLoRAUpdateConfinedToAdapterSpan(t *testing.T) {
	const m, n, r = 12, 24, 3
	p := matParam(t, m, n, 17)
	w0 := p.W.Clone()
	f := NewFactorized(Hyper{LR: 0.05}, FactorizedConfig{Mode: ModeLoRA, Rank: r})
	rng := tensor.NewRNG(18)
	for i := 0; i < 5; i++ {
		fillGrad(p, rng)
		f.Step([]*nn.Param{p})
	}
	delta := tensor.Sub(p.W, w0)
	res := linalg.SVD(delta)
	if res.S[0] < 1e-9 {
		t.Fatal("LoRA made no progress")
	}
	for i := r; i < len(res.S); i++ {
		if res.S[i] > 1e-4*res.S[0] {
			t.Fatalf("LoRA delta rank exceeds %d: σ%d = %v", r, i, res.S[i])
		}
	}
}

func TestLowRankWeightHasBoundedRank(t *testing.T) {
	const m, n, r = 12, 24, 3
	p := matParam(t, m, n, 19)
	f := NewFactorized(Hyper{LR: 0.05}, FactorizedConfig{Mode: ModeLowRank, Rank: r})
	rng := tensor.NewRNG(20)
	for i := 0; i < 3; i++ {
		fillGrad(p, rng)
		f.Step([]*nn.Param{p})
	}
	res := linalg.SVD(p.W)
	for i := r; i < len(res.S); i++ {
		if res.S[i] > 1e-4*res.S[0] {
			t.Fatalf("Low-Rank weight rank exceeds %d", r)
		}
	}
}

func TestReLoRAMergeAccumulatesRank(t *testing.T) {
	const m, n, r = 12, 24, 2
	p := matParam(t, m, n, 21)
	w0 := p.W.Clone()
	f := NewFactorized(Hyper{LR: 0.05}, FactorizedConfig{Mode: ModeReLoRA, Rank: r, MergeEvery: 3})
	rng := tensor.NewRNG(22)
	for i := 0; i < 12; i++ { // 4 merge cycles
		fillGrad(p, rng)
		f.Step([]*nn.Param{p})
	}
	delta := tensor.Sub(p.W, w0)
	res := linalg.SVD(delta)
	// After several merges the cumulative delta should exceed rank r.
	if res.S[r] < 1e-5*res.S[0] {
		t.Fatalf("ReLoRA delta stuck at rank %d: σ%d/σ0 = %v", r, r, res.S[r]/res.S[0])
	}
}

func TestDoRAColumnNormsTrackMagnitude(t *testing.T) {
	const m, n, r = 12, 16, 3
	p := matParam(t, m, n, 23)
	f := NewFactorized(Hyper{LR: 0.01}, FactorizedConfig{Mode: ModeDoRA, Rank: r})
	rng := tensor.NewRNG(24)
	for i := 0; i < 4; i++ {
		fillGrad(p, rng)
		f.Step([]*nn.Param{p})
	}
	var st *factorState
	for _, s := range f.states {
		st = s
	}
	norms := p.W.ColNorms()
	for j, nj := range norms {
		if math.Abs(nj-float64(st.mag[j])) > 1e-3*(1+math.Abs(float64(st.mag[j]))) {
			t.Fatalf("column %d norm %v != magnitude %v", j, nj, st.mag[j])
		}
	}
}

func TestAdam8bitTracksAdamW(t *testing.T) {
	// Over a few steps on identical gradients, 8-bit Adam should stay close
	// to full-precision AdamW.
	const m, n = 16, 128
	p8 := matParam(t, m, n, 25)
	pf := matParam(t, m, n, 25)
	a8 := NewAdam8bit(Hyper{LR: 0.01}, 1)
	af := NewAdamW(Hyper{LR: 0.01})
	rng := tensor.NewRNG(26)
	for i := 0; i < 10; i++ {
		fillGrad(p8, rng)
		pf.Grad.CopyFrom(p8.Grad)
		a8.Step([]*nn.Param{p8})
		af.Step([]*nn.Param{pf})
	}
	diff := tensor.Sub(p8.W, pf.W).Norm() / (pf.W.Norm() + 1e-12)
	if diff > 0.05 {
		t.Fatalf("8-bit Adam diverged from AdamW by %v", diff)
	}
	if a8.StateBytes()*3 > af.StateBytes() {
		t.Fatalf("8-bit state %d not ≪ fp32 state %d", a8.StateBytes(), af.StateBytes())
	}
}

func TestGaLore8bitRuns(t *testing.T) {
	const m, n, r = 16, 128, 4
	p := matParam(t, m, n, 27)
	g := NewGaLore8bit(Hyper{LR: 0.01}, LowRankConfig{Rank: r, Projection: linalg.RandomProjection})
	rng := tensor.NewRNG(28)
	before := p.W.Clone()
	for i := 0; i < 5; i++ {
		fillGrad(p, rng)
		g.Step([]*nn.Param{p})
	}
	if p.W.Equal(before) || p.W.HasNaN() {
		t.Fatal("8-bit GaLore failed to update cleanly")
	}
	if g.StateBytes() >= int64(4*2*m*n) {
		t.Fatalf("8-bit GaLore state %d not below AdamW's %d", g.StateBytes(), 4*2*m*n)
	}
}

func TestWarmupCosineShape(t *testing.T) {
	s := NewWarmupCosine(1.0, 1000)
	if s.At(0) >= s.At(50) {
		t.Fatal("warmup must increase")
	}
	peak := s.At(100) // warmup ends at step 100
	if math.Abs(peak-1.0) > 1e-9 {
		t.Fatalf("peak %v want 1.0", peak)
	}
	if s.At(500) >= peak {
		t.Fatal("cosine must decay after warmup")
	}
	final := s.At(999)
	if final < 0.1-1e-6 || final > 0.2 {
		t.Fatalf("final LR %v want ≈ 0.1 (10%% floor)", final)
	}
}

func TestLinearScheduleDecays(t *testing.T) {
	l := Linear{Peak: 1, TotalSteps: 10}
	if l.At(0) != 1.0 {
		t.Fatalf("At(0) = %v", l.At(0))
	}
	if got := l.At(5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("At(5) = %v", got)
	}
	if l.At(20) != 0 {
		t.Fatalf("At past end = %v want 0", l.At(20))
	}
}

// TestAllOptimizersReduceLoss is the end-to-end table-driven smoke test: every
// optimizer in the zoo must make progress on a tiny transformer.
func TestAllOptimizersReduceLoss(t *testing.T) {
	cfg := nn.Config{Vocab: 19, Dim: 8, Hidden: 16, Heads: 2, Layers: 1, MaxSeq: 8}
	builders := map[string]func() Optimizer{
		"sgd":       func() Optimizer { return NewSGD(Hyper{LR: 0.05}, 0) },
		"sgdm":      func() Optimizer { return NewSGD(Hyper{LR: 0.02}, 0.9) },
		"adamw":     func() Optimizer { return NewAdamW(Hyper{LR: 0.01}) },
		"adam-mini": func() Optimizer { return NewAdamMini(Hyper{LR: 0.01}) },
		"adam8":     func() Optimizer { return NewAdam8bit(Hyper{LR: 0.01}, 1) },
		"galore":    func() Optimizer { return NewGaLore(Hyper{LR: 0.01}, LowRankConfig{Rank: 2, Scale: 1}) },
		"galore8":   func() Optimizer { return NewGaLore8bit(Hyper{LR: 0.01}, LowRankConfig{Rank: 2, Scale: 1}) },
		"fira":      func() Optimizer { return NewFira(Hyper{LR: 0.01}, LowRankConfig{Rank: 2, Scale: 1}) },
		"flora":     func() Optimizer { return NewFlora(Hyper{LR: 0.01}, LowRankConfig{Rank: 2, Scale: 1}) },
		"lowrank":   func() Optimizer { return NewFactorized(Hyper{LR: 0.01}, FactorizedConfig{Mode: ModeLowRank, Rank: 2}) },
		"lora":      func() Optimizer { return NewFactorized(Hyper{LR: 0.01}, FactorizedConfig{Mode: ModeLoRA, Rank: 2}) },
		"relora": func() Optimizer {
			return NewFactorized(Hyper{LR: 0.01}, FactorizedConfig{Mode: ModeReLoRA, Rank: 2, MergeEvery: 10})
		},
		"dora": func() Optimizer { return NewFactorized(Hyper{LR: 0.01}, FactorizedConfig{Mode: ModeDoRA, Rank: 2}) },
		"galore-svd": func() Optimizer {
			return NewGaLore(Hyper{LR: 0.01}, LowRankConfig{Rank: 2, Scale: 1, Projection: linalg.SVDProjection})
		},
	}
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			model := nn.NewModel(cfg, tensor.NewRNG(101))
			opt := mk()
			rng := tensor.NewRNG(102)
			tokens := make([]int, 2*8)
			targets := make([]int, 2*8)
			for i := range tokens {
				tokens[i] = rng.Intn(cfg.Vocab)
				targets[i] = rng.Intn(cfg.Vocab)
			}
			var first, last float64
			for step := 0; step < 40; step++ {
				model.Params().ZeroGrad()
				loss := model.Loss(tokens, targets, 2, 8)
				if step == 0 {
					first = loss
				}
				last = loss
				opt.Step(model.Params().List())
			}
			if math.IsNaN(last) {
				t.Fatalf("%s produced NaN loss", opt.Name())
			}
			if last >= first {
				t.Fatalf("%s failed to reduce loss: %v → %v", opt.Name(), first, last)
			}
		})
	}
}
