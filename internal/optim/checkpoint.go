// Checkpoint hooks: the state-serialization counterpart of the
// introspection/sharding hooks in shard.go. Every optimizer in the zoo
// exposes its complete persistent state — moments, step counters, projector
// matrices and the phase of every RNG stream — in a canonical per-parameter
// form, so internal/ckpt can persist a training run and resume it
// bit-identically (per Cattaneo et al., the optimizer's memory is part of
// the effective objective: dropping any of it silently changes the
// trajectory).
//
// The canonical form is *unsharded*: one ParamState per parameter, covering
// all rows, in global parameter order. A ZeRO-partitioned wrapper
// (internal/zero) gathers shard-owned row segments into this layout on save
// and re-slices it for an arbitrary new world size on load — which is what
// makes checkpoints elastic: a `-replicas 3 -zero` snapshot resumes under
// `-replicas 4 -zero` or unsharded without losing bit-parity.
package optim

import (
	"encoding/binary"
	"fmt"
	"math"

	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/quant"
	"apollo/internal/tensor"
)

// ParamState is the canonical serializable optimizer state for one
// parameter (or a row range of one, while a partitioned wrapper is
// gathering/scattering). Matrices are deep copies, decoupled from the live
// optimizer. The split into row-aligned and whole matrices is what makes
// ZeRO gather/scatter mechanical: RowMats can be cut and concatenated along
// parameter rows without knowing which optimizer produced them, while Whole
// matrices (projected moments, SVD projections) only ever belong to
// never-split parameters.
type ParamState struct {
	// Scalars carries step counters, projector seeds, RNG phases and
	// float64 bit patterns in a fixed order documented per optimizer.
	// Row-split segments of one parameter must agree on all scalars.
	Scalars []uint64
	// RowMats are matrices whose rows align 1:1 with the parameter's rows
	// (dense moments, velocities, per-row second moments).
	RowMats []*tensor.Matrix
	// Whole are matrices with no row alignment (rank-space moments, SVD
	// projection matrices); present only on never-split parameters.
	Whole []*tensor.Matrix
	// Blobs carries opaque bytes (INT8 codes and group scales, which
	// straddle row boundaries); present only on never-split parameters.
	Blobs [][]byte
	// Sub nests the state a wrapped inner optimizer holds for the same
	// parameter (WeightQuantized); present only on never-split parameters.
	Sub *ParamState
}

// splittable reports whether the state may be cut along parameter rows.
func (st *ParamState) splittable() bool {
	return len(st.Whole) == 0 && len(st.Blobs) == 0 && st.Sub == nil
}

// SliceRows returns the state restricted to parameter rows [r0, r1) — the
// scatter half of elastic resharding. Only row-aligned states can be cut.
func (st *ParamState) SliceRows(r0, r1 int) (*ParamState, error) {
	if !st.splittable() {
		return nil, fmt.Errorf("optim: cannot row-slice a state with whole matrices, blobs or nested state")
	}
	if r0 < 0 || r1 <= r0 {
		return nil, fmt.Errorf("optim: bad state row range [%d, %d)", r0, r1)
	}
	out := &ParamState{Scalars: append([]uint64(nil), st.Scalars...)}
	for _, m := range st.RowMats {
		if r1 > m.Rows {
			return nil, fmt.Errorf("optim: state row range [%d, %d) exceeds %d rows", r0, r1, m.Rows)
		}
		s := tensor.NewMatrix(r1-r0, m.Cols)
		copy(s.Data, m.Data[r0*m.Cols:r1*m.Cols])
		out.RowMats = append(out.RowMats, s)
	}
	return out, nil
}

// MergeRowStates concatenates per-segment states back into the canonical
// full-parameter state — the gather half of elastic resharding. parts[i]
// covers rows [segs[i][0], segs[i][1]); segments must tile [0, rows)
// in ascending order and agree on every scalar.
func MergeRowStates(rows int, parts []*ParamState, segs [][2]int) (*ParamState, error) {
	if len(parts) == 0 || len(parts) != len(segs) {
		return nil, fmt.Errorf("optim: merge of %d parts with %d segments", len(parts), len(segs))
	}
	first := parts[0]
	if !first.splittable() {
		return nil, fmt.Errorf("optim: cannot row-merge a state with whole matrices, blobs or nested state")
	}
	out := &ParamState{Scalars: append([]uint64(nil), first.Scalars...)}
	for _, m := range first.RowMats {
		out.RowMats = append(out.RowMats, tensor.NewMatrix(rows, m.Cols))
	}
	at := 0
	for i, part := range parts {
		r0, r1 := segs[i][0], segs[i][1]
		if r0 != at || r1 <= r0 || r1 > rows {
			return nil, fmt.Errorf("optim: merge segment [%d, %d) does not tile rows at %d", r0, r1, at)
		}
		at = r1
		if len(part.Scalars) != len(first.Scalars) || len(part.RowMats) != len(first.RowMats) || !part.splittable() {
			return nil, fmt.Errorf("optim: merge segment %d has a different state layout", i)
		}
		for j, v := range part.Scalars {
			if v != first.Scalars[j] {
				return nil, fmt.Errorf("optim: merge segments disagree on scalar %d (%d vs %d)", j, v, first.Scalars[j])
			}
		}
		for j, m := range part.RowMats {
			if m.Rows != r1-r0 || m.Cols != out.RowMats[j].Cols {
				return nil, fmt.Errorf("optim: merge segment %d matrix %d is %dx%d, want %dx%d",
					i, j, m.Rows, m.Cols, r1-r0, out.RowMats[j].Cols)
			}
			copy(out.RowMats[j].Data[r0*m.Cols:r1*m.Cols], m.Data)
		}
	}
	if at != rows {
		return nil, fmt.Errorf("optim: merge segments cover %d of %d rows", at, rows)
	}
	return out, nil
}

// StateSaver exposes an optimizer's complete persistent state for
// checkpointing. CaptureGlobals returns optimizer-level cursors shared
// across parameters (RNG stream phases), in a fixed per-optimizer order;
// CaptureParam returns the canonical state held for p (nil when none is —
// lazy allocation hasn't touched it, or the method keeps no state). All
// returned data is deeply copied.
type StateSaver interface {
	CaptureGlobals() ([]uint64, error)
	CaptureParam(p *nn.Param) (*ParamState, error)
}

// StateLoader restores state captured by the matching StateSaver,
// allocating (or overwriting) the per-parameter state so the next Step
// continues bit-identically to the run that wrote the checkpoint.
type StateLoader interface {
	RestoreGlobals(gs []uint64) error
	RestoreParam(p *nn.Param, st *ParamState) error
}

// CheckpointNamer lets a wrapper report the identity checkpoints should be
// keyed by. internal/zero's Sharded returns its inner optimizer's name, so
// a sharded checkpoint resumes under any world size — including none.
type CheckpointNamer interface {
	CheckpointName() string
}

// F64Bits / F64From round-trip float64 values through the uint64 scalar
// channel bit-exactly.
func F64Bits(f float64) uint64 { return math.Float64bits(f) }
func F64From(u uint64) float64 { return math.Float64frombits(u) }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// snapScalars flattens a projector snapshot (minus any SVD matrix) into the
// scalar channel: [seed, rng phase, projected dim, ready].
func snapScalars(s linalg.ProjectorSnap) []uint64 {
	return []uint64{s.Seed, s.RNG, uint64(s.M), boolBit(s.Ready)}
}

// snapFromScalars is the inverse of snapScalars; the SVD matrix, when one
// exists, travels separately in ParamState.Whole.
func snapFromScalars(sc []uint64) linalg.ProjectorSnap {
	return linalg.ProjectorSnap{Seed: sc[0], RNG: sc[1], M: int(sc[2]), Ready: sc[3] != 0}
}

// int8Blob / blobInt8 and f32Blob / blobF32 move quantized tensors through
// the opaque byte channel.
func int8Blob(v []int8) []byte {
	out := make([]byte, len(v))
	for i, c := range v {
		out[i] = byte(c)
	}
	return out
}

func blobInt8(b []byte) []int8 {
	out := make([]int8, len(b))
	for i, c := range b {
		out[i] = int8(c)
	}
	return out
}

func f32Blob(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
	}
	return out
}

func blobF32(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("optim: float32 blob of %d bytes", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// wantLayout validates a decoded state's component counts before indexing.
func wantLayout(st *ParamState, scalars, rowMats, whole, blobs int, who string) error {
	if st == nil {
		return fmt.Errorf("optim: %s: nil state", who)
	}
	if len(st.Scalars) != scalars || len(st.RowMats) != rowMats ||
		len(st.Whole) != whole || len(st.Blobs) != blobs {
		return fmt.Errorf("optim: %s: state layout %d/%d/%d/%d, want %d/%d/%d/%d",
			who, len(st.Scalars), len(st.RowMats), len(st.Whole), len(st.Blobs),
			scalars, rowMats, whole, blobs)
	}
	return nil
}

// wantShape validates one matrix of a decoded state.
func wantShape(m *tensor.Matrix, rows, cols int, who string) error {
	if m.Rows != rows || m.Cols != cols {
		return fmt.Errorf("optim: %s: state matrix %dx%d, want %dx%d", who, m.Rows, m.Cols, rows, cols)
	}
	return nil
}

// ---------------------------------------------------------------------------
// AdamW — layout: Scalars [t]; RowMats [m, v].

// CaptureGlobals implements StateSaver (AdamW keeps no global cursors).
func (a *AdamW) CaptureGlobals() ([]uint64, error) { return nil, nil }

// CaptureParam implements StateSaver.
func (a *AdamW) CaptureParam(p *nn.Param) (*ParamState, error) {
	st, ok := a.state[p]
	if !ok {
		return nil, nil
	}
	return &ParamState{
		Scalars: []uint64{uint64(st.t)},
		RowMats: []*tensor.Matrix{st.m.Clone(), st.v.Clone()},
	}, nil
}

// RestoreGlobals implements StateLoader.
func (a *AdamW) RestoreGlobals(gs []uint64) error {
	if len(gs) != 0 {
		return fmt.Errorf("optim: AdamW: %d global cursors, want 0", len(gs))
	}
	return nil
}

// RestoreParam implements StateLoader.
func (a *AdamW) RestoreParam(p *nn.Param, st *ParamState) error {
	if err := wantLayout(st, 1, 2, 0, 0, "AdamW"); err != nil {
		return err
	}
	for _, m := range st.RowMats {
		if err := wantShape(m, p.W.Rows, p.W.Cols, "AdamW "+p.Name); err != nil {
			return err
		}
	}
	a.state[p] = &adamState{m: st.RowMats[0].Clone(), v: st.RowMats[1].Clone(), t: int(st.Scalars[0])}
	a.buf[p] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
	return nil
}

// ---------------------------------------------------------------------------
// SGD — layout: RowMats [velocity] (no state at all without momentum).

// CaptureGlobals implements StateSaver.
func (s *SGD) CaptureGlobals() ([]uint64, error) { return nil, nil }

// CaptureParam implements StateSaver.
func (s *SGD) CaptureParam(p *nn.Param) (*ParamState, error) {
	v, ok := s.vel[p]
	if !ok {
		return nil, nil
	}
	return &ParamState{RowMats: []*tensor.Matrix{v.Clone()}}, nil
}

// RestoreGlobals implements StateLoader.
func (s *SGD) RestoreGlobals(gs []uint64) error {
	if len(gs) != 0 {
		return fmt.Errorf("optim: SGD: %d global cursors, want 0", len(gs))
	}
	return nil
}

// RestoreParam implements StateLoader.
func (s *SGD) RestoreParam(p *nn.Param, st *ParamState) error {
	if s.Momentum == 0 { //apollo:exactfloat zero momentum is the exact disabled sentinel, never computed
		return fmt.Errorf("optim: SGD: checkpoint carries velocity but momentum is disabled")
	}
	if err := wantLayout(st, 0, 1, 0, 0, "SGD"); err != nil {
		return err
	}
	if err := wantShape(st.RowMats[0], p.W.Rows, p.W.Cols, "SGD "+p.Name); err != nil {
		return err
	}
	s.vel[p] = st.RowMats[0].Clone()
	return nil
}

// ---------------------------------------------------------------------------
// Adam-mini — layout: Scalars [t]; RowMats [m, v as a rows×1 column]
// (vector parameters keep their single shared block as a 1×1 column).

// CaptureGlobals implements StateSaver.
func (a *AdamMini) CaptureGlobals() ([]uint64, error) { return nil, nil }

// CaptureParam implements StateSaver.
func (a *AdamMini) CaptureParam(p *nn.Param) (*ParamState, error) {
	st, ok := a.state[p]
	if !ok {
		return nil, nil
	}
	vcol := tensor.NewMatrix(len(st.v), 1)
	copy(vcol.Data, st.v)
	return &ParamState{
		Scalars: []uint64{uint64(st.t)},
		RowMats: []*tensor.Matrix{st.m.Clone(), vcol},
	}, nil
}

// RestoreGlobals implements StateLoader.
func (a *AdamMini) RestoreGlobals(gs []uint64) error {
	if len(gs) != 0 {
		return fmt.Errorf("optim: Adam-mini: %d global cursors, want 0", len(gs))
	}
	return nil
}

// RestoreParam implements StateLoader.
func (a *AdamMini) RestoreParam(p *nn.Param, st *ParamState) error {
	if err := wantLayout(st, 1, 2, 0, 0, "Adam-mini"); err != nil {
		return err
	}
	blocks := p.W.Rows
	if p.Kind == nn.KindVector {
		blocks = 1
	}
	if err := wantShape(st.RowMats[0], p.W.Rows, p.W.Cols, "Adam-mini "+p.Name); err != nil {
		return err
	}
	if err := wantShape(st.RowMats[1], blocks, 1, "Adam-mini "+p.Name); err != nil {
		return err
	}
	v := make([]float32, blocks)
	copy(v, st.RowMats[1].Data)
	a.state[p] = &miniState{m: st.RowMats[0].Clone(), v: v, t: int(st.Scalars[0])}
	return nil
}

// ---------------------------------------------------------------------------
// GaLore — globals: [projector-seed RNG phase]. Projected parameters:
// Scalars [t, since, proj seed, proj rng, proj m, proj ready];
// Whole [m (r×n), v (r×n)] (+ the r×m SVD projection when ready).
// Dense-fallback parameters delegate to the inner AdamW.

// CaptureGlobals implements StateSaver.
func (g *GaLore) CaptureGlobals() ([]uint64, error) { return []uint64{g.rng.State()}, nil }

// CaptureParam implements StateSaver.
func (g *GaLore) CaptureParam(p *nn.Param) (*ParamState, error) {
	if !projects(p, g.cfg.Rank) {
		return g.dense.CaptureParam(p)
	}
	st, ok := g.states[p]
	if !ok {
		return nil, nil
	}
	return CaptureProjectedState(st.proj, st.adam.m, st.adam.v, st.adam.t, st.since, nil), nil
}

// RestoreGlobals implements StateLoader.
func (g *GaLore) RestoreGlobals(gs []uint64) error {
	if len(gs) != 1 {
		return fmt.Errorf("optim: GaLore: %d global cursors, want 1", len(gs))
	}
	g.rng.SetState(gs[0])
	return nil
}

// RestoreParam implements StateLoader.
func (g *GaLore) RestoreParam(p *nn.Param, st *ParamState) error {
	if !projects(p, g.cfg.Rank) {
		return g.dense.RestoreParam(p, st)
	}
	o := orient(p.W.Rows, p.W.Cols)
	proj, m, v, t, since, _, err := RestoreProjectedState(st, g.cfg.Projection, g.cfg.Rank, o.n, false, "GaLore "+p.Name)
	if err != nil {
		return err
	}
	g.states[p] = &galoreState{proj: proj, adam: &adamState{m: m, v: v, t: t}, o: o, since: since}
	return nil
}

// CaptureProjectedState flattens the state every projected optimizer
// shares — rank-space first/second moments plus the projector — into the
// canonical form: Scalars [t, since, (prevNorm bits,) proj seed, proj rng,
// proj m, proj ready]; Whole [m, v (, SVD projection)]. prevNorm, when
// non-nil, is the norm-growth limiter's memory (Fira; core.APOLLO reuses
// this helper from outside the package).
func CaptureProjectedState(proj *linalg.Projector, m, v *tensor.Matrix, t, since int, prevNorm *float64) *ParamState {
	snap := proj.Snapshot()
	scalars := []uint64{uint64(t), uint64(since)}
	if prevNorm != nil {
		scalars = append(scalars, F64Bits(*prevNorm))
	}
	scalars = append(scalars, snapScalars(snap)...)
	out := &ParamState{
		Scalars: scalars,
		Whole:   []*tensor.Matrix{m.Clone(), v.Clone()},
	}
	if snap.P != nil {
		out.Whole = append(out.Whole, snap.P)
	}
	return out
}

// RestoreProjectedState is the inverse of CaptureProjectedState: it rebuilds
// the projector (regenerating random projections from their stored seed, so
// the checkpoint never persists them) and returns deep copies of the
// rank-space moments, validating shapes along the way.
func RestoreProjectedState(st *ParamState, kind linalg.ProjectionKind, rank, n int, hasPrev bool, who string) (
	proj *linalg.Projector, m, v *tensor.Matrix, t, since int, prevNorm float64, err error) {
	scalars := 6
	if hasPrev {
		scalars = 7
	}
	sc := st.Scalars
	if len(sc) != scalars {
		return nil, nil, nil, 0, 0, 0, fmt.Errorf("optim: %s: %d state scalars, want %d", who, len(sc), scalars)
	}
	t, since = int(sc[0]), int(sc[1])
	snapAt := 2
	if hasPrev {
		prevNorm = F64From(sc[2])
		snapAt = 3
	}
	snap := snapFromScalars(sc[snapAt:])
	wantWhole := 2
	if kind == linalg.SVDProjection && snap.Ready {
		wantWhole = 3
	}
	if len(st.RowMats) != 0 || len(st.Whole) != wantWhole || len(st.Blobs) != 0 || st.Sub != nil {
		return nil, nil, nil, 0, 0, 0, fmt.Errorf("optim: %s: unexpected projected-state layout", who)
	}
	for _, w := range st.Whole[:2] {
		if err := wantShape(w, rank, n, who); err != nil {
			return nil, nil, nil, 0, 0, 0, err
		}
	}
	if wantWhole == 3 {
		snap.P = st.Whole[2]
	}
	proj = linalg.NewProjector(kind, rank, 0)
	if err := proj.RestoreSnapshot(snap); err != nil {
		return nil, nil, nil, 0, 0, 0, fmt.Errorf("optim: %s: %w", who, err)
	}
	return proj, st.Whole[0].Clone(), st.Whole[1].Clone(), t, since, prevNorm, nil
}

// ---------------------------------------------------------------------------
// Fira — GaLore's layout plus the limiter's previous residual norm:
// Scalars [t, since, prevNorm bits, proj seed, proj rng, proj m, proj ready].

// CaptureGlobals implements StateSaver.
func (f *Fira) CaptureGlobals() ([]uint64, error) { return []uint64{f.rng.State()}, nil }

// CaptureParam implements StateSaver.
func (f *Fira) CaptureParam(p *nn.Param) (*ParamState, error) {
	if !projects(p, f.cfg.Rank) {
		return f.dense.CaptureParam(p)
	}
	st, ok := f.states[p]
	if !ok {
		return nil, nil
	}
	return CaptureProjectedState(st.proj, st.adam.m, st.adam.v, st.adam.t, st.since, &st.prevNorm), nil
}

// RestoreGlobals implements StateLoader.
func (f *Fira) RestoreGlobals(gs []uint64) error {
	if len(gs) != 1 {
		return fmt.Errorf("optim: Fira: %d global cursors, want 1", len(gs))
	}
	f.rng.SetState(gs[0])
	return nil
}

// RestoreParam implements StateLoader.
func (f *Fira) RestoreParam(p *nn.Param, st *ParamState) error {
	if !projects(p, f.cfg.Rank) {
		return f.dense.RestoreParam(p, st)
	}
	o := orient(p.W.Rows, p.W.Cols)
	proj, m, v, t, since, prevNorm, err := RestoreProjectedState(st, f.cfg.Projection, f.cfg.Rank, o.n, true, "Fira "+p.Name)
	if err != nil {
		return err
	}
	f.states[p] = &firaState{proj: proj, adam: &adamState{m: m, v: v, t: t}, o: o, since: since, prevNorm: prevNorm}
	return nil
}

// ---------------------------------------------------------------------------
// Flora — GaLore's layout with an always-random projection.

// CaptureGlobals implements StateSaver.
func (f *Flora) CaptureGlobals() ([]uint64, error) { return []uint64{f.rng.State()}, nil }

// CaptureParam implements StateSaver.
func (f *Flora) CaptureParam(p *nn.Param) (*ParamState, error) {
	if !projects(p, f.cfg.Rank) {
		return f.dense.CaptureParam(p)
	}
	st, ok := f.states[p]
	if !ok {
		return nil, nil
	}
	return CaptureProjectedState(st.proj, st.adam.m, st.adam.v, st.adam.t, st.since, nil), nil
}

// RestoreGlobals implements StateLoader.
func (f *Flora) RestoreGlobals(gs []uint64) error {
	if len(gs) != 1 {
		return fmt.Errorf("optim: Flora: %d global cursors, want 1", len(gs))
	}
	f.rng.SetState(gs[0])
	return nil
}

// RestoreParam implements StateLoader.
func (f *Flora) RestoreParam(p *nn.Param, st *ParamState) error {
	if !projects(p, f.cfg.Rank) {
		return f.dense.RestoreParam(p, st)
	}
	o := orient(p.W.Rows, p.W.Cols)
	proj, m, v, t, since, _, err := RestoreProjectedState(st, linalg.RandomProjection, f.cfg.Rank, o.n, false, "Flora "+p.Name)
	if err != nil {
		return err
	}
	f.states[p] = &floraState{proj: proj, adam: &adamState{m: m, v: v, t: t}, o: o, since: since}
	return nil
}

// ---------------------------------------------------------------------------
// 8-bit Adam — globals: [stochastic-rounding RNG phase]. Per parameter:
// Scalars [t]; Blobs [m codes, m scales, v codes, v scales]. INT8 groups
// straddle row boundaries, so the state is never row-split (the 8-bit
// variants are excluded from ZeRO sharding anyway — shared-RNG rounding).

// CaptureGlobals implements StateSaver.
func (a *Adam8bit) CaptureGlobals() ([]uint64, error) { return []uint64{a.rng.State()}, nil }

// CaptureParam implements StateSaver.
func (a *Adam8bit) CaptureParam(p *nn.Param) (*ParamState, error) {
	st, ok := a.state[p]
	if !ok {
		return nil, nil
	}
	return &ParamState{
		Scalars: []uint64{uint64(st.t)},
		Blobs:   tensor8Blobs(st.m, st.v),
	}, nil
}

// RestoreGlobals implements StateLoader.
func (a *Adam8bit) RestoreGlobals(gs []uint64) error {
	if len(gs) != 1 {
		return fmt.Errorf("optim: 8-bit Adam: %d global cursors, want 1", len(gs))
	}
	a.rng.SetState(gs[0])
	return nil
}

// RestoreParam implements StateLoader.
func (a *Adam8bit) RestoreParam(p *nn.Param, st *ParamState) error {
	if err := wantLayout(st, 1, 0, 0, 4, "8-bit Adam"); err != nil {
		return err
	}
	m, v, err := tensor8FromBlobs(st.Blobs, p.W.Rows, p.W.Cols, a.group, "8-bit Adam "+p.Name)
	if err != nil {
		return err
	}
	a.state[p] = &adam8State{m: m, v: v, t: int(st.Scalars[0])}
	return nil
}

// tensor8Blobs serializes a pair of INT8 tensors into the opaque channel.
func tensor8Blobs(m, v *quant.Tensor8) [][]byte {
	return [][]byte{int8Blob(m.Codes), f32Blob(m.Scales), int8Blob(v.Codes), f32Blob(v.Scales)}
}

// tensor8FromBlobs is the inverse of tensor8Blobs.
func tensor8FromBlobs(blobs [][]byte, rows, cols, group int, who string) (m, v *quant.Tensor8, err error) {
	decode := func(codes, scales []byte) (*quant.Tensor8, error) {
		t := quant.NewTensor8(rows, cols, group)
		if len(codes) != len(t.Codes) {
			return nil, fmt.Errorf("optim: %s: %d INT8 codes, want %d", who, len(codes), len(t.Codes))
		}
		sc, err := blobF32(scales)
		if err != nil {
			return nil, err
		}
		if len(sc) != len(t.Scales) {
			return nil, fmt.Errorf("optim: %s: %d group scales, want %d", who, len(sc), len(t.Scales))
		}
		copy(t.Codes, blobInt8(codes))
		copy(t.Scales, sc)
		return t, nil
	}
	if m, err = decode(blobs[0], blobs[1]); err != nil {
		return nil, nil, err
	}
	if v, err = decode(blobs[2], blobs[3]); err != nil {
		return nil, nil, err
	}
	return m, v, nil
}

// ---------------------------------------------------------------------------
// 8-bit GaLore — globals: [own RNG phase, dense 8-bit Adam RNG phase].
// Projected parameters: Scalars [t, since, proj seed, proj rng, proj m,
// proj ready]; Blobs [m codes, m scales, v codes, v scales]; Whole [SVD P]
// when ready. Dense fallback delegates to the inner 8-bit Adam.

// CaptureGlobals implements StateSaver.
func (g *GaLore8bit) CaptureGlobals() ([]uint64, error) {
	inner, err := g.dense.CaptureGlobals()
	if err != nil {
		return nil, err
	}
	return append([]uint64{g.rng.State()}, inner...), nil
}

// CaptureParam implements StateSaver.
func (g *GaLore8bit) CaptureParam(p *nn.Param) (*ParamState, error) {
	if !projects(p, g.cfg.Rank) {
		return g.dense.CaptureParam(p)
	}
	st, ok := g.states[p]
	if !ok {
		return nil, nil
	}
	snap := st.proj.Snapshot()
	out := &ParamState{
		Scalars: append([]uint64{uint64(st.t), uint64(st.since)}, snapScalars(snap)...),
		Blobs:   tensor8Blobs(st.m, st.v),
	}
	if snap.P != nil {
		out.Whole = append(out.Whole, snap.P)
	}
	return out, nil
}

// RestoreGlobals implements StateLoader.
func (g *GaLore8bit) RestoreGlobals(gs []uint64) error {
	if len(gs) != 2 {
		return fmt.Errorf("optim: 8-bit GaLore: %d global cursors, want 2", len(gs))
	}
	g.rng.SetState(gs[0])
	return g.dense.RestoreGlobals(gs[1:])
}

// RestoreParam implements StateLoader.
func (g *GaLore8bit) RestoreParam(p *nn.Param, st *ParamState) error {
	if !projects(p, g.cfg.Rank) {
		return g.dense.RestoreParam(p, st)
	}
	who := "8-bit GaLore " + p.Name
	if len(st.Scalars) != 6 {
		return fmt.Errorf("optim: %s: %d state scalars, want 6", who, len(st.Scalars))
	}
	snap := snapFromScalars(st.Scalars[2:])
	wantWhole := 0
	if g.cfg.Projection == linalg.SVDProjection && snap.Ready {
		wantWhole = 1
	}
	if err := wantLayout(st, 6, 0, wantWhole, 4, who); err != nil {
		return err
	}
	if wantWhole == 1 {
		snap.P = st.Whole[0]
	}
	proj := linalg.NewProjector(g.cfg.Projection, g.cfg.Rank, 0)
	if err := proj.RestoreSnapshot(snap); err != nil {
		return fmt.Errorf("optim: %s: %w", who, err)
	}
	o := orient(p.W.Rows, p.W.Cols)
	m, v, err := tensor8FromBlobs(st.Blobs, g.cfg.Rank, o.n, g.group, who)
	if err != nil {
		return err
	}
	g.states[p] = &galore8State{proj: proj, m: m, v: v, t: int(st.Scalars[0]), o: o, since: int(st.Scalars[1])}
	return nil
}

// ---------------------------------------------------------------------------
// Factorized (Low-Rank / LoRA / ReLoRA / DoRA) — globals: [init/restart RNG
// phase]. Factorized parameters: Scalars [steps, adamA.t, adamB.t, hasW0,
// hasMag, adamM.t]; Whole [a, b, adamA.m, adamA.v, adamB.m, adamB.v]
// (+ [w0] when frozen-base, + [mag 1×in, adamM.m, adamM.v] for DoRA).
// Dense fallback delegates.

// CaptureGlobals implements StateSaver.
func (f *Factorized) CaptureGlobals() ([]uint64, error) { return []uint64{f.rng.State()}, nil }

// CaptureParam implements StateSaver.
func (f *Factorized) CaptureParam(p *nn.Param) (*ParamState, error) {
	if p.Kind != nn.KindMatrix || min(p.W.Rows, p.W.Cols) <= f.cfg.Rank {
		return f.dense.CaptureParam(p)
	}
	st, ok := f.states[p]
	if !ok {
		return nil, nil
	}
	adamMT := 0
	if st.adamM != nil {
		adamMT = st.adamM.t
	}
	out := &ParamState{
		Scalars: []uint64{
			uint64(st.steps), uint64(st.adamA.t), uint64(st.adamB.t),
			boolBit(st.w0 != nil), boolBit(st.mag != nil), uint64(adamMT),
		},
		Whole: []*tensor.Matrix{
			st.a.Clone(), st.b.Clone(),
			st.adamA.m.Clone(), st.adamA.v.Clone(),
			st.adamB.m.Clone(), st.adamB.v.Clone(),
		},
	}
	if st.w0 != nil {
		out.Whole = append(out.Whole, st.w0.Clone())
	}
	if st.mag != nil {
		mag := tensor.NewMatrix(1, len(st.mag))
		copy(mag.Data, st.mag)
		out.Whole = append(out.Whole, mag, st.adamM.m.Clone(), st.adamM.v.Clone())
	}
	return out, nil
}

// RestoreGlobals implements StateLoader.
func (f *Factorized) RestoreGlobals(gs []uint64) error {
	if len(gs) != 1 {
		return fmt.Errorf("optim: %s: %d global cursors, want 1", f.Name(), len(gs))
	}
	f.rng.SetState(gs[0])
	return nil
}

// RestoreParam implements StateLoader.
func (f *Factorized) RestoreParam(p *nn.Param, st *ParamState) error {
	if p.Kind != nn.KindMatrix || min(p.W.Rows, p.W.Cols) <= f.cfg.Rank {
		return f.dense.RestoreParam(p, st)
	}
	who := f.Name() + " " + p.Name
	if len(st.Scalars) != 6 {
		return fmt.Errorf("optim: %s: %d state scalars, want 6", who, len(st.Scalars))
	}
	hasW0, hasMag := st.Scalars[3] != 0, st.Scalars[4] != 0
	wantWhole := 6
	if hasW0 {
		wantWhole++
	}
	if hasMag {
		wantWhole += 3
	}
	if err := wantLayout(st, 6, 0, wantWhole, 0, who); err != nil {
		return err
	}
	out, in, r := p.W.Rows, p.W.Cols, f.cfg.Rank
	shapes := [][2]int{{r, in}, {out, r}, {r, in}, {r, in}, {out, r}, {out, r}}
	for i, s := range shapes {
		if err := wantShape(st.Whole[i], s[0], s[1], who); err != nil {
			return err
		}
	}
	fs := &factorState{
		a:     st.Whole[0].Clone(),
		b:     st.Whole[1].Clone(),
		adamA: &adamState{m: st.Whole[2].Clone(), v: st.Whole[3].Clone(), t: int(st.Scalars[1])},
		adamB: &adamState{m: st.Whole[4].Clone(), v: st.Whole[5].Clone(), t: int(st.Scalars[2])},
		steps: int(st.Scalars[0]),
	}
	at := 6
	if hasW0 {
		if err := wantShape(st.Whole[at], out, in, who); err != nil {
			return err
		}
		fs.w0 = st.Whole[at].Clone()
		at++
	}
	if hasMag {
		for i := 0; i < 3; i++ {
			if err := wantShape(st.Whole[at+i], 1, in, who); err != nil {
				return err
			}
		}
		fs.mag = append([]float32(nil), st.Whole[at].Data...)
		fs.adamM = &adamState{m: st.Whole[at+1].Clone(), v: st.Whole[at+2].Clone(), t: int(st.Scalars[5])}
	}
	f.states[p] = fs
	return nil
}

// ---------------------------------------------------------------------------
// WeightQuantized — globals: [own RNG phase] ++ inner globals. Per
// parameter: Scalars [has quantized weight, per-weight RNG phase];
// Blobs [codes, scales] when present; Sub nests the inner optimizer's state.

// CaptureGlobals implements StateSaver.
func (w *WeightQuantized) CaptureGlobals() ([]uint64, error) {
	saver, ok := w.inner.(StateSaver)
	if !ok {
		return nil, fmt.Errorf("optim: %s: inner optimizer %s is not checkpointable", w.Name(), w.inner.Name())
	}
	inner, err := saver.CaptureGlobals()
	if err != nil {
		return nil, err
	}
	return append([]uint64{w.rng.State()}, inner...), nil
}

// CaptureParam implements StateSaver.
func (w *WeightQuantized) CaptureParam(p *nn.Param) (*ParamState, error) {
	saver, ok := w.inner.(StateSaver)
	if !ok {
		return nil, fmt.Errorf("optim: %s: inner optimizer %s is not checkpointable", w.Name(), w.inner.Name())
	}
	sub, err := saver.CaptureParam(p)
	if err != nil {
		return nil, err
	}
	q, hasQ := w.qw[p]
	if !hasQ && sub == nil {
		return nil, nil
	}
	out := &ParamState{Scalars: []uint64{boolBit(hasQ), 0}, Sub: sub}
	if hasQ {
		out.Scalars[1] = q.RNGState()
		out.Blobs = [][]byte{int8Blob(q.Q.Codes), f32Blob(q.Q.Scales)}
	}
	return out, nil
}

// RestoreGlobals implements StateLoader.
func (w *WeightQuantized) RestoreGlobals(gs []uint64) error {
	loader, ok := w.inner.(StateLoader)
	if !ok {
		return fmt.Errorf("optim: %s: inner optimizer %s is not checkpointable", w.Name(), w.inner.Name())
	}
	if len(gs) < 1 {
		return fmt.Errorf("optim: %s: missing global cursor", w.Name())
	}
	w.rng.SetState(gs[0])
	return loader.RestoreGlobals(gs[1:])
}

// RestoreParam implements StateLoader.
func (w *WeightQuantized) RestoreParam(p *nn.Param, st *ParamState) error {
	loader, ok := w.inner.(StateLoader)
	if !ok {
		return fmt.Errorf("optim: %s: inner optimizer %s is not checkpointable", w.Name(), w.inner.Name())
	}
	who := w.Name() + " " + p.Name
	if st == nil || len(st.Scalars) != 2 {
		return fmt.Errorf("optim: %s: malformed quantized-weight state", who)
	}
	if st.Scalars[0] != 0 {
		if len(st.Blobs) != 2 {
			return fmt.Errorf("optim: %s: %d blobs, want 2", who, len(st.Blobs))
		}
		q := quant.NewQuantizedWeight(p.W, w.group, 0)
		if len(st.Blobs[0]) != len(q.Q.Codes) {
			return fmt.Errorf("optim: %s: %d INT8 codes, want %d", who, len(st.Blobs[0]), len(q.Q.Codes))
		}
		sc, err := blobF32(st.Blobs[1])
		if err != nil {
			return err
		}
		if len(sc) != len(q.Q.Scales) {
			return fmt.Errorf("optim: %s: %d group scales, want %d", who, len(sc), len(q.Q.Scales))
		}
		copy(q.Q.Codes, blobInt8(st.Blobs[0]))
		copy(q.Q.Scales, sc)
		q.SetRNGState(st.Scalars[1])
		w.qw[p] = q
	}
	if st.Sub != nil {
		return loader.RestoreParam(p, st.Sub)
	}
	return nil
}
