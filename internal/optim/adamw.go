package optim

import (
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// AdamW is the standard decoupled-weight-decay Adam optimizer (Loshchilov &
// Hutter, 2019) — the paper's main baseline. It keeps full-rank first and
// second moments: 2·mn state per m×n parameter, the memory cost APOLLO
// eliminates.
type AdamW struct {
	h     Hyper
	state map[*nn.Param]*adamState
	buf   map[*nn.Param]*tensor.Matrix
}

// NewAdamW constructs the optimizer.
func NewAdamW(h Hyper) *AdamW {
	return &AdamW{h: h.withDefaults(), state: map[*nn.Param]*adamState{}, buf: map[*nn.Param]*tensor.Matrix{}}
}

// Name implements Optimizer.
func (a *AdamW) Name() string { return "AdamW" }

// SetLR implements Optimizer.
func (a *AdamW) SetLR(lr float64) { a.h.LR = lr }

// LR implements Optimizer.
func (a *AdamW) LR() float64 { return a.h.LR }

// Step implements Optimizer.
func (a *AdamW) Step(ps []*nn.Param) {
	for _, p := range ps {
		st, ok := a.state[p]
		if !ok {
			st = newAdamState(p.W.Rows, p.W.Cols)
			a.state[p] = st
			a.buf[p] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
		}
		dir := a.buf[p]
		st.update(dir, p.Grad, a.h)
		decayAndApply(p, dir, a.h.LR, a.h.WeightDecay)
	}
}

// StateBytes implements Optimizer. Scratch buffers are excluded: they are
// transient per-step storage, matching how the paper counts optimizer states.
func (a *AdamW) StateBytes() int64 {
	var total int64
	for _, st := range a.state { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += st.bytes()
	}
	return total
}
