package optim

import (
	"fmt"

	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// LowRankConfig carries the knobs shared by every projected optimizer
// (GaLore, Fira, Flora here; APOLLO in internal/core).
type LowRankConfig struct {
	Rank       int
	Scale      float64 // GaLore's α applied to the lifted update (paper: 0.25)
	UpdateGap  int     // projection refresh period T (paper: 200)
	Projection linalg.ProjectionKind
	Seed       uint64
}

func (c LowRankConfig) withDefaults() LowRankConfig {
	if c.Scale == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		c.Scale = 0.25
	}
	if c.UpdateGap == 0 {
		c.UpdateGap = 200
	}
	if c.Seed == 0 {
		c.Seed = 0x6A10_12E
	}
	return c
}

// Validate checks the configuration.
func (c LowRankConfig) Validate() error {
	if c.Rank < 1 {
		return fmt.Errorf("optim: rank %d < 1", c.Rank)
	}
	if c.UpdateGap < 0 {
		return fmt.Errorf("optim: negative update gap %d", c.UpdateGap)
	}
	return nil
}

// projects reports whether a parameter gets the low-rank treatment: 2-D
// matrices whose smaller dimension exceeds the rank, exactly like the
// reference GaLore implementation (norms, embeddings and small matrices fall
// back to dense AdamW).
func projects(p *nn.Param, rank int) bool {
	if p.Kind != nn.KindMatrix {
		return false
	}
	o := orient(p.W.Rows, p.W.Cols)
	return o.m > rank
}

// galoreState is the per-parameter projected state.
type galoreState struct {
	proj  *linalg.Projector
	adam  *adamState // moments on the r×n projected gradient
	o     orientation
	since int // steps since last projection refresh
}

// GaLore (Zhao et al., 2024) projects gradients into a rank-r subspace,
// runs AdamW there, and lifts the normalized update back: W ← W −
// lr·α·Pᵀ·AdamW(P·G). The subspace is recomputed every UpdateGap steps via
// SVD (or random projection for the Fig. 5 ablation, which the paper shows
// degrades GaLore badly).
type GaLore struct {
	h   Hyper
	cfg LowRankConfig

	states map[*nn.Param]*galoreState
	dense  *AdamW // fallback for non-projected params
	rng    *tensor.RNG
}

// NewGaLore builds the optimizer.
func NewGaLore(h Hyper, cfg LowRankConfig) *GaLore {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &GaLore{
		h:      h.withDefaults(),
		cfg:    cfg,
		states: map[*nn.Param]*galoreState{},
		dense:  NewAdamW(h),
		rng:    tensor.NewRNG(cfg.Seed),
	}
}

// Name implements Optimizer.
func (g *GaLore) Name() string {
	if g.cfg.Projection == linalg.RandomProjection {
		return "GaLore-RP"
	}
	return "GaLore"
}

// SetLR implements Optimizer.
func (g *GaLore) SetLR(lr float64) {
	g.h.LR = lr
	g.dense.SetLR(lr)
}

// LR implements Optimizer.
func (g *GaLore) LR() float64 { return g.h.LR }

// Step implements Optimizer.
func (g *GaLore) Step(ps []*nn.Param) {
	var fallback []*nn.Param
	for _, p := range ps {
		if !projects(p, g.cfg.Rank) {
			fallback = append(fallback, p)
			continue
		}
		st, ok := g.states[p]
		if !ok {
			o := orient(p.W.Rows, p.W.Cols)
			st = &galoreState{
				proj: linalg.NewProjector(g.cfg.Projection, g.cfg.Rank, g.rng.Uint64()),
				adam: newAdamState(g.cfg.Rank, o.n),
				o:    o,
			}
			g.states[p] = st
		}
		grad := orientedView(p.Grad, st.o)
		if !st.proj.Ready() || (g.cfg.UpdateGap > 0 && st.since >= g.cfg.UpdateGap) {
			st.proj.Refresh(grad)
			st.since = 0
		}
		st.since++

		r := st.proj.Project(grad) // r×n
		st.adam.update(r, r, g.h)  // in place: r becomes the normalized direction
		update := st.proj.ProjectBack(r)
		dir := unorient(update, st.o)
		tensor.ScaleInPlace(dir, float32(g.cfg.Scale))
		decayAndApply(p, dir, g.h.LR, g.h.WeightDecay)
	}
	if len(fallback) > 0 {
		g.dense.Step(fallback)
	}
}

// StateBytes implements Optimizer: projected moments + persisted projection
// matrices (SVD only) + dense fallback states.
func (g *GaLore) StateBytes() int64 {
	total := g.dense.StateBytes()
	for _, st := range g.states { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += st.adam.bytes()
		total += 4 * int64(st.proj.StateFloats())
	}
	return total
}
