package optim

import (
	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/quant"
	"apollo/internal/tensor"
)

// Adam8bit keeps AdamW's first and second moments quantized to INT8 between
// steps (group-wise absmax, like bitsandbytes' 8-bit Adam). It is the
// "8-bit Adam" baseline of Table 3: 4× less optimizer memory than AdamW at
// a small quality cost.
type Adam8bit struct {
	h     Hyper
	group int
	state map[*nn.Param]*adam8State
	rng   *tensor.RNG
}

type adam8State struct {
	m, v *quant.Tensor8
	t    int
}

// NewAdam8bit builds the optimizer with the paper's group size of 128.
func NewAdam8bit(h Hyper, seed uint64) *Adam8bit {
	return &Adam8bit{
		h:     h.withDefaults(),
		group: quant.DefaultGroupSize,
		state: map[*nn.Param]*adam8State{},
		rng:   tensor.NewRNG(seed),
	}
}

// Name implements Optimizer.
func (a *Adam8bit) Name() string { return "8-bit Adam" }

// SetLR implements Optimizer.
func (a *Adam8bit) SetLR(lr float64) { a.h.LR = lr }

// LR implements Optimizer.
func (a *Adam8bit) LR() float64 { return a.h.LR }

// Step implements Optimizer.
func (a *Adam8bit) Step(ps []*nn.Param) {
	for _, p := range ps {
		st, ok := a.state[p]
		if !ok {
			st = &adam8State{
				m: quant.NewTensor8(p.W.Rows, p.W.Cols, a.group),
				v: quant.NewTensor8(p.W.Rows, p.W.Cols, a.group),
			}
			a.state[p] = st
		}
		st.t++
		// Dequantize, run the float update, requantize with stochastic
		// rounding so tiny moment changes survive in expectation. The second
		// moment is stored in the sqrt domain: V's dynamic range is the
		// square of M's, and linear INT8 codes would zero out most of it,
		// which blows up m̂/√v̂ wherever m survives but v does not.
		m := quant.Dequantize(st.m, nil)
		v := quant.Dequantize(st.v, nil) // holds √v
		for i, sv := range v.Data {
			v.Data[i] = sv * sv
		}
		b1 := float32(a.h.Beta1)
		b2 := float32(a.h.Beta2)
		c1 := float32(1 / (1 - pow(a.h.Beta1, st.t)))
		c2 := float32(1 / (1 - pow(a.h.Beta2, st.t)))
		eps := float32(a.h.Eps)
		dir := tensor.NewMatrix(p.W.Rows, p.W.Cols)
		for i, g := range p.Grad.Data {
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			vv := b2*v.Data[i] + (1-b2)*g*g
			if vv < 0 {
				vv = 0
			}
			v.Data[i] = vv
			dir.Data[i] = (m.Data[i] * c1) / (sqrt32(vv*c2) + eps)
		}
		quant.Quantize(st.m, m, a.rng)
		for i, vv := range v.Data {
			v.Data[i] = sqrt32(vv)
		}
		quant.Quantize(st.v, v, a.rng)
		decayAndApply(p, dir, a.h.LR, a.h.WeightDecay)
	}
}

// StateBytes implements Optimizer.
func (a *Adam8bit) StateBytes() int64 {
	var total int64
	for _, st := range a.state { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += st.m.Bytes() + st.v.Bytes()
	}
	return total
}

// GaLore8bit quantizes GaLore's projected moments to INT8 — the "8-bit
// GaLore" row of Table 3 (Q-GaLore's optimizer-state half; its INT8 weights
// are handled by internal/quant.QuantizedWeight at the training-loop level).
type GaLore8bit struct {
	h     Hyper
	cfg   LowRankConfig
	group int

	states map[*nn.Param]*galore8State
	dense  *Adam8bit
	rng    *tensor.RNG
}

type galore8State struct {
	proj  *linalg.Projector
	m, v  *quant.Tensor8
	t     int
	o     orientation
	since int
}

// NewGaLore8bit builds the optimizer.
func NewGaLore8bit(h Hyper, cfg LowRankConfig) *GaLore8bit {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &GaLore8bit{
		h:      h.withDefaults(),
		cfg:    cfg,
		group:  quant.DefaultGroupSize,
		states: map[*nn.Param]*galore8State{},
		dense:  NewAdam8bit(h, cfg.Seed+3),
		rng:    tensor.NewRNG(cfg.Seed + 4),
	}
}

// Name implements Optimizer.
func (g *GaLore8bit) Name() string { return "8-bit GaLore" }

// SetLR implements Optimizer.
func (g *GaLore8bit) SetLR(lr float64) {
	g.h.LR = lr
	g.dense.SetLR(lr)
}

// LR implements Optimizer.
func (g *GaLore8bit) LR() float64 { return g.h.LR }

// Step implements Optimizer.
func (g *GaLore8bit) Step(ps []*nn.Param) {
	var fallback []*nn.Param
	for _, p := range ps {
		if !projects(p, g.cfg.Rank) {
			fallback = append(fallback, p)
			continue
		}
		st, ok := g.states[p]
		if !ok {
			o := orient(p.W.Rows, p.W.Cols)
			st = &galore8State{
				proj: linalg.NewProjector(g.cfg.Projection, g.cfg.Rank, g.rng.Uint64()),
				m:    quant.NewTensor8(g.cfg.Rank, o.n, g.group),
				v:    quant.NewTensor8(g.cfg.Rank, o.n, g.group),
				o:    o,
			}
			g.states[p] = st
		}
		grad := orientedView(p.Grad, st.o)
		if !st.proj.Ready() || (g.cfg.UpdateGap > 0 && st.since >= g.cfg.UpdateGap) {
			st.proj.Refresh(grad)
			st.since = 0
		}
		st.since++
		st.t++

		r := st.proj.Project(grad)
		m := quant.Dequantize(st.m, nil)
		v := quant.Dequantize(st.v, nil) // sqrt domain, see Adam8bit
		for i, sv := range v.Data {
			v.Data[i] = sv * sv
		}
		b1 := float32(g.h.Beta1)
		b2 := float32(g.h.Beta2)
		c1 := float32(1 / (1 - pow(g.h.Beta1, st.t)))
		c2 := float32(1 / (1 - pow(g.h.Beta2, st.t)))
		eps := float32(g.h.Eps)
		for i, gv := range r.Data {
			m.Data[i] = b1*m.Data[i] + (1-b1)*gv
			vv := b2*v.Data[i] + (1-b2)*gv*gv
			if vv < 0 {
				vv = 0
			}
			v.Data[i] = vv
			r.Data[i] = (m.Data[i] * c1) / (sqrt32(vv*c2) + eps)
		}
		quant.Quantize(st.m, m, g.rng)
		for i, vv := range v.Data {
			v.Data[i] = sqrt32(vv)
		}
		quant.Quantize(st.v, v, g.rng)

		update := st.proj.ProjectBack(r)
		dir := unorient(update, st.o)
		tensor.ScaleInPlace(dir, float32(g.cfg.Scale))
		decayAndApply(p, dir, g.h.LR, g.h.WeightDecay)
	}
	if len(fallback) > 0 {
		g.dense.Step(fallback)
	}
}

// StateBytes implements Optimizer.
func (g *GaLore8bit) StateBytes() int64 {
	total := g.dense.StateBytes()
	for _, st := range g.states { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += st.m.Bytes() + st.v.Bytes()
		total += 4 * int64(st.proj.StateFloats())
	}
	return total
}
