package optim

import (
	"math"

	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// AdamMini (Zhang et al., 2024b) keeps the full first moment but replaces
// the element-wise second moment with one shared value per parameter block —
// here one value per output channel for matrices/embeddings and one scalar
// for vector parameters. This halves optimizer state relative to AdamW
// (full M, tiny V), the trade-off Table 1's related-work discussion cites:
// memory savings stop at ~50% because M stays full-rank.
type AdamMini struct {
	h     Hyper
	state map[*nn.Param]*miniState
}

type miniState struct {
	m *tensor.Matrix // full first moment
	v []float32      // block second moments (len = rows, or 1 for vectors)
	t int
}

// NewAdamMini constructs the optimizer.
func NewAdamMini(h Hyper) *AdamMini {
	return &AdamMini{h: h.withDefaults(), state: map[*nn.Param]*miniState{}}
}

// Name implements Optimizer.
func (a *AdamMini) Name() string { return "Adam-mini" }

// SetLR implements Optimizer.
func (a *AdamMini) SetLR(lr float64) { a.h.LR = lr }

// LR implements Optimizer.
func (a *AdamMini) LR() float64 { return a.h.LR }

// Step implements Optimizer.
func (a *AdamMini) Step(ps []*nn.Param) {
	for _, p := range ps {
		st, ok := a.state[p]
		if !ok {
			blocks := p.W.Rows
			if p.Kind == nn.KindVector {
				blocks = 1
			}
			st = &miniState{m: tensor.NewMatrix(p.W.Rows, p.W.Cols), v: make([]float32, blocks)}
			a.state[p] = st
		}
		st.t++
		b1 := float32(a.h.Beta1)
		b2 := float32(a.h.Beta2)
		c1 := 1 / (1 - pow(a.h.Beta1, st.t))
		c2 := 1 / (1 - pow(a.h.Beta2, st.t))
		eps := a.h.Eps

		dir := tensor.NewMatrix(p.W.Rows, p.W.Cols)
		if p.Kind == nn.KindVector {
			// Single block: shared v for the whole tensor.
			meanSq := float32(p.Grad.SqNorm() / float64(p.Grad.NumEl()))
			st.v[0] = b2*st.v[0] + (1-b2)*meanSq
			denom := math.Sqrt(float64(st.v[0])*c2) + eps
			for i, g := range p.Grad.Data {
				st.m.Data[i] = b1*st.m.Data[i] + (1-b1)*g
				dir.Data[i] = float32(float64(st.m.Data[i]) * c1 / denom)
			}
		} else {
			cols := p.W.Cols
			for r := 0; r < p.W.Rows; r++ {
				grow := p.Grad.Row(r)
				mrow := st.m.Row(r)
				drow := dir.Row(r)
				meanSq := float32(tensor.SqNormSlice(grow) / float64(cols))
				st.v[r] = b2*st.v[r] + (1-b2)*meanSq
				denom := math.Sqrt(float64(st.v[r])*c2) + eps
				for i, g := range grow {
					mrow[i] = b1*mrow[i] + (1-b1)*g
					drow[i] = float32(float64(mrow[i]) * c1 / denom)
				}
			}
		}
		decayAndApply(p, dir, a.h.LR, a.h.WeightDecay)
	}
}

// StateBytes implements Optimizer.
func (a *AdamMini) StateBytes() int64 {
	var total int64
	for _, st := range a.state { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += 4 * int64(st.m.NumEl()+len(st.v))
	}
	return total
}
