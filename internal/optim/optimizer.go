// Package optim implements the optimizer zoo the paper compares against:
// SGD(+momentum), AdamW, Adam-mini, GaLore (SVD and random projection), Fira,
// Flora, plain low-rank factorization, LoRA, ReLoRA and DoRA, plus 8-bit
// optimizer-state variants and the warmup-cosine schedule used for all
// pre-training runs. The paper's own contribution (APOLLO / APOLLO-Mini)
// lives in internal/core and plugs into the same Optimizer interface.
package optim

import (
	"math"

	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// Optimizer updates parameters in place from their accumulated gradients.
// Implementations must be deterministic given their construction seed.
type Optimizer interface {
	// Name identifies the method in experiment tables.
	Name() string
	// Step consumes the gradients of ps and updates the weights. Gradients
	// are left untouched (callers zero them before the next accumulation).
	Step(ps []*nn.Param)
	// SetLR changes the learning rate (driven by the schedule).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
	// StateBytes reports the resident optimizer-state footprint in bytes,
	// measured from the actually allocated state (not a formula) so the
	// memory tables are honest.
	StateBytes() int64
}

// Hyper carries the common hyperparameters. Zero values are replaced by the
// AdamW defaults used across the paper's experiments.
type Hyper struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
}

// withDefaults fills unset fields with the paper's defaults.
func (h Hyper) withDefaults() Hyper {
	if h.Beta1 == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		h.Beta1 = 0.9
	}
	if h.Beta2 == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		h.Beta2 = 0.999
	}
	if h.Eps == 0 { //apollo:exactfloat zero is the unset-field sentinel; defaults fill only untouched fields
		h.Eps = 1e-8
	}
	return h
}

// orientation captures how a weight matrix maps onto the paper's m×n
// convention (m ≤ n): channels always index the larger dimension.
type orientation struct {
	transposed bool // true when rows > cols, i.e. the matrix is stored n×m
	m, n       int  // m = min(rows, cols), n = max(rows, cols)
}

func orient(rows, cols int) orientation {
	if rows <= cols {
		return orientation{transposed: false, m: rows, n: cols}
	}
	return orientation{transposed: true, m: cols, n: rows}
}

// orientedView returns g in m×n orientation, transposing only when needed.
func orientedView(g *tensor.Matrix, o orientation) *tensor.Matrix {
	if !o.transposed {
		return g
	}
	return g.T()
}

// unorient converts an m×n-oriented update back to the parameter's native
// storage orientation.
func unorient(u *tensor.Matrix, o orientation) *tensor.Matrix {
	if !o.transposed {
		return u
	}
	return u.T()
}

// adamState is the dense first/second moment pair reused by every
// Adam-family optimizer in this package.
type adamState struct {
	m, v *tensor.Matrix
	t    int
}

func newAdamState(rows, cols int) *adamState {
	return &adamState{m: tensor.NewMatrix(rows, cols), v: tensor.NewMatrix(rows, cols)}
}

// update performs one bias-corrected AdamW moment update and writes the
// normalized direction m̂/(√v̂+ε) into out (which may alias g).
func (s *adamState) update(out, g *tensor.Matrix, h Hyper) {
	s.t++
	b1 := float32(h.Beta1)
	b2 := float32(h.Beta2)
	c1 := float32(1 / (1 - pow(h.Beta1, s.t)))
	c2 := float32(1 / (1 - pow(h.Beta2, s.t)))
	eps := float32(h.Eps)
	md, vd, gd, od := s.m.Data, s.v.Data, g.Data, out.Data
	for i, gv := range gd {
		md[i] = b1*md[i] + (1-b1)*gv
		vd[i] = b2*vd[i] + (1-b2)*gv*gv
		mhat := md[i] * c1
		vhat := vd[i] * c2
		od[i] = mhat / (sqrt32(vhat) + eps)
	}
}

func (s *adamState) bytes() int64 {
	return 4 * int64(s.m.NumEl()+s.v.NumEl())
}

func pow(b float64, n int) float64 {
	return math.Pow(b, float64(n))
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}

// decayAndApply performs the decoupled-weight-decay AdamW parameter update:
// w ← w − lr·dir − lr·wd·w.
func decayAndApply(p *nn.Param, dir *tensor.Matrix, lr, wd float64) {
	if wd != 0 { //apollo:exactfloat zero weight decay disables the term exactly
		tensor.ScaleInPlace(p.W, float32(1-lr*wd))
	}
	tensor.AxpyInPlace(p.W, float32(-lr), dir)
}
