package optim

import (
	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// Fira (Chen et al., 2024) extends GaLore with the full-rank error residual:
// the part of the gradient outside the subspace, E = G − PᵀPG, is added back
// scaled per channel by the ratio ‖AdamW(R)[:,j]‖/‖R[:,j]‖ — simulating a
// full-rank update while keeping low-rank optimizer states. A norm-growth
// limiter tames spikes in the residual term. The paper compares against Fira
// throughout Tables 2/5/6 and observes APOLLO overtakes it at scale.
type Fira struct {
	h   Hyper
	cfg LowRankConfig
	// Gamma is the norm-growth limiter threshold (paper: 1.01).
	Gamma float64

	states map[*nn.Param]*firaState
	dense  *AdamW
	rng    *tensor.RNG
}

type firaState struct {
	proj     *linalg.Projector
	adam     *adamState
	o        orientation
	since    int
	prevNorm float64 // previous residual-term norm for the limiter
}

// NewFira builds the optimizer; projection defaults to SVD as in the paper.
func NewFira(h Hyper, cfg LowRankConfig) *Fira {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fira{
		h:      h.withDefaults(),
		cfg:    cfg,
		Gamma:  1.01,
		states: map[*nn.Param]*firaState{},
		dense:  NewAdamW(h),
		rng:    tensor.NewRNG(cfg.Seed + 1),
	}
}

// Name implements Optimizer.
func (f *Fira) Name() string { return "Fira" }

// SetLR implements Optimizer.
func (f *Fira) SetLR(lr float64) {
	f.h.LR = lr
	f.dense.SetLR(lr)
}

// LR implements Optimizer.
func (f *Fira) LR() float64 { return f.h.LR }

// Step implements Optimizer.
func (f *Fira) Step(ps []*nn.Param) {
	var fallback []*nn.Param
	for _, p := range ps {
		if !projects(p, f.cfg.Rank) {
			fallback = append(fallback, p)
			continue
		}
		st, ok := f.states[p]
		if !ok {
			o := orient(p.W.Rows, p.W.Cols)
			st = &firaState{
				proj: linalg.NewProjector(f.cfg.Projection, f.cfg.Rank, f.rng.Uint64()),
				adam: newAdamState(f.cfg.Rank, o.n),
				o:    o,
			}
			f.states[p] = st
		}
		grad := orientedView(p.Grad, st.o)
		if !st.proj.Ready() || (f.cfg.UpdateGap > 0 && st.since >= f.cfg.UpdateGap) {
			st.proj.Refresh(grad)
			st.since = 0
		}
		st.since++

		r := st.proj.Project(grad) // r×n
		rNorms := r.ColNorms()
		normalized := r.Clone()
		st.adam.update(normalized, r, f.h) // ˜R

		// Low-rank part of the update (the GaLore term).
		lowRank := st.proj.ProjectBack(normalized)

		// Residual: E = G − PᵀPG, scaled per channel j by ‖˜R[:,j]‖/‖R[:,j]‖.
		backProj := st.proj.ProjectBack(r) // PᵀR = PᵀPG
		residual := tensor.Sub(grad, backProj)
		nNorms := normalized.ColNorms()
		scale := make([]float32, len(nNorms))
		for j := range scale {
			if rNorms[j] > 1e-12 {
				scale[j] = float32(nNorms[j] / rNorms[j])
			}
		}
		tensor.ScaleColsInPlace(residual, scale)

		// Norm-growth limiter on the residual term (equation 4).
		resNorm := residual.Norm()
		if st.prevNorm > 0 && resNorm > f.Gamma*st.prevNorm {
			tensor.ScaleInPlace(residual, float32(f.Gamma*st.prevNorm/(resNorm+1e-30)))
			resNorm = f.Gamma * st.prevNorm
		}
		st.prevNorm = resNorm

		update := tensor.Add(lowRank, residual)
		dir := unorient(update, st.o)
		tensor.ScaleInPlace(dir, float32(f.cfg.Scale))
		decayAndApply(p, dir, f.h.LR, f.h.WeightDecay)
	}
	if len(fallback) > 0 {
		f.dense.Step(fallback)
	}
}

// StateBytes implements Optimizer: GaLore states + one float per projected
// parameter for the limiter (Table 1: 2nr + mr + 1).
func (f *Fira) StateBytes() int64 {
	total := f.dense.StateBytes()
	for _, st := range f.states { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += st.adam.bytes()
		total += 4 * int64(st.proj.StateFloats())
		total += 4 // prevNorm
	}
	return total
}
