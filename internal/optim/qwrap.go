package optim

import (
	"apollo/internal/nn"
	"apollo/internal/quant"
	"apollo/internal/tensor"
)

// WeightQuantized wraps any optimizer with INT8 master weights: after each
// inner step, matrix weights are re-encoded into group-wise INT8 with
// stochastic rounding and decoded back, so the resident master copy is one
// byte per element (the Q-GaLore / Q-APOLLO weight path of Table 8). Updates
// smaller than one quantization step survive in expectation through the
// stochastic rounding.
type WeightQuantized struct {
	inner Optimizer
	group int
	rng   *tensor.RNG
	qw    map[*nn.Param]*quant.QuantizedWeight
}

// NewWeightQuantized wraps inner with the paper's group size of 128.
func NewWeightQuantized(inner Optimizer, seed uint64) *WeightQuantized {
	return &WeightQuantized{
		inner: inner,
		group: quant.DefaultGroupSize,
		rng:   tensor.NewRNG(seed),
		qw:    map[*nn.Param]*quant.QuantizedWeight{},
	}
}

// Name implements Optimizer.
func (w *WeightQuantized) Name() string { return "Q-" + w.inner.Name() }

// SetLR implements Optimizer.
func (w *WeightQuantized) SetLR(lr float64) { w.inner.SetLR(lr) }

// LR implements Optimizer.
func (w *WeightQuantized) LR() float64 { return w.inner.LR() }

// Step implements Optimizer: inner update, then round-trip matrix weights
// through INT8 storage.
func (w *WeightQuantized) Step(ps []*nn.Param) {
	w.inner.Step(ps)
	for _, p := range ps {
		if p.Kind == nn.KindVector {
			continue // norm gains stay fp (negligible memory)
		}
		q, ok := w.qw[p]
		if !ok {
			q = quant.NewQuantizedWeight(p.W, w.group, w.rng.Uint64())
			w.qw[p] = q
			q.Materialize(p.W)
			continue
		}
		quant.Quantize(q.Q, p.W, w.rng)
		quant.Dequantize(q.Q, p.W)
	}
}

// StateBytes implements Optimizer (inner states only; the INT8 weight
// footprint is reported by the memory model as a weight cost, not an
// optimizer state).
func (w *WeightQuantized) StateBytes() int64 { return w.inner.StateBytes() }

// WeightBytes reports the resident INT8 master-weight footprint.
func (w *WeightQuantized) WeightBytes() int64 {
	var total int64
	for _, q := range w.qw { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += q.Bytes()
	}
	return total
}
