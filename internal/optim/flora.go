package optim

import (
	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// Flora (Hao et al., 2024) treats low-rank adapters as gradient compressors:
// it keeps Adam-style moments in a random rank-r subspace and lifts the
// normalized update back, resampling the projection periodically with a
// momentum-transfer step (m ← P_new·Pᵀ_old·m) so accumulated momentum
// survives subspace changes. Flora is fine-tuning oriented: the paper's
// Table 1 flags it as unable to pre-train competitively, which Table 2's
// proxies confirm — it is included as the "random projection done naively"
// baseline.
type Flora struct {
	h   Hyper
	cfg LowRankConfig

	states map[*nn.Param]*floraState
	dense  *AdamW
	rng    *tensor.RNG
}

type floraState struct {
	proj  *linalg.Projector
	adam  *adamState
	o     orientation
	since int
}

// NewFlora builds the optimizer; the projection is always random (Flora has
// no SVD mode by construction).
func NewFlora(h Hyper, cfg LowRankConfig) *Flora {
	cfg = cfg.withDefaults()
	cfg.Projection = linalg.RandomProjection
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Flora{
		h:      h.withDefaults(),
		cfg:    cfg,
		states: map[*nn.Param]*floraState{},
		dense:  NewAdamW(h),
		rng:    tensor.NewRNG(cfg.Seed + 2),
	}
}

// Name implements Optimizer.
func (f *Flora) Name() string { return "Flora" }

// SetLR implements Optimizer.
func (f *Flora) SetLR(lr float64) {
	f.h.LR = lr
	f.dense.SetLR(lr)
}

// LR implements Optimizer.
func (f *Flora) LR() float64 { return f.h.LR }

// Step implements Optimizer.
func (f *Flora) Step(ps []*nn.Param) {
	var fallback []*nn.Param
	for _, p := range ps {
		if !projects(p, f.cfg.Rank) {
			fallback = append(fallback, p)
			continue
		}
		st, ok := f.states[p]
		if !ok {
			o := orient(p.W.Rows, p.W.Cols)
			st = &floraState{
				proj: linalg.NewProjector(linalg.RandomProjection, f.cfg.Rank, f.rng.Uint64()),
				adam: newAdamState(f.cfg.Rank, o.n),
				o:    o,
			}
			f.states[p] = st
		}
		grad := orientedView(p.Grad, st.o)
		if !st.proj.Ready() {
			st.proj.Refresh(grad)
			st.since = 0
		} else if f.cfg.UpdateGap > 0 && st.since >= f.cfg.UpdateGap {
			// Momentum transfer: lift the moments with the old projection,
			// re-compress with the new one.
			oldP := st.proj.Matrix().Clone()
			st.proj.Refresh(grad)
			newP := st.proj.Matrix()
			transfer := tensor.MatMulT(newP, oldP) // r×r
			st.adam.m = tensor.MatMul(transfer, st.adam.m)
			st.adam.v = tensor.MatMul(transfer, st.adam.v)
			// Second moments must stay non-negative after the rotation.
			for i, v := range st.adam.v.Data {
				if v < 0 {
					st.adam.v.Data[i] = 0
				}
			}
			st.since = 0
		}
		st.since++

		r := st.proj.Project(grad)
		st.adam.update(r, r, f.h)
		update := st.proj.ProjectBack(r)
		dir := unorient(update, st.o)
		tensor.ScaleInPlace(dir, float32(f.cfg.Scale))
		decayAndApply(p, dir, f.h.LR, f.h.WeightDecay)
	}
	if len(fallback) > 0 {
		f.dense.Step(fallback)
	}
}

// StateBytes implements Optimizer (Table 1: 2nr + 1 — the random projection
// itself is regenerated from its seed).
func (f *Flora) StateBytes() int64 {
	total := f.dense.StateBytes()
	for _, st := range f.states { //apollo:orderfree exact integer sum; iteration order cannot reach the result
		total += st.adam.bytes()
		total += 4 * int64(st.proj.StateFloats())
	}
	return total
}
