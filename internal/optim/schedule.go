package optim

import "math"

// Schedule maps a step index to a learning rate.
type Schedule interface {
	At(step int) float64
}

// WarmupCosine is the schedule used for every pre-training run in the paper
// (Appendix A.4): linear warmup over the first WarmupFrac of TotalSteps,
// then cosine annealing down to FinalFrac of the peak.
type WarmupCosine struct {
	Peak       float64
	TotalSteps int
	WarmupFrac float64 // fraction of TotalSteps spent warming up (paper: 0.10)
	FinalFrac  float64 // floor as a fraction of Peak (paper: 0.10)
}

// NewWarmupCosine builds the paper-default schedule for a peak LR.
func NewWarmupCosine(peak float64, totalSteps int) WarmupCosine {
	return WarmupCosine{Peak: peak, TotalSteps: totalSteps, WarmupFrac: 0.10, FinalFrac: 0.10}
}

// At implements Schedule.
func (w WarmupCosine) At(step int) float64 {
	if w.TotalSteps <= 0 {
		return w.Peak
	}
	warm := int(float64(w.TotalSteps) * w.WarmupFrac)
	if warm > 0 && step < warm {
		return w.Peak * float64(step+1) / float64(warm)
	}
	span := w.TotalSteps - warm
	if span <= 0 {
		return w.Peak
	}
	progress := float64(step-warm) / float64(span)
	if progress > 1 {
		progress = 1
	}
	floor := w.Peak * w.FinalFrac
	return floor + (w.Peak-floor)*0.5*(1+math.Cos(math.Pi*progress))
}

// Constant is a flat schedule (used by the fine-tuning runs).
type Constant float64

// At implements Schedule.
func (c Constant) At(int) float64 { return float64(c) }

// Linear decays linearly from Peak to zero over TotalSteps (the fine-tuning
// recipe in Table 12 uses a linear scheduler).
type Linear struct {
	Peak       float64
	TotalSteps int
}

// At implements Schedule.
func (l Linear) At(step int) float64 {
	if l.TotalSteps <= 0 {
		return l.Peak
	}
	remain := 1 - float64(step)/float64(l.TotalSteps)
	if remain < 0 {
		remain = 0
	}
	return l.Peak * remain
}
