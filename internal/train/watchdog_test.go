package train

import (
	"math"
	"testing"

	"apollo/internal/data"
	"apollo/internal/obs/runlog"
	"apollo/internal/optim"
	"apollo/internal/zero"
)

// The watchdog injection tests use runlog.Watchdog.HookLoss rather than
// corrupting batches: CrossEntropy over the synthetic corpus is bounded by
// -log(min softmax prob), so on the near-uniform toy model no batch mutation
// can produce a NaN or a 3x loss spike (measured: fixed-token targets move
// the loss by ~0.2%). HookLoss transforms only the loss the watchdog
// observes, so the full loop -> watchdog -> halt -> Result plumbing is
// exercised while the training math stays untouched.

// TestWatchdogNaNHaltsFusedLoop: an injected NaN at step 3 of a fused run
// must raise a nan_loss alert within that step and stop the loop.
func TestWatchdogNaNHaltsFusedLoop(t *testing.T) {
	model, opt, corpus := dpTestSetup(t, 11)
	wd := runlog.NewWatchdog(runlog.WatchdogConfig{Halt: true})
	wd.HookLoss = func(step int, loss float64) float64 {
		if step == 3 {
			return math.NaN()
		}
		return loss
	}
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 6, Seq: 16, Steps: 8, EvalEvery: 4, EvalBatches: 2, ClipNorm: 1.0,
		Watchdog: wd,
	})
	if !res.Halted || res.HaltStep != 3 || res.Steps != 3 {
		t.Fatalf("halt bookkeeping wrong: %+v", res)
	}
	if res.HaltReason != runlog.AlertNaNLoss {
		t.Fatalf("halt reason %q, want %q", res.HaltReason, runlog.AlertNaNLoss)
	}
	al := wd.Alerts()
	if len(al) != 1 || al[0].Step != 3 || al[0].Kind != runlog.AlertNaNLoss {
		t.Fatalf("alerts: %+v", al)
	}
	// The final eval reflects the truncated run, not the configured steps.
	if n := len(res.Series); n == 0 || res.Series[n-1].Step != 3 {
		t.Fatalf("final metric not at halt step: %+v", res.Series)
	}
}

// TestWatchdogSpikeHaltsFusedLoop: a 10x loss spike after warmup must raise
// loss_spike and halt.
func TestWatchdogSpikeHaltsFusedLoop(t *testing.T) {
	model, opt, corpus := dpTestSetup(t, 7)
	wd := runlog.NewWatchdog(runlog.WatchdogConfig{Window: 8, Warmup: 4, SpikeFactor: 3, Halt: true})
	wd.HookLoss = func(step int, loss float64) float64 {
		if step == 6 {
			return loss * 10
		}
		return loss
	}
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 6, Seq: 16, Steps: 10, EvalEvery: 5, EvalBatches: 2, ClipNorm: 1.0,
		Watchdog: wd,
	})
	if !res.Halted || res.HaltStep != 6 || res.HaltReason != runlog.AlertLossSpike {
		t.Fatalf("spike halt wrong: %+v", res)
	}
	al := wd.Alerts()
	if len(al) != 1 || al[0].Kind != runlog.AlertLossSpike {
		t.Fatalf("alerts: %+v", al)
	}
	// The trailing window is real training loss (~4.15 on the toy model), so
	// the observed factor sits near the injected 10x.
	if al[0].Factor < 8 || al[0].Factor > 12 {
		t.Fatalf("spike factor %g, want ~10", al[0].Factor)
	}
}

// TestWatchdogNaNHaltsDPZero repeats the NaN halt on the hardest loop:
// data-parallel with ZeRO-sharded optimizer states.
func TestWatchdogNaNHaltsDPZero(t *testing.T) {
	model, _, corpus := dpTestSetup(t, 42)
	opt := zero.NewSharded(func() optim.Optimizer {
		return optim.NewAdamW(optim.Hyper{LR: 1e-3, WeightDecay: 0.01})
	}, 3)
	wd := runlog.NewWatchdog(runlog.WatchdogConfig{Halt: true})
	wd.HookLoss = func(step int, loss float64) float64 {
		if step == 5 {
			return math.Inf(1)
		}
		return loss
	}
	cfg := dpTestConfig(3)
	cfg.Watchdog = wd
	res := DPPretrain(model, opt, corpus, cfg)
	if !res.Halted || res.HaltStep != 5 || res.Steps != 5 {
		t.Fatalf("DP halt bookkeeping wrong: %+v", res)
	}
	if res.HaltReason != runlog.AlertNaNLoss {
		t.Fatalf("halt reason %q", res.HaltReason)
	}
}

// TestWatchdogQuietOnNormalRun is the false-positive guard: a normal run —
// including genuinely anomalous but non-divergent batches injected through
// data.Corpus.HookTrainBatch — must finish all steps with zero alerts under
// the default thresholds.
func TestWatchdogQuietOnNormalRun(t *testing.T) {
	model, opt, corpus := dpTestSetup(t, 5)
	batches := 0
	corpus.HookTrainBatch = func(b *data.Batch) {
		batches++
		// Every 7th batch trains on a degenerate fixed-target batch: an
		// outlier the spike detector must tolerate (its loss stays within
		// the normal band; see the measurement note above).
		if batches%7 == 0 {
			for i := range b.Targets {
				b.Targets[i] = 63
			}
		}
	}
	wd := runlog.NewWatchdog(runlog.WatchdogConfig{Halt: true})
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 6, Seq: 16, Steps: 20, EvalEvery: 10, EvalBatches: 2, ClipNorm: 1.0,
		Watchdog: wd,
	})
	if res.Halted || res.Steps != 20 {
		t.Fatalf("normal run halted: %+v", res)
	}
	if al := wd.Alerts(); len(al) != 0 {
		t.Fatalf("false positives: %+v", al)
	}
}

// TestWatchdogOnlyLeavesResultUntouched pins the observational contract on
// the Result itself: a watchdog without a recorder must not populate the
// telemetry summary fields.
func TestWatchdogOnlyLeavesResultUntouched(t *testing.T) {
	model, opt, corpus := dpTestSetup(t, 3)
	wd := runlog.NewWatchdog(runlog.WatchdogConfig{})
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 4, Seq: 8, Steps: 2, EvalBatches: 1, Watchdog: wd,
	})
	if res.PhaseSeconds != nil || res.StepWallSeconds != 0 {
		t.Fatalf("watchdog-only run populated telemetry fields: %+v", res)
	}
	if res.Halted {
		t.Fatal("halted without any alert")
	}
}
