package train

import (
	"math"
	"testing"

	"apollo/internal/core"
	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

func testCorpus(t *testing.T) *data.Corpus {
	t.Helper()
	cfg := data.DefaultSourceConfig()
	cfg.Vocab = 64
	cfg.CopyLagMin = 4
	cfg.CopyLagMax = 16
	src, err := data.NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return data.NewCorpus(src, 1, 2)
}

func testModel(seed uint64) *nn.Model {
	cfg := nn.Config{Vocab: 64, Dim: 16, Hidden: 32, Heads: 2, Layers: 2, MaxSeq: 32}
	return nn.NewModel(cfg, tensor.NewRNG(seed))
}

func TestPretrainReducesPerplexity(t *testing.T) {
	corpus := testCorpus(t)
	model := testModel(1)
	opt := optim.NewAdamW(optim.Hyper{LR: 3e-3})
	initial := math.Exp(Validate(model, corpus, 2, 4, 16))
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 4, Seq: 16, Steps: 60, EvalEvery: 30, EvalBatches: 2,
		Schedule: optim.NewWarmupCosine(3e-3, 60), ClipNorm: 1.0,
	})
	if res.FinalValPPL >= initial {
		t.Fatalf("ppl did not improve: %v → %v", initial, res.FinalValPPL)
	}
	if res.FinalValPPL >= float64(64) {
		t.Fatalf("final ppl %v worse than uniform over vocab", res.FinalValPPL)
	}
	if len(res.Series) < 2 {
		t.Fatalf("expected eval series, got %d points", len(res.Series))
	}
}

func TestPretrainDeterministic(t *testing.T) {
	run := func() float64 {
		corpus := testCorpus(t)
		model := testModel(7)
		opt := core.NewMini(optim.Hyper{LR: 0.01})
		res := Pretrain(model, opt, corpus, PretrainConfig{Batch: 2, Seq: 16, Steps: 20})
		return res.FinalValPPL
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("pretrain not deterministic: %v vs %v", a, b)
	}
}

func TestValidateIsStable(t *testing.T) {
	corpus := testCorpus(t)
	model := testModel(3)
	a := Validate(model, corpus, 3, 2, 16)
	b := Validate(model, corpus, 3, 2, 16)
	if a != b {
		t.Fatalf("validation not reproducible: %v vs %v", a, b)
	}
}

func TestScheduleDrivesLR(t *testing.T) {
	corpus := testCorpus(t)
	model := testModel(4)
	opt := optim.NewAdamW(optim.Hyper{LR: 999})
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 2, Seq: 8, Steps: 10, EvalEvery: 5,
		Schedule: optim.Constant(0.004),
	})
	last := res.Series[len(res.Series)-1]
	if last.LR != 0.004 {
		t.Fatalf("schedule not applied: LR %v", last.LR)
	}
}

func TestEncodeFT(t *testing.T) {
	src, _ := data.NewSource(data.DefaultSourceConfig())
	task := data.GenerateFTTask(src, data.FTTaskConfig{
		Name: "x", Train: 4, Test: 2, CtxLen: 6, Classes: 3, Seed: 9,
	})
	ex := task.TrainSet[0]
	tokens, targets := EncodeFT(task, ex)
	if len(tokens) != 7 || len(targets) != 7 {
		t.Fatalf("lengths %d/%d", len(tokens), len(targets))
	}
	if tokens[6] != task.SepToken {
		t.Fatal("separator missing")
	}
	for i := 0; i < 6; i++ {
		if targets[i] != -1 {
			t.Fatalf("position %d not masked", i)
		}
	}
	if targets[6] != task.LabelBase+ex.Label {
		t.Fatalf("label target %d want %d", targets[6], task.LabelBase+ex.Label)
	}
}

func TestFineTuneBeatsChance(t *testing.T) {
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	src, err := data.NewSource(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	task := data.GenerateFTTask(src, data.FTTaskConfig{
		Name: "topic", Train: 96, Test: 64, CtxLen: 16, Classes: 2, Noise: 0, Seed: 11,
	})
	model := testModel(12)
	opt := optim.NewAdamW(optim.Hyper{LR: 2e-3})
	acc := FineTune(model, opt, task, FineTuneConfig{Epochs: 6, Batch: 8, Seed: 13})
	if acc <= 0.55 {
		t.Fatalf("fine-tuned accuracy %v not above chance (0.5)", acc)
	}
}

func TestFTAccuracyBoundsAndDeterminism(t *testing.T) {
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	src, _ := data.NewSource(srcCfg)
	task := data.GenerateFTTask(src, data.FTTaskConfig{
		Name: "x", Train: 8, Test: 16, CtxLen: 8, Classes: 4, Seed: 15,
	})
	model := testModel(16)
	a := FTAccuracy(model, task)
	b := FTAccuracy(model, task)
	if a != b {
		t.Fatal("accuracy must be deterministic")
	}
	if a < 0 || a > 1 {
		t.Fatalf("accuracy %v out of range", a)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512B",
		2048:          "2.00K",
		3 << 20:       "3.00M",
		5 << 30:       "5.00G",
		1536 << 20:    "1.50G",
		1234 << 10:    "1.21M",
		(1 << 30):     "1.00G",
		(1 << 30) - 1: "1024.00M",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%d) = %q want %q", in, got, want)
		}
	}
}
