package train

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"apollo/internal/obs/memprof"
	"apollo/internal/optim"
	"apollo/internal/zero"
)

// TestMemprofParityFused is the memory half of the determinism contract: a
// fused run with a memory profiler sampling every step (on top of the full
// telemetry rig) is bit-identical to a bare run.
func TestMemprofParityFused(t *testing.T) {
	const seed = 11
	refModel, refOpt, refCorpus := dpTestSetup(t, seed)
	cfg := PretrainConfig{Batch: 6, Seq: 16, Steps: 6, EvalEvery: 3, EvalBatches: 2, ClipNorm: 1.0}
	ref := Pretrain(refModel, refOpt, refCorpus, cfg)

	var b strings.Builder
	var mem bytes.Buffer
	mpModel, mpOpt, mpCorpus := dpTestSetup(t, seed)
	cfgMP := cfg
	run, wd, rec := parityLedger(t, &b)
	cfgMP.Telemetry = rec
	cfgMP.Watchdog = wd
	cfgMP.MemProf = memprof.New(memprof.Config{Out: &mem})
	got := Pretrain(mpModel, mpOpt, mpCorpus, cfgMP)
	checkParityLedger(t, run, wd, cfg.Steps)

	for i := range ref.Series {
		if got.Series[i] != ref.Series[i] {
			t.Fatalf("metric %d differs with memprof:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
		}
	}
	refParams := refModel.Params().List()
	for i, p := range mpModel.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs bitwise with memprof enabled", p.Name)
		}
	}

	// The timeline recorded one sample per step with the measured ledger:
	// AdamW state is exactly 2 moments × 4 bytes per element.
	lines := strings.Split(strings.TrimRight(mem.String(), "\n"), "\n")
	if len(lines) != cfg.Steps {
		t.Fatalf("got %d mem samples, want %d", len(lines), cfg.Steps)
	}
	var last memprof.Sample
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Step != cfg.Steps {
		t.Fatalf("last sample step = %d", last.Step)
	}
	wantState := mpOpt.StateBytes()
	if got := last.Components[memprof.CompOptimizerState]; got != wantState {
		t.Fatalf("optimizer_state = %d, StateBytes = %d", got, wantState)
	}
	if last.Components[memprof.CompWeights] <= 0 || last.Components[memprof.CompGrads] <= 0 {
		t.Fatalf("weights/grads missing: %v", last.Components)
	}
	if last.Components[memprof.CompProjectorScratch] != 0 {
		t.Fatalf("AdamW scratch = %d, want 0", last.Components[memprof.CompProjectorScratch])
	}
}

// TestMemprofParityDPZero repeats the check on the hardest path — DP with
// ZeRO-sharded state — and verifies the per-shard ledger partitions the
// measured state exactly.
func TestMemprofParityDPZero(t *testing.T) {
	const seed = 42
	const replicas = 3
	ref, refModel := zeroRun(t, replicas, seed, nil, nil)

	var mem bytes.Buffer
	model, _, corpus := dpTestSetup(t, seed)
	opt := zero.NewSharded(func() optim.Optimizer {
		return optim.NewAdamW(optim.Hyper{LR: 1e-3, WeightDecay: 0.01})
	}, replicas)
	cfg := dpTestConfig(replicas)
	cfg.MemProf = memprof.New(memprof.Config{Out: &mem})
	got := DPPretrain(model, opt, corpus, cfg)

	for i := range ref.Series {
		if got.Series[i] != ref.Series[i] {
			t.Fatalf("metric %d differs with memprof:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
		}
	}
	refParams := refModel.Params().List()
	for i, p := range model.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs bitwise with memprof enabled", p.Name)
		}
	}

	lines := strings.Split(strings.TrimRight(mem.String(), "\n"), "\n")
	var last memprof.Sample
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	var shardSum int64
	for s := 0; s < replicas; s++ {
		v, ok := last.Components[memprof.ShardComponent(s)]
		if !ok {
			t.Fatalf("missing %s in %v", memprof.ShardComponent(s), last.Components)
		}
		shardSum += v
	}
	if shardSum != opt.StateBytes() {
		t.Fatalf("shard components sum to %d, StateBytes = %d", shardSum, opt.StateBytes())
	}
	if _, ok := last.Components[memprof.CompOptimizerState]; ok {
		t.Fatal("sharded run also carries the aggregate optimizer_state component (double count)")
	}
	if last.Components[memprof.CompDPReplicas] <= 0 || last.Components[memprof.CompDPGradLeaves] <= 0 {
		t.Fatalf("DP components missing: %v", last.Components)
	}
}
