package train

import (
	"encoding/json"
	"strings"
	"testing"

	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/optim"
	"apollo/internal/zero"
)

// TestTelemetryParityFused is the telemetry half of the determinism
// contract: a fused run with a TrainRecorder attached is bit-identical to
// one without — the instrumentation is timing-only.
func TestTelemetryParityFused(t *testing.T) {
	const seed = 11
	refModel, refOpt, refCorpus := dpTestSetup(t, seed)
	cfg := PretrainConfig{Batch: 6, Seq: 16, Steps: 6, EvalEvery: 3, EvalBatches: 2, ClipNorm: 1.0}
	ref := Pretrain(refModel, refOpt, refCorpus, cfg)

	var b strings.Builder
	telModel, telOpt, telCorpus := dpTestSetup(t, seed)
	cfgTel := cfg
	cfgTel.Telemetry = obs.NewTrainRecorder(&b)
	got := Pretrain(telModel, telOpt, telCorpus, cfgTel)

	if len(got.Series) != len(ref.Series) {
		t.Fatalf("series length %d != %d", len(got.Series), len(ref.Series))
	}
	for i := range ref.Series {
		if got.Series[i] != ref.Series[i] {
			t.Fatalf("metric %d differs with telemetry:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
		}
	}
	if got.FinalValPPL != ref.FinalValPPL {
		t.Fatalf("final ppl %v != %v with telemetry", got.FinalValPPL, ref.FinalValPPL)
	}
	refParams := refModel.Params().List()
	for i, p := range telModel.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs bitwise with telemetry enabled", p.Name)
		}
	}
}

// TestTelemetryParityDPZero repeats the parity check on the hardest path:
// data-parallel with ZeRO-sharded optimizer states, where the phase timing
// wraps the concurrent replica workers.
func TestTelemetryParityDPZero(t *testing.T) {
	const seed = 42
	ref, refModel := zeroRun(t, 3, seed, nil)
	var b strings.Builder
	got, gotModel := zeroRun(t, 3, seed, obs.NewTrainRecorder(&b))

	for i := range ref.Series {
		if got.Series[i] != ref.Series[i] {
			t.Fatalf("metric %d differs with telemetry:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
		}
	}
	if got.FinalValPPL != ref.FinalValPPL {
		t.Fatalf("final ppl %v != %v with telemetry", got.FinalValPPL, ref.FinalValPPL)
	}
	refParams := refModel.Params().List()
	for i, p := range gotModel.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs bitwise with telemetry enabled", p.Name)
		}
	}
	if b.Len() == 0 {
		t.Fatalf("telemetry stream is empty")
	}
}

// zeroRun trains DP+ZeRO with an optional recorder attached.
func zeroRun(t *testing.T, replicas int, seed uint64, rec *obs.TrainRecorder) (Result, *nn.Model) {
	t.Helper()
	model, _, corpus := dpTestSetup(t, seed)
	opt := zero.NewSharded(func() optim.Optimizer {
		return optim.NewAdamW(optim.Hyper{LR: 1e-3, WeightDecay: 0.01})
	}, replicas)
	cfg := dpTestConfig(replicas)
	cfg.Telemetry = rec
	res := DPPretrain(model, opt, corpus, cfg)
	return res, model
}

// TestTelemetryStreamAndSummary checks the -telemetry surface end to end on
// a fused run: the JSONL stream parses, steps are sequential, per-step
// phases are positive and sum to at most the step's wall time, and the
// Result summary agrees with the stream.
func TestTelemetryStreamAndSummary(t *testing.T) {
	const seed = 5
	model, opt, corpus := dpTestSetup(t, seed)
	var b strings.Builder
	rec := obs.NewTrainRecorder(&b)
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 6, Seq: 16, Steps: 5, EvalEvery: 2, EvalBatches: 2, ClipNorm: 1.0,
		Telemetry: rec,
	})

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d step events, want 5", len(lines))
	}
	var streamWall, streamPhases float64
	for i, line := range lines {
		var ev obs.StepEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("step %d not valid JSON: %v\n%s", i, err, line)
		}
		if ev.Step != i+1 {
			t.Fatalf("step %d event carries step=%d", i, ev.Step)
		}
		if ev.Loss <= 0 || ev.GradNorm <= 0 || ev.LR <= 0 {
			t.Fatalf("step %d: non-positive loss/gradnorm/lr: %+v", i, ev)
		}
		var phaseSum float64
		for name, s := range ev.Phases {
			if s < 0 {
				t.Fatalf("step %d phase %s negative: %g", i, name, s)
			}
			phaseSum += s
		}
		// Fused-loop phases partition the step; allow slack for the
		// unattributed slivers between laps (loop bookkeeping, logging).
		if phaseSum > ev.WallSeconds*1.05+1e-4 {
			t.Fatalf("step %d phases sum to %g > wall %g", i, phaseSum, ev.WallSeconds)
		}
		for _, must := range []string{"data", "forward", "backward", "step"} {
			if ev.Phases[must] <= 0 {
				t.Fatalf("step %d missing phase %q: %v", i, must, ev.Phases)
			}
		}
		streamWall += ev.WallSeconds
		streamPhases += phaseSum
	}

	if res.PhaseSeconds == nil {
		t.Fatalf("Result.PhaseSeconds not populated")
	}
	if res.StepWallSeconds <= 0 {
		t.Fatalf("Result.StepWallSeconds = %g", res.StepWallSeconds)
	}
	if d := res.StepWallSeconds - streamWall; d > 1e-9 || d < -1e-9 {
		t.Fatalf("summary wall %g != streamed wall %g", res.StepWallSeconds, streamWall)
	}
	var summaryPhases float64
	for _, s := range res.PhaseSeconds {
		summaryPhases += s
	}
	if d := summaryPhases - streamPhases; d > 1e-9 || d < -1e-9 {
		t.Fatalf("summary phases %g != streamed phases %g", summaryPhases, streamPhases)
	}
	// The tracked phases must account for the bulk of the stepped wall time
	// (forward/backward dominate; slack covers scheduler noise on tiny models).
	if summaryPhases < 0.5*res.StepWallSeconds {
		t.Fatalf("phases cover only %g of %g wall seconds", summaryPhases, res.StepWallSeconds)
	}
}

// TestTelemetryDisabledLeavesResultUntouched pins the default: no recorder,
// no PhaseSeconds.
func TestTelemetryDisabledLeavesResultUntouched(t *testing.T) {
	model, opt, corpus := dpTestSetup(t, 3)
	res := Pretrain(model, opt, corpus, PretrainConfig{Batch: 4, Seq: 8, Steps: 2, EvalBatches: 1})
	if res.PhaseSeconds != nil || res.StepWallSeconds != 0 {
		t.Fatalf("untelemetered run populated telemetry fields: %+v %v", res.PhaseSeconds, res.StepWallSeconds)
	}
}
