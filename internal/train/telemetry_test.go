package train

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/obs/runlog"
	"apollo/internal/optim"
	"apollo/internal/zero"
)

// parityLedger builds a full observability rig for the parity tests: a run
// ledger entry in a temp root plus an armed watchdog emitting into it. The
// recorder returned streams to both the caller's builder and the ledger.
func parityLedger(t *testing.T, b *strings.Builder) (*runlog.Run, *runlog.Watchdog, *obs.TrainRecorder) {
	t.Helper()
	run, err := runlog.Create(t.TempDir(), runlog.Manifest{ID: "parity", Command: "test"})
	if err != nil {
		t.Fatal(err)
	}
	wd := runlog.NewWatchdog(runlog.WatchdogConfig{Halt: true, Emit: run.Alert})
	rec := obs.NewTrainRecorder(io.MultiWriter(b, run.StepsWriter()))
	return run, wd, rec
}

// checkParityLedger finalizes and reloads the ledger entry, asserting the
// step series landed and no watchdog alert fired on a healthy run.
func checkParityLedger(t *testing.T, run *runlog.Run, wd *runlog.Watchdog, steps int) {
	t.Helper()
	if wd.Halted() || len(wd.Alerts()) != 0 {
		t.Fatalf("watchdog alerted on a healthy parity run: %+v", wd.Alerts())
	}
	if err := run.Finalize(runlog.StatusOK, runlog.Final{Steps: steps}); err != nil {
		t.Fatal(err)
	}
	rd, err := runlog.LoadDir(run.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Steps) != steps || rd.Manifest.Status != runlog.StatusOK {
		t.Fatalf("ledger entry wrong: %d steps, status %s", len(rd.Steps), rd.Manifest.Status)
	}
}

// TestTelemetryParityFused is the telemetry half of the determinism
// contract: a fused run with a TrainRecorder, a run-ledger entry AND an
// armed watchdog attached is bit-identical to a bare one — the whole
// observability stack is timing-only.
func TestTelemetryParityFused(t *testing.T) {
	const seed = 11
	refModel, refOpt, refCorpus := dpTestSetup(t, seed)
	cfg := PretrainConfig{Batch: 6, Seq: 16, Steps: 6, EvalEvery: 3, EvalBatches: 2, ClipNorm: 1.0}
	ref := Pretrain(refModel, refOpt, refCorpus, cfg)

	var b strings.Builder
	telModel, telOpt, telCorpus := dpTestSetup(t, seed)
	cfgTel := cfg
	run, wd, rec := parityLedger(t, &b)
	cfgTel.Telemetry = rec
	cfgTel.Watchdog = wd
	got := Pretrain(telModel, telOpt, telCorpus, cfgTel)
	checkParityLedger(t, run, wd, cfg.Steps)

	if len(got.Series) != len(ref.Series) {
		t.Fatalf("series length %d != %d", len(got.Series), len(ref.Series))
	}
	for i := range ref.Series {
		if got.Series[i] != ref.Series[i] {
			t.Fatalf("metric %d differs with telemetry:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
		}
	}
	if got.FinalValPPL != ref.FinalValPPL {
		t.Fatalf("final ppl %v != %v with telemetry", got.FinalValPPL, ref.FinalValPPL)
	}
	refParams := refModel.Params().List()
	for i, p := range telModel.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs bitwise with telemetry enabled", p.Name)
		}
	}
}

// TestTelemetryParityDPZero repeats the parity check on the hardest path:
// data-parallel with ZeRO-sharded optimizer states, where the phase timing
// wraps the concurrent replica workers.
func TestTelemetryParityDPZero(t *testing.T) {
	const seed = 42
	ref, refModel := zeroRun(t, 3, seed, nil, nil)
	var b strings.Builder
	run, wd, rec := parityLedger(t, &b)
	got, gotModel := zeroRun(t, 3, seed, rec, wd)
	checkParityLedger(t, run, wd, got.Steps)

	for i := range ref.Series {
		if got.Series[i] != ref.Series[i] {
			t.Fatalf("metric %d differs with telemetry:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
		}
	}
	if got.FinalValPPL != ref.FinalValPPL {
		t.Fatalf("final ppl %v != %v with telemetry", got.FinalValPPL, ref.FinalValPPL)
	}
	refParams := refModel.Params().List()
	for i, p := range gotModel.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs bitwise with telemetry enabled", p.Name)
		}
	}
	if b.Len() == 0 {
		t.Fatalf("telemetry stream is empty")
	}
}

// zeroRun trains DP+ZeRO with an optional recorder and watchdog attached.
func zeroRun(t *testing.T, replicas int, seed uint64, rec *obs.TrainRecorder, wd *runlog.Watchdog) (Result, *nn.Model) {
	t.Helper()
	model, _, corpus := dpTestSetup(t, seed)
	opt := zero.NewSharded(func() optim.Optimizer {
		return optim.NewAdamW(optim.Hyper{LR: 1e-3, WeightDecay: 0.01})
	}, replicas)
	cfg := dpTestConfig(replicas)
	cfg.Telemetry = rec
	cfg.Watchdog = wd
	res := DPPretrain(model, opt, corpus, cfg)
	return res, model
}

// TestTelemetryStreamAndSummary checks the -telemetry surface end to end on
// a fused run: the JSONL stream parses, steps are sequential, per-step
// phases are positive and sum to at most the step's wall time, and the
// Result summary agrees with the stream.
func TestTelemetryStreamAndSummary(t *testing.T) {
	const seed = 5
	model, opt, corpus := dpTestSetup(t, seed)
	var b strings.Builder
	rec := obs.NewTrainRecorder(&b)
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 6, Seq: 16, Steps: 5, EvalEvery: 2, EvalBatches: 2, ClipNorm: 1.0,
		Telemetry: rec,
	})

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d step events, want 5", len(lines))
	}
	var streamWall, streamPhases float64
	for i, line := range lines {
		var ev obs.StepEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("step %d not valid JSON: %v\n%s", i, err, line)
		}
		if ev.Step != i+1 {
			t.Fatalf("step %d event carries step=%d", i, ev.Step)
		}
		if ev.Loss <= 0 || ev.GradNorm <= 0 || ev.LR <= 0 {
			t.Fatalf("step %d: non-positive loss/gradnorm/lr: %+v", i, ev)
		}
		var phaseSum float64
		for name, s := range ev.Phases {
			if s < 0 {
				t.Fatalf("step %d phase %s negative: %g", i, name, s)
			}
			phaseSum += s
		}
		// Fused-loop phases partition the step; allow slack for the
		// unattributed slivers between laps (loop bookkeeping, logging).
		if phaseSum > ev.WallSeconds*1.05+1e-4 {
			t.Fatalf("step %d phases sum to %g > wall %g", i, phaseSum, ev.WallSeconds)
		}
		for _, must := range []string{"data", "forward", "backward", "step"} {
			if ev.Phases[must] <= 0 {
				t.Fatalf("step %d missing phase %q: %v", i, must, ev.Phases)
			}
		}
		streamWall += ev.WallSeconds
		streamPhases += phaseSum
	}

	if res.PhaseSeconds == nil {
		t.Fatalf("Result.PhaseSeconds not populated")
	}
	if res.StepWallSeconds <= 0 {
		t.Fatalf("Result.StepWallSeconds = %g", res.StepWallSeconds)
	}
	if d := res.StepWallSeconds - streamWall; d > 1e-9 || d < -1e-9 {
		t.Fatalf("summary wall %g != streamed wall %g", res.StepWallSeconds, streamWall)
	}
	var summaryPhases float64
	for _, s := range res.PhaseSeconds {
		summaryPhases += s
	}
	if d := summaryPhases - streamPhases; d > 1e-9 || d < -1e-9 {
		t.Fatalf("summary phases %g != streamed phases %g", summaryPhases, streamPhases)
	}
	// The tracked phases must account for the bulk of the stepped wall time
	// (forward/backward dominate; slack covers scheduler noise on tiny models).
	if summaryPhases < 0.5*res.StepWallSeconds {
		t.Fatalf("phases cover only %g of %g wall seconds", summaryPhases, res.StepWallSeconds)
	}
}

// TestTelemetryDisabledLeavesResultUntouched pins the default: no recorder,
// no PhaseSeconds.
func TestTelemetryDisabledLeavesResultUntouched(t *testing.T) {
	model, opt, corpus := dpTestSetup(t, 3)
	res := Pretrain(model, opt, corpus, PretrainConfig{Batch: 4, Seq: 8, Steps: 2, EvalBatches: 1})
	if res.PhaseSeconds != nil || res.StepWallSeconds != 0 {
		t.Fatalf("untelemetered run populated telemetry fields: %+v %v", res.PhaseSeconds, res.StepWallSeconds)
	}
}
