package train

import (
	"fmt"
	"math"
	"testing"

	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

func dpTestSetup(t testing.TB, seed uint64) (*nn.Model, optim.Optimizer, *data.Corpus) {
	t.Helper()
	cfg := nn.Config{Vocab: 64, Dim: 16, Hidden: 40, Heads: 2, Layers: 2, MaxSeq: 32}
	model := nn.NewModel(cfg, tensor.NewRNG(seed))
	opt := optim.NewAdamW(optim.Hyper{LR: 1e-3})
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	src, err := data.NewSource(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(src, seed+1, seed+2)
	return model, opt, corpus
}

func dpTestConfig(replicas int) DPConfig {
	return DPConfig{
		PretrainConfig: PretrainConfig{
			Batch: 6, Seq: 16, Steps: 8, EvalEvery: 4, EvalBatches: 2, ClipNorm: 1.0,
			Schedule: optim.NewWarmupCosine(1e-3, 8),
		},
		Replicas: replicas,
	}
}

// dpRun trains a fresh model data-parallel and returns the result together
// with the trained model for weight comparison.
func dpRun(t *testing.T, replicas int, seed uint64) (Result, *nn.Model) {
	t.Helper()
	model, opt, corpus := dpTestSetup(t, seed)
	res := DPPretrain(model, opt, corpus, dpTestConfig(replicas))
	return res, model
}

// TestDPReplicaParity is the core determinism contract: the loss curve and
// final weights of a data-parallel run are bit-identical for every replica
// count, including the serial single-replica reference.
func TestDPReplicaParity(t *testing.T) {
	const seed = 42
	ref, refModel := dpRun(t, 1, seed)
	for _, n := range []int{2, 3, 4, 6} {
		n := n
		t.Run(fmt.Sprintf("replicas=%d", n), func(t *testing.T) {
			got, gotModel := dpRun(t, n, seed)
			if len(got.Series) != len(ref.Series) {
				t.Fatalf("series length %d != %d", len(got.Series), len(ref.Series))
			}
			for i := range ref.Series {
				if got.Series[i] != ref.Series[i] {
					t.Fatalf("metric %d differs:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
				}
			}
			if got.FinalValPPL != ref.FinalValPPL {
				t.Fatalf("final ppl %v != %v", got.FinalValPPL, ref.FinalValPPL)
			}
			refParams := refModel.Params().List()
			for i, p := range gotModel.Params().List() {
				if !p.W.Equal(refParams[i].W) {
					t.Fatalf("weight %s differs bitwise between 1 and %d replicas", p.Name, n)
				}
			}
		})
	}
}

// TestDPMatchesFused checks the DP gradient definition agrees with the
// classic fused full-batch loop to float tolerance — same math, different
// float32 summation order.
func TestDPMatchesFused(t *testing.T) {
	const seed = 7
	fusedModel, fusedOpt, fusedCorpus := dpTestSetup(t, seed)
	fused := Pretrain(fusedModel, fusedOpt, fusedCorpus, PretrainConfig{
		Batch: 6, Seq: 16, Steps: 6, EvalEvery: 0, EvalBatches: 2,
	})
	dpModel, dpOpt, dpCorpus := dpTestSetup(t, seed)
	dp := DPPretrain(dpModel, dpOpt, dpCorpus, DPConfig{
		PretrainConfig: PretrainConfig{Batch: 6, Seq: 16, Steps: 6, EvalEvery: 0, EvalBatches: 2},
		Replicas:       3,
	})
	if d := math.Abs(fused.Series[0].ValLoss - dp.Series[0].ValLoss); d > 1e-3 {
		t.Fatalf("fused vs DP final val loss differ by %v (%v vs %v)",
			d, fused.Series[0].ValLoss, dp.Series[0].ValLoss)
	}
	dpParams := dpModel.Params().List()
	for i, p := range fusedModel.Params().List() {
		if !p.W.AllClose(dpParams[i].W, 1e-3) {
			t.Fatalf("weight %s drifted beyond tolerance between fused and DP", p.Name)
		}
	}
}

// TestDPShardedLossMatchesFull checks the per-shard cross-entropy identity
// at one step: summed shard losses equal the full-batch loss to float64
// round-off when normalized by the global count.
func TestDPShardedLossMatchesFull(t *testing.T) {
	cfg := nn.Config{Vocab: 32, Dim: 8, Hidden: 24, Heads: 2, Layers: 1, MaxSeq: 16}
	model := nn.NewModel(cfg, tensor.NewRNG(3))
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 32
	src, err := data.NewSource(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(src, 5, 6)
	batch := corpus.NextTrainBatch(4, 8)
	counted := nn.CountTargets(batch.Targets, -1)

	logits := model.Forward(batch.Tokens, batch.B, batch.T)
	fullLoss, _ := nn.CrossEntropy(logits, batch.Targets, -1)

	var sum float64
	for s := 0; s < batch.B; s++ {
		lg := model.Forward(batch.Tokens[s*batch.T:(s+1)*batch.T], 1, batch.T)
		shardSum, _ := nn.CrossEntropyShard(lg, batch.Targets[s*batch.T:(s+1)*batch.T], -1, counted)
		sum += shardSum
	}
	if d := math.Abs(sum/float64(counted) - fullLoss); d > 1e-9 {
		t.Fatalf("sharded loss %v vs full %v (Δ %v)", sum/float64(counted), fullLoss, d)
	}
}

func BenchmarkDPPretrain(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			cfg := nn.Config{Vocab: 64, Dim: 32, Hidden: 88, Heads: 4, Layers: 2, MaxSeq: 64}
			srcCfg := data.DefaultSourceConfig()
			srcCfg.Vocab = 64
			src, err := data.NewSource(srcCfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model := nn.NewModel(cfg, tensor.NewRNG(1))
				opt := optim.NewAdamW(optim.Hyper{LR: 1e-3})
				corpus := data.NewCorpus(src, 2, 3)
				DPPretrain(model, opt, corpus, DPConfig{
					PretrainConfig: PretrainConfig{Batch: 8, Seq: 32, Steps: 4},
					Replicas:       replicas,
				})
			}
		})
	}
}
