package train

import (
	"math"
	"testing"

	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
	"apollo/internal/zero"
)

// TestBatchSpansCoverEveryExample pins the fine-tuning batching contract:
// the spans partition [0, n) exactly — no index dropped, none repeated —
// for divisible and non-divisible n alike.
func TestBatchSpansCoverEveryExample(t *testing.T) {
	cases := []struct {
		n, batch  int
		wantSpans int
	}{
		{n: 16, batch: 8, wantSpans: 2},
		{n: 17, batch: 8, wantSpans: 3}, // trailing short batch of 1
		{n: 23, batch: 8, wantSpans: 3}, // trailing short batch of 7
		{n: 5, batch: 8, wantSpans: 1},  // whole set smaller than one batch
		{n: 1, batch: 8, wantSpans: 1},
		{n: 0, batch: 8, wantSpans: 0},
		{n: 7, batch: 1, wantSpans: 7},
		{n: 7, batch: 0, wantSpans: 7}, // degenerate batch clamps to 1
	}
	for _, tc := range cases {
		spans := batchSpans(tc.n, tc.batch)
		if len(spans) != tc.wantSpans {
			t.Fatalf("batchSpans(%d,%d): %d spans, want %d", tc.n, tc.batch, len(spans), tc.wantSpans)
		}
		seen := make([]bool, tc.n)
		for _, s := range spans {
			if s[0] >= s[1] || s[1] > tc.n {
				t.Fatalf("batchSpans(%d,%d): bad span %v", tc.n, tc.batch, s)
			}
			for i := s[0]; i < s[1]; i++ {
				if seen[i] {
					t.Fatalf("batchSpans(%d,%d): index %d covered twice", tc.n, tc.batch, i)
				}
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("batchSpans(%d,%d): index %d never covered", tc.n, tc.batch, i)
			}
		}
	}
}

// TestFineTunePartialBatchTrains is the regression for the dropped trailing
// batch: a training set smaller than one batch used to yield zero optimizer
// steps (weights bit-identical to initialization) in every epoch.
func TestFineTunePartialBatchTrains(t *testing.T) {
	cfg := data.DefaultSourceConfig()
	cfg.Vocab = 64
	src, err := data.NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := data.GenerateFTTask(src, data.FTTaskConfig{
		Name: "partial", Train: 5, Test: 12, CtxLen: 8, Classes: 2, Noise: 0, Seed: 3,
	})
	model := testModel(21)
	before := model.Params().List()[0].W.Clone()
	acc := FineTune(model, optim.NewSGD(optim.Hyper{LR: 1e-2}, 0), task, FineTuneConfig{
		Epochs: 1, Batch: 8, Seed: 4,
	})
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of bounds", acc)
	}
	if model.Params().List()[0].W.Equal(before) {
		t.Fatal("5 examples at batch 8 trained nothing — trailing partial batch still dropped")
	}
}

// TestValidateNonPositiveBatches: zero or negative batch counts must return
// a clean 0 (perplexity 1), not the NaN of a division by zero.
func TestValidateNonPositiveBatches(t *testing.T) {
	model := testModel(22)
	corpus := testCorpus(t)
	for _, batches := range []int{0, -1, -100} {
		got := Validate(model, corpus, batches, 2, 8)
		if math.IsNaN(got) {
			t.Fatalf("Validate(batches=%d) = NaN", batches)
		}
		if got != 0 {
			t.Fatalf("Validate(batches=%d) = %v, want 0", batches, got)
		}
		if ppl := math.Exp(got); ppl != 1 {
			t.Fatalf("perplexity %v, want 1", ppl)
		}
	}
	if got := Validate(model, corpus, 2, 2, 8); got <= 0 || math.IsNaN(got) {
		t.Fatalf("positive-batch Validate %v not a positive loss", got)
	}
}

// TestFormatBytesNegative covers the sign handling for the negative deltas
// size-comparison tables print (positive thresholds are pinned by the
// existing TestFormatBytes).
func TestFormatBytesNegative(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{-512, "-512B"},
		{-(1 << 10), "-1.00K"},
		{-(3 << 20), "-3.00M"},
		{-(5 << 30), "-5.00G"},
		{math.MinInt64, "-8.00EG"},
	}
	for _, tc := range cases {
		if tc.in == math.MinInt64 {
			// Only the sign and magnitude-order matter at the overflow edge;
			// the switch has no EiB tier, so just require no panic and a
			// leading minus.
			got := FormatBytes(tc.in)
			if len(got) == 0 || got[0] != '-' {
				t.Fatalf("FormatBytes(MinInt64) = %q, want negative rendering", got)
			}
			continue
		}
		if got := FormatBytes(tc.in); got != tc.want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", tc.in, tc.want, got)
		}
	}
}

// maskedDPRun trains with every training batch fully ignore-masked (the
// counted==0 path) and returns the result plus the final weights.
func maskedDPRun(t *testing.T, opt optim.Optimizer, replicas int) (Result, []*tensor.Matrix) {
	t.Helper()
	cfg := nn.Config{Vocab: 64, Dim: 16, Hidden: 40, Heads: 2, Layers: 2, MaxSeq: 32}
	model := nn.NewModel(cfg, tensor.NewRNG(9))
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	src, err := data.NewSource(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(src, 10, 11)
	corpus.HookTrainBatch = func(b *data.Batch) {
		for i := range b.Targets {
			b.Targets[i] = -1
		}
	}
	res := DPPretrain(model, opt, corpus, DPConfig{
		PretrainConfig: PretrainConfig{
			Batch: 4, Seq: 8, Steps: 3, EvalEvery: 1, EvalBatches: 1,
		},
		Replicas: replicas,
	})
	var weights []*tensor.Matrix
	for _, p := range model.Params().List() {
		weights = append(weights, p.W.Clone())
	}
	return res, weights
}

// TestDPPretrainAllMaskedBatches covers the counted==0 branch in plain DP
// and under ZeRO sharding: every step reports zero training loss, the
// gradient is exactly zero (SGD leaves the weights bit-identical to
// initialization), and the replica-count determinism contract still holds.
func TestDPPretrainAllMaskedBatches(t *testing.T) {
	sgd := func() optim.Optimizer { return optim.NewSGD(optim.Hyper{LR: 0.1}, 0) }

	res1, w1 := maskedDPRun(t, sgd(), 1)
	res3, w3 := maskedDPRun(t, sgd(), 3)
	resZ, wZ := maskedDPRun(t, zero.NewSharded(sgd, 4), 4)

	for _, res := range []Result{res1, res3, resZ} {
		for _, m := range res.Series[:len(res.Series)-1] {
			if m.TrainLoss != 0 {
				t.Fatalf("[%s] step %d train loss %v, want 0 on an all-masked batch",
					res.Optimizer, m.Step, m.TrainLoss)
			}
			if math.IsNaN(m.ValLoss) {
				t.Fatalf("[%s] step %d val loss NaN", res.Optimizer, m.Step)
			}
		}
	}

	// Zero gradient: SGD's update is -lr·grad, so any weight drift would
	// mean a non-zero gradient leaked out of the masked path.
	init := nn.NewModel(nn.Config{Vocab: 64, Dim: 16, Hidden: 40, Heads: 2, Layers: 2, MaxSeq: 32}, tensor.NewRNG(9))
	for i, p := range init.Params().List() {
		if !w1[i].Equal(p.W) {
			t.Fatalf("param %d (%s) moved under an all-masked run — gradient not zero", i, p.Name)
		}
	}

	// Determinism contract: replicas 1, 3 and 4-with-ZeRO bit-identical.
	for i := range w1 {
		if !w3[i].Equal(w1[i]) {
			t.Fatalf("param %d differs between replicas 1 and 3 on masked batches", i)
		}
		if !wZ[i].Equal(w1[i]) {
			t.Fatalf("param %d differs between replicas 1 and 4-zero on masked batches", i)
		}
	}
	if res3.FinalValPPL != res1.FinalValPPL || resZ.FinalValPPL != res1.FinalValPPL {
		t.Fatalf("final ppl diverged: 1→%v 3→%v 4z→%v", res1.FinalValPPL, res3.FinalValPPL, resZ.FinalValPPL)
	}
}

// TestDPPretrainMixedMaskedBatches alternates fully masked and genuine
// batches so the counted==0 branch must hand a clean zeroed gradient state
// to the following real step, across replica counts.
func TestDPPretrainMixedMaskedBatches(t *testing.T) {
	run := func(replicas int, opt optim.Optimizer) (Result, []*tensor.Matrix) {
		cfg := nn.Config{Vocab: 64, Dim: 16, Hidden: 40, Heads: 2, Layers: 2, MaxSeq: 32}
		model := nn.NewModel(cfg, tensor.NewRNG(12))
		srcCfg := data.DefaultSourceConfig()
		srcCfg.Vocab = 64
		src, err := data.NewSource(srcCfg)
		if err != nil {
			t.Fatal(err)
		}
		corpus := data.NewCorpus(src, 13, 14)
		calls := 0
		corpus.HookTrainBatch = func(b *data.Batch) {
			if calls%2 == 0 {
				for i := range b.Targets {
					b.Targets[i] = -1
				}
			}
			calls++
		}
		res := DPPretrain(model, opt, corpus, DPConfig{
			PretrainConfig: PretrainConfig{Batch: 4, Seq: 8, Steps: 4, EvalEvery: 1, EvalBatches: 1},
			Replicas:       replicas,
		})
		var ws []*tensor.Matrix
		for _, p := range model.Params().List() {
			ws = append(ws, p.W.Clone())
		}
		return res, ws
	}

	adamw := func() optim.Optimizer { return optim.NewAdamW(optim.Hyper{LR: 1e-3}) }
	res1, w1 := run(1, adamw())
	res4, w4 := run(4, adamw())
	resZ, wZ := run(3, zero.NewSharded(adamw, 3))

	for _, res := range []Result{res1, res4, resZ} {
		for i, m := range res.Series[:len(res.Series)-1] {
			masked := i%2 == 0
			if masked && m.TrainLoss != 0 {
				t.Fatalf("[%s] masked step %d train loss %v, want 0", res.Optimizer, m.Step, m.TrainLoss)
			}
			if !masked && m.TrainLoss == 0 {
				t.Fatalf("[%s] genuine step %d train loss 0", res.Optimizer, m.Step)
			}
		}
	}
	for i := range w1 {
		if !w4[i].Equal(w1[i]) || !wZ[i].Equal(w1[i]) {
			t.Fatalf("param %d diverged across replica counts with mixed masked batches", i)
		}
	}
}
