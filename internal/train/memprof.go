// Live memory accounting for the training loops: wiring the loops' resident
// tensors and the optimizer's introspection hooks into a memprof.Profiler's
// component ledger. Everything here is observational — the closures read byte
// counts the loops already own and feed nothing back, so a profiled run is
// bit-identical to an unprofiled one (TestMemprofParity*).
package train

import (
	"apollo/internal/nn"
	"apollo/internal/obs/memprof"
	"apollo/internal/optim"
)

// paramListBytes sums the float32 storage of a parameter list's weights and
// (when allocated) gradients.
func paramListBytes(params []*nn.Param) (weights, grads int64) {
	for _, p := range params {
		weights += 4 * int64(p.W.NumEl())
		if p.Grad != nil {
			grads += 4 * int64(p.Grad.NumEl())
		}
	}
	return weights, grads
}

// instrumentMemory registers the fused loop's components on the profiler:
// weights and grads (fixed once the model exists) plus live optimizer state.
// When the optimizer exposes optim.StateIntrospector, its state splits into
// the introspected per-parameter moments ("optimizer_state") and whatever
// StateBytes reports beyond them ("projector_scratch" — projection buffers,
// quantization tables); the two always sum to the measured StateBytes, so
// the ledger total never double-counts. Without introspection the whole
// measured footprint lands in "optimizer_state".
func instrumentMemory(mp *memprof.Profiler, params []*nn.Param, opt optim.Optimizer) {
	if mp == nil {
		return
	}
	weights, grads := paramListBytes(params)
	mp.Set(memprof.CompWeights, weights)
	mp.Set(memprof.CompGrads, grads)
	if si, ok := opt.(optim.StateIntrospector); ok {
		moments := func() int64 {
			var elems int64
			for _, p := range params {
				elems += si.StateElemsFor(p)
			}
			return 4 * elems
		}
		mp.Track(memprof.CompOptimizerState, func() int64 {
			m, total := moments(), opt.StateBytes()
			if m > total {
				return total // introspection over-promises; report measured
			}
			return m
		})
		mp.Track(memprof.CompProjectorScratch, func() int64 {
			if extra := opt.StateBytes() - moments(); extra > 0 {
				return extra
			}
			return 0
		})
	} else {
		mp.Track(memprof.CompOptimizerState, func() int64 { return opt.StateBytes() })
	}
}

// instrumentDPMemory adds the data-parallel loop's extra residents on top of
// the fused set: the per-sequence gradient leaves and the replica models
// (weights + grads each). Under ZeRO the optimizer state is registered as
// one component per shard *instead of* the aggregate "optimizer_state" —
// the shards partition the measured state exactly (ReplicaStateBytes sums
// to StateBytes), so the ledger total stays double-count free while showing
// the ~1/N split the sharding buys.
func instrumentDPMemory(mp *memprof.Profiler, master []*nn.Param, opt optim.Optimizer,
	reps []*dpReplica, leafBytes int64, sharder optim.ShardedStepper) {
	if mp == nil {
		return
	}
	if sharder == nil {
		instrumentMemory(mp, master, opt)
	} else {
		weights, grads := paramListBytes(master)
		mp.Set(memprof.CompWeights, weights)
		mp.Set(memprof.CompGrads, grads)
		for s := 0; s < sharder.Shards(); s++ {
			mp.Track(memprof.ShardComponent(s), func() int64 {
				return sharder.ReplicaStateBytes()[s]
			})
		}
	}
	mp.Set(memprof.CompDPGradLeaves, leafBytes)
	var repBytes int64
	for _, rep := range reps {
		w, g := paramListBytes(rep.params)
		repBytes += w + g
	}
	mp.Set(memprof.CompDPReplicas, repBytes)
}
