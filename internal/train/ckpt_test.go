package train

import (
	"path/filepath"
	"testing"

	"apollo/internal/ckpt"
	"apollo/internal/core"
	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
	"apollo/internal/zero"
)

// ckptBuilders is the checkpoint acceptance zoo: every optimizer the
// resume-parity contract names, with small ranks and short refresh gaps so
// the 8-step horizon crosses projection refreshes and limiter updates —
// the state a naive checkpoint would drop.
func ckptBuilders() []struct {
	name  string
	build func() optim.Optimizer
} {
	h := optim.Hyper{LR: 1e-3, WeightDecay: 0.01}
	return []struct {
		name  string
		build func() optim.Optimizer
	}{
		{"AdamW", func() optim.Optimizer { return optim.NewAdamW(h) }},
		{"APOLLO", func() optim.Optimizer {
			return core.New(h, core.Config{Rank: 4, Seed: 11, UpdateGap: 3})
		}},
		{"APOLLO-Mini", func() optim.Optimizer { return core.NewMini(h) }},
		{"GaLore", func() optim.Optimizer {
			return optim.NewGaLore(h, optim.LowRankConfig{Rank: 4, Seed: 11, UpdateGap: 3})
		}},
		{"Fira", func() optim.Optimizer {
			return optim.NewFira(h, optim.LowRankConfig{Rank: 4, Seed: 11, UpdateGap: 3})
		}},
		{"Flora", func() optim.Optimizer {
			return optim.NewFlora(h, optim.LowRankConfig{Rank: 4, Seed: 11, UpdateGap: 3})
		}},
		{"SGD", func() optim.Optimizer { return optim.NewSGD(h, 0.9) }},
		{"Adam-mini", func() optim.Optimizer { return optim.NewAdamMini(h) }},
	}
}

func ckptTestSetup(t testing.TB, seed uint64) (*nn.Model, *data.Corpus) {
	t.Helper()
	cfg := nn.Config{Vocab: 64, Dim: 16, Hidden: 40, Heads: 2, Layers: 2, MaxSeq: 32}
	model := nn.NewModel(cfg, tensor.NewRNG(seed))
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 64
	src, err := data.NewSource(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	return model, data.NewCorpus(src, seed+1, seed+2)
}

func ckptTestConfig(steps int) PretrainConfig {
	return PretrainConfig{
		Batch: 6, Seq: 16, Steps: steps, EvalEvery: 2, EvalBatches: 2, ClipNorm: 1.0,
		Schedule: optim.NewWarmupCosine(1e-3, 8),
	}
}

// requireSameTail compares the resumed run's metric series and final
// perplexity against the straight-through run: every eval point the
// resumed run produced must match the reference's tail bit-for-bit.
func requireSameTail(t *testing.T, ref, got Result) {
	t.Helper()
	if len(got.Series) > len(ref.Series) {
		t.Fatalf("resumed series has %d points, reference %d", len(got.Series), len(ref.Series))
	}
	tail := ref.Series[len(ref.Series)-len(got.Series):]
	for i := range got.Series {
		if got.Series[i] != tail[i] {
			t.Fatalf("metric %d differs:\n  got  %+v\n  want %+v", i, got.Series[i], tail[i])
		}
	}
	if got.FinalValPPL != ref.FinalValPPL {
		t.Fatalf("final ppl %v != %v", got.FinalValPPL, ref.FinalValPPL)
	}
}

func requireSameWeights(t *testing.T, ref, got *nn.Model, label string) {
	t.Helper()
	refParams := ref.Params().List()
	for i, p := range got.Params().List() {
		if !p.W.Equal(refParams[i].W) {
			t.Fatalf("weight %s differs bitwise (%s)", p.Name, label)
		}
	}
}

// TestCheckpointResumeParity is the tentpole acceptance contract: for every
// named optimizer, *train K steps → checkpoint → resume K more* reproduces
// an uninterrupted 2K-step run float-for-float — weights, metric series and
// final loss. K=4 crosses the UpdateGap=3 projection refreshes, so the
// snapshot provably carries projector seeds and RNG phase, not just moments.
func TestCheckpointResumeParity(t *testing.T) {
	const seed = 42
	const k = 4
	for _, b := range ckptBuilders() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			refModel, refCorpus := ckptTestSetup(t, seed)
			ref := Pretrain(refModel, b.build(), refCorpus, ckptTestConfig(2*k))

			// Interrupted run: K steps with a checkpoint written at step K.
			path := filepath.Join(t.TempDir(), "run.ckpt")
			halfModel, halfCorpus := ckptTestSetup(t, seed)
			halfCfg := ckptTestConfig(k)
			halfCfg.CkptEvery = k
			halfCfg.CkptPath = path
			Pretrain(halfModel, b.build(), halfCorpus, halfCfg)

			// Resume into entirely fresh objects.
			st, err := ckpt.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Step != k {
				t.Fatalf("checkpoint at step %d, want %d", st.Step, k)
			}
			resModel, resCorpus := ckptTestSetup(t, seed)
			resOpt := b.build()
			if err := ckpt.Restore(st, resModel.Params().List(), resOpt, resCorpus); err != nil {
				t.Fatal(err)
			}
			resCfg := ckptTestConfig(2 * k)
			resCfg.StartStep = k
			got := Pretrain(resModel, resOpt, resCorpus, resCfg)

			requireSameTail(t, ref, got)
			requireSameWeights(t, refModel, resModel, "straight vs save/resume")
		})
	}
}

// TestElasticReshardParity is the headline elasticity contract: a
// checkpoint written by a `-replicas 3 -zero` run resumes under
// `-replicas 4 -zero` AND under a plain unsharded `-replicas 1` run, both
// reproducing the uninterrupted single-replica reference float-for-float.
// The canonical on-disk layout never mentions the world size: save gathers
// shard-owned row segments, resume re-slices them for the new partition.
func TestElasticReshardParity(t *testing.T) {
	const seed = 42
	const k = 4
	builders := ckptBuilders()
	for _, b := range builders {
		switch b.name {
		case "AdamW", "APOLLO", "GaLore": // dense-split, projected, projected+SVD coverage
		default:
			continue
		}
		b := b
		t.Run(b.name, func(t *testing.T) {
			refModel, refCorpus := ckptTestSetup(t, seed)
			ref := DPPretrain(refModel, b.build(), refCorpus, DPConfig{
				PretrainConfig: ckptTestConfig(2 * k), Replicas: 1,
			})

			// Phase 1: K steps sharded across 3 replicas, checkpoint at K.
			path := filepath.Join(t.TempDir(), "zero.ckpt")
			halfModel, halfCorpus := ckptTestSetup(t, seed)
			halfCfg := ckptTestConfig(k)
			halfCfg.CkptEvery = k
			halfCfg.CkptPath = path
			DPPretrain(halfModel, zero.NewSharded(b.build, 3), halfCorpus, DPConfig{
				PretrainConfig: halfCfg, Replicas: 3,
			})
			st, err := ckpt.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Resume A: reshard 3 → 4.
			t.Run("reshard-3to4", func(t *testing.T) {
				m, c := ckptTestSetup(t, seed)
				opt := zero.NewSharded(b.build, 4)
				if err := ckpt.Restore(st, m.Params().List(), opt, c); err != nil {
					t.Fatal(err)
				}
				cfg := ckptTestConfig(2 * k)
				cfg.StartStep = k
				got := DPPretrain(m, opt, c, DPConfig{PretrainConfig: cfg, Replicas: 4})
				requireSameTail(t, ref, got)
				requireSameWeights(t, refModel, m, "zero x3 → zero x4")
			})

			// Resume B: unshard entirely.
			t.Run("unshard", func(t *testing.T) {
				m, c := ckptTestSetup(t, seed)
				opt := b.build()
				if err := ckpt.Restore(st, m.Params().List(), opt, c); err != nil {
					t.Fatal(err)
				}
				cfg := ckptTestConfig(2 * k)
				cfg.StartStep = k
				got := DPPretrain(m, opt, c, DPConfig{PretrainConfig: cfg, Replicas: 1})
				requireSameTail(t, ref, got)
				requireSameWeights(t, refModel, m, "zero x3 → unsharded")
			})
		})
	}
}

// TestShardCheckpointOfUnshardedRun covers the remaining direction: a plain
// fused-loop checkpoint resumes under ZeRO sharding.
func TestShardCheckpointOfUnshardedRun(t *testing.T) {
	const seed = 9
	const k = 4
	h := optim.Hyper{LR: 1e-3, WeightDecay: 0.01}
	build := func() optim.Optimizer {
		return core.New(h, core.Config{Rank: 4, Seed: 11, UpdateGap: 3})
	}

	refModel, refCorpus := ckptTestSetup(t, seed)
	ref := DPPretrain(refModel, build(), refCorpus, DPConfig{
		PretrainConfig: ckptTestConfig(2 * k), Replicas: 1,
	})

	path := filepath.Join(t.TempDir(), "plain.ckpt")
	halfModel, halfCorpus := ckptTestSetup(t, seed)
	halfCfg := ckptTestConfig(k)
	halfCfg.CkptEvery = k
	halfCfg.CkptPath = path
	DPPretrain(halfModel, build(), halfCorpus, DPConfig{PretrainConfig: halfCfg, Replicas: 1})

	st, err := ckpt.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, c := ckptTestSetup(t, seed)
	opt := zero.NewSharded(build, 4)
	if err := ckpt.Restore(st, m.Params().List(), opt, c); err != nil {
		t.Fatal(err)
	}
	cfg := ckptTestConfig(2 * k)
	cfg.StartStep = k
	got := DPPretrain(m, opt, c, DPConfig{PretrainConfig: cfg, Replicas: 4})
	requireSameTail(t, ref, got)
	requireSameWeights(t, refModel, m, "unsharded → zero x4")
}
