package train

import (
	"fmt"
	"math"
	"testing"

	"apollo/internal/optim"
)

// accumRun trains a fresh model through the fused loop with the given
// accumulation factor at a fixed global batch.
func accumRun(t *testing.T, accum int, seed uint64) (Result, []float32) {
	t.Helper()
	model, opt, corpus := dpTestSetup(t, seed)
	res := Pretrain(model, opt, corpus, PretrainConfig{
		Batch: 8, Seq: 16, Steps: 6, EvalEvery: 3, EvalBatches: 2, ClipNorm: 1.0,
		Schedule: optim.NewWarmupCosine(1e-3, 6),
		Accum:    accum,
	})
	var flat []float32
	for _, p := range model.Params().List() {
		flat = append(flat, p.W.Data...)
	}
	return res, flat
}

// TestAccumParity checks the gradient-accumulation contract: Accum=k at the
// same global batch reproduces Accum=1 — identical math (micro-batch
// cross-entropy is normalized by the global target count), differing only
// in float32 summation order, so the comparison is tolerance-based exactly
// like the fused-vs-DP precedent.
func TestAccumParity(t *testing.T) {
	const seed = 21
	ref, refW := accumRun(t, 1, seed)
	for _, accum := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("accum=%d", accum), func(t *testing.T) {
			got, gotW := accumRun(t, accum, seed)
			if len(got.Series) != len(ref.Series) {
				t.Fatalf("series length %d != %d", len(got.Series), len(ref.Series))
			}
			for i := range ref.Series {
				if d := math.Abs(got.Series[i].ValLoss - ref.Series[i].ValLoss); d > 1e-3 {
					t.Fatalf("metric %d val loss drifted %v (accum=%d %v vs accum=1 %v)",
						i, d, accum, got.Series[i].ValLoss, ref.Series[i].ValLoss)
				}
			}
			for i := range refW {
				if d := math.Abs(float64(gotW[i] - refW[i])); d > 1e-3 {
					t.Fatalf("weight %d drifted %v beyond tolerance", i, d)
				}
			}
		})
	}
}

// TestAccumClampsToDivisor documents the rounding rule: an Accum that does
// not divide Batch is reduced to the largest divisor, and Accum > Batch
// degrades to per-sequence micro-batches.
func TestAccumClampsToDivisor(t *testing.T) {
	const seed = 22
	// Batch 8: Accum 5,6,7 → 4; Accum 16 → 8. Equivalence with the
	// explicit divisor is exact (same micro-batch split, same float order).
	for _, pair := range [][2]int{{5, 4}, {6, 4}, {16, 8}} {
		_, got := accumRun(t, pair[0], seed)
		_, want := accumRun(t, pair[1], seed)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("accum=%d did not clamp to %d (weight %d differs)", pair[0], pair[1], i)
			}
		}
	}
}
