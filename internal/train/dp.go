// Data-parallel pre-training: the measured counterpart of the DDP mechanism
// internal/cluster simulates. A global batch is sharded across N model
// replicas, each replica runs forward/backward concurrently on its shard,
// and gradients are all-reduced before a single optimizer step on the
// master parameters — so the cluster simulator's predicted speedup and the
// speedup measured here can be compared directly (see `apollo-bench -run
// runtime` and BENCH_runtime.json).
//
// Determinism contract. The gradient of a global batch is *defined* as the
// balanced binary-tree sum of per-sequence gradient leaves, and the loss as
// the same tree over per-sequence loss sums; cross-entropy normalizes every
// shard by the global target count (nn.CrossEntropyShard). Leaves and tree
// depend only on the batch — never on the replica count or scheduling — so
// DPPretrain is bit-identical for any Replicas value: `-replicas 4`
// reproduces `-replicas 1` exactly, float by float. (The classic fused
// Pretrain loop computes the same mathematical gradient in one big
// forward/backward; its float32 rounding differs, so DP runs are compared
// against DP runs and the fused loop stays the default for single-process
// training.)
package train

import (
	"math"
	"sync"
	"time"

	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// DPConfig controls a data-parallel pre-training run.
type DPConfig struct {
	PretrainConfig
	// Replicas is the number of model replicas sharding each batch
	// (clamped to [1, Batch]). Results are bit-identical for every value.
	Replicas int
}

// dpReplica is one model copy with its parameter list cached.
type dpReplica struct {
	model  *nn.Model
	params []*nn.Param
}

// DPPretrain runs the causal-LM loop of Pretrain with data-parallel
// gradient computation. model holds the master weights; opt steps them.
//
// ZeRO extension. When opt implements optim.ShardedStepper (zero.Sharded),
// the optimizer step itself is partitioned: each shard's inner optimizer
// runs concurrently on the shard's owner, and the updated weights reach
// the other replicas through a per-shard binomial-tree broadcast — the
// weight-side mirror of the gradient all-reduce tree. Broadcast copies are
// float-exact, so the sharded run stays bit-identical to `-replicas 1`
// while each replica's resident optimizer state drops to ~1/N (see
// Result.ReplicaStateBytes and internal/zero's determinism contract).
func DPPretrain(model *nn.Model, opt optim.Optimizer, corpus *data.Corpus, cfg DPConfig) Result {
	pcfg := cfg.PretrainConfig.withDefaults()
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	if replicas > pcfg.Batch {
		replicas = pcfg.Batch
	}

	start := time.Now()
	master := model.Params().List()
	var paramBytes int64
	for _, p := range master {
		paramBytes += 4 * int64(p.NumEl())
	}

	reps := make([]*dpReplica, replicas)
	for r := range reps {
		rm := nn.NewModel(model.Cfg, tensor.NewRNG(uint64(r)+1))
		reps[r] = &dpReplica{model: rm, params: rm.Params().List()}
	}

	sharder, sharded := opt.(optim.ShardedStepper)
	if sharded {
		sharder.Init(master)
		// One-time full sync: thereafter replicas stay current through the
		// per-step weight broadcast instead of a master → replica copy.
		for _, rep := range reps {
			for i, p := range master {
				rep.params[i].W.CopyFrom(p.W)
			}
		}
	}
	var allReduceBytes, broadcastBytes int64

	// One gradient leaf per sequence of the global batch, plus its loss sum.
	b, t := pcfg.Batch, pcfg.Seq
	leaves := make([][]*tensor.Matrix, b)
	for s := range leaves {
		bufs := make([]*tensor.Matrix, len(master))
		for i, p := range master {
			bufs[i] = tensor.NewMatrix(p.W.Rows, p.W.Cols)
		}
		leaves[s] = bufs
	}
	lossSums := make([]float64, b)

	rec := pcfg.Telemetry
	wd := pcfg.Watchdog
	if pcfg.MemProf != nil {
		var sh optim.ShardedStepper
		if sharded {
			sh = sharder
		}
		leafBytes := int64(b) * paramBytes
		instrumentDPMemory(pcfg.MemProf, master, opt, reps, leafBytes, sh)
	}
	timed := rec != nil || wd != nil
	endStep := pcfg.Steps
	// Per-replica forward/backward wall time for the concurrent compute
	// section; merged into the phase clock after the join, so no atomics.
	repFwd := make([]time.Duration, replicas)
	repBwd := make([]time.Duration, replicas)

	var series []Metric
	for step := pcfg.StartStep; step < pcfg.Steps; step++ {
		var stepStart time.Time
		if timed {
			stepStart = time.Now()
		}
		pc := phaseClock{on: rec != nil, mark: stepStart}
		if pcfg.Schedule != nil {
			opt.SetLR(pcfg.Schedule.At(step))
		}
		batch := corpus.NextTrainBatch(b, t)
		counted := nn.CountTargets(batch.Targets, -1)
		pc.lap(obs.PhaseData)

		// Broadcast master weights to every replica (the DDP sync point).
		// Under ZeRO this already happened through the post-step shard
		// broadcast, so the copy (and its comm volume) is skipped.
		if !sharded {
			for _, rep := range reps {
				for i, p := range master {
					rep.params[i].W.CopyFrom(p.W)
				}
			}
			broadcastBytes += int64(replicas) * paramBytes
		}
		pc.lap(obs.PhaseBroadcast)

		// A batch with no non-ignored targets has zero loss and zero
		// gradient (the fused CrossEntropy convention); skip the shard
		// compute rather than hand CrossEntropyShard a zero normalizer.
		if counted == 0 {
			for s := range leaves {
				for _, buf := range leaves[s] {
					buf.Zero()
				}
				lossSums[s] = 0
			}
		}

		// Concurrent sharded forward/backward: replica r owns the
		// contiguous sequence range [r·B/N, (r+1)·B/N). With telemetry on,
		// each replica times its own forward/backward halves — the split
		// calls are LossShard spelled out, so the bits are unchanged — and
		// the main goroutine merges them after the join.
		var wg sync.WaitGroup
		for r := 0; r < replicas && counted > 0; r++ {
			lo, hi := r*b/replicas, (r+1)*b/replicas
			wg.Add(1)
			go func(rep *dpReplica, lo, hi, r int) {
				defer wg.Done()
				var fwd, bwd time.Duration
				for s := lo; s < hi; s++ {
					rep.model.Params().ZeroGrad()
					toks := batch.Tokens[s*t : (s+1)*t]
					tgts := batch.Targets[s*t : (s+1)*t]
					if pc.on {
						t0 := time.Now()
						logits := rep.model.Forward(toks, 1, t)
						t1 := time.Now()
						fwd += t1.Sub(t0)
						sum, dlogits := nn.CrossEntropyShard(logits, tgts, -1, counted)
						rep.model.Backward(dlogits)
						bwd += time.Since(t1)
						lossSums[s] = sum
					} else {
						lossSums[s] = rep.model.LossShard(toks, tgts, 1, t, counted)
					}
					for i, p := range rep.params {
						leaves[s][i].CopyFrom(p.Grad)
					}
				}
				repFwd[r], repBwd[r] = fwd, bwd
			}(reps[r], lo, hi, r)
		}
		wg.Wait()
		if pc.on {
			for r := 0; r < replicas; r++ {
				pc.d[obs.PhaseForward] += repFwd[r]
				pc.d[obs.PhaseBackward] += repBwd[r]
			}
			pc.skip() // section wall time is carried by the replica sums
		}

		// All-reduce: balanced binary tree over leaf indices. The pairing
		// depends only on B, so the float32 sums are replica-count
		// independent. The result lands in leaf 0.
		for stride := 1; stride < b; stride *= 2 {
			for i := 0; i+stride < b; i += 2 * stride {
				for j := range leaves[i] {
					tensor.AddInPlace(leaves[i][j], leaves[i+stride][j])
				}
				lossSums[i] += lossSums[i+stride]
				allReduceBytes += paramBytes
			}
		}
		for i, p := range master {
			p.Grad.CopyFrom(leaves[0][i])
		}
		loss := 0.0
		if counted > 0 {
			loss = lossSums[0] / float64(counted)
		}
		pc.lap(obs.PhaseAllReduce)
		var gradNorm float64
		if timed {
			gradNorm = model.Params().GradNorm()
		}

		if pcfg.ClipNorm > 0 {
			model.Params().ClipGradNorm(pcfg.ClipNorm)
		}
		if sharded {
			// ZeRO phase 1: each owner replica steps only its shard of the
			// master parameters — disjoint sets, so shards run concurrently.
			var sg sync.WaitGroup
			for s := 0; s < sharder.Shards(); s++ {
				sg.Add(1)
				go func(s int) {
					defer sg.Done()
					sharder.StepShard(s)
				}(s)
			}
			sg.Wait()
			pc.lap(obs.PhaseStep)
			// ZeRO phase 2: binomial-tree broadcast of each updated shard
			// from its owner to the other replicas.
			broadcastBytes += broadcastShards(reps, master, sharder, replicas)
			pc.lap(obs.PhaseBroadcast)
		} else {
			opt.Step(master)
			pc.lap(obs.PhaseStep)
		}
		// Checkpoint after the optimizer step (and, under ZeRO, after the
		// broadcast): master weights are current and a Sharded optimizer
		// gathers its shard-owned state into the canonical layout, so the
		// snapshot resumes under any world size.
		maybeCheckpoint(pcfg, step, master, opt, corpus)
		pc.lap(obs.PhaseCheckpoint)

		if pcfg.EvalEvery > 0 && (step+1)%pcfg.EvalEvery == 0 {
			val := Validate(model, corpus, pcfg.EvalBatches, b, t)
			series = append(series, Metric{
				Step: step + 1, TrainLoss: loss, ValLoss: val,
				ValPPL: math.Exp(val), LR: opt.LR(),
			})
			pcfg.Logf("[%s x%d] step %d/%d train %.4f val ppl %.2f",
				opt.Name(), replicas, step+1, pcfg.Steps, loss, math.Exp(val))
		}
		pc.lap(obs.PhaseEval)
		var wall time.Duration
		if timed {
			wall = time.Since(stepStart)
		}
		if rec != nil {
			rec.RecordStep(step+1, loss, gradNorm, opt.LR(), wall, pc.d)
		}
		pcfg.MemProf.ObserveStep(step + 1)
		if wd.ObserveStep(step+1, loss, gradNorm, wall.Seconds()) {
			endStep = step + 1
			pcfg.Logf("[%s x%d] step %d: watchdog halt", opt.Name(), replicas, endStep)
			break
		}
	}
	final := Validate(model, corpus, pcfg.EvalBatches, b, t)
	series = append(series, Metric{
		Step: endStep, ValLoss: final, ValPPL: math.Exp(final), LR: opt.LR(),
	})
	var perReplica []int64
	if sharded {
		perReplica = sharder.ReplicaStateBytes()
	} else {
		perReplica = make([]int64, replicas)
		for i := range perReplica {
			perReplica[i] = opt.StateBytes() // plain DP replicates full state
		}
	}
	res := Result{
		Optimizer:         opt.Name(),
		Series:            series,
		FinalValPPL:       math.Exp(final),
		StateBytes:        opt.StateBytes(),
		WallSeconds:       time.Since(start).Seconds(),
		Steps:             endStep,
		ReplicaStateBytes: perReplica,
		AllReduceBytes:    allReduceBytes,
		BroadcastBytes:    broadcastBytes,
	}
	summarizeTelemetry(&res, rec)
	summarizeWatchdog(&res, wd, endStep)
	return res
}

// broadcastShards distributes each shard's freshly stepped master weights
// to every replica with a binomial tree rooted at the shard's owner: the
// owner copies its shard locally (its own update — no traffic), then in
// round k every replica holding the shard forwards it stride=2^k ranks
// ahead, exactly the log₂(N)-depth pattern of the gradient all-reduce.
// Shards cover disjoint parameter indices, so their trees run concurrently.
// Copies are float-exact; the returned byte count covers only the
// inter-replica transfers.
func broadcastShards(reps []*dpReplica, master []*nn.Param, sharder optim.ShardedStepper, replicas int) int64 {
	var moved int64
	var wg sync.WaitGroup
	for s := 0; s < sharder.Shards(); s++ {
		segs := sharder.OwnedSegments(s)
		if len(segs) == 0 {
			continue
		}
		var shardBytes int64
		for _, sg := range segs {
			shardBytes += 4 * int64((sg.Row1-sg.Row0)*master[sg.Param].W.Cols)
		}
		owner := s % replicas
		moved += shardBytes * int64(replicas-1)
		wg.Add(1)
		go func(segs []optim.Segment, owner int) {
			defer wg.Done()
			copySegs := func(dst, src *dpReplica) {
				for _, sg := range segs {
					lo := sg.Row0 * master[sg.Param].W.Cols
					hi := sg.Row1 * master[sg.Param].W.Cols
					copy(dst.params[sg.Param].W.Data[lo:hi], src.params[sg.Param].W.Data[lo:hi])
				}
			}
			// The owner's copy from master is its own freshly stepped
			// update — local, no traffic.
			for _, sg := range segs {
				lo := sg.Row0 * master[sg.Param].W.Cols
				hi := sg.Row1 * master[sg.Param].W.Cols
				copy(reps[owner].params[sg.Param].W.Data[lo:hi], master[sg.Param].W.Data[lo:hi])
			}
			for stride := 1; stride < replicas; stride *= 2 {
				for rel := 0; rel < stride && rel+stride < replicas; rel++ {
					copySegs(reps[(owner+rel+stride)%replicas], reps[(owner+rel)%replicas])
				}
			}
		}(segs, owner)
	}
	wg.Wait()
	return moved
}
