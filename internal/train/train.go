// Package train provides the training loops shared by every experiment:
// causal-LM pre-training with periodic validation (the protocol behind
// Tables 2/3/8/9 and Figs. 2/3/5/6/7) and classification-as-LM fine-tuning
// (Tables 5/6). Loops are deterministic given their seeds and record full
// metric series so the figure runners can emit curves.
package train

import (
	"fmt"
	"math"
	"time"

	"apollo/internal/ckpt"
	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/obs/memprof"
	"apollo/internal/obs/runlog"
	"apollo/internal/optim"
)

// Metric is one evaluation point during training.
type Metric struct {
	Step      int
	TrainLoss float64
	ValLoss   float64
	ValPPL    float64
	LR        float64
}

// Result summarizes one training run.
type Result struct {
	Optimizer   string
	Series      []Metric
	FinalValPPL float64
	StateBytes  int64
	WallSeconds float64
	Steps       int
	// ReplicaStateBytes is the per-replica optimizer-state footprint of a
	// data-parallel run: under ZeRO sharding each entry is one shard's
	// resident state (~StateBytes/N); in plain DP every replica holds the
	// full state, so each entry equals StateBytes. Nil for fused runs.
	ReplicaStateBytes []int64
	// AllReduceBytes counts the gradient bytes actually merged by the
	// balanced-tree all-reduce over the whole run ((B−1)·P·4 per step).
	AllReduceBytes int64
	// BroadcastBytes counts the weight bytes copied between replicas over
	// the whole run: master→replica sync copies in plain DP, the per-shard
	// binomial-tree broadcast under ZeRO ((N−1)·P·4 per step).
	BroadcastBytes int64
	// PhaseSeconds breaks the run's per-step wall time down by phase
	// (obs.Phase names: data, forward, backward, allreduce, step, broadcast,
	// checkpoint, eval). Nil unless PretrainConfig.Telemetry was set. The
	// fused loop's phases partition each step's wall time exactly; the DP
	// loop's forward/backward are summed across concurrently running
	// replicas and can exceed it.
	PhaseSeconds map[string]float64
	// StepWallSeconds is the wall time spent inside training steps (the sum
	// RecordStep saw), excluding the final out-of-loop validation. Zero
	// unless PretrainConfig.Telemetry was set.
	StepWallSeconds float64
	// Halted is set when the watchdog aborted the run (halt-on-divergence):
	// HaltStep is the last completed step and HaltReason the alert kind that
	// tripped. Steps then reports HaltStep, not the configured target.
	Halted     bool
	HaltStep   int
	HaltReason string
}

// PretrainConfig controls a pre-training run.
type PretrainConfig struct {
	Batch       int
	Seq         int
	Steps       int
	EvalEvery   int // 0 = only final eval
	EvalBatches int
	Schedule    optim.Schedule
	// ClipNorm applies global gradient clipping when > 0 (the AdamW/GaLore
	// recipe; APOLLO relies on its norm-growth limiter instead).
	ClipNorm float64
	// Accum splits each global batch into Accum gradient-accumulation
	// micro-batches in the fused loop, decoupling the global batch size
	// from resident activation memory: only Batch/Accum sequences of
	// activations are live at once while the optimizer still sees the
	// full-batch gradient (cross-entropy is normalized by the global
	// target count, so Accum=k matches Accum=1 up to float32 summation
	// order — see TestAccumParity). Values that do not divide Batch are
	// reduced to the largest divisor. The DP trainer ignores Accum: its
	// per-sequence gradient leaves already keep one sequence of
	// activations per replica.
	Accum int
	// CkptEvery > 0 saves a checkpoint to CkptPath after every CkptEvery-th
	// step (internal/ckpt format, written atomically — a crash mid-save
	// never destroys the previous snapshot). The optimizer must implement
	// optim.StateSaver; a failed save panics, since silently continuing
	// without durability is worse than stopping.
	CkptEvery int
	CkptPath  string
	// StartStep resumes the loop at this step index. The caller must first
	// restore weights, optimizer state and the corpus cursor from the
	// matching checkpoint (ckpt.Restore); then resuming at step K and
	// running to Steps is bit-identical to an uninterrupted run
	// (TestCheckpointResumeParity).
	StartStep int
	// Telemetry, when non-nil, records one obs.StepEvent per step — loss,
	// gradient norm, and a wall-time breakdown by phase — and fills
	// Result.PhaseSeconds. Timing-only: a telemetry run is bit-identical to
	// an untelemetered one (TestTelemetryParity); disabled it costs one
	// branch per phase boundary.
	Telemetry *obs.TrainRecorder
	// Watchdog, when non-nil, observes every step's loss, gradient norm and
	// wall time for training-health anomalies — NaN/Inf, loss spikes above a
	// multiple of the trailing-window median, stalled steps — raising
	// structured alerts (into the run ledger and obs counters) and, when its
	// config says Halt, aborting the loop after the offending step.
	// Observational only: a watched run is bit-identical to an unwatched one
	// (TestTelemetryParity* run with ledger+watchdog enabled).
	Watchdog *runlog.Watchdog
	// MemProf, when non-nil, receives the loop's live memory ledger —
	// weights, grads, measured optimizer state (split per ZeRO shard in the
	// DP loop) — and is sampled once per step after the step's telemetry is
	// recorded, so the sampler never sits on the timed path. Observational
	// only: a profiled run is bit-identical to an unprofiled one
	// (TestMemprofParity*); disabled it costs one nil check per step.
	MemProf *memprof.Profiler
	// Quiet suppresses progress output.
	Logf func(format string, args ...any)
}

func (c PretrainConfig) withDefaults() PretrainConfig {
	if c.EvalBatches == 0 {
		c.EvalBatches = 4
	}
	if c.Accum < 1 {
		c.Accum = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Pretrain runs the causal-LM loop: sample batch → loss/backprop → clip →
// schedule → optimizer step, evaluating on the corpus's fixed validation
// batches.
func Pretrain(model *nn.Model, opt optim.Optimizer, corpus *data.Corpus, cfg PretrainConfig) Result {
	cfg = cfg.withDefaults()
	start := time.Now()
	var series []Metric
	params := model.Params()
	accum := cfg.Accum
	if accum > cfg.Batch {
		accum = cfg.Batch
	}
	for cfg.Batch%accum != 0 {
		accum--
	}

	rec := cfg.Telemetry
	wd := cfg.Watchdog
	instrumentMemory(cfg.MemProf, params.List(), opt)
	timed := rec != nil || wd != nil
	endStep := cfg.Steps
	for step := cfg.StartStep; step < cfg.Steps; step++ {
		var stepStart time.Time
		if timed {
			stepStart = time.Now()
		}
		pc := phaseClock{on: rec != nil, mark: stepStart}
		if cfg.Schedule != nil {
			opt.SetLR(cfg.Schedule.At(step))
		}
		batch := corpus.NextTrainBatch(cfg.Batch, cfg.Seq)
		pc.lap(obs.PhaseData)
		params.ZeroGrad()
		var loss float64
		if accum == 1 {
			loss = lossPhased(model, batch, &pc)
		} else {
			loss = lossAccum(model, batch, accum, &pc)
		}
		var gradNorm float64
		if timed {
			gradNorm = params.GradNorm()
		}
		if cfg.ClipNorm > 0 {
			params.ClipGradNorm(cfg.ClipNorm)
		}
		opt.Step(params.List())
		pc.lap(obs.PhaseStep)
		maybeCheckpoint(cfg, step, params.List(), opt, corpus)
		pc.lap(obs.PhaseCheckpoint)

		if cfg.EvalEvery > 0 && (step+1)%cfg.EvalEvery == 0 {
			val := Validate(model, corpus, cfg.EvalBatches, cfg.Batch, cfg.Seq)
			series = append(series, Metric{
				Step: step + 1, TrainLoss: loss, ValLoss: val,
				ValPPL: math.Exp(val), LR: opt.LR(),
			})
			cfg.Logf("[%s] step %d/%d train %.4f val ppl %.2f", opt.Name(), step+1, cfg.Steps, loss, math.Exp(val))
		}
		pc.lap(obs.PhaseEval)
		var wall time.Duration
		if timed {
			wall = time.Since(stepStart)
		}
		if rec != nil {
			rec.RecordStep(step+1, loss, gradNorm, opt.LR(), wall, pc.d)
		}
		cfg.MemProf.ObserveStep(step + 1)
		if wd.ObserveStep(step+1, loss, gradNorm, wall.Seconds()) {
			endStep = step + 1
			cfg.Logf("[%s] step %d: watchdog halt", opt.Name(), endStep)
			break
		}
	}
	final := Validate(model, corpus, cfg.EvalBatches, cfg.Batch, cfg.Seq)
	series = append(series, Metric{
		Step: endStep, ValLoss: final, ValPPL: math.Exp(final), LR: opt.LR(),
	})
	res := Result{
		Optimizer:   opt.Name(),
		Series:      series,
		FinalValPPL: math.Exp(final),
		StateBytes:  opt.StateBytes(),
		WallSeconds: time.Since(start).Seconds(),
		Steps:       endStep,
	}
	summarizeTelemetry(&res, rec)
	summarizeWatchdog(&res, wd, endStep)
	return res
}

// summarizeWatchdog folds a halting watchdog's verdict into the result.
func summarizeWatchdog(res *Result, wd *runlog.Watchdog, endStep int) {
	if !wd.Halted() {
		return
	}
	res.Halted = true
	res.HaltStep = endStep
	if alerts := wd.Alerts(); len(alerts) > 0 {
		res.HaltReason = alerts[len(alerts)-1].Kind
	}
}

// summarizeTelemetry folds a recorder's totals into the result.
func summarizeTelemetry(res *Result, rec *obs.TrainRecorder) {
	if rec == nil {
		return
	}
	_, wall, phases := rec.Summary()
	res.PhaseSeconds = phases
	res.StepWallSeconds = wall
}

// phaseClock splits a step's wall time across obs.Phase slots: the loop
// seeds mark with the step's start stamp, then each lap charges the time
// since the previous boundary to one phase. The zero clock (on=false) makes
// every call a single branch — the obs cost contract for untelemetered runs.
type phaseClock struct {
	on   bool
	mark time.Time
	d    [obs.NumPhases]time.Duration
}

func (pc *phaseClock) lap(p obs.Phase) {
	if !pc.on {
		return
	}
	now := time.Now()
	pc.d[p] += now.Sub(pc.mark)
	pc.mark = now
}

// skip resets the clock without charging any phase — used by the DP loop
// around its concurrent compute section, whose wall time is represented by
// the per-replica forward/backward sums instead.
func (pc *phaseClock) skip() {
	if pc.on {
		pc.mark = time.Now()
	}
}

// lossPhased is model.Loss with phase laps at the forward/backward
// boundary — the identical calls in the identical order, so a telemetry
// run stays bit-for-bit the untelemetered run. Cross-entropy is charged to
// the backward phase (it produces the gradient seed).
func lossPhased(model *nn.Model, batch data.Batch, pc *phaseClock) float64 {
	logits := model.Forward(batch.Tokens, batch.B, batch.T)
	pc.lap(obs.PhaseForward)
	loss, dlogits := nn.CrossEntropy(logits, batch.Targets, -1)
	model.Backward(dlogits)
	pc.lap(obs.PhaseBackward)
	return loss
}

// maybeCheckpoint writes a periodic snapshot after step completed (the
// loops call it right after the optimizer step, so the saved state is the
// post-step state the next step builds on). Save failures panic: a training
// run that silently loses its durability guarantee is strictly worse than
// one that stops.
func maybeCheckpoint(cfg PretrainConfig, step int, params []*nn.Param, opt optim.Optimizer, corpus *data.Corpus) {
	if cfg.CkptEvery <= 0 || cfg.CkptPath == "" || (step+1)%cfg.CkptEvery != 0 {
		return
	}
	st, err := ckpt.Capture(step+1, params, opt, corpus)
	if err == nil {
		err = ckpt.SaveFile(cfg.CkptPath, st)
	}
	if err != nil {
		panic(fmt.Errorf("train: checkpoint at step %d: %w", step+1, err))
	}
	cfg.Logf("[%s] step %d: checkpoint → %s", opt.Name(), step+1, cfg.CkptPath)
}

// lossAccum runs forward/backward over the batch in accum micro-batches,
// accumulating gradients and normalizing by the batch's global non-ignored
// target count so the accumulated gradient equals the fused full-batch
// gradient (same math; float32 summation order differs). Only one
// micro-batch of activations is resident at a time. The micro-batch body is
// model.LossShard spelled out so phase laps land at the forward/backward
// boundary — identical calls, identical bits.
func lossAccum(model *nn.Model, batch data.Batch, accum int, pc *phaseClock) float64 {
	counted := nn.CountTargets(batch.Targets, -1)
	if counted == 0 {
		// The fused CrossEntropy convention: no targets → zero loss and
		// zero gradient.
		return 0
	}
	micro := batch.B / accum
	span := micro * batch.T
	var sum float64
	for a := 0; a < accum; a++ {
		lo, hi := a*span, (a+1)*span
		logits := model.Forward(batch.Tokens[lo:hi], micro, batch.T)
		pc.lap(obs.PhaseForward)
		s, dlogits := nn.CrossEntropyShard(logits, batch.Targets[lo:hi], -1, counted)
		model.Backward(dlogits)
		pc.lap(obs.PhaseBackward)
		sum += s
	}
	return sum / float64(counted)
}

// Validate returns the mean validation loss over the corpus's fixed
// evaluation batches. batches <= 0 evaluates nothing and returns 0 by
// convention (perplexity 1) — never the NaN a zero divisor would produce,
// which math.Exp would otherwise propagate into every downstream perplexity.
func Validate(model *nn.Model, corpus *data.Corpus, batches, b, t int) float64 {
	if batches <= 0 {
		return 0
	}
	var total float64
	for i := 0; i < batches; i++ {
		vb := corpus.ValBatch(i, b, t)
		total += model.EvalLoss(vb.Tokens, vb.Targets, vb.B, vb.T)
	}
	return total / float64(batches)
}

// EncodeFT builds the LM sequence for a fine-tuning example:
// [ctx..., sep] predicting the label token at the separator position, every
// other position masked out.
func EncodeFT(task *data.FTTask, ex data.FTExample) (tokens, targets []int) {
	seqLen := len(ex.Context) + 1
	tokens = make([]int, seqLen)
	targets = make([]int, seqLen)
	copy(tokens, ex.Context)
	tokens[seqLen-1] = task.SepToken
	for i := range targets {
		targets[i] = -1
	}
	targets[seqLen-1] = task.LabelBase + ex.Label
	return tokens, targets
}

// FineTuneConfig controls a fine-tuning run.
type FineTuneConfig struct {
	Epochs   int
	Batch    int
	Schedule optim.Schedule
	Seed     uint64
}

// FineTune trains model on the task's training split and returns held-out
// accuracy (the Table 5/6 protocol).
func FineTune(model *nn.Model, opt optim.Optimizer, task *data.FTTask, cfg FineTuneConfig) float64 {
	if cfg.Epochs == 0 {
		cfg.Epochs = 3
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	seqLen := task.Cfg.CtxLen + 1
	step := 0
	order := make([]int, len(task.TrainSet))
	for i := range order {
		order[i] = i
	}
	rngState := cfg.Seed
	next := func(n int) int { // tiny deterministic shuffle helper
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return int((rngState >> 33) % uint64(n))
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := len(order) - 1; i > 0; i-- {
			j := next(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, span := range batchSpans(len(order), cfg.Batch) {
			bsz := span[1] - span[0]
			tokens := make([]int, 0, bsz*seqLen)
			targets := make([]int, 0, bsz*seqLen)
			for _, idx := range order[span[0]:span[1]] {
				tk, tg := EncodeFT(task, task.TrainSet[idx])
				tokens = append(tokens, tk...)
				targets = append(targets, tg...)
			}
			if cfg.Schedule != nil {
				opt.SetLR(cfg.Schedule.At(step))
			}
			model.Params().ZeroGrad()
			model.Loss(tokens, targets, bsz, seqLen)
			opt.Step(model.Params().List())
			step++
		}
	}
	return FTAccuracy(model, task)
}

// batchSpans cuts [0, n) into batch-sized [lo, hi) spans, the last possibly
// short. Every index lands in exactly one span, so an epoch visits every
// example even when n is not a multiple of batch — the trailing examples
// train as a short batch instead of being silently dropped.
func batchSpans(n, batch int) [][2]int {
	if batch < 1 {
		batch = 1
	}
	var spans [][2]int
	for at := 0; at < n; at += batch {
		hi := at + batch
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{at, hi})
	}
	return spans
}

// FTAccuracy evaluates test accuracy: argmax over the task's label tokens at
// the separator position.
func FTAccuracy(model *nn.Model, task *data.FTTask) float64 {
	correct := 0
	seqLen := task.Cfg.CtxLen + 1
	for _, ex := range task.TestSet {
		tk, _ := EncodeFT(task, ex)
		logits := model.Forward(tk, 1, seqLen)
		row := logits.Row(seqLen - 1)
		best, bi := math.Inf(-1), 0
		for c := 0; c < task.Cfg.Classes; c++ {
			if v := float64(row[task.LabelBase+c]); v > best {
				best, bi = v, c
			}
		}
		if bi == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(task.TestSet))
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-16s ppl %.2f  states %s  %.1fs",
		r.Optimizer, r.FinalValPPL, FormatBytes(r.StateBytes), r.WallSeconds)
}

// FormatBytes renders byte counts for tables. Negative counts (deltas,
// prediction errors) keep their sign in front of the scaled magnitude.
func FormatBytes(b int64) string {
	if b < 0 {
		if b == math.MinInt64 {
			// -b would overflow; one byte of slack is invisible at 8 EiB.
			b++
		}
		return "-" + FormatBytes(-b)
	}
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fG", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fM", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fK", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
