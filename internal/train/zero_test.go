package train

import (
	"fmt"
	"testing"

	"apollo/internal/core"
	"apollo/internal/optim"
	"apollo/internal/zero"
)

// zeroBuilders are the optimizers the ZeRO acceptance contract names, with
// small ranks and refresh gaps so the 8-step horizon exercises projection
// refreshes and the limiter.
func zeroBuilders() map[string]func() optim.Optimizer {
	h := optim.Hyper{LR: 1e-3, WeightDecay: 0.01}
	return map[string]func() optim.Optimizer{
		"AdamW": func() optim.Optimizer { return optim.NewAdamW(h) },
		"APOLLO": func() optim.Optimizer {
			return core.New(h, core.Config{Rank: 4, Seed: 11, UpdateGap: 3})
		},
		"APOLLO-Mini": func() optim.Optimizer { return core.NewMini(h) },
		"GaLore": func() optim.Optimizer {
			return optim.NewGaLore(h, optim.LowRankConfig{Rank: 4, Seed: 11, UpdateGap: 3})
		},
	}
}

// TestZeroDPParity is the tentpole acceptance contract: for every named
// optimizer, `-replicas 4 -zero` reproduces the plain `-replicas 1` run
// bit-for-bit (metric series, final perplexity, weights) while no replica
// holds more than 1/3 of the unsharded optimizer state.
func TestZeroDPParity(t *testing.T) {
	const seed = 42
	for name, build := range zeroBuilders() {
		t.Run(name, func(t *testing.T) {
			refModel, _, refCorpus := dpTestSetup(t, seed)
			refOpt := build()
			ref := DPPretrain(refModel, refOpt, refCorpus, dpTestConfig(1))

			for _, replicas := range []int{2, 4} {
				t.Run(fmt.Sprintf("replicas=%d", replicas), func(t *testing.T) {
					gotModel, _, gotCorpus := dpTestSetup(t, seed)
					sh := zero.NewSharded(build, replicas)
					got := DPPretrain(gotModel, sh, gotCorpus, dpTestConfig(replicas))

					if len(got.Series) != len(ref.Series) {
						t.Fatalf("series length %d != %d", len(got.Series), len(ref.Series))
					}
					for i := range ref.Series {
						if got.Series[i] != ref.Series[i] {
							t.Fatalf("metric %d differs:\n  got  %+v\n  want %+v", i, got.Series[i], ref.Series[i])
						}
					}
					if got.FinalValPPL != ref.FinalValPPL {
						t.Fatalf("final ppl %v != %v", got.FinalValPPL, ref.FinalValPPL)
					}
					refParams := refModel.Params().List()
					for i, p := range gotModel.Params().List() {
						if !p.W.Equal(refParams[i].W) {
							t.Fatalf("weight %s differs bitwise between plain x1 and zero x%d", p.Name, replicas)
						}
					}

					// Memory claim: per-replica resident state ≤ 1/N + the
					// balance slack; at 4 replicas the acceptance bound is 1/3
					// of the unsharded footprint.
					total := refOpt.StateBytes()
					if got.StateBytes != total {
						t.Fatalf("aggregate state %d != unsharded %d", got.StateBytes, total)
					}
					if len(got.ReplicaStateBytes) != replicas {
						t.Fatalf("got %d replica state entries, want %d", len(got.ReplicaStateBytes), replicas)
					}
					if replicas >= 4 {
						for r, b := range got.ReplicaStateBytes {
							if b > total/3 {
								t.Fatalf("replica %d holds %d of %d state bytes (> 1/3)", r, b, total)
							}
						}
					}
				})
			}
		})
	}
}

// TestZeroCommAccounting pins the comm-volume bookkeeping: the gradient
// all-reduce merges (B−1) full-parameter leaves per step in every mode,
// while the ZeRO weight broadcast moves (N−1)·P floats per step between
// replicas (plain DP instead re-broadcasts all weights to every replica).
func TestZeroCommAccounting(t *testing.T) {
	const seed = 9
	model, _, _ := dpTestSetup(t, seed)
	var paramBytes int64
	for _, p := range model.Params().List() {
		paramBytes += 4 * int64(p.NumEl())
	}
	cfg := dpTestConfig(4)
	steps := int64(cfg.Steps)
	b := int64(cfg.Batch)

	plainModel, plainOpt, plainCorpus := dpTestSetup(t, seed)
	plain := DPPretrain(plainModel, plainOpt, plainCorpus, cfg)
	if want := steps * (b - 1) * paramBytes; plain.AllReduceBytes != want {
		t.Fatalf("plain all-reduce bytes %d, want %d", plain.AllReduceBytes, want)
	}
	if want := steps * 4 * paramBytes; plain.BroadcastBytes != want {
		t.Fatalf("plain broadcast bytes %d, want %d", plain.BroadcastBytes, want)
	}

	zModel, _, zCorpus := dpTestSetup(t, seed)
	sh := zero.NewSharded(func() optim.Optimizer {
		return optim.NewAdamW(optim.Hyper{LR: 1e-3})
	}, 4)
	z := DPPretrain(zModel, sh, zCorpus, cfg)
	if want := steps * (b - 1) * paramBytes; z.AllReduceBytes != want {
		t.Fatalf("zero all-reduce bytes %d, want %d", z.AllReduceBytes, want)
	}
	if want := steps * 3 * paramBytes; z.BroadcastBytes != want {
		t.Fatalf("zero broadcast bytes %d, want %d (shard tree: (N-1)·P per step)", z.BroadcastBytes, want)
	}
}
