// Package runtime is the parallel execution substrate shared by the whole
// repository: a persistent worker pool, a deterministic range-splitting
// fan-out, tiled multi-goroutine kernels for the hot dense ops (MatMul and
// its transposed variants, large elementwise loops) and fixed-grid parallel
// reductions.
//
// Determinism contract: every kernel in this package produces bits that
// depend only on its inputs (and compile-time tile constants) — never on the
// worker count, GOMAXPROCS, or goroutine scheduling. The matmul kernels
// achieve this by accumulating each output element over the inner dimension
// in ascending order regardless of how the output is tiled; the reductions
// achieve it by summing over a fixed chunk grid whose partials are combined
// in chunk order. Parity tests compare every parallel kernel bit-for-bit
// against its serial reference.
package runtime

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"apollo/internal/obs"
)

// Pool is a set of persistent worker goroutines executing submitted tasks.
// A Pool of size n uses n-1 background workers; the goroutine calling
// ForRange acts as the nth, so size 1 means fully inline execution.
type Pool struct {
	tasks chan func()

	mu   sync.Mutex // guards resizes
	size int32      // atomic: total parallel width including the caller
	bg   int        // background workers currently running (mu)

	// metrics is nil until Instrument wires an obs registry; the hot paths
	// pay one atomic load + branch per event either way (the obs cost
	// contract), never a lock.
	metrics atomic.Pointer[poolMetrics]
}

// poolMetrics is the pool's observability surface: how much work flows
// through it and how it fans out.
type poolMetrics struct {
	tasks     *obs.Counter   // background/stolen tasks executed
	forRanges *obs.Counter   // ForRange calls that actually fanned out
	chunks    *obs.Histogram // chunks per fanned-out ForRange
}

// NewPool returns a pool with the given parallel width (minimum 1).
func NewPool(size int) *Pool {
	p := &Pool{tasks: make(chan func(), 1024)}
	p.Resize(size)
	return p
}

// Size returns the pool's parallel width.
func (p *Pool) Size() int { return int(atomic.LoadInt32(&p.size)) }

// Resize sets the pool's parallel width, spawning or retiring background
// workers as needed. Safe to call concurrently with ForRange.
func (p *Pool) Resize(size int) {
	if size < 1 {
		size = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	target := size - 1
	for p.bg < target {
		go p.worker()
		p.bg++
	}
	for p.bg > target {
		p.tasks <- nil // poison: retires exactly one worker
		p.bg--
	}
	atomic.StoreInt32(&p.size, int32(size))
}

// Instrument registers the pool's counters and queue-depth/width gauges
// into reg and starts counting. Timing-only: instrumentation never changes
// scheduling, so the kernel determinism contract is untouched. Safe to call
// while ForRange runs; a nil reg disables counting again.
func (p *Pool) Instrument(reg *obs.Registry) {
	if reg == nil {
		p.metrics.Store(nil)
		return
	}
	reg.GaugeFunc("apollo_pool_queue_depth", "Tasks waiting in the pool's queue.",
		func() float64 { return float64(len(p.tasks)) })
	reg.GaugeFunc("apollo_pool_workers", "The pool's parallel width (background workers + caller).",
		func() float64 { return float64(p.Size()) })
	p.metrics.Store(&poolMetrics{
		tasks:     reg.Counter("apollo_pool_tasks_total", "Tasks executed by pool workers (including stolen by helping callers)."),
		forRanges: reg.Counter("apollo_pool_forrange_total", "ForRange calls that fanned out across workers."),
		chunks:    reg.Histogram("apollo_pool_forrange_chunks", "Chunks per fanned-out ForRange call.", obs.SizeBuckets),
	})
}

// InstrumentDefault instruments the shared process-wide pool.
func InstrumentDefault(reg *obs.Registry) { defaultPool.Instrument(reg) }

func (p *Pool) worker() {
	for f := range p.tasks {
		if f == nil {
			return
		}
		f()
		if m := p.metrics.Load(); m != nil {
			m.tasks.Inc()
		}
	}
}

// ForRange splits [0, n) into contiguous chunks of at least minPerTask items
// and runs fn over them, using the pool when the range is large enough. The
// caller executes the first chunk itself and, while waiting for the rest,
// helps drain the task queue — so nested ForRange calls from inside a task
// can never deadlock the pool.
//
// fn must write only to data owned by its [i0, i1) range; under that
// discipline the result is bit-identical to fn(0, n).
func (p *Pool) ForRange(n, minPerTask int, fn func(i0, i1 int)) {
	if n <= 0 {
		return
	}
	if minPerTask < 1 {
		minPerTask = 1
	}
	w := p.Size()
	if max := n / minPerTask; w > max {
		w = max
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	if m := p.metrics.Load(); m != nil {
		m.forRanges.Inc()
		m.chunks.Observe(float64((n + chunk - 1) / chunk))
	}
	var pending int32
	panics := make(chan any, 1) // first panic from a submitted chunk
	for i0 := chunk; i0 < n; i0 += chunk {
		i1 := i0 + chunk
		if i1 > n {
			i1 = n
		}
		atomic.AddInt32(&pending, 1)
		a, b := i0, i1
		task := func() {
			// A panicking chunk must still decrement pending (or the owner
			// spins forever) and must be re-raised on the owning ForRange
			// caller, not on whichever worker or helping goroutine stole it.
			defer func() {
				if r := recover(); r != nil {
					select {
					case panics <- r:
					default:
					}
				}
				atomic.AddInt32(&pending, -1)
			}()
			fn(a, b)
		}
		select {
		case p.tasks <- task:
		default: // queue full: run inline rather than block
			task()
		}
	}
	// The caller's own chunk must not let a panic escape before the
	// submitted chunks drain: in-flight workers would still be writing into
	// shared output while the caller unwinds — and a recovering caller
	// (bench.runCaptured) could reuse or free that output. Recover here,
	// wait like the submitted-chunk path does, then re-raise.
	var callerPanic any
	var callerPanicked bool
	func() {
		defer func() {
			if r := recover(); r != nil {
				callerPanic, callerPanicked = r, true
			}
		}()
		fn(0, chunk)
	}()
	// Help with queued work (ours or anyone's) until our chunks are done.
	for atomic.LoadInt32(&pending) > 0 {
		select {
		case f := <-p.tasks:
			if f == nil {
				p.requeuePoison()
				continue
			}
			f()
			if m := p.metrics.Load(); m != nil {
				m.tasks.Inc()
			}
		default:
			goruntime.Gosched()
		}
	}
	if callerPanicked {
		panic(callerPanic)
	}
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// requeuePoison returns a retirement poison (stolen from the queue by a
// helping ForRange caller) so a background worker eventually consumes it.
// Sending can momentarily fail on a full queue, in which case we drain a
// task to make room — executing real work or collecting further poisons —
// so no poison is ever dropped and Resize's worker accounting stays exact.
func (p *Pool) requeuePoison() {
	owed := 1
	for owed > 0 {
		select {
		case p.tasks <- nil:
			owed--
		case f := <-p.tasks:
			if f == nil {
				owed++
			} else {
				f()
			}
		}
	}
}

// defaultPool is the process-wide pool used by the package-level helpers and,
// through them, by the tensor kernels.
var defaultPool = NewPool(goruntime.GOMAXPROCS(0))

// Default returns the shared process-wide pool.
func Default() *Pool { return defaultPool }

// Workers returns the shared pool's parallel width.
func Workers() int { return defaultPool.Size() }

// SetWorkers resizes the shared pool (1 = fully serial execution). The
// determinism contract makes this a pure performance knob: results are
// bit-identical at any width.
func SetWorkers(n int) { defaultPool.Resize(n) }

// ForRange runs fn over [0, n) on the shared pool. See Pool.ForRange.
func ForRange(n, minPerTask int, fn func(i0, i1 int)) {
	defaultPool.ForRange(n, minPerTask, fn)
}
