package runtime

import (
	"fmt"
	"testing"
)

// The BENCH_runtime.json snapshot at the repo root records these numbers for
// the machine the PR was developed on; re-run with
//
//	go test ./internal/runtime/ -bench MatMul -benchtime 2s
//
// to regenerate. Speedup scales with core count: the parallel kernel is
// bit-identical to the serial one, so worker count is a pure perf knob.

func benchMatMul(b *testing.B, size int, parallel bool) {
	a := make([]float32, size*size)
	bb := make([]float32, size*size)
	out := make([]float32, size*size)
	fill(a, 1)
	fill(bb, 2)
	orig := Workers()
	defer SetWorkers(orig)
	if !parallel {
		SetWorkers(1)
	}
	b.SetBytes(int64(size * size * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, a, bb, size, size, size)
	}
}

func BenchmarkMatMulSerial(b *testing.B) {
	for _, size := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			benchMatMul(b, size, false)
		})
	}
}

func BenchmarkMatMulParallel(b *testing.B) {
	for _, size := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			benchMatMul(b, size, true)
		})
	}
}

func BenchmarkSqNormChunked(b *testing.B) {
	x := make([]float32, 1<<20)
	fill(x, 3)
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SqNormChunked(x)
	}
}
