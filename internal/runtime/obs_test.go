package runtime

import (
	"strings"
	"sync/atomic"
	"testing"

	"apollo/internal/obs"
)

// TestPoolInstrument wires a registry into a private pool, fans out work,
// and checks the counters and gauges land in the exposition. Also pins that
// instrumentation never changes the computed result.
func TestPoolInstrument(t *testing.T) {
	p := NewPool(4)
	defer p.Resize(1)
	reg := obs.NewRegistry()
	p.Instrument(reg)

	const n = 1000
	var sum atomic.Int64
	p.ForRange(n, 1, func(i0, i1 int) {
		var local int64
		for i := i0; i < i1; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	if got, want := sum.Load(), int64(n*(n-1)/2); got != want {
		t.Fatalf("instrumented ForRange sum = %d, want %d", got, want)
	}

	var b strings.Builder
	if err := reg.RenderPrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	if !strings.Contains(expo, "apollo_pool_forrange_total 1\n") {
		t.Fatalf("forrange counter missing:\n%s", expo)
	}
	if !strings.Contains(expo, "apollo_pool_workers 4\n") {
		t.Fatalf("workers gauge missing:\n%s", expo)
	}
	if !strings.Contains(expo, "apollo_pool_forrange_chunks_count 1\n") {
		t.Fatalf("chunks histogram missing:\n%s", expo)
	}

	// Disable again: further work must not count.
	p.Instrument(nil)
	p.ForRange(n, 1, func(i0, i1 int) {})
	var b2 strings.Builder
	if err := reg.RenderPrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "apollo_pool_forrange_total 1\n") {
		t.Fatalf("disabled pool still counted:\n%s", b2.String())
	}
}

// TestPoolSerialForRangeUncounted pins that a ForRange too small to fan out
// (serial fallback) does not count as a fanned-out call.
func TestPoolSerialForRangeUncounted(t *testing.T) {
	p := NewPool(4)
	defer p.Resize(1)
	reg := obs.NewRegistry()
	p.Instrument(reg)
	p.ForRange(2, 100, func(i0, i1 int) {}) // below minPerTask threshold
	var b strings.Builder
	if err := reg.RenderPrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "apollo_pool_forrange_total 0\n") {
		t.Fatalf("serial ForRange counted as fan-out:\n%s", b.String())
	}
}
