package runtime

// Tiled multi-goroutine kernels for the hot dense ops. All matrices are
// row-major float32 slices with explicit dimensions so this package depends
// on nothing above it; internal/tensor dispatches here.
//
// Bit-identity: for every kernel, each output element is accumulated over the
// inner dimension in ascending order no matter how the output is tiled or
// how many workers run, so the parallel kernels reproduce the serial
// reference exactly (see kernels_test.go).

const (
	// matmulParallelFlops is the multiply-add count above which the matmul
	// kernels fan out to the pool; below it goroutine hand-off costs more
	// than the work.
	matmulParallelFlops = 64 * 1024
	// jTile is the output-column tile width: one tile of the output row and
	// the matching b-row segment stay resident in L1/L2 across the k-loop.
	jTile = 512
	// reduceChunk is the fixed reduction grid: partial sums are computed per
	// chunk and combined in chunk order, making the result independent of
	// worker count. The grid depends only on the input length.
	reduceChunk = 8192
	// ParallelReduceMin is the input length above which the chunked parallel
	// reductions are worth dispatching.
	ParallelReduceMin = 1 << 16
)

// matmulGrain returns the row grain keeping at least matmulParallelFlops of
// work per task for rows costing rowFlops each.
func matmulGrain(rowFlops int) int {
	if rowFlops <= 0 {
		return 1
	}
	g := matmulParallelFlops / rowFlops
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul computes out = a·b with a m×k, b k×n, out m×n (out pre-zeroed by
// the caller or overwritten here: it is fully written). Tiles rows across
// the pool above the size threshold; bit-identical to MatMulSerial.
func MatMul(out, a, b []float32, m, k, n int) {
	for i := range out[:m*n] {
		out[i] = 0
	}
	if m*k*n < matmulParallelFlops {
		matmulRows(out, a, b, k, n, 0, m)
		return
	}
	ForRange(m, matmulGrain(k*n), func(i0, i1 int) {
		matmulRows(out, a, b, k, n, i0, i1)
	})
}

// MatMulSerial is the single-goroutine reference for MatMul.
func MatMulSerial(out, a, b []float32, m, k, n int) {
	for i := range out[:m*n] {
		out[i] = 0
	}
	matmulRows(out, a, b, k, n, 0, m)
}

// matmulRows accumulates output rows [i0, i1). The j-tiling only reorders
// which elements are touched when, never the per-element accumulation order
// (p ascends within every tile), so bits match the untiled loop.
func matmulRows(out, a, b []float32, k, n, i0, i1 int) {
	for jb := 0; jb < n; jb += jTile {
		je := jb + jTile
		if je > n {
			je = n
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n+jb : i*n+je]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 { //apollo:exactfloat exact-zero skip is bit-identical to the dense multiply
					continue
				}
				axpy(av, b[p*n+jb:p*n+je], orow)
			}
		}
	}
}

// MatMulT computes out = a·bᵀ with a m×k, b n×k, out m×n, without
// materializing the transpose. Bit-identical to MatMulTSerial.
func MatMulT(out, a, b []float32, m, k, n int) {
	if m*k*n < matmulParallelFlops {
		matmulTRows(out, a, b, k, n, 0, m)
		return
	}
	ForRange(m, matmulGrain(k*n), func(i0, i1 int) {
		matmulTRows(out, a, b, k, n, i0, i1)
	})
}

// MatMulTSerial is the single-goroutine reference for MatMulT.
func MatMulTSerial(out, a, b []float32, m, k, n int) {
	matmulTRows(out, a, b, k, n, 0, m)
}

func matmulTRows(out, a, b []float32, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = dot(arow, b[j*k:(j+1)*k])
		}
	}
}

// TMatMul computes out = aᵀ·b with a k×m, b k×n, out m×n, without
// materializing the transpose. Parallelism is over output rows (columns of
// a) so no two tasks write the same element; each element still accumulates
// p = 0..k-1 in order. Bit-identical to TMatMulSerial.
func TMatMul(out, a, b []float32, k, m, n int) {
	for i := range out[:m*n] {
		out[i] = 0
	}
	if m*k*n < matmulParallelFlops {
		tmatmulCols(out, a, b, k, m, n, 0, m)
		return
	}
	ForRange(m, matmulGrain(k*n), func(r0, r1 int) {
		tmatmulCols(out, a, b, k, m, n, r0, r1)
	})
}

// TMatMulSerial is the single-goroutine reference for TMatMul.
func TMatMulSerial(out, a, b []float32, k, m, n int) {
	for i := range out[:m*n] {
		out[i] = 0
	}
	tmatmulCols(out, a, b, k, m, n, 0, m)
}

func tmatmulCols(out, a, b []float32, k, m, n, r0, r1 int) {
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for r := r0; r < r1; r++ {
			av := arow[r]
			if av == 0 { //apollo:exactfloat exact-zero skip is bit-identical to the dense multiply
				continue
			}
			axpy(av, brow, out[r*n:(r+1)*n])
		}
	}
}

// Axpy computes y += alpha·x across the pool for large slices. Disjoint
// ranges make any grid bit-identical to the serial loop.
func Axpy(alpha float32, x, y []float32) {
	ForRange(len(x), 1<<14, func(i0, i1 int) {
		axpy(alpha, x[i0:i1], y[i0:i1])
	})
}

// Scale computes x *= alpha across the pool for large slices.
func Scale(x []float32, alpha float32) {
	ForRange(len(x), 1<<14, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			x[i] *= alpha
		}
	})
}

// SumChunked returns Σ x accumulated in float64 over the fixed reduction
// grid: chunk partials (serial within a chunk) combined in chunk order. The
// grid depends only on len(x), so the result is bit-identical at any worker
// count.
func SumChunked(x []float32) float64 {
	return reduceChunked(x, func(c []float32) float64 {
		var s float64
		for _, v := range c {
			s += float64(v)
		}
		return s
	})
}

// SqNormChunked returns Σ x² with the same fixed-grid determinism as
// SumChunked.
func SqNormChunked(x []float32) float64 {
	return reduceChunked(x, func(c []float32) float64 {
		var s float64
		for _, v := range c {
			s += float64(v) * float64(v)
		}
		return s
	})
}

func reduceChunked(x []float32, chunkSum func([]float32) float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	chunks := (n + reduceChunk - 1) / reduceChunk
	if chunks == 1 {
		return chunkSum(x)
	}
	partials := make([]float64, chunks)
	ForRange(chunks, 1, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			lo := c * reduceChunk
			hi := lo + reduceChunk
			if hi > n {
				hi = n
			}
			partials[c] = chunkSum(x[lo:hi])
		}
	})
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}

// axpy computes y += a·x; the 4-way unroll keeps the hot loop friendly to
// bounds-check elimination.
func axpy(a float32, x, y []float32) {
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// dot returns the inner product with the same 4-lane accumulation order as
// tensor.Dot so dispatching there is bit-transparent.
func dot(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}
