package runtime

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// fill populates x with a deterministic, sign-varying pattern including
// exact zeros (the kernels skip zero multipliers, so parity must cover them).
func fill(x []float32, seed uint64) {
	s := seed
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		v := float32(int32(s>>33)%1000) / 997
		if s%17 == 0 {
			v = 0
		}
		x[i] = v
	}
}

func bitEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: bit mismatch at %d: got %v want %v", name, i, got[i], want[i])
		}
	}
}

// shapes covers below-threshold, at-threshold and well-above-threshold
// sizes, plus ragged dims that don't divide evenly into tiles or chunks.
var shapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{8, 8, 8},
	{31, 64, 33},
	{64, 64, 64},
	{100, 128, 96},
	{257, 130, 511},
}

func withPoolSizes(t *testing.T, body func(t *testing.T)) {
	t.Helper()
	orig := Workers()
	defer SetWorkers(orig)
	for _, w := range []int{1, 2, 3, 8} {
		SetWorkers(w)
		t.Run(fmt.Sprintf("workers=%d", w), body)
	}
}

func TestMatMulParity(t *testing.T) {
	for _, sh := range shapes {
		a := make([]float32, sh.m*sh.k)
		b := make([]float32, sh.k*sh.n)
		fill(a, uint64(sh.m*1000+sh.k))
		fill(b, uint64(sh.k*1000+sh.n))
		want := make([]float32, sh.m*sh.n)
		MatMulSerial(want, a, b, sh.m, sh.k, sh.n)
		withPoolSizes(t, func(t *testing.T) {
			got := make([]float32, sh.m*sh.n)
			fill(got, 999) // kernels must fully overwrite stale output
			MatMul(got, a, b, sh.m, sh.k, sh.n)
			bitEqual(t, fmt.Sprintf("MatMul %dx%dx%d", sh.m, sh.k, sh.n), got, want)
		})
	}
}

func TestMatMulTParity(t *testing.T) {
	for _, sh := range shapes {
		a := make([]float32, sh.m*sh.k)
		b := make([]float32, sh.n*sh.k)
		fill(a, uint64(sh.m*7+sh.k))
		fill(b, uint64(sh.k*7+sh.n))
		want := make([]float32, sh.m*sh.n)
		MatMulTSerial(want, a, b, sh.m, sh.k, sh.n)
		withPoolSizes(t, func(t *testing.T) {
			got := make([]float32, sh.m*sh.n)
			fill(got, 999)
			MatMulT(got, a, b, sh.m, sh.k, sh.n)
			bitEqual(t, fmt.Sprintf("MatMulT %dx%dx%d", sh.m, sh.k, sh.n), got, want)
		})
	}
}

func TestTMatMulParity(t *testing.T) {
	for _, sh := range shapes {
		a := make([]float32, sh.k*sh.m)
		b := make([]float32, sh.k*sh.n)
		fill(a, uint64(sh.m*13+sh.k))
		fill(b, uint64(sh.k*13+sh.n))
		want := make([]float32, sh.m*sh.n)
		TMatMulSerial(want, a, b, sh.k, sh.m, sh.n)
		withPoolSizes(t, func(t *testing.T) {
			got := make([]float32, sh.m*sh.n)
			fill(got, 999)
			TMatMul(got, a, b, sh.k, sh.m, sh.n)
			bitEqual(t, fmt.Sprintf("TMatMul %dx%dx%d", sh.m, sh.k, sh.n), got, want)
		})
	}
}

// TestMatMulMatchesNaive pins the kernels to the textbook triple loop within
// float tolerance (the bit-parity tests above only relate parallel to
// serial; this one catches a kernel that is consistently wrong).
func TestMatMulMatchesNaive(t *testing.T) {
	m, k, n := 33, 20, 29
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fill(a, 3)
	fill(b, 4)
	naive := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				naive[i*n+j] += float64(a[i*k+p]) * float64(b[p*n+j])
			}
		}
	}
	got := make([]float32, m*n)
	MatMul(got, a, b, m, k, n)
	for i := range got {
		if d := float64(got[i]) - naive[i]; d > 1e-3 || d < -1e-3 {
			t.Fatalf("MatMul vs naive at %d: got %v want %v", i, got[i], naive[i])
		}
	}
}

func TestReduceParity(t *testing.T) {
	for _, n := range []int{0, 1, 100, reduceChunk, reduceChunk + 1, 3*reduceChunk + 17, ParallelReduceMin + 5} {
		x := make([]float32, n)
		fill(x, uint64(n)+11)
		origWorkers := Workers()
		SetWorkers(1)
		wantSum := SumChunked(x)
		wantSq := SqNormChunked(x)
		SetWorkers(origWorkers)
		withPoolSizes(t, func(t *testing.T) {
			if got := SumChunked(x); got != wantSum {
				t.Fatalf("SumChunked(n=%d) = %v, want %v", n, got, wantSum)
			}
			if got := SqNormChunked(x); got != wantSq {
				t.Fatalf("SqNormChunked(n=%d) = %v, want %v", n, got, wantSq)
			}
		})
	}
}

func TestAxpyScaleParity(t *testing.T) {
	n := 1<<15 + 13
	x := make([]float32, n)
	fill(x, 21)
	yserial := make([]float32, n)
	fill(yserial, 22)
	orig := Workers()
	SetWorkers(1)
	Axpy(0.75, x, yserial)
	Scale(yserial, -1.25)
	SetWorkers(orig)
	withPoolSizes(t, func(t *testing.T) {
		y := make([]float32, n)
		fill(y, 22)
		Axpy(0.75, x, y)
		Scale(y, -1.25)
		bitEqual(t, "Axpy+Scale", y, yserial)
	})
}

// TestNestedForRange exercises fan-out from inside pool tasks (the shape the
// data-parallel trainer produces: replica goroutines running pooled
// kernels). The helping wait loop must keep this deadlock-free.
func TestNestedForRange(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(4)
	out := make([]float32, 64*64)
	a := make([]float32, 64*64)
	b := make([]float32, 64*64)
	fill(a, 1)
	fill(b, 2)
	ForRange(16, 1, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			local := make([]float32, 64*64)
			MatMul(local, a, b, 64, 64, 64)
			if i == 0 {
				copy(out, local)
			}
		}
	})
	want := make([]float32, 64*64)
	MatMulSerial(want, a, b, 64, 64, 64)
	bitEqual(t, "nested MatMul", out, want)
}

// TestForRangePanicPropagates checks a panicking chunk surfaces on the
// ForRange caller (not a background worker) and leaves the pool usable.
func TestForRangePanicPropagates(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(4)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected ForRange to re-panic")
			}
		}()
		ForRange(100, 1, func(i0, i1 int) {
			if i0 > 0 { // panic only in a submitted (non-caller) chunk
				panic("chunk boom")
			}
		})
	}()
	// The pool must still work after swallowing the panic.
	var hits [32]int32
	ForRange(32, 1, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("post-panic: index %d visited %d times", i, h)
		}
	}
}

// TestForRangeCallerPanicWaitsForInflight pins the pool-hardening contract:
// when the CALLER-executed chunk panics, ForRange must still wait for every
// in-flight submitted chunk before re-raising — otherwise a recovering
// caller (bench.runCaptured keeps scheduling after recovering) races
// against workers still writing into the shared output.
func TestForRangeCallerPanicWaitsForInflight(t *testing.T) {
	p := NewPool(4) // private pool: the shared one may be size 1 on 1-core hosts
	const n, chunks = 64, 4
	var completed int32
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected ForRange to re-panic the caller chunk's panic")
			}
			if r != "caller boom" {
				t.Fatalf("re-panicked %v, want the caller chunk's panic", r)
			}
			// The moment the panic surfaces, every submitted chunk must have
			// finished — no in-flight writers left behind.
			if got := atomic.LoadInt32(&completed); got != chunks-1 {
				t.Fatalf("panic escaped with %d of %d submitted chunks complete", got, chunks-1)
			}
		}()
		p.ForRange(n, n/chunks, func(i0, i1 int) {
			if i0 == 0 { // the chunk the caller executes itself
				panic("caller boom")
			}
			time.Sleep(20 * time.Millisecond) // in-flight long enough to observe
			atomic.AddInt32(&completed, 1)
		})
	}()
	// The pool stays usable afterwards.
	var hits int32
	p.ForRange(16, 1, func(i0, i1 int) { atomic.AddInt32(&hits, int32(i1-i0)) })
	if hits != 16 {
		t.Fatalf("post-panic ForRange covered %d of 16", hits)
	}
}

func TestPoolResize(t *testing.T) {
	p := NewPool(4)
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	p.Resize(1)
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
	p.Resize(8)
	var hits [100]int32
	p.ForRange(100, 1, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}
