package nn

import (
	"math"
	"testing"

	"apollo/internal/tensor"
)

func tinyConfig() Config {
	return Config{Vocab: 19, Dim: 8, Hidden: 16, Heads: 2, Layers: 2, MaxSeq: 8}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Heads = 3 // 8 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected divisibility error")
	}
	bad2 := good
	bad2.Layers = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected non-positive error")
	}
}

func TestNumParamsMatchesActual(t *testing.T) {
	cfg := tinyConfig()
	model := NewModel(cfg, tensor.NewRNG(1))
	if got, want := model.Params().NumParams(), cfg.NumParams(); got != want {
		t.Fatalf("NumParams analytic %d vs actual %d", want, got)
	}
}

func TestForwardShapes(t *testing.T) {
	cfg := tinyConfig()
	model := NewModel(cfg, tensor.NewRNG(2))
	tokens := make([]int, 2*4)
	logits := model.Forward(tokens, 2, 4)
	if logits.Rows != 8 || logits.Cols != cfg.Vocab {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestForwardDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a := NewModel(cfg, tensor.NewRNG(3))
	b := NewModel(cfg, tensor.NewRNG(3))
	tokens := []int{1, 2, 3, 4, 5, 6, 7, 8}
	la := a.Forward(tokens, 2, 4)
	lb := b.Forward(tokens, 2, 4)
	if !la.Equal(lb) {
		t.Fatal("same seed + same input must give identical logits")
	}
}

func TestCausality(t *testing.T) {
	// Changing a future token must not affect logits at earlier positions.
	cfg := tinyConfig()
	model := NewModel(cfg, tensor.NewRNG(4))
	tokens := []int{1, 2, 3, 4, 5, 6}
	l1 := model.Forward(tokens, 1, 6).Clone()
	tokens[5] = 9 // perturb the last position only
	l2 := model.Forward(tokens, 1, 6)
	for pos := 0; pos < 5; pos++ {
		for j := 0; j < cfg.Vocab; j++ {
			if l1.At(pos, j) != l2.At(pos, j) {
				t.Fatalf("position %d logit %d changed after editing a future token", pos, j)
			}
		}
	}
	// The final position must change (sanity that the input matters at all).
	same := true
	for j := 0; j < cfg.Vocab; j++ {
		if l1.At(5, j) != l2.At(5, j) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("final-position logits identical after changing its token")
	}
}

func TestBatchIndependence(t *testing.T) {
	// Sequences in a batch must not attend across each other.
	cfg := tinyConfig()
	model := NewModel(cfg, tensor.NewRNG(5))
	s1 := []int{1, 2, 3, 4}
	s2 := []int{9, 8, 7, 6}
	solo := model.Forward(s1, 1, 4).Clone()
	both := model.Forward(append(append([]int{}, s1...), s2...), 2, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < cfg.Vocab; j++ {
			if math.Abs(float64(solo.At(i, j)-both.At(i, j))) > 1e-5 {
				t.Fatalf("batching changed sequence-1 logits at (%d,%d)", i, j)
			}
		}
	}
}

func TestRoPEMakesPositionMatter(t *testing.T) {
	// For a sequence of identical hidden states, attention scores at the
	// last position would be exactly uniform without positional information;
	// RoPE rotates q and k by position so the scores depend on relative
	// distance and the probabilities become non-uniform.
	rng := tensor.NewRNG(6)
	const dim, heads, seq = 8, 2, 4
	att := NewAttention("attn", dim, heads, seq, rng)
	x := tensor.NewMatrix(seq, dim)
	row := make([]float32, dim)
	for i := range row {
		row[i] = rng.NormFloat32()
	}
	for i := 0; i < seq; i++ {
		copy(x.Row(i), row)
	}
	att.Forward(x, 1, seq)
	// probs for head 0, final position.
	last := att.probs[(seq-1)*seq : (seq-1)*seq+seq]
	mn, mx := last[0], last[0]
	for _, p := range last {
		if p < mn {
			mn = p
		}
		if p > mx {
			mx = p
		}
	}
	if float64(mx-mn) < 1e-7 {
		t.Fatalf("attention probs uniform despite RoPE: %v", last)
	}
}

func TestRopeTableInverse(t *testing.T) {
	rt := newRopeTable(16, 8)
	rng := tensor.NewRNG(7)
	x := make([]float32, 8)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	orig := append([]float32{}, x...)
	rt.apply(x, 11, 1)
	rt.apply(x, 11, -1)
	for i := range x {
		if math.Abs(float64(x[i]-orig[i])) > 1e-5 {
			t.Fatalf("RoPE inverse failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestRopeNormPreserving(t *testing.T) {
	rt := newRopeTable(16, 8)
	rng := tensor.NewRNG(8)
	x := make([]float32, 8)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	before := tensor.NormSlice(x)
	rt.apply(x, 7, 1)
	after := tensor.NormSlice(x)
	if math.Abs(before-after) > 1e-5 {
		t.Fatalf("RoPE changed the norm: %v → %v", before, after)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// A few plain-SGD steps on a fixed batch must reduce the loss — the
	// end-to-end smoke test that forward, backward and the parameter update
	// all cooperate.
	cfg := tinyConfig()
	model := NewModel(cfg, tensor.NewRNG(9))
	rng := tensor.NewRNG(10)
	tokens := make([]int, 2*6)
	targets := make([]int, 2*6)
	for i := range tokens {
		tokens[i] = rng.Intn(cfg.Vocab)
		targets[i] = rng.Intn(cfg.Vocab)
	}
	first := math.Inf(1)
	var last float64
	for step := 0; step < 30; step++ {
		model.Params().ZeroGrad()
		loss := model.Loss(tokens, targets, 2, 6)
		if step == 0 {
			first = loss
		}
		last = loss
		for _, p := range model.Params().List() {
			tensor.AxpyInPlace(p.W, -0.05, p.Grad)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestParamKinds(t *testing.T) {
	model := NewModel(tinyConfig(), tensor.NewRNG(11))
	kinds := map[ParamKind]int{}
	for _, p := range model.Params().List() {
		kinds[p.Kind]++
	}
	// Embedding and unembedding are both vocab tables (dense-AdamW only).
	if kinds[KindEmbedding] != 2 {
		t.Fatalf("want 2 embedding params, got %d", kinds[KindEmbedding])
	}
	// 2 layers × (4 attn + 3 mlp) = 14 projectable matrices.
	if kinds[KindMatrix] != 14 {
		t.Fatalf("want 14 matrix params, got %d", kinds[KindMatrix])
	}
	// 2 norms per block × 2 + final = 5 vectors.
	if kinds[KindVector] != 5 {
		t.Fatalf("want 5 vector params, got %d", kinds[KindVector])
	}
}

func TestClipGradNorm(t *testing.T) {
	model := NewModel(tinyConfig(), tensor.NewRNG(12))
	rng := tensor.NewRNG(13)
	for _, p := range model.Params().List() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat32()
		}
	}
	pre := model.Params().GradNorm()
	got := model.Params().ClipGradNorm(1.0)
	if math.Abs(got-pre) > 1e-9 {
		t.Fatalf("ClipGradNorm returned %v want pre-clip norm %v", got, pre)
	}
	post := model.Params().GradNorm()
	if math.Abs(post-1.0) > 1e-3 {
		t.Fatalf("post-clip norm %v want 1.0", post)
	}
}

func TestEvalLossMatchesLoss(t *testing.T) {
	cfg := tinyConfig()
	model := NewModel(cfg, tensor.NewRNG(14))
	tokens := []int{1, 2, 3, 4}
	targets := []int{2, 3, 4, 5}
	e := model.EvalLoss(tokens, targets, 1, 4)
	model.Params().ZeroGrad()
	l := model.Loss(tokens, targets, 1, 4)
	if math.Abs(e-l) > 1e-6 {
		t.Fatalf("EvalLoss %v != Loss %v", e, l)
	}
}
