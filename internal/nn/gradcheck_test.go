package nn

import (
	"math"
	"testing"

	"apollo/internal/tensor"
)

// relErr returns |a−b| / max(1e-8, |a|+|b|).
func relErr(a, b float64) float64 {
	den := math.Abs(a) + math.Abs(b)
	if den < 1e-8 {
		den = 1e-8
	}
	return math.Abs(a-b) / den
}

// checkGrad compares an analytic gradient entry against a central-difference
// estimate of loss() under perturbation of data[idx].
func checkGrad(t *testing.T, label string, data []float32, idx int, analytic float64, loss func() float64, eps float32, tol float64) {
	t.Helper()
	orig := data[idx]
	data[idx] = orig + eps
	lp := loss()
	data[idx] = orig - eps
	lm := loss()
	data[idx] = orig
	numeric := (lp - lm) / (2 * float64(eps))
	// Ignore entries whose gradient is numerically negligible relative to
	// float32 noise in the loss.
	if math.Abs(numeric) < 5e-4 && math.Abs(analytic) < 5e-4 {
		return
	}
	if re := relErr(analytic, numeric); re > tol {
		t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g (rel %.3g)", label, idx, analytic, numeric, re)
	}
}

// weightedLoss builds a deterministic scalar from a matrix so dL/dY equals
// the weight matrix c.
func weightedLoss(y, c *tensor.Matrix) float64 {
	var s float64
	for i, v := range y.Data {
		s += float64(v) * float64(c.Data[i])
	}
	return s
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	lin := NewLinear("w", 7, 5, 0.5, rng)
	x := tensor.NewMatrixRand(4, 7, 1, rng)
	c := tensor.NewMatrixRand(4, 5, 1, rng)

	loss := func() float64 { return weightedLoss(lin.Forward(x), c) }
	loss() // populate caches
	lin.P.ZeroGrad()
	dx := lin.Backward(c)

	for _, idx := range []int{0, 3, 11, 20, 34} {
		checkGrad(t, "linear.W", lin.P.W.Data, idx, float64(lin.P.Grad.Data[idx]), loss, 1e-3, 0.02)
	}
	for _, idx := range []int{0, 5, 13, 27} {
		checkGrad(t, "linear.x", x.Data, idx, float64(dx.Data[idx]), loss, 1e-3, 0.02)
	}
}

func TestRMSNormGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	norm := NewRMSNorm("n", 6)
	// Non-trivial gain.
	for i := range norm.P.W.Data {
		norm.P.W.Data[i] = 0.5 + rng.Float32()
	}
	x := tensor.NewMatrixRand(3, 6, 1, rng)
	c := tensor.NewMatrixRand(3, 6, 1, rng)

	loss := func() float64 { return weightedLoss(norm.Forward(x), c) }
	loss()
	norm.P.ZeroGrad()
	dx := norm.Backward(c)

	for idx := 0; idx < 6; idx++ {
		checkGrad(t, "rmsnorm.g", norm.P.W.Data, idx, float64(norm.P.Grad.Data[idx]), loss, 1e-3, 0.02)
	}
	for _, idx := range []int{0, 4, 9, 17} {
		checkGrad(t, "rmsnorm.x", x.Data, idx, float64(dx.Data[idx]), loss, 1e-3, 0.02)
	}
}

func TestSwiGLUGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	mlp := NewSwiGLU("mlp", 5, 8, rng)
	// Larger init to push silu out of its linear regime.
	for _, p := range mlp.Params() {
		for i := range p.W.Data {
			p.W.Data[i] = rng.NormFloat32() * 0.5
		}
	}
	x := tensor.NewMatrixRand(3, 5, 1, rng)
	c := tensor.NewMatrixRand(3, 5, 1, rng)

	loss := func() float64 { return weightedLoss(mlp.Forward(x), c) }
	loss()
	for _, p := range mlp.Params() {
		p.ZeroGrad()
	}
	dx := mlp.Backward(c)

	for _, p := range mlp.Params() {
		for _, idx := range []int{0, 7, 19} {
			if idx < len(p.W.Data) {
				checkGrad(t, p.Name, p.W.Data, idx, float64(p.Grad.Data[idx]), loss, 1e-3, 0.03)
			}
		}
	}
	for _, idx := range []int{0, 6, 14} {
		checkGrad(t, "swiglu.x", x.Data, idx, float64(dx.Data[idx]), loss, 1e-3, 0.03)
	}
}

func TestAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	const dim, heads, batch, seq = 8, 2, 2, 4
	att := NewAttention("attn", dim, heads, seq, rng)
	for _, p := range att.Params() {
		for i := range p.W.Data {
			p.W.Data[i] = rng.NormFloat32() * 0.3
		}
	}
	x := tensor.NewMatrixRand(batch*seq, dim, 1, rng)
	c := tensor.NewMatrixRand(batch*seq, dim, 1, rng)

	loss := func() float64 { return weightedLoss(att.Forward(x, batch, seq), c) }
	loss()
	for _, p := range att.Params() {
		p.ZeroGrad()
	}
	dx := att.Backward(c)

	for _, p := range att.Params() {
		for _, idx := range []int{0, 17, 40, 63} {
			checkGrad(t, p.Name, p.W.Data, idx, float64(p.Grad.Data[idx]), loss, 1e-3, 0.05)
		}
	}
	for _, idx := range []int{0, 13, 31, 55} {
		checkGrad(t, "attn.x", x.Data, idx, float64(dx.Data[idx]), loss, 1e-3, 0.05)
	}
}

func TestModelEndToEndGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	cfg := Config{Vocab: 17, Dim: 8, Hidden: 12, Heads: 2, Layers: 2, MaxSeq: 6}
	model := NewModel(cfg, rng)
	const batch, seq = 2, 4
	tokens := make([]int, batch*seq)
	targets := make([]int, batch*seq)
	for i := range tokens {
		tokens[i] = rng.Intn(cfg.Vocab)
		targets[i] = rng.Intn(cfg.Vocab)
	}

	loss := func() float64 { return model.EvalLoss(tokens, targets, batch, seq) }

	model.Params().ZeroGrad()
	got := model.Loss(tokens, targets, batch, seq)
	if math.IsNaN(got) {
		t.Fatal("loss is NaN")
	}

	// Spot-check a handful of entries in every parameter tensor.
	for _, p := range model.Params().List() {
		indices := []int{0}
		if p.NumEl() > 10 {
			indices = append(indices, p.NumEl()/2, p.NumEl()-1)
		}
		for _, idx := range indices {
			checkGrad(t, p.Name, p.W.Data, idx, float64(p.Grad.Data[idx]), loss, 2e-3, 0.08)
		}
	}
}

func TestCrossEntropyAgainstManual(t *testing.T) {
	logits := tensor.FromSlice(1, 3, []float32{1, 2, 3})
	loss, dl := CrossEntropy(logits, []int{2}, -1)
	// Manual: lse = log(e¹+e²+e³); loss = lse − 3.
	lse := math.Log(math.Exp(1) + math.Exp(2) + math.Exp(3))
	if relErr(loss, lse-3) > 1e-5 {
		t.Fatalf("loss = %v want %v", loss, lse-3)
	}
	// Gradient rows sum to zero (softmax − onehot).
	var sum float64
	for _, v := range dl.Row(0) {
		sum += float64(v)
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("dlogits row sums to %v", sum)
	}
}

func TestCrossEntropyIgnoreIndex(t *testing.T) {
	rng := tensor.NewRNG(6)
	logits := tensor.NewMatrixRand(4, 5, 1, rng)
	lossAll, _ := CrossEntropy(logits, []int{1, 2, 3, 4}, -1)
	lossMasked, dl := CrossEntropy(logits, []int{1, -1, -1, 4}, -1)
	if lossAll == lossMasked {
		t.Fatal("masking should change the mean loss in general")
	}
	for _, v := range dl.Row(1) {
		if v != 0 {
			t.Fatal("ignored row must have zero gradient")
		}
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := tensor.NewRNG(7)
	logits := tensor.NewMatrixRand(3, 6, 1, rng)
	targets := []int{0, 3, 5}
	_, dl := CrossEntropy(logits, targets, -1)
	loss := func() float64 {
		l, _ := CrossEntropy(logits, targets, -1)
		return l
	}
	for _, idx := range []int{0, 5, 9, 17} {
		checkGrad(t, "ce.logits", logits.Data, idx, float64(dl.Data[idx]), loss, 1e-3, 0.02)
	}
}
