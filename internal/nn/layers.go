package nn

import (
	"math"

	"apollo/internal/tensor"
)

// Linear is a bias-free fully connected layer y = x·Wᵀ with W stored out×in
// (the LLaMA convention, and the orientation the paper's m×n analysis
// assumes: channels live on the larger dimension).
type Linear struct {
	P *Param

	x *tensor.Matrix // cached input for the backward pass
}

// NewLinear initializes W ∈ R^{out×in} with N(0, std²) entries.
func NewLinear(name string, in, out int, std float64, rng *tensor.RNG) *Linear {
	w := tensor.NewMatrixRand(out, in, std, rng)
	return &Linear{P: NewParam(name, KindMatrix, w)}
}

// Forward computes y = x·Wᵀ for x of shape N×in.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	return tensor.MatMulT(x, l.P.W)
}

// Backward consumes dy (N×out), accumulates dW and returns dx (N×in).
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	// dW += dyᵀ·x  (out×in)
	tensor.AddInPlace(l.P.Grad, tensor.TMatMul(dy, l.x))
	// dx = dy·W    (N×in)
	return tensor.MatMul(dy, l.P.W)
}

// Embedding maps token ids to dense rows of a vocab×dim table.
type Embedding struct {
	P   *Param
	Dim int

	tokens []int
}

// NewEmbedding initializes the table with N(0, std²) entries.
func NewEmbedding(name string, vocab, dim int, std float64, rng *tensor.RNG) *Embedding {
	w := tensor.NewMatrixRand(vocab, dim, std, rng)
	return &Embedding{P: NewParam(name, KindEmbedding, w), Dim: dim}
}

// Forward gathers rows for each token id.
func (e *Embedding) Forward(tokens []int) *tensor.Matrix {
	e.tokens = tokens
	out := tensor.NewMatrix(len(tokens), e.Dim)
	for i, tok := range tokens {
		copy(out.Row(i), e.P.W.Row(tok))
	}
	return out
}

// Backward scatters dy rows back into the gradient table.
func (e *Embedding) Backward(dy *tensor.Matrix) {
	for i, tok := range e.tokens {
		grow := e.P.Grad.Row(tok)
		drow := dy.Row(i)
		for j, v := range drow {
			grow[j] += v
		}
	}
}

// RMSNorm normalizes each row by its root-mean-square and applies a learned
// per-channel gain (no bias, no mean subtraction — the LLaMA variant).
type RMSNorm struct {
	P   *Param
	Eps float32

	x   *tensor.Matrix
	inv []float32 // 1/rms per row
}

// NewRMSNorm creates a norm over dim channels with gain initialized to 1.
func NewRMSNorm(name string, dim int) *RMSNorm {
	w := tensor.NewMatrix(1, dim)
	w.Fill(1)
	return &RMSNorm{P: NewParam(name, KindVector, w), Eps: 1e-5}
}

// Forward computes y_ij = x_ij * inv_i * g_j.
func (r *RMSNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.x = x
	r.inv = make([]float32, x.Rows)
	out := tensor.NewMatrix(x.Rows, x.Cols)
	g := r.P.W.Row(0)
	dim := float64(x.Cols)
	tensor.Parallel(x.Rows, 16, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			row := x.Row(i)
			ms := tensor.SqNormSlice(row) / dim
			inv := float32(1 / math.Sqrt(ms+float64(r.Eps)))
			r.inv[i] = inv
			orow := out.Row(i)
			for j, v := range row {
				orow[j] = v * inv * g[j]
			}
		}
	})
	return out
}

// Backward accumulates the gain gradient and returns dx.
//
// With u = x·inv (the normalized row): dg_j += Σ_i dy_ij·u_ij and
// dx = inv·(g∘dy − u·mean_j(g∘dy∘u)).
func (r *RMSNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	x := r.x
	dx := tensor.NewMatrix(x.Rows, x.Cols)
	g := r.P.W.Row(0)
	dim := float64(x.Cols)

	// dg is accumulated serially (dim is small); dx rows run in parallel.
	dg := r.P.Grad.Row(0)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		drow := dy.Row(i)
		inv := r.inv[i]
		for j := range row {
			dg[j] += drow[j] * row[j] * inv
		}
	}
	tensor.Parallel(x.Rows, 16, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			row := x.Row(i)
			drow := dy.Row(i)
			inv := r.inv[i]
			var dot float64
			for j := range row {
				dot += float64(drow[j]) * float64(g[j]) * float64(row[j])
			}
			coef := float32(dot/dim) * inv * inv * inv
			orow := dx.Row(i)
			for j := range row {
				orow[j] = g[j]*drow[j]*inv - row[j]*coef
			}
		}
	})
	return dx
}

// silu is x·σ(x), the activation inside SwiGLU.
func silu(x float32) float32 {
	return x * sigmoid(x)
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// siluGrad is d/dx silu(x) = σ(x)·(1 + x·(1−σ(x))).
func siluGrad(x float32) float32 {
	s := sigmoid(x)
	return s * (1 + x*(1-s))
}

// SwiGLU is the LLaMA MLP: down( silu(gate(x)) ∘ up(x) ).
type SwiGLU struct {
	Gate, Up, Down *Linear

	gateOut, upOut, h *tensor.Matrix
}

// NewSwiGLU builds the three projections for dim→hidden→dim.
func NewSwiGLU(prefix string, dim, hidden int, rng *tensor.RNG) *SwiGLU {
	std := 0.02
	return &SwiGLU{
		Gate: NewLinear(prefix+".gate", dim, hidden, std, rng),
		Up:   NewLinear(prefix+".up", dim, hidden, std, rng),
		Down: NewLinear(prefix+".down", hidden, dim, std, rng),
	}
}

// Forward applies the gated MLP.
func (m *SwiGLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	m.gateOut = m.Gate.Forward(x)
	m.upOut = m.Up.Forward(x)
	m.h = tensor.NewMatrix(x.Rows, m.gateOut.Cols)
	for i := range m.h.Data {
		m.h.Data[i] = silu(m.gateOut.Data[i]) * m.upOut.Data[i]
	}
	return m.Down.Forward(m.h)
}

// Backward returns dx and accumulates all three weight gradients.
func (m *SwiGLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dh := m.Down.Backward(dy)
	dgate := tensor.NewMatrix(dh.Rows, dh.Cols)
	dup := tensor.NewMatrix(dh.Rows, dh.Cols)
	for i := range dh.Data {
		dgate.Data[i] = dh.Data[i] * m.upOut.Data[i] * siluGrad(m.gateOut.Data[i])
		dup.Data[i] = dh.Data[i] * silu(m.gateOut.Data[i])
	}
	dx := m.Gate.Backward(dgate)
	tensor.AddInPlace(dx, m.Up.Backward(dup))
	return dx
}

// Params returns the MLP parameters in traversal order.
func (m *SwiGLU) Params() []*Param {
	return []*Param{m.Gate.P, m.Up.P, m.Down.P}
}
