package nn

import (
	"fmt"
	"math"

	"apollo/internal/tensor"
)

// Config describes a LLaMA-style decoder. The paper's Table 11 configs
// (60M–7B) are reproduced at reduced width by the presets in the bench
// package; this struct carries the exact architecture either way.
type Config struct {
	Vocab  int // vocabulary size
	Dim    int // model (hidden) width
	Hidden int // SwiGLU intermediate width
	Heads  int // attention heads
	Layers int // transformer blocks
	MaxSeq int // maximum sequence length (RoPE table size)
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.Vocab <= 0 || c.Dim <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.Layers <= 0 || c.MaxSeq <= 0 {
		return fmt.Errorf("nn: non-positive config field: %+v", c)
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("nn: dim %d not divisible by heads %d", c.Dim, c.Heads)
	}
	if (c.Dim/c.Heads)%2 != 0 {
		return fmt.Errorf("nn: head dim %d must be even for RoPE", c.Dim/c.Heads)
	}
	return nil
}

// NumParams returns the exact trainable parameter count for the config.
func (c Config) NumParams() int {
	perBlock := 4*c.Dim*c.Dim + 3*c.Dim*c.Hidden + 2*c.Dim
	return c.Vocab*c.Dim + c.Layers*perBlock + c.Dim + c.Vocab*c.Dim
}

// Block is one pre-norm transformer layer.
type Block struct {
	Norm1 *RMSNorm
	Attn  *Attention
	Norm2 *RMSNorm
	MLP   *SwiGLU
}

// Forward applies x + Attn(Norm1(x)) then x + MLP(Norm2(x)).
func (b *Block) Forward(x *tensor.Matrix, batch, seq int) *tensor.Matrix {
	h := tensor.Add(x, b.Attn.Forward(b.Norm1.Forward(x), batch, seq))
	return tensor.Add(h, b.MLP.Forward(b.Norm2.Forward(h)))
}

// Backward propagates dy through the block and returns dx.
func (b *Block) Backward(dy *tensor.Matrix) *tensor.Matrix {
	// y = h + MLP(Norm2(h)); dh = dy + Norm2ᵀ(MLPᵀ(dy))
	dh := tensor.Add(dy, b.Norm2.Backward(b.MLP.Backward(dy)))
	// h = x + Attn(Norm1(x)); dx = dh + Norm1ᵀ(Attnᵀ(dh))
	return tensor.Add(dh, b.Norm1.Backward(b.Attn.Backward(dh)))
}

// Params returns the block parameters in traversal order.
func (b *Block) Params() []*Param {
	out := []*Param{b.Norm1.P}
	out = append(out, b.Attn.Params()...)
	out = append(out, b.Norm2.P)
	out = append(out, b.MLP.Params()...)
	return out
}

// Model is the full decoder-only language model with an untied output head.
type Model struct {
	Cfg    Config
	Embed  *Embedding
	Blocks []*Block
	NormF  *RMSNorm
	Head   *Linear

	params *ParamSet
	hidden *tensor.Matrix // cached final hidden states for Backward
	batch  int
	seq    int
}

// NewModel constructs and initializes a model from cfg using rng.
func NewModel(cfg Config, rng *tensor.RNG) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{
		Cfg:   cfg,
		Embed: NewEmbedding("embed", cfg.Vocab, cfg.Dim, 0.02, rng),
		NormF: NewRMSNorm("norm_f", cfg.Dim),
		Head:  NewLinear("head", cfg.Dim, cfg.Vocab, 0.02, rng),
	}
	// The unembedding is a vocab-indexed table like the embedding: the
	// reference GaLore/APOLLO implementations keep both on dense AdamW and
	// project only the attention/MLP matrices. Channel-wise scaling across
	// vocabulary rows is statistically meaningless (rare tokens get
	// whitened noise), and marking the head accordingly is what lets
	// channel-wise APOLLO match the paper's quality.
	m.Head.P.Kind = KindEmbedding
	for i := 0; i < cfg.Layers; i++ {
		prefix := fmt.Sprintf("blocks.%d", i)
		m.Blocks = append(m.Blocks, &Block{
			Norm1: NewRMSNorm(prefix+".norm1", cfg.Dim),
			Attn:  NewAttention(prefix+".attn", cfg.Dim, cfg.Heads, cfg.MaxSeq, rng),
			Norm2: NewRMSNorm(prefix+".norm2", cfg.Dim),
			MLP:   NewSwiGLU(prefix+".mlp", cfg.Dim, cfg.Hidden, rng),
		})
	}
	ps := &ParamSet{}
	ps.Add(m.Embed.P)
	for _, b := range m.Blocks {
		ps.Add(b.Params()...)
	}
	ps.Add(m.NormF.P, m.Head.P)
	m.params = ps
	return m
}

// Params returns the model's parameter set.
func (m *Model) Params() *ParamSet { return m.params }

// Forward maps token ids (length batch·seq, row-major by sequence) to logits
// of shape (batch·seq)×vocab.
func (m *Model) Forward(tokens []int, batch, seq int) *tensor.Matrix {
	if len(tokens) != batch*seq {
		panic(fmt.Sprintf("nn: %d tokens for batch %d × seq %d", len(tokens), batch, seq))
	}
	if seq > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("nn: seq %d exceeds MaxSeq %d", seq, m.Cfg.MaxSeq))
	}
	m.batch, m.seq = batch, seq
	x := m.Embed.Forward(tokens)
	for _, b := range m.Blocks {
		x = b.Forward(x, batch, seq)
	}
	m.hidden = m.NormF.Forward(x)
	return m.Head.Forward(m.hidden)
}

// Backward propagates dlogits through the whole network, accumulating every
// parameter gradient.
func (m *Model) Backward(dlogits *tensor.Matrix) {
	dx := m.NormF.Backward(m.Head.Backward(dlogits))
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(dx)
	}
	m.Embed.Backward(dx)
}

// CountTargets returns the number of entries of targets not equal to
// ignoreIndex — the normalization constant of CrossEntropy. The data-parallel
// trainer computes it once over the global batch so every shard normalizes
// identically.
func CountTargets(targets []int, ignoreIndex int) int {
	counted := 0
	for _, tgt := range targets {
		if tgt != ignoreIndex {
			counted++
		}
	}
	return counted
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// logits and the gradient dlogits = (softmax − onehot)/N. Targets equal to
// ignoreIndex contribute neither loss nor gradient.
func CrossEntropy(logits *tensor.Matrix, targets []int, ignoreIndex int) (float64, *tensor.Matrix) {
	counted := CountTargets(targets, ignoreIndex)
	if counted == 0 {
		return 0, tensor.NewMatrix(logits.Rows, logits.Cols)
	}
	sum, dlogits := CrossEntropyShard(logits, targets, ignoreIndex, counted)
	return sum / float64(counted), dlogits
}

// CrossEntropyShard is the sharded form of CrossEntropy: it returns the
// UNnormalized loss sum over the rows it sees while scaling dlogits by
// 1/normCount, where normCount is the non-ignored target count of the whole
// (possibly multi-shard) batch. Because a row's loss and gradient depend
// only on that row and normCount, a shard's dlogits rows are bit-identical
// to the corresponding rows of a single full-batch call — the property the
// data-parallel trainer's determinism contract rests on.
func CrossEntropyShard(logits *tensor.Matrix, targets []int, ignoreIndex, normCount int) (float64, *tensor.Matrix) {
	if len(targets) != logits.Rows {
		panic(fmt.Sprintf("nn: %d targets for %d logit rows", len(targets), logits.Rows))
	}
	if normCount <= 0 {
		panic(fmt.Sprintf("nn: CrossEntropyShard normCount %d", normCount))
	}
	dlogits := tensor.NewMatrix(logits.Rows, logits.Cols)
	counted := normCount
	lossCh := make([]float64, logits.Rows)
	invN := float32(1.0 / float64(counted))
	tensor.Parallel(logits.Rows, 8, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			tgt := targets[i]
			if tgt == ignoreIndex {
				continue
			}
			row := logits.Row(i)
			lse := tensor.LogSumExp(row)
			lossCh[i] = lse - float64(row[tgt])
			drow := dlogits.Row(i)
			for j, v := range row {
				p := expf(float64(v) - lse)
				drow[j] = float32(p) * invN
			}
			drow[tgt] -= invN
		}
	})
	var total float64
	for _, l := range lossCh {
		total += l
	}
	return total, dlogits
}

// Loss is a convenience wrapper: forward + cross-entropy + backward.
// It returns the mean loss over non-ignored targets.
func (m *Model) Loss(tokens []int, targets []int, batch, seq int) float64 {
	logits := m.Forward(tokens, batch, seq)
	loss, dlogits := CrossEntropy(logits, targets, -1)
	m.Backward(dlogits)
	return loss
}

// LossShard is the data-parallel form of Loss: forward + sharded
// cross-entropy + backward for one shard of a larger batch, normalizing
// gradients by the global non-ignored target count and returning the
// shard's UNnormalized loss sum.
func (m *Model) LossShard(tokens []int, targets []int, batch, seq, normCount int) float64 {
	logits := m.Forward(tokens, batch, seq)
	lossSum, dlogits := CrossEntropyShard(logits, targets, -1, normCount)
	m.Backward(dlogits)
	return lossSum
}

// EvalLoss computes the loss without touching gradients (no backward pass).
func (m *Model) EvalLoss(tokens []int, targets []int, batch, seq int) float64 {
	logits := m.Forward(tokens, batch, seq)
	loss, _ := crossEntropyLossOnly(logits, targets, -1)
	return loss
}

func crossEntropyLossOnly(logits *tensor.Matrix, targets []int, ignoreIndex int) (float64, int) {
	var total float64
	counted := 0
	for i := 0; i < logits.Rows; i++ {
		tgt := targets[i]
		if tgt == ignoreIndex {
			continue
		}
		row := logits.Row(i)
		total += tensor.LogSumExp(row) - float64(row[tgt])
		counted++
	}
	if counted == 0 {
		return 0, 0
	}
	return total / float64(counted), counted
}

func expf(x float64) float64 {
	// Clamp to avoid Inf from pathological logits in early training.
	if x > 60 {
		x = 60
	}
	if x < -60 {
		return 0
	}
	return math.Exp(x)
}
