// Package nn implements the neural-network substrate for the APOLLO
// reproduction: a LLaMA-style decoder-only transformer (RMSNorm, rotary
// position embeddings, SwiGLU MLP, untied LM head) with fully hand-written
// backward passes. No autodiff framework exists in the Go stdlib, so every
// layer implements an explicit Forward/Backward pair; gradient-check tests in
// this package validate each against central differences.
package nn

import (
	"fmt"
	"math"

	"apollo/internal/tensor"
)

// ParamKind classifies parameters for optimizers: low-rank projected
// optimizers (GaLore, Fira, APOLLO) treat only genuine 2-D weight matrices
// specially and fall back to dense AdamW for embeddings and norm gains,
// matching the reference implementations.
type ParamKind int

const (
	// KindMatrix marks 2-D projection-eligible weights (attention, MLP, head).
	KindMatrix ParamKind = iota
	// KindEmbedding marks token-embedding tables (dense rows, sparse grads).
	KindEmbedding
	// KindVector marks 1-D gains/biases (RMSNorm weights).
	KindVector
)

// String implements fmt.Stringer.
func (k ParamKind) String() string {
	switch k {
	case KindMatrix:
		return "matrix"
	case KindEmbedding:
		return "embedding"
	case KindVector:
		return "vector"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// Param is one trainable tensor together with its gradient accumulator.
type Param struct {
	Name string
	Kind ParamKind
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam allocates a parameter and its zeroed gradient.
func NewParam(name string, kind ParamKind, w *tensor.Matrix) *Param {
	return &Param{Name: name, Kind: kind, W: w, Grad: tensor.NewMatrix(w.Rows, w.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumEl returns the parameter element count.
func (p *Param) NumEl() int { return p.W.NumEl() }

// ParamSet is an ordered collection of parameters (order is the traversal
// order of the model, stable across runs).
type ParamSet struct {
	list []*Param
}

// Add appends params to the set.
func (s *ParamSet) Add(ps ...*Param) {
	s.list = append(s.list, ps...)
}

// List returns the ordered parameters.
func (s *ParamSet) List() []*Param { return s.list }

// ZeroGrad clears all gradients.
func (s *ParamSet) ZeroGrad() {
	for _, p := range s.list {
		p.ZeroGrad()
	}
}

// FreeGrads releases every gradient accumulator, halving a model's resident
// footprint for inference-only use (the evaluation service's open snapshots
// never run a backward pass). After the call any gradient-touching operation
// (Backward, ZeroGrad, ClipGradNorm) panics on the nil matrices — the crash
// is deliberate: training a model that was declared eval-only is a bug, not
// a state to limp through.
func (s *ParamSet) FreeGrads() {
	for _, p := range s.list {
		p.Grad = nil
	}
}

// NumParams returns the total trainable element count.
func (s *ParamSet) NumParams() int {
	total := 0
	for _, p := range s.list {
		total += p.NumEl()
	}
	return total
}

// GradNorm returns the global ℓ2 norm over all gradients.
func (s *ParamSet) GradNorm() float64 {
	var sq float64
	for _, p := range s.list {
		sq += p.Grad.SqNorm()
	}
	return math.Sqrt(sq)
}

// ClipGradNorm rescales all gradients so the global norm is at most maxNorm;
// it returns the pre-clip norm.
func (s *ParamSet) ClipGradNorm(maxNorm float64) float64 {
	norm := s.GradNorm()
	if maxNorm > 0 && norm > maxNorm {
		scale := float32(maxNorm / (norm + 1e-12))
		for _, p := range s.list {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}

// ByName returns the first parameter with the given name, or nil.
func (s *ParamSet) ByName(name string) *Param {
	for _, p := range s.list {
		if p.Name == name {
			return p
		}
	}
	return nil
}
