package nn

import (
	"fmt"
	"math"

	"apollo/internal/tensor"
)

// ropeTable caches cos/sin rotation factors for positions [0, maxSeq) and a
// head dimension. RoPE rotates consecutive channel pairs (2i, 2i+1) of q and
// k by position-dependent angles θ_{p,i} = p · base^{−2i/headDim}.
type ropeTable struct {
	cos, sin []float32 // maxSeq × headDim/2, row-major
	headDim  int
}

func newRopeTable(maxSeq, headDim int) *ropeTable {
	const base = 10000.0
	half := headDim / 2
	t := &ropeTable{
		cos:     make([]float32, maxSeq*half),
		sin:     make([]float32, maxSeq*half),
		headDim: headDim,
	}
	for p := 0; p < maxSeq; p++ {
		for i := 0; i < half; i++ {
			theta := float64(p) * math.Pow(base, -2*float64(i)/float64(headDim))
			t.cos[p*half+i] = float32(math.Cos(theta))
			t.sin[p*half+i] = float32(math.Sin(theta))
		}
	}
	return t
}

// apply rotates the head vector x (length headDim) at position p in place.
// sign=+1 applies RoPE; sign=−1 applies the inverse rotation (used in the
// backward pass, since rotations are orthonormal).
func (t *ropeTable) apply(x []float32, p int, sign float32) {
	half := t.headDim / 2
	for i := 0; i < half; i++ {
		c := t.cos[p*half+i]
		s := t.sin[p*half+i] * sign
		a, b := x[2*i], x[2*i+1]
		x[2*i] = a*c - b*s
		x[2*i+1] = a*s + b*c
	}
}

// Attention is causal multi-head self-attention with rotary position
// embeddings and bias-free projections.
type Attention struct {
	Wq, Wk, Wv, Wo *Linear
	Heads          int
	HeadDim        int

	rope *ropeTable

	// forward caches
	q, k, v *tensor.Matrix // N×dim, post-RoPE for q/k
	probs   []float32      // B·H·T·T softmax probabilities
	ctx     *tensor.Matrix // N×dim concatenated head outputs
	batch   int
	seq     int
}

// NewAttention builds the four projections for a model of width dim split
// into heads.
func NewAttention(prefix string, dim, heads, maxSeq int, rng *tensor.RNG) *Attention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	hd := dim / heads
	if hd%2 != 0 {
		panic(fmt.Sprintf("nn: head dim %d must be even for RoPE", hd))
	}
	std := 0.02
	return &Attention{
		Wq:      NewLinear(prefix+".wq", dim, dim, std, rng),
		Wk:      NewLinear(prefix+".wk", dim, dim, std, rng),
		Wv:      NewLinear(prefix+".wv", dim, dim, std, rng),
		Wo:      NewLinear(prefix+".wo", dim, dim, std, rng),
		Heads:   heads,
		HeadDim: hd,
		rope:    newRopeTable(maxSeq, hd),
	}
}

// head returns the sub-slice of row n belonging to head h.
func head(m *tensor.Matrix, n, h, hd int) []float32 {
	row := m.Row(n)
	return row[h*hd : (h+1)*hd]
}

// Forward runs causal attention over a batch of B sequences of length T
// flattened to x of shape (B·T)×dim.
func (a *Attention) Forward(x *tensor.Matrix, batch, seq int) *tensor.Matrix {
	if x.Rows != batch*seq {
		panic(fmt.Sprintf("nn: attention rows %d != batch %d × seq %d", x.Rows, batch, seq))
	}
	a.batch, a.seq = batch, seq
	a.q = a.Wq.Forward(x)
	a.k = a.Wk.Forward(x)
	a.v = a.Wv.Forward(x)

	hd := a.HeadDim
	// RoPE on q and k, position = index within the sequence.
	tensor.Parallel(batch*seq, 8, func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			p := n % seq
			for h := 0; h < a.Heads; h++ {
				a.rope.apply(head(a.q, n, h, hd), p, 1)
				a.rope.apply(head(a.k, n, h, hd), p, 1)
			}
		}
	})

	a.probs = make([]float32, batch*a.Heads*seq*seq)
	a.ctx = tensor.NewMatrix(x.Rows, x.Cols)
	invSqrt := float32(1 / math.Sqrt(float64(hd)))

	// One task per (batch, head) pair.
	bh := batch * a.Heads
	tensor.Parallel(bh, 1, func(t0, t1 int) {
		scores := make([]float32, seq)
		for bhIdx := t0; bhIdx < t1; bhIdx++ {
			b := bhIdx / a.Heads
			h := bhIdx % a.Heads
			base := bhIdx * seq * seq
			for t := 0; t < seq; t++ {
				qv := head(a.q, b*seq+t, h, hd)
				for u := 0; u <= t; u++ {
					scores[u] = tensor.Dot(qv, head(a.k, b*seq+u, h, hd)) * invSqrt
				}
				tensor.SoftmaxInPlace(scores[:t+1])
				prow := a.probs[base+t*seq : base+t*seq+seq]
				copy(prow[:t+1], scores[:t+1])
				cv := head(a.ctx, b*seq+t, h, hd)
				for u := 0; u <= t; u++ {
					p := prow[u]
					vv := head(a.v, b*seq+u, h, hd)
					for d := 0; d < hd; d++ {
						cv[d] += p * vv[d]
					}
				}
			}
		}
	})
	return a.Wo.Forward(a.ctx)
}

// Backward consumes dy (N×dim), accumulates all projection gradients, and
// returns dx.
func (a *Attention) Backward(dy *tensor.Matrix) *tensor.Matrix {
	batch, seq, hd := a.batch, a.seq, a.HeadDim
	dctx := a.Wo.Backward(dy)

	dq := tensor.NewMatrix(a.q.Rows, a.q.Cols)
	dk := tensor.NewMatrix(a.k.Rows, a.k.Cols)
	dv := tensor.NewMatrix(a.v.Rows, a.v.Cols)
	invSqrt := float32(1 / math.Sqrt(float64(hd)))

	bh := batch * a.Heads
	tensor.Parallel(bh, 1, func(t0, t1 int) {
		dattn := make([]float32, seq)
		dscore := make([]float32, seq)
		for bhIdx := t0; bhIdx < t1; bhIdx++ {
			b := bhIdx / a.Heads
			h := bhIdx % a.Heads
			base := bhIdx * seq * seq
			for t := 0; t < seq; t++ {
				dcv := head(dctx, b*seq+t, h, hd)
				prow := a.probs[base+t*seq : base+t*seq+seq]
				// dattn_u = dctx·v_u ; dv_u += p_u·dctx
				for u := 0; u <= t; u++ {
					vv := head(a.v, b*seq+u, h, hd)
					dattn[u] = tensor.Dot(dcv, vv)
					dvv := head(dv, b*seq+u, h, hd)
					p := prow[u]
					for d := 0; d < hd; d++ {
						dvv[d] += p * dcv[d]
					}
				}
				// softmax backward: ds_u = p_u (dattn_u − Σ_w p_w dattn_w)
				var mix float64
				for u := 0; u <= t; u++ {
					mix += float64(prow[u]) * float64(dattn[u])
				}
				for u := 0; u <= t; u++ {
					dscore[u] = prow[u] * (dattn[u] - float32(mix))
				}
				// dq_t += Σ_u ds_u·k_u·invSqrt ; dk_u += ds_u·q_t·invSqrt
				dqv := head(dq, b*seq+t, h, hd)
				qv := head(a.q, b*seq+t, h, hd)
				for u := 0; u <= t; u++ {
					s := dscore[u] * invSqrt
					kv := head(a.k, b*seq+u, h, hd)
					dkv := head(dk, b*seq+u, h, hd)
					for d := 0; d < hd; d++ {
						dqv[d] += s * kv[d]
						dkv[d] += s * qv[d]
					}
				}
			}
		}
	})

	// Undo RoPE on the gradients (inverse rotation).
	tensor.Parallel(batch*seq, 8, func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			p := n % seq
			for h := 0; h < a.Heads; h++ {
				a.rope.apply(head(dq, n, h, hd), p, -1)
				a.rope.apply(head(dk, n, h, hd), p, -1)
			}
		}
	})

	dx := a.Wq.Backward(dq)
	tensor.AddInPlace(dx, a.Wk.Backward(dk))
	tensor.AddInPlace(dx, a.Wv.Backward(dv))
	return dx
}

// Params returns the attention parameters in traversal order.
func (a *Attention) Params() []*Param {
	return []*Param{a.Wq.P, a.Wk.P, a.Wv.P, a.Wo.P}
}
