package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"apollo/internal/tensor"
)

func TestGaussianProjectionDeterministic(t *testing.T) {
	a := GaussianProjection(4, 32, 99)
	b := GaussianProjection(4, 32, 99)
	if !a.Equal(b) {
		t.Fatal("same seed must regenerate identical projection")
	}
	c := GaussianProjection(4, 32, 100)
	if a.Equal(c) {
		t.Fatal("different seeds must differ")
	}
}

func TestGaussianProjectionVariance(t *testing.T) {
	r := 64
	p := GaussianProjection(r, 512, 1)
	var sumsq float64
	for _, v := range p.Data {
		sumsq += float64(v) * float64(v)
	}
	variance := sumsq / float64(p.NumEl())
	if math.Abs(variance-1.0/float64(r)) > 0.1/float64(r) {
		t.Fatalf("entry variance %v want %v", variance, 1.0/float64(r))
	}
}

// TestJLNormPreservation verifies Theorem A.1 empirically: ‖Px‖ ≈ ‖x‖ with
// deviations controlled by rank. This is the paper's foundation for APOLLO's
// scaling-factor bound.
func TestJLNormPreservation(t *testing.T) {
	rng := tensor.NewRNG(3)
	const m, r = 256, 128
	const trials = 200
	var worst float64
	for trial := 0; trial < trials; trial++ {
		x := tensor.NewMatrixRand(m, 1, 1, rng)
		p := GaussianProjection(r, m, rng.Uint64())
		px := tensor.MatMul(p, x)
		ratio := px.Norm() / x.Norm()
		dev := math.Abs(ratio - 1)
		if dev > worst {
			worst = dev
		}
	}
	// With r=128 the concentration bound gives deviations well under 50%;
	// typical worst-case over 200 trials is ~0.3.
	if worst > 0.5 {
		t.Fatalf("JL norm preservation violated: worst deviation %v", worst)
	}
}

// TestJLDeviationShrinksWithRank checks the 1/√r dependence of the
// norm-preservation error, the mechanism that lets APOLLO tolerate low rank.
func TestJLDeviationShrinksWithRank(t *testing.T) {
	rng := tensor.NewRNG(5)
	meanDev := func(r int) float64 {
		const m, trials = 256, 120
		var total float64
		for trial := 0; trial < trials; trial++ {
			x := tensor.NewMatrixRand(m, 1, 1, rng)
			p := GaussianProjection(r, m, rng.Uint64())
			px := tensor.MatMul(p, x)
			total += math.Abs(px.Norm()/x.Norm() - 1)
		}
		return total / trials
	}
	lo, hi := meanDev(4), meanDev(64)
	if hi >= lo {
		t.Fatalf("deviation should shrink with rank: r=4 → %v, r=64 → %v", lo, hi)
	}
}

func TestProjectorRandomRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(7)
	g := tensor.NewMatrixRand(32, 48, 1, rng)
	pr := NewProjector(RandomProjection, 8, 42)
	pr.Refresh(g)
	r := pr.Project(g)
	if r.Rows != 8 || r.Cols != 48 {
		t.Fatalf("projected shape %dx%d want 8x48", r.Rows, r.Cols)
	}
	back := pr.ProjectBack(r)
	if back.Rows != 32 || back.Cols != 48 {
		t.Fatalf("lifted shape %dx%d want 32x48", back.Rows, back.Cols)
	}
}

func TestProjectorSeedReproducesMatrix(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := tensor.NewMatrixRand(16, 16, 1, rng)
	pr := NewProjector(RandomProjection, 4, 1234)
	pr.Refresh(g)
	seed := pr.Seed()
	regenerated := GaussianProjection(4, 16, seed)
	if !pr.Matrix().Equal(regenerated) {
		t.Fatal("projection must be reproducible from its seed alone")
	}
}

func TestProjectorRefreshChangesRandomMatrix(t *testing.T) {
	rng := tensor.NewRNG(11)
	g := tensor.NewMatrixRand(16, 16, 1, rng)
	pr := NewProjector(RandomProjection, 4, 77)
	pr.Refresh(g)
	first := pr.Matrix().Clone()
	pr.Refresh(g)
	if pr.Matrix().Equal(first) {
		t.Fatal("refresh must draw a new subspace")
	}
}

func TestProjectorSVDAlignsWithGradient(t *testing.T) {
	// For a near rank-1 gradient, the SVD projector must preserve far more
	// energy than the rank itself would suggest.
	rng := tensor.NewRNG(13)
	u := tensor.NewMatrixRand(24, 1, 1, rng)
	v := tensor.NewMatrixRand(1, 36, 1, rng)
	g := tensor.MatMul(u, v)
	pr := NewProjector(SVDProjection, 2, 0)
	pr.Refresh(g)
	r := pr.Project(g)
	if r.Norm() < 0.99*g.Norm() {
		t.Fatalf("SVD projection kept only %v of %v", r.Norm(), g.Norm())
	}
}

func TestProjectorStateFloats(t *testing.T) {
	rng := tensor.NewRNG(15)
	g := tensor.NewMatrixRand(64, 80, 1, rng)
	rp := NewProjector(RandomProjection, 16, 1)
	rp.Refresh(g)
	if got := rp.StateFloats(); got != 1 {
		t.Fatalf("random projector state = %d floats, want 1 (seed only)", got)
	}
	sp := NewProjector(SVDProjection, 16, 1)
	sp.Refresh(g)
	if got := sp.StateFloats(); got != 16*64 {
		t.Fatalf("svd projector state = %d floats, want %d", got, 16*64)
	}
}

func TestRefreshFlopsSVDMuchLarger(t *testing.T) {
	rnd := RefreshFlops(RandomProjection, 256, 4096, 4096)
	svd := RefreshFlops(SVDProjection, 256, 4096, 4096)
	if svd < 1000*rnd {
		t.Fatalf("SVD refresh (%v) should dwarf random refresh (%v)", svd, rnd)
	}
}

func TestProjectLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		m, n := 4+rng.Intn(16), 4+rng.Intn(16)
		g1 := tensor.NewMatrixRand(m, n, 1, rng)
		g2 := tensor.NewMatrixRand(m, n, 1, rng)
		pr := NewProjector(RandomProjection, 3, rng.Uint64())
		pr.Refresh(g1)
		lhs := pr.Project(tensor.Add(g1, g2))
		rhs := tensor.Add(pr.Project(g1), pr.Project(g2))
		return lhs.AllClose(rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
