package linalg

import (
	"fmt"
	"math"

	"apollo/internal/tensor"
)

// ProjectionKind selects how a low-rank optimizer builds its projection
// matrix.
type ProjectionKind int

const (
	// RandomProjection samples P from N(0, 1/r) using only a stored seed —
	// APOLLO's default. Regenerating the matrix costs a seeded RNG pass, so
	// the optimizer never has to persist P (Table 1's "+2" constant: the
	// seed plus the previous gradient norm for the norm-growth limiter).
	RandomProjection ProjectionKind = iota
	// SVDProjection uses the top-k left singular vectors of the current
	// gradient — GaLore's default and the "APOLLO w. SVD" variant.
	SVDProjection
)

// String implements fmt.Stringer.
func (k ProjectionKind) String() string {
	switch k {
	case RandomProjection:
		return "random"
	case SVDProjection:
		return "svd"
	default:
		return fmt.Sprintf("ProjectionKind(%d)", int(k))
	}
}

// GaussianProjection materializes an r×m matrix with i.i.d. N(0, 1/r)
// entries from the given seed. Identical seeds yield identical matrices, so
// callers may discard the matrix and regenerate it on demand.
func GaussianProjection(r, m int, seed uint64) *tensor.Matrix {
	if r <= 0 || m <= 0 {
		panic(fmt.Sprintf("linalg: GaussianProjection dims %dx%d", r, m))
	}
	rng := tensor.NewRNG(seed)
	p := tensor.NewMatrix(r, m)
	std := 1.0 / math.Sqrt(float64(r))
	for i := range p.Data {
		p.Data[i] = float32(rng.Norm() * std)
	}
	return p
}

// Projector produces and refreshes the r×m projection used to compress
// gradients. It abstracts the SVD/random choice so optimizers share the same
// update path.
type Projector struct {
	Kind ProjectionKind
	Rank int

	seed uint64
	rng  *tensor.RNG
	p    *tensor.Matrix // current projection (r×m), lazily built
	m    int
}

// NewProjector builds a projector of the given kind and rank. The seed
// parameterizes the random-projection stream; it is ignored for SVD.
func NewProjector(kind ProjectionKind, rank int, seed uint64) *Projector {
	return &Projector{Kind: kind, Rank: rank, seed: seed, rng: tensor.NewRNG(seed)}
}

// Refresh rebuilds the projection matrix from the current gradient g (m×n).
// For random projections this just draws a fresh seed — the O(mn·min(m,n))
// SVD cost disappears entirely, which is the core of APOLLO's system claim.
func (pr *Projector) Refresh(g *tensor.Matrix) {
	pr.m = g.Rows
	switch pr.Kind {
	case RandomProjection:
		pr.seed = pr.rng.Uint64()
		pr.p = GaussianProjection(pr.Rank, g.Rows, pr.seed)
	case SVDProjection:
		pr.p = TopKLeft(g, pr.Rank)
	default:
		panic("linalg: unknown projection kind")
	}
}

// Ready reports whether a projection has been built.
func (pr *Projector) Ready() bool { return pr.p != nil }

// Matrix returns the current r×m projection.
func (pr *Projector) Matrix() *tensor.Matrix {
	if pr.p == nil {
		panic("linalg: Projector used before Refresh")
	}
	return pr.p
}

// Seed returns the seed of the current random projection (meaningful only
// for RandomProjection). Storing this single value is all APOLLO needs to be
// able to reproduce P.
func (pr *Projector) Seed() uint64 { return pr.seed }

// Project computes R = P·G (r×n).
func (pr *Projector) Project(g *tensor.Matrix) *tensor.Matrix {
	return tensor.MatMul(pr.Matrix(), g)
}

// ProjectInto computes out = P·G reusing out's storage.
func (pr *Projector) ProjectInto(out, g *tensor.Matrix) {
	tensor.MatMulInto(out, pr.Matrix(), g)
}

// ProjectBack lifts a low-rank update R (r×n) to the original space, Pᵀ·R
// (m×n). GaLore needs this on every step; APOLLO never does (it only reads
// norms in the compressed space).
func (pr *Projector) ProjectBack(r *tensor.Matrix) *tensor.Matrix {
	return tensor.TMatMul(pr.Matrix(), r)
}

// StateFloats reports how many float32 values the projector must keep
// resident between steps: SVD must persist the full r×m matrix, whereas the
// random projector only needs its seed (counted as one scalar slot,
// matching the "+2 = seed + gradient norm" accounting in Table 1).
func (pr *Projector) StateFloats() int {
	switch pr.Kind {
	case RandomProjection:
		return 1
	case SVDProjection:
		return pr.Rank * pr.m
	default:
		return 0
	}
}

// ProjectorSnap is the persistent state of a Projector for checkpointing:
// the current seed, the RNG phase that generates future refresh seeds, the
// projected dimension, and — only for SVD, whose matrix derives from a past
// gradient and cannot be regenerated — the projection matrix itself. A
// random projector's matrix is rebuilt from Seed on restore, so the
// checkpoint stays as small as Table 1's "+1 seed" accounting promises.
type ProjectorSnap struct {
	Seed  uint64
	RNG   uint64
	M     int
	Ready bool
	P     *tensor.Matrix // SVD only; nil for random projections
}

// Snapshot captures the projector's persistent state. The returned matrix
// (SVD only) is a deep copy, safe to retain across further refreshes.
func (pr *Projector) Snapshot() ProjectorSnap {
	s := ProjectorSnap{Seed: pr.seed, RNG: pr.rng.State(), M: pr.m, Ready: pr.p != nil}
	if pr.Kind == SVDProjection && pr.p != nil {
		s.P = pr.p.Clone()
	}
	return s
}

// RestoreSnapshot installs a state captured by Snapshot. The projector must
// have been constructed with the same kind and rank. Random projections are
// regenerated from the restored seed bit-for-bit.
func (pr *Projector) RestoreSnapshot(s ProjectorSnap) error {
	pr.seed = s.Seed
	pr.rng.SetState(s.RNG)
	pr.m = s.M
	pr.p = nil
	if !s.Ready {
		return nil
	}
	switch pr.Kind {
	case RandomProjection:
		if s.M <= 0 {
			return fmt.Errorf("linalg: restore random projector with m=%d", s.M)
		}
		pr.p = GaussianProjection(pr.Rank, s.M, s.Seed)
	case SVDProjection:
		if s.P == nil {
			return fmt.Errorf("linalg: restore SVD projector without its matrix")
		}
		if s.P.Rows != pr.Rank || s.P.Cols != s.M {
			return fmt.Errorf("linalg: restore SVD projector %dx%d, want %dx%d",
				s.P.Rows, s.P.Cols, pr.Rank, s.M)
		}
		pr.p = s.P.Clone()
	default:
		return fmt.Errorf("linalg: restore unknown projection kind %v", pr.Kind)
	}
	return nil
}

// RefreshFlops estimates the cost of one projection refresh on an m×n
// gradient. Random projection costs one RNG pass over r·m entries; SVD costs
// a full decomposition.
func RefreshFlops(kind ProjectionKind, rank, m, n int) float64 {
	switch kind {
	case RandomProjection:
		return float64(rank * m)
	case SVDProjection:
		return SVDFlops(m, n)
	default:
		return 0
	}
}
