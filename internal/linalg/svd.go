// Package linalg provides the decompositions and projection operators used by
// low-rank optimizers: a one-sided Jacobi SVD (the expensive path taken by
// GaLore/Fira and "APOLLO w. SVD") and seeded Gaussian random projections (the
// cheap path that APOLLO defaults to). It also exposes FLOP-cost estimates for
// both, which the cluster simulator uses to model throughput spikes.
package linalg

import (
	"fmt"
	"math"

	"apollo/internal/tensor"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ where
// A is m×n, U is m×k, V is n×k and S has k = min(m, n) entries sorted in
// descending order.
type SVDResult struct {
	U *tensor.Matrix
	S []float64
	V *tensor.Matrix
}

// svdMaxSweeps bounds the Jacobi iteration count; convergence is usually
// reached in far fewer sweeps for the gradient matrices seen in training.
const svdMaxSweeps = 60

// SVD computes a thin SVD of a via one-sided Jacobi rotations. One-sided
// Jacobi orthogonalizes the columns of a working copy of A; the column norms
// become singular values, the normalized columns become U, and the
// accumulated rotations give V. For m < n the decomposition is computed on
// Aᵀ and the factors are swapped.
func SVD(a *tensor.Matrix) SVDResult {
	if a.Rows < a.Cols {
		r := SVD(a.T())
		return SVDResult{U: r.V, S: r.S, V: r.U}
	}
	m, n := a.Rows, a.Cols
	// Work on column-major copies for cache-friendly column rotations.
	w := make([][]float64, n) // columns of working copy of A
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = float64(a.At(i, j))
		}
		w[j] = col
	}
	v := make([][]float64, n) // columns of V
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		col[j] = 1
		v[j] = col
	}

	const eps = 1e-12
	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := dot64(w[p], w[p])
				beta := dot64(w[q], w[q])
				gamma := dot64(w[p], w[q])
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta)+1e-300 {
					continue
				}
				off += math.Abs(gamma)
				// Jacobi rotation zeroing the (p,q) off-diagonal of AᵀA.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotate(w[p], w[q], c, s)
				rotate(v[p], v[q], c, s)
			}
		}
		if off < eps {
			break
		}
	}

	// Singular values are the column norms; sort descending.
	type col struct {
		norm float64
		idx  int
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		cols[j] = col{math.Sqrt(dot64(w[j], w[j])), j}
	}
	// Insertion sort (n is small: rank dims).
	for i := 1; i < n; i++ {
		cj := cols[i]
		k := i - 1
		for k >= 0 && cols[k].norm < cj.norm {
			cols[k+1] = cols[k]
			k--
		}
		cols[k+1] = cj
	}

	u := tensor.NewMatrix(m, n)
	vt := tensor.NewMatrix(n, n)
	s := make([]float64, n)
	for rank, cj := range cols {
		s[rank] = cj.norm
		src := w[cj.idx]
		inv := 0.0
		if cj.norm > 1e-300 {
			inv = 1 / cj.norm
		}
		for i := 0; i < m; i++ {
			u.Set(i, rank, float32(src[i]*inv))
		}
		vcol := v[cj.idx]
		for i := 0; i < n; i++ {
			vt.Set(i, rank, float32(vcol[i]))
		}
	}
	return SVDResult{U: u, S: s, V: vt}
}

func dot64(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func rotate(x, y []float64, c, s float64) {
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// TopKLeft returns the first k left singular vectors as a k×m projection
// matrix P (rows are singular vectors), so that R = P·G projects gradients
// into the dominant subspace. This mirrors GaLore's use of torch.svd.
func TopKLeft(a *tensor.Matrix, k int) *tensor.Matrix {
	if k <= 0 || k > min(a.Rows, a.Cols) {
		panic(fmt.Sprintf("linalg: TopKLeft rank %d out of range for %dx%d", k, a.Rows, a.Cols))
	}
	res := SVD(a)
	p := tensor.NewMatrix(k, a.Rows)
	for r := 0; r < k; r++ {
		for i := 0; i < a.Rows; i++ {
			p.Set(r, i, res.U.At(i, r))
		}
	}
	return p
}

// Reconstruct multiplies the thin factors back together (testing aid).
func (r SVDResult) Reconstruct() *tensor.Matrix {
	k := len(r.S)
	us := r.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := 0; j < k; j++ {
			row[j] *= float32(r.S[j])
		}
	}
	return tensor.MatMulT(us, r.V)
}

// SVDFlops estimates the floating-point cost of a full SVD of an m×n matrix,
// O(m·n·min(m,n)) with the classical constant. The cluster simulator uses
// this to model GaLore's projection-update spikes.
func SVDFlops(m, n int) float64 {
	mn := math.Min(float64(m), float64(n))
	return 4 * float64(m) * float64(n) * mn
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
