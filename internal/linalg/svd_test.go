package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"apollo/internal/tensor"
)

func TestSVDReconstructsKnown(t *testing.T) {
	a := tensor.FromSlice(2, 2, []float32{3, 0, 0, 2})
	res := SVD(a)
	if math.Abs(res.S[0]-3) > 1e-5 || math.Abs(res.S[1]-2) > 1e-5 {
		t.Fatalf("singular values %v want [3 2]", res.S)
	}
	if !res.Reconstruct().AllClose(a, 1e-4) {
		t.Fatal("reconstruction failed")
	}
}

func TestSVDReconstructionRandom(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		m, n := 2+rng.Intn(20), 2+rng.Intn(20)
		a := tensor.NewMatrixRand(m, n, 1, rng)
		res := SVD(a)
		return res.Reconstruct().AllClose(a, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDSingularValuesSortedNonNegative(t *testing.T) {
	rng := tensor.NewRNG(5)
	a := tensor.NewMatrixRand(15, 9, 1, rng)
	res := SVD(a)
	for i, s := range res.S {
		if s < 0 {
			t.Fatalf("negative singular value %v", s)
		}
		if i > 0 && res.S[i-1] < s-1e-9 {
			t.Fatalf("singular values not sorted: %v", res.S)
		}
	}
}

func TestSVDOrthogonalFactors(t *testing.T) {
	rng := tensor.NewRNG(7)
	a := tensor.NewMatrixRand(12, 8, 1, rng)
	res := SVD(a)
	utu := tensor.TMatMul(res.U, res.U) // k×k, should be ≈ I
	for i := 0; i < utu.Rows; i++ {
		for j := 0; j < utu.Cols; j++ {
			want := float32(0)
			if i == j {
				want = 1
			}
			if math.Abs(float64(utu.At(i, j)-want)) > 1e-4 {
				t.Fatalf("UᵀU[%d][%d]=%v", i, j, utu.At(i, j))
			}
		}
	}
	vtv := tensor.TMatMul(res.V, res.V)
	for i := 0; i < vtv.Rows; i++ {
		for j := 0; j < vtv.Cols; j++ {
			want := float32(0)
			if i == j {
				want = 1
			}
			if math.Abs(float64(vtv.At(i, j)-want)) > 1e-4 {
				t.Fatalf("VᵀV[%d][%d]=%v", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := tensor.NewRNG(9)
	a := tensor.NewMatrixRand(5, 20, 1, rng)
	res := SVD(a)
	if !res.Reconstruct().AllClose(a, 1e-3) {
		t.Fatal("wide-matrix reconstruction failed")
	}
}

func TestSVDFrobeniusIdentity(t *testing.T) {
	// ‖A‖_F² == Σ σᵢ².
	rng := tensor.NewRNG(11)
	a := tensor.NewMatrixRand(10, 14, 1, rng)
	res := SVD(a)
	var ssq float64
	for _, s := range res.S {
		ssq += s * s
	}
	if math.Abs(ssq-a.SqNorm()) > 1e-3*a.SqNorm() {
		t.Fatalf("Σσ² = %v, ‖A‖² = %v", ssq, a.SqNorm())
	}
}

func TestTopKLeftCapturesDominantSubspace(t *testing.T) {
	// Build a matrix with a strongly dominant rank-1 component; TopKLeft(1)
	// must capture nearly all its energy.
	rng := tensor.NewRNG(13)
	u := tensor.NewMatrixRand(16, 1, 1, rng)
	v := tensor.NewMatrixRand(1, 24, 1, rng)
	a := tensor.Scale(10, tensor.MatMul(u, v))
	noise := tensor.NewMatrixRand(16, 24, 0.01, rng)
	tensor.AddInPlace(a, noise)

	p := TopKLeft(a, 1) // 1×16
	r := tensor.MatMul(p, a)
	if r.Norm() < 0.95*a.Norm() {
		t.Fatalf("rank-1 projection kept %v of %v", r.Norm(), a.Norm())
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// A rank-1 matrix must produce one large singular value and the rest ~0.
	rng := tensor.NewRNG(15)
	u := tensor.NewMatrixRand(8, 1, 1, rng)
	v := tensor.NewMatrixRand(1, 8, 1, rng)
	a := tensor.MatMul(u, v)
	res := SVD(a)
	if res.S[0] < 1e-3 {
		t.Fatal("dominant singular value vanished")
	}
	for _, s := range res.S[1:] {
		if s > 1e-4*res.S[0] {
			t.Fatalf("rank-1 matrix has extra singular value %v (σ0=%v)", s, res.S[0])
		}
	}
}

func TestSVDFlopsMonotone(t *testing.T) {
	if SVDFlops(100, 100) >= SVDFlops(200, 100) {
		t.Fatal("SVD flops must grow with m")
	}
	if SVDFlops(4096, 4096) < 1e11 {
		t.Fatalf("7B-layer SVD flops unrealistically low: %v", SVDFlops(4096, 4096))
	}
}
