// Weights-only checkpoint access: the read path of the evaluation service.
// A served snapshot needs the model and its identity — never the optimizer
// moments — so ReadModel decodes only the META and WGTS sections and leaves
// the OPTG/OPTP payloads untouched. Every section CRC is still verified
// (serving a silently corrupted model is worse than refusing), but the
// optimizer-state bytes are never decoded into matrices: the resident cost
// of an open snapshot is its model weights (memmodel.ServeBytes), not the
// 2–3× larger training footprint the full Read materializes.

package ckpt

import (
	"fmt"
	"io"
	"math"
	"os"

	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// ModelSnapshot is the weights-only view of a checkpoint: identity, the
// self-describing parameter table and the weight matrices. It carries no
// optimizer state and no data cursor — everything a forward pass needs,
// nothing a training step would.
type ModelSnapshot struct {
	Version   uint32
	Optimizer string
	Step      int
	LR        float64
	Params    []ParamMeta
	Weights   []*tensor.Matrix // one per parameter, in table order
}

// WeightBytes returns the resident footprint of the decoded weights.
func (s *ModelSnapshot) WeightBytes() int64 {
	var total int64
	for _, w := range s.Weights {
		total += 4 * int64(len(w.Data))
	}
	return total
}

// decodeMeta parses a META payload (shared by Read and ReadModel).
func decodeMeta(payload []byte) (optimizer string, step int, lr float64, params []ParamMeta, err error) {
	meta := &dec{buf: payload}
	optimizer = meta.str()
	step = int(meta.u64())
	lr = math.Float64frombits(meta.u64())
	nparams := int(meta.u64())
	if meta.err == nil && nparams > len(meta.buf) {
		return "", 0, 0, nil, fmt.Errorf("ckpt: META claims %d parameters in a %d-byte table", nparams, len(meta.buf))
	}
	for i := 0; i < nparams && meta.err == nil; i++ {
		params = append(params, ParamMeta{
			Name: meta.str(), Kind: meta.u8(),
			Rows: int(meta.u32()), Cols: int(meta.u32()),
		})
	}
	if err := meta.done(); err != nil {
		return "", 0, 0, nil, fmt.Errorf("ckpt: META: %w", err)
	}
	return optimizer, step, lr, params, nil
}

// decodeWeights parses a WGTS payload against a parameter table.
func decodeWeights(payload []byte, params []ParamMeta) ([]*tensor.Matrix, error) {
	wgts := &dec{buf: payload}
	out := make([]*tensor.Matrix, 0, len(params))
	for _, p := range params {
		out = append(out, wgts.matrix(p.Rows, p.Cols))
	}
	if err := wgts.done(); err != nil {
		return nil, fmt.Errorf("ckpt: WGTS: %w", err)
	}
	return out, nil
}

// ReadModel decodes the weights-only view of a checkpoint. The magic,
// version and every section CRC are verified exactly as in Read, but only
// META and WGTS are decoded — the optimizer sections never allocate.
func ReadModel(r io.Reader) (*ModelSnapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	version, secs, err := readSections(raw)
	if err != nil {
		return nil, err
	}
	byTag := map[string][]byte{}
	for _, s := range secs {
		byTag[s.tag] = s.payload
	}
	for _, tag := range []string{TagMeta, TagWeights} {
		if _, ok := byTag[tag]; !ok {
			return nil, fmt.Errorf("ckpt: missing section %s", tag)
		}
	}
	snap := &ModelSnapshot{Version: version}
	snap.Optimizer, snap.Step, snap.LR, snap.Params, err = decodeMeta(byTag[TagMeta])
	if err != nil {
		return nil, err
	}
	snap.Weights, err = decodeWeights(byTag[TagWeights], snap.Params)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// LoadModelFile reads the weights-only view of a checkpoint file.
func LoadModelFile(path string) (*ModelSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //apollo:allowdiscard file opened read-only; close cannot lose written bytes
	return ReadModel(f)
}

// matchParams verifies a live parameter list against a checkpoint table:
// same names, kinds and shapes in the same order.
func matchParams(params []*nn.Param, metas []ParamMeta) error {
	if len(params) != len(metas) {
		return fmt.Errorf("ckpt: model has %d parameters, checkpoint %d", len(params), len(metas))
	}
	for i, p := range params {
		m := metas[i]
		if p.Name != m.Name || uint8(p.Kind) != m.Kind || p.W.Rows != m.Rows || p.W.Cols != m.Cols {
			return fmt.Errorf("ckpt: parameter %d is %s/%v/%dx%d, checkpoint has %s/%d/%dx%d",
				i, p.Name, p.Kind, p.W.Rows, p.W.Cols, m.Name, m.Kind, m.Rows, m.Cols)
		}
	}
	return nil
}

// InstallWeights copies the snapshot's weights into a live parameter list
// after verifying the table matches (same names, kinds and shapes in the
// same order). The snapshot stays valid and unshared afterwards.
func (s *ModelSnapshot) InstallWeights(params []*nn.Param) error {
	if err := matchParams(params, s.Params); err != nil {
		return err
	}
	for i, p := range params {
		p.W.CopyFrom(s.Weights[i])
	}
	return nil
}
