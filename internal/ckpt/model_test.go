package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// TestReadModelMatchesFullRead: the weights-only view decodes the same
// identity and weights as the full Read, bit-for-bit.
func TestReadModelMatchesFullRead(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	snap, err := ReadModel(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Optimizer != st.Optimizer || snap.Step != st.Step || snap.LR != st.LR || snap.Version != Version {
		t.Fatalf("identity drifted: %+v", snap)
	}
	if len(snap.Params) != len(st.Params) {
		t.Fatalf("param table %d != %d", len(snap.Params), len(st.Params))
	}
	var weightBytes int64
	for i := range st.Params {
		if snap.Params[i] != st.Params[i] {
			t.Fatalf("param meta %d: %+v != %+v", i, snap.Params[i], st.Params[i])
		}
		if !snap.Weights[i].Equal(st.Weights[i]) {
			t.Fatalf("weights %s differ from full read", st.Params[i].Name)
		}
		weightBytes += 4 * int64(snap.Weights[i].NumEl())
	}
	if got := snap.WeightBytes(); got != weightBytes {
		t.Fatalf("WeightBytes %d, want %d", got, weightBytes)
	}
	// The weights-only decode must be strictly smaller than the file: the
	// optimizer payload (AdamW = 2x weights here) is never materialized.
	if int64(len(raw)) < 2*weightBytes {
		t.Fatalf("test premise broken: file %d bytes vs weights %d", len(raw), weightBytes)
	}
}

// TestReadModelRejectsCorruptOptimizerSection: the read-only path skips
// decoding OPTG/OPTP but still verifies their CRCs — a served model must
// never come from a file that would be refused for resume.
func TestReadModelRejectsCorruptOptimizerSection(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The OPTP payload sits at the tail; flip a byte there.
	raw[len(raw)-9] ^= 1
	if _, err := ReadModel(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt optimizer section accepted by the weights-only read")
	}
}

// TestLoadModelFileAndInstall: the on-disk round trip into a live model.
func TestLoadModelFileAndInstall(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := nn.Config{Vocab: 32, Dim: 8, Hidden: 24, Heads: 2, Layers: 1, MaxSeq: 16}
	fresh := nn.NewModel(cfg, tensor.NewRNG(99))
	if err := snap.InstallWeights(fresh.Params().List()); err != nil {
		t.Fatal(err)
	}
	for i, p := range fresh.Params().List() {
		if !p.W.Equal(params[i].W) {
			t.Fatalf("installed weights differ for %s", p.Name)
		}
	}

	// A mismatched architecture is refused with the table named.
	other := nn.NewModel(nn.Config{Vocab: 32, Dim: 16, Hidden: 24, Heads: 2, Layers: 1, MaxSeq: 16}, tensor.NewRNG(1))
	if err := snap.InstallWeights(other.Params().List()); err == nil {
		t.Fatal("mismatched model accepted")
	}

	// Missing file surfaces the OS error.
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "nope.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("missing file error %v", err)
	}
}
