// Binary checkpoint format: versioned, self-describing, integrity-checked.
//
//	file    := header section*
//	header  := magic[8]="APOLCKPT" | version u32 | nsections u32
//	section := tag[4] | payloadLen u64 | crc32(payload) u32 | payload
//
// All integers are little-endian; float32/float64 travel as their IEEE-754
// bit patterns, so a load reproduces the saved values bit-for-bit. Each
// section carries its own CRC-32 (IEEE): a single flipped byte anywhere in
// a payload is detected at load time and named by section. The five
// sections are META (optimizer identity, step/LR counters, the full
// parameter table with names, kinds and shapes — what makes the file
// self-describing), WGTS (model weights), DATA (the corpus training-stream
// cursor), OPTG (optimizer-level RNG cursors) and OPTP (per-parameter
// optimizer state in the canonical unsharded layout of optim.ParamState).
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// Format constants.
const (
	// Magic identifies a checkpoint file.
	Magic = "APOLCKPT"
	// Version is the current format version; Read rejects anything newer.
	Version = 1

	headerBytes     = 8 + 4 + 4
	sectionOverhead = 4 + 8 + 4
)

// Section tags, in file order.
const (
	TagMeta    = "META"
	TagWeights = "WGTS"
	TagData    = "DATA"
	TagGlobals = "OPTG"
	TagStates  = "OPTP"
)

var sectionOrder = []string{TagMeta, TagWeights, TagData, TagGlobals, TagStates}

// ParamMeta describes one parameter in the checkpoint's own table.
type ParamMeta struct {
	Name       string
	Kind       uint8
	Rows, Cols int
}

// State is a fully decoded checkpoint: everything needed to resume a
// training run bit-identically, decoupled from any live objects.
type State struct {
	Version   uint32
	Optimizer string
	Step      int
	LR        float64
	Params    []ParamMeta
	Weights   []*tensor.Matrix // one per parameter, in table order
	// DataCursor is the corpus training-stream RNG phase.
	DataCursor uint64
	// OptGlobals are the optimizer-level cursors (optim.StateSaver order).
	OptGlobals []uint64
	// OptStates holds one canonical per-parameter state per table entry;
	// nil entries mean the optimizer held no state for that parameter.
	OptStates []*optim.ParamState
}

// enc is a little-endian append-only buffer.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *enc) str(s string) {
	if len(s) > math.MaxUint16 {
		panic(fmt.Sprintf("ckpt: string of %d bytes", len(s)))
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) f32s(v []float32) {
	for _, f := range v {
		e.u32(math.Float32bits(f))
	}
}

func (e *enc) blob(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// dec is the sticky-error reader over one section payload.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("ckpt: truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) str() string {
	n := int(d.u16())
	return string(d.take(n))
}

func (d *dec) f32s(n int) []float32 {
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (d *dec) blob() []byte {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.buf)-d.off) {
		d.fail("ckpt: blob of %d bytes exceeds payload", n)
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("ckpt: %d trailing bytes in payload", len(d.buf)-d.off)
	}
	return nil
}

// matrix reads rows×cols float32s; dims validated against the payload size
// before allocation.
func (d *dec) matrix(rows, cols int) *tensor.Matrix {
	if d.err != nil {
		return nil
	}
	// Compare in element units: 4*n could overflow for absurd declared
	// dims, letting a crafted file reach make() and panic.
	n := rows * cols
	if rows < 0 || cols < 0 || n < 0 || (cols != 0 && n/cols != rows) || n > (len(d.buf)-d.off)/4 {
		d.fail("ckpt: matrix %dx%d exceeds payload", rows, cols)
		return nil
	}
	data := d.f32s(n)
	if d.err != nil {
		return nil
	}
	return tensor.FromSlice(rows, cols, data)
}

// encodeParamState serializes one canonical per-parameter state
// (recursively for wrapper-nested states).
func encodeParamState(e *enc, st *optim.ParamState) {
	e.u16(uint16(len(st.Scalars)))
	for _, v := range st.Scalars {
		e.u64(v)
	}
	e.u8(uint8(len(st.RowMats)))
	for _, m := range st.RowMats {
		e.u32(uint32(m.Rows))
		e.u32(uint32(m.Cols))
		e.f32s(m.Data)
	}
	e.u8(uint8(len(st.Whole)))
	for _, m := range st.Whole {
		e.u32(uint32(m.Rows))
		e.u32(uint32(m.Cols))
		e.f32s(m.Data)
	}
	e.u8(uint8(len(st.Blobs)))
	for _, b := range st.Blobs {
		e.blob(b)
	}
	if st.Sub != nil {
		e.u8(1)
		encodeParamState(e, st.Sub)
	} else {
		e.u8(0)
	}
}

// maxStateNesting bounds the Sub chain a file may declare. Legitimate
// nesting is depth 1 (WeightQuantized wrapping an inner optimizer); without
// a cap, a crafted file of repeated Sub-present flags would recurse the
// decoder into an unrecoverable stack overflow.
const maxStateNesting = 4

func decodeParamState(d *dec, depth int) *optim.ParamState {
	if depth > maxStateNesting {
		d.fail("ckpt: optimizer state nested deeper than %d", maxStateNesting)
		return nil
	}
	st := &optim.ParamState{}
	nscalars := int(d.u16())
	for i := 0; i < nscalars && d.err == nil; i++ {
		st.Scalars = append(st.Scalars, d.u64())
	}
	nrow := int(d.u8())
	for i := 0; i < nrow && d.err == nil; i++ {
		rows, cols := int(d.u32()), int(d.u32())
		st.RowMats = append(st.RowMats, d.matrix(rows, cols))
	}
	nwhole := int(d.u8())
	for i := 0; i < nwhole && d.err == nil; i++ {
		rows, cols := int(d.u32()), int(d.u32())
		st.Whole = append(st.Whole, d.matrix(rows, cols))
	}
	nblobs := int(d.u8())
	for i := 0; i < nblobs && d.err == nil; i++ {
		st.Blobs = append(st.Blobs, d.blob())
	}
	if d.u8() != 0 && d.err == nil {
		st.Sub = decodeParamState(d, depth+1)
	}
	if d.err != nil {
		return nil
	}
	return st
}

// encodeSections renders the five section payloads of a State.
func encodeSections(st *State) map[string][]byte {
	meta := &enc{}
	meta.str(st.Optimizer)
	meta.u64(uint64(st.Step))
	meta.u64(math.Float64bits(st.LR))
	meta.u64(uint64(len(st.Params)))
	for _, p := range st.Params {
		meta.str(p.Name)
		meta.u8(p.Kind)
		meta.u32(uint32(p.Rows))
		meta.u32(uint32(p.Cols))
	}

	wgts := &enc{}
	for _, w := range st.Weights {
		wgts.f32s(w.Data)
	}

	data := &enc{}
	data.u64(st.DataCursor)

	optg := &enc{}
	optg.u16(uint16(len(st.OptGlobals)))
	for _, g := range st.OptGlobals {
		optg.u64(g)
	}

	optp := &enc{}
	for _, ps := range st.OptStates {
		if ps == nil {
			optp.u8(0)
			continue
		}
		optp.u8(1)
		encodeParamState(optp, ps)
	}

	return map[string][]byte{
		TagMeta:    meta.buf,
		TagWeights: wgts.buf,
		TagData:    data.buf,
		TagGlobals: optg.buf,
		TagStates:  optp.buf,
	}
}

// Write serializes st. The layout is deterministic: identical states
// produce identical bytes, so tests may hash the output.
func Write(w io.Writer, st *State) error {
	if len(st.Weights) != len(st.Params) || len(st.OptStates) != len(st.Params) {
		return fmt.Errorf("ckpt: state tables disagree: %d params, %d weights, %d opt states",
			len(st.Params), len(st.Weights), len(st.OptStates))
	}
	sections := encodeSections(st)
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], Version)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(sectionOrder)))
	buf.Write(hdr[:])
	for _, tag := range sectionOrder {
		payload := sections[tag]
		buf.WriteString(tag)
		var sh [12]byte
		binary.LittleEndian.PutUint64(sh[0:], uint64(len(payload)))
		binary.LittleEndian.PutUint32(sh[8:], crc32.ChecksumIEEE(payload))
		buf.Write(sh[:])
		buf.Write(payload)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// rawSection is one parsed-but-undecoded section.
type rawSection struct {
	tag     string
	crc     uint32
	payload []byte
}

// readSections parses the header and section table, verifying every CRC.
func readSections(raw []byte) (version uint32, secs []rawSection, err error) {
	if len(raw) < headerBytes || string(raw[:8]) != Magic {
		return 0, nil, fmt.Errorf("ckpt: not a checkpoint file (bad magic)")
	}
	version = binary.LittleEndian.Uint32(raw[8:])
	if version > Version {
		return 0, nil, fmt.Errorf("ckpt: format version %d is newer than supported %d", version, Version)
	}
	n := int(binary.LittleEndian.Uint32(raw[12:]))
	at := headerBytes
	for i := 0; i < n; i++ {
		if at+sectionOverhead > len(raw) {
			return 0, nil, fmt.Errorf("ckpt: truncated section table (section %d of %d)", i+1, n)
		}
		tag := string(raw[at : at+4])
		plen := binary.LittleEndian.Uint64(raw[at+4:])
		crc := binary.LittleEndian.Uint32(raw[at+12:])
		at += sectionOverhead
		if plen > uint64(len(raw)-at) {
			return 0, nil, fmt.Errorf("ckpt: section %s claims %d bytes, %d remain", tag, plen, len(raw)-at)
		}
		payload := raw[at : at+int(plen)]
		at += int(plen)
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return 0, nil, fmt.Errorf("ckpt: section %s is corrupt (CRC %08x, want %08x)", tag, got, crc)
		}
		secs = append(secs, rawSection{tag: tag, crc: crc, payload: payload})
	}
	if at != len(raw) {
		return 0, nil, fmt.Errorf("ckpt: %d trailing bytes after last section", len(raw)-at)
	}
	return version, secs, nil
}

// Read decodes a checkpoint, verifying the magic, version and every
// section CRC; any corruption is rejected with the offending section named.
func Read(r io.Reader) (*State, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	version, secs, err := readSections(raw)
	if err != nil {
		return nil, err
	}
	byTag := map[string][]byte{}
	for _, s := range secs {
		byTag[s.tag] = s.payload
	}
	for _, tag := range sectionOrder {
		if _, ok := byTag[tag]; !ok {
			return nil, fmt.Errorf("ckpt: missing section %s", tag)
		}
	}

	st := &State{Version: version}
	st.Optimizer, st.Step, st.LR, st.Params, err = decodeMeta(byTag[TagMeta])
	if err != nil {
		return nil, err
	}
	st.Weights, err = decodeWeights(byTag[TagWeights], st.Params)
	if err != nil {
		return nil, err
	}

	data := &dec{buf: byTag[TagData]}
	st.DataCursor = data.u64()
	if err := data.done(); err != nil {
		return nil, fmt.Errorf("ckpt: DATA: %w", err)
	}

	optg := &dec{buf: byTag[TagGlobals]}
	nglob := int(optg.u16())
	for i := 0; i < nglob && optg.err == nil; i++ {
		st.OptGlobals = append(st.OptGlobals, optg.u64())
	}
	if err := optg.done(); err != nil {
		return nil, fmt.Errorf("ckpt: OPTG: %w", err)
	}

	optp := &dec{buf: byTag[TagStates]}
	for range st.Params {
		if optp.u8() == 0 {
			st.OptStates = append(st.OptStates, nil)
			continue
		}
		st.OptStates = append(st.OptStates, decodeParamState(optp, 0))
	}
	if err := optp.done(); err != nil {
		return nil, fmt.Errorf("ckpt: OPTP: %w", err)
	}
	return st, nil
}

// SectionInfo summarizes one section for the inspector.
type SectionInfo struct {
	Tag string
	Len int64
	CRC uint32
}

// FileInfo is the inspector's view of a checkpoint: header fields and the
// section table. Building one verifies every CRC.
type FileInfo struct {
	Size     int64
	Version  uint32
	Sections []SectionInfo
}

// Inspect parses the header and section table of a serialized checkpoint,
// verifying integrity without decoding the payloads.
func Inspect(raw []byte) (*FileInfo, error) {
	version, secs, err := readSections(raw)
	if err != nil {
		return nil, err
	}
	info := &FileInfo{Size: int64(len(raw)), Version: version}
	for _, s := range secs {
		info.Sections = append(info.Sections, SectionInfo{Tag: s.tag, Len: int64(len(s.payload)), CRC: s.crc})
	}
	return info, nil
}
