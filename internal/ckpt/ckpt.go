// Package ckpt is the bit-exact checkpoint/resume subsystem: it snapshots a
// training run — model weights, step and LR counters, the corpus data-RNG
// cursor and the optimizer's complete persistent state (via the
// optim.StateSaver / optim.StateLoader hooks) — into a versioned,
// CRC-protected binary file, and restores it so that *train K steps →
// checkpoint → resume K steps* reproduces *train 2K steps straight*
// float-for-float (train.TestCheckpointResumeParity).
//
// Optimizer state is stored in the canonical unsharded layout, so
// checkpoints are elastic across ZeRO world sizes: a snapshot written under
// `-replicas N -zero` (internal/zero gathers shard-owned segments on save)
// resumes under any `-replicas M -zero` or unsharded world
// (train.TestElasticReshardParity).
package ckpt

import (
	"fmt"
	"os"
	"path/filepath"

	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/optim"
)

// Name returns the identity checkpoints are keyed by: the optimizer's own
// name, except for wrappers (zero.Sharded) that answer with their inner
// optimizer's so snapshots stay world-size independent.
func Name(opt optim.Optimizer) string {
	if n, ok := opt.(optim.CheckpointNamer); ok {
		return n.CheckpointName()
	}
	return opt.Name()
}

// Capture snapshots a live training run after `step` completed steps. The
// optimizer must implement optim.StateSaver; corpus may be nil for runs
// without a data stream. All captured data is deeply copied — the snapshot
// stays valid while training continues.
func Capture(step int, params []*nn.Param, opt optim.Optimizer, corpus *data.Corpus) (*State, error) {
	saver, ok := opt.(optim.StateSaver)
	if !ok {
		return nil, fmt.Errorf("ckpt: optimizer %s does not support checkpointing (no optim.StateSaver)", opt.Name())
	}
	st := &State{
		Version:   Version,
		Optimizer: Name(opt),
		Step:      step,
		LR:        opt.LR(),
	}
	if corpus != nil {
		st.DataCursor = corpus.TrainCursor()
	}
	globals, err := saver.CaptureGlobals()
	if err != nil {
		return nil, err
	}
	st.OptGlobals = globals
	for _, p := range params {
		st.Params = append(st.Params, ParamMeta{
			Name: p.Name, Kind: uint8(p.Kind), Rows: p.W.Rows, Cols: p.W.Cols,
		})
		st.Weights = append(st.Weights, p.W.Clone())
		ps, err := saver.CaptureParam(p)
		if err != nil {
			return nil, fmt.Errorf("ckpt: capture %s: %w", p.Name, err)
		}
		st.OptStates = append(st.OptStates, ps)
	}
	return st, nil
}

// Restore installs a snapshot into live training objects: weights are
// copied into params, the corpus cursor is rewound, and the optimizer's
// state is rebuilt through optim.StateLoader. The parameter table must
// match the checkpoint exactly (same names, kinds and shapes in the same
// order); the optimizer must be the same method that wrote the snapshot,
// though its ZeRO world size may differ — a sharded target is initialized
// here and the canonical states are scattered across its current partition.
func Restore(st *State, params []*nn.Param, opt optim.Optimizer, corpus *data.Corpus) error {
	loader, ok := opt.(optim.StateLoader)
	if !ok {
		return fmt.Errorf("ckpt: optimizer %s does not support checkpointing (no optim.StateLoader)", opt.Name())
	}
	if got := Name(opt); got != st.Optimizer {
		return fmt.Errorf("ckpt: checkpoint was written by %q, cannot resume with %q", st.Optimizer, got)
	}
	if err := matchParams(params, st.Params); err != nil {
		return err
	}

	// A partitioned optimizer must know its ownership map before states can
	// be scattered; Init is idempotent for the same parameter list, so the
	// training loop's own Init call later is a no-op.
	if sh, ok := opt.(optim.ShardedStepper); ok {
		sh.Init(params)
	}

	for i, p := range params {
		p.W.CopyFrom(st.Weights[i])
	}
	if corpus != nil {
		corpus.SeekTrain(st.DataCursor)
	}
	opt.SetLR(st.LR)
	if err := loader.RestoreGlobals(st.OptGlobals); err != nil {
		return err
	}
	for i, ps := range st.OptStates {
		if ps == nil {
			continue
		}
		if err := loader.RestoreParam(params[i], ps); err != nil {
			return fmt.Errorf("ckpt: restore %s: %w", params[i].Name, err)
		}
	}
	return nil
}

// SaveFile atomically writes st to path: the bytes land in a temporary
// sibling file first and replace any existing checkpoint via rename, so a
// crash mid-save never destroys the previous snapshot.
func SaveFile(path string, st *State) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, st); err != nil {
		// The write already failed and the temp file is discarded; the
		// close error is secondary but still accounted, never silent.
		obs.CountWriteError(tmp.Close())
		return err
	}
	// Flush to stable storage before the rename becomes visible: without it
	// a power loss can leave the path pointing at an empty file while the
	// previous snapshot is already gone.
	if err := tmp.Sync(); err != nil {
		obs.CountWriteError(tmp.Close())
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads and fully verifies a checkpoint file.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //apollo:allowdiscard file opened read-only; close cannot lose written bytes
	return Read(f)
}

// InspectFile parses a checkpoint's header and section table, verifying
// every CRC without decoding payloads — the apollo-ckpt entry point.
func InspectFile(path string) (*FileInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Inspect(raw)
}
