package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// testSetup builds a tiny model, an AdamW optimizer with populated state,
// and a corpus whose cursor has advanced.
func testSetup(t *testing.T) ([]*nn.Param, optim.Optimizer, *data.Corpus) {
	t.Helper()
	cfg := nn.Config{Vocab: 32, Dim: 8, Hidden: 24, Heads: 2, Layers: 1, MaxSeq: 16}
	model := nn.NewModel(cfg, tensor.NewRNG(5))
	opt := optim.NewAdamW(optim.Hyper{LR: 1e-3})
	srcCfg := data.DefaultSourceConfig()
	srcCfg.Vocab = 32
	src, err := data.NewSource(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewCorpus(src, 7, 8)
	params := model.Params().List()
	// Populate optimizer state and advance the data cursor.
	for i := 0; i < 3; i++ {
		b := corpus.NextTrainBatch(2, 8)
		model.Params().ZeroGrad()
		model.Loss(b.Tokens, b.Targets, b.B, b.T)
		opt.Step(params)
	}
	return params, opt, corpus
}

// TestWriteReadRoundTrip checks a snapshot survives serialization
// bit-for-bit, including scalars, weights and per-parameter states.
func TestWriteReadRoundTrip(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Optimizer != st.Optimizer || got.Step != st.Step || got.LR != st.LR ||
		got.DataCursor != st.DataCursor || got.Version != Version {
		t.Fatalf("header fields drifted: %+v vs %+v", got, st)
	}
	if len(got.Params) != len(st.Params) {
		t.Fatalf("param table %d != %d", len(got.Params), len(st.Params))
	}
	for i := range st.Params {
		if got.Params[i] != st.Params[i] {
			t.Fatalf("param meta %d: %+v != %+v", i, got.Params[i], st.Params[i])
		}
		if !got.Weights[i].Equal(st.Weights[i]) {
			t.Fatalf("weights %s differ after round trip", st.Params[i].Name)
		}
		a, b := got.OptStates[i], st.OptStates[i]
		if (a == nil) != (b == nil) {
			t.Fatalf("state presence differs for %s", st.Params[i].Name)
		}
		if a == nil {
			continue
		}
		if len(a.Scalars) != len(b.Scalars) || len(a.RowMats) != len(b.RowMats) {
			t.Fatalf("state layout differs for %s", st.Params[i].Name)
		}
		for j := range b.Scalars {
			if a.Scalars[j] != b.Scalars[j] {
				t.Fatalf("scalar %d differs for %s", j, st.Params[i].Name)
			}
		}
		for j := range b.RowMats {
			if !a.RowMats[j].Equal(b.RowMats[j]) {
				t.Fatalf("row matrix %d differs for %s", j, st.Params[i].Name)
			}
		}
	}
}

// TestWriteDeterministic pins the byte-level determinism contract: the same
// state serializes to identical bytes.
func TestWriteDeterministic(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := Write(&a, st); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of one state produced different bytes")
	}
}

// TestCRCDetectsCorruption flips every byte position in turn across a small
// sample and checks the loader rejects each corrupted file with a CRC (or
// structural) error — the save → corrupt one byte → reject contract.
func TestCRCDetectsCorruption(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Exhaustively flipping every byte is slow for big payloads; stride
	// through the file and always hit the header and each section header.
	stride := len(raw)/256 + 1
	for at := 0; at < len(raw); at += stride {
		mut := append([]byte(nil), raw...)
		mut[at] ^= 0x40
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at byte %d of %d went undetected", at, len(raw))
		}
	}
	// Truncation is rejected too.
	if _, err := Read(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated file went undetected")
	}
	if _, err := Read(bytes.NewReader(raw[:4])); err == nil {
		t.Fatal("header stub went undetected")
	}
}

// TestNestingBombRejected pins the decoder's recursion cap: a crafted OPTP
// payload that is just a chain of Sub-present flags must come back as a
// decode error, not a stack overflow.
func TestNestingBombRejected(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Legal nesting at the cap round-trips…
	deep := &optim.ParamState{Scalars: []uint64{1}}
	for i := 0; i < maxStateNesting; i++ {
		deep = &optim.ParamState{Scalars: []uint64{uint64(i)}, Sub: deep}
	}
	st.OptStates[0] = deep
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("nesting at the cap rejected: %v", err)
	}
	// …one level past it is refused.
	st.OptStates[0] = &optim.ParamState{Scalars: []uint64{9}, Sub: deep}
	buf.Reset()
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("nesting bomb accepted")
	}
}

// TestInspect checks the section table view: five sections in order, sizes
// summing to the file, and corruption surfacing as an error.
func TestInspect(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != Version || len(info.Sections) != len(sectionOrder) {
		t.Fatalf("unexpected file info %+v", info)
	}
	total := int64(headerBytes)
	for i, s := range info.Sections {
		if s.Tag != sectionOrder[i] {
			t.Fatalf("section %d is %s, want %s", i, s.Tag, sectionOrder[i])
		}
		total += sectionOverhead + s.Len
	}
	if total != info.Size {
		t.Fatalf("section sizes sum to %d, file is %d", total, info.Size)
	}

	mut := append([]byte(nil), buf.Bytes()...)
	mut[len(mut)-1] ^= 1
	if _, err := Inspect(mut); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("inspect of corrupted file: %v", err)
	}
}

// TestSaveLoadFile checks the atomic file path and that restoring into
// fresh objects reproduces weights, cursor and LR exactly.
func TestSaveLoadFile(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	// A second save replaces the first atomically.
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	if files, _ := os.ReadDir(filepath.Dir(path)); len(files) != 1 {
		t.Fatalf("temp files left behind: %v", files)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	freshParams, freshOpt, freshCorpus := testSetup(t)
	// Perturb so Restore provably overwrites.
	freshParams[0].W.Fill(42)
	freshCorpus.SeekTrain(0)
	if err := Restore(loaded, freshParams, freshOpt, freshCorpus); err != nil {
		t.Fatal(err)
	}
	for i, p := range freshParams {
		if !p.W.Equal(params[i].W) {
			t.Fatalf("restored weight %s differs", p.Name)
		}
	}
	if freshCorpus.TrainCursor() != corpus.TrainCursor() {
		t.Fatal("data cursor not restored")
	}
	if freshOpt.LR() != opt.LR() {
		t.Fatal("LR not restored")
	}
}

// TestRestoreRejectsMismatch pins the safety checks: wrong optimizer and
// wrong model shape are both refused.
func TestRestoreRejectsMismatch(t *testing.T) {
	params, opt, corpus := testSetup(t)
	st, err := Capture(3, params, opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(st, params, optim.NewSGD(optim.Hyper{LR: 1e-3}, 0.9), corpus); err == nil {
		t.Fatal("restore with a different optimizer was accepted")
	}
	cfg := nn.Config{Vocab: 32, Dim: 16, Hidden: 40, Heads: 2, Layers: 1, MaxSeq: 16}
	other := nn.NewModel(cfg, tensor.NewRNG(1))
	if err := Restore(st, other.Params().List(), opt, corpus); err == nil {
		t.Fatal("restore into a mismatched model was accepted")
	}
}
