package memmodel

import (
	"math"
	"testing"

	"apollo/internal/core"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

func TestParamCountsMatchPaperScale(t *testing.T) {
	// The named configs must land near their nominal sizes.
	wants := map[string]float64{
		"60M": 58e6, "130M": 134e6, "350M": 368e6, "1B": 1.3e9, "7B": 6.7e9, "13B": 13e9,
	}
	for _, cfg := range PaperConfigs() {
		got := float64(cfg.NumParams())
		want := wants[cfg.Name]
		if math.Abs(got-want)/want > 0.15 {
			t.Fatalf("%s: %v params, want ≈ %v", cfg.Name, got, want)
		}
	}
}

func TestAdamWMemoryMatchesTable2(t *testing.T) {
	// Table 2 reports weights+states in BF16-equivalent units: AdamW 60M =
	// 0.36G, 130M = 0.76G, 350M = 2.06G, 1B = 7.80G. The paper counts
	// optimizer states at the same 2 bytes/элем as the weights.
	wants := map[string]float64{"60M": 0.36, "130M": 0.76, "350M": 2.06, "1B": 7.80}
	for name, want := range wants {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		params := float64(cfg.NumParams())
		got := GiB(params * BytesBF16 * 3) // weights + M + V
		if math.Abs(got-want)/want > 0.12 {
			t.Fatalf("%s AdamW memory %vG want ≈ %vG", name, got, want)
		}
	}
}

func TestStateOrderingMatchesPaper(t *testing.T) {
	// For every config: AdamW > GaLore > APOLLO > APOLLO-Mini ≈ SGD-ish.
	for _, cfg := range PaperConfigs() {
		r := cfg.DefaultRank()
		adam := OptimizerStateBytes(cfg, MethodAdamW, r)
		galore := OptimizerStateBytes(cfg, MethodGaLore, r)
		apollo := OptimizerStateBytes(cfg, MethodAPOLLO, r)
		mini := OptimizerStateBytes(cfg, MethodAPOLLOMini, r)
		sgd := OptimizerStateBytes(cfg, MethodSGD, r)
		if !(adam > galore && galore > apollo && apollo > mini && mini > sgd) {
			t.Fatalf("%s ordering violated: adam=%v galore=%v apollo=%v mini=%v sgd=%v",
				cfg.Name, adam, galore, apollo, mini, sgd)
		}
		// APOLLO-Mini's projected-matrix state must be negligible vs AdamW:
		// the residue is the dense fallback on norms only.
		if mini > 0.05*adam {
			t.Fatalf("%s: Mini states %v not ≪ AdamW %v", cfg.Name, mini, adam)
		}
	}
}

func TestAPOLLO7BStateNearPaperEstimate(t *testing.T) {
	// Table 3: APOLLO (rank 256) ≈ 1.6G of optimizer states on 7B;
	// APOLLO-Mini ≈ "0.0G" (negligible). fp32 states.
	cfg, _ := ConfigByName("7B")
	apollo := GiB(OptimizerStateBytes(cfg, MethodAPOLLO, 256))
	if apollo < 0.5 || apollo > 3.0 {
		t.Fatalf("7B APOLLO state %vG, paper reports ≈1.6G", apollo)
	}
	mini := GiB(OptimizerStateBytes(cfg, MethodAPOLLOMini, 1))
	if mini > 0.2 {
		t.Fatalf("7B Mini state %vG should be ≈0", mini)
	}
}

// TestLiveOptimizerMatchesFormula cross-checks the analytic Table 1 formulas
// against the bytes actually allocated by the live optimizers on a single
// matrix parameter — the two accountings must agree exactly.
func TestLiveOptimizerMatchesFormula(t *testing.T) {
	const m, n, r = 32, 96, 8
	mk := func() *nn.Param {
		rng := tensor.NewRNG(1)
		return nn.NewParam("w", nn.KindMatrix, tensor.NewMatrixRand(m, n, 0.1, rng))
	}
	step := func(o optim.Optimizer, p *nn.Param) {
		rng := tensor.NewRNG(2)
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat32()
		}
		o.Step([]*nn.Param{p})
	}

	cases := []struct {
		method Method
		build  func() optim.Optimizer
	}{
		{MethodAdamW, func() optim.Optimizer { return optim.NewAdamW(optim.Hyper{LR: 0.01}) }},
		{MethodAPOLLO, func() optim.Optimizer {
			return core.New(optim.Hyper{LR: 0.01}, core.Config{Rank: r})
		}},
		{MethodAPOLLOMini, func() optim.Optimizer { return core.NewMini(optim.Hyper{LR: 0.01}) }},
	}
	for _, c := range cases {
		p := mk()
		o := c.build()
		step(o, p)
		rank := int64(r)
		if c.method.Name == "APOLLO-Mini" {
			rank = 1
		}
		want := int64(c.method.StateElems(m, n, rank)) * 4
		if got := o.StateBytes(); got != want {
			t.Fatalf("%s: live StateBytes %d != formula %d", c.method.Name, got, want)
		}
	}
}

func TestComputeBreakdown7B(t *testing.T) {
	cfg, _ := ConfigByName("7B")
	plan := Plan{
		Config: cfg, Method: MethodAdamW, SeqLen: 1024, MicroBatch: 4,
	}
	b := Compute(plan)
	if GiB(b.Weights) < 11 || GiB(b.Weights) > 15 {
		t.Fatalf("7B BF16 weights %vG want ≈ 12.5G", GiB(b.Weights))
	}
	if GiB(b.States) < 22 || GiB(b.States) > 32 {
		t.Fatalf("7B AdamW states %vG want ≈ 25G (paper: 28G, BF16 units)", GiB(b.States))
	}
}

func TestLayerWiseGradSavesMemory(t *testing.T) {
	cfg, _ := ConfigByName("7B")
	full := Compute(Plan{Config: cfg, Method: MethodAPOLLOMini, SeqLen: 256, MicroBatch: 1})
	lw := Compute(Plan{Config: cfg, Method: MethodAPOLLOMini, SeqLen: 256, MicroBatch: 1, LayerWiseGrad: true})
	if lw.Gradients >= full.Gradients/5 {
		t.Fatalf("layer-wise gradients %v not ≪ full %v", lw.Gradients, full.Gradients)
	}
}

func TestCheckpointingSavesActivationMemory(t *testing.T) {
	cfg, _ := ConfigByName("7B")
	on := Compute(Plan{Config: cfg, Method: MethodAdamW, SeqLen: 1024, MicroBatch: 8, ActivationCkpt: true})
	off := Compute(Plan{Config: cfg, Method: MethodAdamW, SeqLen: 1024, MicroBatch: 8})
	if on.Activations >= off.Activations/3 {
		t.Fatalf("checkpointing saved too little: %v vs %v", on.Activations, off.Activations)
	}
}

// TestQAPOLLOMiniUnder12GB reproduces the headline Fig. 1 claim: LLaMA-7B
// pre-training under 12 GB with INT8 weights + APOLLO-Mini + layer-wise
// gradient updates + activation checkpointing.
func TestQAPOLLOMiniUnder12GB(t *testing.T) {
	cfg, _ := ConfigByName("7B")
	plan := Plan{
		Config: cfg, Method: MethodAPOLLOMini, Rank: 1,
		SeqLen: 256, MicroBatch: 1,
		Int8Weights: true, GroupSize: 128,
		LayerWiseGrad: true, ActivationCkpt: true,
	}
	b := Compute(plan)
	if got := GiB(b.Total()); got >= 12 {
		t.Fatalf("Q-APOLLO-Mini 7B total %vG, paper claims < 12G (breakdown %+v)", got, b)
	}
}

// TestAdamW13BDoesNotFitButMiniDoes reproduces the Section 5.3 claim:
// APOLLO-Mini pre-trains 13B on one 80 GB device with naive DDP while AdamW
// cannot.
func TestAdamW13BDoesNotFitButMiniDoes(t *testing.T) {
	cfg, _ := ConfigByName("13B")
	adam := Compute(Plan{Config: cfg, Method: MethodAdamW, SeqLen: 256, MicroBatch: 1, ActivationCkpt: true})
	if GiB(adam.Total()) < 80 {
		t.Fatalf("AdamW 13B total %vG unexpectedly fits in 80G", GiB(adam.Total()))
	}
	mini := Compute(Plan{
		Config: cfg, Method: MethodAPOLLOMini, Rank: 1,
		SeqLen: 256, MicroBatch: 1, LayerWiseGrad: true, ActivationCkpt: true,
	})
	if GiB(mini.Total()) >= 80 {
		t.Fatalf("APOLLO-Mini 13B total %vG does not fit in 80G", GiB(mini.Total()))
	}
}

func TestTable1RowsComplete(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows want 5", len(rows))
	}
	if !rows[0].NoSVD || rows[3].NoSVD {
		t.Fatal("SVD flags wrong: APOLLO-Mini avoids SVD, GaLore does not")
	}
	for _, r := range rows[:2] {
		if !r.FullRankGrad || !r.PreTraining {
			t.Fatalf("APOLLO rows must be full-rank-gradient pre-trainable: %+v", r)
		}
	}
}

func TestMethodByName(t *testing.T) {
	if _, err := MethodByName("APOLLO"); err != nil {
		t.Fatal(err)
	}
	if _, err := MethodByName("nope"); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestConfigByNameUnknown(t *testing.T) {
	if _, err := ConfigByName("999B"); err == nil {
		t.Fatal("expected error")
	}
}

// TestServeBytes: the serving footprint is weights-dominated, independent
// of the optimizer that trained the snapshot, and far below both the
// checkpoint size and the training-plan total for the same config.
func TestServeBytes(t *testing.T) {
	cfg, err := ConfigByName("7B")
	if err != nil {
		t.Fatal(err)
	}
	params := float64(cfg.NumParams())
	got := ServeBytesFor(cfg)
	if got < BytesFP32*params {
		t.Fatalf("ServeBytes %v below the raw fp32 weights %v", got, BytesFP32*params)
	}
	// Bookkeeping must stay marginal: under 0.1% at 7B scale.
	if got > BytesFP32*params*1.001 {
		t.Fatalf("ServeBytes %v carries more than 0.1%% overhead over %v", got, BytesFP32*params)
	}
	// Serving must be cheaper than an AdamW checkpoint of the same model
	// (which adds two fp32 moments per weight): roughly one third.
	ck := CheckpointBytesFor(cfg, MethodAdamW, 0)
	if got > ck/2 {
		t.Fatalf("ServeBytes %v not well below AdamW CheckpointBytes %v", got, ck)
	}
	// And ServeBytes must not depend on a method at all — that is the point
	// of skipping the optimizer sections on the read path.
	if ServeBytes(cfg.Shapes()) != got {
		t.Fatal("ServeBytes drifted between call forms")
	}
}
