// Package memmodel provides the analytic memory accounting used to
// regenerate the paper's memory artifacts: Table 1's optimizer-state
// formulas, Table 2's weights+states column, Fig. 1 (middle)'s 7B breakdown
// and the 13B-DDP / 7B-under-12GB feasibility claims. The model works from
// the exact LLaMA layer shapes (Table 11) and per-method state formulas; the
// live optimizers in internal/optim and internal/core are cross-checked
// against it in tests so the two can never drift apart.
package memmodel

import (
	"fmt"
)

// Bytes per element for the storage formats the paper uses.
const (
	BytesBF16 = 2
	BytesFP32 = 4
	BytesINT8 = 1
)

// GiB converts bytes to binary gigabytes.
func GiB(b float64) float64 { return b / (1 << 30) }

// Shape is one weight matrix (or vector, rows=1).
type Shape struct {
	Name       string
	Rows, Cols int
	// Projectable marks 2-D matrices eligible for low-rank treatment.
	Projectable bool
}

// NumEl returns the element count.
func (s Shape) NumEl() int64 { return int64(s.Rows) * int64(s.Cols) }

// LLaMAConfig mirrors Table 11 plus the 13B configuration referenced in
// Section 5.3.
type LLaMAConfig struct {
	Name   string
	Vocab  int
	Hidden int
	Inter  int
	Heads  int
	Layers int
	Steps  int     // pre-training steps (Table 11)
	Tokens float64 // training tokens (Table 11)
}

// PaperConfigs returns the exact model family of Table 11 (+13B).
func PaperConfigs() []LLaMAConfig {
	return []LLaMAConfig{
		{Name: "60M", Vocab: 32000, Hidden: 512, Inter: 1376, Heads: 8, Layers: 8, Steps: 10_000, Tokens: 1.3e9},
		{Name: "130M", Vocab: 32000, Hidden: 768, Inter: 2048, Heads: 12, Layers: 12, Steps: 20_000, Tokens: 2.6e9},
		{Name: "350M", Vocab: 32000, Hidden: 1024, Inter: 2736, Heads: 16, Layers: 24, Steps: 60_000, Tokens: 7.8e9},
		{Name: "1B", Vocab: 32000, Hidden: 2048, Inter: 5461, Heads: 32, Layers: 24, Steps: 100_000, Tokens: 13.1e9},
		{Name: "7B", Vocab: 32000, Hidden: 4096, Inter: 11008, Heads: 32, Layers: 32, Steps: 150_000, Tokens: 19.7e9},
		{Name: "13B", Vocab: 32000, Hidden: 5120, Inter: 13824, Heads: 40, Layers: 40, Steps: 150_000, Tokens: 26e9},
	}
}

// ConfigByName looks up a paper config.
func ConfigByName(name string) (LLaMAConfig, error) {
	for _, c := range PaperConfigs() {
		if c.Name == name {
			return c, nil
		}
	}
	return LLaMAConfig{}, fmt.Errorf("memmodel: unknown config %q", name)
}

// Shapes expands a config into its full list of weight tensors.
func (c LLaMAConfig) Shapes() []Shape {
	var out []Shape
	out = append(out, Shape{Name: "embed", Rows: c.Vocab, Cols: c.Hidden, Projectable: true})
	for l := 0; l < c.Layers; l++ {
		p := fmt.Sprintf("layer%d.", l)
		out = append(out,
			Shape{Name: p + "norm1", Rows: 1, Cols: c.Hidden},
			Shape{Name: p + "wq", Rows: c.Hidden, Cols: c.Hidden, Projectable: true},
			Shape{Name: p + "wk", Rows: c.Hidden, Cols: c.Hidden, Projectable: true},
			Shape{Name: p + "wv", Rows: c.Hidden, Cols: c.Hidden, Projectable: true},
			Shape{Name: p + "wo", Rows: c.Hidden, Cols: c.Hidden, Projectable: true},
			Shape{Name: p + "norm2", Rows: 1, Cols: c.Hidden},
			Shape{Name: p + "gate", Rows: c.Inter, Cols: c.Hidden, Projectable: true},
			Shape{Name: p + "up", Rows: c.Inter, Cols: c.Hidden, Projectable: true},
			Shape{Name: p + "down", Rows: c.Hidden, Cols: c.Inter, Projectable: true},
		)
	}
	out = append(out,
		Shape{Name: "norm_f", Rows: 1, Cols: c.Hidden},
		Shape{Name: "head", Rows: c.Vocab, Cols: c.Hidden, Projectable: true},
	)
	return out
}

// NumParams returns the total parameter count.
func (c LLaMAConfig) NumParams() int64 {
	var total int64
	for _, s := range c.Shapes() {
		total += s.NumEl()
	}
	return total
}

// DefaultRank returns the paper's per-model default rank ("one-quarter of
// the original dimension" = hidden/4).
func (c LLaMAConfig) DefaultRank() int { return c.Hidden / 4 }

// Method identifies an optimizer for state accounting. The formulas are
// Table 1's, applied per projectable matrix in m×n orientation (m ≤ n);
// non-projectable tensors fall back to dense AdamW states, matching every
// reference implementation.
type Method struct {
	Name string
	// StateElems returns the optimizer-state element count for one m×n
	// projectable matrix with the given rank.
	StateElems func(m, n, r int64) int64
	// DenseFallback states per element for non-projectable tensors
	// (2 for Adam-family, 0 for SGD).
	FallbackPerElem float64
	// StateBytesPer is the storage width of state elements. The paper's
	// memory estimates count states in the training dtype (BF16, 2 bytes) —
	// e.g. Table 3's "1.6G" for rank-256 APOLLO on 7B is ≈843M elements ×
	// 2 bytes — so the fp-state methods use 2 here and the 8-bit variants 1.
	StateBytesPer float64
	// SVDProjElems, when non-nil, returns how many of StateElems are the
	// persisted SVD projection for one m×n projectable matrix. Those stay
	// fp32 even in the INT8 variants (only the moments are quantized), which
	// CheckpointBytes must know to predict serialized sizes.
	SVDProjElems func(m, n, r int64) int64
}

// Paper-footprint methods (Table 1 plus the quantized variants).
var (
	MethodSGD = Method{
		Name:            "SGD",
		StateElems:      func(m, n, r int64) int64 { return 0 },
		FallbackPerElem: 0, StateBytesPer: BytesBF16,
	}
	MethodAdamW = Method{
		Name:            "AdamW",
		StateElems:      func(m, n, r int64) int64 { return 2 * m * n },
		FallbackPerElem: 2, StateBytesPer: BytesBF16,
	}
	MethodAdamMini = Method{
		Name:            "Adam-mini",
		StateElems:      func(m, n, r int64) int64 { return m*n + n },
		FallbackPerElem: 1, StateBytesPer: BytesBF16,
	}
	MethodGaLore = Method{
		Name:            "GaLore",
		StateElems:      func(m, n, r int64) int64 { return 2*n*r + m*r },
		FallbackPerElem: 2, StateBytesPer: BytesBF16,
		SVDProjElems: func(m, n, r int64) int64 { return m * r },
	}
	MethodFira = Method{
		Name:            "Fira",
		StateElems:      func(m, n, r int64) int64 { return 2*n*r + m*r + 1 },
		FallbackPerElem: 2, StateBytesPer: BytesBF16,
		SVDProjElems: func(m, n, r int64) int64 { return m * r },
	}
	MethodFlora = Method{
		Name:            "Flora",
		StateElems:      func(m, n, r int64) int64 { return 2*n*r + 1 },
		FallbackPerElem: 2, StateBytesPer: BytesBF16,
	}
	MethodAPOLLO = Method{
		Name:            "APOLLO",
		StateElems:      func(m, n, r int64) int64 { return 2*n*r + 2 },
		FallbackPerElem: 2, StateBytesPer: BytesBF16,
	}
	MethodAPOLLOMini = Method{
		Name:            "APOLLO-Mini",
		StateElems:      func(m, n, r int64) int64 { return 2*n + 2 },
		FallbackPerElem: 2, StateBytesPer: BytesBF16,
	}
	MethodAdam8bit = Method{
		Name:            "8-bit Adam",
		StateElems:      func(m, n, r int64) int64 { return 2 * m * n },
		FallbackPerElem: 2, StateBytesPer: BytesINT8,
	}
	MethodGaLore8bit = Method{
		Name:            "8-bit GaLore",
		StateElems:      func(m, n, r int64) int64 { return 2*n*r + m*r },
		FallbackPerElem: 2, StateBytesPer: BytesINT8,
		SVDProjElems: func(m, n, r int64) int64 { return m * r },
	}
)

// MethodByName resolves a method.
func MethodByName(name string) (Method, error) {
	for _, m := range []Method{
		MethodSGD, MethodAdamW, MethodAdamMini, MethodGaLore, MethodFira,
		MethodFlora, MethodAPOLLO, MethodAPOLLOMini, MethodAdam8bit, MethodGaLore8bit,
	} {
		if m.Name == name {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("memmodel: unknown method %q", name)
}

// StateElems returns the optimizer-state element count for an arbitrary
// shape list under the method at the given rank — the shape-level core of
// OptimizerStateBytes, exposed so live models (whose parameter shapes are
// not a paper config) can be predicted too and cross-checked against
// measured Optimizer.StateBytes (see internal/bench's parity test).
func StateElems(shapes []Shape, m Method, rank int) float64 {
	var elems float64
	for _, s := range shapes {
		rows, cols := int64(s.Rows), int64(s.Cols)
		mm, nn := rows, cols
		if mm > nn {
			mm, nn = nn, mm
		}
		if s.Projectable && mm > int64(rank) {
			elems += float64(m.StateElems(mm, nn, int64(rank)))
		} else {
			elems += m.FallbackPerElem * float64(s.NumEl())
		}
	}
	return elems
}

// OptimizerStateBytes returns the optimizer-state footprint for cfg under
// the method at the given rank. APOLLO-Mini ignores the rank (always 1).
func OptimizerStateBytes(cfg LLaMAConfig, m Method, rank int) float64 {
	return StateElems(cfg.Shapes(), m, rank) * m.StateBytesPer
}

// ShardedOptimizerStateBytes predicts the per-replica optimizer-state
// footprint under ZeRO-style partitioning across world replicas: the
// unsharded footprint divided evenly. internal/zero's partitioner balances
// by introspected state cost at row-segment granularity, so the measured
// per-replica deviation from this ideal is bounded by the largest
// indivisible (projected) parameter's state — small by construction, and
// tolerance-checked in the `zero` bench experiment.
func ShardedOptimizerStateBytes(cfg LLaMAConfig, m Method, rank, world int) float64 {
	b := OptimizerStateBytes(cfg, m, rank)
	if world > 1 {
		b /= float64(world)
	}
	return b
}

// Checkpoint-format accounting (mirrors internal/ckpt's binary layout).
// The data payload dominates; the per-parameter constants cover the META
// table entry and the OPTP bookkeeping (presence flag, counters, projector
// seed/RNG phases, matrix headers), which vary a little across methods —
// predictions land within a few percent of the serialized file and are
// cross-checked by the `ckpt` bench experiment.
const (
	ckptFixedBytes          = 16 + 5*16 + 8 + 32 // header, 5 section headers, data cursor, name + globals
	ckptParamMetaBytes      = 11                 // length prefix + kind + dims (plus the name itself)
	ckptParamStateBytes     = 64
	ckptInt8GroupSize       = 128
	ckptWeightBytesPerElem  = 4 // live training is float32
	ckptFPStateBytesPerElem = 4
)

// CheckpointBytes predicts the on-disk size of an internal/ckpt snapshot
// for a model with the given shapes trained under the method at the given
// rank. Unlike the paper-table formulas (which count states in BF16), the
// checkpoint serializes the *live* float32 states plus the float32 weights;
// INT8 methods serialize one byte per code plus group scales. The predicted
// size is world-independent: a ZeRO-sharded run gathers its state into the
// same canonical layout before writing.
func CheckpointBytes(shapes []Shape, m Method, rank int) float64 {
	statePer := float64(ckptFPStateBytesPerElem)
	if m.StateBytesPer == BytesINT8 { //apollo:exactfloat BytesINT8 is an exact constant discriminator, never computed
		statePer = 1 + float64(BytesFP32)/ckptInt8GroupSize
	}
	total := float64(ckptFixedBytes)
	for _, s := range shapes {
		total += float64(len(s.Name)) + ckptParamMetaBytes
		total += ckptWeightBytesPerElem * float64(s.NumEl())
		total += ckptParamStateBytes
	}
	elems := StateElems(shapes, m, rank)
	// Persisted SVD projections serialize fp32 even when the moments are
	// INT8 (only the moments are quantized).
	var proj float64
	if m.SVDProjElems != nil {
		for _, s := range shapes {
			mm, nn := int64(s.Rows), int64(s.Cols)
			if mm > nn {
				mm, nn = nn, mm
			}
			if s.Projectable && mm > int64(rank) {
				proj += float64(m.SVDProjElems(mm, nn, int64(rank)))
			}
		}
	}
	total += (elems-proj)*statePer + proj*ckptFPStateBytesPerElem
	return total
}

// Serve-footprint accounting. An open snapshot in the evaluation service
// holds the fp32 model weights and per-tensor bookkeeping only: the
// weights-only read path (ckpt.ReadModel) never decodes the OPTG/OPTP
// optimizer sections, and gradient accumulators are released after load
// (nn.ParamSet.FreeGrads). The per-parameter constant covers the nn.Param
// and matrix headers plus the registry's table entry.
const (
	serveFixedBytes = 192 // registry entry + snapshot identity fields
	serveParamBytes = 64  // nn.Param + tensor.Matrix headers (plus the name)
)

// ServeBytes predicts the resident bytes of serving a model with the given
// shapes: fp32 weights plus small fixed bookkeeping — independent of the
// optimizer that trained the snapshot, which is the point of the read-only
// open path. Cross-checked against the measured serve.Entry footprint (±2%)
// by internal/serve's tests and the `serve` bench experiment.
func ServeBytes(shapes []Shape) float64 {
	total := float64(serveFixedBytes)
	for _, s := range shapes {
		total += float64(len(s.Name)) + serveParamBytes + BytesFP32*float64(s.NumEl())
	}
	return total
}

// ServeBytesFor is the paper-config convenience form.
func ServeBytesFor(cfg LLaMAConfig) float64 { return ServeBytes(cfg.Shapes()) }

// CheckpointBytesFor is the paper-config convenience form.
func CheckpointBytesFor(cfg LLaMAConfig, m Method, rank int) float64 {
	if rank == 0 {
		rank = cfg.DefaultRank()
	}
	return CheckpointBytes(cfg.Shapes(), m, rank)
}

// Plan describes a full training-memory scenario.
type Plan struct {
	Config LLaMAConfig
	Method Method
	Rank   int

	SeqLen     int
	MicroBatch int

	WeightBytesPer float64 // 2 (BF16) or 1 (+scales) for INT8
	Int8Weights    bool    // group-quantized weights (Q- variants)
	GroupSize      int     // INT8 group size (default 128)

	// LayerWiseGrad enables the layer-wise gradient update strategy (Lv et
	// al., 2023): only one layer's gradient is resident at a time.
	LayerWiseGrad bool
	// ActivationCkpt recomputes activations in the backward pass, keeping
	// only per-layer boundary activations.
	ActivationCkpt bool
	// ZeroWorld partitions optimizer states ZeRO-style across this many
	// data-parallel replicas (0 or 1 = unsharded); the plan then describes
	// one replica's footprint.
	ZeroWorld int
}

// Breakdown is the per-component memory accounting in bytes.
type Breakdown struct {
	Weights     float64
	Gradients   float64
	States      float64
	Activations float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Weights + b.Gradients + b.States + b.Activations
}

// Compute evaluates the plan.
func Compute(p Plan) Breakdown {
	cfg := p.Config
	params := float64(cfg.NumParams())

	var out Breakdown
	if p.Int8Weights {
		gs := p.GroupSize
		if gs <= 0 {
			gs = 128
		}
		out.Weights = params*BytesINT8 + params/float64(gs)*BytesFP32
	} else {
		wb := p.WeightBytesPer
		if wb == 0 { //apollo:exactfloat zero is the unset-field sentinel; default fills only untouched fields
			wb = BytesBF16
		}
		out.Weights = params * wb
	}

	gradBytes := float64(BytesBF16)
	if p.LayerWiseGrad {
		// Only the largest single layer's gradients are resident.
		var largest int64
		perLayer := int64(0)
		for _, s := range cfg.Shapes() {
			if s.Rows == 1 {
				continue
			}
			perLayer = s.NumEl()
			if perLayer > largest {
				largest = perLayer
			}
		}
		// One transformer block (4 attn + 3 mlp) or the embedding/head,
		// whichever is larger.
		block := int64(4*cfg.Hidden*cfg.Hidden + 3*cfg.Hidden*cfg.Inter)
		embed := int64(cfg.Vocab * cfg.Hidden)
		resident := block
		if embed > resident {
			resident = embed
		}
		out.Gradients = float64(resident) * gradBytes
	} else {
		out.Gradients = params * gradBytes
	}

	rank := p.Rank
	if rank == 0 {
		rank = cfg.DefaultRank()
	}
	out.States = OptimizerStateBytes(cfg, p.Method, rank)
	if p.ZeroWorld > 1 {
		out.States /= float64(p.ZeroWorld)
	}

	out.Activations = activationBytes(cfg, p.SeqLen, p.MicroBatch, p.ActivationCkpt)
	return out
}

// activationBytes estimates activation memory for one forward/backward.
// Without full checkpointing it uses ≈29·h bytes per token per layer — the
// Megatron accounting with the attention-probability term removed (selective
// recomputation / fused attention, standard for this model family), which
// calibrates the 7B feasible micro-batches to the paper's 4 (AdamW), 8
// (GaLore) and 16 (APOLLO). With full checkpointing only per-layer boundary
// activations and one live layer remain.
func activationBytes(cfg LLaMAConfig, seq, micro int, ckpt bool) float64 {
	if seq == 0 || micro == 0 {
		return 0
	}
	tokens := float64(seq * micro)
	h := float64(cfg.Hidden)
	perTokenLayer := 29 * h
	if ckpt {
		// Boundary activations for every layer + one recomputed live layer.
		boundary := tokens * h * BytesBF16 * float64(cfg.Layers)
		live := tokens * perTokenLayer
		return boundary + live
	}
	return tokens * perTokenLayer * float64(cfg.Layers)
}

// Table1Row renders the symbolic Table 1 entry for a method.
type Table1Row struct {
	Method       string
	StateFormula string
	FullRankGrad bool
	FullRankWts  bool
	PreTraining  bool
	NoSVD        bool
}

// Table1 reproduces the paper's comparison table.
func Table1() []Table1Row {
	return []Table1Row{
		{Method: "APOLLO-Mini", StateFormula: "2n+2", FullRankGrad: true, FullRankWts: true, PreTraining: true, NoSVD: true},
		{Method: "APOLLO", StateFormula: "2nr+2", FullRankGrad: true, FullRankWts: true, PreTraining: true, NoSVD: true},
		{Method: "Fira", StateFormula: "2nr+mr+1", FullRankGrad: true, FullRankWts: true, PreTraining: true, NoSVD: false},
		{Method: "GaLore", StateFormula: "2nr+mr", FullRankGrad: false, FullRankWts: true, PreTraining: true, NoSVD: false},
		{Method: "Flora", StateFormula: "2nr+1", FullRankGrad: false, FullRankWts: true, PreTraining: false, NoSVD: true},
	}
}
