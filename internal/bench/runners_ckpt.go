package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"

	"apollo/internal/ckpt"
	"apollo/internal/memmodel"
	"apollo/internal/optim"
	"apollo/internal/train"
	"apollo/internal/zero"
)

func init() {
	register(Experiment{
		ID:       "ckpt",
		Title:    "Checkpoint/resume: bit-parity, elastic resharding, predicted vs actual size",
		PaperRef: "system claim (production training; Sec. 5.3 memory accounting)",
		Run:      runCkpt,
	})
}

// runCkpt exercises the checkpoint subsystem end to end on the 60M proxy:
// every row trains K steps under `-replicas 3 -zero`, writes a periodic
// snapshot through the real train-loop wiring, resumes it under a
// *different* world (4 shards) for another K steps, and verifies the final
// perplexity matches an uninterrupted single-replica run bit-for-bit. The
// size columns compare the serialized file against
// memmodel.CheckpointBytes — the accounting apollo-memplan and apollo-ckpt
// print — and a corrupted copy must be rejected by its section CRC.
func runCkpt(ctx *RunContext) error {
	proxy, err := ProxyByName("60M")
	if err != nil {
		return err
	}
	k := 4
	if ctx.Scale == Full {
		k = 10
	}
	rank := proxy.DefaultRank()

	dir, err := os.MkdirTemp("", "apollo-ckpt-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rows := []string{"AdamW", "APOLLO", "APOLLO-Mini", "GaLore"}
	ctx.Printf("proxy-60M, %d+%d steps, save under zero x3 → resume under zero x4\n\n", k, k)
	ctx.Printf("%-12s %-7s %10s %10s %8s\n", "optimizer", "parity", "file", "predicted", "dev")

	for _, name := range rows {
		if _, err := BuildOptimizer(name, proxy.LR, rank, ctx.Seed); err != nil {
			return err
		}
		build := func() optim.Optimizer {
			o, _ := BuildOptimizer(name, proxy.LR, rank, ctx.Seed)
			return o
		}
		pcfg := train.PretrainConfig{Batch: proxy.Batch, Seq: proxy.Seq, Steps: 2 * k}

		// Uninterrupted single-replica reference.
		refModel := proxy.NewProxyModel(ctx.Seed + 33)
		refCorpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		ref := train.DPPretrain(refModel, build(), refCorpus, train.DPConfig{
			PretrainConfig: pcfg, Replicas: 1,
		})

		// Interrupted: K steps sharded across 3, periodic save at step K.
		path := filepath.Join(dir, name+".ckpt")
		halfModel := proxy.NewProxyModel(ctx.Seed + 33)
		halfCorpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		halfCfg := pcfg
		halfCfg.Steps = k
		halfCfg.CkptEvery = k
		halfCfg.CkptPath = path
		train.DPPretrain(halfModel, zero.NewSharded(build, 3), halfCorpus, train.DPConfig{
			PretrainConfig: halfCfg, Replicas: 3,
		})

		// Resume under a different world size.
		st, err := ckpt.LoadFile(path)
		if err != nil {
			return err
		}
		resModel := proxy.NewProxyModel(ctx.Seed + 33)
		resCorpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		resOpt := zero.NewSharded(build, 4)
		if err := ckpt.Restore(st, resModel.Params().List(), resOpt, resCorpus); err != nil {
			return err
		}
		resCfg := pcfg
		resCfg.StartStep = k
		res := train.DPPretrain(resModel, resOpt, resCorpus, train.DPConfig{
			PretrainConfig: resCfg, Replicas: 4,
		})

		parity := "exact"
		if res.FinalValPPL != ref.FinalValPPL { //apollo:exactfloat bit-parity contract: resume must match straight run float-for-float
			parity = "DRIFT"
		}

		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		method, err := memmodel.MethodByName(name)
		if err != nil {
			return err
		}
		rr := rank
		if name == "APOLLO-Mini" {
			rr = 1
		}
		predicted := memmodel.CheckpointBytes(ShapesOf(refModel.Params().List()), method, rr)
		dev := (float64(fi.Size()) - predicted) / predicted
		ctx.Printf("%-12s %-7s %10s %10s %+7.2f%%\n",
			name, parity,
			train.FormatBytes(fi.Size()),
			train.FormatBytes(int64(math.Round(predicted))),
			dev*100)
	}

	// Integrity: one flipped byte in the weights payload must be rejected.
	raw, err := os.ReadFile(filepath.Join(dir, "AdamW.ckpt"))
	if err != nil {
		return err
	}
	raw[len(raw)/2] ^= 1
	if _, err := ckpt.Read(bytes.NewReader(raw)); err != nil {
		ctx.Printf("\ncorruption check: flipped one byte → rejected (%v)\n", err)
	} else {
		ctx.Printf("\ncorruption check: FAILED — corrupted file was accepted\n")
	}
	return nil
}
