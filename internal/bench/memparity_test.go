package bench

import (
	"bytes"
	"math"
	"testing"

	"apollo/internal/ckpt"
	"apollo/internal/memmodel"
	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// TestMeasuredStateMatchesMemmodel enforces the "honest memory tables"
// claim in CI: the bytes each seed optimizer actually allocates on a live
// proxy model must match the memmodel Table 1 formulas evaluated on that
// model's shapes. Live states are fp32 (4 bytes/element), so the
// comparison is in elements. Tolerances are tight: exact for the methods
// whose formula is the implementation, a few percent for Adam-mini (the
// formula books the block second moment as n per matrix; the
// implementation keeps one per stored row, which for n×m-stored matrices
// is the smaller dimension).
func TestMeasuredStateMatchesMemmodel(t *testing.T) {
	const rank = 8
	proxy, err := ProxyByName("60M")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string // BuildOptimizer name
		method string // memmodel method name
		tol    float64
	}{
		{"SGD", "SGD", 0},
		{"AdamW", "AdamW", 0},
		{"Adam-mini", "Adam-mini", 0.03},
		{"GaLore", "GaLore", 0},
		{"Fira", "Fira", 0},
		{"Flora", "Flora", 0},
		{"APOLLO", "APOLLO", 0},
		{"APOLLO-Mini", "APOLLO-Mini", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			model := proxy.NewProxyModel(3)
			params := model.Params().List()
			opt, err := BuildOptimizer(c.name, 1e-3, rank, 7)
			if err != nil {
				t.Fatal(err)
			}
			// One step with non-zero gradients allocates every state lazily
			// (SVD-projection methods refresh off the gradient).
			rng := tensor.NewRNG(9)
			for _, p := range params {
				for i := range p.Grad.Data {
					p.Grad.Data[i] = rng.NormFloat32() * 0.1
				}
			}
			opt.Step(params)

			method, err := memmodel.MethodByName(c.method)
			if err != nil {
				t.Fatal(err)
			}
			r := rank
			if c.name == "APOLLO-Mini" {
				r = 1
			}
			predicted := memmodel.StateElems(ShapesOf(params), method, r)
			measured := float64(opt.StateBytes()) / 4

			if predicted == 0 && measured == 0 {
				return
			}
			dev := math.Abs(measured-predicted) / predicted
			if dev > c.tol {
				t.Fatalf("%s: measured %0.f state elems vs predicted %0.f (%.2f%% deviation, tol %.2f%%)",
					c.name, measured, predicted, dev*100, c.tol*100)
			}
		})
	}
}

// TestCheckpointBytesPrediction enforces the size half of the checkpoint
// contract: memmodel.CheckpointBytes (what apollo-memplan and apollo-ckpt
// print) must land within 2% of the actually serialized file for every
// fp-state method and for the INT8 variants. The slack covers only the
// per-parameter bookkeeping constants; the data payload is exact.
func TestCheckpointBytesPrediction(t *testing.T) {
	const rank = 8
	proxy, err := ProxyByName("60M")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ name, method string }{
		{"SGD", "SGD"},
		{"AdamW", "AdamW"},
		{"Adam-mini", "Adam-mini"},
		{"GaLore", "GaLore"},
		{"APOLLO", "APOLLO"},
		{"APOLLO-Mini", "APOLLO-Mini"},
		{"8-bit Adam", "8-bit Adam"},
		{"8-bit GaLore", "8-bit GaLore"},
	} {
		t.Run(c.name, func(t *testing.T) {
			model := proxy.NewProxyModel(3)
			params := model.Params().List()
			opt, err := BuildOptimizer(c.name, 1e-3, rank, 7)
			if err != nil {
				t.Fatal(err)
			}
			rng := tensor.NewRNG(9)
			for _, p := range params {
				for i := range p.Grad.Data {
					p.Grad.Data[i] = rng.NormFloat32() * 0.1
				}
			}
			opt.Step(params)

			st, err := ckpt.Capture(1, params, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ckpt.Write(&buf, st); err != nil {
				t.Fatal(err)
			}

			method, err := memmodel.MethodByName(c.method)
			if err != nil {
				t.Fatal(err)
			}
			r := rank
			if c.name == "APOLLO-Mini" {
				r = 1
			}
			predicted := memmodel.CheckpointBytes(ShapesOf(params), method, r)
			actual := float64(buf.Len())
			if dev := math.Abs(actual-predicted) / actual; dev > 0.02 {
				t.Fatalf("%s: file is %.0f bytes, predicted %.0f (%.2f%% off)",
					c.name, actual, predicted, dev*100)
			}
		})
	}
}

// TestShapesOfMirrorsParamKinds pins the conversion policy: matrices are
// projectable, embeddings and vectors are not.
func TestShapesOfMirrorsParamKinds(t *testing.T) {
	rng := tensor.NewRNG(1)
	params := []*nn.Param{
		nn.NewParam("e", nn.KindEmbedding, tensor.NewMatrixRand(8, 4, 1, rng)),
		nn.NewParam("m", nn.KindMatrix, tensor.NewMatrixRand(4, 4, 1, rng)),
		nn.NewParam("v", nn.KindVector, tensor.NewMatrixRand(1, 4, 1, rng)),
	}
	shapes := ShapesOf(params)
	if shapes[0].Projectable || !shapes[1].Projectable || shapes[2].Projectable {
		t.Fatalf("projectability wrong: %+v", shapes)
	}
}
