package bench

import (
	"bytes"
	"strings"
	"testing"

	"apollo/internal/obs/runlog"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure from the paper's evaluation must have a runner.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "table11",
		"fig1-memory", "fig1-throughput", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig9", "scaling-13b",
		// Beyond the paper: measured parallel-runtime counterpart of the
		// cluster simulator's throughput claims, the ZeRO-sharded
		// optimizer-state experiment on top of the DP trainer, the
		// checkpoint/resume + elastic-resharding experiment, the
		// checkpoint-streamed evaluation service, and its open-loop load
		// harness.
		"runtime", "zero", "ckpt", "serve", "load",
	}
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Fatalf("missing experiment %q: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("table99"); err == nil {
		t.Fatal("expected error")
	}
}

func TestProxiesValid(t *testing.T) {
	for _, p := range Proxies() {
		if err := p.Model.Validate(); err != nil {
			t.Fatalf("proxy %s: %v", p.Name, err)
		}
		if p.DefaultRank() < 1 {
			t.Fatalf("proxy %s: rank %d", p.Name, p.DefaultRank())
		}
	}
	if _, err := ProxyByName("60M"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProxyByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildOptimizerAllNames(t *testing.T) {
	names := []string{
		"AdamW", "SGD", "SGD-M", "Adam-mini", "8-bit Adam", "8-bit GaLore",
		"Low-Rank", "LoRA", "ReLoRA", "DoRA", "GaLore", "GaLore-RP", "Fira",
		"Flora", "APOLLO", "APOLLO w. SVD", "APOLLO-Tensor", "APOLLO-Mini",
		"Q-APOLLO", "Q-APOLLO-Mini", "Q-GaLore",
		"StructuredAdamW-channel", "StructuredAdamW-tensor",
	}
	for _, n := range names {
		opt, err := BuildOptimizer(n, 1e-3, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if opt == nil {
			t.Fatalf("%s: nil optimizer", n)
		}
	}
	if _, err := BuildOptimizer("bogus", 1e-3, 4, 1); err == nil {
		t.Fatal("expected error for unknown optimizer")
	}
}

// TestAnalyticRunners executes the cheap (no-training) experiments end to
// end and sanity-checks their output.
func TestAnalyticRunners(t *testing.T) {
	for _, id := range []string{"table1", "fig1-memory", "fig1-throughput", "fig9", "table11", "scaling-13b"} {
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			ctx := &RunContext{Scale: Quick, Out: &buf, Seed: 1}
			if err := e.Run(ctx); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			// Every runner should either discuss the method or cite the
			// paper artifact it regenerates.
			if !strings.Contains(out, "APOLLO") && !strings.Contains(out, "paper") {
				t.Fatalf("output mentions neither APOLLO nor the paper:\n%s", out)
			}
		})
	}
}

func TestFig1ThroughputOrderingInOutput(t *testing.T) {
	e, _ := Lookup("fig1-throughput")
	var buf bytes.Buffer
	if err := e.Run(&RunContext{Scale: Quick, Out: &buf, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// AdamW line should be the 1.00x baseline.
	if !strings.Contains(out, "1.00x AdamW") {
		t.Fatalf("missing baseline line:\n%s", out)
	}
}

// TestPretrainOneSmoke runs the shared pretraining helper at a minimal step
// count for a couple of methods to guard the heavy runners' plumbing.
func TestPretrainOneSmoke(t *testing.T) {
	proxy, err := ProxyByName("60M")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &RunContext{Scale: Quick, Out: &bytes.Buffer{}, Seed: 1}
	for _, m := range []string{"AdamW", "APOLLO", "APOLLO-Mini"} {
		res, err := pretrainOne(ctx, proxy, m, 0, 30, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.FinalValPPL <= 1 || res.FinalValPPL > 1000 {
			t.Fatalf("%s: implausible ppl %v", m, res.FinalValPPL)
		}
	}
}

func TestStepsScaling(t *testing.T) {
	quick := &RunContext{Scale: Quick}
	full := &RunContext{Scale: Full}
	if got := quick.steps(400); got != 200 {
		t.Fatalf("quick steps = %d want 200", got)
	}
	if got := quick.steps(40); got != 60 {
		t.Fatalf("quick floor = %d want 60", got)
	}
	if got := full.steps(400); got != 400 {
		t.Fatalf("full steps = %d want 400", got)
	}
}

// TestPretrainOneWritesLedger: with a RunRoot configured, the shared
// pretraining helper leaves a complete, finalized ledger entry — and the
// real 60M training curve raises no watchdog alerts (false-positive guard
// at bench scale).
func TestPretrainOneWritesLedger(t *testing.T) {
	proxy, err := ProxyByName("60M")
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	ctx := &RunContext{Scale: Quick, Out: &bytes.Buffer{}, Seed: 1, RunRoot: root}
	const steps = 30
	res, err := pretrainOne(ctx, proxy, "APOLLO", 0, steps, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := runlog.List(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("%d ledger entries, want 1", len(ms))
	}
	m := ms[0]
	if m.Status != runlog.StatusOK || m.Command != "apollo-bench" || m.Optimizer != "APOLLO" {
		t.Fatalf("manifest wrong: %+v", m)
	}
	if m.Steps != steps || m.Alerts != 0 || m.FinalPPL != res.FinalValPPL {
		t.Fatalf("finals wrong: %+v", m)
	}
	rd, err := runlog.Load(root, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Steps) != steps || rd.Steps[steps-1].Step != steps {
		t.Fatalf("step series wrong: %d events", len(rd.Steps))
	}
}
