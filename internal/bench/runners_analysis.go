package bench

import (
	"math"
	"strings"

	"apollo/internal/core"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

func init() {
	register(Experiment{
		ID:       "fig3",
		Title:    "Element-wise vs channel-wise LR adaptation (± norm limiter)",
		PaperRef: "Fig. 3",
		Run:      runFig3,
	})
	register(Experiment{
		ID:       "fig4",
		Title:    "Scaling-factor ratio vs the √(r/n) theory",
		PaperRef: "Fig. 4 / Fig. 8 / Theorem A.4",
		Run:      runFig4,
	})
	register(Experiment{
		ID:       "table10",
		Title:    "Directional sharpness across optimizers",
		PaperRef: "Table 10",
		Run:      runTable10,
	})
}

func runFig3(ctx *RunContext) error {
	proxy, err := ProxyByName("130M")
	if err != nil {
		return err
	}
	steps := ctx.steps(proxy.Steps)
	evalEvery := steps / 12
	if evalEvery < 1 {
		evalEvery = 1
	}

	type variant struct {
		label string
		mk    func() optim.Optimizer
	}
	variants := []variant{
		{"AdamW (element-wise)", func() optim.Optimizer { return optim.NewAdamW(optim.Hyper{LR: proxy.LR}) }},
		{"Channel-wise w/o NL", func() optim.Optimizer {
			s := core.NewStructuredAdamW(optim.Hyper{LR: proxy.LR}, core.Channel)
			s.Gamma = 0
			return s
		}},
		{"Channel-wise w/ NL", func() optim.Optimizer {
			return core.NewStructuredAdamW(optim.Hyper{LR: proxy.LR}, core.Channel)
		}},
	}
	series := map[string][]train.Metric{}
	var order []string
	for _, v := range variants {
		corpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		model := proxy.NewProxyModel(ctx.Seed + 33)
		res := train.Pretrain(model, v.mk(), corpus, train.PretrainConfig{
			Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps,
			EvalEvery: evalEvery, EvalBatches: 3,
			Schedule: optim.NewWarmupCosine(proxy.LR, steps),
		})
		series[v.label] = res.Series
		order = append(order, v.label)
	}
	ctx.Printf("Fig. 3 — proxy-130M training loss: structured vs element-wise adaptation\n\n")
	ctx.Printf("%8s", "step")
	for _, l := range order {
		ctx.Printf(" %22s", l)
	}
	ctx.Printf("\n")
	n := len(series[order[0]])
	for i := 0; i < n; i++ {
		if series[order[0]][i].TrainLoss == 0 { //apollo:exactfloat zero is the no-train-loss sentinel on the final eval-only point
			continue // the final eval-only point carries no train loss
		}
		ctx.Printf("%8d", series[order[0]][i].Step)
		for _, l := range order {
			if i < len(series[l]) {
				ctx.Printf(" %22.4f", series[l][i].TrainLoss)
			}
		}
		ctx.Printf("\n")
	}
	final := func(l string) float64 {
		s := series[l]
		return s[len(s)-1].ValPPL
	}
	ctx.Printf("\nfinal val ppl: %s %.2f | %s %.2f | %s %.2f\n",
		order[0], final(order[0]), order[1], final(order[1]), order[2], final(order[2]))
	ctx.Printf("paper: channel-wise 24.43 vs AdamW 25.08; +NL → 24.11 and no early spike.\n")
	return nil
}

func runFig4(ctx *RunContext) error {
	// Feed identical gradient streams from real proxy-350M training to a
	// full-rank structured AdamW (the golden s_j) and APOLLO probes at
	// rank n/8 and n/4, then compare the mean ratio per layer type against
	// √(r/n). Probes run at LR 0 on cloned parameters; the training model
	// advances under AdamW.
	proxy, err := ProxyByName("350M")
	if err != nil {
		return err
	}
	dim := proxy.Model.Dim
	steps := ctx.steps(120)

	corpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return err
	}
	model := proxy.NewProxyModel(ctx.Seed + 33)
	trainOpt := optim.NewAdamW(optim.Hyper{LR: proxy.LR})

	type probe struct {
		label  string
		rank   int
		opt    *core.APOLLO
		golden *core.StructuredAdamW
		params []*nn.Param
		sums   map[string]float64 // layer-type → Σ ratio
		counts map[string]int
	}
	mkClones := func() []*nn.Param {
		var out []*nn.Param
		for _, p := range model.Params().List() {
			c := nn.NewParam(p.Name, p.Kind, p.W.Clone())
			out = append(out, c)
		}
		return out
	}
	golden := core.NewStructuredAdamW(optim.Hyper{LR: 0}, core.Channel)
	goldenParams := mkClones()
	goldenScales := map[string][]float64{}
	golden.ScalingProbe = func(name string, s []float64) {
		goldenScales[name] = append([]float64{}, s...)
	}

	probes := []*probe{
		{label: "rank n/8", rank: dim / 8},
		{label: "rank n/4", rank: dim / 4},
	}
	for _, pr := range probes {
		pr.opt = core.New(optim.Hyper{LR: 0}, core.Config{
			Rank: pr.rank, Granularity: core.Channel, Scale: 1, DisableNL: true, Seed: ctx.Seed + uint64(pr.rank),
		})
		pr.params = mkClones()
		pr.sums = map[string]float64{}
		pr.counts = map[string]int{}
		local := pr
		pr.opt.ScalingProbe = func(name string, s []float64) {
			ref, ok := goldenScales[name]
			if !ok || len(ref) != len(s) {
				return
			}
			lt := layerType(name)
			for j := range s {
				if ref[j] > 1e-9 {
					local.sums[lt] += s[j] / ref[j]
					local.counts[lt]++
				}
			}
		}
	}

	warm := 10
	for step := 0; step < steps; step++ {
		batch := corpus.NextTrainBatch(proxy.Batch, proxy.Seq)
		model.Params().ZeroGrad()
		model.Loss(batch.Tokens, batch.Targets, batch.B, batch.T)
		// Copy gradients to every probe's clones, then step all.
		for i, p := range model.Params().List() {
			goldenParams[i].Grad.CopyFrom(p.Grad)
			for _, pr := range probes {
				pr.params[i].Grad.CopyFrom(p.Grad)
			}
		}
		golden.Step(goldenParams)
		if step >= warm {
			for _, pr := range probes {
				pr.opt.Step(pr.params)
			}
		}
		trainOpt.Step(model.Params().List())
	}

	ctx.Printf("Fig. 4 — channel scaling-factor ratio APOLLO/full-rank on square (dim×dim)\n")
	ctx.Printf("attention layers of proxy-350M (theory: √(r/n); paper observes ≈0.35, 0.5)\n\n")
	ctx.Printf("%-10s %12s %12s %12s\n", "rank", "attention", "mlp", "theory √(r/n)")
	for _, pr := range probes {
		attn := pr.sums["attention"] / math.Max(1, float64(pr.counts["attention"]))
		mlp := pr.sums["mlp"] / math.Max(1, float64(pr.counts["mlp"]))
		ctx.Printf("%-10s %12.3f %12.3f %12.3f\n", pr.label, attn, mlp, math.Sqrt(float64(pr.rank)/float64(dim)))
	}
	ctx.Printf("\nnote: attention matrices are square (m=n) where the paper's √(r/n) bound\napplies exactly; MLP blocks are rectangular, where the ratio tracks √(r/m)\n(m = smaller dim). On live training gradients the measured ratio runs\n≈1.4x above theory because Theorem A.4 assumes i.i.d. gradient entries;\nthe i.i.d. regime below matches the bound directly.\n\n")

	// Theorem-regime validation: i.i.d. Gaussian gradients, same probes.
	ctx.Printf("i.i.d.-gradient regime (Theorem A.4 assumptions, square %dx%d):\n", dim, dim)
	ctx.Printf("%-10s %12s %12s\n", "rank", "measured", "theory √(r/n)")
	for _, rank := range []int{dim / 8, dim / 4} {
		ratio := iidScalingRatio(ctx, dim, rank)
		ctx.Printf("rank n/%-3d %12.3f %12.3f\n", dim/rank, ratio, math.Sqrt(float64(rank)/float64(dim)))
	}
	return nil
}

// iidScalingRatio reproduces the unit-test validation of Theorem A.4: feed
// identical i.i.d. Gaussian gradient streams to full-rank structured AdamW
// and an APOLLO probe, return the mean scaling-factor ratio.
func iidScalingRatio(ctx *RunContext, n, rank int) float64 {
	hyper := optim.Hyper{LR: 0}
	mk := func() *nn.Param {
		rng := tensor.NewRNG(ctx.Seed + 5)
		return nn.NewParam("w", nn.KindMatrix, tensor.NewMatrixRand(n, n, 0.1, rng))
	}
	pF, pA := mk(), mk()
	full := core.NewStructuredAdamW(hyper, core.Channel)
	probe := core.New(hyper, core.Config{Rank: rank, Granularity: core.Channel, Scale: 1, DisableNL: true, Seed: ctx.Seed + 6})
	var fullScales, probeScales []float64
	full.ScalingProbe = func(_ string, s []float64) { fullScales = append([]float64{}, s...) }
	probe.ScalingProbe = func(_ string, s []float64) { probeScales = append([]float64{}, s...) }
	rng := tensor.NewRNG(ctx.Seed + 7)
	var sum float64
	var count int
	for step := 0; step < 25; step++ {
		for i := range pF.Grad.Data {
			pF.Grad.Data[i] = rng.NormFloat32()
		}
		pA.Grad.CopyFrom(pF.Grad)
		full.Step([]*nn.Param{pF})
		probe.Step([]*nn.Param{pA})
		if step < 5 {
			continue
		}
		for j := range fullScales {
			if fullScales[j] > 1e-9 {
				sum += probeScales[j] / fullScales[j]
				count++
			}
		}
	}
	return sum / float64(count)
}

func layerType(name string) string {
	switch {
	case strings.Contains(name, "attn"):
		return "attention"
	case strings.Contains(name, "mlp"):
		return "mlp"
	default:
		return "other"
	}
}

func runTable10(ctx *RunContext) error {
	// A tiny seq2seq-style copy task (the T5-MT stand-in): the model learns
	// to reproduce the first half of the sequence in the second half.
	// Sharpness is measured along each optimizer's own update direction at
	// several checkpoints.
	cfg := nn.Config{Vocab: 64, Dim: 24, Hidden: 48, Heads: 4, Layers: 2, MaxSeq: 32}
	const b, t = 8, 16
	epochs := []int{2, 5, 10, 20}
	stepsPerEpoch := ctx.steps(20)

	mkBatch := func(rng *tensor.RNG) ([]int, []int) {
		tokens := make([]int, b*t)
		targets := make([]int, b*t)
		for row := 0; row < b; row++ {
			half := t / 2
			for i := 0; i < half; i++ {
				tokens[row*t+i] = 2 + rng.Intn(60)
			}
			tokens[row*t+half] = 1 // separator
			for i := half + 1; i < t; i++ {
				tokens[row*t+i] = tokens[row*t+i-half-1]
			}
			for i := 0; i < t-1; i++ {
				if i >= half {
					targets[row*t+i] = tokens[row*t+i+1]
				} else {
					targets[row*t+i] = -1
				}
			}
			targets[row*t+t-1] = -1
		}
		return tokens, targets
	}

	methods := []struct {
		name string
		mk   func() optim.Optimizer
	}{
		{"SGD", func() optim.Optimizer { return optim.NewSGD(optim.Hyper{LR: 0.05}, 0) }},
		{"Adam", func() optim.Optimizer { return optim.NewAdamW(optim.Hyper{LR: 2e-3}) }},
		{"APOLLO", func() optim.Optimizer {
			return core.New(optim.Hyper{LR: 2e-3}, core.Config{Rank: 6})
		}},
		{"APOLLO-Mini", func() optim.Optimizer { return core.NewMini(optim.Hyper{LR: 2e-3}) }},
	}
	paper := map[string][4]float64{
		"SGD":         {1.96, 1.51, 2.47, 3.21},
		"Adam":        {0.0092, 0.00051, 0.00024, 0.0004},
		"APOLLO":      {0.0060, 0.00025, 0.00016, 0.00026},
		"APOLLO-Mini": {0.0040, 0.00011, 0.000056, 0.0001},
	}
	ctx.Printf("Table 10 — directional sharpness vᵀ∇²L v along each optimizer's proposed\nupdate direction, measured from a shared training state at every checkpoint\n(synthetic copy task standing in for the paper's small-T5 MT task)\n\n")
	ctx.Printf("%-12s", "epoch")
	for _, m := range methods {
		ctx.Printf(" %14s", m.name)
	}
	ctx.Printf("\n")

	// One shared model advances under AdamW; at each checkpoint every
	// optimizer proposes a direction from the identical state and we probe
	// the curvature along it. This isolates direction quality from
	// trajectory differences.
	model := nn.NewModel(cfg, tensor.NewRNG(ctx.Seed+101))
	shared := optim.NewAdamW(optim.Hyper{LR: 2e-3})
	rng := tensor.NewRNG(ctx.Seed + 202)
	results := map[string]map[int]float64{}
	for _, m := range methods {
		results[m.name] = map[int]float64{}
	}
	epochIdx := 0
	for epoch := 1; epoch <= epochs[len(epochs)-1]; epoch++ {
		for s := 0; s < stepsPerEpoch; s++ {
			tokens, targets := mkBatch(rng)
			model.Params().ZeroGrad()
			model.Loss(tokens, targets, b, t)
			shared.Step(model.Params().List())
		}
		if epochIdx < len(epochs) && epoch == epochs[epochIdx] {
			tokens, targets := mkBatch(tensor.NewRNG(ctx.Seed + 303)) // fixed probe batch
			model.Params().ZeroGrad()
			model.Loss(tokens, targets, b, t)
			for _, m := range methods {
				dir := updateDirection(model.Params().List(), m.mk())
				results[m.name][epoch] = directionalSharpness(model, dir, tokens, targets, b, t)
			}
			epochIdx++
		}
	}
	for _, epoch := range epochs {
		ctx.Printf("%-12d", epoch)
		for _, m := range methods {
			ctx.Printf(" %14.6f", results[m.name][epoch])
		}
		ctx.Printf("\n")
	}
	ctx.Printf("\npaper row for reference (epochs 2/5/10/20): SGD %v, Adam %v,\nAPOLLO %v, APOLLO-Mini %v\n", paper["SGD"], paper["Adam"], paper["APOLLO"], paper["APOLLO-Mini"])
	ctx.Printf("shape to verify: SGD's direction is orders of magnitude sharper than the\nadaptive methods; APOLLO(-Mini) at or below Adam's sharpness.\n")
	return nil
}

// updateDirection and directionalSharpness adapt internal/eval's probes for
// the bench package without importing it into a cycle.
func updateDirection(params []*nn.Param, opt optim.Optimizer) []*tensor.Matrix {
	clones := make([]*nn.Param, len(params))
	for i, p := range params {
		c := nn.NewParam(p.Name, p.Kind, p.W.Clone())
		c.Grad.CopyFrom(p.Grad)
		clones[i] = c
	}
	opt.Step(clones)
	out := make([]*tensor.Matrix, len(params))
	for i := range params {
		out[i] = tensor.Sub(params[i].W, clones[i].W)
	}
	return out
}

func directionalSharpness(model *nn.Model, dir []*tensor.Matrix, tokens, targets []int, b, t int) float64 {
	const eps = 0.05
	var sq float64
	for _, d := range dir {
		sq += d.SqNorm()
	}
	norm := math.Sqrt(sq)
	if norm == 0 { //apollo:exactfloat guard against division by an exact-zero norm
		return 0
	}
	scale := float32(eps / norm)
	params := model.Params().List()
	move := func(sign float32) {
		for i, p := range params {
			tensor.AxpyInPlace(p.W, sign*scale, dir[i])
		}
	}
	base := model.EvalLoss(tokens, targets, b, t)
	move(+1)
	plus := model.EvalLoss(tokens, targets, b, t)
	move(-2)
	minus := model.EvalLoss(tokens, targets, b, t)
	move(+1)
	return (plus - 2*base + minus) / (eps * eps)
}
