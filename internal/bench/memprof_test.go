package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"apollo/internal/memmodel"
	"apollo/internal/obs/memprof"
	"apollo/internal/optim"
	"apollo/internal/train"
	"apollo/internal/zero"
)

// lastMemSample parses the final Sample of a mem.jsonl stream.
func lastMemSample(t *testing.T, buf *bytes.Buffer) memprof.Sample {
	t.Helper()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty memory timeline")
	}
	var s memprof.Sample
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLiveStateMatchesMemmodel is the acceptance criterion of the live
// memory-accounting layer, the running-loop counterpart of
// TestMeasuredStateMatchesMemmodel's one-shot check: a short fused training
// run on the 60M proxy with a memory profiler attached must record
// optimizer-state bytes in its timeline within ±2% of the memmodel Table 1
// prediction, for AdamW and APOLLO.
func TestLiveStateMatchesMemmodel(t *testing.T) {
	proxy, err := ProxyByName("60M")
	if err != nil {
		t.Fatal(err)
	}
	rank := proxy.DefaultRank()
	for _, name := range []string{"AdamW", "APOLLO"} {
		t.Run(name, func(t *testing.T) {
			model := proxy.NewProxyModel(3)
			opt, err := BuildOptimizer(name, proxy.LR, rank, 7)
			if err != nil {
				t.Fatal(err)
			}
			corpus, err := NewCorpus(11)
			if err != nil {
				t.Fatal(err)
			}
			var mem bytes.Buffer
			mp := memprof.New(memprof.Config{Out: &mem})

			method, err := memmodel.MethodByName(name)
			if err != nil {
				t.Fatal(err)
			}
			predicted := memmodel.StateElems(ShapesOf(model.Params().List()), method, rank) * memmodel.BytesFP32
			mp.Predict(memprof.CompOptimizerState, predicted)

			train.Pretrain(model, opt, corpus, train.PretrainConfig{
				Batch: proxy.Batch, Seq: proxy.Seq, Steps: 3, EvalBatches: 1, MemProf: mp,
			})

			s := lastMemSample(t, &mem)
			measured := float64(s.Components[memprof.CompOptimizerState])
			if dev := math.Abs(measured-predicted) / predicted; dev > 0.02 {
				t.Fatalf("%s: recorded %.0f state bytes vs predicted %.0f (%.2f%% off)",
					name, measured, predicted, dev*100)
			}
			// The timeline's own delta readout carries the same verdict.
			if d := s.DeltaFrac[memprof.CompOptimizerState]; math.Abs(d) > 0.02 {
				t.Fatalf("recorded delta_frac %.4f outside ±2%%", d)
			}
			if float64(s.TotalBytes) <= measured {
				t.Fatalf("total %d should include weights+grads beyond state %0.f", s.TotalBytes, measured)
			}
		})
	}
}

// TestLiveStateMatchesMemmodelZeRO repeats the acceptance check in the
// sharded world: a DP run with ZeRO-partitioned AdamW and APOLLO state must
// record per-shard components whose sum matches the unsharded memmodel
// prediction within ±2%, and each shard must match the
// ShardedOptimizerStateBytes per-replica figure.
func TestLiveStateMatchesMemmodelZeRO(t *testing.T) {
	const replicas = 3
	proxy, err := ProxyByName("60M")
	if err != nil {
		t.Fatal(err)
	}
	rank := proxy.DefaultRank()
	for _, name := range []string{"AdamW", "APOLLO"} {
		t.Run(name, func(t *testing.T) {
			model := proxy.NewProxyModel(3)
			sharded := zero.NewSharded(func() optim.Optimizer {
				opt, err := BuildOptimizer(name, proxy.LR, rank, 7)
				if err != nil {
					panic(err)
				}
				return opt
			}, replicas)
			corpus, err := NewCorpus(11)
			if err != nil {
				t.Fatal(err)
			}
			var mem bytes.Buffer
			mp := memprof.New(memprof.Config{Out: &mem})

			method, err := memmodel.MethodByName(name)
			if err != nil {
				t.Fatal(err)
			}
			shapes := ShapesOf(model.Params().List())
			predicted := memmodel.StateElems(shapes, method, rank) * memmodel.BytesFP32

			train.DPPretrain(model, sharded, corpus, train.DPConfig{
				PretrainConfig: train.PretrainConfig{
					Batch: proxy.Batch, Seq: proxy.Seq, Steps: 3, EvalBatches: 1, MemProf: mp,
				},
				Replicas: replicas,
			})

			s := lastMemSample(t, &mem)
			var shardSum float64
			for i := 0; i < replicas; i++ {
				v, ok := s.Components[memprof.ShardComponent(i)]
				if !ok {
					t.Fatalf("missing %s: %v", memprof.ShardComponent(i), s.Components)
				}
				shardSum += float64(v)
			}
			if dev := math.Abs(shardSum-predicted) / predicted; dev > 0.02 {
				t.Fatalf("%s: shards record %.0f bytes vs predicted %.0f (%.2f%% off)",
					name, shardSum, predicted, dev*100)
			}
			// Each shard is near the analytic per-replica footprint (the
			// ShardedOptimizerStateBytes rule: unsharded state ÷ world).
			// Row-segment sharding is not perfectly even, so the per-shard
			// slack is wider than the summed check — but the balance must be
			// real.
			perReplica := predicted / replicas
			for i := 0; i < replicas; i++ {
				v := float64(s.Components[memprof.ShardComponent(i)])
				if dev := math.Abs(v-perReplica) / perReplica; dev > 0.25 {
					t.Fatalf("shard %d records %.0f bytes, per-replica prediction %.0f (%.0f%% off)",
						i, v, perReplica, dev*100)
				}
			}
		})
	}
}
