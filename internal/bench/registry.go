package bench

import (
	"fmt"
	"io"
	"sort"
)

// Scale selects how much compute an experiment run spends.
type Scale int

const (
	// Quick shrinks step counts so the whole registry completes in minutes
	// (the default for `apollo-bench` and the Go benchmarks).
	Quick Scale = iota
	// Full uses the proxy defaults (the numbers recorded in EXPERIMENTS.md).
	Full
)

// RunContext carries execution options into a runner.
type RunContext struct {
	Scale Scale
	Out   io.Writer
	Seed  uint64
	// RunRoot, when set, makes every pretrain-family training run leave a
	// ledger entry under this directory (see internal/obs/runlog). Empty
	// disables the ledger — the right setting for unit tests and nested
	// sweeps that would otherwise spam entries.
	RunRoot string
}

// Printf writes to the context's output.
func (c *RunContext) Printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// steps scales a Full step count down for Quick runs. The floor keeps quick
// runs long enough for the optimizer orderings to emerge (shorter traces are
// dominated by initialization noise).
func (c *RunContext) steps(full int) int {
	if c.Scale == Quick {
		s := full / 2
		if s < 60 {
			s = 60
		}
		return s
	}
	return full
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string // table/figure the runner regenerates
	Run      func(ctx *RunContext) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns an experiment by id.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try `list`)", id)
	}
	return e, nil
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
