package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"sync"
	"time"

	"apollo/internal/ckpt"
	"apollo/internal/memmodel"
	"apollo/internal/obs"
	"apollo/internal/optim"
	"apollo/internal/serve"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

func init() {
	register(Experiment{
		ID:       "serve",
		Title:    "Evaluation service: parity, serving footprint, hot reload, throughput vs concurrency",
		PaperRef: "Sec. 5 evaluation protocol as a service",
		Run:      runServe,
	})
}

// serveBenchRow is one concurrency level's measured throughput/latency.
// Quantiles are read from an obs.Histogram over per-query latencies, so
// they carry the same bucket resolution the live /metrics endpoint reports.
type serveBenchRow struct {
	Concurrency   int     `json:"concurrency"`
	Queries       int     `json:"queries"`
	WallSeconds   float64 `json:"wall_seconds"`
	QPS           float64 `json:"qps"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	P50LatencyMS  float64 `json:"p50_ms"`
	P95LatencyMS  float64 `json:"p95_ms"`
	P99LatencyMS  float64 `json:"p99_ms"`
}

// serveBenchReport is the BENCH_serve.json schema.
type serveBenchReport struct {
	Description     string          `json:"description"`
	Host            map[string]any  `json:"host"`
	Parity          string          `json:"parity"`
	OfflineLoss     float64         `json:"offline_loss"`
	ServedLoss      float64         `json:"served_loss"`
	ResidentBytes   int64           `json:"resident_bytes"`
	PredictedBytes  int64           `json:"predicted_bytes"`
	DeviationPct    float64         `json:"deviation_pct"`
	CheckpointBytes int64           `json:"checkpoint_bytes"`
	BatchedForwards int64           `json:"batched_forwards"`
	ScoredSeqs      int64           `json:"scored_seqs"`
	LargestBatch    int64           `json:"largest_batch"`
	Throughput      []serveBenchRow `json:"throughput"`
	// Load is the open-loop sweep owned by `apollo-bench -run load`
	// (runners_load.go); runServe preserves it across rewrites.
	Load *loadBenchSection `json:"load,omitempty"`
}

// runServe exercises the evaluation service end to end on the 60M proxy: a
// short training run is saved, opened through the weights-only path, and
// queried. It verifies the determinism contract (served perplexity ==
// train.Validate bit-for-bit), the memory contract (resident ≈
// memmodel.ServeBytes, within 2%, far below the checkpoint size), hot
// reload (a re-saved checkpoint swaps in on the next acquire), and records
// measured logprob throughput/latency against query concurrency into
// BENCH_serve.json.
func runServe(ctx *RunContext) error {
	proxy, err := ProxyByName("60M")
	if err != nil {
		return err
	}
	k := 4
	queries := 64
	if ctx.Scale == Full {
		k = 12
		queries = 256
	}
	dir, err := os.MkdirTemp("", "apollo-serve-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.ckpt")

	// 1. Train a short run and checkpoint it through the real save path.
	trainOnce := func(steps int) (*train.Result, error) {
		model := proxy.NewProxyModel(ctx.Seed + 33)
		opt := optim.NewAdamW(optim.Hyper{LR: proxy.LR})
		corpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return nil, err
		}
		res := train.Pretrain(model, opt, corpus, train.PretrainConfig{
			Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps,
		})
		st, err := ckpt.Capture(steps, model.Params().List(), opt, corpus)
		if err != nil {
			return nil, err
		}
		return &res, ckpt.SaveFile(path, st)
	}
	if _, err := trainOnce(k); err != nil {
		return err
	}

	// Offline reference: restore the snapshot and run train.Validate.
	snap, err := ckpt.LoadModelFile(path)
	if err != nil {
		return err
	}
	refModel := proxy.NewProxyModel(1)
	if err := snap.InstallWeights(refModel.Params().List()); err != nil {
		return err
	}
	refCorpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return err
	}
	offline := train.Validate(refModel, refCorpus, 4, proxy.Batch, proxy.Seq)

	// 2. Serve it: parity + footprint.
	servCorpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return err
	}
	reg, err := serve.NewRegistry(serve.Config{Model: proxy.Model, Corpus: servCorpus})
	if err != nil {
		return err
	}
	e, err := reg.Acquire(path)
	if err != nil {
		return err
	}
	served, err := e.Perplexity(4, proxy.Batch, proxy.Seq)
	if err != nil {
		return err
	}
	parity := "exact"
	if served != offline { //apollo:exactfloat bit-parity contract: served bytes must match offline compute exactly
		parity = "DRIFT"
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	resident := e.ResidentBytes()
	predicted := int64(memmodel.ServeBytes(ShapesOf(refModel.Params().List())))
	dev := float64(predicted-resident) / float64(resident) * 100
	ctx.Printf("proxy-60M, %d-step AdamW run → %s\n\n", k, train.FormatBytes(fi.Size()))
	ctx.Printf("perplexity parity   %s (served %.17g, offline %.17g)\n", parity, served, offline)
	ctx.Printf("serving footprint   %s resident vs %s predicted (%+.2f%%) — checkpoint on disk %s\n",
		train.FormatBytes(resident), train.FormatBytes(predicted), dev, train.FormatBytes(fi.Size()))

	// 3. Hot reload: overwrite the checkpoint with a longer run; the next
	// acquire must swap in the new step without restarting anything (the
	// atomic save lands on a fresh inode, which the registry detects even
	// when size and mtime happen to coincide).
	if _, err := trainOnce(2 * k); err != nil {
		return err
	}
	e2, err := reg.Acquire(path)
	if err != nil {
		return err
	}
	reload := "ok"
	if e2.Step != 2*k || e2.Generation != 2 {
		reload = fmt.Sprintf("FAILED (step %d gen %d)", e2.Step, e2.Generation)
	}
	ctx.Printf("hot reload          %s (step %d → %d, generation %d → %d)\n\n",
		reload, e.Step, e2.Step, e.Generation, e2.Generation)

	// 4. Measured logprob throughput/latency vs concurrency. All queries
	// share one sequence length so concurrent submitters genuinely
	// coalesce into batched forwards.
	rng := tensor.NewRNG(ctx.Seed + 5)
	type q struct{ ctx, opt []int }
	qs := make([]q, queries)
	for i := range qs {
		c := make([]int, 16)
		o := make([]int, 8)
		for j := range c {
			c[j] = rng.Intn(proxy.Model.Vocab)
		}
		for j := range o {
			o[j] = rng.Intn(proxy.Model.Vocab)
		}
		qs[i] = q{ctx: c, opt: o}
	}
	var rows []serveBenchRow
	ctx.Printf("logprob throughput (%d queries, ctx 16 + opt 8):\n", queries)
	ctx.Printf("  %-12s %10s %10s %14s %9s %9s %9s\n",
		"concurrency", "wall", "qps", "mean latency", "p50", "p95", "p99")
	for _, conc := range []int{1, 2, 4, 8} {
		o := obs.NewRegistry()
		lat := o.Histogram("bench_query_seconds", "Per-query logprob latency.", obs.LatencyBuckets)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(qs); i += conc {
					t0 := time.Now()
					if _, err := e2.LogProb(qs[i].ctx, qs[i].opt); err != nil {
						panic(err)
					}
					lat.Observe(time.Since(t0).Seconds())
				}
			}(w)
		}
		wg.Wait()
		wall := time.Since(start).Seconds()
		row := serveBenchRow{
			Concurrency:   conc,
			Queries:       len(qs),
			WallSeconds:   wall,
			QPS:           float64(len(qs)) / wall,
			MeanLatencyMS: lat.Sum() / float64(lat.Count()) * 1e3,
			P50LatencyMS:  lat.Quantile(0.50) * 1e3,
			P95LatencyMS:  lat.Quantile(0.95) * 1e3,
			P99LatencyMS:  lat.Quantile(0.99) * 1e3,
		}
		rows = append(rows, row)
		ctx.Printf("  %-12d %9.3fs %10.1f %12.2fms %7.1fms %7.1fms %7.1fms\n",
			conc, row.WallSeconds, row.QPS, row.MeanLatencyMS,
			row.P50LatencyMS, row.P95LatencyMS, row.P99LatencyMS)
	}
	st := e2.BatcherStats()
	ctx.Printf("\ncoalescing: %d scoring units over %d batched forwards (largest batch %d)\n",
		st.ScoredSeqs, st.Forwards, st.LargestBatch)

	report := serveBenchReport{
		Description: "Measured evaluation-service results for this host. Regenerate with: apollo-bench -run serve. " +
			"On a single-core host the executor usually drains each query before the next submitter enqueues, " +
			"so coalescing (largest_batch) and the qps-vs-concurrency curve stay flat; on an N-core host " +
			"concurrent submitters genuinely stack into batched forwards and throughput rises until the " +
			"worker pool saturates. Parity and footprint are host-independent contracts.",
		Host: map[string]any{
			"cores": goruntime.GOMAXPROCS(0),
			"goos":  goruntime.GOOS, "goarch": goruntime.GOARCH, "go": goruntime.Version(),
		},
		Parity: parity, OfflineLoss: offline, ServedLoss: served,
		ResidentBytes: resident, PredictedBytes: predicted, DeviationPct: dev,
		CheckpointBytes: fi.Size(),
		BatchedForwards: st.Forwards, ScoredSeqs: st.ScoredSeqs, LargestBatch: st.LargestBatch,
		Throughput: rows,
	}
	// Keep the load section the `load` experiment owns, if one was recorded.
	if blob, err := os.ReadFile("BENCH_serve.json"); err == nil {
		var prev serveBenchReport
		if json.Unmarshal(blob, &prev) == nil {
			report.Load = prev.Load
		}
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_serve.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	ctx.Printf("wrote BENCH_serve.json\n")
	return nil
}
