package bench

import (
	goruntime "runtime"
	"time"

	"apollo/internal/cluster"
	"apollo/internal/memmodel"
	"apollo/internal/optim"
	rt "apollo/internal/runtime"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

func init() {
	register(Experiment{
		ID:       "runtime",
		Title:    "Parallel runtime: kernel scaling and measured vs simulated DP speedup",
		PaperRef: "Fig. 1 (right), Sec. 5.3",
		Run:      runRuntime,
	})
}

// runRuntime measures what internal/cluster only simulates: the wall-clock
// effect of parallel kernels and data-parallel training on this machine,
// printed next to the simulator's DDP prediction so the two can be compared.
func runRuntime(ctx *RunContext) error {
	cores := goruntime.GOMAXPROCS(0)
	pool := rt.Workers()
	ctx.Printf("host: %d core(s), worker pool size %d\n\n", cores, pool)

	// 1. Kernel scaling: serial vs pooled MatMul at 512x512. The serial
	// reference kernel bypasses the pool entirely, so this runner never
	// mutates shared state and is safe under `apollo-bench -jobs N`.
	const n = 512
	a := tensor.NewMatrixRand(n, n, 1, tensor.NewRNG(ctx.Seed))
	b := tensor.NewMatrixRand(n, n, 1, tensor.NewRNG(ctx.Seed+1))
	out := tensor.NewMatrix(n, n)
	iters := 5
	if ctx.Scale == Full {
		iters = 20
	}
	timeMatMul := func(mm func(out, a, b []float32, m, k, n int)) float64 {
		mm(out.Data, a.Data, b.Data, n, n, n) // warm up
		start := time.Now()
		for i := 0; i < iters; i++ {
			mm(out.Data, a.Data, b.Data, n, n, n)
		}
		return time.Since(start).Seconds() / float64(iters)
	}
	serial := timeMatMul(rt.MatMulSerial)
	par := timeMatMul(rt.MatMul)
	ctx.Printf("MatMul %dx%d: serial %.1f ms, %d workers %.1f ms → %.2fx (bit-identical)\n\n",
		n, n, serial*1e3, pool, par*1e3, serial/par)

	// 2. Measured data-parallel training speedup at fixed global batch.
	proxy, err := ProxyByName("60M")
	if err != nil {
		return err
	}
	steps := 6
	if ctx.Scale == Full {
		steps = 30
	}
	ctx.Printf("DP pre-training, proxy-60M, global batch %d, %d steps:\n", proxy.Batch, steps)
	var dpBase float64
	for _, replicas := range []int{1, 2, 4} {
		model := proxy.NewProxyModel(ctx.Seed + 33)
		opt := optim.NewAdamW(optim.Hyper{LR: proxy.LR})
		corpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		res := train.DPPretrain(model, opt, corpus, train.DPConfig{
			PretrainConfig: train.PretrainConfig{Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps},
			Replicas:       replicas,
		})
		if dpBase == 0 { //apollo:exactfloat zero marks the unset first-iteration baseline
			dpBase = res.WallSeconds
		}
		ctx.Printf("  replicas=%d  %6.2fs  speedup %.2fx  final ppl %.2f\n",
			replicas, res.WallSeconds, dpBase/res.WallSeconds, res.FinalValPPL)
	}

	// 3. The cluster simulator's DDP prediction for the same replica counts
	// (perfect-memory regime: fixed micro-batch, comm over NVLink).
	cfg, err := memmodel.ConfigByName("7B")
	if err != nil {
		return err
	}
	ctx.Printf("\nsimulated DDP scaling (internal/cluster, 7B on A100s, APOLLO profile):\n")
	var simBase float64
	for _, world := range []int{1, 2, 4} {
		w := cluster.Workload{
			Config: cfg, Dev: cluster.A100_80G(), World: world,
			SeqLen: 1024, GlobalBatch: 64, LayerWise: true,
		}
		st := cluster.StepTime(w, cluster.ProfileAPOLLO(256), 16)
		if simBase == 0 { //apollo:exactfloat zero marks the unset first-iteration baseline
			simBase = st.Total()
		}
		ctx.Printf("  world=%d     step %6.2fs  speedup %.2fx (comm %.3fs)\n",
			world, st.Total(), simBase/st.Total(), st.Comm)
	}
	ctx.Printf("\nOn a single core the measured DP speedup is ~1x by construction — the\n")
	ctx.Printf("replicas serialize onto one CPU; the simulator's near-linear curve is the\n")
	ctx.Printf("multi-core/multi-GPU expectation. On an N-core host the measured column\n")
	ctx.Printf("approaches it, bounded by the broadcast+all-reduce share of each step.\n")
	return nil
}
