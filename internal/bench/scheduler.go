package bench

import (
	"bytes"
	"fmt"
	"sync"
	"time"
)

// RunReport captures one experiment's outcome from a concurrent run: its
// full output (runners write to a private buffer, so interleaving is
// impossible), any error, and wall time.
type RunReport struct {
	ID      string
	Title   string
	Output  []byte
	Err     error
	Seconds float64
}

// RunConcurrent executes the experiments with at most jobs running at once
// and returns reports in the input order regardless of completion order.
// Experiments are independent by construction — each builds its own models,
// corpora and optimizers from the shared seed — and the tensor kernels they
// run on the shared worker pool are deterministic at any parallelism, so a
// concurrent registry run prints the same numbers as a sequential one.
func RunConcurrent(exps []Experiment, jobs int, scale Scale, seed uint64) []RunReport {
	return RunConcurrentCtx(exps, jobs, RunContext{Scale: scale, Seed: seed})
}

// RunConcurrentCtx is RunConcurrent with a full base context: each runner
// gets a copy of base with Out replaced by its private capture buffer, so
// RunRoot (and future options) flow into concurrent runs. The run ledger is
// already safe under this concurrency — IDs carry a process-local sequence
// number, so parallel runners never collide on a directory.
func RunConcurrentCtx(exps []Experiment, jobs int, base RunContext) []RunReport {
	if jobs < 1 {
		jobs = 1
	}
	reports := make([]RunReport, len(exps))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var buf bytes.Buffer
			start := time.Now()
			ctx := base
			ctx.Out = &buf
			err := runCaptured(e, &ctx)
			reports[i] = RunReport{
				ID: e.ID, Title: e.Title, Output: buf.Bytes(),
				Err: err, Seconds: time.Since(start).Seconds(),
			}
		}(i, e)
	}
	wg.Wait()
	return reports
}

// runCaptured converts a runner panic into an error so one bad experiment
// cannot take down the whole concurrent schedule.
func runCaptured(e Experiment, ctx *RunContext) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("bench: %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(ctx)
}
