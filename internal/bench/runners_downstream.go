package bench

import (
	"apollo/internal/data"
	"apollo/internal/eval"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

func init() {
	register(Experiment{
		ID:       "table4",
		Title:    "Zero-shot downstream evaluation of pretrained models",
		PaperRef: "Table 4",
		Run:      runTable4,
	})
	register(Experiment{
		ID:       "table5",
		Title:    "Commonsense fine-tuning comparison",
		PaperRef: "Table 5",
		Run:      runTable5,
	})
	register(Experiment{
		ID:       "table6",
		Title:    "MMLU-style fine-tuning across domains and base models",
		PaperRef: "Table 6",
		Run:      runTable6,
	})
}

// pretrainBase trains a proxy base model for the downstream experiments and
// returns it together with the source used (the tasks must come from the
// same distribution the model was pretrained on).
func pretrainBase(ctx *RunContext, proxy Proxy, method string, seq int, steps int) (*nn.Model, *data.Source, float64, error) {
	corpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return nil, nil, 0, err
	}
	model := proxy.NewProxyModel(ctx.Seed + 33)
	opt, err := BuildOptimizer(method, proxy.LR, proxy.DefaultRank(), ctx.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	res := train.Pretrain(model, opt, corpus, train.PretrainConfig{
		Batch: proxy.Batch, Seq: seq, Steps: steps,
		Schedule: optim.NewWarmupCosine(proxy.LR, steps),
	})
	return model, corpus.Source(), res.FinalValPPL, nil
}

func runTable4(ctx *RunContext) error {
	proxy, err := ProxyByName("350M")
	if err != nil {
		return err
	}
	paperAvg := map[string]map[string]float64{
		"short": {"AdamW": 0.3554, "APOLLO": 0.3681, "APOLLO-Mini": 0.3654},
		"long":  {"AdamW": 0.3712, "APOLLO": 0.3840, "APOLLO-Mini": 0.3785},
	}
	for _, setting := range []struct {
		label string
		key   string
		seq   int
	}{
		{"sequence length 32 (paper: 256)", "short", proxy.Seq},
		{"sequence length 64 (paper: 1024)", "long", proxy.Seq * 2},
	} {
		ctx.Printf("Table 4 — zero-shot accuracy, proxy-350M, %s\n\n", setting.label)
		ctx.Printf("%-14s %8s", "Method", "ppl")
		suite := data.ZeroShotSuite(ctx.Seed + 77)
		for _, t := range suite {
			ctx.Printf(" %10s", t.Name)
		}
		ctx.Printf(" %9s %9s\n", "Average", "paper-avg")
		for _, method := range []string{"AdamW", "APOLLO", "APOLLO-Mini"} {
			model, src, ppl, err := pretrainBase(ctx, proxy, method, setting.seq, ctx.steps(proxy.Steps))
			if err != nil {
				return err
			}
			results := eval.RunZeroShotSuite(model, src, ctx.Seed+77)
			ctx.Printf("%-14s %8.2f", method, ppl)
			for _, r := range results {
				ctx.Printf(" %10.3f", r.Accuracy)
			}
			ctx.Printf(" %9.3f %9.3f\n", eval.Average(results), paperAvg[setting.key][method])
		}
		ctx.Printf("\n")
	}
	ctx.Printf("shape to verify: APOLLO(-Mini) pretrained models score at or above the\nAdamW model on average, mirroring their lower perplexity.\n")
	return nil
}

func runTable5(ctx *RunContext) error {
	proxy, err := ProxyByName("130M")
	if err != nil {
		return err
	}
	// One shared pretrained base (the paper fine-tunes Llama-3.2-1B).
	base, src, _, err := pretrainBase(ctx, proxy, "AdamW", proxy.Seq, ctx.steps(proxy.Steps))
	if err != nil {
		return err
	}
	methods := []string{"AdamW", "LoRA", "DoRA", "GaLore", "Fira", "APOLLO w. SVD", "APOLLO", "APOLLO-Mini"}
	paperAvg := map[string]float64{
		"AdamW": 68.07, "LoRA": 59.21, "DoRA": 66.38, "GaLore": 61.14, "Fira": 68.98,
		"APOLLO w. SVD": 69.08, "APOLLO": 68.21, "APOLLO-Mini": 68.23,
	}
	suite := data.CommonsenseSuite(ctx.Seed + 99)
	ctx.Printf("Table 5 — commonsense fine-tuning accuracy (%%), proxy base model\n\n")
	ctx.Printf("%-14s", "Method")
	for _, t := range suite {
		ctx.Printf(" %7s", t.Name)
	}
	ctx.Printf(" %9s %9s\n", "Average", "paper-avg")
	ftRank := 8
	for _, method := range methods {
		var sum float64
		accs := make([]float64, 0, len(suite))
		for _, taskCfg := range suite {
			task := data.GenerateFTTask(src, taskCfg)
			model := cloneModel(base, proxy.Model)
			lr := 3e-3
			if method == "AdamW" {
				lr = 1e-3
			}
			opt, err := BuildOptimizer(method, lr, ftRank, ctx.Seed+5)
			if err != nil {
				return err
			}
			acc := train.FineTune(model, opt, task, train.FineTuneConfig{
				Epochs: maxInt(1, ctx.steps(12)/4), Batch: 8,
				Schedule: optim.Linear{Peak: lr, TotalSteps: 200}, Seed: ctx.Seed,
			})
			accs = append(accs, acc)
			sum += acc
		}
		ctx.Printf("%-14s", method)
		for _, a := range accs {
			ctx.Printf(" %7.1f", a*100)
		}
		ctx.Printf(" %9.1f %9.1f\n", sum/float64(len(suite))*100, paperAvg[method])
	}
	ctx.Printf("\nshape to verify: APOLLO family ≈ full AdamW fine-tuning; plain LoRA and\nGaLore trail (paper: APOLLO w. SVD best overall).\n")
	return nil
}

func runTable6(ctx *RunContext) error {
	proxy, err := ProxyByName("130M")
	if err != nil {
		return err
	}
	// Three "base models" = three pretraining seeds standing in for
	// LLaMA-3-8B / Gemma-7B / Mistral-7B.
	bases := []struct {
		name string
		seed uint64
	}{
		{"proxy-LLaMA", 1}, {"proxy-Gemma", 2}, {"proxy-Mistral", 3},
	}
	methods := []string{"AdamW", "LoRA", "GaLore", "Fira", "APOLLO", "APOLLO-Mini"}
	paperAvg := map[string]map[string]float64{
		"proxy-LLaMA":   {"AdamW": 64.85, "LoRA": 64.25, "GaLore": 64.43, "Fira": 64.32, "APOLLO": 64.35, "APOLLO-Mini": 64.41},
		"proxy-Gemma":   {"AdamW": 34.21, "LoRA": 32.18, "GaLore": 30.95, "Fira": 33.26, "APOLLO": 33.81, "APOLLO-Mini": 31.67},
		"proxy-Mistral": {"AdamW": 61.67, "LoRA": 61.41, "GaLore": 61.56, "Fira": 61.72, "APOLLO": 61.58, "APOLLO-Mini": 61.35},
	}
	suite := data.MMLUSuite(ctx.Seed + 111)
	ctx.Printf("Table 6 — MMLU-style fine-tuning accuracy (%%), best over a small LR sweep\n\n")
	for _, b := range bases {
		saved := ctx.Seed
		ctx.Seed = ctx.Seed*131 + b.seed
		base, src, _, err := pretrainBase(ctx, proxy, "AdamW", proxy.Seq, ctx.steps(proxy.Steps))
		ctx.Seed = saved
		if err != nil {
			return err
		}
		ctx.Printf("%s:\n", b.name)
		ctx.Printf("  %-14s", "Method")
		for _, t := range suite {
			ctx.Printf(" %15s", t.Name)
		}
		ctx.Printf(" %9s %9s\n", "Average", "paper-avg")
		for _, method := range methods {
			var bestAvg float64
			var bestAccs []float64
			for _, lr := range []float64{1e-3, 3e-3} { // paper sweeps nine LRs
				var sum float64
				accs := make([]float64, 0, len(suite))
				for _, taskCfg := range suite {
					task := data.GenerateFTTask(src, taskCfg)
					model := cloneModel(base, proxy.Model)
					opt, err := BuildOptimizer(method, lr, 4, ctx.Seed+7)
					if err != nil {
						return err
					}
					acc := train.FineTune(model, opt, task, train.FineTuneConfig{
						Epochs: maxInt(1, ctx.steps(8)/4), Batch: 8,
						Schedule: optim.Linear{Peak: lr, TotalSteps: 120}, Seed: ctx.Seed,
					})
					accs = append(accs, acc)
					sum += acc
				}
				if avg := sum / float64(len(suite)); avg > bestAvg {
					bestAvg = avg
					bestAccs = accs
				}
			}
			ctx.Printf("  %-14s", method)
			for _, a := range bestAccs {
				ctx.Printf(" %15.1f", a*100)
			}
			ctx.Printf(" %9.1f %9.1f\n", bestAvg*100, paperAvg[b.name][method])
		}
	}
	ctx.Printf("\nshape to verify: all memory-efficient methods within ~1-2 points of full\nfine-tuning; APOLLO competitive at rank 4, Mini at rank 1.\n")
	return nil
}

// cloneModel deep-copies a pretrained base so each fine-tuning run starts
// from identical weights.
func cloneModel(base *nn.Model, cfg nn.Config) *nn.Model {
	clone := nn.NewModel(cfg, tensor.NewRNG(0xC10E))
	srcParams := base.Params().List()
	dstParams := clone.Params().List()
	for i := range srcParams {
		dstParams[i].W.CopyFrom(srcParams[i].W)
	}
	return clone
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
