package bench

import (
	"math"

	"apollo/internal/cluster"
	"apollo/internal/memmodel"
	"apollo/internal/optim"
	"apollo/internal/train"
	"apollo/internal/zero"
)

func init() {
	register(Experiment{
		ID:       "zero",
		Title:    "ZeRO-style sharded optimizer states: parity, per-replica memory, comm",
		PaperRef: "Sec. 5.3, Table 3",
		Run:      runZero,
	})
}

// runZero measures the ZeRO subsystem against its two analytic models: the
// memmodel per-replica state prediction (unsharded footprint / N, the
// quantity Table 3 would report per GPU) and the cluster simulator's
// sharded step time. Every row first verifies the determinism contract —
// the sharded run must reproduce the plain run's final perplexity
// bit-for-bit — so the memory numbers are guaranteed to describe the same
// trajectory.
func runZero(ctx *RunContext) error {
	const world = 4
	proxy, err := ProxyByName("60M")
	if err != nil {
		return err
	}
	steps := 4
	if ctx.Scale == Full {
		steps = 20
	}
	rank := proxy.DefaultRank()

	type row struct {
		name   string
		method string
	}
	rows := []row{
		{"AdamW", "AdamW"},
		{"APOLLO", "APOLLO"},
		{"APOLLO-Mini", "APOLLO-Mini"},
		{"GaLore", "GaLore"},
	}

	ctx.Printf("proxy-60M, global batch %d, %d steps, %d replicas (ZeRO sharded)\n\n", proxy.Batch, steps, world)
	ctx.Printf("%-12s %-6s %10s %12s %12s %8s\n",
		"optimizer", "parity", "total", "max/replica", "predicted", "dev")

	pcfg := train.PretrainConfig{Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps}
	var zeroRes train.Result
	for _, r := range rows {
		// Validate the optimizer name once so the rebuild closure below is
		// known-good (zero.NewSharded calls it once per shard).
		if _, err := BuildOptimizer(r.name, proxy.LR, rank, ctx.Seed); err != nil {
			return err
		}
		build := func() optim.Optimizer {
			o, _ := BuildOptimizer(r.name, proxy.LR, rank, ctx.Seed)
			return o
		}

		plainModel := proxy.NewProxyModel(ctx.Seed + 33)
		plainCorpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		plain := train.DPPretrain(plainModel, build(), plainCorpus, train.DPConfig{
			PretrainConfig: pcfg, Replicas: 1,
		})

		zModel := proxy.NewProxyModel(ctx.Seed + 33)
		zCorpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		zres := train.DPPretrain(zModel, zero.NewSharded(build, world), zCorpus, train.DPConfig{
			PretrainConfig: pcfg, Replicas: world,
		})
		zeroRes = zres

		parity := "exact"
		if zres.FinalValPPL != plain.FinalValPPL { //apollo:exactfloat bit-parity contract: ZeRO run must match unsharded float-for-float
			parity = "DRIFT"
		}
		var maxReplica int64
		for _, b := range zres.ReplicaStateBytes {
			if b > maxReplica {
				maxReplica = b
			}
		}
		method, err := memmodel.MethodByName(r.method)
		if err != nil {
			return err
		}
		rr := rank
		if r.name == "APOLLO-Mini" {
			rr = 1
		}
		// Live states are fp32: predicted per-replica bytes = elems·4/world.
		predicted := memmodel.StateElems(ShapesOf(plainModel.Params().List()), method, rr) * 4 / world
		dev := 0.0
		if predicted > 0 {
			dev = (float64(maxReplica) - predicted) / predicted
		}
		ctx.Printf("%-12s %-6s %10s %12s %12s %+7.1f%%\n",
			r.name, parity,
			train.FormatBytes(zres.StateBytes),
			train.FormatBytes(maxReplica),
			train.FormatBytes(int64(math.Round(predicted))),
			dev*100)
	}

	// Comm volumes: measured counters from the last run vs the analytic
	// per-step expectation.
	var paramBytes int64
	m := proxy.NewProxyModel(ctx.Seed + 33)
	for _, p := range m.Params().List() {
		paramBytes += 4 * int64(p.NumEl())
	}
	ctx.Printf("\ncomm per step (P = %s of fp32 weights):\n", train.FormatBytes(paramBytes))
	ctx.Printf("  gradient all-reduce  measured %s   analytic (B-1)·P = %s\n",
		train.FormatBytes(zeroRes.AllReduceBytes/int64(steps)),
		train.FormatBytes(int64(proxy.Batch-1)*paramBytes))
	ctx.Printf("  weight broadcast     measured %s   analytic (N-1)·P = %s\n",
		train.FormatBytes(zeroRes.BroadcastBytes/int64(steps)),
		train.FormatBytes(int64(world-1)*paramBytes))

	// The cluster simulator's prediction for the same mechanism at paper
	// scale: sharding buys per-GPU state memory and a shorter optimizer
	// pass, paid for in broadcast bandwidth.
	cfg, err := memmodel.ConfigByName("7B")
	if err != nil {
		return err
	}
	ctx.Printf("\nsimulated 7B on %d A100s (AdamW profile, seq 1024):\n", world)
	for _, zs := range []bool{false, true} {
		w := cluster.Workload{
			Config: cfg, Dev: cluster.A100_80G(), World: world,
			SeqLen: 1024, GlobalBatch: 64, ZeroShard: zs,
		}
		prof := cluster.ProfileAdamW()
		micro := cluster.MaxMicroBatch(w, prof)
		label := "plain DDP  "
		if zs {
			label = "ZeRO-shard "
		}
		if micro == 0 {
			ctx.Printf("  %s OOM at micro-batch 1\n", label)
			continue
		}
		st := cluster.StepTime(w, prof, micro)
		states := memmodel.ShardedOptimizerStateBytes(cfg, memmodel.MethodAdamW, cfg.DefaultRank(), map[bool]int{false: 1, true: world}[zs])
		ctx.Printf("  %s micro=%-3d step %6.3fs (opt %.4f, comm %.4f)  states/GPU %.2f GiB\n",
			label, micro, st.Total(), st.Optimizer, st.Comm, memmodel.GiB(states))
	}
	return nil
}
