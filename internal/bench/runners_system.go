package bench

import (
	"time"

	"apollo/internal/cluster"
	"apollo/internal/memmodel"
	"apollo/internal/tensor"
)

func init() {
	register(Experiment{
		ID:       "table1",
		Title:    "Optimizer-state formulas and capability matrix",
		PaperRef: "Table 1",
		Run:      runTable1,
	})
	register(Experiment{
		ID:       "fig1-memory",
		Title:    "LLaMA-7B memory breakdown per method",
		PaperRef: "Fig. 1 (middle)",
		Run:      runFig1Memory,
	})
	register(Experiment{
		ID:       "fig1-throughput",
		Title:    "8×A100 end-to-end throughput",
		PaperRef: "Fig. 1 (right)",
		Run:      runFig1Throughput,
	})
	register(Experiment{
		ID:       "fig9",
		Title:    "GaLore throughput spikes from periodic SVD",
		PaperRef: "Fig. 9",
		Run:      runFig9,
	})
	register(Experiment{
		ID:       "table7",
		Title:    "Optimizer step time (measured, proxy scale)",
		PaperRef: "Table 7",
		Run:      runTable7,
	})
	register(Experiment{
		ID:       "table11",
		Title:    "Pre-training hyperparameters (paper configs + proxies)",
		PaperRef: "Tables 11/12",
		Run:      runTable11,
	})
	register(Experiment{
		ID:       "scaling-13b",
		Title:    "13B naive-DDP and 7B <12GB feasibility",
		PaperRef: "Section 5.3",
		Run:      runScaling13B,
	})
}

func runTable1(ctx *RunContext) error {
	ctx.Printf("Table 1 — optimizer states for one m×n weight (m ≤ n), rank r\n")
	ctx.Printf("%-12s %-12s %-10s %-10s %-10s %-8s\n", "Method", "States", "FullRankG", "FullRankW", "Pretrain", "noSVD")
	for _, r := range memmodel.Table1() {
		ctx.Printf("%-12s %-12s %-10v %-10v %-10v %-8v\n",
			r.Method, r.StateFormula, r.FullRankGrad, r.FullRankWts, r.PreTraining, r.NoSVD)
	}
	ctx.Printf("\nInstantiated on LLaMA-7B shapes (BF16 state units, paper convention):\n")
	cfg, err := memmodel.ConfigByName("7B")
	if err != nil {
		return err
	}
	rows := []struct {
		m    memmodel.Method
		rank int
	}{
		{memmodel.MethodAdamW, 0},
		{memmodel.MethodGaLore, 1024},
		{memmodel.MethodFira, 1024},
		{memmodel.MethodAPOLLO, 256},
		{memmodel.MethodAPOLLOMini, 1},
		{memmodel.MethodAdam8bit, 0},
		{memmodel.MethodGaLore8bit, 1024},
	}
	ctx.Printf("%-14s %-8s %-10s %s\n", "Method", "Rank", "States", "paper")
	paper := map[string]string{
		"AdamW": "≈28G (intro)", "APOLLO": "1.6G (Table 3)", "APOLLO-Mini": "≈0G (Table 3)",
		"8-bit Adam": "13G (Table 3)", "8-bit GaLore": "4.9G (Table 3)",
	}
	for _, row := range rows {
		rank := row.rank
		if rank == 0 {
			rank = cfg.DefaultRank()
		}
		gib := memmodel.GiB(memmodel.OptimizerStateBytes(cfg, row.m, rank))
		ctx.Printf("%-14s %-8d %-10.2fG %s\n", row.m.Name, rank, gib, paper[row.m.Name])
	}
	return nil
}

func runFig1Memory(ctx *RunContext) error {
	cfg, err := memmodel.ConfigByName("7B")
	if err != nil {
		return err
	}
	ctx.Printf("Fig. 1 (middle) — 7B single-batch memory breakdown (GiB), seq 256,\n")
	ctx.Printf("layer-wise gradient updates for all low-rank methods (Lv et al., 2023)\n\n")
	ctx.Printf("%-16s %8s %8s %8s %8s %8s\n", "Method", "Weights", "Grads", "States", "Act", "Total")
	type row struct {
		name      string
		method    memmodel.Method
		rank      int
		layerWise bool
		int8W     bool
	}
	rows := []row{
		{"AdamW", memmodel.MethodAdamW, 0, false, false},
		{"GaLore", memmodel.MethodGaLore, 1024, true, false},
		{"APOLLO", memmodel.MethodAPOLLO, 256, true, false},
		{"APOLLO-Mini", memmodel.MethodAPOLLOMini, 1, true, false},
		{"Q-APOLLO", memmodel.MethodAPOLLO, 256, true, true},
		{"Q-APOLLO-Mini", memmodel.MethodAPOLLOMini, 1, true, true},
	}
	for _, r := range rows {
		b := memmodel.Compute(memmodel.Plan{
			Config: cfg, Method: r.method, Rank: r.rank,
			SeqLen: 256, MicroBatch: 1,
			LayerWiseGrad: r.layerWise, ActivationCkpt: true, Int8Weights: r.int8W,
		})
		ctx.Printf("%-16s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.name, memmodel.GiB(b.Weights), memmodel.GiB(b.Gradients),
			memmodel.GiB(b.States), memmodel.GiB(b.Activations), memmodel.GiB(b.Total()))
	}
	ctx.Printf("\npaper: Q-APOLLO-Mini trains 7B in <12G; AdamW needs ≈58G+.\n")
	return nil
}

func runFig1Throughput(ctx *RunContext) error {
	cfg, err := memmodel.ConfigByName("7B")
	if err != nil {
		return err
	}
	w := cluster.Workload{
		Config: cfg, Dev: cluster.A100_80G(), World: 8,
		SeqLen: 1024, GlobalBatch: 512,
	}
	wLW := w
	wLW.LayerWise = true
	ctx.Printf("Fig. 1 (right) — simulated 8×A100-80G training throughput, 7B\n\n")
	var base float64
	for _, p := range []struct {
		prof cluster.OptimizerProfile
		work cluster.Workload
	}{
		{cluster.ProfileAdamW(), w},
		{cluster.ProfileGaLore(1024, 200), wLW},
		{cluster.ProfileAPOLLO(256), wLW},
		{cluster.ProfileAPOLLOMini(), wLW},
	} {
		tps, micro := cluster.Throughput(p.work, p.prof)
		if base == 0 { //apollo:exactfloat zero marks the unset first-iteration baseline
			base = tps
		}
		ctx.Printf("%-12s micro-batch %2d  %8.0f tok/s  (%.2fx AdamW)\n", p.prof.Name, micro, tps, tps/base)
	}
	ctx.Printf("\npaper: APOLLO(-Mini) reach ≈3x AdamW by fitting 4x larger batches.\n")
	return nil
}

func runFig9(ctx *RunContext) error {
	cfg, err := memmodel.ConfigByName("1B")
	if err != nil {
		return err
	}
	w := cluster.Workload{Config: cfg, Dev: cluster.A100_80G(), World: 1, SeqLen: 256, GlobalBatch: 16, Ckpt: true}
	galore := cluster.SimulateTimeline(w, cluster.ProfileGaLore(512, 10), 40)
	apollo := cluster.SimulateTimeline(w, cluster.ProfileAPOLLO(512), 40)
	ctx.Printf("Fig. 9 — 1B throughput timeline (tokens/s); SVD refresh every 10 steps\n\n")
	ctx.Printf("%6s %14s %14s\n", "step", "GaLore", "APOLLO")
	for i := 0; i < len(galore); i += 2 {
		ctx.Printf("%6d %14.0f %14.0f\n", i, galore[i].TokensPerS, apollo[i].TokensPerS)
	}
	ctx.Printf("\npaper: GaLore's throughput collapses at every SVD refresh (10 min on 7B);\nAPOLLO's trace is flat because reseeding a random projection is free.\n")
	return nil
}

func runTable7(ctx *RunContext) error {
	ctx.Printf("Table 7 — optimizer step time, measured on CPU at proxy scale\n")
	ctx.Printf("(paper, A100: 1B → AdamW 0.036s, APOLLO 0.051s, Mini 0.048s, GaLore 0.371s, Fira 0.421s;\n")
	ctx.Printf(" 7B → AdamW 0.173s, APOLLO 0.159s, Mini 0.142s, GaLore 2.874s, Fira 3.086s)\n\n")
	methods := []string{"AdamW", "APOLLO", "APOLLO-Mini", "GaLore", "Fira"}
	for _, proxyName := range []string{"1B", "7B"} {
		proxy, err := ProxyByName(proxyName)
		if err != nil {
			return err
		}
		ctx.Printf("proxy-%s:\n", proxyName)
		for _, m := range methods {
			model := proxy.NewProxyModel(ctx.Seed)
			opt, err := BuildOptimizer(m, proxy.LR, proxy.DefaultRank(), ctx.Seed)
			if err != nil {
				return err
			}
			rng := tensor.NewRNG(ctx.Seed + 9)
			params := model.Params().List()
			fill := func() {
				for _, p := range params {
					for i := range p.Grad.Data {
						p.Grad.Data[i] = rng.NormFloat32()
					}
				}
			}
			fill()
			opt.Step(params) // warm up state allocation
			iters := ctx.steps(40)
			start := time.Now()
			for i := 0; i < iters; i++ {
				opt.Step(params)
			}
			per := time.Since(start).Seconds() / float64(iters)
			ctx.Printf("  %-12s %10.3f ms/step\n", m, per*1000)
		}
	}
	ctx.Printf("\nshape to verify: GaLore/Fira ≫ AdamW ≈ APOLLO ≈ Mini (SVD amortized per step).\n")
	return nil
}

func runTable11(ctx *RunContext) error {
	ctx.Printf("Table 11 — paper LLaMA configs and the CPU proxies used here\n\n")
	ctx.Printf("%-6s %7s %7s %6s %7s %8s %9s\n", "size", "hidden", "inter", "heads", "layers", "steps", "params")
	for _, c := range memmodel.PaperConfigs() {
		ctx.Printf("%-6s %7d %7d %6d %7d %8d %8.2fB\n",
			c.Name, c.Hidden, c.Inter, c.Heads, c.Layers, c.Steps, float64(c.NumParams())/1e9)
	}
	ctx.Printf("\nproxies (same family, CPU-trainable):\n")
	ctx.Printf("%-6s %7s %7s %6s %7s %8s %9s\n", "size", "dim", "hidden", "heads", "layers", "steps", "params")
	for _, p := range Proxies() {
		ctx.Printf("%-6s %7d %7d %6d %7d %8d %9d\n",
			p.Name, p.Model.Dim, p.Model.Hidden, p.Model.Heads, p.Model.Layers, p.Steps, p.Model.NumParams())
	}
	ctx.Printf("\nschedule: 10%% warmup + cosine to 10%% of peak (Appendix A.4); NL γ=1.01.\n")
	return nil
}

func runScaling13B(ctx *RunContext) error {
	cfg13, err := memmodel.ConfigByName("13B")
	if err != nil {
		return err
	}
	cfg7, _ := memmodel.ConfigByName("7B")
	a100 := cluster.A100_80G()
	ctx.Printf("Section 5.3 feasibility claims\n\n")

	w13 := cluster.Workload{Config: cfg13, Dev: a100, World: 1, SeqLen: 256, GlobalBatch: 8, Ckpt: true}
	w13LW := w13
	w13LW.LayerWise = true
	ctx.Printf("13B on one A100-80G (naive DDP per GPU):\n")
	ctx.Printf("  %s\n", cluster.Describe(w13, cluster.ProfileAdamW()))
	ctx.Printf("  %s\n", cluster.Describe(w13LW, cluster.ProfileAPOLLOMini()))

	w7 := cluster.Workload{
		Config: cfg7, Dev: cluster.RTX4090(), World: 1, SeqLen: 256, GlobalBatch: 1,
		Ckpt: true, LayerWise: true, Int8Weights: true,
	}
	b := memmodel.Compute(memmodel.Plan{
		Config: cfg7, Method: memmodel.MethodAPOLLOMini, Rank: 1,
		SeqLen: 256, MicroBatch: 1, Int8Weights: true, LayerWiseGrad: true, ActivationCkpt: true,
	})
	ctx.Printf("\n7B with INT8 weights + APOLLO-Mini + layer-wise grads: %.2f GiB total", memmodel.GiB(b.Total()))
	if cluster.Fits(w7, cluster.ProfileAPOLLOMini()) {
		ctx.Printf(" → fits a 24G consumer GPU (paper: <12G)\n")
	} else {
		ctx.Printf(" → DOES NOT FIT (unexpected)\n")
	}
	return nil
}
