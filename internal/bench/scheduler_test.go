package bench

import (
	"errors"
	"strings"
	"testing"

	"apollo/internal/train"
)

// fakeExperiments builds runners that don't touch the registry (the real
// registry's runners are exercised by bench_test.go; here we test the
// scheduler mechanics).
func fakeExperiments() []Experiment {
	return []Experiment{
		{ID: "a", Title: "first", Run: func(ctx *RunContext) error {
			ctx.Printf("out-a seed=%d", ctx.Seed)
			return nil
		}},
		{ID: "b", Title: "second", Run: func(ctx *RunContext) error {
			ctx.Printf("out-b")
			return errors.New("boom")
		}},
		{ID: "c", Title: "third", Run: func(ctx *RunContext) error {
			panic("kaboom")
		}},
		{ID: "d", Title: "fourth", Run: func(ctx *RunContext) error {
			ctx.Printf("out-d")
			return nil
		}},
	}
}

func TestRunConcurrentCapturesPerRunner(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		reports := RunConcurrent(fakeExperiments(), jobs, Quick, 9)
		if len(reports) != 4 {
			t.Fatalf("jobs=%d: %d reports", jobs, len(reports))
		}
		// Reports come back in input order with per-runner output intact.
		if reports[0].ID != "a" || string(reports[0].Output) != "out-a seed=9" || reports[0].Err != nil {
			t.Fatalf("jobs=%d: report a = %+v", jobs, reports[0])
		}
		if reports[1].Err == nil || string(reports[1].Output) != "out-b" {
			t.Fatalf("jobs=%d: report b = %+v", jobs, reports[1])
		}
		if reports[2].Err == nil || !strings.Contains(reports[2].Err.Error(), "kaboom") {
			t.Fatalf("jobs=%d: panic not captured: %+v", jobs, reports[2])
		}
		if reports[3].ID != "d" || string(reports[3].Output) != "out-d" {
			t.Fatalf("jobs=%d: report d = %+v", jobs, reports[3])
		}
	}
}

// seedSensitiveExperiments are runners whose entire output is a
// deterministic function of ctx.Seed and real shared-infrastructure work
// (models, corpora, optimizer steps on the shared tensor pool) — the
// workload class the scheduler's determinism contract covers.
func seedSensitiveExperiments() []Experiment {
	run := func(id string, steps int) func(ctx *RunContext) error {
		return func(ctx *RunContext) error {
			proxy, err := ProxyByName("60M")
			if err != nil {
				return err
			}
			corpus, err := NewCorpus(ctx.Seed + 17)
			if err != nil {
				return err
			}
			model := proxy.NewProxyModel(ctx.Seed + 33)
			opt, err := BuildOptimizer("APOLLO-Mini", proxy.LR, proxy.DefaultRank(), ctx.Seed)
			if err != nil {
				return err
			}
			res := train.Pretrain(model, opt, corpus, train.PretrainConfig{
				Batch: 4, Seq: 8, Steps: steps, EvalBatches: 1,
			})
			ctx.Printf("%s seed=%d ppl=%.17g states=%d", id, ctx.Seed, res.FinalValPPL, res.StateBytes)
			return nil
		}
	}
	return []Experiment{
		{ID: "s1", Title: "one", Run: run("s1", 2)},
		{ID: "s2", Title: "two", Run: run("s2", 3)},
		{ID: "s3", Title: "three", Run: run("s3", 1)},
	}
}

// TestRunConcurrentJobsParity pins the scheduler's determinism contract:
// per-experiment reports are byte-identical whatever the -jobs level,
// because every runner builds its own models/corpora from the shared seed
// and the tensor kernels are schedule-independent. A drift here would mean
// experiments share hidden mutable state.
func TestRunConcurrentJobsParity(t *testing.T) {
	ref := RunConcurrent(seedSensitiveExperiments(), 1, Quick, 7)
	for _, jobs := range []int{2, 4} {
		got := RunConcurrent(seedSensitiveExperiments(), jobs, Quick, 7)
		if len(got) != len(ref) {
			t.Fatalf("jobs=%d: %d reports, want %d", jobs, len(got), len(ref))
		}
		for i := range ref {
			if got[i].ID != ref[i].ID {
				t.Fatalf("jobs=%d: report %d is %s, want %s (order must be input order)", jobs, i, got[i].ID, ref[i].ID)
			}
			if string(got[i].Output) != string(ref[i].Output) {
				t.Fatalf("jobs=%d: %s output diverged:\n  got  %q\n  want %q",
					jobs, got[i].ID, got[i].Output, ref[i].Output)
			}
			if (got[i].Err == nil) != (ref[i].Err == nil) {
				t.Fatalf("jobs=%d: %s error state diverged", jobs, got[i].ID)
			}
		}
	}
	// And a different seed must actually change the outputs — otherwise the
	// parity above would be vacuous.
	other := RunConcurrent(seedSensitiveExperiments(), 4, Quick, 8)
	if string(other[0].Output) == string(ref[0].Output) {
		t.Fatal("outputs are seed-insensitive; parity check proves nothing")
	}
}

// TestRunConcurrentRealRunners runs two real registry experiments
// concurrently and checks both produce their captured output.
func TestRunConcurrentRealRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("real runners are slow")
	}
	all := All()
	if len(all) < 2 {
		t.Skip("registry too small")
	}
	picked := all[:2]
	reports := RunConcurrent(picked, 2, Quick, 1)
	for i, r := range reports {
		if r.Err != nil {
			t.Fatalf("runner %s failed: %v", r.ID, r.Err)
		}
		if len(r.Output) == 0 {
			t.Fatalf("runner %s produced no output", r.ID)
		}
		if r.ID != picked[i].ID {
			t.Fatalf("report order broken: got %s want %s", r.ID, picked[i].ID)
		}
	}
}
