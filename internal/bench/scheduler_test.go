package bench

import (
	"errors"
	"strings"
	"testing"
)

// fakeExperiments builds runners that don't touch the registry (the real
// registry's runners are exercised by bench_test.go; here we test the
// scheduler mechanics).
func fakeExperiments() []Experiment {
	return []Experiment{
		{ID: "a", Title: "first", Run: func(ctx *RunContext) error {
			ctx.Printf("out-a seed=%d", ctx.Seed)
			return nil
		}},
		{ID: "b", Title: "second", Run: func(ctx *RunContext) error {
			ctx.Printf("out-b")
			return errors.New("boom")
		}},
		{ID: "c", Title: "third", Run: func(ctx *RunContext) error {
			panic("kaboom")
		}},
		{ID: "d", Title: "fourth", Run: func(ctx *RunContext) error {
			ctx.Printf("out-d")
			return nil
		}},
	}
}

func TestRunConcurrentCapturesPerRunner(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		reports := RunConcurrent(fakeExperiments(), jobs, Quick, 9)
		if len(reports) != 4 {
			t.Fatalf("jobs=%d: %d reports", jobs, len(reports))
		}
		// Reports come back in input order with per-runner output intact.
		if reports[0].ID != "a" || string(reports[0].Output) != "out-a seed=9" || reports[0].Err != nil {
			t.Fatalf("jobs=%d: report a = %+v", jobs, reports[0])
		}
		if reports[1].Err == nil || string(reports[1].Output) != "out-b" {
			t.Fatalf("jobs=%d: report b = %+v", jobs, reports[1])
		}
		if reports[2].Err == nil || !strings.Contains(reports[2].Err.Error(), "kaboom") {
			t.Fatalf("jobs=%d: panic not captured: %+v", jobs, reports[2])
		}
		if reports[3].ID != "d" || string(reports[3].Output) != "out-d" {
			t.Fatalf("jobs=%d: report d = %+v", jobs, reports[3])
		}
	}
}

// TestRunConcurrentRealRunners runs two real registry experiments
// concurrently and checks both produce their captured output.
func TestRunConcurrentRealRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("real runners are slow")
	}
	all := All()
	if len(all) < 2 {
		t.Skip("registry too small")
	}
	picked := all[:2]
	reports := RunConcurrent(picked, 2, Quick, 1)
	for i, r := range reports {
		if r.Err != nil {
			t.Fatalf("runner %s failed: %v", r.ID, r.Err)
		}
		if len(r.Output) == 0 {
			t.Fatalf("runner %s produced no output", r.ID)
		}
		if r.ID != picked[i].ID {
			t.Fatalf("report order broken: got %s want %s", r.ID, picked[i].ID)
		}
	}
}
