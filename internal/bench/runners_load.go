package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/ckpt"
	"apollo/internal/obs"
	"apollo/internal/optim"
	"apollo/internal/serve"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

func init() {
	register(Experiment{
		ID:       "load",
		Title:    "Production traffic: open-loop load vs offered QPS — latency, shed rate, cache hit rate",
		PaperRef: "Sec. 5 service under load",
		Run:      runLoad,
	})
}

// loadRow is one offered-QPS level of the open-loop sweep. Open loop means
// requests fire on a fixed clock regardless of completions — offered load
// does not slow down when the server does, which is what exposes queueing
// collapse and makes shedding measurable.
type loadRow struct {
	OfferedQPS   float64 `json:"offered_qps"`
	AchievedQPS  float64 `json:"achieved_qps"` // dispatch rate the harness actually sustained
	Requests     int     `json:"requests"`
	OK           int     `json:"ok"`
	Shed         int     `json:"shed"` // 429 responses
	ShedRate     float64 `json:"shed_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50LatencyMS float64 `json:"p50_ms"`
	P99LatencyMS float64 `json:"p99_ms"`
}

// loadBenchSection is the "load" section of BENCH_serve.json.
type loadBenchSection struct {
	Description     string    `json:"description"`
	CapacityQPS     float64   `json:"capacity_qps"` // closed-loop single-stream probe
	MaxQueue        int       `json:"max_queue"`
	ShedThresholdMS float64   `json:"shed_threshold_ms"`
	CacheParity     string    `json:"cache_parity"`      // cached == computed bytes
	HotReloadParity string    `json:"hot_reload_parity"` // new generation recomputes, then caches
	Rows            []loadRow `json:"rows"`
}

// runLoad drives a real apollo-serve HTTP server open-loop: a closed-loop
// probe estimates single-stream capacity, then fixed-rate request streams at
// multiples of it record latency quantiles, shed rate and cache hit rate per
// offered level into BENCH_serve.json (section "load", merged next to the
// closed-loop serve section). It also pins the two parity contracts on the
// wire: a cached response is byte-identical to its first compute, and a hot
// reload recomputes instead of serving the old generation's bytes.
func runLoad(ctx *RunContext) error {
	proxy, err := ProxyByName("60M")
	if err != nil {
		return err
	}
	steps, duration, maxPerLevel := 4, 1500*time.Millisecond, 1500
	if ctx.Scale == Full {
		steps, duration, maxPerLevel = 12, 4*time.Second, 6000
	}

	dir, err := os.MkdirTemp("", "apollo-load-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.ckpt")
	trainOnce := func(steps int) error {
		model := proxy.NewProxyModel(ctx.Seed + 33)
		opt := optim.NewAdamW(optim.Hyper{LR: proxy.LR})
		corpus, err := NewCorpus(ctx.Seed + 17)
		if err != nil {
			return err
		}
		train.Pretrain(model, opt, corpus, train.PretrainConfig{
			Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps,
		})
		st, err := ckpt.Capture(steps, model.Params().List(), opt, corpus)
		if err != nil {
			return err
		}
		return ckpt.SaveFile(path, st)
	}
	if err := trainOnce(steps); err != nil {
		return err
	}

	// A production-shaped server: default cache and queue bound, shedding at
	// a 25ms queue-wait p95 over a 250ms window.
	corpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return err
	}
	reg, err := serve.NewRegistry(serve.Config{
		Model: proxy.Model, Corpus: corpus,
		ShedThreshold: 25 * time.Millisecond, ShedWindow: 250 * time.Millisecond,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	if _, err := reg.Acquire(path); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := serve.NewHTTPServer("", serve.NewServer(reg).Handler())
	go srv.Serve(ln)
	defer srv.Close() //apollo:allowdiscard throwaway in-process bench server; shutdown errors carry no data loss
	base := "http://" + ln.Addr().String()

	client := &http.Client{
		Timeout: time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}
	logprob := func(seed int) ([]byte, error) {
		rng := tensor.NewRNG(ctx.Seed + uint64(seed)*2654435761 + 9)
		c, o := make([]int, 16), make([]int, 8)
		for j := range c {
			c[j] = rng.Intn(proxy.Model.Vocab)
		}
		for j := range o {
			o[j] = rng.Intn(proxy.Model.Vocab)
		}
		return json.Marshal(map[string]any{"checkpoint": path, "context": c, "option": o})
	}
	post := func(body []byte) (int, string, []byte, error) {
		resp, err := client.Post(base+"/v1/logprob", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, "", nil, err
		}
		defer resp.Body.Close() //apollo:allowdiscard read-only response stream; body is fully consumed by ReadAll
		blob, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Cache"), blob, err
	}

	// Parity contract on the wire: compute, then hit — identical bytes.
	parityBody, err := logprob(1)
	if err != nil {
		return err
	}
	_, xc1, first, err := post(parityBody)
	if err != nil {
		return err
	}
	_, xc2, second, err := post(parityBody)
	if err != nil {
		return err
	}
	cacheParity := "exact"
	if xc1 != "miss" || xc2 != "hit" || !bytes.Equal(first, second) {
		cacheParity = fmt.Sprintf("DRIFT (%s/%s, equal=%v)", xc1, xc2, bytes.Equal(first, second))
	}
	ctx.Printf("cache parity        %s (cached response is byte-identical to its compute)\n", cacheParity)

	// Hot-reload contract: new bytes on disk → the same query recomputes
	// under the new generation, then caches again.
	if err := trainOnce(steps + 2); err != nil {
		return err
	}
	_, xr1, reloaded, err := post(parityBody)
	if err != nil {
		return err
	}
	_, xr2, reloadedAgain, err := post(parityBody)
	if err != nil {
		return err
	}
	reloadParity := "exact"
	if xr1 != "miss" || bytes.Equal(reloaded, first) || xr2 != "hit" || !bytes.Equal(reloaded, reloadedAgain) {
		reloadParity = fmt.Sprintf("DRIFT (%s/%s)", xr1, xr2)
	}
	ctx.Printf("hot-reload parity   %s (reload recomputes, stale bytes never resurface)\n\n", reloadParity)

	// Closed-loop capacity probe: one stream of unique (uncacheable)
	// queries for ~1s.
	probeDeadline := time.Now().Add(time.Second)
	probeStart, probed := time.Now(), 0
	for seed := 100; time.Now().Before(probeDeadline); seed++ {
		body, err := logprob(seed)
		if err != nil {
			return err
		}
		if status, _, blob, err := post(body); err != nil || status != http.StatusOK {
			return fmt.Errorf("capacity probe: status %d, err %v (%s)", status, err, blob)
		}
		probed++
	}
	capacity := float64(probed) / time.Since(probeStart).Seconds()
	ctx.Printf("capacity probe      %.0f qps single-stream closed-loop (%d queries)\n\n", capacity, probed)

	// Open-loop sweep at multiples of capacity. 25% of requests draw from a
	// small hot pool (cacheable after first compute), 75% are unique — so
	// compute demand crosses capacity between the 1x and 2x levels and the
	// admission path has to engage.
	hotPool := make([][]byte, 8)
	for i := range hotPool {
		if hotPool[i], err = logprob(2000 + i); err != nil {
			return err
		}
	}
	var rows []loadRow
	ctx.Printf("open-loop sweep (%v per level, 25%% hot / 75%% unique logprob queries):\n", duration)
	ctx.Printf("  %-11s %11s %9s %7s %10s %10s %9s %9s\n",
		"offered", "achieved", "requests", "ok", "shed rate", "hit rate", "p50", "p99")
	uniqueSeed := 10000
	for _, mult := range []float64{0.5, 1, 2} {
		offered := capacity * mult
		interval := time.Duration(float64(time.Second) / offered)
		o := obs.NewRegistry()
		lat := o.Histogram("bench_load_seconds", "Per-request latency at this offered level.", obs.LatencyBuckets)
		var ok, shed, hits, other atomic.Int64
		var wg sync.WaitGroup

		n := 0
		start := time.Now()
		next := start
		deadline := start.Add(duration)
		for time.Now().Before(deadline) && n < maxPerLevel {
			if now := time.Now(); now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(interval)
			var body []byte
			if n%4 == 0 {
				body = hotPool[(n/4)%len(hotPool)]
			} else {
				uniqueSeed++
				if body, err = logprob(uniqueSeed); err != nil {
					return err
				}
			}
			n++
			wg.Add(1)
			go func(body []byte) {
				defer wg.Done()
				t0 := time.Now()
				status, xc, _, err := post(body)
				lat.Observe(time.Since(t0).Seconds())
				switch {
				case err == nil && status == http.StatusOK:
					ok.Add(1)
					if xc == "hit" {
						hits.Add(1)
					}
				case err == nil && status == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}(body)
		}
		dispatched := time.Since(start).Seconds()
		wg.Wait()
		if v := other.Load(); v > 0 {
			return fmt.Errorf("offered %.0f qps: %d requests failed with neither 200 nor 429", offered, v)
		}
		row := loadRow{
			OfferedQPS:   offered,
			AchievedQPS:  float64(n) / dispatched,
			Requests:     n,
			OK:           int(ok.Load()),
			Shed:         int(shed.Load()),
			ShedRate:     float64(shed.Load()) / float64(n),
			CacheHitRate: float64(hits.Load()) / float64(n),
			P50LatencyMS: lat.Quantile(0.50) * 1e3,
			P99LatencyMS: lat.Quantile(0.99) * 1e3,
		}
		rows = append(rows, row)
		ctx.Printf("  %8.0fqps %8.0fqps %9d %7d %9.1f%% %9.1f%% %7.1fms %7.1fms\n",
			row.OfferedQPS, row.AchievedQPS, row.Requests, row.OK,
			row.ShedRate*100, row.CacheHitRate*100, row.P50LatencyMS, row.P99LatencyMS)
	}

	section := &loadBenchSection{
		Description: "Open-loop load sweep against a live apollo-serve instance on this host. Regenerate with: " +
			"apollo-bench -run load. Requests fire on a fixed clock at multiples of the probed capacity; " +
			"under saturation the bounded queue and the queue-wait-p95 shed threshold convert overload into " +
			"429s (shed_rate) while cache hits keep serving. Latency quantiles carry obs histogram bucket " +
			"resolution. Parity fields are host-independent contracts.",
		CapacityQPS:     capacity,
		MaxQueue:        256,
		ShedThresholdMS: 25,
		CacheParity:     cacheParity,
		HotReloadParity: reloadParity,
		Rows:            rows,
	}
	if err := mergeLoadSection(section); err != nil {
		return err
	}
	ctx.Printf("\nmerged load section into BENCH_serve.json\n")
	if cacheParity != "exact" || reloadParity != "exact" {
		return fmt.Errorf("bench load: parity violated (cache %s, hot reload %s)", cacheParity, reloadParity)
	}
	return nil
}

// mergeLoadSection read-modify-writes BENCH_serve.json so `-run load` and
// `-run serve` each own their section without clobbering the other's.
func mergeLoadSection(section *loadBenchSection) error {
	report := serveBenchReport{}
	if blob, err := os.ReadFile("BENCH_serve.json"); err == nil {
		if err := json.Unmarshal(blob, &report); err != nil {
			return fmt.Errorf("bench load: existing BENCH_serve.json unreadable: %w", err)
		}
	}
	report.Load = section
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_serve.json", append(blob, '\n'), 0o644)
}
