package bench

import (
	"apollo/internal/memmodel"
	"apollo/internal/nn"
)

// ShapesOf converts a live model's parameter list into memmodel shapes so
// the analytic state formulas can be evaluated on proxy models and
// cross-checked against measured Optimizer.StateBytes. Only genuine 2-D
// weight matrices are projection-eligible — embeddings and vectors take the
// dense fallback, exactly the policy every optimizer in the zoo applies.
func ShapesOf(params []*nn.Param) []memmodel.Shape {
	out := make([]memmodel.Shape, len(params))
	for i, p := range params {
		out[i] = memmodel.Shape{
			Name: p.Name, Rows: p.W.Rows, Cols: p.W.Cols,
			Projectable: p.Kind == nn.KindMatrix,
		}
	}
	return out
}
