package bench

import (
	"math"

	"apollo/internal/cluster"
	"apollo/internal/core"
	"apollo/internal/linalg"
	"apollo/internal/memmodel"
	"apollo/internal/obs"
	"apollo/internal/obs/runlog"
	"apollo/internal/optim"
	"apollo/internal/train"
)

func init() {
	register(Experiment{
		ID:       "table2",
		Title:    "Pre-training perplexity across methods and model sizes",
		PaperRef: "Table 2",
		Run:      runTable2,
	})
	register(Experiment{
		ID:       "table3",
		Title:    "7B-scale pre-training checkpoints vs 8-bit baselines",
		PaperRef: "Table 3",
		Run:      runTable3,
	})
	register(Experiment{
		ID:       "fig2",
		Title:    "7B validation perplexity vs wall-clock under a time budget",
		PaperRef: "Fig. 2",
		Run:      runFig2,
	})
	register(Experiment{
		ID:       "fig5",
		Title:    "SVD vs random projection; rank sweep",
		PaperRef: "Fig. 5 (a-d)",
		Run:      runFig5,
	})
	register(Experiment{
		ID:       "fig6",
		Title:    "350M training curve: early/middle/late dynamics",
		PaperRef: "Fig. 6",
		Run:      runFig6,
	})
	register(Experiment{
		ID:       "fig7",
		Title:    "Long-context pre-training",
		PaperRef: "Fig. 7",
		Run:      runFig7,
	})
	register(Experiment{
		ID:       "table8",
		Title:    "INT8 weight quantization (Q- variants)",
		PaperRef: "Table 8",
		Run:      runTable8,
	})
	register(Experiment{
		ID:       "table9",
		Title:    "Scaling-factor granularity ablation (channel vs tensor)",
		PaperRef: "Table 9",
		Run:      runTable9,
	})
}

// methodLRScale mirrors the paper's learning-rate recipe: the low-rank
// family inherits GaLore's higher LR (0.01 vs the ~1e-3 tuned AdamW
// baseline, Appendix A.4), which the shared proxy.LR does not reflect. The
// 4× multiplier was validated by a sweep at proxy scale (EXPERIMENTS.md).
func methodLRScale(method string) float64 {
	switch method {
	case "GaLore", "GaLore-RP", "Fira", "Flora", "8-bit GaLore",
		"APOLLO", "APOLLO w. SVD", "APOLLO-Tensor", "APOLLO-Mini",
		"Q-APOLLO", "Q-APOLLO-Mini", "Q-GaLore":
		return 4
	default:
		return 1
	}
}

// pretrainOne trains a fresh proxy model with the named optimizer and
// returns the result. rank ≤ 0 resolves to dim/4. lrScale multiplies the
// method's recipe LR (the Mini‡ row uses 2×).
func pretrainOne(ctx *RunContext, proxy Proxy, method string, rank int, steps int, seq int, lrScale float64) (train.Result, error) {
	if rank <= 0 {
		rank = proxy.DefaultRank()
	}
	if seq <= 0 {
		seq = proxy.Seq
	}
	if lrScale == 0 { //apollo:exactfloat zero is the unset-flag sentinel; default fills only untouched fields
		lrScale = 1
	}
	lr := proxy.LR * lrScale * methodLRScale(method)
	opt, err := BuildOptimizer(method, lr, rank, ctx.Seed)
	if err != nil {
		return train.Result{}, err
	}
	corpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return train.Result{}, err
	}
	model := proxy.NewProxyModel(ctx.Seed + 33)
	clip := 1.0
	switch method {
	case "APOLLO", "APOLLO w. SVD", "APOLLO-Mini", "APOLLO-Tensor", "Q-APOLLO", "Q-APOLLO-Mini":
		clip = 0 // APOLLO relies on the norm-growth limiter
	}
	evalEvery := steps / 10
	if evalEvery < 1 {
		evalEvery = 1
	}
	pcfg := train.PretrainConfig{
		Batch: proxy.Batch, Seq: seq, Steps: steps,
		EvalEvery: evalEvery, EvalBatches: 4,
		Schedule: optim.NewWarmupCosine(lr, steps), ClipNorm: clip,
	}
	// With a run root configured, every experiment training run leaves a
	// ledger entry: step series for apollo-runs diff, watchdog alerts for
	// post-hoc triage. Observation only — results are bit-identical either
	// way.
	var ledger *runlog.Run
	if ctx.RunRoot != "" {
		ledger, err = runlog.Create(ctx.RunRoot, runlog.Manifest{
			ID:      runlog.NewID(proxy.Name, method),
			Command: "apollo-bench",
			Config: map[string]any{
				"size": proxy.Name, "method": method, "rank": rank,
				"steps": steps, "seq": seq, "lr": lr,
			},
			Optimizer: method,
			Seed:      ctx.Seed,
		})
		if err != nil {
			return train.Result{}, err
		}
		pcfg.Telemetry = obs.NewTrainRecorder(ledger.StepsWriter())
		pcfg.Watchdog = runlog.NewWatchdog(runlog.WatchdogConfig{Emit: ledger.Alert})
	}
	res := train.Pretrain(model, opt, corpus, pcfg)
	if ledger != nil {
		fin := runlog.Final{
			Steps: res.Steps, FinalPPL: res.FinalValPPL,
			StepWallSeconds: res.StepWallSeconds, PhaseSeconds: res.PhaseSeconds,
		}
		if n := len(res.Series); n > 0 {
			fin.FinalLoss = res.Series[n-1].ValLoss
		}
		status := runlog.StatusOK
		if res.Halted {
			status = runlog.StatusHalted
		}
		obs.CountWriteError(ledger.Finalize(status, fin))
	}
	return res, nil
}

func runTable2(ctx *RunContext) error {
	methods := []struct {
		name    string
		rank    func(p Proxy) int
		lrScale float64
		label   string
	}{
		{"AdamW", func(p Proxy) int { return 0 }, 1, "AdamW"},
		{"Low-Rank", func(p Proxy) int { return 0 }, 1, "Low-Rank"},
		{"LoRA", func(p Proxy) int { return 0 }, 1, "LoRA"},
		{"ReLoRA", func(p Proxy) int { return 0 }, 1, "ReLoRA"},
		{"GaLore", func(p Proxy) int { return 0 }, 1, "GaLore"},
		{"Fira", func(p Proxy) int { return 0 }, 1, "Fira"},
		{"APOLLO w. SVD", func(p Proxy) int { return 0 }, 1, "APOLLO w. SVD"},
		{"APOLLO", func(p Proxy) int { return 0 }, 1, "APOLLO"},
		{"APOLLO", func(p Proxy) int { return max(1, p.DefaultRank()/2) }, 1, "APOLLO (r/2)"},
		{"APOLLO-Mini", func(p Proxy) int { return 1 }, 1, "APOLLO-Mini"},
		{"APOLLO-Mini", func(p Proxy) int { return 1 }, 1.5, "APOLLO-Mini 2xLR"},
	}
	paper := map[string]map[string]float64{
		"AdamW":            {"60M": 34.06, "130M": 25.08, "350M": 18.80, "1B": 15.56},
		"Low-Rank":         {"60M": 78.18, "130M": 45.51, "350M": 37.41, "1B": 142.53},
		"LoRA":             {"60M": 34.99, "130M": 33.92, "350M": 25.58, "1B": 19.21},
		"ReLoRA":           {"60M": 37.04, "130M": 29.37, "350M": 29.08, "1B": 18.33},
		"GaLore":           {"60M": 34.88, "130M": 25.36, "350M": 18.95, "1B": 15.64},
		"Fira":             {"60M": 31.06, "130M": 22.73, "350M": 17.03, "1B": 14.31},
		"APOLLO w. SVD":    {"60M": 31.26, "130M": 22.84, "350M": 16.67, "1B": 14.10},
		"APOLLO":           {"60M": 31.55, "130M": 22.94, "350M": 16.85, "1B": 14.20},
		"APOLLO (r/2)":     {"60M": 31.26, "130M": 23.18, "350M": 16.98, "1B": 14.25},
		"APOLLO-Mini":      {"60M": 31.93, "130M": 23.53, "350M": 17.18, "1B": 14.17},
		"APOLLO-Mini 2xLR": {"60M": 30.95, "130M": 22.85, "350M": 16.63, "1B": 13.95},
	}
	sizes := []string{"60M", "130M", "350M", "1B"}
	ctx.Printf("Table 2 — proxy pre-training validation perplexity (paper values in parens)\n")
	ctx.Printf("%-18s", "Method")
	for _, s := range sizes {
		ctx.Printf(" %18s", s)
	}
	ctx.Printf("   states(7B-scale)\n")
	for _, m := range methods {
		ctx.Printf("%-18s", m.label)
		for _, size := range sizes {
			proxy, err := ProxyByName(size)
			if err != nil {
				return err
			}
			res, err := pretrainOne(ctx, proxy, m.name, m.rank(proxy), ctx.steps(proxy.Steps), 0, m.lrScale)
			if err != nil {
				return err
			}
			ctx.Printf(" %8.2f (%7.2f)", res.FinalValPPL, paper[m.label][size])
		}
		// Memory column at paper scale from the analytic model.
		cfg, _ := memmodel.ConfigByName("1B")
		var mm memmodel.Method
		switch m.label {
		case "AdamW", "Low-Rank", "LoRA", "ReLoRA":
			mm = memmodel.MethodAdamW
		case "GaLore":
			mm = memmodel.MethodGaLore
		case "Fira":
			mm = memmodel.MethodFira
		case "APOLLO-Mini", "APOLLO-Mini 2xLR":
			mm = memmodel.MethodAPOLLOMini
		default:
			mm = memmodel.MethodAPOLLO
		}
		rank := cfg.DefaultRank()
		if m.label == "APOLLO (r/2)" {
			rank /= 2
		}
		ctx.Printf("   %.2fG\n", memmodel.GiB(memmodel.OptimizerStateBytes(cfg, mm, rank)+float64(cfg.NumParams())*memmodel.BytesBF16))
	}
	ctx.Printf("\nshape to verify: APOLLO family ≤ AdamW; GaLore ≈ AdamW; Low-Rank/LoRA/ReLoRA worse;\nAPOLLO robust to rank halving; Mini competitive at rank 1.\n")
	return nil
}

func runTable3(ctx *RunContext) error {
	proxy, err := ProxyByName("7B")
	if err != nil {
		return err
	}
	steps := ctx.steps(proxy.Steps * 2)
	methods := []string{"8-bit Adam", "8-bit GaLore", "APOLLO", "APOLLO-Mini"}
	paper := map[string][4]float64{
		"8-bit Adam":   {18.09, 15.47, 14.83, 14.61},
		"8-bit GaLore": {17.94, 15.39, 14.95, 14.65},
		"APOLLO":       {17.55, 14.39, 13.23, 13.02},
		"APOLLO-Mini":  {18.03, 14.60, 13.32, 13.09},
	}
	ctx.Printf("Table 3 — proxy-7B pre-training, ppl at 25/50/75/100%% of %d steps\n", steps)
	ctx.Printf("(paper columns: 40K/80K/120K/150K steps)\n\n")
	ctx.Printf("%-14s %10s %10s %10s %10s   paper@150K\n", "Optimizer", "25%", "50%", "75%", "100%")
	for _, m := range methods {
		rank := proxy.DefaultRank()
		if m == "APOLLO" {
			rank = proxy.Model.Dim / 2 // paper uses a larger rank (256 vs 1024 default) at 7B
		}
		res, err := pretrainOne(ctx, proxy, m, rank, steps, 0, 1)
		if err != nil {
			return err
		}
		at := func(frac float64) float64 {
			target := int(frac * float64(steps))
			bestPPL := math.Inf(1)
			bestDist := math.MaxInt64
			for _, pt := range res.Series {
				d := abs(pt.Step - target)
				if d < bestDist {
					bestDist = d
					bestPPL = pt.ValPPL
				}
			}
			return bestPPL
		}
		pv := paper[m]
		ctx.Printf("%-14s %10.2f %10.2f %10.2f %10.2f   %.2f\n", m, at(0.25), at(0.5), at(0.75), at(1.0), pv[3])
	}
	ctx.Printf("\nshape to verify: APOLLO(-Mini) below both 8-bit baselines by the end.\n")
	return nil
}

func runFig2(ctx *RunContext) error {
	// Wall-clock axis from the cluster simulator at true 7B scale; quality
	// axis from proxy-7B training. Each method advances at its own
	// steps/second, so slower methods see fewer steps in the same budget —
	// exactly the paper's half-month experiment.
	cfg7, err := memmodel.ConfigByName("7B")
	if err != nil {
		return err
	}
	w := cluster.Workload{Config: cfg7, Dev: cluster.A100_80G(), World: 8, SeqLen: 1024, GlobalBatch: 512}
	wLW := w
	wLW.LayerWise = true
	profiles := []struct {
		method string
		prof   cluster.OptimizerProfile
		work   cluster.Workload
	}{
		{"AdamW", cluster.ProfileAdamW(), w},
		{"GaLore", cluster.ProfileGaLore(1024, 200), wLW},
		{"APOLLO", cluster.ProfileAPOLLO(256), wLW},
		{"APOLLO-Mini", cluster.ProfileAPOLLOMini(), wLW},
	}
	proxy, err := ProxyByName("7B")
	if err != nil {
		return err
	}
	budgetSteps := ctx.steps(proxy.Steps * 2) // APOLLO's step count within budget
	apolloStep := cluster.StepTime(wLW, cluster.ProfileAPOLLO(256), cluster.MaxMicroBatch(wLW, cluster.ProfileAPOLLO(256))).Total()
	budgetSeconds := float64(budgetSteps) * apolloStep

	ctx.Printf("Fig. 2 — proxy-7B quality vs simulated wall-clock (budget = %.1f sim-days)\n\n", budgetSeconds/86400*100) // scaled
	ctx.Printf("%-12s %12s %12s %12s\n", "Method", "steps-run", "final-ppl", "sim-days")
	for _, p := range profiles {
		micro := cluster.MaxMicroBatch(p.work, p.prof)
		if micro == 0 {
			ctx.Printf("%-12s %12s\n", p.method, "OOM")
			continue
		}
		stepSec := cluster.StepTime(p.work, p.prof, micro).Total()
		steps := int(budgetSeconds / stepSec)
		if steps > budgetSteps {
			steps = budgetSteps
		}
		if steps < 10 {
			steps = 10
		}
		res, err := pretrainOne(ctx, proxy, p.method, 0, steps, 0, 1)
		if err != nil {
			return err
		}
		ctx.Printf("%-12s %12d %12.2f %12.1f\n", p.method, steps, res.FinalValPPL, float64(steps)*stepSec/86400*100)
	}
	ctx.Printf("\nshape to verify: APOLLO-family completes ≈3x more steps than AdamW in the\nsame budget and ends at the lowest perplexity (paper: only APOLLO finishes).\n")
	return nil
}

func runFig5(ctx *RunContext) error {
	ctx.Printf("Fig. 5 (a-c) — SVD vs random projection, final val perplexity\n\n")
	ctx.Printf("%-6s %14s %14s %14s %14s %12s %12s %10s\n",
		"size", "GaLore(SVD)", "GaLore(RP)", "APOLLO(SVD)", "APOLLO(RP)", "Mini(SVD)", "Mini(RP)", "AdamW")
	for _, size := range []string{"60M", "130M", "350M"} {
		proxy, err := ProxyByName(size)
		if err != nil {
			return err
		}
		steps := ctx.steps(proxy.Steps)
		run := func(method string, rank int) (float64, error) {
			res, err := pretrainOne(ctx, proxy, method, rank, steps, 0, 1)
			return res.FinalValPPL, err
		}
		gs, err := run("GaLore", 0)
		if err != nil {
			return err
		}
		gr, err := run("GaLore-RP", 0)
		if err != nil {
			return err
		}
		as, err := run("APOLLO w. SVD", 0)
		if err != nil {
			return err
		}
		ar, err := run("APOLLO", 0)
		if err != nil {
			return err
		}
		msv, err := miniSVD(ctx, proxy, steps)
		if err != nil {
			return err
		}
		mr, err := run("APOLLO-Mini", 1)
		if err != nil {
			return err
		}
		aw, err := run("AdamW", 0)
		if err != nil {
			return err
		}
		ctx.Printf("%-6s %14.2f %14.2f %14.2f %14.2f %12.2f %12.2f %10.2f\n", size, gs, gr, as, ar, msv, mr, aw)
	}
	ctx.Printf("\nshape to verify: GaLore degrades badly under RP; APOLLO(-Mini) barely changes.\n\n")

	// Fig. 5d: rank sweep on the 60M proxy.
	proxy, err := ProxyByName("60M")
	if err != nil {
		return err
	}
	steps := ctx.steps(proxy.Steps)
	ranks := []int{1, 2, 4, 8}
	ctx.Printf("Fig. 5 (d) — rank sweep, 60M proxy (dim %d; dim/4 = %d)\n\n", proxy.Model.Dim, proxy.DefaultRank())
	ctx.Printf("%-6s %10s %10s %10s %12s\n", "rank", "GaLore", "Fira", "APOLLO", "APOLLO-Mini")
	awRes, err := pretrainOne(ctx, proxy, "AdamW", 0, steps, 0, 1)
	if err != nil {
		return err
	}
	for _, r := range ranks {
		row := make([]float64, 0, 4)
		for _, m := range []string{"GaLore", "Fira", "APOLLO"} {
			res, err := pretrainOne(ctx, proxy, m, r, steps, 0, 1)
			if err != nil {
				return err
			}
			row = append(row, res.FinalValPPL)
		}
		mini, err := miniAtRank(ctx, proxy, r, steps)
		if err != nil {
			return err
		}
		ctx.Printf("%-6d %10.2f %10.2f %10.2f %12.2f\n", r, row[0], row[1], row[2], mini)
	}
	ctx.Printf("full-rank AdamW reference: %.2f\n", awRes.FinalValPPL)
	ctx.Printf("\nshape to verify: GaLore collapses at low rank; APOLLO degrades gently;\nAPOLLO-Mini holds even at rank 1.\n")
	return nil
}

// miniSVD runs APOLLO-Mini with an SVD projection (Fig. 5's Mini-SVD bar).
// The α=√128 default compensates the √n norm deficit of a *random* rank-1
// projection (Theorem A.4); an SVD rank-1 projection captures the dominant
// gradient energy with no such deficit, so the SVD variant runs at α=1 —
// leaving √128 in place over-scales the update by ~√n and diverges.
func miniSVD(ctx *RunContext, proxy Proxy, steps int) (float64, error) {
	corpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return 0, err
	}
	model := proxy.NewProxyModel(ctx.Seed + 33)
	lr := proxy.LR * methodLRScale("APOLLO-Mini")
	opt := core.New(optim.Hyper{LR: lr}, core.Config{
		Rank: 1, Granularity: core.Tensor, Scale: 1, Projection: linalg.SVDProjection, Seed: ctx.Seed, UpdateGap: 50,
	})
	res := train.Pretrain(model, opt, corpus, train.PretrainConfig{
		Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps,
		Schedule: optim.NewWarmupCosine(lr, steps),
	})
	return res.FinalValPPL, nil
}

// miniAtRank runs the tensor-granularity variant at an arbitrary rank
// (Fig. 5d's APOLLO-Mini line).
func miniAtRank(ctx *RunContext, proxy Proxy, rank, steps int) (float64, error) {
	corpus, err := NewCorpus(ctx.Seed + 17)
	if err != nil {
		return 0, err
	}
	model := proxy.NewProxyModel(ctx.Seed + 33)
	lr := proxy.LR * methodLRScale("APOLLO-Mini")
	opt := core.New(optim.Hyper{LR: lr}, core.Config{
		Rank: rank, Granularity: core.Tensor, Scale: math.Sqrt(128 / float64(rank)), Seed: ctx.Seed, UpdateGap: 50,
	})
	res := train.Pretrain(model, opt, corpus, train.PretrainConfig{
		Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps,
		Schedule: optim.NewWarmupCosine(lr, steps),
	})
	return res.FinalValPPL, nil
}

func runFig6(ctx *RunContext) error {
	proxy, err := ProxyByName("350M")
	if err != nil {
		return err
	}
	steps := ctx.steps(proxy.Steps)
	methods := []string{"AdamW", "GaLore", "Fira", "APOLLO"}
	series := map[string][]train.Metric{}
	for _, m := range methods {
		res, err := pretrainOne(ctx, proxy, m, 0, steps, 0, 1)
		if err != nil {
			return err
		}
		series[m] = res.Series
	}
	ctx.Printf("Fig. 6 — proxy-350M validation perplexity across training\n\n")
	ctx.Printf("%8s", "step")
	for _, m := range methods {
		ctx.Printf(" %10s", m)
	}
	ctx.Printf("\n")
	n := len(series[methods[0]])
	for i := 0; i < n; i++ {
		ctx.Printf("%8d", series[methods[0]][i].Step)
		for _, m := range methods {
			if i < len(series[m]) {
				ctx.Printf(" %10.2f", series[m][i].ValPPL)
			}
		}
		ctx.Printf("\n")
	}
	ctx.Printf("\nshape to verify: Fira leads early; APOLLO catches up and matches or\novertakes late (paper: crossover in the late stage).\n")
	return nil
}

func runFig7(ctx *RunContext) error {
	proxy, err := ProxyByName("350M")
	if err != nil {
		return err
	}
	longSeq := proxy.Seq * 4 // the paper's 4× context extension
	steps := ctx.steps(proxy.Steps)
	ctx.Printf("Fig. 7 — long-context pre-training (seq %d = 4x default)\n\n", longSeq)
	ctx.Printf("%-22s %12s\n", "Method", "final ppl")
	best := map[string]float64{}
	for _, lr := range []float64{1, 2} { // AdamW LR sweep (paper sweeps 5 values)
		res, err := pretrainOne(ctx, proxy, "AdamW", 0, steps, longSeq, lr)
		if err != nil {
			return err
		}
		key := "AdamW (LR sweep)"
		if cur, ok := best[key]; !ok || res.FinalValPPL < cur {
			best[key] = res.FinalValPPL
		}
	}
	ctx.Printf("%-22s %12.2f\n", "AdamW (LR sweep)", best["AdamW (LR sweep)"])
	res, err := pretrainOne(ctx, proxy, "APOLLO", 0, steps, longSeq, 1)
	if err != nil {
		return err
	}
	ctx.Printf("%-22s %12.2f\n", "APOLLO", res.FinalValPPL)
	res, err = pretrainOne(ctx, proxy, "APOLLO-Mini", 1, steps, longSeq, 1)
	if err != nil {
		return err
	}
	ctx.Printf("%-22s %12.2f\n", "APOLLO-Mini", res.FinalValPPL)
	ctx.Printf("\nshape to verify: APOLLO(-Mini) match or beat the swept AdamW with 1/8 to\n1/1024 of its optimizer memory (paper: they win late in training).\n")
	return nil
}

func runTable8(ctx *RunContext) error {
	paper := map[string]map[string]float64{
		"AdamW":         {"60M": 34.06, "130M": 25.08, "350M": 18.80},
		"GaLore":        {"60M": 34.88, "130M": 25.36, "350M": 18.95},
		"Q-GaLore":      {"60M": 34.88, "130M": 25.53, "350M": 19.79},
		"APOLLO":        {"60M": 31.55, "130M": 22.94, "350M": 16.85},
		"Q-APOLLO":      {"60M": 31.97, "130M": 24.16, "350M": 18.79},
		"APOLLO-Mini":   {"60M": 31.93, "130M": 23.84, "350M": 17.18},
		"Q-APOLLO-Mini": {"60M": 33.05, "130M": 24.70, "350M": 18.90},
	}
	methods := []string{"AdamW", "GaLore", "Q-GaLore", "APOLLO", "Q-APOLLO", "APOLLO-Mini", "Q-APOLLO-Mini"}
	sizes := []string{"60M", "130M", "350M"}
	ctx.Printf("Table 8 — INT8 weight quantization (group size 128), val perplexity\n\n")
	ctx.Printf("%-16s", "Method")
	for _, s := range sizes {
		ctx.Printf(" %18s", s)
	}
	ctx.Printf("\n")
	for _, m := range methods {
		ctx.Printf("%-16s", m)
		for _, size := range sizes {
			proxy, err := ProxyByName(size)
			if err != nil {
				return err
			}
			rank := 0
			if m == "APOLLO-Mini" || m == "Q-APOLLO-Mini" {
				rank = 1
			}
			res, err := pretrainOne(ctx, proxy, m, rank, ctx.steps(proxy.Steps), 0, 1)
			if err != nil {
				return err
			}
			ctx.Printf(" %8.2f (%7.2f)", res.FinalValPPL, paper[m][size])
		}
		ctx.Printf("\n")
	}
	ctx.Printf("\nshape to verify: Q- variants lose a little vs their fp parents but\nQ-APOLLO stays below GaLore and near/below AdamW.\n")
	return nil
}

func runTable9(ctx *RunContext) error {
	paper := map[string]map[string]float64{
		"APOLLO w. SVD / channel": {"60M": 31.26, "130M": 22.84, "350M": 16.67},
		"APOLLO w. SVD / tensor":  {"60M": 31.77, "130M": 23.86, "350M": 16.90},
		"APOLLO / channel":        {"60M": 31.55, "130M": 22.94, "350M": 16.85},
		"APOLLO / tensor":         {"60M": 32.10, "130M": 23.82, "350M": 17.00},
	}
	rows := []struct {
		label  string
		method string
	}{
		{"APOLLO w. SVD / channel", "APOLLO w. SVD"},
		{"APOLLO w. SVD / tensor", "svd-tensor"},
		{"APOLLO / channel", "APOLLO"},
		{"APOLLO / tensor", "APOLLO-Tensor"},
	}
	sizes := []string{"60M", "130M", "350M"}
	ctx.Printf("Table 9 — scaling-factor granularity at rank dim/4, val perplexity\n\n")
	ctx.Printf("%-26s", "Variant")
	for _, s := range sizes {
		ctx.Printf(" %18s", s)
	}
	ctx.Printf("\n")
	for _, row := range rows {
		ctx.Printf("%-26s", row.label)
		for _, size := range sizes {
			proxy, err := ProxyByName(size)
			if err != nil {
				return err
			}
			var ppl float64
			if row.method == "svd-tensor" {
				corpus, err := NewCorpus(ctx.Seed + 17)
				if err != nil {
					return err
				}
				model := proxy.NewProxyModel(ctx.Seed + 33)
				lr := proxy.LR * methodLRScale("APOLLO-Tensor")
				opt := core.New(optim.Hyper{LR: lr}, core.Config{
					Rank: proxy.DefaultRank(), Granularity: core.Tensor, Scale: 1,
					Projection: linalg.SVDProjection, Seed: ctx.Seed, UpdateGap: 50,
				})
				res := train.Pretrain(model, opt, corpus, train.PretrainConfig{
					Batch: proxy.Batch, Seq: proxy.Seq, Steps: ctx.steps(proxy.Steps),
					Schedule: optim.NewWarmupCosine(lr, ctx.steps(proxy.Steps)),
				})
				ppl = res.FinalValPPL
			} else {
				res, err := pretrainOne(ctx, proxy, row.method, 0, ctx.steps(proxy.Steps), 0, 1)
				if err != nil {
					return err
				}
				ppl = res.FinalValPPL
			}
			ctx.Printf(" %8.2f (%7.2f)", ppl, paper[row.label][size])
		}
		ctx.Printf("\n")
	}
	ctx.Printf("\nshape to verify: channel ≈ tensor at moderate rank (both beat GaLore),\nvalidating tensor-wise scaling as sufficient at rank dim/4.\n")
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
