// Package bench is the experiment harness: a registry with one runner per
// table and figure in the paper's evaluation section. Each runner rebuilds
// the experiment at proxy scale (CPU-trainable models with the same
// architecture family), prints the same rows/series the paper reports, and
// cites the published value alongside the measured one. DESIGN.md carries
// the experiment → module → runner index; EXPERIMENTS.md records outcomes.
package bench

import (
	"fmt"

	"apollo/internal/core"
	"apollo/internal/data"
	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
)

// Proxy is a scaled-down stand-in for one of the paper's LLaMA sizes. The
// family preserves the paper's relative proportions (width, depth and
// SwiGLU ratio grow together) so cross-size trends survive the rescale.
type Proxy struct {
	Name  string // paper-scale name this proxies ("60M", …)
	Model nn.Config
	Steps int // quick-scale training steps
	Batch int
	Seq   int
	LR    float64 // baseline peak LR (shared across methods, as in Table 2)
}

// Vocab shared by all proxies; 256 tokens keeps the softmax cheap while the
// synthetic source still has non-trivial structure.
const proxyVocab = 256

// Proxies returns the proxy family mirroring Table 11.
func Proxies() []Proxy {
	return []Proxy{
		{Name: "60M", Model: nn.Config{Vocab: proxyVocab, Dim: 32, Hidden: 88, Heads: 4, Layers: 2, MaxSeq: 128}, Steps: 400, Batch: 8, Seq: 32, LR: 3e-3},
		{Name: "130M", Model: nn.Config{Vocab: proxyVocab, Dim: 48, Hidden: 128, Heads: 4, Layers: 3, MaxSeq: 128}, Steps: 400, Batch: 8, Seq: 32, LR: 3e-3},
		{Name: "350M", Model: nn.Config{Vocab: proxyVocab, Dim: 64, Hidden: 176, Heads: 4, Layers: 4, MaxSeq: 128}, Steps: 300, Batch: 8, Seq: 32, LR: 2e-3},
		{Name: "1B", Model: nn.Config{Vocab: proxyVocab, Dim: 96, Hidden: 256, Heads: 6, Layers: 5, MaxSeq: 128}, Steps: 300, Batch: 8, Seq: 32, LR: 2e-3},
		{Name: "7B", Model: nn.Config{Vocab: proxyVocab, Dim: 128, Hidden: 344, Heads: 8, Layers: 6, MaxSeq: 128}, Steps: 300, Batch: 8, Seq: 32, LR: 1.5e-3},
	}
}

// ProxyByName looks up a proxy.
func ProxyByName(name string) (Proxy, error) {
	for _, p := range Proxies() {
		if p.Name == name {
			return p, nil
		}
	}
	return Proxy{}, fmt.Errorf("bench: unknown proxy %q", name)
}

// DefaultRank mirrors the paper's "one-quarter of the original dimension".
func (p Proxy) DefaultRank() int { return p.Model.Dim / 4 }

// NewCorpus builds the shared synthetic corpus for a proxy run.
func NewCorpus(seed uint64) (*data.Corpus, error) {
	cfg := data.DefaultSourceConfig()
	cfg.Vocab = proxyVocab
	src, err := data.NewSource(cfg)
	if err != nil {
		return nil, err
	}
	return data.NewCorpus(src, seed, seed+0x5EED), nil
}

// BuildOptimizer constructs any method in the zoo by table name. rank ≤ 0
// resolves to the proxy default (dim/4).
func BuildOptimizer(name string, lr float64, rank int, seed uint64) (optim.Optimizer, error) {
	h := optim.Hyper{LR: lr, WeightDecay: 0}
	lrCfg := func(proj linalg.ProjectionKind) optim.LowRankConfig {
		return optim.LowRankConfig{Rank: rank, Projection: proj, Seed: seed, Scale: 0.25, UpdateGap: 50}
	}
	switch name {
	case "AdamW":
		return optim.NewAdamW(h), nil
	case "SGD":
		return optim.NewSGD(h, 0), nil
	case "SGD-M":
		return optim.NewSGD(h, 0.9), nil
	case "Adam-mini":
		return optim.NewAdamMini(h), nil
	case "8-bit Adam":
		return optim.NewAdam8bit(h, seed), nil
	case "8-bit GaLore":
		return optim.NewGaLore8bit(h, lrCfg(linalg.SVDProjection)), nil
	case "Low-Rank":
		return optim.NewFactorized(h, optim.FactorizedConfig{Mode: optim.ModeLowRank, Rank: rank, Seed: seed}), nil
	case "LoRA":
		return optim.NewFactorized(h, optim.FactorizedConfig{Mode: optim.ModeLoRA, Rank: rank, Seed: seed}), nil
	case "ReLoRA":
		return optim.NewFactorized(h, optim.FactorizedConfig{Mode: optim.ModeReLoRA, Rank: rank, MergeEvery: 50, Seed: seed}), nil
	case "DoRA":
		return optim.NewFactorized(h, optim.FactorizedConfig{Mode: optim.ModeDoRA, Rank: rank, Seed: seed}), nil
	case "GaLore":
		return optim.NewGaLore(h, lrCfg(linalg.SVDProjection)), nil
	case "GaLore-RP":
		return optim.NewGaLore(h, lrCfg(linalg.RandomProjection)), nil
	case "Fira":
		return optim.NewFira(h, lrCfg(linalg.SVDProjection)), nil
	case "Flora":
		return optim.NewFlora(h, lrCfg(linalg.RandomProjection)), nil
	case "APOLLO":
		return core.New(h, core.Config{Rank: rank, Granularity: core.Channel, Seed: seed, UpdateGap: 50}), nil
	case "APOLLO w. SVD":
		return core.New(h, core.Config{Rank: rank, Granularity: core.Channel, Projection: linalg.SVDProjection, Seed: seed, UpdateGap: 50}), nil
	case "APOLLO-Tensor":
		return core.New(h, core.Config{Rank: rank, Granularity: core.Tensor, Scale: 1, Seed: seed, UpdateGap: 50}), nil
	case "APOLLO-Mini":
		return core.NewMini(h), nil
	case "Q-APOLLO":
		inner := core.New(h, core.Config{Rank: rank, Granularity: core.Channel, Seed: seed, UpdateGap: 50})
		return optim.NewWeightQuantized(inner, seed+1), nil
	case "Q-APOLLO-Mini":
		return optim.NewWeightQuantized(core.NewMini(h), seed+1), nil
	case "Q-GaLore":
		return optim.NewWeightQuantized(optim.NewGaLore(h, lrCfg(linalg.SVDProjection)), seed+1), nil
	case "StructuredAdamW-channel":
		return core.NewStructuredAdamW(h, core.Channel), nil
	case "StructuredAdamW-tensor":
		return core.NewStructuredAdamW(h, core.Tensor), nil
	default:
		return nil, fmt.Errorf("bench: unknown optimizer %q", name)
	}
}

// NewProxyModel instantiates the proxy's model.
func (p Proxy) NewProxyModel(seed uint64) *nn.Model {
	return nn.NewModel(p.Model, tensor.NewRNG(seed))
}
