package obs

import (
	"io"
	"sync"
	"time"
)

// Phase indexes the wall-time breakdown of one training step. The fused
// loop uses Data/Forward/Backward/Step/Checkpoint/Eval; the data-parallel
// loop adds AllReduce and Broadcast, and under ZeRO the Step phase is the
// sharded optimizer step. Forward/Backward in the DP loop are summed across
// concurrently running replicas, so their totals can exceed the step's wall
// time — the fused loop's phases partition it exactly.
type Phase int

const (
	PhaseData Phase = iota
	PhaseForward
	PhaseBackward
	PhaseAllReduce
	PhaseStep
	PhaseBroadcast
	PhaseCheckpoint
	PhaseEval
	NumPhases
)

var phaseNames = [NumPhases]string{
	"data", "forward", "backward", "allreduce", "step", "broadcast", "checkpoint", "eval",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseNames lists every phase name in canonical (Phase index) order, for
// stable presentation of the maps Summary and train.Result hand out.
func PhaseNames() []string {
	names := make([]string, NumPhases)
	copy(names, phaseNames[:])
	return names
}

// StepEvent is the JSONL schema of one training step (`apollo-pretrain
// -telemetry out.jsonl`): the phases map holds seconds per Phase name.
type StepEvent struct {
	Step        int                `json:"step"`
	Loss        float64            `json:"loss"`
	GradNorm    float64            `json:"grad_norm"`
	LR          float64            `json:"lr"`
	WallSeconds float64            `json:"wall_seconds"`
	Phases      map[string]float64 `json:"phases"`
}

// TrainRecorder accumulates per-step phase timings and optionally streams
// one StepEvent per step as JSONL. Nil-safe: a nil recorder makes every
// call a single branch, which is how the loops run untelemetered.
type TrainRecorder struct {
	w *JSONLWriter

	mu     sync.Mutex
	steps  int
	wall   time.Duration
	totals [NumPhases]time.Duration
}

// NewTrainRecorder builds a recorder; w == nil keeps the summary (phase
// totals for train.Result) without streaming JSONL.
func NewTrainRecorder(w io.Writer) *TrainRecorder {
	return &TrainRecorder{w: NewJSONLWriter(w)}
}

// RecordStep folds one step's measurements into the totals and streams the
// JSONL event when a writer is configured.
func (r *TrainRecorder) RecordStep(step int, loss, gradNorm, lr float64, wall time.Duration, phases [NumPhases]time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.steps++
	r.wall += wall
	for i := range phases {
		r.totals[i] += phases[i]
	}
	r.mu.Unlock()
	if r.w == nil {
		return
	}
	ev := StepEvent{
		Step: step, Loss: loss, GradNorm: gradNorm, LR: lr,
		WallSeconds: wall.Seconds(),
		Phases:      map[string]float64{},
	}
	for i, d := range phases {
		if d > 0 {
			ev.Phases[Phase(i).String()] = d.Seconds()
		}
	}
	r.w.Emit(ev)
}

// Summary returns the recorded step count, total step wall seconds, and
// the phase totals keyed by phase name (phases never hit are omitted).
func (r *TrainRecorder) Summary() (steps int, wallSeconds float64, phases map[string]float64) {
	if r == nil {
		return 0, 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	phases = map[string]float64{}
	for i, d := range r.totals {
		if d > 0 {
			phases[Phase(i).String()] = d.Seconds()
		}
	}
	return r.steps, r.wall.Seconds(), phases
}
