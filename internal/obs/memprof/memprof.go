// Package memprof is the live memory-accounting layer: where internal/memmodel
// predicts footprints analytically, memprof measures them on the running
// process and keeps the two comparable at every moment of a run.
//
// Three surfaces, all fed by one Profiler:
//
//   - A component-level byte ledger (weights, grads, optimizer state — total
//     and per ZeRO shard —, projector scratch, serve snapshot cache, batcher
//     buffers) exposed as the apollo_mem_bytes{component=...} gauge family,
//     next to sampled runtime.MemStats and best-effort proc/cgroup RSS
//     (apollo_mem_runtime_bytes{kind=...}).
//
//   - A mem.jsonl timeline (one Sample per line, written into the run
//     directory alongside steps.jsonl) with high-water-mark tracking and the
//     live measured-vs-predicted delta per component, so a run records not
//     just what memory it used but how far it drifted from the analytic
//     model that claims to describe it.
//
//   - A heap flight recorder: a bounded in-memory ring of recent samples
//     plus automatic pprof heap-profile capture into the run directory when
//     a configurable high-water threshold is crossed or when a caller (the
//     training watchdog) asks for one on an alert.
//
// The PR 5 contracts carry over. Cost: a nil *Profiler is the disabled mode —
// every method is nil-receiver safe at one branch — and sampling happens off
// the hot path (the training loops sample after the step's wall time is
// already recorded, so telemetry timings never include the sampler).
// Determinism: the profiler only reads values the program computed anyway
// (byte counts, runtime counters); it feeds nothing back, so every bit-parity
// contract holds with memprof enabled (train's TestMemprofParity*).
package memprof

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"apollo/internal/obs"
)

// Canonical component names of the apollo_mem_bytes gauge family. Callers
// may track additional ad-hoc components; these are the ones the train and
// serve layers wire up.
const (
	CompWeights          = "weights"
	CompGrads            = "grads"
	CompOptimizerState   = "optimizer_state"
	CompProjectorScratch = "projector_scratch"
	CompServeSnapshots   = "serve_snapshots"
	CompBatcherBuffers   = "batcher_buffers"
	CompDPGradLeaves     = "dp_grad_leaves"
	CompDPReplicas       = "dp_replicas"
)

// ShardComponent names the per-shard optimizer-state component for one ZeRO
// shard ("optimizer_state_shard3").
func ShardComponent(shard int) string {
	return CompOptimizerState + "_shard" + strconv.Itoa(shard)
}

// Sample is one point of the memory timeline — the mem.jsonl line schema.
type Sample struct {
	UnixUS int64 `json:"unix_us"`
	// Step is the training step the sample was taken after (0 for samples
	// outside a step loop, e.g. the serve background sampler).
	Step int `json:"step,omitempty"`
	// Components is the byte ledger at sample time.
	Components map[string]int64 `json:"components"`
	// TotalBytes sums the ledger. Unlike heap/RSS it is derived purely from
	// tracked object sizes, so it is reproducible across hosts — the memory
	// regression gate (runlog.Diff) compares peak TotalBytes for that reason.
	TotalBytes int64 `json:"total_bytes"`
	// Predicted carries the analytic (memmodel) prediction per component,
	// for components a prediction was registered for.
	Predicted map[string]float64 `json:"predicted,omitempty"`
	// DeltaFrac is (measured − predicted) / predicted per predicted
	// component — the live measured-vs-memmodel drift.
	DeltaFrac map[string]float64 `json:"delta_frac,omitempty"`

	// runtime.MemStats extract.
	HeapInuse uint64 `json:"heap_inuse_bytes"`
	HeapAlloc uint64 `json:"heap_alloc_bytes"`
	HeapSys   uint64 `json:"heap_sys_bytes"`
	GCCycles  uint32 `json:"gc_cycles"`
	GCPauseNS uint64 `json:"gc_pause_total_ns"`

	// Best-effort process footprint: VmRSS from /proc/self/status and the
	// cgroup v2/v1 usage file. 0 when unavailable (non-Linux, masked proc).
	RSSBytes    int64 `json:"rss_bytes,omitempty"`
	CgroupBytes int64 `json:"cgroup_bytes,omitempty"`

	// HighWater marks samples that set a new TotalBytes maximum.
	HighWater bool `json:"high_water,omitempty"`
}

// Config parameterizes a Profiler. The zero value is usable: an unexported
// ledger with no gauges, no timeline and no capture.
type Config struct {
	// Registry, when set, receives the apollo_mem_bytes{component=...} gauge
	// family (one gauge per tracked component, read live at render time) and
	// the runtime gauges (heap, GC, RSS). One profiler per registry — the
	// gauges are registered once.
	Registry *obs.Registry
	// Out, when set, receives one JSON Sample per line (mem.jsonl).
	Out io.Writer
	// SampleEvery is the ObserveStep cadence: a sample every N observed
	// steps. <= 0 selects 1 (every step).
	SampleEvery int
	// RingSize bounds the in-memory flight-recorder ring. <= 0 selects 256.
	RingSize int
	// HighWater, when > 0, is the heap-in-use byte threshold whose first
	// crossing triggers an automatic heap-profile capture (reason
	// "highwater") into ProfileDir.
	HighWater int64
	// ProfileDir is where captured heap profiles land
	// (heap-<reason>-<n>.pprof). Empty disables capture.
	ProfileDir string
	// MaxProfiles bounds how many heap profiles one profiler will write
	// (captures past it are dropped, counted in the sample ring only).
	// <= 0 selects 4.
	MaxProfiles int
}

// component is one ledger cell: either pulled from fn at sample/render time
// or pushed via Set.
type component struct {
	fn  func() int64
	val int64
}

// Profiler is the live memory accountant. All methods are nil-receiver safe;
// Track/Set/Predict and Sample may be called concurrently.
type Profiler struct {
	cfg Config

	mu         sync.Mutex
	comps      map[string]*component
	order      []string // registration order, for stable gauge listing
	preds      map[string]func() float64
	ring       []Sample
	ringAt     int
	ringFull   bool
	peak       Sample
	havePeak   bool
	step       int64 // ObserveStep counter for the SampleEvery cadence
	profiles   int
	hwCaptured bool
	out        *obs.JSONLWriter
}

// New builds a profiler. The registry's runtime gauges (heap, GC, RSS) are
// registered immediately; component gauges appear as components are tracked.
func New(cfg Config) *Profiler {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.MaxProfiles <= 0 {
		cfg.MaxProfiles = 4
	}
	p := &Profiler{
		cfg:   cfg,
		comps: map[string]*component{},
		preds: map[string]func() float64{},
		ring:  make([]Sample, cfg.RingSize),
		out:   obs.NewJSONLWriter(cfg.Out),
	}
	instrumentRuntime(cfg.Registry)
	return p
}

// instrumented guards the per-registry runtime gauges so that building two
// profilers against one registry (e.g. a CLI-owned profiler handed to a serve
// registry that would otherwise auto-create its own) stays panic-free.
var instrumented = struct {
	mu sync.Mutex
	m  map[*obs.Registry]bool
}{m: map[*obs.Registry]bool{}}

// instrumentRuntime exposes the sampled runtime counters on the registry.
// Each gauge reads MemStats at render time so a scrape is always current,
// whether or not anything is calling Sample. Idempotent per registry.
func instrumentRuntime(r *obs.Registry) {
	if r == nil {
		return
	}
	instrumented.mu.Lock()
	seen := instrumented.m[r]
	instrumented.m[r] = true
	instrumented.mu.Unlock()
	if seen {
		return
	}
	stat := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	const help = "Sampled runtime.MemStats and best-effort process footprint."
	r.GaugeFunc("apollo_mem_runtime_bytes", help,
		stat(func(ms *runtime.MemStats) float64 { return float64(ms.HeapInuse) }),
		obs.Label{Key: "kind", Value: "heap_inuse"})
	r.GaugeFunc("apollo_mem_runtime_bytes", help,
		stat(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }),
		obs.Label{Key: "kind", Value: "heap_alloc"})
	r.GaugeFunc("apollo_mem_runtime_bytes", help,
		stat(func(ms *runtime.MemStats) float64 { return float64(ms.HeapSys) }),
		obs.Label{Key: "kind", Value: "heap_sys"})
	r.GaugeFunc("apollo_mem_runtime_bytes", help,
		func() float64 { return float64(procRSS()) },
		obs.Label{Key: "kind", Value: "rss"})
	r.CounterFunc("apollo_mem_gc_cycles_total", "Completed GC cycles.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.NumGC)
		})
	r.CounterFunc("apollo_mem_gc_pause_ns_total", "Cumulative GC stop-the-world pause time.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.PauseTotalNs)
		})
}

// Track registers (or replaces) a pulled component: fn is evaluated at every
// Sample and at every /metrics render. fn must be safe for concurrent use.
func (p *Profiler) Track(name string, fn func() int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	c, existed := p.comps[name]
	if !existed {
		c = &component{}
		p.comps[name] = c
		p.order = append(p.order, name)
	}
	c.fn = fn
	p.mu.Unlock()
	if !existed {
		p.registerGauge(name)
	}
}

// Set registers (on first use) and stores a pushed component value.
func (p *Profiler) Set(name string, bytes int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	c, existed := p.comps[name]
	if !existed {
		c = &component{}
		p.comps[name] = c
		p.order = append(p.order, name)
	}
	c.fn = nil
	c.val = bytes
	p.mu.Unlock()
	if !existed {
		p.registerGauge(name)
	}
}

// registerGauge exposes one component on the gauge family. Called exactly
// once per component name (guarded by the comps map), so the GaugeFunc
// duplicate panic cannot fire.
func (p *Profiler) registerGauge(name string) {
	if p.cfg.Registry == nil {
		return
	}
	p.cfg.Registry.GaugeFunc("apollo_mem_bytes",
		"Live component-level memory ledger (see internal/obs/memprof).",
		func() float64 { return float64(p.Read(name)) },
		obs.Label{Key: "component", Value: name})
}

// Read returns one component's current bytes (0 for unknown components).
func (p *Profiler) Read(name string) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	c := p.comps[name]
	p.mu.Unlock()
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return c.fn()
	}
	return c.val
}

// Predict registers a constant analytic prediction for a component — the
// memmodel value its measurement is diffed against in every sample.
func (p *Profiler) Predict(name string, bytes float64) {
	if p == nil {
		return
	}
	p.PredictFunc(name, func() float64 { return bytes })
}

// PredictFunc registers a prediction evaluated at sample time, for
// components whose analytic value varies (serve: ServeBytes × resident
// count).
func (p *Profiler) PredictFunc(name string, fn func() float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.preds[name] = fn
	p.mu.Unlock()
}

// ObserveStep samples every SampleEvery-th call, tagging the sample with the
// step — the training loops' per-step hook.
func (p *Profiler) ObserveStep(step int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.step++
	due := p.step%int64(p.cfg.SampleEvery) == 0
	p.mu.Unlock()
	if due {
		p.Sample(step)
	}
}

// Sample takes one timeline point: evaluates the ledger and predictions,
// reads MemStats and proc/cgroup RSS, updates the high-water mark and the
// flight-recorder ring, emits the mem.jsonl line, and — when the heap-in-use
// high-water threshold is first crossed — captures a heap profile.
func (p *Profiler) Sample(step int) Sample {
	if p == nil {
		return Sample{}
	}
	p.mu.Lock()
	comps := make(map[string]int64, len(p.comps))
	var total int64
	for name, c := range p.comps {
		v := c.val
		fn := c.fn
		if fn != nil {
			// Pull outside p.mu? fn may take other locks (serve registry) but
			// must not call back into the profiler's mutating methods; holding
			// p.mu keeps the sample atomic w.r.t. Track/Set.
			v = fn()
		}
		comps[name] = v
		total += v
	}
	preds := make(map[string]func() float64, len(p.preds))
	for name, fn := range p.preds {
		preds[name] = fn
	}
	p.mu.Unlock()

	s := Sample{
		UnixUS:     time.Now().UnixMicro(),
		Step:       step,
		Components: comps,
		TotalBytes: total,
	}
	for name, fn := range preds {
		pv := fn()
		if s.Predicted == nil {
			s.Predicted = map[string]float64{}
			s.DeltaFrac = map[string]float64{}
		}
		s.Predicted[name] = pv
		if pv > 0 {
			s.DeltaFrac[name] = (float64(comps[name]) - pv) / pv
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.HeapInuse = ms.HeapInuse
	s.HeapAlloc = ms.HeapAlloc
	s.HeapSys = ms.HeapSys
	s.GCCycles = ms.NumGC
	s.GCPauseNS = ms.PauseTotalNs
	s.RSSBytes = procRSS()
	s.CgroupBytes = cgroupUsage()

	p.mu.Lock()
	if !p.havePeak || s.TotalBytes > p.peak.TotalBytes {
		s.HighWater = true
		p.peak = s
		p.havePeak = true
	}
	p.ring[p.ringAt] = s
	p.ringAt++
	if p.ringAt == len(p.ring) {
		p.ringAt = 0
		p.ringFull = true
	}
	capture := p.cfg.HighWater > 0 && !p.hwCaptured && int64(s.HeapInuse) >= p.cfg.HighWater
	if capture {
		p.hwCaptured = true
	}
	p.mu.Unlock()

	p.out.Emit(s)
	if capture {
		p.CaptureHeapProfile("highwater")
	}
	return s
}

// Ring returns the flight-recorder samples, oldest first.
func (p *Profiler) Ring() []Sample {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.ringFull {
		out := make([]Sample, p.ringAt)
		copy(out, p.ring[:p.ringAt])
		return out
	}
	out := make([]Sample, 0, len(p.ring))
	out = append(out, p.ring[p.ringAt:]...)
	out = append(out, p.ring[:p.ringAt]...)
	return out
}

// Peak returns the sample with the highest ledger total seen so far (the
// zero Sample before any sampling).
func (p *Profiler) Peak() Sample {
	if p == nil {
		return Sample{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// CaptureHeapProfile writes the current heap profile into ProfileDir as
// heap-<reason>-<n>.pprof, bounded by MaxProfiles. The training watchdog's
// Emit hook calls this on alerts; the high-water crossing calls it
// internally. Returns the written path ("" when capture is disabled,
// exhausted, or fails — flight recording must never take the run down).
func (p *Profiler) CaptureHeapProfile(reason string) string {
	if p == nil || p.cfg.ProfileDir == "" {
		return ""
	}
	p.mu.Lock()
	if p.profiles >= p.cfg.MaxProfiles {
		p.mu.Unlock()
		return ""
	}
	p.profiles++
	n := p.profiles
	p.mu.Unlock()

	name := fmt.Sprintf("heap-%s-%d.pprof", sanitizeReason(reason), n)
	path := filepath.Join(p.cfg.ProfileDir, name)
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	// debug=0 writes the binary gzip format `go tool pprof` expects. A
	// failed write or close means a truncated profile: account for it
	// (apollo_obs_write_errors_total) and report no path rather than
	// pointing the flight record at a corrupt file.
	werr := pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := obs.CountWriteError(f.Close()); werr != nil || cerr != nil {
		obs.CountWriteError(werr)
		return ""
	}
	return path
}

// StartSampler runs Sample(0) every interval on a background goroutine — the
// serve-side cadence, where there is no step loop to hook. The returned stop
// function halts the goroutine (idempotent).
func (p *Profiler) StartSampler(every time.Duration) (stop func()) {
	if p == nil || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p.Sample(0)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func sanitizeReason(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "manual"
	}
	return b.String()
}

// procRSS reads VmRSS from /proc/self/status (kB). Best-effort: 0 on any
// failure (non-Linux, masked procfs).
func procRSS() int64 {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(blob), "\n") {
		rest, ok := strings.CutPrefix(line, "VmRSS:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// cgroupUsage reads the container memory usage: cgroup v2's memory.current,
// falling back to v1's usage_in_bytes. Best-effort: 0 when absent.
func cgroupUsage() int64 {
	for _, path := range []string{
		"/sys/fs/cgroup/memory.current",
		"/sys/fs/cgroup/memory/memory.usage_in_bytes",
	} {
		blob, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(string(blob)), 10, 64)
		if err == nil {
			return v
		}
	}
	return 0
}
