package memprof

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"apollo/internal/obs"
)

// TestNilProfiler pins the disabled mode: every method on a nil handle is a
// no-op, never a panic.
func TestNilProfiler(t *testing.T) {
	var p *Profiler
	p.Track("x", func() int64 { return 1 })
	p.Set("x", 2)
	p.Predict("x", 3)
	p.PredictFunc("x", func() float64 { return 4 })
	p.ObserveStep(1)
	if s := p.Sample(1); s.TotalBytes != 0 {
		t.Fatalf("nil Sample = %+v", s)
	}
	if got := p.Read("x"); got != 0 {
		t.Fatalf("nil Read = %d", got)
	}
	if r := p.Ring(); r != nil {
		t.Fatalf("nil Ring = %v", r)
	}
	if pk := p.Peak(); pk.TotalBytes != 0 {
		t.Fatalf("nil Peak = %+v", pk)
	}
	if path := p.CaptureHeapProfile("x"); path != "" {
		t.Fatalf("nil capture wrote %q", path)
	}
	stop := p.StartSampler(time.Millisecond)
	stop()
}

// TestLedgerSampleAndDelta covers the component ledger, the measured total,
// and the measured-vs-predicted delta math on a sample.
func TestLedgerSampleAndDelta(t *testing.T) {
	var buf bytes.Buffer
	p := New(Config{Out: &buf})
	pulled := int64(1000)
	p.Track("weights", func() int64 { return pulled })
	p.Set("grads", 500)
	p.Predict("weights", 800) // measured 1000 → delta +0.25

	s := p.Sample(7)
	if s.Step != 7 {
		t.Fatalf("step = %d", s.Step)
	}
	if s.Components["weights"] != 1000 || s.Components["grads"] != 500 {
		t.Fatalf("components = %v", s.Components)
	}
	if s.TotalBytes != 1500 {
		t.Fatalf("total = %d", s.TotalBytes)
	}
	if got := s.DeltaFrac["weights"]; got < 0.2499 || got > 0.2501 {
		t.Fatalf("delta = %v", got)
	}
	if !s.HighWater {
		t.Fatal("first sample should set the high-water mark")
	}
	if s.HeapInuse == 0 || s.HeapSys == 0 {
		t.Fatalf("runtime stats missing: %+v", s)
	}

	// The pulled component follows its source; the pushed one is sticky.
	pulled = 2000
	if got := p.Read("weights"); got != 2000 {
		t.Fatalf("Read(weights) = %d", got)
	}
	if got := p.Read("grads"); got != 500 {
		t.Fatalf("Read(grads) = %d", got)
	}

	// Emitted JSONL round-trips to the same sample.
	var back Sample
	line := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("unmarshal %q: %v", line, err)
	}
	if back.TotalBytes != 1500 || back.Components["grads"] != 500 {
		t.Fatalf("round-trip = %+v", back)
	}
}

// TestRingAndPeak pins flight-recorder bounds, ordering, and peak tracking.
func TestRingAndPeak(t *testing.T) {
	p := New(Config{RingSize: 4})
	v := int64(0)
	p.Track("x", func() int64 { return v })
	for i := 1; i <= 6; i++ {
		v = int64(i * 100)
		if i == 5 {
			v = 50 // dip: not a new peak
		}
		p.Sample(i)
	}
	ring := p.Ring()
	if len(ring) != 4 {
		t.Fatalf("ring len = %d", len(ring))
	}
	for i, s := range ring {
		if s.Step != i+3 {
			t.Fatalf("ring[%d].Step = %d, want %d (oldest first)", i, s.Step, i+3)
		}
	}
	if pk := p.Peak(); pk.TotalBytes != 600 || pk.Step != 6 {
		t.Fatalf("peak = total %d step %d", pk.TotalBytes, pk.Step)
	}
}

// TestSampleEvery pins the ObserveStep cadence.
func TestSampleEvery(t *testing.T) {
	p := New(Config{SampleEvery: 3, RingSize: 16})
	p.Set("x", 1)
	for step := 1; step <= 9; step++ {
		p.ObserveStep(step)
	}
	ring := p.Ring()
	if len(ring) != 3 {
		t.Fatalf("samples = %d, want 3", len(ring))
	}
	for i, want := range []int{3, 6, 9} {
		if ring[i].Step != want {
			t.Fatalf("ring[%d].Step = %d, want %d", i, ring[i].Step, want)
		}
	}
}

// TestGaugeFamily checks the apollo_mem_bytes family and runtime gauges
// render on the registry, reading live values.
func TestGaugeFamily(t *testing.T) {
	r := obs.NewRegistry()
	p := New(Config{Registry: r})
	v := int64(1234)
	p.Track("weights", func() int64 { return v })
	p.Set("grads", 42)

	var buf bytes.Buffer
	if err := r.RenderPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`apollo_mem_bytes{component="weights"} 1234`,
		`apollo_mem_bytes{component="grads"} 42`,
		`apollo_mem_runtime_bytes{kind="heap_inuse"}`,
		"apollo_mem_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Gauges are live: render again after the source moves.
	v = 99
	buf.Reset()
	if err := r.RenderPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `apollo_mem_bytes{component="weights"} 99`) {
		t.Fatalf("gauge not live:\n%s", buf.String())
	}

	// A second profiler against the same registry must not panic on the
	// runtime gauges (the serve auto-create path).
	_ = New(Config{Registry: r})
}

// TestHighWaterCapture trips the heap high-water threshold and checks a
// profile lands in the dir, exactly once, and that MaxProfiles bounds
// manual captures.
func TestHighWaterCapture(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{HighWater: 1, ProfileDir: dir, MaxProfiles: 3})
	p.Set("x", 1)
	p.Sample(1)
	p.Sample(2) // second crossing: no second automatic capture

	globbed, err := filepath.Glob(filepath.Join(dir, "heap-highwater-*.pprof"))
	if err != nil || len(globbed) != 1 {
		t.Fatalf("highwater profiles = %v (err %v), want exactly 1", globbed, err)
	}
	if fi, err := os.Stat(globbed[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("profile %s empty or unreadable: %v", globbed[0], err)
	}

	if path := p.CaptureHeapProfile("watchdog loss-spike"); path == "" {
		t.Fatal("manual capture failed")
	} else if !strings.Contains(filepath.Base(path), "watchdog-loss-spike") {
		t.Fatalf("reason not sanitized into name: %s", path)
	}
	p.CaptureHeapProfile("three")
	if path := p.CaptureHeapProfile("four"); path != "" {
		t.Fatalf("capture past MaxProfiles wrote %s", path)
	}
	globbed, _ = filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
	if len(globbed) != 3 {
		t.Fatalf("profiles on disk = %d, want 3", len(globbed))
	}
}

// TestConcurrentSampling races Track/Set/Sample/Read under -race.
func TestConcurrentSampling(t *testing.T) {
	p := New(Config{RingSize: 8})
	p.Track("a", func() int64 { return 1 })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g {
				case 0:
					p.Set("b", int64(i))
				case 1:
					p.Sample(i)
				case 2:
					p.Read("a")
					p.Ring()
				default:
					p.ObserveStep(i)
					p.Peak()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStartSampler smoke-tests the background cadence used by serve.
func TestStartSampler(t *testing.T) {
	p := New(Config{RingSize: 64})
	p.Set("x", 7)
	stop := p.StartSampler(2 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Ring()) < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	if len(p.Ring()) < 2 {
		t.Fatalf("background sampler produced %d samples", len(p.Ring()))
	}
}
