package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics pins the scalar metric semantics, including the
// get-or-create contract: asking twice for the same name+labels returns the
// same instance.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "help"); again != c {
		t.Fatalf("get-or-create returned a different counter instance")
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	lblA := r.Counter("test_labeled_total", "help", Label{"path", "/a"})
	lblB := r.Counter("test_labeled_total", "help", Label{"path", "/b"})
	if lblA == lblB {
		t.Fatalf("distinct label sets must get distinct instances")
	}
	lblA.Inc()
	if lblB.Value() != 0 {
		t.Fatalf("label sets must not share state")
	}
}

// TestNilRegistryIsDisabledMode verifies the disabled-mode contract: a nil
// registry hands out nil handles and every operation no-ops without
// panicking.
func TestNilRegistryIsDisabledMode(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_seconds", "h", nil)
	r.GaugeFunc("x_fn", "h", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil handles must read as zero")
	}
	if err := r.RenderPrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil render: %v", err)
	}
	var b strings.Builder
	if err := r.WriteVars(&b); err != nil {
		t.Fatalf("nil vars: %v", err)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(b.String()), &vars); err != nil || len(vars) != 0 {
		t.Fatalf("nil WriteVars = %q, want empty object", b.String())
	}
}

// TestHistogramQuantileEdges pins Quantile at the edge counts the readout
// contract names: empty, a single observation, all observations in one
// bucket, and the +Inf overflow bucket reporting the observed maximum.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()

	empty := r.Histogram("edge_empty", "h", []float64{1, 2})
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	if empty.Count() != 0 || empty.Sum() != 0 {
		t.Fatalf("empty histogram count/sum nonzero")
	}

	one := r.Histogram("edge_one", "h", []float64{1, 2, 4})
	one.Observe(1.5)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 2 {
			t.Fatalf("single-observation Quantile(%g) = %g, want bucket bound 2", q, got)
		}
	}

	packed := r.Histogram("edge_packed", "h", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		packed.Observe(3) // all land in the le=4 bucket
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := packed.Quantile(q); got != 4 {
			t.Fatalf("packed Quantile(%g) = %g, want 4", q, got)
		}
	}

	over := r.Histogram("edge_over", "h", []float64{1})
	over.Observe(0.5)
	over.Observe(10)
	over.Observe(25) // overflow bucket max
	if got := over.Quantile(1); got != 25 {
		t.Fatalf("overflow Quantile(1) = %g, want observed max 25", got)
	}
	if got := over.Quantile(0.33); got != 1 {
		t.Fatalf("Quantile(0.33) = %g, want first bucket bound 1", got)
	}
	if got := over.Sum(); got != 35.5 {
		t.Fatalf("Sum = %g, want 35.5", got)
	}
}

// TestHistogramQuantileRank checks the rank rule on a known spread: rank
// ⌈q·n⌉ picks the bucket, and readout is repeatable bit-for-bit.
func TestHistogramQuantileRank(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rank_seconds", "h", []float64{1, 2, 4, 8})
	// 10 observations: 5 in le=1, 3 in le=2, 2 in le=4.
	for i := 0; i < 5; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 3; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 2; i++ {
		h.Observe(3)
	}
	cases := []struct{ q, want float64 }{
		{0.5, 1},  // rank 5 → first bucket
		{0.51, 2}, // rank 6 → second bucket
		{0.8, 2},  // rank 8 → second bucket
		{0.81, 4}, // rank 9 → third bucket
		{1, 4},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
		if again := h.Quantile(c.q); again != h.Quantile(c.q) {
			t.Fatalf("Quantile(%g) not repeatable", c.q)
		}
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this doubles as the data-race check
// for the atomic paths.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	g := r.Gauge("conc_gauge", "h")
	h := r.Histogram("conc_seconds", "h", []float64{1, 2})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
	if got, want := h.Count(), int64(workers*per); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	if got := h.Sum(); got != workers*per*0.5 {
		t.Fatalf("histogram sum = %g, want %g", got, workers*per*0.5)
	}
}

// TestRenderPrometheus validates the exposition output line by line: HELP
// and TYPE headers, counter/gauge samples, cumulative histogram buckets
// ending in +Inf, and label escaping.
func TestRenderPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "Requests.", Label{"path", "/v1/x"}).Add(3)
	r.Gauge("depth", "Queue depth.").Set(2)
	r.GaugeFunc("workers", "Pool width.", func() float64 { return 7 })
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Counter("esc_total", "h", Label{"v", "a\"b\\c\nd"}).Inc()

	var b strings.Builder
	if err := r.RenderPrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total Requests.\n",
		"# TYPE req_total counter\n",
		`req_total{path="/v1/x"} 3` + "\n",
		"# TYPE depth gauge\n",
		"depth 2\n",
		"workers 7\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
		`esc_total{v="a\"b\\c\nd"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Structural validity: every non-comment line is "name{...} value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := parseFloat(line[sp+1:]); err != nil {
			t.Fatalf("non-numeric sample value in %q", line)
		}
	}
}

func parseFloat(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	if s == "-Inf" {
		return math.Inf(-1), nil
	}
	var v float64
	err := json.Unmarshal([]byte(s), &v)
	return v, err
}

// TestWriteVars checks the /debug/vars JSON view: parseable, counters as
// numbers, histograms as quantile objects.
func TestWriteVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("v_total", "h").Add(2)
	h := r.Histogram("v_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var b strings.Builder
	if err := r.WriteVars(&b); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(b.String()), &vars); err != nil {
		t.Fatalf("vars not valid JSON: %v\n%s", err, b.String())
	}
	if got := vars["v_total"].(float64); got != 2 {
		t.Fatalf("v_total = %v, want 2", got)
	}
	hv := vars["v_seconds"].(map[string]any)
	if hv["count"].(float64) != 2 || hv["p50"].(float64) != 1 || hv["max"].(float64) != 1.5 {
		t.Fatalf("histogram vars wrong: %v", hv)
	}
}

// TestRegistryConflictsPanic pins the registration guards: type mismatch
// and histogram bucket-layout mismatch are programming errors.
func TestRegistryConflictsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "h")
	mustPanic(t, "type clash", func() { r.Gauge("clash_total", "h") })
	r.Histogram("clash_seconds", "h", []float64{1, 2})
	mustPanic(t, "bucket clash", func() { r.Histogram("clash_seconds", "h", []float64{1, 3}) })
	mustPanic(t, "bad name", func() { r.Counter("9bad", "h") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("unsorted", "h", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}
