package obs

import (
	"sync"
	"testing"
)

// TestHistogramWindowQuantiles: a window sees only observations since its
// creation / last rotation, at the same rank-exact bucket resolution as the
// full histogram.
func TestHistogramWindowQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_test_seconds", "t", []float64{0.001, 0.01, 0.1, 1})

	// Pre-window history the window must not see.
	for i := 0; i < 100; i++ {
		h.Observe(0.0005) // all in the first bucket
	}
	w := h.Window()
	if w.Count() != 0 {
		t.Fatalf("fresh window count %d, want 0", w.Count())
	}
	if q := w.Quantile(0.95); q != 0 {
		t.Fatalf("empty window quantile %v, want 0", q)
	}

	// Window observations land in the 0.1 bucket; the lifetime median stays
	// in the first bucket (100 old vs 10 new), so the two readouts must
	// differ.
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	if w.Count() != 10 {
		t.Fatalf("window count %d, want 10", w.Count())
	}
	if q := w.Quantile(0.95); q != 0.1 {
		t.Fatalf("window p95 %v, want 0.1 (bucket upper bound)", q)
	}
	if q := h.Quantile(0.50); q != 0.001 {
		t.Fatalf("lifetime p50 %v, want 0.001 — window leaked into histogram readout", q)
	}

	// Rotation empties the window without touching the histogram.
	w.Rotate()
	if w.Count() != 0 {
		t.Fatalf("rotated window count %d, want 0", w.Count())
	}
	if h.Count() != 110 {
		t.Fatalf("histogram count %d, want 110", h.Count())
	}

	// Overflow-bucket observations report the lifetime max (documented
	// conservative bound).
	h.Observe(7.5)
	if q := w.Quantile(0.99); q != 7.5 {
		t.Fatalf("overflow window quantile %v, want 7.5", q)
	}
}

// TestHistogramWindowNilSafe: the disabled mode costs a branch, like every
// obs handle.
func TestHistogramWindowNilSafe(t *testing.T) {
	var h *Histogram
	w := h.Window()
	if w != nil {
		t.Fatal("nil histogram should yield a nil window")
	}
	w.Rotate()
	if w.Count() != 0 || w.Quantile(0.95) != 0 {
		t.Fatal("nil window must read as empty")
	}
}

// TestHistogramWindowConcurrent: rotations racing observations never
// produce a negative count or a panic (the readout is monotone between
// rotations).
func TestHistogramWindowConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_race_seconds", "t", []float64{0.01, 1})
	w := h.Window()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.5)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if c := w.Count(); c < 0 {
			t.Errorf("negative window count %d", c)
			break
		}
		w.Quantile(0.95)
		if i%10 == 0 {
			w.Rotate()
		}
	}
	close(stop)
	wg.Wait()
}
