package obs

import (
	"sync"
	"testing"
)

// TestHistogramWindowQuantiles: a window sees only observations since its
// creation / last rotation, at the same rank-exact bucket resolution as the
// full histogram.
func TestHistogramWindowQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_test_seconds", "t", []float64{0.001, 0.01, 0.1, 1})

	// Pre-window history the window must not see.
	for i := 0; i < 100; i++ {
		h.Observe(0.0005) // all in the first bucket
	}
	w := h.Window()
	if w.Count() != 0 {
		t.Fatalf("fresh window count %d, want 0", w.Count())
	}
	if q := w.Quantile(0.95); q != 0 {
		t.Fatalf("empty window quantile %v, want 0", q)
	}

	// Window observations land in the 0.1 bucket; the lifetime median stays
	// in the first bucket (100 old vs 10 new), so the two readouts must
	// differ.
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	if w.Count() != 10 {
		t.Fatalf("window count %d, want 10", w.Count())
	}
	if q := w.Quantile(0.95); q != 0.1 {
		t.Fatalf("window p95 %v, want 0.1 (bucket upper bound)", q)
	}
	if q := h.Quantile(0.50); q != 0.001 {
		t.Fatalf("lifetime p50 %v, want 0.001 — window leaked into histogram readout", q)
	}

	// Rotation empties the window without touching the histogram.
	w.Rotate()
	if w.Count() != 0 {
		t.Fatalf("rotated window count %d, want 0", w.Count())
	}
	if h.Count() != 110 {
		t.Fatalf("histogram count %d, want 110", h.Count())
	}

	// Overflow-bucket observations report the lifetime max (documented
	// conservative bound).
	h.Observe(7.5)
	if q := w.Quantile(0.99); q != 7.5 {
		t.Fatalf("overflow window quantile %v, want 7.5", q)
	}
}

// TestHistogramWindowNilSafe: the disabled mode costs a branch, like every
// obs handle.
func TestHistogramWindowNilSafe(t *testing.T) {
	var h *Histogram
	w := h.Window()
	if w != nil {
		t.Fatal("nil histogram should yield a nil window")
	}
	w.Rotate()
	if w.Count() != 0 || w.Quantile(0.95) != 0 {
		t.Fatal("nil window must read as empty")
	}
}

// TestHistogramWindowRotationExactness: the rotation boundary is exact —
// an observation recorded before Rotate is excluded and one recorded after
// is included, with no off-by-one at either edge, and an emptied window
// reads zero quantiles even while the histogram holds history.
func TestHistogramWindowRotationExactness(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_exact_seconds", "t", []float64{0.001, 0.01, 0.1, 1})
	w := h.Window()

	for i := 0; i < 7; i++ {
		h.Observe(0.005)
	}
	if w.Count() != 7 {
		t.Fatalf("pre-rotation count %d, want 7", w.Count())
	}
	w.Rotate()
	// Immediately after rotation the window is exactly empty: count 0 and
	// zero quantiles, even though the histogram holds all 7.
	if c := w.Count(); c != 0 {
		t.Fatalf("post-rotation count %d, want 0", c)
	}
	if q := w.Quantile(0.99); q != 0 {
		t.Fatalf("emptied window quantile %v, want 0", q)
	}

	for i := 0; i < 3; i++ {
		h.Observe(0.5)
	}
	if c := w.Count(); c != 3 {
		t.Fatalf("count %d after 3 post-rotation observes, want exactly 3", c)
	}
	// Every windowed observation is in the 1-bucket: the lowest and the
	// highest rank agree on the bucket bound, untouched by the 7 older
	// observations in the 0.01 bucket.
	if q := w.Quantile(0.01); q != 1 {
		t.Fatalf("windowed low quantile %v, want 1 — pre-rotation history leaked in", q)
	}
	if q := w.Quantile(1.0); q != 1 {
		t.Fatalf("windowed max quantile %v, want 1", q)
	}

	// A second rotation empties it again; the histogram's lifetime readout
	// never rotates.
	w.Rotate()
	if w.Count() != 0 {
		t.Fatalf("second rotation left count %d", w.Count())
	}
	if h.Count() != 10 {
		t.Fatalf("histogram count %d, want 10", h.Count())
	}
}

// TestHistogramWindowConcurrentRotationExact: observations racing rotations
// are never lost or double-counted. A never-rotated reference window over
// the same histogram must account for every observation exactly once the
// observers stop, while a concurrently-rotated window stays non-negative
// and bounded throughout and drains to exactly zero on a final quiescent
// rotation.
func TestHistogramWindowConcurrentRotationExact(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_rot_race_seconds", "t", []float64{0.01, 1})
	wRot := h.Window() // rotated while observations land
	wRef := h.Window() // never rotated: the exact-accounting reference

	const observers, perObserver = 4, 2000
	var wg sync.WaitGroup
	for o := 0; o < observers; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perObserver; i++ {
				h.Observe(0.5)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	const total = int64(observers * perObserver)
	for rotating := true; rotating; {
		select {
		case <-done:
			rotating = false
		default:
		}
		if c := wRot.Count(); c < 0 || c > total {
			t.Fatalf("rotated window count %d outside [0, %d]", c, total)
		}
		wRot.Quantile(0.95)
		wRot.Rotate()
	}

	// Quiescent: the reference window saw every observation exactly once.
	if c := wRef.Count(); c != total {
		t.Fatalf("reference window count %d, want %d", c, total)
	}
	if c := h.Count(); c != total {
		t.Fatalf("histogram count %d, want %d", c, total)
	}
	// One final rotation drains the racing window completely.
	wRot.Rotate()
	if c := wRot.Count(); c != 0 {
		t.Fatalf("drained window count %d, want 0", c)
	}
}

// TestHistogramWindowConcurrent: rotations racing observations never
// produce a negative count or a panic (the readout is monotone between
// rotations).
func TestHistogramWindowConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_race_seconds", "t", []float64{0.01, 1})
	w := h.Window()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.5)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if c := w.Count(); c < 0 {
			t.Errorf("negative window count %d", c)
			break
		}
		w.Quantile(0.95)
		if i%10 == 0 {
			w.Rotate()
		}
	}
	close(stop)
	wg.Wait()
}
