package obs

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof wires net/http/pprof's profiling handlers onto mux under
// /debug/pprof/ — explicitly, so importing this package never touches
// http.DefaultServeMux. Opt-in: only muxes that call this expose profiles.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
