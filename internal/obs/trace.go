package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// JSONLWriter serializes values as one JSON object per line onto an
// io.Writer, safe for concurrent emitters. Nil-safe: a nil writer drops
// events at one branch.
type JSONLWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLWriter wraps w; a nil w yields a nil (disabled) writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	if w == nil {
		return nil
	}
	return &JSONLWriter{w: w}
}

// Telemetry write failures must not vanish: most emitters (Span.End,
// TrainRecorder.RecordStep, the run ledger) have no caller positioned to
// handle the error, so Emit itself counts every failure into a process-wide
// counter — exported as apollo_obs_write_errors_total via
// InstrumentWriteErrors — and logs the first one to stderr.
var (
	writeErrors     atomic.Int64
	writeErrLogOnce sync.Once
)

// WriteErrors returns how many telemetry JSONL writes have failed in this
// process.
func WriteErrors() int64 { return writeErrors.Load() }

func noteWriteError(err error) {
	writeErrors.Add(1)
	writeErrLogOnce.Do(func() {
		log.Printf("obs: telemetry write failed (logged once; see apollo_obs_write_errors_total): %v", err)
	})
}

// CountWriteError routes a writer cleanup error — a Close/Flush/Sync on a
// telemetry stream, ledger file or checkpoint writer with no caller in a
// position to act — into the same accounting as failed JSONL emits: counted
// in apollo_obs_write_errors_total, first occurrence logged. It returns err
// unchanged so call sites can both account and propagate. A nil err is a
// no-op, so `obs.CountWriteError(f.Close())` is the standard crash-honest
// discard.
func CountWriteError(err error) error {
	if err != nil {
		noteWriteError(err)
	}
	return err
}

// InstrumentWriteErrors exposes the process-wide telemetry write-failure
// count on a registry as apollo_obs_write_errors_total. Nil-safe no-op.
func InstrumentWriteErrors(r *Registry) {
	r.CounterFunc("apollo_obs_write_errors_total",
		"Telemetry JSONL writes (spans, step events, ledger entries) that failed.",
		WriteErrors)
}

// Emit marshals v and appends it as one line. Failures are returned and
// counted (WriteErrors) — callers that cannot act on the error may drop it
// knowing it was recorded.
func (jw *JSONLWriter) Emit(v any) error {
	if jw == nil {
		return nil
	}
	blob, err := json.Marshal(v)
	if err != nil {
		noteWriteError(err)
		return err
	}
	blob = append(blob, '\n')
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if _, err = jw.w.Write(blob); err != nil {
		noteWriteError(err)
	}
	return err
}

// Tracer hands out spans and writes one JSONL event per finished span.
// Trace IDs double as request IDs: every root span starts a new trace whose
// ID the serve layer echoes in the X-Request-Id response header. Nil-safe —
// a nil tracer hands out nil spans whose methods all no-op.
type Tracer struct {
	w      *JSONLWriter
	traces atomic.Uint64
	spans  atomic.Uint64
}

// NewTracer emits span events to w as JSONL; a nil w yields a nil
// (disabled) tracer.
func NewTracer(w io.Writer) *Tracer {
	jw := NewJSONLWriter(w)
	if jw == nil {
		return nil
	}
	return &Tracer{w: jw}
}

// spanEvent is the JSONL schema of one finished span.
type spanEvent struct {
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	Parent  string         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"` // µs since Unix epoch
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Span is one timed unit of work. Start/Child stamp the clock; End emits
// the event. A span is owned by one goroutine; Attr/End must not race.
type Span struct {
	t      *Tracer
	trace  uint64
	id     uint64
	parent uint64 // 0 = root
	name   string
	start  time.Time
	attrs  map[string]any
}

// Start opens a root span in a fresh trace.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:     t,
		trace: t.traces.Add(1),
		id:    t.spans.Add(1),
		name:  name,
		start: time.Now(),
	}
}

// Child opens a sub-span in the same trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		t:      s.t,
		trace:  s.trace,
		id:     s.t.spans.Add(1),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// Attr attaches one key=value pair, returning s for chaining.
func (s *Span) Attr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
	return s
}

// TraceID returns the span's trace (request) identifier, "" when disabled.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("t%d", s.trace)
}

// End emits the span's JSONL event.
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := spanEvent{
		Trace:   fmt.Sprintf("t%d", s.trace),
		Span:    fmt.Sprintf("s%d", s.id),
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   time.Since(s.start).Microseconds(),
		Attrs:   s.attrs,
	}
	if s.parent != 0 {
		ev.Parent = fmt.Sprintf("s%d", s.parent)
	}
	s.t.w.Emit(ev)
}
