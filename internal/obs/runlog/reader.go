package runlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"apollo/internal/obs"
	"apollo/internal/obs/memprof"
)

// RunData is one fully loaded ledger entry.
type RunData struct {
	Manifest Manifest
	Steps    []obs.StepEvent
	Alerts   []AlertEvent
	Mem      []memprof.Sample // memory timeline; empty when the run ran without memprof
}

// List reads every run manifest under root, sorted by start time (oldest
// first). Entries whose manifest is missing or unreadable are skipped — a
// ledger with one torn directory must not make the whole root unlistable.
func List(root string) ([]Manifest, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := ReadManifest(filepath.Join(root, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// ReadManifest loads one run directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("runlog: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return Manifest{}, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	if m.Version > ManifestVersion {
		return Manifest{}, fmt.Errorf("runlog: %s: manifest version %d is newer than this reader (%d)", dir, m.Version, ManifestVersion)
	}
	return m, nil
}

// Load opens runs/<id> under root.
func Load(root, id string) (*RunData, error) {
	return LoadDir(filepath.Join(root, id))
}

// LoadDir loads a run directory wherever it lives — under a runs root or a
// committed baseline path. Missing step/alert streams load as empty: a
// manifest-only directory is still a readable run.
func LoadDir(dir string) (*RunData, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	rd := &RunData{Manifest: m}
	if err := readJSONL(filepath.Join(dir, StepsFile), func(line []byte) error {
		var ev obs.StepEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		rd.Steps = append(rd.Steps, ev)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	if err := readJSONL(filepath.Join(dir, AlertsFile), func(line []byte) error {
		var ev AlertEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		rd.Alerts = append(rd.Alerts, ev)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	if err := readJSONL(filepath.Join(dir, MemFile), func(line []byte) error {
		var s memprof.Sample
		if err := json.Unmarshal(line, &s); err != nil {
			return err
		}
		rd.Mem = append(rd.Mem, s)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	return rd, nil
}

// MemPeak returns the sample with the largest ledger total in a loaded
// timeline (zero Sample, false when the run has no memory timeline).
func (rd *RunData) MemPeak() (memprof.Sample, bool) {
	if rd == nil || len(rd.Mem) == 0 {
		return memprof.Sample{}, false
	}
	peak := rd.Mem[0]
	for _, s := range rd.Mem[1:] {
		if s.TotalBytes > peak.TotalBytes {
			peak = s
		}
	}
	return peak, true
}

// readJSONL streams a JSONL file line-by-line into fn. A missing file is
// empty; a trailing partial line (live run mid-write) is ignored.
func readJSONL(path string, fn func([]byte) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close() //apollo:allowdiscard file opened read-only; close cannot lose written bytes
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var last error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			// Only fatal if a later complete line follows; a bad final line
			// is a write in progress.
			last = err
			continue
		}
		if last != nil {
			return last
		}
	}
	return sc.Err()
}

// GC deletes run directories under root beyond the newest keep (by start
// time) or older than maxAge, returning the removed IDs. keep < 0 disables
// the count rule; maxAge <= 0 disables the age rule. Runs still marked
// "running" are spared when younger than a day — live jobs must survive a
// janitor pass, but a week-old "running" entry is a corpse.
func GC(root string, keep int, maxAge time.Duration) ([]string, error) {
	ms, err := List(root)
	if err != nil {
		return nil, err
	}
	now := time.Now().UTC()
	var removed []string
	for i, m := range ms {
		victim := false
		if keep >= 0 && len(ms)-i > keep {
			victim = true
		}
		if maxAge > 0 && now.Sub(m.Start) > maxAge {
			victim = true
		}
		if !victim {
			continue
		}
		if m.Status == StatusRunning && now.Sub(m.Start) < 24*time.Hour {
			continue
		}
		if err := os.RemoveAll(filepath.Join(root, m.ID)); err != nil {
			return removed, fmt.Errorf("runlog: gc %s: %w", m.ID, err)
		}
		removed = append(removed, m.ID)
	}
	return removed, nil
}
