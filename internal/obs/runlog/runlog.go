// Package runlog is the persistent experiment ledger: every training run
// writes a directory under a runs root —
//
//	runs/<id>/manifest.json   identity, config, host, timing, exit status
//	runs/<id>/steps.jsonl     one obs.StepEvent per training step
//	runs/<id>/alerts.jsonl    structured training-health alerts (watchdog.go)
//
// — turning per-process telemetry into a queryable record that outlives the
// process. The writer half (Run) is crash-honest: the manifest is written
// with status "running" before the first step, rewritten atomically on
// Finalize, and a run killed hard still leaves a readable entry. The reader
// half (reader.go) lists runs and loads series; diff.go aligns two runs to
// report first-divergence step, loss deltas at checkpoints, phase-time
// breakdown deltas and step-wall quantiles — the substrate of the
// `apollo-runs` CLI and the CI regression gate.
//
// Determinism contract: like the rest of internal/obs, the ledger records —
// it never feeds anything back into training. A run with a ledger attached
// is bit-identical to one without (train's TestTelemetryParity*).
package runlog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/obs"
)

// Manifest names and JSON schema version. Readers reject manifests from a
// future major version rather than misreading them.
const ManifestVersion = 1

// Exit statuses a finalized manifest can carry. A manifest still reading
// StatusRunning belongs to a live run — or to one that died too hard to
// finalize (kill -9), which is exactly the information a dangling "running"
// conveys.
const (
	StatusRunning     = "running"
	StatusOK          = "ok"
	StatusHalted      = "halted" // watchdog -halt-on-divergence abort
	StatusFailed      = "failed"
	StatusPanic       = "panic"
	StatusInterrupted = "interrupted"
)

// Host identifies the machine a run executed on — the fields that make two
// wall-time series comparable (or explain why they are not).
type Host struct {
	Hostname  string `json:"hostname,omitempty"`
	Cores     int    `json:"cores"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`
}

// CurrentHost captures the executing machine.
func CurrentHost() Host {
	h, _ := os.Hostname()
	return Host{
		Hostname:  h,
		Cores:     runtime.NumCPU(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	}
}

// Manifest is one run's identity card: everything needed to rerun it, plus
// the outcome. Written twice — at creation (Status "running", zero finals)
// and atomically rewritten by Finalize.
type Manifest struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	Command string `json:"command"` // "apollo-pretrain", "apollo-bench", …

	// Config is the full flag/knob set of the run (size, optimizer, steps,
	// batch, seq, rank, lr, seed, replicas, zero, accum, workers, …) as the
	// invoking command spelled it.
	Config map[string]any `json:"config,omitempty"`

	Optimizer string `json:"optimizer,omitempty"`
	Seed      uint64 `json:"seed"`
	Replicas  int    `json:"replicas,omitempty"`
	ZeRO      bool   `json:"zero,omitempty"`
	Host      Host   `json:"host"`

	Start  time.Time `json:"start"`
	End    time.Time `json:"end,omitzero"`
	Status string    `json:"status"`

	// Finals, populated by Finalize.
	Steps           int                `json:"steps,omitempty"`
	FinalLoss       float64            `json:"final_loss,omitempty"`
	FinalPPL        float64            `json:"final_ppl,omitempty"`
	StepWallSeconds float64            `json:"step_wall_seconds,omitempty"`
	PhaseSeconds    map[string]float64 `json:"phase_seconds,omitempty"`
	Alerts          int                `json:"alerts,omitempty"`
	Error           string             `json:"error,omitempty"`
}

// Final carries the end-of-run numbers into Finalize.
type Final struct {
	Steps           int
	FinalLoss       float64
	FinalPPL        float64
	StepWallSeconds float64
	PhaseSeconds    map[string]float64
	Error           string
}

// Ledger file names inside a run directory.
const (
	ManifestFile = "manifest.json"
	StepsFile    = "steps.jsonl"
	AlertsFile   = "alerts.jsonl"
	MemFile      = "mem.jsonl"
)

// runSeq disambiguates IDs minted within one timestamp tick by one process.
var runSeq atomic.Uint64

// NewID mints a run ID: UTC timestamp, a sanitized name (command, optimizer,
// size, …), the PID and a process-local sequence number — unique across
// concurrent runs on one host without coordination, and sortable by start
// time.
func NewID(parts ...string) string {
	name := sanitizeID(strings.Join(parts, "-"))
	return fmt.Sprintf("%s-%s-p%d.%d",
		time.Now().UTC().Format("20060102-150405"), name, os.Getpid(), runSeq.Add(1))
}

// sanitizeID keeps IDs filesystem- and shell-safe.
func sanitizeID(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			b.WriteRune(c)
		case c == ' ', c == '/':
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "run"
	}
	return b.String()
}

// Run is the writer half of one ledger entry. All methods are nil-receiver
// safe so callers wire a run (or not) without branching; Alert is
// additionally safe for concurrent use (the watchdog may fire from the
// training goroutine while a signal handler finalizes).
type Run struct {
	dir      string
	manifest Manifest

	steps  *os.File
	alerts *os.File
	alertW *obs.JSONLWriter

	mu        sync.Mutex
	mem       *os.File // lazily opened by MemWriter
	alertN    int
	finalized bool
}

// Create starts a ledger entry under root: makes runs/<id>/, writes the
// initial manifest (status "running"), and opens the step/alert streams.
// A zero m.ID gets a minted one; Start defaults to now; Version and Status
// are always stamped here.
func Create(root string, m Manifest) (*Run, error) {
	if m.ID == "" {
		m.ID = NewID(m.Command, m.Optimizer)
	}
	m.Version = ManifestVersion
	m.Status = StatusRunning
	if m.Start.IsZero() {
		m.Start = time.Now().UTC()
	}
	if m.Host == (Host{}) {
		m.Host = CurrentHost()
	}
	dir := filepath.Join(root, m.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	r := &Run{dir: dir, manifest: m}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	var err error
	if r.steps, err = os.Create(filepath.Join(dir, StepsFile)); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	if r.alerts, err = os.Create(filepath.Join(dir, AlertsFile)); err != nil {
		obs.CountWriteError(r.steps.Close())
		return nil, fmt.Errorf("runlog: %w", err)
	}
	r.alertW = obs.NewJSONLWriter(r.alerts)
	return r, nil
}

// ID returns the run's identifier ("" on a nil run).
func (r *Run) ID() string {
	if r == nil {
		return ""
	}
	return r.manifest.ID
}

// Dir returns the run directory ("" on a nil run).
func (r *Run) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// StepsWriter returns the open steps.jsonl stream for an obs.TrainRecorder
// (nil on a nil run — obs.NewTrainRecorder(nil) keeps summaries only).
func (r *Run) StepsWriter() io.Writer {
	if r == nil {
		return nil
	}
	return r.steps
}

// MemWriter returns an open mem.jsonl stream for a memprof.Profiler,
// creating the file on first call — run directories of memprof-disabled runs
// stay free of an empty mem.jsonl. Returns nil on a nil or finalized run, or
// when the file cannot be created (the profiler treats a nil writer as
// "no timeline", matching the rest of the disabled-mode contract).
func (r *Run) MemWriter() io.Writer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finalized {
		return nil
	}
	if r.mem == nil {
		f, err := os.Create(filepath.Join(r.dir, MemFile))
		if err != nil {
			return nil
		}
		r.mem = f
	}
	return r.mem
}

// Alert appends one structured alert to alerts.jsonl. The watchdog calls
// this through its Emit hook; write failures are counted by the obs layer
// (apollo_obs_write_errors_total), never dropped silently.
func (r *Run) Alert(ev AlertEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.alertN++
	r.mu.Unlock()
	r.alertW.Emit(ev)
}

// AlertCount returns how many alerts this run has recorded.
func (r *Run) AlertCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alertN
}

// Finalize stamps the end time, exit status and final metrics into the
// manifest (atomic rewrite) and closes the streams. Idempotent: only the
// first call wins, so the normal-exit defer, the failure path and the
// signal handler can all call it without coordinating. Nil-receiver safe.
func (r *Run) Finalize(status string, fin Final) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.finalized {
		r.mu.Unlock()
		return nil
	}
	r.finalized = true
	m := r.manifest
	m.End = time.Now().UTC()
	m.Status = status
	m.Steps = fin.Steps
	m.FinalLoss = fin.FinalLoss
	m.FinalPPL = fin.FinalPPL
	m.StepWallSeconds = fin.StepWallSeconds
	m.PhaseSeconds = fin.PhaseSeconds
	m.Alerts = r.alertN
	m.Error = fin.Error
	r.manifest = m
	mem := r.mem
	r.mu.Unlock()

	err := writeManifest(r.dir, m)
	if cerr := r.steps.Close(); err == nil {
		err = cerr
	}
	if cerr := r.alerts.Close(); err == nil {
		err = cerr
	}
	if mem != nil {
		if cerr := mem.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// writeManifest writes manifest.json atomically (temp + rename) so a reader
// — `apollo-runs watch`, a concurrent `list` — never observes a torn file.
func writeManifest(dir string, m Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runlog: encode manifest: %w", err)
	}
	blob = append(blob, '\n')
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	return nil
}
