package runlog

import (
	"math"
	"strings"
	"testing"

	"apollo/internal/obs"
)

// feedSteady runs n normal steps through the watchdog.
func feedSteady(w *Watchdog, n int, loss, wall float64) {
	for i := 0; i < n; i++ {
		w.ObserveStep(i+1, loss, 0.5, wall)
	}
}

func TestWatchdogNaNLossAlwaysArmed(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Halt: true})
	// Step 1, cold window: NaN/Inf checks need no warmup.
	if halt := w.ObserveStep(1, math.NaN(), 0.5, 0.01); !halt {
		t.Fatal("NaN loss did not halt")
	}
	al := w.Alerts()
	if len(al) != 1 || al[0].Kind != AlertNaNLoss || !al[0].Halt || al[0].Step != 1 {
		t.Fatalf("alerts: %+v", al)
	}
	if !w.Halted() {
		t.Fatal("Halted() false after halting alert")
	}
}

func TestWatchdogInfGradNorm(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{})
	if halt := w.ObserveStep(1, 2.0, math.Inf(1), 0.01); halt {
		t.Fatal("halted without Halt configured")
	}
	al := w.Alerts()
	if len(al) != 1 || al[0].Kind != AlertNaNGrad || al[0].Halt {
		t.Fatalf("alerts: %+v", al)
	}
}

func TestWatchdogSpikeAfterWarmup(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 8, Warmup: 4, SpikeFactor: 3, Halt: true})
	// A spike before warmup must not fire: the window is too cold to trust.
	if w.ObserveStep(1, 100, 0.5, 0.01) {
		t.Fatal("spike check armed before warmup")
	}
	w = NewWatchdog(WatchdogConfig{Window: 8, Warmup: 4, SpikeFactor: 3, Halt: true})
	feedSteady(w, 4, 2.0, 0.01)
	if halt := w.ObserveStep(5, 7.0, 0.5, 0.01); !halt {
		t.Fatal("3.5x median loss did not alert")
	}
	al := w.Alerts()
	if len(al) != 1 || al[0].Kind != AlertLossSpike {
		t.Fatalf("alerts: %+v", al)
	}
	if al[0].Median != 2.0 || al[0].Factor != 3.5 {
		t.Fatalf("median/factor wrong: %+v", al[0])
	}
}

func TestWatchdogNormalNoiseIsQuiet(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 8, Warmup: 4})
	// Losses wobbling well inside the spike factor, walls inside the stall
	// factor: zero alerts.
	losses := []float64{3.0, 2.9, 3.1, 2.8, 3.3, 2.7, 3.0, 2.95, 3.2, 2.85}
	walls := []float64{0.010, 0.012, 0.009, 0.011, 0.013, 0.010, 0.015, 0.008, 0.011, 0.010}
	for i := range losses {
		if w.ObserveStep(i+1, losses[i], 0.5, walls[i]) {
			t.Fatalf("halted at step %d", i+1)
		}
	}
	if len(w.Alerts()) != 0 {
		t.Fatalf("noisy-but-normal run raised %+v", w.Alerts())
	}
}

func TestWatchdogStallAlertsButNeverHalts(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 8, Warmup: 4, StallFactor: 10, Halt: true})
	feedSteady(w, 4, 2.0, 0.01)
	if halt := w.ObserveStep(5, 2.0, 0.5, 0.5); halt {
		t.Fatal("stall halted the run")
	}
	al := w.Alerts()
	if len(al) != 1 || al[0].Kind != AlertStall || al[0].Halt {
		t.Fatalf("alerts: %+v", al)
	}
	if w.Halted() {
		t.Fatal("Halted() true after stall-only alert")
	}
}

func TestWatchdogNaNStaysOutOfMedian(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 8, Warmup: 4, SpikeFactor: 3})
	feedSteady(w, 4, 2.0, 0.01)
	w.ObserveStep(5, math.NaN(), 0.5, 0.01)
	// The window median must still be 2.0 (NaN excluded), so a 7.0 loss
	// remains a detectable spike instead of NaN-poisoning every comparison.
	w.ObserveStep(6, 7.0, 0.5, 0.01)
	var kinds []string
	for _, a := range w.Alerts() {
		kinds = append(kinds, a.Kind)
	}
	if got := strings.Join(kinds, ","); got != "nan_loss,loss_spike" {
		t.Fatalf("alert kinds %q, want nan_loss,loss_spike", got)
	}
}

func TestWatchdogHookLossInjection(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Halt: true})
	w.HookLoss = func(step int, loss float64) float64 {
		if step == 3 {
			return math.NaN()
		}
		return loss
	}
	for i := 1; i <= 5; i++ {
		if halt := w.ObserveStep(i, 2.0, 0.5, 0.01); halt {
			if i != 3 {
				t.Fatalf("halted at step %d, want 3", i)
			}
			return
		}
	}
	t.Fatal("injected NaN never halted")
}

func TestWatchdogEmitAndMetrics(t *testing.T) {
	var emitted []AlertEvent
	reg := obs.NewRegistry()
	w := NewWatchdog(WatchdogConfig{
		Emit:    func(ev AlertEvent) { emitted = append(emitted, ev) },
		Metrics: reg,
	})
	w.ObserveStep(1, math.NaN(), 0.5, 0.01)
	w.ObserveStep(2, math.Inf(1), 0.5, 0.01)
	if len(emitted) != 2 {
		t.Fatalf("emit saw %d alerts, want 2", len(emitted))
	}
	if emitted[0].UnixUS == 0 {
		t.Fatal("alert not timestamped")
	}
	var b strings.Builder
	reg.RenderPrometheus(&b)
	expo := b.String()
	for _, want := range []string{
		`apollo_train_alerts_total{kind="nan_loss"} 2`,
	} {
		if !strings.Contains(expo, want) {
			t.Fatalf("exposition missing %q:\n%s", want, expo)
		}
	}
}

func TestNilWatchdogIsFree(t *testing.T) {
	var w *Watchdog
	if w.ObserveStep(1, math.NaN(), math.NaN(), -1) {
		t.Fatal("nil watchdog halted")
	}
	if w.Alerts() != nil || w.Halted() {
		t.Fatal("nil watchdog leaked state")
	}
}
