package runlog

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"apollo/internal/obs"
	"apollo/internal/obs/memprof"
)

// writeSteps appends n synthetic step events to a run's steps stream,
// starting at step from with the given losses (cycled).
func writeSteps(t *testing.T, r *Run, losses []float64) {
	t.Helper()
	w := obs.NewJSONLWriter(r.StepsWriter())
	for i, loss := range losses {
		ev := obs.StepEvent{
			Step: i + 1, Loss: loss, GradNorm: 0.5, LR: 1e-3,
			WallSeconds: 0.01 + float64(i%3)*0.001,
			Phases:      map[string]float64{"forward": 0.004, "backward": 0.006},
		}
		if err := w.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLedgerRoundtrip(t *testing.T) {
	root := t.TempDir()
	run, err := Create(root, Manifest{
		ID: "r1", Command: "test", Optimizer: "AdamW", Seed: 7, Replicas: 2, ZeRO: true,
		Config: map[string]any{"steps": 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The initial manifest must already be readable and honest: a run that
	// dies before Finalize leaves status "running".
	m0, err := ReadManifest(run.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if m0.Status != StatusRunning || m0.Version != ManifestVersion || m0.Start.IsZero() {
		t.Fatalf("initial manifest wrong: %+v", m0)
	}
	if m0.Host.GoVersion == "" || m0.Host.Cores < 1 {
		t.Fatalf("host not stamped: %+v", m0.Host)
	}

	writeSteps(t, run, []float64{3.0, 2.5, 2.0})
	run.Alert(AlertEvent{Step: 2, Kind: AlertLossSpike, Loss: 9, Median: 3, Factor: 3})
	if run.AlertCount() != 1 {
		t.Fatalf("AlertCount = %d, want 1", run.AlertCount())
	}
	if err := run.Finalize(StatusOK, Final{
		Steps: 3, FinalLoss: 2.0, FinalPPL: 7.39, StepWallSeconds: 0.03,
		PhaseSeconds: map[string]float64{"forward": 0.012},
	}); err != nil {
		t.Fatal(err)
	}
	// Finalize is idempotent: a later (signal-handler) call must not win.
	if err := run.Finalize(StatusInterrupted, Final{}); err != nil {
		t.Fatal(err)
	}

	rd, err := Load(root, "r1")
	if err != nil {
		t.Fatal(err)
	}
	m := rd.Manifest
	if m.Status != StatusOK || m.Steps != 3 || m.FinalLoss != 2.0 || m.Alerts != 1 {
		t.Fatalf("finalized manifest wrong: %+v", m)
	}
	if m.End.IsZero() || m.End.Before(m.Start) {
		t.Fatalf("end time wrong: start %v end %v", m.Start, m.End)
	}
	if m.Optimizer != "AdamW" || m.Seed != 7 || m.Replicas != 2 || !m.ZeRO {
		t.Fatalf("identity fields lost: %+v", m)
	}
	if len(rd.Steps) != 3 || rd.Steps[2].Loss != 2.0 || rd.Steps[0].Step != 1 {
		t.Fatalf("steps wrong: %+v", rd.Steps)
	}
	if len(rd.Alerts) != 1 || rd.Alerts[0].Kind != AlertLossSpike {
		t.Fatalf("alerts wrong: %+v", rd.Alerts)
	}
}

func TestNilRunIsSafe(t *testing.T) {
	var r *Run
	if r.ID() != "" || r.Dir() != "" || r.StepsWriter() != nil || r.AlertCount() != 0 {
		t.Fatal("nil run leaked state")
	}
	r.Alert(AlertEvent{})
	if err := r.Finalize(StatusOK, Final{}); err != nil {
		t.Fatal(err)
	}
}

func TestListSortsByStart(t *testing.T) {
	root := t.TempDir()
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i, id := range []string{"c", "a", "b"} {
		run, err := Create(root, Manifest{ID: id, Start: base.Add(time.Duration(2-i) * time.Hour)})
		if err != nil {
			t.Fatal(err)
		}
		run.Finalize(StatusOK, Final{})
	}
	// A torn directory (no manifest) must not break listing.
	if err := os.MkdirAll(filepath.Join(root, "torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	ms, err := List(root)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, m := range ms {
		ids = append(ids, m.ID)
	}
	want := []string{"b", "a", "c"} // ascending start time
	for i := range want {
		if i >= len(ids) || ids[i] != want[i] {
			t.Fatalf("list order %v, want %v", ids, want)
		}
	}
}

func TestReaderRejectsFutureVersion(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "future")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(Manifest{Version: ManifestVersion + 1, ID: "future"})
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("future manifest version accepted")
	}
}

func TestLoadToleratesTornTailLine(t *testing.T) {
	root := t.TempDir()
	run, err := Create(root, Manifest{ID: "torn"})
	if err != nil {
		t.Fatal(err)
	}
	writeSteps(t, run, []float64{1.0, 2.0})
	// A live run mid-write leaves a partial final line.
	if _, err := run.StepsWriter().Write([]byte(`{"step":3,"lo`)); err != nil {
		t.Fatal(err)
	}
	rd, err := Load(root, "torn")
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(rd.Steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(rd.Steps))
	}
}

func TestGC(t *testing.T) {
	root := t.TempDir()
	base := time.Now().UTC().Add(-100 * time.Hour)
	mk := func(id string, start time.Time, status string) {
		run, err := Create(root, Manifest{ID: id, Start: start})
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusRunning {
			run.Finalize(status, Final{})
		}
	}
	mk("old1", base, StatusOK)
	mk("old2", base.Add(time.Hour), StatusOK)
	mk("new1", time.Now().UTC().Add(-2*time.Hour), StatusOK)
	// A fresh still-running entry must survive any GC rule.
	mk("live", time.Now().UTC().Add(-time.Minute), StatusRunning)

	removed, err := GC(root, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, id := range removed {
		got[id] = true
	}
	if len(removed) != 2 || !got["old1"] || !got["old2"] {
		t.Fatalf("keep=2 removed %v, want old1+old2", removed)
	}
	ms, _ := List(root)
	if len(ms) != 2 { // new1 + live survive
		t.Fatalf("after gc: %d runs left", len(ms))
	}

	// Age rule: everything older than 1h goes, live is spared.
	removed, err = GC(root, -1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "new1" {
		t.Fatalf("age gc removed %v", removed)
	}
}

func TestDiffIdenticalAndDiverged(t *testing.T) {
	root := t.TempDir()
	mk := func(id string, losses []float64) *RunData {
		run, err := Create(root, Manifest{ID: id})
		if err != nil {
			t.Fatal(err)
		}
		writeSteps(t, run, losses)
		run.Finalize(StatusOK, Final{Steps: len(losses)})
		rd, err := Load(root, id)
		if err != nil {
			t.Fatal(err)
		}
		return rd
	}
	a := mk("a", []float64{3.0, 2.5, 2.0, 1.8})
	b := mk("b", []float64{3.0, 2.5, 2.0, 1.8})
	c := mk("c", []float64{3.0, 2.5, 2.1, 1.9, 1.7})

	same := Diff(a, b, DiffOptions{})
	if same.Failed() || same.FirstDivergence != -1 || same.MaxLossDelta != 0 {
		t.Fatalf("identical runs diffed as different: %+v", same)
	}
	if same.Steps != 4 || same.WallP50A <= 0 || same.WallP95A < same.WallP50A {
		t.Fatalf("alignment/quantiles wrong: %+v", same)
	}

	div := Diff(a, c, DiffOptions{})
	if !div.Failed() || !div.LossDiverged {
		t.Fatalf("diverged runs passed: %+v", div)
	}
	if div.FirstDivergence != 3 {
		t.Fatalf("first divergence at %d, want 3", div.FirstDivergence)
	}
	if div.ExtraB != 1 || div.Steps != 4 {
		t.Fatalf("extra-step accounting wrong: %+v", div)
	}
	want := 0.1
	if d := div.MaxLossDelta - want; d > 1e-12 || d < -1e-12 {
		t.Fatalf("max delta %g, want %g", div.MaxLossDelta, want)
	}

	// A tolerance above the divergence turns the same pair green.
	if Diff(a, c, DiffOptions{LossTol: 0.2}).Failed() {
		t.Fatal("tolerance did not absorb the divergence")
	}
}

func TestDiffTimeGate(t *testing.T) {
	root := t.TempDir()
	mk := func(id string, wall float64) *RunData {
		run, err := Create(root, Manifest{ID: id})
		if err != nil {
			t.Fatal(err)
		}
		w := obs.NewJSONLWriter(run.StepsWriter())
		for i := 0; i < 10; i++ {
			w.Emit(obs.StepEvent{Step: i + 1, Loss: 2.0, WallSeconds: wall})
		}
		run.Finalize(StatusOK, Final{})
		rd, err := Load(root, id)
		if err != nil {
			t.Fatal(err)
		}
		return rd
	}
	fast := mk("fast", 0.010)
	slow := mk("slow", 0.020)

	if Diff(fast, slow, DiffOptions{}).TimeRegressed {
		t.Fatal("time gate fired while disabled")
	}
	rep := Diff(fast, slow, DiffOptions{TimeTol: 0.5})
	if !rep.TimeRegressed || !rep.Failed() {
		t.Fatalf("2x slower run passed a 50%% gate: %+v", rep)
	}
	if Diff(fast, slow, DiffOptions{TimeTol: 1.5}).TimeRegressed {
		t.Fatal("2x slower run failed a 150% gate")
	}
	// The gate is one-directional: B faster than A never fails.
	if Diff(slow, fast, DiffOptions{TimeTol: 0.1}).TimeRegressed {
		t.Fatal("faster candidate flagged as regression")
	}
}

func TestDiffNaNMismatchIsDivergence(t *testing.T) {
	root := t.TempDir()
	run, err := Create(root, Manifest{ID: "nan"})
	if err != nil {
		t.Fatal(err)
	}
	// NaN cannot travel through JSON numbers; hand-write the line the way a
	// watchdog-adjacent tool might (JSON null decodes to 0 — what matters is
	// the reader side, so build RunData directly for the NaN case).
	writeSteps(t, run, []float64{1.0})
	run.Finalize(StatusOK, Final{})
	a, _ := Load(root, "nan")
	b := &RunData{Manifest: a.Manifest, Steps: []obs.StepEvent{{Step: 1, Loss: nan()}}}
	rep := Diff(a, b, DiffOptions{LossTol: 1e9})
	if !rep.LossDiverged {
		t.Fatal("NaN mismatch slipped past a huge tolerance")
	}
}

func nan() float64 { var z float64; return z / z }

func TestMemWriterAndLoad(t *testing.T) {
	root := t.TempDir()
	run, err := Create(root, Manifest{ID: "mem"})
	if err != nil {
		t.Fatal(err)
	}
	// mem.jsonl does not exist until the first MemWriter call.
	if _, err := os.Stat(filepath.Join(run.Dir(), MemFile)); !os.IsNotExist(err) {
		t.Fatalf("mem.jsonl exists before MemWriter: %v", err)
	}
	mp := memprof.New(memprof.Config{Out: run.MemWriter()})
	mp.Set("optimizer_state", 4096)
	mp.Sample(1)
	mp.Set("optimizer_state", 8192)
	mp.Sample(2)
	writeSteps(t, run, []float64{2.0, 1.5})
	if err := run.Finalize(StatusOK, Final{Steps: 2}); err != nil {
		t.Fatal(err)
	}
	// Finalized runs hand out no writer.
	if run.MemWriter() != nil {
		t.Fatal("MemWriter after Finalize")
	}

	rd, err := Load(root, "mem")
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Mem) != 2 {
		t.Fatalf("loaded %d mem samples, want 2", len(rd.Mem))
	}
	if rd.Mem[1].Components["optimizer_state"] != 8192 {
		t.Fatalf("sample 2 = %+v", rd.Mem[1])
	}
	peak, ok := rd.MemPeak()
	if !ok || peak.TotalBytes != 8192 || peak.Step != 2 {
		t.Fatalf("MemPeak = %+v ok=%v", peak, ok)
	}

	// A nil run's MemWriter is nil, and a profiler built on it still works.
	var nilRun *Run
	p2 := memprof.New(memprof.Config{Out: nilRun.MemWriter()})
	p2.Sample(1)
}

func TestDiffMemGate(t *testing.T) {
	root := t.TempDir()
	mk := func(id string, peak int64) *RunData {
		run, err := Create(root, Manifest{ID: id})
		if err != nil {
			t.Fatal(err)
		}
		mp := memprof.New(memprof.Config{Out: run.MemWriter()})
		mp.Set("optimizer_state", peak/2)
		mp.Sample(1)
		mp.Set("optimizer_state", peak)
		mp.Sample(2)
		writeSteps(t, run, []float64{2.0, 1.5})
		run.Finalize(StatusOK, Final{})
		rd, err := Load(root, id)
		if err != nil {
			t.Fatal(err)
		}
		return rd
	}
	small := mk("small", 1000)
	big := mk("big", 2000)

	if Diff(small, big, DiffOptions{}).MemRegressed {
		t.Fatal("mem gate fired while disabled")
	}
	rep := Diff(small, big, DiffOptions{MemTol: 0.5})
	if !rep.MemRegressed || !rep.Failed() {
		t.Fatalf("2x peak passed a 50%% gate: %+v", rep)
	}
	if rep.MemPeakA != 1000 || rep.MemPeakB != 2000 {
		t.Fatalf("peaks = %d / %d", rep.MemPeakA, rep.MemPeakB)
	}
	if Diff(small, big, DiffOptions{MemTol: 1.5}).MemRegressed {
		t.Fatal("2x peak failed a 150% gate")
	}
	// One-directional: a candidate using less memory never fails.
	if Diff(big, small, DiffOptions{MemTol: 0.1}).MemRegressed {
		t.Fatal("smaller candidate flagged as regression")
	}

	// A baseline without a memory timeline leaves the gate unarmed even
	// when a tolerance is set (pre-memprof baselines keep passing).
	bare, err := Create(root, Manifest{ID: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	writeSteps(t, bare, []float64{2.0, 1.5})
	bare.Finalize(StatusOK, Final{})
	bareRD, _ := Load(root, "bare")
	if Diff(bareRD, big, DiffOptions{MemTol: 0.01}).MemRegressed {
		t.Fatal("gate armed against a timeline-less baseline")
	}

	// The report renders the peaks and verdict.
	var buf bytes.Buffer
	rep.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "mem peak (ledger)") || !strings.Contains(out, "peak memory regressed") {
		t.Fatalf("report missing mem lines:\n%s", out)
	}
}
