package runlog

import (
	"math"
	"sort"
	"time"

	"apollo/internal/obs"
)

// Alert kinds the watchdog raises.
const (
	AlertNaNLoss   = "nan_loss"   // loss is NaN or ±Inf
	AlertNaNGrad   = "nan_grad"   // gradient norm is NaN or ±Inf
	AlertLossSpike = "loss_spike" // loss > SpikeFactor × trailing-window median
	AlertStall     = "stall"      // step wall > StallFactor × trailing median wall
)

// AlertEvent is the JSONL schema of one training-health alert
// (runs/<id>/alerts.jsonl).
type AlertEvent struct {
	Step        int     `json:"step"`
	Kind        string  `json:"kind"`
	Loss        float64 `json:"loss"`
	GradNorm    float64 `json:"grad_norm,omitempty"`
	Median      float64 `json:"median,omitempty"` // trailing-window reference value
	Factor      float64 `json:"factor,omitempty"` // observed / median
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	Halt        bool    `json:"halt"`
	UnixUS      int64   `json:"unix_us"`
}

// WatchdogConfig tunes the health checks. The zero value selects the
// defaults in parentheses.
type WatchdogConfig struct {
	// Window is the trailing-step count the loss/wall medians are computed
	// over (32).
	Window int
	// SpikeFactor flags a step whose loss exceeds this multiple of the
	// trailing-window median (3). <= 0 keeps the default; set very large to
	// effectively disable spike detection.
	SpikeFactor float64
	// StallFactor flags a step whose wall time exceeds this multiple of the
	// trailing median step wall (10). Stalls alert but never halt — a slow
	// step is suspicious, not divergent.
	StallFactor float64
	// Warmup is how many steps must fill the window before spike/stall
	// checks arm (8); NaN/Inf checks are always armed.
	Warmup int
	// Halt aborts the run on divergence (NaN/Inf or loss spike) — the
	// -halt-on-divergence flag. Alerts are recorded either way.
	Halt bool
	// Emit receives every alert (the ledger's Run.Alert, a logger, …).
	Emit func(AlertEvent)
	// Metrics, when set, counts alerts per kind in
	// apollo_train_alerts_total{kind=…}.
	Metrics *obs.Registry
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = 3
	}
	if c.StallFactor <= 0 {
		c.StallFactor = 10
	}
	if c.Warmup <= 0 {
		c.Warmup = 8
	}
	return c
}

// Watchdog is the training-health monitor both train loops feed once per
// step: it flags NaN/Inf loss or gradient norm, loss spikes above a multiple
// of the trailing-window median, and stalled steps, raising structured
// alerts into the ledger and obs counters. Purely observational — it reads
// the numbers the loop already computed and never touches model state, so a
// watched run is bit-identical to an unwatched one; with Halt set it may
// additionally stop the loop after the offending step completes.
//
// A Watchdog is owned by one training loop: ObserveStep must not be called
// concurrently. Nil-receiver safe — a nil watchdog costs one branch per step.
type Watchdog struct {
	cfg WatchdogConfig

	losses []float64 // trailing window, ring
	walls  []float64
	n      int // steps observed into the rings

	alerts []AlertEvent
	halted bool

	scratch []float64 // median workspace, reused

	// HookLoss, when non-nil, transforms the observed loss before any check
	// — a test seam for injecting NaN or spikes at a chosen step without
	// perturbing the actual training math (the returned value is only what
	// the watchdog sees).
	HookLoss func(step int, loss float64) float64
}

// NewWatchdog builds a watchdog; the zero config is fully usable.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	cfg = cfg.withDefaults()
	return &Watchdog{
		cfg:     cfg,
		losses:  make([]float64, 0, cfg.Window),
		walls:   make([]float64, 0, cfg.Window),
		scratch: make([]float64, 0, cfg.Window),
	}
}

// ObserveStep feeds one completed step and reports whether the run should
// halt (always false unless the config's Halt is set). step is 1-based.
func (w *Watchdog) ObserveStep(step int, loss, gradNorm, wallSeconds float64) (halt bool) {
	if w == nil {
		return false
	}
	if w.HookLoss != nil {
		loss = w.HookLoss(step, loss)
	}

	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	armed := w.n >= w.cfg.Warmup

	switch {
	case bad(loss):
		w.raise(AlertEvent{Step: step, Kind: AlertNaNLoss, Loss: loss, GradNorm: gradNorm,
			WallSeconds: wallSeconds, Halt: w.cfg.Halt})
	case bad(gradNorm):
		w.raise(AlertEvent{Step: step, Kind: AlertNaNGrad, Loss: loss, GradNorm: gradNorm,
			WallSeconds: wallSeconds, Halt: w.cfg.Halt})
	case armed:
		if med := w.median(w.losses); med > 0 && loss > w.cfg.SpikeFactor*med {
			w.raise(AlertEvent{Step: step, Kind: AlertLossSpike, Loss: loss, GradNorm: gradNorm,
				Median: med, Factor: loss / med, WallSeconds: wallSeconds, Halt: w.cfg.Halt})
		}
	}
	if armed && wallSeconds > 0 {
		if med := w.median(w.walls); med > 0 && wallSeconds > w.cfg.StallFactor*med {
			w.raise(AlertEvent{Step: step, Kind: AlertStall, Loss: loss,
				Median: med, Factor: wallSeconds / med, WallSeconds: wallSeconds})
		}
	}

	// Fold the step into the trailing windows after the checks, so every
	// comparison is against strictly preceding steps. NaN losses stay out —
	// one poisoned sample would turn every later median NaN.
	if !bad(loss) {
		w.push(&w.losses, loss)
	}
	if wallSeconds > 0 {
		w.push(&w.walls, wallSeconds)
	}
	w.n++
	return w.halted
}

// raise records and fans out one alert.
func (w *Watchdog) raise(ev AlertEvent) {
	ev.UnixUS = time.Now().UnixMicro()
	w.alerts = append(w.alerts, ev)
	if ev.Halt {
		w.halted = true
	}
	if w.cfg.Metrics != nil {
		w.cfg.Metrics.Counter("apollo_train_alerts_total",
			"Training-health alerts raised by the watchdog, by kind.",
			obs.Label{Key: "kind", Value: ev.Kind}).Inc()
	}
	if w.cfg.Emit != nil {
		w.cfg.Emit(ev)
	}
}

// push appends into a ring bounded at Window.
func (w *Watchdog) push(ring *[]float64, v float64) {
	r := *ring
	if len(r) < w.cfg.Window {
		*ring = append(r, v)
		return
	}
	copy(r, r[1:])
	r[len(r)-1] = v
}

// median of the ring (0 when empty). Sorting ≤ Window elements once per
// step is noise next to a forward/backward pass.
func (w *Watchdog) median(ring []float64) float64 {
	if len(ring) == 0 {
		return 0
	}
	s := append(w.scratch[:0], ring...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Alerts returns the alerts raised so far (nil-safe).
func (w *Watchdog) Alerts() []AlertEvent {
	if w == nil {
		return nil
	}
	return w.alerts
}

// Halted reports whether a halting alert fired (nil-safe).
func (w *Watchdog) Halted() bool { return w != nil && w.halted }
