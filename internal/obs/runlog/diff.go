package runlog

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"apollo/internal/obs"
)

// DiffOptions tunes run alignment and the pass/fail gates.
type DiffOptions struct {
	// LossTol is the largest |Δloss| tolerated at any aligned step before
	// the diff counts as a loss-curve divergence. 0 demands bit-equality —
	// the right gate for identical-seed reruns of a deterministic trainer.
	LossTol float64
	// TimeTol is the tolerated fractional step-wall regression: the diff
	// fails when B's p50 step wall exceeds A's by more than this fraction
	// (0.25 = 25% slower). <= 0 disables the time gate — wall times from
	// different hosts are not comparable.
	TimeTol float64
	// MemTol is the tolerated fractional peak-memory regression: the diff
	// fails when B's peak ledger total (mem.jsonl TotalBytes, the
	// shape-derived component sum — host-independent, unlike heap or RSS)
	// exceeds A's by more than this fraction. One-directional: B using less
	// memory than A never fails. <= 0 disables the gate; so does a baseline
	// with no memory timeline (pre-memprof baselines keep passing).
	MemTol float64
	// Checkpoints is how many evenly spaced loss checkpoints to report
	// (default 10; the final aligned step is always included).
	Checkpoints int
}

// CheckpointRow is one aligned loss comparison point.
type CheckpointRow struct {
	Step  int     `json:"step"`
	LossA float64 `json:"loss_a"`
	LossB float64 `json:"loss_b"`
	Delta float64 `json:"delta"` // B - A
}

// PhaseRow is one phase's total-seconds comparison.
type PhaseRow struct {
	Name     string  `json:"name"`
	SecondsA float64 `json:"seconds_a"`
	SecondsB float64 `json:"seconds_b"`
	FracA    float64 `json:"frac_a"` // share of A's summed phase time
	FracB    float64 `json:"frac_b"`
}

// DiffReport aligns two runs step-by-step. A is the reference (baseline),
// B the candidate.
type DiffReport struct {
	IDA, IDB string
	Steps    int // aligned steps (min of the two series)
	ExtraA   int // steps only A has beyond the aligned range
	ExtraB   int

	// FirstDivergence is the first aligned step whose losses differ bitwise
	// (-1: the aligned range is identical).
	FirstDivergence int
	MaxLossDelta    float64 // max |B-A| over aligned steps
	MaxLossStep     int

	Checkpoints []CheckpointRow
	Phases      []PhaseRow

	// Step-wall quantiles (seconds), rank-exact over each run's own steps.
	WallP50A, WallP95A float64
	WallP50B, WallP95B float64

	// Peak ledger totals (mem.jsonl TotalBytes); 0 when a run has no
	// memory timeline.
	MemPeakA, MemPeakB int64

	LossDiverged  bool // |Δ| > LossTol somewhere in the aligned range
	TimeRegressed bool // p50B > p50A × (1 + TimeTol), when the gate is armed
	MemRegressed  bool // peakB > peakA × (1 + MemTol), when the gate is armed
	LossTol       float64
	TimeTol       float64
	MemTol        float64
}

// Failed reports whether any gate tripped.
func (r *DiffReport) Failed() bool { return r.LossDiverged || r.TimeRegressed || r.MemRegressed }

// Diff aligns two loaded runs: per-step loss deltas with first-divergence
// step, loss checkpoints, phase-time breakdown deltas, and step-wall
// p50/p95. Steps are aligned by series position (both loops emit exactly
// one StepEvent per step, 1-based and sequential).
func Diff(a, b *RunData, opt DiffOptions) *DiffReport {
	if opt.Checkpoints <= 0 {
		opt.Checkpoints = 10
	}
	n := min(len(a.Steps), len(b.Steps))
	r := &DiffReport{
		IDA: a.Manifest.ID, IDB: b.Manifest.ID,
		Steps: n, ExtraA: len(a.Steps) - n, ExtraB: len(b.Steps) - n,
		FirstDivergence: -1,
		LossTol:         opt.LossTol, TimeTol: opt.TimeTol, MemTol: opt.MemTol,
	}
	for i := 0; i < n; i++ {
		la, lb := a.Steps[i].Loss, b.Steps[i].Loss
		if r.FirstDivergence < 0 && (la != lb) { //apollo:exactfloat first divergence is defined as the first bitwise difference
			r.FirstDivergence = a.Steps[i].Step
		}
		d := math.Abs(lb - la)
		// NaN in either run is a divergence wherever it appears.
		if math.IsNaN(la) != math.IsNaN(lb) {
			d = math.Inf(1)
			if r.FirstDivergence < 0 {
				r.FirstDivergence = a.Steps[i].Step
			}
		}
		if d > r.MaxLossDelta {
			r.MaxLossDelta = d
			r.MaxLossStep = a.Steps[i].Step
		}
	}
	r.LossDiverged = r.MaxLossDelta > opt.LossTol

	// Evenly spaced checkpoints over the aligned range, final step included.
	if n > 0 {
		span := n / opt.Checkpoints
		if span < 1 {
			span = 1
		}
		for i := span - 1; i < n; i += span {
			r.Checkpoints = append(r.Checkpoints, checkpointAt(a, b, i))
		}
		if last := r.Checkpoints[len(r.Checkpoints)-1]; last.Step != a.Steps[n-1].Step {
			r.Checkpoints = append(r.Checkpoints, checkpointAt(a, b, n-1))
		}
	}

	r.Phases = phaseRows(a, b)
	r.WallP50A, r.WallP95A = wallQuantiles(a.Steps)
	r.WallP50B, r.WallP95B = wallQuantiles(b.Steps)
	if opt.TimeTol > 0 && r.WallP50A > 0 {
		r.TimeRegressed = r.WallP50B > r.WallP50A*(1+opt.TimeTol)
	}
	if pa, ok := a.MemPeak(); ok {
		r.MemPeakA = pa.TotalBytes
	}
	if pb, ok := b.MemPeak(); ok {
		r.MemPeakB = pb.TotalBytes
	}
	if opt.MemTol > 0 && r.MemPeakA > 0 {
		r.MemRegressed = float64(r.MemPeakB) > float64(r.MemPeakA)*(1+opt.MemTol)
	}
	return r
}

func checkpointAt(a, b *RunData, i int) CheckpointRow {
	return CheckpointRow{
		Step:  a.Steps[i].Step,
		LossA: a.Steps[i].Loss,
		LossB: b.Steps[i].Loss,
		Delta: b.Steps[i].Loss - a.Steps[i].Loss,
	}
}

// phaseRows sums each run's per-step phase seconds and pairs them in
// canonical phase order (phases neither run hit are omitted).
func phaseRows(a, b *RunData) []PhaseRow {
	sum := func(rd *RunData) (map[string]float64, float64) {
		totals := map[string]float64{}
		var all float64
		for _, ev := range rd.Steps {
			for name, s := range ev.Phases {
				totals[name] += s
				all += s
			}
		}
		return totals, all
	}
	ta, allA := sum(a)
	tb, allB := sum(b)
	var rows []PhaseRow
	for _, name := range obs.PhaseNames() {
		sa, oka := ta[name]
		sb, okb := tb[name]
		if !oka && !okb {
			continue
		}
		row := PhaseRow{Name: name, SecondsA: sa, SecondsB: sb}
		if allA > 0 {
			row.FracA = sa / allA
		}
		if allB > 0 {
			row.FracB = sb / allB
		}
		rows = append(rows, row)
	}
	return rows
}

// wallQuantiles returns rank-exact p50/p95 of the per-step wall seconds
// (the obs.Histogram convention: the rank-⌈q·n⌉ order statistic).
func wallQuantiles(steps []obs.StepEvent) (p50, p95 float64) {
	if len(steps) == 0 {
		return 0, 0
	}
	walls := make([]float64, len(steps))
	for i, ev := range steps {
		walls[i] = ev.WallSeconds
	}
	sort.Float64s(walls)
	at := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(walls))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(walls) {
			rank = len(walls)
		}
		return walls[rank-1]
	}
	return at(0.50), at(0.95)
}

// Write renders the report for terminals and CI logs.
func (r *DiffReport) Write(w io.Writer) {
	fmt.Fprintf(w, "diff %s (A) vs %s (B)\n", r.IDA, r.IDB)
	fmt.Fprintf(w, "  aligned steps     %d", r.Steps)
	if r.ExtraA > 0 || r.ExtraB > 0 {
		fmt.Fprintf(w, "  (+%d only in A, +%d only in B)", r.ExtraA, r.ExtraB)
	}
	fmt.Fprintln(w)
	if r.FirstDivergence < 0 {
		fmt.Fprintf(w, "  loss curve        identical (bitwise) over the aligned range\n")
	} else {
		fmt.Fprintf(w, "  first divergence  step %d\n", r.FirstDivergence)
		fmt.Fprintf(w, "  max |Δloss|       %.6g at step %d (tol %.6g)\n", r.MaxLossDelta, r.MaxLossStep, r.LossTol)
	}
	if len(r.Checkpoints) > 0 {
		fmt.Fprintf(w, "  %-8s %12s %12s %12s\n", "step", "loss A", "loss B", "Δ (B-A)")
		for _, c := range r.Checkpoints {
			fmt.Fprintf(w, "  %-8d %12.6f %12.6f %+12.3e\n", c.Step, c.LossA, c.LossB, c.Delta)
		}
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "  %-10s %10s %10s %8s %8s\n", "phase", "A (s)", "B (s)", "A %", "B %")
		for _, p := range r.Phases {
			fmt.Fprintf(w, "  %-10s %10.3f %10.3f %7.1f%% %7.1f%%\n",
				p.Name, p.SecondsA, p.SecondsB, 100*p.FracA, 100*p.FracB)
		}
	}
	fmt.Fprintf(w, "  step wall p50     A %.4fs  B %.4fs\n", r.WallP50A, r.WallP50B)
	fmt.Fprintf(w, "  step wall p95     A %.4fs  B %.4fs\n", r.WallP95A, r.WallP95B)
	if r.MemPeakA > 0 || r.MemPeakB > 0 {
		fmt.Fprintf(w, "  mem peak (ledger) A %s  B %s", fmtBytes(r.MemPeakA), fmtBytes(r.MemPeakB))
		if r.MemTol > 0 && r.MemPeakA > 0 {
			fmt.Fprintf(w, "  (gate: B ≤ A × %.2f)", 1+r.MemTol)
		}
		fmt.Fprintln(w)
	}
	var fails []string
	if r.LossDiverged {
		fails = append(fails, fmt.Sprintf("loss divergence beyond tol %.6g", r.LossTol))
	}
	if r.TimeRegressed {
		fails = append(fails, fmt.Sprintf("p50 step wall regressed beyond %.0f%%", 100*r.TimeTol))
	}
	if r.MemRegressed {
		fails = append(fails, fmt.Sprintf("peak memory regressed beyond %.0f%%", 100*r.MemTol))
	}
	if len(fails) > 0 {
		fmt.Fprintf(w, "  verdict: FAIL (%s)\n", strings.Join(fails, "; "))
	} else {
		fmt.Fprintf(w, "  verdict: PASS\n")
	}
}

// fmtBytes renders byte counts human-first (diff/mem report cells).
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
