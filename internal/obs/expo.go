package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// RenderPrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family in registration order,
// then one sample line per instance — histograms expand into cumulative
// _bucket{le=...} lines plus _sum and _count. A nil registry renders
// nothing.
func (r *Registry) RenderPrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		fam := r.families[name]
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, in := range fam.instances {
			switch m := in.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, renderLabels(m.labels), m.Value())
			case *funcCounter:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, renderLabels(m.labels), m.fn())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, renderLabels(m.labels), formatValue(m.Value()))
			case *funcGauge:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, renderLabels(m.labels), formatValue(m.fn()))
			case *Histogram:
				cum := m.snapshot()
				for i, le := range m.le {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.name, renderLabels(m.labels, Label{"le", formatValue(le)}), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.name, renderLabels(m.labels, Label{"le", "+Inf"}), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam.name, renderLabels(m.labels), formatValue(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam.name, renderLabels(m.labels), m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteVars renders the registry as one JSON object — the GET /debug/vars
// view. Keys are "name{labels}"; counters and gauges map to their value,
// histograms to {count, sum, p50, p95, p99, max}. A nil registry renders
// "{}".
func (r *Registry) WriteVars(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	vars := map[string]any{}
	r.mu.Lock()
	for _, name := range r.order {
		fam := r.families[name]
		for _, in := range fam.instances {
			key := fam.name + renderLabels(in.labelSet())
			switch m := in.(type) {
			case *Counter:
				vars[key] = m.Value()
			case *funcCounter:
				vars[key] = m.fn()
			case *Gauge:
				vars[key] = m.Value()
			case *funcGauge:
				vars[key] = m.fn()
			case *Histogram:
				hv := map[string]any{
					"count": m.Count(),
					"sum":   m.Sum(),
					"p50":   m.Quantile(0.50),
					"p95":   m.Quantile(0.95),
					"p99":   m.Quantile(0.99),
				}
				if m.Count() > 0 {
					hv["max"] = math.Float64frombits(m.max.Load())
				}
				vars[key] = hv
			}
		}
	}
	r.mu.Unlock()
	blob, err := json.MarshalIndent(vars, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// renderLabels formats a label set as {k="v",...} with proper escaping, or
// "" when empty.
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float the exposition way: shortest round-trip
// decimal, infinities as +Inf/-Inf.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
