package obs

import (
	"math"
	"sync"
)

// HistogramWindow is a rolling readout over a Histogram: quantiles and
// counts computed from only the observations recorded since the last
// Rotate. The cumulative histograms this package exposes are the right
// shape for Prometheus but the wrong shape for a live control signal — a
// load-shedding decision must react to the last second of queue waits, not
// the lifetime distribution — so a window remembers the cumulative bucket
// counts at its last rotation and reads quantiles off the delta.
//
// The underlying histogram keeps absorbing observations lock-free; the
// window never copies or resets it, so any number of windows (and the
// /metrics exposition) can read the same histogram independently.
//
// One approximation: the delta has no per-window maximum, so a windowed
// quantile landing in the +Inf overflow bucket reports the histogram's
// lifetime maximum — an upper bound, which is the conservative direction
// for a shed signal. All methods are nil-receiver safe, like every other
// obs handle.
type HistogramWindow struct {
	h    *Histogram
	mu   sync.Mutex
	prev []int64 // cumulative bucket counts at the last rotation
}

// Window returns a fresh window over the histogram, starting now: only
// observations recorded after this call are visible until the first
// Rotate. A nil histogram yields a nil (disabled) window.
func (h *Histogram) Window() *HistogramWindow {
	if h == nil {
		return nil
	}
	return &HistogramWindow{h: h, prev: h.snapshot()}
}

// Rotate advances the window start to now: observations recorded before
// this call stop counting toward Quantile and Count.
func (w *HistogramWindow) Rotate() {
	if w == nil {
		return
	}
	snap := w.h.snapshot()
	w.mu.Lock()
	w.prev = snap
	w.mu.Unlock()
}

// delta returns cumulative bucket counts over the window (aligned with the
// histogram's buckets; the last element is the window's observation count).
func (w *HistogramWindow) delta() []int64 {
	snap := w.h.snapshot()
	w.mu.Lock()
	for i := range snap {
		snap[i] -= w.prev[i]
	}
	w.mu.Unlock()
	return snap
}

// Count returns how many observations the window holds.
func (w *HistogramWindow) Count() int64 {
	if w == nil {
		return 0
	}
	d := w.delta()
	return d[len(d)-1]
}

// Quantile returns the q-quantile (0 < q <= 1) of the windowed
// observations at bucket resolution — the same rank-exact rule as
// Histogram.Quantile, restricted to observations since the last Rotate.
// An empty window returns 0.
func (w *HistogramWindow) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	d := w.delta()
	n := d[len(d)-1]
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	for i, cum := range d {
		if cum >= rank {
			if i < len(w.h.le) {
				return w.h.le[i]
			}
			// Overflow bucket: no windowed max exists; the lifetime max is
			// the conservative upper bound.
			return math.Float64frombits(w.h.max.Load())
		}
	}
	return math.Float64frombits(w.h.max.Load())
}
