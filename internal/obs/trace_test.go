package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTracerSpans verifies the JSONL span stream: one event per End, child
// spans share the parent's trace and point back at it, attrs survive, and
// root spans get fresh trace IDs (the request-ID contract).
func TestTracerSpans(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)

	root := tr.Start("http /v1/perplexity")
	if root.TraceID() == "" {
		t.Fatalf("root span must carry a trace ID")
	}
	child := root.Child("score")
	child.Attr("batch", 4).End()
	root.Attr("status", 200).End()
	second := tr.Start("http /v1/logprob")
	second.End()

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d events, want 3:\n%s", len(lines), b.String())
	}
	type ev struct {
		Trace, Span, Parent, Name string
		StartUS                   int64          `json:"start_us"`
		DurUS                     int64          `json:"dur_us"`
		Attrs                     map[string]any `json:"attrs"`
	}
	var evs [3]ev
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &evs[i]); err != nil {
			t.Fatalf("event %d not valid JSON: %v\n%s", i, err, line)
		}
	}
	// Emission order: child ends first, then root, then the second root.
	if evs[0].Name != "score" || evs[1].Name != "http /v1/perplexity" {
		t.Fatalf("unexpected event order: %q, %q", evs[0].Name, evs[1].Name)
	}
	if evs[0].Trace != evs[1].Trace {
		t.Fatalf("child trace %q != parent trace %q", evs[0].Trace, evs[1].Trace)
	}
	if evs[0].Parent != evs[1].Span {
		t.Fatalf("child parent %q != parent span %q", evs[0].Parent, evs[1].Span)
	}
	if evs[1].Parent != "" {
		t.Fatalf("root span has parent %q", evs[1].Parent)
	}
	if evs[2].Trace == evs[1].Trace {
		t.Fatalf("second root must start a fresh trace")
	}
	if evs[1].Trace != root.TraceID() {
		t.Fatalf("emitted trace %q != TraceID() %q", evs[1].Trace, root.TraceID())
	}
	if evs[0].Attrs["batch"].(float64) != 4 || evs[1].Attrs["status"].(float64) != 200 {
		t.Fatalf("attrs lost: %v / %v", evs[0].Attrs, evs[1].Attrs)
	}
	if evs[0].DurUS < 0 || evs[0].StartUS <= 0 {
		t.Fatalf("nonsense timing: start %d dur %d", evs[0].StartUS, evs[0].DurUS)
	}
}

// TestNilTracer pins disabled mode: nil tracer, nil spans, every method a
// no-op, TraceID empty.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatalf("nil tracer must hand out nil spans")
	}
	s.Attr("k", 1).Child("y").End()
	s.End()
	if s.TraceID() != "" {
		t.Fatalf("nil span TraceID must be empty")
	}
	if NewTracer(nil) != nil {
		t.Fatalf("NewTracer(nil) must be nil")
	}
}

// TestTrainRecorderSummary checks totals accumulation and the JSONL step
// stream schema.
func TestTrainRecorderSummary(t *testing.T) {
	var b strings.Builder
	rec := NewTrainRecorder(&b)
	var phases [NumPhases]time.Duration
	phases[PhaseForward] = 100 * time.Millisecond
	phases[PhaseBackward] = 200 * time.Millisecond
	rec.RecordStep(1, 5.5, 1.25, 0.01, 350*time.Millisecond, phases)
	rec.RecordStep(2, 5.0, 1.5, 0.02, 300*time.Millisecond, phases)

	steps, wall, totals := rec.Summary()
	if steps != 2 {
		t.Fatalf("steps = %d, want 2", steps)
	}
	if wall != 0.65 {
		t.Fatalf("wall = %g, want 0.65", wall)
	}
	if totals["forward"] != 0.2 || totals["backward"] != 0.4 {
		t.Fatalf("totals = %v", totals)
	}
	if _, ok := totals["data"]; ok {
		t.Fatalf("zero phases must be omitted from the summary")
	}

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL events, want 2", len(lines))
	}
	var ev StepEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("step event not valid JSON: %v", err)
	}
	if ev.Step != 1 || ev.Loss != 5.5 || ev.GradNorm != 1.25 || ev.LR != 0.01 {
		t.Fatalf("step event fields wrong: %+v", ev)
	}
	if ev.Phases["forward"] != 0.1 || ev.Phases["backward"] != 0.2 {
		t.Fatalf("step event phases wrong: %v", ev.Phases)
	}

	// Nil recorder: all no-ops.
	var nilRec *TrainRecorder
	nilRec.RecordStep(1, 0, 0, 0, 0, phases)
	if s, w, p := nilRec.Summary(); s != 0 || w != 0 || p != nil {
		t.Fatalf("nil recorder summary = %d %g %v", s, w, p)
	}
}

// failWriter fails every Write after the first n succeed.
type failWriter struct{ ok int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.ok > 0 {
		f.ok--
		return len(p), nil
	}
	return 0, errShort
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "disk full" }

// TestWriteErrorsCounted: telemetry write failures are not silently dropped —
// they land in the process counter and the exported metric, while Emit still
// surfaces the error to callers who want it.
func TestWriteErrorsCounted(t *testing.T) {
	before := WriteErrors()
	w := NewJSONLWriter(&failWriter{ok: 1})
	if err := w.Emit(StepEvent{Step: 1}); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if err := w.Emit(StepEvent{Step: 2}); err == nil {
		t.Fatal("failed write returned nil error")
	}
	if got := WriteErrors() - before; got != 1 {
		t.Fatalf("counter moved by %d, want 1", got)
	}

	reg := NewRegistry()
	InstrumentWriteErrors(reg)
	var b strings.Builder
	reg.RenderPrometheus(&b)
	if !strings.Contains(b.String(), "apollo_obs_write_errors_total") {
		t.Fatalf("write-error metric not exported:\n%s", b.String())
	}
}
