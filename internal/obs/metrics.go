// Package obs is the zero-dependency observability layer shared by every
// subsystem: an atomic metrics registry (counters, gauges, fixed-bucket
// histograms with rank-exact quantile readout) rendered in Prometheus text
// exposition, a lightweight span/trace facility emitting a JSONL event
// stream, per-step training telemetry, and opt-in net/http/pprof wiring.
//
// Cost contract: instrumentation must never tax an uninstrumented hot path
// with more than one predictable branch per event. Every mutating method is
// nil-receiver safe — a nil *Registry hands out nil *Counter/*Gauge/
// *Histogram handles, and Inc/Set/Observe on a nil handle is a single
// `if x == nil` branch. Code therefore instruments unconditionally and the
// caller decides by wiring a registry or not.
//
// Determinism contract: obs records wall time and event counts only; it
// never touches model state, RNG cursors or kernel scheduling, so enabling
// any of it leaves every bit-parity contract (`-replicas N` ≡ `-replicas 1`,
// served == offline) intact.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to a metric instance.
type Label struct {
	Key, Value string
}

// LatencyBuckets spans 100µs … 10s exponentially — the default layout for
// request/queue-wait latency histograms.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets covers small integer sizes (batch rows, chunk counts) in
// powers of two.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Registry holds metric families and renders them (expo.go). The zero
// registry from NewRegistry is ready to use; a nil *Registry is the
// disabled mode — every constructor returns a nil handle.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// family groups every instance sharing one metric name: they must agree on
// type and help, and histograms on bucket layout.
type family struct {
	name, help, typ string
	buckets         []float64
	instances       []instance
}

// instance is one concrete metric with its bound label set.
type instance interface {
	labelSet() []Label
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup finds or creates the family, enforcing name/type/help agreement,
// then returns the existing instance with the identical label set (nil if
// none). Callers hold no locks; lookup takes r.mu and leaves it held via the
// returned unlock func so get-or-create is atomic.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []Label) (*family, instance) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, buckets: buckets}
		r.families[name] = fam
		r.order = append(r.order, name)
		return fam, nil
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.typ, typ))
	}
	if typ == "histogram" && !equalBuckets(fam.buckets, buckets) {
		panic(fmt.Sprintf("obs: metric %q requested with a different bucket layout", name))
	}
	for _, in := range fam.instances {
		if equalLabels(in.labelSet(), labels) {
			return fam, in
		}
	}
	return fam, nil
}

// Counter returns the counter with this name and label set, creating it on
// first use. Nil-safe: a nil registry returns a nil (disabled) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, in := r.lookup(name, help, "counter", nil, labels)
	if in != nil {
		return in.(*Counter)
	}
	c := &Counter{labels: labels}
	fam.instances = append(fam.instances, c)
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for monotonic counts something else already tracks (the obs
// write-error total). fn must be monotonically non-decreasing for the
// exposition to stay a valid counter. Nil-safe no-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, in := r.lookup(name, help, "counter", nil, labels)
	if in != nil {
		panic(fmt.Sprintf("obs: counter %q%v already registered", name, labels))
	}
	fam.instances = append(fam.instances, &funcCounter{labels: labels, fn: fn})
}

// Gauge returns the gauge with this name and label set, creating it on
// first use. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, in := r.lookup(name, help, "gauge", nil, labels)
	if in != nil {
		return in.(*Gauge)
	}
	g := &Gauge{labels: labels}
	fam.instances = append(fam.instances, g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render time —
// for values something else already tracks (queue depth, pool width).
// Nil-safe no-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, in := r.lookup(name, help, "gauge", nil, labels)
	if in != nil {
		panic(fmt.Sprintf("obs: gauge %q%v already registered", name, labels))
	}
	fam.instances = append(fam.instances, &funcGauge{labels: labels, fn: fn})
}

// Histogram returns the histogram with this name, bucket layout and label
// set, creating it on first use. buckets must be strictly ascending upper
// bounds; nil selects LatencyBuckets. An implicit +Inf bucket is always
// appended. Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, in := r.lookup(name, help, "histogram", buckets, labels)
	if in != nil {
		return in.(*Histogram)
	}
	h := newHistogram(buckets, labels)
	fam.instances = append(fam.instances, h)
	return h
}

// Counter is a monotonically increasing integer metric. All methods are
// nil-receiver safe: the disabled form costs one branch.
type Counter struct {
	v      atomic.Int64
	labels []Label
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (must be >= 0 for the exposition to stay valid; not enforced
// on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 when disabled).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) labelSet() []Label { return c.labels }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits   atomic.Uint64
	labels []Label
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 when disabled).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) labelSet() []Label { return g.labels }

// funcGauge reads its value from a callback at render time.
type funcGauge struct {
	fn     func() float64
	labels []Label
}

func (g *funcGauge) labelSet() []Label { return g.labels }

// funcCounter reads a monotonic count from a callback at render time.
type funcCounter struct {
	fn     func() int64
	labels []Label
}

func (c *funcCounter) labelSet() []Label { return c.labels }

// Histogram counts observations into fixed buckets (upper bounds le[i],
// plus an implicit +Inf overflow bucket) and tracks sum, count and the
// maximum observed value. Observe is lock-free; quantile readout is exact
// with respect to the bucket counts: Quantile(q) returns the upper bound of
// the bucket containing the rank-⌈q·n⌉ observation (the maximum observed
// value for the overflow bucket), so repeated readouts of an unchanged
// histogram are bit-identical — no interpolation, no sampling.
type Histogram struct {
	le     []float64
	counts []atomic.Int64 // len(le)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
	max    atomic.Uint64 // float64 bits of the largest observation
	labels []Label
}

func newHistogram(le []float64, labels []Label) *Histogram {
	h := &Histogram{le: le, counts: make([]atomic.Int64, len(le)+1), labels: labels}
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.le, v) // first bucket with le >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns the q-quantile (0 < q <= 1) at bucket resolution: the
// upper bound of the bucket holding the rank-⌈q·n⌉ observation, or the
// maximum observed value when that rank falls in the +Inf overflow bucket.
// An empty histogram returns 0 by convention (keeps JSON renderings and
// bench tables finite). Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.le) {
				return h.le[i]
			}
			return math.Float64frombits(h.max.Load())
		}
	}
	// Unreachable: cum == n >= rank by the loop's end.
	return math.Float64frombits(h.max.Load())
}

func (h *Histogram) labelSet() []Label { return h.labels }

// snapshot returns cumulative bucket counts aligned with le (the +Inf
// cumulative count equals Count()).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func equalLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //apollo:exactfloat bucket layouts are identical only when bitwise identical
			return false
		}
	}
	return true
}
