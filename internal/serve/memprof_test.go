package serve

import (
	"bytes"
	"runtime"
	"testing"

	"apollo/internal/obs"
	"apollo/internal/obs/memprof"
)

// TestEvictionMemoryAccounting pins the serve half of the memory ledger: an
// LRU eviction must take the evicted snapshot's bytes out of the
// apollo_mem_bytes{component="serve_snapshots"} gauge, the gauge must agree
// with apollo_serve_resident_models at every point, and after eviction + GC
// the resident accounting is back to the one-model baseline.
func TestEvictionMemoryAccounting(t *testing.T) {
	metrics := obs.NewRegistry()
	reg := newTestRegistry(t, Config{MaxModels: 1, Metrics: metrics})

	dirA, dirB := t.TempDir(), t.TempDir()
	pathA, _ := trainAndSave(t, dirA, 1)
	pathB, _ := trainAndSave(t, dirB, 2)

	snapshotGauges := func() (snapBytes, models float64) {
		t.Helper()
		var buf bytes.Buffer
		if err := metrics.RenderPrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		expo := buf.String()
		return metricValue(t, expo, `apollo_mem_bytes{component="serve_snapshots"}`),
			metricValue(t, expo, "apollo_serve_resident_models")
	}

	ledgerTotal := func() int64 {
		var total int64
		for _, e := range reg.Entries() {
			total += e.ResidentBytes()
		}
		return total
	}

	eA, err := reg.Acquire(pathA)
	if err != nil {
		t.Fatal(err)
	}
	gauge, models := snapshotGauges()
	if models != 1 {
		t.Fatalf("resident_models = %v after first acquire", models)
	}
	if gauge != float64(eA.ResidentBytes()) || int64(gauge) != ledgerTotal() {
		t.Fatalf("gauge %v != resident %d (ledger %d)", gauge, eA.ResidentBytes(), ledgerTotal())
	}
	baseline := gauge

	// Second acquire evicts A (MaxModels 1): A's bytes must leave the
	// component ledger in the same breath.
	eB, err := reg.Acquire(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", reg.Evictions())
	}
	gauge, models = snapshotGauges()
	if models != 1 {
		t.Fatalf("resident_models = %v after eviction", models)
	}
	if gauge != float64(eB.ResidentBytes()) {
		t.Fatalf("gauge %v still carries evicted bytes (B resident = %d)", gauge, eB.ResidentBytes())
	}

	// Eviction + GC returns the accounting to the one-model baseline — the
	// evicted model is genuinely unreachable, not parked in a leaked slot.
	eA = nil //nolint:ineffassign // drop the last strong reference before GC
	runtime.GC()
	gauge, models = snapshotGauges()
	if models != 1 || gauge != baseline {
		t.Fatalf("after GC: gauge %v models %v, want baseline %v / 1 (equal-shape snapshots)", gauge, models, baseline)
	}
	if int64(gauge) != ledgerTotal() {
		t.Fatalf("gauge %v != ledger %d after GC", gauge, ledgerTotal())
	}
}

// TestServeMemprofComponents covers the explicit-profiler path: a
// caller-owned profiler records serve_snapshots with its live ServeBytes
// prediction and the batcher_buffers component in a sampled timeline.
func TestServeMemprofComponents(t *testing.T) {
	mp := memprof.New(memprof.Config{})
	reg := newTestRegistry(t, Config{MaxModels: 2, MemProf: mp})
	path, _ := trainAndSave(t, t.TempDir(), 1)
	e, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}

	s := mp.Sample(0)
	if got := s.Components[memprof.CompServeSnapshots]; got != e.ResidentBytes() {
		t.Fatalf("serve_snapshots = %d, resident = %d", got, e.ResidentBytes())
	}
	if _, ok := s.Components[memprof.CompBatcherBuffers]; !ok {
		t.Fatalf("batcher_buffers missing: %v", s.Components)
	}
	pred, ok := s.Predicted[memprof.CompServeSnapshots]
	if !ok || pred != float64(e.PredictedBytes()) {
		t.Fatalf("prediction = %v (ok=%v), ServeBytes = %d", pred, ok, e.PredictedBytes())
	}
	// Memory contract: measured within 2% of the analytic prediction, and
	// the recorded delta says the same.
	delta := s.DeltaFrac[memprof.CompServeSnapshots]
	if delta < -0.02 || delta > 0.02 {
		t.Fatalf("measured-vs-predicted delta %.4f outside ±2%%", delta)
	}

	// An idle batcher pins nothing.
	if got := e.batcher.queuedBytes(); got != 0 {
		t.Fatalf("idle queuedBytes = %d", got)
	}
	q := []*scoreReq{newScoreReq([]int{1, 2, 3}, []int{4, 5})}
	if err := e.batcher.score(q); err != nil {
		t.Fatal(err)
	}
	if q[0].result == 0 {
		t.Fatal("scored request returned 0")
	}
}
