package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"apollo/internal/obs"
)

// responseCache memoizes the marshaled response bodies of the pure scoring
// endpoints (perplexity, logprob, zeroshot), keyed by the snapshot's load
// sequence plus a canonical encoding of the query. Caching is
// bit-transparent by construction: the stored bytes are exactly what the
// first compute marshaled, every scoring query is a deterministic function
// of (weights, query), and the key's load sequence is bumped by every
// snapshot load — so a hot reload (or an eviction followed by a reload of a
// changed file) makes every stale entry unreachable for free; the dead
// entries age out through the LRU bound.
//
// Fine-tune responses are never cached: a tuning job is a training run, not
// a scoring query, and callers vary seeds expecting fresh runs.
type responseCache struct {
	max int

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *cacheEnt
	byKey map[string]*list.Element

	hits, misses, evicts atomic.Int64
	m                    *cacheMetrics // nil when uninstrumented
}

type cacheEnt struct {
	key  string
	blob []byte
}

// cacheMetrics is the cache's observability surface; record methods are
// nil-receiver safe like every other obs handle in this package.
type cacheMetrics struct {
	hits, misses, evicts *obs.Counter
}

func newCacheMetrics(o *obs.Registry) *cacheMetrics {
	if o == nil {
		return nil
	}
	return &cacheMetrics{
		hits:   o.Counter("apollo_serve_cache_hits_total", "Scoring queries answered from the response cache."),
		misses: o.Counter("apollo_serve_cache_misses_total", "Scoring queries that had to compute (and filled the cache)."),
		evicts: o.Counter("apollo_serve_cache_evictions_total", "Response-cache entries evicted by the entry-count bound."),
	}
}

func (m *cacheMetrics) hit() {
	if m == nil {
		return
	}
	m.hits.Inc()
}

func (m *cacheMetrics) miss() {
	if m == nil {
		return
	}
	m.misses.Inc()
}

func (m *cacheMetrics) evicted() {
	if m == nil {
		return
	}
	m.evicts.Inc()
}

func newResponseCache(max int, o *obs.Registry) *responseCache {
	return &responseCache{
		max:   max,
		lru:   list.New(),
		byKey: map[string]*list.Element{},
		m:     newCacheMetrics(o),
	}
}

// get returns the cached response body for key, refreshing its LRU
// position.
func (c *responseCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		c.m.miss()
		return nil, false
	}
	c.hits.Add(1)
	c.m.hit()
	return el.Value.(*cacheEnt).blob, true
}

// put stores a computed response body, evicting least-recently-used entries
// beyond the bound. Two racing computes of the same key store identical
// bytes (determinism contract), so last-write-wins is safe.
func (c *responseCache) put(key string, blob []byte) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEnt).blob = blob
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEnt{key: key, blob: blob})
	evicted := 0
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*cacheEnt).key)
		evicted++
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.evicts.Add(int64(evicted))
		for i := 0; i < evicted; i++ {
			c.m.evicted()
		}
	}
}

// Len reports the resident entry count.
func (c *responseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// entryKey prefixes a canonical query with the snapshot's identity. The
// load sequence — not the per-path generation — is the invalidation tag: it
// is unique across every load the registry ever performed, so an entry
// evicted and later reloaded from a changed file can never resurrect a
// stale response (per-path generations restart at 1 after an eviction and
// would collide).
func entryKey(e *Entry, canon string) string {
	var b strings.Builder
	b.Grow(len(e.Path) + len(canon) + 24)
	b.WriteString(strconv.FormatInt(e.loadSeq, 10))
	b.WriteByte('|')
	b.WriteString(e.Path)
	b.WriteByte('|')
	b.WriteString(canon)
	return b.String()
}

// canonInts appends a canonical rendering of an int slice (length-prefixed
// so [1],[2] and [1,2],[] cannot collide).
func canonInts(b *strings.Builder, xs []int) {
	b.WriteString(strconv.Itoa(len(xs)))
	b.WriteByte(':')
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
}
