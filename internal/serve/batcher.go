package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/tensor"
)

// errClosed reports a query racing an entry swap: the registry already
// superseded this entry (hot reload or eviction) and its executor is
// draining. Registry.WithEntry transparently retries on the successor.
var errClosed = errors.New("serve: snapshot superseded")

// errQueueFull reports a submission bounced off the executor's admission
// bound: accepting it would grow the pending queue beyond maxQueue. Unlike
// errClosed this is not retried internally — it maps to 429 so the client
// backs off instead of the queue growing without bound.
var errQueueFull = errors.New("serve: executor queue full, retry later")

// scoreReq is one option-scoring unit: the mean log-probability of the
// option tokens conditioned on the context — exactly eval.OptionLogProb's
// length-normalized rule, including its empty-context handling (the first
// option token has no conditioning position; queries with nothing
// scoreable return 0).
type scoreReq struct {
	seq    []int // context + option
	start  int   // first scored logits position; -1 = nothing scoreable
	result float64
	err    error
}

func newScoreReq(context, option []int) *scoreReq {
	seq := make([]int, 0, len(context)+len(option))
	seq = append(seq, context...)
	seq = append(seq, option...)
	if len(option) == 0 || len(seq) < 2 {
		return &scoreReq{seq: seq, start: -1}
	}
	start := len(context) - 1
	if start < 0 {
		start = 0
	}
	return &scoreReq{seq: seq, start: start}
}

// execReq is a whole-unit operation on the served model (perplexity over
// validation batches); it runs exclusively, like every batcher item.
type execReq struct {
	fn   func(m *nn.Model)
	err  error
	done chan struct{}
}

// item is one queue element: either a scoring unit or an exec unit.
type item struct {
	score *scoreReq
	wg    *sync.WaitGroup // completion of the score's submitting call
	exec  *execReq
	enq   time.Time // stamped at submit when the batcher is instrumented
}

// batcherMetrics is the coalescing observability surface shared by every
// batcher of one registry. Record methods are nil-receiver safe.
type batcherMetrics struct {
	queueWait *obs.Histogram
	batchSize *obs.Histogram
	forwards  *obs.Counter
	scored    *obs.Counter
	execs     *obs.Counter
}

func newBatcherMetrics(o *obs.Registry) *batcherMetrics {
	if o == nil {
		return nil
	}
	return &batcherMetrics{
		queueWait: o.Histogram("apollo_serve_batch_queue_wait_seconds",
			"Time a queued unit waited for its snapshot executor.", obs.LatencyBuckets),
		batchSize: o.Histogram("apollo_serve_batch_size",
			"Scoring sequences coalesced into one batched forward.", obs.SizeBuckets),
		forwards: o.Counter("apollo_serve_batched_forwards_total", "Batched forward passes run for scoring units."),
		scored:   o.Counter("apollo_serve_scored_seqs_total", "Scoring units completed."),
		execs:    o.Counter("apollo_serve_execs_total", "Whole-unit operations (perplexity, finetune) run on snapshot executors."),
	}
}

func (m *batcherMetrics) waited(d time.Duration) {
	if m == nil {
		return
	}
	m.queueWait.Observe(d.Seconds())
}

func (m *batcherMetrics) forward(k int) {
	if m == nil {
		return
	}
	m.batchSize.Observe(float64(k))
	m.forwards.Inc()
	m.scored.Add(int64(k))
}

func (m *batcherMetrics) exec() {
	if m == nil {
		return
	}
	m.execs.Inc()
}

// Stats counts the batcher's coalescing behavior.
type Stats struct {
	Forwards     int64 // batched forward passes run for score units
	ScoredSeqs   int64 // scoring units completed
	LargestBatch int64 // max sequences coalesced into one forward
	Execs        int64 // whole-unit operations run
}

// batcher serializes all model access for one Entry through a single
// executor goroutine and coalesces queued scoring units into batched
// forwards: units with equal sequence length stack into one
// model.Forward(tokens, k, t) call of up to maxBatch rows. Stacking is
// bit-transparent — every op in the forward pass is row-local or
// per-(batch,head)-local and the runtime kernels accumulate each output
// row in a fixed order — so a unit's result never depends on what it was
// batched with (TestBatchedScoringMatchesEval pins this against
// eval.OptionLogProb).
type batcher struct {
	model    *nn.Model
	maxBatch int
	maxQueue int             // pending-item bound; 0 = unbounded
	om       *batcherMetrics // nil when uninstrumented (one branch per event)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []item
	closed bool
	stats  Stats
}

func newBatcher(model *nn.Model, maxBatch, maxQueue int, om *batcherMetrics) *batcher {
	b := &batcher{model: model, maxBatch: maxBatch, maxQueue: maxQueue, om: om}
	b.cond = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// score submits units and waits for all of them; units with nothing
// scoreable complete immediately with result 0.
func (b *batcher) score(reqs []*scoreReq) error {
	var wg sync.WaitGroup
	items := make([]item, 0, len(reqs))
	for _, rq := range reqs {
		if rq.start < 0 {
			rq.result = 0
			continue
		}
		wg.Add(1)
		items = append(items, item{score: rq, wg: &wg})
	}
	if len(items) == 0 {
		return nil
	}
	if err := b.submit(items...); err != nil {
		return err
	}
	wg.Wait()
	for _, rq := range reqs {
		if rq.err != nil {
			return rq.err
		}
	}
	return nil
}

// exec submits a whole-unit operation and waits for it.
func (b *batcher) exec(fn func(m *nn.Model)) error {
	e := &execReq{fn: fn, done: make(chan struct{})}
	if err := b.submit(item{exec: e}); err != nil {
		return err
	}
	<-e.done
	return e.err
}

func (b *batcher) submit(items ...item) error {
	if b.om != nil {
		now := time.Now()
		for i := range items {
			items[i].enq = now
		}
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosed
	}
	// Admission bound: all-or-nothing, so a multi-unit zero-shot query never
	// half-enqueues. The executor drains the whole queue each wake, so this
	// bounds instantaneous backlog — and therefore worst-case queue wait.
	if b.maxQueue > 0 && len(b.queue)+len(items) > b.maxQueue {
		b.mu.Unlock()
		return errQueueFull
	}
	b.queue = append(b.queue, items...)
	b.mu.Unlock()
	b.cond.Signal()
	return nil
}

// close marks the batcher superseded. Already-queued work drains; new
// submissions get errClosed. Non-blocking — the registry may call it while
// holding locks.
func (b *batcher) close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		b.cond.Broadcast()
	}
}

// Stats returns a snapshot of the coalescing counters.
func (b *batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// itemOverheadBytes approximates one queued item's fixed cost beyond its
// token slice: the item struct, the scoreReq/execReq it points at, and slice
// headers. A round number — the ledger wants honest magnitude, not
// allocator-exact audits.
const itemOverheadBytes = 128

// queuedBytes measures the memory pinned by the pending queue: token-slice
// storage (8 bytes per int) plus the fixed per-item overhead. This is the
// "batcher_buffers" component of the registry's memory ledger.
func (b *batcher) queuedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for _, it := range b.queue {
		total += itemOverheadBytes
		if it.score != nil {
			total += 8 * int64(cap(it.score.seq))
		}
	}
	return total
}

func (b *batcher) loop() {
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		batch := b.queue
		b.queue = nil
		closed := b.closed
		b.mu.Unlock()

		if len(batch) > 0 {
			b.process(batch)
		}
		if closed {
			// submit checks closed under the lock, so nothing can trail in:
			// everything queued before close has now been answered.
			return
		}
	}
}

// process runs one drained queue: scoring units grouped and batched first,
// then exec units in arrival order. Results are order-independent — every
// unit depends only on its own inputs and the immutable weights.
func (b *batcher) process(batch []item) {
	if b.om != nil {
		now := time.Now()
		for _, it := range batch {
			b.om.waited(now.Sub(it.enq))
		}
	}
	groups := map[int][]item{}
	var lens []int
	for _, it := range batch {
		if it.score == nil {
			continue
		}
		l := len(it.score.seq)
		if _, ok := groups[l]; !ok {
			lens = append(lens, l)
		}
		groups[l] = append(groups[l], it)
	}
	for _, l := range lens {
		g := groups[l]
		for at := 0; at < len(g); at += b.maxBatch {
			hi := at + b.maxBatch
			if hi > len(g) {
				hi = len(g)
			}
			b.scoreChunk(g[at:hi], l-1)
		}
	}
	for _, it := range batch {
		if it.exec == nil {
			continue
		}
		it.exec.err = b.safely(func() { it.exec.fn(b.model) })
		b.mu.Lock()
		b.stats.Execs++
		b.mu.Unlock()
		b.om.exec()
		close(it.exec.done)
	}
}

// scoreChunk stacks k equal-length units into one batched forward and
// scores each unit from its own rows.
func (b *batcher) scoreChunk(chunk []item, t int) {
	k := len(chunk)
	err := b.safely(func() {
		tokens := make([]int, 0, k*t)
		for _, it := range chunk {
			tokens = append(tokens, it.score.seq[:t]...)
		}
		logits := b.model.Forward(tokens, k, t)
		for i, it := range chunk {
			rq := it.score
			var total float64
			for pos := rq.start; pos < t; pos++ {
				row := logits.Row(i*t + pos)
				total += float64(row[rq.seq[pos+1]]) - tensor.LogSumExp(row)
			}
			rq.result = total / float64(t-rq.start)
		}
	})
	for _, it := range chunk {
		if err != nil {
			it.score.err = err
		}
		it.wg.Done()
	}
	b.mu.Lock()
	b.stats.Forwards++
	b.stats.ScoredSeqs += int64(k)
	if int64(k) > b.stats.LargestBatch {
		b.stats.LargestBatch = int64(k)
	}
	b.mu.Unlock()
	b.om.forward(k)
}

// safely converts a panic in served work into an error on the query — a
// malformed request must never take the executor (and the service) down.
// The failure is the executor's, not the caller's, so it carries a 500.
func (b *batcher) safely(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = internalErr(fmt.Errorf("serve: query failed: %v", r))
		}
	}()
	f()
	return nil
}
