package serve

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/obs"
)

// errShedOverload reports a compute query rejected by admission control:
// the recent queue-wait p95 crossed the shed threshold, so accepting more
// work would only grow the queue. Mapped to 429 with Retry-After; cache
// hits are still served while shedding (they never touch an executor).
var errShedOverload = errors.New("serve: overloaded, queue-wait p95 over shed threshold; retry later")

// admission is the load-shedding controller: a rolling window over the
// batcher queue-wait histogram (the signal PR 5 built) read as a live p95
// gauge. The controller rotates the window lazily on the request path —
// at most once per interval — so it needs no background goroutine: each
// admitted request (and each /readyz probe) refreshes the verdict, and an
// idle server decays back to admitting within one rotation because an
// empty window sheds nothing.
type admission struct {
	threshold float64 // seconds of queue-wait p95 beyond which new compute is shed
	interval  time.Duration
	win       *obs.HistogramWindow

	mu       sync.Mutex
	last     time.Time
	shedding atomic.Bool
	p95      atomic.Uint64 // float64 bits of the last windowed p95
}

func newAdmission(threshold, interval time.Duration, queueWait *obs.Histogram, o *obs.Registry) *admission {
	a := &admission{
		threshold: threshold.Seconds(),
		interval:  interval,
		win:       queueWait.Window(),
		last:      time.Now(),
	}
	o.GaugeFunc("apollo_serve_queue_wait_p95_seconds",
		"Queue-wait p95 over the last shed window — the live load-shedding signal.",
		func() float64 { return math.Float64frombits(a.p95.Load()) })
	o.GaugeFunc("apollo_serve_shedding",
		"1 while admission control is shedding new compute queries, 0 otherwise.",
		func() float64 {
			if a.Shedding() {
				return 1
			}
			return 0
		})
	return a
}

// maybeRotate re-evaluates the shed verdict once per interval: read the
// windowed p95, record it, rotate, and flip the shedding state. An empty
// window (no queued work since the last rotation) always re-admits.
func (a *admission) maybeRotate() {
	a.mu.Lock()
	if now := time.Now(); now.Sub(a.last) >= a.interval {
		a.last = now
		p95 := a.win.Quantile(0.95)
		n := a.win.Count()
		a.win.Rotate()
		a.p95.Store(math.Float64bits(p95))
		a.shedding.Store(n > 0 && p95 > a.threshold)
	}
	a.mu.Unlock()
}

// allow reports whether a new compute query may proceed. Nil-safe: a nil
// controller (shedding disabled) admits everything.
func (a *admission) allow() bool {
	if a == nil {
		return true
	}
	a.maybeRotate()
	return !a.shedding.Load()
}

// Shedding reports the current verdict without admitting anything — the
// /readyz backpressure signal. It refreshes the window like allow so a
// recovered server flips back to ready on the next probe.
func (a *admission) Shedding() bool {
	if a == nil {
		return false
	}
	a.maybeRotate()
	return a.shedding.Load()
}
