package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"apollo/internal/eval"
	"apollo/internal/train"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, string, *Registry) {
	t.Helper()
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 3)
	reg := newTestRegistry(t, cfg)
	ts := httptest.NewServer(NewServer(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, path, reg
}

func postJSON(t *testing.T, url string, req any, resp any) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), resp); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	}
	return r.StatusCode, buf.String()
}

// TestHTTPPerplexityExactText: the HTTP surface preserves the determinism
// contract — loss_text is the shortest round-trip rendering of the exact
// offline train.Validate value, under concurrent requests.
func TestHTTPPerplexityExactText(t *testing.T) {
	dir := t.TempDir()
	path, ref := trainAndSave(t, dir, 3)
	reg := newTestRegistry(t, Config{})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	offline := train.Validate(ref, serveTestCorpus(t), 4, 4, 16)
	wantText := strconv.FormatFloat(offline, 'g', -1, 64)

	var wg sync.WaitGroup
	const n = 6
	texts := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp perplexityResponse
			status, raw := postJSON(t, ts.URL+"/v1/perplexity",
				perplexityRequest{Checkpoint: path, Batches: 4, Batch: 4, Seq: 16}, &resp)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, raw)
				return
			}
			texts[i] = resp.LossText
			if resp.Loss != offline {
				t.Errorf("served loss %v != offline %v", resp.Loss, offline)
			}
		}(i)
	}
	wg.Wait()
	for i, txt := range texts {
		if txt != wantText {
			t.Fatalf("request %d loss_text %q != offline %q", i, txt, wantText)
		}
	}
}

func TestHTTPLogProbAndZeroShot(t *testing.T) {
	dir := t.TempDir()
	path, ref := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	ctx, opt := []int{1, 2, 3, 4}, []int{5, 6, 7}
	var lp logProbResponse
	if status, raw := postJSON(t, ts.URL+"/v1/logprob",
		logProbRequest{Checkpoint: path, Context: ctx, Option: opt}, &lp); status != http.StatusOK {
		t.Fatalf("logprob status %d: %s", status, raw)
	}
	if want := eval.OptionLogProb(ref, ctx, opt); lp.LogProb != want {
		t.Fatalf("served logprob %v != eval %v", lp.LogProb, want)
	}

	// Explicit items, including an empty context (the fixed panic path).
	var zs zeroShotResponse
	req := zeroShotRequest{Checkpoint: path, Items: []zeroShotItem{
		{Context: []int{1, 2}, Options: [][]int{{3, 4}, {5, 6}}, Answer: 0},
		{Context: nil, Options: [][]int{{7, 8}, {9, 10}, {11, 12}}, Answer: 2},
	}}
	if status, raw := postJSON(t, ts.URL+"/v1/zeroshot", req, &zs); status != http.StatusOK {
		t.Fatalf("zeroshot status %d: %s", status, raw)
	}
	if zs.Accuracy < 0 || zs.Accuracy > 1 {
		t.Fatalf("accuracy %v out of bounds", zs.Accuracy)
	}

	// Generated-suite mode with small tasks.
	var suite zeroShotResponse
	if status, raw := postJSON(t, ts.URL+"/v1/zeroshot",
		zeroShotRequest{Checkpoint: path, SuiteSeed: 7, ItemsPerTask: 2}, &suite); status != http.StatusOK {
		t.Fatalf("suite status %d: %s", status, raw)
	}
	if len(suite.Tasks) != 10 {
		t.Fatalf("%d suite tasks, want 10", len(suite.Tasks))
	}
}

func TestHTTPFineTuneAndModels(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	var ft fineTuneResponse
	req := fineTuneRequest{
		Checkpoint: path,
		Task:       fineTuneTask{Name: "probe", Train: 12, Test: 8, CtxLen: 8, Classes: 2, Seed: 3},
		Epochs:     1, Batch: 4,
	}
	if status, raw := postJSON(t, ts.URL+"/v1/finetune", req, &ft); status != http.StatusOK {
		t.Fatalf("finetune status %d: %s", status, raw)
	}
	if ft.Accuracy < 0 || ft.Accuracy > 1 {
		t.Fatalf("accuracy %v out of bounds", ft.Accuracy)
	}

	r, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var models struct {
		Models []modelInfo `json:"models"`
		Loads  int64       `json:"loads"`
	}
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 1 || models.Loads != 1 {
		t.Fatalf("models listing %+v", models)
	}
	m := models.Models[0]
	if m.Checkpoint != path || m.Step != 2 || m.ResidentBytes <= 0 {
		t.Fatalf("model info %+v", m)
	}
	if dev := float64(m.PredictedBytes-m.ResidentBytes) / float64(m.ResidentBytes); dev < -0.02 || dev > 0.02 {
		t.Fatalf("predicted %d vs resident %d bytes: %+.2f%%", m.PredictedBytes, m.ResidentBytes, dev*100)
	}

	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", r, err)
	}
}

// TestHTTPErrors pins the status contract per failure class: caller
// mistakes are 400, a checkpoint path the service cannot see is 404, a file
// the service owns but cannot load is 500, an oversized body is 413.
func TestHTTPErrors(t *testing.T) {
	ts, path, _ := newTestServer(t, Config{})

	// A file that exists and stats fine but is not a checkpoint: the load
	// itself fails, which is the service's 500, not the caller's 400.
	garbage := filepath.Join(t.TempDir(), "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		url  string
		req  any
		want int
	}{
		{"missing checkpoint", "/v1/perplexity", perplexityRequest{Checkpoint: "/does/not/exist"}, http.StatusNotFound},
		{"corrupt checkpoint", "/v1/perplexity", perplexityRequest{Checkpoint: garbage}, http.StatusInternalServerError},
		{"bad token", "/v1/logprob", logProbRequest{Checkpoint: path, Context: []int{1}, Option: []int{9999}}, http.StatusBadRequest},
		{"no items", "/v1/zeroshot", zeroShotRequest{Checkpoint: path}, http.StatusBadRequest},
		{"bad answer", "/v1/zeroshot", zeroShotRequest{Checkpoint: path,
			Items: []zeroShotItem{{Options: [][]int{{1}}, Answer: 5}}}, http.StatusBadRequest},
		{"bad task", "/v1/finetune", fineTuneRequest{Checkpoint: path}, http.StatusBadRequest},
		{"negative ctx_len", "/v1/finetune", fineTuneRequest{Checkpoint: path,
			Task: fineTuneTask{Train: 1, Test: 1, CtxLen: -1, Classes: 2}}, http.StatusBadRequest},
		{"unbounded items_per_task", "/v1/zeroshot", zeroShotRequest{Checkpoint: path,
			SuiteSeed: 1, ItemsPerTask: 1 << 30}, http.StatusBadRequest},
		{"negative batches", "/v1/perplexity", perplexityRequest{Checkpoint: path, Batches: -1}, http.StatusBadRequest},
		{"negative batch", "/v1/perplexity", perplexityRequest{Checkpoint: path, Batch: -8}, http.StatusBadRequest},
		{"negative seq", "/v1/perplexity", perplexityRequest{Checkpoint: path, Seq: -32}, http.StatusBadRequest},
		{"negative finetune batch", "/v1/finetune", fineTuneRequest{Checkpoint: path,
			Task: fineTuneTask{Train: 1, Test: 1, CtxLen: 4, Classes: 2}, Batch: -1}, http.StatusBadRequest},
		{"unknown field", "/v1/perplexity", map[string]any{"checkpoint": path, "nope": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, raw := postJSON(t, ts.URL+tc.url, tc.req, nil)
		if status != tc.want {
			t.Fatalf("%s: status %d (%s), want %d", tc.name, status, raw, tc.want)
		}
		var er errorResponse
		if err := json.Unmarshal([]byte(raw), &er); err != nil || er.Error == "" {
			t.Fatalf("%s: malformed error body %q", tc.name, raw)
		}
	}
}

// TestHTTPStatusMapping drives httpStatus directly: every error class the
// serve layer produces lands on its documented status.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"validation", fmt.Errorf("serve: tokens out of vocab"), http.StatusBadRequest},
		{"not exist", &os.PathError{Op: "stat", Path: "/x", Err: fs.ErrNotExist}, http.StatusNotFound},
		{"permission", fmt.Errorf("open: %w", fs.ErrPermission), http.StatusNotFound},
		{"queue full", errQueueFull, http.StatusTooManyRequests},
		{"shed overload", errShedOverload, http.StatusTooManyRequests},
		{"wrapped queue full", fmt.Errorf("submit: %w", errQueueFull), http.StatusTooManyRequests},
		{"superseded", errClosed, http.StatusServiceUnavailable},
		{"internal", internalErr(fmt.Errorf("decode failed")), http.StatusInternalServerError},
		{"wrapped internal", fmt.Errorf("load: %w", internalErr(fmt.Errorf("bad magic"))), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := httpStatus(tc.err); got != tc.want {
			t.Errorf("%s: httpStatus = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestHTTPBodyLimit: a body over Config.MaxBodyBytes answers 413 before any
// checkpoint work happens.
func TestHTTPBodyLimit(t *testing.T) {
	ts, path, _ := newTestServer(t, Config{MaxBodyBytes: 512})

	huge := logProbRequest{Checkpoint: path, Context: make([]int, 4096), Option: []int{1}}
	status, raw := postJSON(t, ts.URL+"/v1/logprob", huge, nil)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%s), want 413", status, raw)
	}

	// A body under the cap still works.
	small := logProbRequest{Checkpoint: path, Context: []int{1, 2}, Option: []int{3}}
	if status, raw := postJSON(t, ts.URL+"/v1/logprob", small, nil); status != http.StatusOK {
		t.Fatalf("small body: status %d (%s), want 200", status, raw)
	}
}

// TestHTTPReadiness walks /readyz through its lifecycle: 503 while the
// registry is empty (warming up), 200 once a snapshot has loaded, 503 again
// when the server starts draining — while /healthz stays 200 throughout.
func TestHTTPReadiness(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	api := NewServer(reg)
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	get := func(route string) (int, map[string]any) {
		t.Helper()
		r, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Fatalf("%s: bad body: %v", route, err)
		}
		return r.StatusCode, body
	}

	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("empty registry readyz: %d %v", status, body)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("healthz not 200 while warming up: %d", status)
	}

	// Any served request loads a snapshot; perplexity is the cheapest.
	if status, raw := postJSON(t, ts.URL+"/v1/perplexity",
		perplexityRequest{Checkpoint: path, Batches: 1, Batch: 2, Seq: 8}, nil); status != http.StatusOK {
		t.Fatalf("warmup request failed: %d %s", status, raw)
	}
	if status, body := get("/readyz"); status != http.StatusOK || body["ready"] != true {
		t.Fatalf("loaded readyz: %d %v", status, body)
	}

	api.SetDraining(true)
	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || body["draining"] != true {
		t.Fatalf("draining readyz: %d %v", status, body)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("healthz not 200 while draining: %d", status)
	}
	api.SetDraining(false)
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Fatalf("readyz did not recover after drain cleared: %d", status)
	}
}
