package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"apollo/internal/data"
	"apollo/internal/obs"
	"apollo/internal/optim"
	"apollo/internal/train"
)

// Server is the HTTP/JSON surface over a Registry. Endpoints (all JSON):
//
//	GET  /healthz        liveness
//	GET  /readyz         readiness: 503 until a snapshot has loaded, and during drain
//	GET  /v1/models      resident snapshots (LRU order) with footprints
//	POST /v1/perplexity  {checkpoint, batches, batch, seq}
//	POST /v1/logprob     {checkpoint, context, option}
//	POST /v1/zeroshot    {checkpoint, items:[...]} or {checkpoint, suite_seed, items_per_task}
//	POST /v1/finetune    {checkpoint, task:{...}, epochs, batch, lr, optimizer}
//
// Exact-value floats travel twice: as a JSON number and as a shortest
// round-trip string (loss_text and friends), so shell clients can compare
// served results bit-for-bit against offline values without a float parser.
type Server struct {
	reg      *Registry
	draining atomic.Bool
}

// NewServer wraps a registry.
func NewServer(reg *Registry) *Server { return &Server{reg: reg} }

// SetDraining flips the readiness state: while draining, GET /readyz
// answers 503 so load balancers stop routing new traffic, while in-flight
// requests (and /healthz liveness) keep working. cmd/apollo-serve sets it
// on SIGINT/SIGTERM before calling http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the routed HTTP handler. Besides the query API it serves
// the observability surface: GET /metrics (Prometheus text exposition over
// Config.Metrics), GET /debug/vars (the same registry as JSON, with
// histogram quantiles), and — when Config.Pprof is set — net/http/pprof
// under /debug/pprof/. Every API endpoint is wrapped in the metrics/tracing
// middleware; with neither configured the wrap is the identity.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.wrap("/healthz", s.handleHealth))
	mux.HandleFunc("GET /readyz", s.wrap("/readyz", s.handleReady))
	mux.HandleFunc("GET /v1/models", s.wrap("/v1/models", s.handleModels))
	mux.HandleFunc("POST /v1/perplexity", s.wrap("/v1/perplexity", s.handlePerplexity))
	mux.HandleFunc("POST /v1/logprob", s.wrap("/v1/logprob", s.handleLogProb))
	mux.HandleFunc("POST /v1/zeroshot", s.wrap("/v1/zeroshot", s.handleZeroShot))
	mux.HandleFunc("POST /v1/finetune", s.wrap("/v1/finetune", s.handleFineTune))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	if s.reg.cfg.Pprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// wrap is the per-endpoint observability middleware: request counter,
// error counter (status >= 400), latency histogram, and one trace span per
// request whose trace ID is echoed as X-Request-Id.
func (s *Server) wrap(path string, h http.HandlerFunc) http.HandlerFunc {
	o, tracer := s.reg.cfg.Metrics, s.reg.cfg.Tracer
	if o == nil && tracer == nil {
		return h
	}
	lbl := obs.Label{Key: "path", Value: path}
	reqs := o.Counter("apollo_http_requests_total", "HTTP requests served, by endpoint.", lbl)
	errs := o.Counter("apollo_http_errors_total", "HTTP requests answered with status >= 400, by endpoint.", lbl)
	lat := o.Histogram("apollo_http_request_seconds", "HTTP request latency, by endpoint.", obs.LatencyBuckets, lbl)
	return func(w http.ResponseWriter, r *http.Request) {
		span := tracer.Start("http " + path)
		if id := span.TraceID(); id != "" {
			w.Header().Set("X-Request-Id", id)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		lat.Observe(time.Since(start).Seconds())
		reqs.Inc()
		if sw.code >= 400 {
			errs.Inc()
		}
		span.Attr("status", sw.code).End()
	}
}

// statusWriter captures the response status for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.cfg.Metrics.RenderPrometheus(w)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.cfg.Metrics.WriteVars(w)
}

// NewHTTPServer wraps h in an http.Server with production traffic
// hardening: header/read/idle timeouts bound slow or idle clients, and the
// write timeout is generous because finetune queries synchronously train a
// model clone before answering. Callers own Shutdown (see cmd/apollo-serve
// for the SIGINT/SIGTERM draining wiring).
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServe builds a registry over cfg, preloads the given checkpoint
// paths, and serves the API on addr until the listener fails. The server
// carries NewHTTPServer's timeouts; for graceful shutdown build the pieces
// explicitly and call Shutdown on the returned server.
func ListenAndServe(addr string, cfg Config, paths []string) error {
	reg, err := NewRegistry(cfg)
	if err != nil {
		return err
	}
	for _, p := range paths {
		if _, err := reg.Acquire(p); err != nil {
			return err
		}
	}
	return NewHTTPServer(addr, NewServer(reg).Handler()).ListenAndServe()
}

// ExactFloat renders a float as its shortest round-trip decimal — the
// loss_text/accuracy_text contract shared by the server and the CLIs, so
// shell clients can compare served results bit-for-bit without a float
// parser.
func ExactFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// exact is the package-internal shorthand for ExactFloat.
func exact(v float64) string { return ExactFloat(v) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before touching the ResponseWriter: an unencodable value must
	// surface as a 500, not a 200 with an empty body.
	blob, err := json.Marshal(v)
	if err != nil {
		blob, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("serve: encode response: %v", err)})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(blob)
	w.Write([]byte("\n"))
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeBlob sends an already-marshaled response body — the cache-hit path.
// Byte-compatible with writeJSON: same Content-Type, same trailing newline,
// so a cached response is char-for-char what the first compute sent.
func writeBlob(w http.ResponseWriter, status int, blob []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(blob)
	w.Write([]byte("\n"))
}

// writeQueryError maps a query error to its status (status.go) and answers.
// 429s carry Retry-After (one shed window, the soonest the verdict can flip)
// and count into apollo_serve_shed_total by reason.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests {
		retry := int(math.Ceil(s.reg.cfg.ShedWindow.Seconds()))
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		if o := s.reg.cfg.Metrics; o != nil {
			reason := "queue_full"
			if errors.Is(err, errShedOverload) {
				reason = "overload"
			}
			o.Counter("apollo_serve_shed_total", "Queries refused by admission control, by reason.",
				obs.Label{Key: "reason", Value: reason}).Inc()
		}
	}
	writeError(w, status, err)
}

// decodeBody reads a JSON request body capped at Config.MaxBodyBytes — an
// oversized body answers 413 instead of buffering without bound.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.reg.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return false
	}
	return true
}

// serveQuery runs one cacheable scoring query: answer from the response
// cache when the (snapshot, canonical query) pair is resident, otherwise
// pass admission control, compute, and fill the cache with the marshaled
// bytes. The admission check sits after the cache lookup on purpose — an
// overloaded server keeps answering everything it already knows.
func (s *Server) serveQuery(w http.ResponseWriter, checkpoint, canon string, compute func(e *Entry) (any, error)) {
	cache := s.reg.cache
	err := s.reg.WithEntry(checkpoint, func(e *Entry) error {
		if cache != nil {
			if blob, ok := cache.get(entryKey(e, canon)); ok {
				w.Header().Set("X-Cache", "hit")
				writeBlob(w, http.StatusOK, blob)
				return nil
			}
		}
		if !s.reg.adm.allow() {
			return errShedOverload
		}
		v, err := compute(e)
		if err != nil {
			return err
		}
		blob, err := json.Marshal(v)
		if err != nil {
			return internalErr(fmt.Errorf("serve: encode response: %w", err))
		}
		if cache != nil {
			cache.put(entryKey(e, canon), blob)
			w.Header().Set("X-Cache", "miss")
		}
		writeBlob(w, http.StatusOK, blob)
		return nil
	})
	if err != nil {
		s.writeQueryError(w, err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReady answers readiness probes: 200 once the registry has loaded at
// least one snapshot and the server is not draining, 503 otherwise. Distinct
// from /healthz liveness — a server warming up or draining is alive but must
// not receive new traffic.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	shedding := s.reg.adm.Shedding()
	loads := s.reg.Loads()
	// Shedding flips readiness too: a load balancer that steers new
	// connections elsewhere is the gentlest form of backpressure, and the
	// verdict decays within one shed window once the queue drains (Shedding
	// rotates the signal window, so probes alone are enough to recover).
	ready := loads > 0 && !draining && !shedding
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready": ready, "loads": loads, "draining": draining, "shedding": shedding,
	})
}

type modelInfo struct {
	Checkpoint     string    `json:"checkpoint"`
	Optimizer      string    `json:"optimizer"`
	Step           int       `json:"step"`
	Generation     int       `json:"generation"`
	LoadedAt       time.Time `json:"loaded_at"`
	ResidentBytes  int64     `json:"resident_bytes"`
	PredictedBytes int64     `json:"predicted_bytes"` // memmodel.ServeBytes
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	out := struct {
		Models    []modelInfo `json:"models"`
		Loads     int64       `json:"loads"`
		Evictions int64       `json:"evictions"`
	}{Models: []modelInfo{}, Loads: s.reg.Loads(), Evictions: s.reg.Evictions()}
	for _, e := range entries {
		out.Models = append(out.Models, modelInfo{
			Checkpoint:     e.Path,
			Optimizer:      e.Optimizer,
			Step:           e.Step,
			Generation:     e.Generation,
			LoadedAt:       e.LoadedAt,
			ResidentBytes:  e.ResidentBytes(),
			PredictedBytes: e.PredictedBytes(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type perplexityRequest struct {
	Checkpoint string `json:"checkpoint"`
	Batches    int    `json:"batches"`
	Batch      int    `json:"batch"`
	Seq        int    `json:"seq"`
}

type perplexityResponse struct {
	Checkpoint string  `json:"checkpoint"`
	Step       int     `json:"step"`
	Optimizer  string  `json:"optimizer"`
	Batches    int     `json:"batches"`
	Loss       float64 `json:"loss"`
	LossText   string  `json:"loss_text"`
	PPL        float64 `json:"ppl"`
}

func (s *Server) handlePerplexity(w http.ResponseWriter, r *http.Request) {
	var req perplexityRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Negative dimensions would sail past the == 0 default substitutions
	// below; reject them by name before any checkpoint work happens.
	if req.Batches < 0 || req.Batch < 0 || req.Seq < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: batches %d, batch %d and seq %d must be non-negative (0 selects the default)",
				req.Batches, req.Batch, req.Seq))
		return
	}
	if req.Batches == 0 {
		req.Batches = 4
	}
	if req.Batch == 0 {
		req.Batch = 8
	}
	if req.Seq == 0 {
		req.Seq = 32
	}
	// Canonicalized after default substitution, so an explicit {4, 8, 32}
	// and an all-defaults query share one cache entry.
	canon := fmt.Sprintf("ppl|%d|%d|%d", req.Batches, req.Batch, req.Seq)
	s.serveQuery(w, req.Checkpoint, canon, func(e *Entry) (any, error) {
		loss, err := e.Perplexity(req.Batches, req.Batch, req.Seq)
		if err != nil {
			return nil, err
		}
		resp := perplexityResponse{
			Checkpoint: e.Path, Step: e.Step, Optimizer: e.Optimizer,
			Batches: req.Batches, Loss: loss, LossText: exact(loss),
		}
		// ppl is a display value and saturates rather than carrying +Inf
		// (which JSON cannot encode); loss/loss_text stay the exact contract.
		resp.PPL = math.Exp(loss)
		if math.IsInf(resp.PPL, 1) {
			resp.PPL = math.MaxFloat64
		}
		return resp, nil
	})
}

type logProbRequest struct {
	Checkpoint string `json:"checkpoint"`
	Context    []int  `json:"context"`
	Option     []int  `json:"option"`
}

type logProbResponse struct {
	Checkpoint  string  `json:"checkpoint"`
	Step        int     `json:"step"`
	LogProb     float64 `json:"logprob"`
	LogProbText string  `json:"logprob_text"`
}

func (s *Server) handleLogProb(w http.ResponseWriter, r *http.Request) {
	var req logProbRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.serveQuery(w, req.Checkpoint, logProbCanon(req.Context, req.Option), func(e *Entry) (any, error) {
		lp, err := e.LogProb(req.Context, req.Option)
		if err != nil {
			return nil, err
		}
		return logProbResponse{Checkpoint: e.Path, Step: e.Step, LogProb: lp, LogProbText: exact(lp)}, nil
	})
}

type zeroShotItem struct {
	Context []int   `json:"context"`
	Options [][]int `json:"options"`
	Answer  int     `json:"answer"`
}

type zeroShotRequest struct {
	Checkpoint string         `json:"checkpoint"`
	Items      []zeroShotItem `json:"items"`
	// SuiteSeed > 0 evaluates the generated Table-4 suite instead of
	// explicit items (requires a configured corpus).
	SuiteSeed    uint64 `json:"suite_seed"`
	ItemsPerTask int    `json:"items_per_task"`
}

type zeroShotTask struct {
	Task     string  `json:"task"`
	Accuracy float64 `json:"accuracy"`
}

type zeroShotResponse struct {
	Checkpoint   string         `json:"checkpoint"`
	Step         int            `json:"step"`
	Accuracy     float64        `json:"accuracy"`
	AccuracyText string         `json:"accuracy_text"`
	Tasks        []zeroShotTask `json:"tasks,omitempty"`
}

// logProbCanon renders the canonical cache encoding of a logprob query.
func logProbCanon(context, option []int) string {
	var b strings.Builder
	b.WriteString("lp|")
	canonInts(&b, context)
	b.WriteByte('|')
	canonInts(&b, option)
	return b.String()
}

// zeroShotCanon renders the canonical cache encoding of a zero-shot query.
// Every field is length-prefixed or delimited so distinct queries cannot
// collide.
func zeroShotCanon(req *zeroShotRequest) string {
	var b strings.Builder
	if req.SuiteSeed > 0 {
		fmt.Fprintf(&b, "zs|suite|%d|%d", req.SuiteSeed, req.ItemsPerTask)
		return b.String()
	}
	b.WriteString("zs|items|")
	for _, it := range req.Items {
		canonInts(&b, it.Context)
		b.WriteByte('>')
		b.WriteString(strconv.Itoa(len(it.Options)))
		b.WriteByte(':')
		for _, opt := range it.Options {
			canonInts(&b, opt)
			b.WriteByte(';')
		}
		b.WriteString(strconv.Itoa(it.Answer))
		b.WriteByte('#')
	}
	return b.String()
}

func (s *Server) handleZeroShot(w http.ResponseWriter, r *http.Request) {
	var req zeroShotRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.serveQuery(w, req.Checkpoint, zeroShotCanon(&req), func(e *Entry) (any, error) {
		resp := zeroShotResponse{Checkpoint: e.Path, Step: e.Step}
		if req.SuiteSeed > 0 {
			if s.reg.cfg.Corpus == nil {
				return nil, fmt.Errorf("serve: suite queries need a configured corpus")
			}
			// Bounded like every other generation knob: item generation runs
			// on the handler goroutine before any batcher check could bite.
			if req.ItemsPerTask < 0 || req.ItemsPerTask > 1000 {
				return nil, fmt.Errorf("serve: items_per_task %d outside [0, 1000]", req.ItemsPerTask)
			}
			src := s.reg.cfg.Corpus.Source()
			var sum float64
			for _, cfg := range data.ZeroShotSuite(req.SuiteSeed) {
				if req.ItemsPerTask > 0 {
					cfg.Items = req.ItemsPerTask
				}
				acc, err := e.ZeroShot(data.GenerateMCTask(src, cfg))
				if err != nil {
					return nil, err
				}
				resp.Tasks = append(resp.Tasks, zeroShotTask{Task: cfg.Name, Accuracy: acc})
				sum += acc
			}
			resp.Accuracy = sum / float64(len(resp.Tasks))
			resp.AccuracyText = exact(resp.Accuracy)
			return resp, nil
		}
		if len(req.Items) == 0 {
			return nil, fmt.Errorf("serve: zeroshot needs items or suite_seed")
		}
		items := make([]data.MCItem, len(req.Items))
		for i, it := range req.Items {
			if it.Answer < 0 || it.Answer >= len(it.Options) {
				return nil, fmt.Errorf("serve: item %d answer %d out of range", i, it.Answer)
			}
			items[i] = data.MCItem{Context: it.Context, Options: it.Options, Answer: it.Answer}
		}
		acc, err := e.ZeroShot(items)
		if err != nil {
			return nil, err
		}
		resp.Accuracy = acc
		resp.AccuracyText = exact(acc)
		return resp, nil
	})
}

type fineTuneTask struct {
	Name    string  `json:"name"`
	Train   int     `json:"train"`
	Test    int     `json:"test"`
	CtxLen  int     `json:"ctx_len"`
	Classes int     `json:"classes"`
	Noise   float64 `json:"noise"`
	Seed    uint64  `json:"seed"`
}

type fineTuneRequest struct {
	Checkpoint string       `json:"checkpoint"`
	Task       fineTuneTask `json:"task"`
	Epochs     int          `json:"epochs"`
	Batch      int          `json:"batch"`
	LR         float64      `json:"lr"`
	// Optimizer is "SGD" (default — the Kumar et al. fine-tuning protocol
	// the paper's comparisons follow) or "AdamW".
	Optimizer string `json:"optimizer"`
	Seed      uint64 `json:"seed"`
}

type fineTuneResponse struct {
	Checkpoint   string  `json:"checkpoint"`
	Step         int     `json:"step"`
	Task         string  `json:"task"`
	Accuracy     float64 `json:"accuracy"`
	AccuracyText string  `json:"accuracy_text"`
}

func (s *Server) handleFineTune(w http.ResponseWriter, r *http.Request) {
	var req fineTuneRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if s.reg.cfg.Corpus == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: finetune queries need a configured corpus"))
		return
	}
	t := req.Task
	if t.Train <= 0 || t.Test <= 0 || t.Train+t.Test > 10000 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: task needs 0 < train+test <= 10000"))
		return
	}
	if t.Classes < 2 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: task needs >= 2 classes"))
		return
	}
	if t.CtxLen < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: task needs ctx_len >= 1"))
		return
	}
	if req.Epochs < 0 || req.Epochs > 20 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: epochs must be in [0, 20]"))
		return
	}
	// A negative batch would slip past FineTune's own == 0 defaulting the
	// same way negative perplexity dims used to; bound it like epochs.
	if req.Batch < 0 || req.Batch > 1024 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: finetune batch %d outside [0, 1024] (0 selects the default)", req.Batch))
		return
	}
	// Fine-tune runs are never cached (callers vary seeds expecting fresh
	// training), but they are the heaviest compute the service does, so they
	// respect admission control like any cache miss.
	if !s.reg.adm.allow() {
		s.writeQueryError(w, errShedOverload)
		return
	}
	var resp fineTuneResponse
	err := s.reg.WithEntry(req.Checkpoint, func(e *Entry) error {
		if t.CtxLen+1 > e.model.Cfg.MaxSeq {
			return fmt.Errorf("serve: ctx_len %d exceeds MaxSeq %d", t.CtxLen, e.model.Cfg.MaxSeq)
		}
		lr := req.LR
		if lr == 0 { //apollo:exactfloat zero is the unset-field sentinel; default fills only untouched fields
			lr = 1e-3
		}
		var opt optim.Optimizer
		switch req.Optimizer {
		case "", "SGD":
			opt = optim.NewSGD(optim.Hyper{LR: lr}, 0.9)
		case "AdamW":
			opt = optim.NewAdamW(optim.Hyper{LR: lr})
		default:
			return fmt.Errorf("serve: unknown finetune optimizer %q (SGD or AdamW)", req.Optimizer)
		}
		task := data.GenerateFTTask(s.reg.cfg.Corpus.Source(), data.FTTaskConfig{
			Name: t.Name, Train: t.Train, Test: t.Test, CtxLen: t.CtxLen,
			Classes: t.Classes, Noise: t.Noise, Seed: t.Seed,
		})
		// Fine-tuning trains a clone — the served snapshot is immutable and
		// the clone runs off-executor, so long tuning jobs never block
		// perplexity traffic on the same model.
		clone := e.CloneModel()
		acc := train.FineTune(clone, opt, task, train.FineTuneConfig{
			Epochs: req.Epochs, Batch: req.Batch, Seed: req.Seed,
		})
		resp = fineTuneResponse{
			Checkpoint: e.Path, Step: e.Step, Task: task.Cfg.Name,
			Accuracy: acc, AccuracyText: exact(acc),
		}
		return nil
	})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
