package serve

import (
	"net/http"
	"testing"
	"time"

	"apollo/internal/nn"
	"apollo/internal/obs"
)

// queueLen reads the batcher's pending-item count — in-package test plumbing
// for sequencing the queue-full scenario deterministically.
func (b *batcher) queueLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// TestQueueFull429: with the executor wedged and the bounded queue full, a
// new query answers 429 with Retry-After instead of queueing without bound,
// and counts into apollo_serve_shed_total{reason="queue_full"}.
func TestQueueFull429(t *testing.T) {
	o := obs.NewRegistry()
	ts, path, reg := newTestServer(t, Config{MaxQueue: 1, Metrics: o})

	e, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the executor: an exec that blocks until released. Wait for it to
	// actually start so it occupies the executor, not the queue.
	started, release := make(chan struct{}), make(chan struct{})
	wedgeDone := make(chan error, 1)
	go func() {
		wedgeDone <- e.batcher.exec(func(m *nn.Model) { close(started); <-release })
	}()
	<-started
	// Fill the queue to its bound of 1 with a second exec.
	fillDone := make(chan error, 1)
	go func() { fillDone <- e.batcher.exec(func(m *nn.Model) {}) }()
	deadline := time.Now().Add(5 * time.Second)
	for e.batcher.queueLen() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler exec never queued")
		}
		time.Sleep(time.Millisecond)
	}

	status, body, h := postRaw(t, ts.URL+"/v1/perplexity",
		perplexityRequest{Checkpoint: path, Batches: 1, Batch: 2, Seq: 8})
	if status != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d (%s), want 429", status, body)
	}
	if h.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	if err := <-wedgeDone; err != nil {
		t.Fatalf("wedge exec: %v", err)
	}
	if err := <-fillDone; err != nil {
		t.Fatalf("filler exec: %v", err)
	}

	_, expo := scrape(t, ts.URL+"/metrics")
	if v := metricValue(t, expo, `apollo_serve_shed_total{reason="queue_full"}`); v != 1 {
		t.Fatalf("shed counter %v, want 1", v)
	}
	// The queue drained; the same query now computes fine.
	if status, body, _ := postRaw(t, ts.URL+"/v1/perplexity",
		perplexityRequest{Checkpoint: path, Batches: 1, Batch: 2, Seq: 8}); status != http.StatusOK {
		t.Fatalf("post-drain query %d (%s), want 200", status, body)
	}
}

// TestShedOverloadAndRecovery walks admission control through a full cycle:
// real queue waits cross a 1ns threshold, so after one shed window the next
// compute query is refused with 429, /readyz reports backpressure, cache
// hits keep serving — and once the queue stays empty for a window, the
// verdict decays and the server re-admits.
func TestShedOverloadAndRecovery(t *testing.T) {
	o := obs.NewRegistry()
	const window = 50 * time.Millisecond
	ts, path, _ := newTestServer(t, Config{ShedThreshold: time.Nanosecond, ShedWindow: window, Metrics: o})

	// Admitted (the first window is empty) and cached; its queue wait —
	// necessarily over 1ns — lands in the signal window.
	cached := logProbRequest{Checkpoint: path, Context: []int{1, 2}, Option: []int{3}}
	if status, body, _ := postRaw(t, ts.URL+"/v1/logprob", cached); status != http.StatusOK {
		t.Fatalf("warmup query %d (%s)", status, body)
	}
	time.Sleep(window + 10*time.Millisecond)

	// The rotation at this request sees the warmup's waits: shed.
	fresh := logProbRequest{Checkpoint: path, Context: []int{4, 5}, Option: []int{6}}
	status, body, h := postRaw(t, ts.URL+"/v1/logprob", fresh)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overloaded query answered %d (%s), want 429", status, body)
	}
	if h.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Backpressure is visible on /readyz while the verdict holds.
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d while shedding, want 503", r.StatusCode)
	}

	// Cache hits never touch an executor, so they serve even while shedding.
	if status, _, h := postRaw(t, ts.URL+"/v1/logprob", cached); status != http.StatusOK || h.Get("X-Cache") != "hit" {
		t.Fatalf("cache hit while shedding: %d, X-Cache %q, want 200/hit", status, h.Get("X-Cache"))
	}

	_, expo := scrape(t, ts.URL+"/metrics")
	if v := metricValue(t, expo, `apollo_serve_shed_total{reason="overload"}`); v < 1 {
		t.Fatalf("shed counter %v, want >= 1", v)
	}

	// Recovery: with nothing queuing, the next rotations see empty windows
	// and /readyz probes alone flip the verdict back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recovered from shedding")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status, body, _ := postRaw(t, ts.URL+"/v1/logprob", fresh); status != http.StatusOK {
		t.Fatalf("post-recovery query %d (%s), want 200", status, body)
	}
}

// TestAdmissionDisabledByDefault: without a ShedThreshold no controller is
// built, every query admits, and /readyz never reports shedding.
func TestAdmissionDisabledByDefault(t *testing.T) {
	reg := newTestRegistry(t, Config{})
	if reg.adm != nil {
		t.Fatal("admission controller built without a threshold")
	}
	if !reg.adm.allow() || reg.adm.Shedding() {
		t.Fatal("nil controller must admit everything")
	}
}
