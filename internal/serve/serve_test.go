package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"apollo/internal/ckpt"
	"apollo/internal/data"
	"apollo/internal/eval"
	"apollo/internal/memmodel"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

// serveTestConfig is the architecture shared by the serve tests — the 60M
// proxy shape, large enough that fixed bookkeeping overheads stay under the
// 2% footprint tolerance.
func serveTestConfig() nn.Config {
	return nn.Config{Vocab: 64, Dim: 32, Hidden: 88, Heads: 4, Layers: 2, MaxSeq: 64}
}

func serveTestCorpus(t testing.TB) *data.Corpus {
	t.Helper()
	cfg := data.DefaultSourceConfig()
	cfg.Vocab = 64
	src, err := data.NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return data.NewCorpus(src, 17, 18)
}

// trainAndSave runs a short training run and writes its checkpoint,
// returning the path and the trained model (the bit-exact reference for
// every served result).
func trainAndSave(t testing.TB, dir string, steps int) (string, *nn.Model) {
	t.Helper()
	model := nn.NewModel(serveTestConfig(), tensor.NewRNG(33))
	opt := optim.NewAdamW(optim.Hyper{LR: 1e-3})
	corpus := serveTestCorpus(t)
	train.Pretrain(model, opt, corpus, train.PretrainConfig{Batch: 4, Seq: 16, Steps: steps})
	st, err := ckpt.Capture(steps, model.Params().List(), opt, corpus)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("run-%d.ckpt", steps))
	if err := ckpt.SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	return path, model
}

func newTestRegistry(t testing.TB, cfg Config) *Registry {
	t.Helper()
	if cfg.Model.Vocab == 0 {
		cfg.Model = serveTestConfig()
	}
	if cfg.Corpus == nil {
		cfg.Corpus = serveTestCorpus(t)
	}
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestServedPerplexityBitIdentical is the tentpole determinism contract: a
// served perplexity query returns the bit-identical loss train.Validate
// computes on the restored snapshot, at any batcher concurrency.
func TestServedPerplexityBitIdentical(t *testing.T) {
	dir := t.TempDir()
	path, ref := trainAndSave(t, dir, 4)
	offline := train.Validate(ref, serveTestCorpus(t), 4, 4, 16)

	reg := newTestRegistry(t, Config{})
	for _, concurrency := range []int{1, 3, 8} {
		var wg sync.WaitGroup
		losses := make([]float64, concurrency)
		errs := make([]error, concurrency)
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				err := reg.WithEntry(path, func(e *Entry) error {
					loss, err := e.Perplexity(4, 4, 16)
					losses[i] = loss
					return err
				})
				errs[i] = err
			}(i)
		}
		wg.Wait()
		for i := 0; i < concurrency; i++ {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if losses[i] != offline {
				t.Fatalf("concurrency %d query %d: served loss %v != offline %v (bit drift)",
					concurrency, i, losses[i], offline)
			}
		}
	}
}

// TestBatchedScoringMatchesEval pins the coalescing transparency claim:
// option scores computed through batched forwards are bit-identical to
// eval.OptionLogProb on the same weights, under concurrency.
func TestBatchedScoringMatchesEval(t *testing.T) {
	dir := t.TempDir()
	path, ref := trainAndSave(t, dir, 3)
	reg := newTestRegistry(t, Config{MaxBatch: 4})
	e, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}

	rng := tensor.NewRNG(7)
	type q struct {
		ctx, opt []int
		want     float64
	}
	qs := make([]q, 24)
	for i := range qs {
		ctxLen := rng.Intn(10) // includes 0: the empty-context service case
		optLen := 1 + rng.Intn(6)
		ctx := make([]int, ctxLen)
		opt := make([]int, optLen)
		for j := range ctx {
			ctx[j] = rng.Intn(64)
		}
		for j := range opt {
			opt[j] = rng.Intn(64)
		}
		qs[i] = q{ctx: ctx, opt: opt, want: eval.OptionLogProb(ref, ctx, opt)}
	}

	var wg sync.WaitGroup
	got := make([]float64, len(qs))
	errs := make([]error, len(qs))
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = e.LogProb(qs[i].ctx, qs[i].opt)
		}(i)
	}
	wg.Wait()
	for i := range qs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != qs[i].want {
			t.Fatalf("query %d (ctx %d, opt %d): served %v != eval %v",
				i, len(qs[i].ctx), len(qs[i].opt), got[i], qs[i].want)
		}
	}
}

// TestZeroShotCoalescesAndMatchesEval: one zero-shot query fills batched
// forwards (a deterministic coalescing check — every option is queued
// before the executor wakes) and reproduces eval.ZeroShotAccuracy exactly.
func TestZeroShotCoalescesAndMatchesEval(t *testing.T) {
	dir := t.TempDir()
	path, ref := trainAndSave(t, dir, 3)
	reg := newTestRegistry(t, Config{MaxBatch: 8})
	e, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	items := data.GenerateMCTask(reg.cfg.Corpus.Source(), data.MCTaskConfig{
		Name: "t", Items: 6, CtxLen: 8, ContLen: 4, Options: 3, Distractor: 0.5, Seed: 5,
	})
	want := eval.ZeroShotAccuracy(ref, items)
	got, err := e.ZeroShot(items)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("served zero-shot accuracy %v != eval %v", got, want)
	}
	st := e.batcher.Stats()
	// 18 equal-length units, MaxBatch 8 → 3 forwards, largest batch 8.
	if st.ScoredSeqs != 18 || st.LargestBatch != 8 || st.Forwards != 3 {
		t.Fatalf("coalescing stats %+v, want 18 units over 3 forwards with largest batch 8", st)
	}
}

// TestResidentBytesMatchServeModel is the memory-contract acceptance: an
// open snapshot's measured footprint tracks memmodel.ServeBytes within 2%,
// and holds no gradient accumulators.
func TestResidentBytesMatchServeModel(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	e, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range e.model.Params().List() {
		if p.Grad != nil {
			t.Fatalf("served model still holds a gradient accumulator for %s", p.Name)
		}
	}
	var shapes []memmodel.Shape
	for _, p := range e.model.Params().List() {
		shapes = append(shapes, memmodel.Shape{Name: p.Name, Rows: p.W.Rows, Cols: p.W.Cols})
	}
	predicted := memmodel.ServeBytes(shapes)
	measured := float64(e.ResidentBytes())
	if dev := (predicted - measured) / measured; dev < -0.02 || dev > 0.02 {
		t.Fatalf("ServeBytes %v vs measured %v: deviation %+.2f%% exceeds 2%%",
			predicted, measured, dev*100)
	}
	// Sanity: the training checkpoint on disk is strictly larger than the
	// serving footprint (it also carries the AdamW moments).
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if float64(fi.Size()) < 2.5*measured {
		t.Fatalf("checkpoint %d bytes vs resident %v: optimizer state seems to have been loaded",
			fi.Size(), measured)
	}
}

// TestHotReload: re-saving a checkpoint at the same path swaps in the new
// generation on the next acquire; queries against the superseded entry are
// refused with the retryable sentinel.
func TestHotReload(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	e1, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Step != 2 || e1.Generation != 1 {
		t.Fatalf("first acquire: step %d gen %d", e1.Step, e1.Generation)
	}
	// Unchanged file → same entry, no reload.
	again, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if again != e1 || reg.Loads() != 1 {
		t.Fatalf("unchanged file reloaded (loads %d)", reg.Loads())
	}

	// Overwrite with a longer run, then force mtime and size to match the
	// old stat exactly: same architecture and optimizer mean an identical
	// byte count, and coarse filesystem timestamps can make two periodic
	// saves land in one tick. Only the inode check (os.SameFile) can tell
	// the files apart — the worst case a live training run can produce.
	old := e1.fi
	p2, _ := trainAndSave(t, dir, 5)
	if err := os.Rename(p2, path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), old.ModTime()); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != old.Size() || !fi.ModTime().Equal(old.ModTime()) {
		t.Fatalf("test premise broken: stat %+v err %v should match the old size/mtime", fi, err)
	}

	e2, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Step != 5 || e2.Generation != 2 {
		t.Fatalf("reloaded entry: step %d gen %d, want 5/2", e2.Step, e2.Generation)
	}
	if reg.Loads() != 2 {
		t.Fatalf("loads %d, want 2", reg.Loads())
	}
	// The superseded entry's executor drained; fresh queries on it are
	// refused with the sentinel WithEntry retries on.
	if _, err := e1.Perplexity(1, 2, 8); err != errClosed {
		t.Fatalf("stale-entry query error %v, want errClosed", err)
	}
	// WithEntry lands on the new generation.
	var step int
	if err := reg.WithEntry(path, func(e *Entry) error { step = e.Step; return nil }); err != nil {
		t.Fatal(err)
	}
	if step != 5 {
		t.Fatalf("WithEntry step %d, want 5", step)
	}
}

// TestLRUEviction: the registry holds at most MaxModels snapshots; the
// least recently acquired is evicted and transparently reloaded on demand.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for _, steps := range []int{1, 2, 3} {
		p, _ := trainAndSave(t, dir, steps)
		paths = append(paths, p)
	}
	reg := newTestRegistry(t, Config{MaxModels: 2})
	for _, p := range paths {
		if _, err := reg.Acquire(p); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(reg.Entries()); n != 2 {
		t.Fatalf("%d resident entries, want 2", n)
	}
	if reg.Evictions() != 1 {
		t.Fatalf("evictions %d, want 1", reg.Evictions())
	}
	// paths[0] was evicted (least recently used); acquiring it again
	// reloads it and evicts paths[1].
	loads := reg.Loads()
	e, err := reg.Acquire(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Step != 1 {
		t.Fatalf("reloaded wrong snapshot: step %d", e.Step)
	}
	if reg.Loads() != loads+1 {
		t.Fatalf("loads %d, want %d", reg.Loads(), loads+1)
	}
	for _, got := range reg.Entries() {
		if got.Path == paths[1] {
			t.Fatal("paths[1] should be the evicted entry now")
		}
	}
}

// TestArchitectureMismatch: a checkpoint from a different architecture is
// refused with a parameter-table error, not served garbage.
func TestArchitectureMismatch(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 1)
	cfg := serveTestConfig()
	cfg.Dim = 16
	cfg.Hidden = 44
	reg := newTestRegistry(t, Config{Model: cfg})
	if _, err := reg.Acquire(path); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	if n := len(reg.Entries()); n != 0 {
		t.Fatalf("%d entries after failed load", n)
	}
}

// TestQueryValidation: malformed queries are rejected before they can
// reach (and panic) the executor.
func TestQueryValidation(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 1)
	reg := newTestRegistry(t, Config{})
	e, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.LogProb([]int{1, 2}, []int{999}); err == nil {
		t.Fatal("out-of-vocab token accepted")
	}
	if _, err := e.LogProb(make([]int, 200), []int{1}); err == nil {
		t.Fatal("over-MaxSeq query accepted")
	}
	if _, err := e.Perplexity(4, 4, 1000); err == nil {
		t.Fatal("over-MaxSeq perplexity accepted")
	}
	// Resource bounds: a negative count must not yield a fabricated loss 0,
	// and an absurd batch count must not wedge the executor.
	if _, err := e.Perplexity(-1, 4, 8); err == nil {
		t.Fatal("negative batches accepted")
	}
	if _, err := e.Perplexity(1<<30, 4, 8); err == nil {
		t.Fatal("unbounded batches accepted")
	}
	if _, err := e.Perplexity(4, 1<<20, 8); err == nil {
		t.Fatal("unbounded batch size accepted")
	}
	// Degenerate but legal queries answer 0 without touching the model.
	if lp, err := e.LogProb(nil, nil); err != nil || lp != 0 {
		t.Fatalf("empty query → (%v, %v), want (0, nil)", lp, err)
	}
	// The service stays alive afterwards.
	if _, err := e.Perplexity(1, 2, 8); err != nil {
		t.Fatal(err)
	}
}

// TestFineTuneQueryDoesNotMutateServedModel: fine-tune queries train a
// clone; the served weights must stay bit-identical.
func TestFineTuneQueryDoesNotMutateServedModel(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	e, err := reg.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	before := e.model.Params().List()[0].W.Clone()
	clone := e.CloneModel()
	task := data.GenerateFTTask(reg.cfg.Corpus.Source(), data.FTTaskConfig{
		Name: "probe", Train: 10, Test: 8, CtxLen: 8, Classes: 2, Noise: 0, Seed: 3,
	})
	acc := train.FineTune(clone, optim.NewSGD(optim.Hyper{LR: 1e-2}, 0.9), task, train.FineTuneConfig{
		Epochs: 1, Batch: 4, Seed: 4,
	})
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of bounds", acc)
	}
	if !e.model.Params().List()[0].W.Equal(before) {
		t.Fatal("fine-tune query mutated the served snapshot")
	}
	if clone.Params().List()[0].W.Equal(before) {
		t.Fatal("clone did not train")
	}
}
