package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"apollo/internal/obs"
)

// scrape fetches a GET endpoint and returns status + body.
func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, buf.String()
}

// metricValue extracts one sample value from an exposition body, matching
// the full "name{labels}" prefix.
func metricValue(t *testing.T, expo, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			var v float64
			if err := json.Unmarshal([]byte(rest), &v); err != nil {
				t.Fatalf("sample %q has non-numeric value %q", sample, rest)
			}
			return v
		}
	}
	t.Fatalf("sample %q not found in exposition:\n%s", sample, expo)
	return 0
}

// TestMetricsEndpoint exercises the whole instrumented serve path: queries
// flow through the middleware, batcher and registry, then GET /metrics must
// expose well-formed Prometheus text with nonzero counters for each layer,
// and GET /debug/vars must be valid JSON over the same registry.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 3)
	var traceBuf strings.Builder
	reg := newTestRegistry(t, Config{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(&traceBuf),
	})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	// Drive every instrumented layer: perplexity (exec path) and logprob
	// (batched scoring path), plus one 4xx for the error counter.
	var resp perplexityResponse
	status, raw := postJSON(t, ts.URL+"/v1/perplexity",
		perplexityRequest{Checkpoint: path, Batches: 2, Batch: 4, Seq: 16}, &resp)
	if status != http.StatusOK {
		t.Fatalf("perplexity status %d: %s", status, raw)
	}
	var lpResp logProbResponse
	status, raw = postJSON(t, ts.URL+"/v1/logprob",
		logProbRequest{Checkpoint: path, Context: []int{1, 2, 3}, Option: []int{4, 5}}, &lpResp)
	if status != http.StatusOK {
		t.Fatalf("logprob status %d: %s", status, raw)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/logprob", map[string]any{"checkpoint": path, "nope": 1}, nil); status < 400 {
		t.Fatalf("malformed logprob got status %d, want error", status)
	}

	status, expo := scrape(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}

	// Structural validity: every non-comment, non-empty line is name[{labels}] value.
	for _, line := range strings.Split(strings.TrimRight(expo, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}

	// One nonzero witness per instrumented layer.
	if v := metricValue(t, expo, `apollo_http_requests_total{path="/v1/perplexity"}`); v < 1 {
		t.Fatalf("perplexity request counter = %g", v)
	}
	if v := metricValue(t, expo, `apollo_http_requests_total{path="/v1/logprob"}`); v < 2 {
		t.Fatalf("logprob request counter = %g, want >= 2", v)
	}
	if v := metricValue(t, expo, `apollo_http_errors_total{path="/v1/logprob"}`); v < 1 {
		t.Fatalf("error counter = %g", v)
	}
	if v := metricValue(t, expo, `apollo_http_request_seconds_count{path="/v1/perplexity"}`); v < 1 {
		t.Fatalf("latency histogram count = %g", v)
	}
	if v := metricValue(t, expo, "apollo_serve_registry_loads_total"); v < 1 {
		t.Fatalf("registry loads = %g", v)
	}
	if v := metricValue(t, expo, "apollo_serve_resident_models"); v < 1 {
		t.Fatalf("resident models gauge = %g", v)
	}
	if v := metricValue(t, expo, "apollo_serve_execs_total"); v < 1 {
		t.Fatalf("exec counter = %g", v)
	}
	if v := metricValue(t, expo, "apollo_serve_batch_size_count"); v < 1 {
		t.Fatalf("batch size histogram = %g", v)
	}
	if v := metricValue(t, expo, `apollo_serve_snapshot_generation{checkpoint="`+path+`"}`); v != 1 {
		t.Fatalf("snapshot generation gauge = %g, want 1", v)
	}

	// /debug/vars: valid JSON over the same registry.
	status, vars := scrape(t, ts.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status %d", status)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if parsed[`apollo_http_requests_total{path="/v1/perplexity"}`].(float64) < 1 {
		t.Fatalf("vars missing request counter: %v", parsed)
	}

	// Tracing: each handled request emitted one span with the http name.
	traces := strings.TrimRight(traceBuf.String(), "\n")
	if n := len(strings.Split(traces, "\n")); n < 3 {
		t.Fatalf("got %d trace events, want >= 3:\n%s", n, traces)
	}
	if !strings.Contains(traces, `"name":"http /v1/perplexity"`) {
		t.Fatalf("trace stream missing perplexity span:\n%s", traces)
	}
}

// TestRequestIDHeader pins the trace/request-ID contract: with a tracer
// configured every response carries X-Request-Id, and IDs differ between
// requests.
func TestRequestIDHeader(t *testing.T) {
	dir := t.TempDir()
	trainAndSave(t, dir, 2)
	var buf strings.Builder
	reg := newTestRegistry(t, Config{Tracer: obs.NewTracer(&buf)})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	ids := map[string]bool{}
	for i := 0; i < 2; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatalf("response %d missing X-Request-Id", i)
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Fatalf("request IDs not unique: %v", ids)
	}
}

// TestPprofEndpoint checks the opt-in wiring: disabled by default, served
// under /debug/pprof/ when Config.Pprof is set.
func TestPprofEndpoint(t *testing.T) {
	off := newTestRegistry(t, Config{})
	tsOff := httptest.NewServer(NewServer(off).Handler())
	defer tsOff.Close()
	if status, _ := scrape(t, tsOff.URL+"/debug/pprof/"); status == http.StatusOK {
		t.Fatalf("pprof served without opt-in")
	}

	on := newTestRegistry(t, Config{Pprof: true})
	tsOn := httptest.NewServer(NewServer(on).Handler())
	defer tsOn.Close()
	status, body := scrape(t, tsOn.URL+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("pprof index status %d", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index lacks profiles:\n%.200s", body)
	}
}

// TestUninstrumentedHandlerStillServes pins the disabled mode: no Metrics,
// no Tracer — queries work, /metrics serves an empty exposition, and no
// X-Request-Id appears.
func TestUninstrumentedHandlerStillServes(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	var resp perplexityResponse
	status, raw := postJSON(t, ts.URL+"/v1/perplexity",
		perplexityRequest{Checkpoint: path, Batches: 1, Batch: 2, Seq: 8}, &resp)
	if status != http.StatusOK {
		t.Fatalf("perplexity status %d: %s", status, raw)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", r.StatusCode)
	}
	if r.Header.Get("X-Request-Id") != "" {
		t.Fatalf("uninstrumented response carries X-Request-Id")
	}
}
