package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"apollo/internal/nn"
	"apollo/internal/tensor"
)

// TestBatcherCloseSubmitRace races concurrent score/exec submissions against
// close: every call must return — either nil (the work drained before the
// close took effect) or errClosed — and never hang or panic. A deadline
// goroutine converts a wedged batcher into a failure instead of a test
// timeout.
func TestBatcherCloseSubmitRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		model := nn.NewModel(serveTestConfig(), tensor.NewRNG(7))
		b := newBatcher(model, 4, 0, nil)

		const workers = 8
		var wg sync.WaitGroup
		errsCh := make(chan error, workers*2)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if w%2 == 0 {
					errsCh <- b.score([]*scoreReq{newScoreReq([]int{1, 2}, []int{3})})
				} else {
					errsCh <- b.exec(func(m *nn.Model) {})
				}
			}(w)
		}
		// Close from yet another goroutine, mid-flight.
		go b.close()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: submissions hung against close", round)
		}
		close(errsCh)
		for err := range errsCh {
			if err != nil && !errors.Is(err, errClosed) {
				t.Fatalf("round %d: unexpected error %v (want nil or errClosed)", round, err)
			}
		}
	}
}

// TestBatcherSubmitAfterClose: submissions to an already-closed batcher fail
// fast with errClosed, including the queue-bounded configuration.
func TestBatcherSubmitAfterClose(t *testing.T) {
	model := nn.NewModel(serveTestConfig(), tensor.NewRNG(7))
	b := newBatcher(model, 4, 1, nil)
	b.close()
	if err := b.exec(func(m *nn.Model) {}); !errors.Is(err, errClosed) {
		t.Fatalf("exec after close: %v, want errClosed", err)
	}
	if err := b.score([]*scoreReq{newScoreReq([]int{1}, []int{2})}); !errors.Is(err, errClosed) {
		t.Fatalf("score after close: %v, want errClosed", err)
	}
}

// TestWithEntrySupersedeRetryTerminates pins the retry contract: WithEntry
// retries errClosed exactly once, so a query that keeps landing on
// superseded entries terminates with errClosed instead of looping.
func TestWithEntrySupersedeRetryTerminates(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})

	attempts := 0
	done := make(chan error, 1)
	go func() {
		done <- reg.WithEntry(path, func(e *Entry) error {
			attempts++
			return errClosed
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errClosed) {
			t.Fatalf("WithEntry returned %v, want errClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("WithEntry retried forever on errClosed")
	}
	if attempts != 2 {
		t.Fatalf("WithEntry ran f %d times, want exactly 2 (one retry)", attempts)
	}
}
