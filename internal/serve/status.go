package serve

import (
	"errors"
	"io/fs"
	"net/http"
)

// statusError pins an HTTP status to an error at the layer that knows its
// cause: the registry marks load/decode failures 500 (the path resolved to
// a file the service itself could not serve), the batcher marks executor
// panics 500. Everything the mapping below cannot classify is a caller
// mistake and stays 400.
type statusError struct {
	status int
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// internalErr wraps err as a 500.
func internalErr(err error) error {
	return &statusError{status: http.StatusInternalServerError, err: err}
}

// httpStatus maps a query error to its response status:
//
//	nil                             → 200
//	explicit statusError            → its status (500: load/executor failures)
//	fs.ErrNotExist / ErrPermission  → 404 (unknown or unreadable checkpoint path)
//	errQueueFull / errShedOverload  → 429 (admission control; Retry-After is set)
//	errClosed                       → 503 (snapshot superseded mid-retry; safe to retry)
//	anything else                   → 400 (request validation)
func httpStatus(err error) int {
	var se *statusError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &se):
		return se.status
	case errors.Is(err, fs.ErrNotExist), errors.Is(err, fs.ErrPermission):
		return http.StatusNotFound
	case errors.Is(err, errQueueFull), errors.Is(err, errShedOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, errClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
