package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"apollo/internal/obs"
)

// postRaw is postJSON plus headers: the cache tests need X-Cache and the
// exact response bytes.
func postRaw(t *testing.T, url string, req any) (int, string, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, buf.String(), r.Header
}

// TestResponseCacheLRU drives the cache directly: hits refresh recency, the
// entry bound evicts least-recently-used first, and the counters track every
// event.
func TestResponseCacheLRU(t *testing.T) {
	c := newResponseCache(2, nil)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if blob, ok := c.get("a"); !ok || string(blob) != "A" {
		t.Fatalf("get a = %q, %v", blob, ok)
	}
	// a is now most recent; inserting c must evict b.
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if blob, ok := c.get("a"); !ok || string(blob) != "A" {
		t.Fatalf("a evicted instead of b: %q, %v", blob, ok)
	}
	// Update-in-place must not grow the cache.
	c.put("c", []byte("C2"))
	if got := c.Len(); got != 2 {
		t.Fatalf("len %d after in-place update, want 2", got)
	}
	if blob, _ := c.get("c"); string(blob) != "C2" {
		t.Fatalf("c = %q, want C2", blob)
	}
	if h, m, e := c.hits.Load(), c.misses.Load(), c.evicts.Load(); h != 3 || m != 2 || e != 1 {
		t.Fatalf("counters hits=%d misses=%d evicts=%d, want 3/2/1", h, m, e)
	}
}

// TestHTTPCacheBitIdentical is the tentpole parity contract over HTTP: a
// cached response is char-for-char the bytes the first compute sent, the
// X-Cache header tells the paths apart, and the cache counters move.
func TestHTTPCacheBitIdentical(t *testing.T) {
	o := obs.NewRegistry()
	ts, path, reg := newTestServer(t, Config{Metrics: o})
	if reg.cache == nil {
		t.Fatal("cache not enabled by default")
	}

	req := logProbRequest{Checkpoint: path, Context: []int{1, 2, 3}, Option: []int{4, 5}}
	status, first, h := postRaw(t, ts.URL+"/v1/logprob", req)
	if status != http.StatusOK || h.Get("X-Cache") != "miss" {
		t.Fatalf("first query: status %d, X-Cache %q (%s)", status, h.Get("X-Cache"), first)
	}
	for i := 0; i < 3; i++ {
		status, body, h := postRaw(t, ts.URL+"/v1/logprob", req)
		if status != http.StatusOK || h.Get("X-Cache") != "hit" {
			t.Fatalf("repeat %d: status %d, X-Cache %q", i, status, h.Get("X-Cache"))
		}
		if body != first {
			t.Fatalf("repeat %d drifted:\n%q\n%q", i, body, first)
		}
	}

	_, expo := scrape(t, ts.URL+"/metrics")
	if v := metricValue(t, expo, "apollo_serve_cache_hits_total"); v != 3 {
		t.Fatalf("cache hits %v, want 3", v)
	}
	if v := metricValue(t, expo, "apollo_serve_cache_misses_total"); v != 1 {
		t.Fatalf("cache misses %v, want 1", v)
	}
}

// TestCacheInvalidatedByHotReload: overwriting the checkpoint bumps the load
// sequence, so the same query computes fresh on the new weights instead of
// resurrecting the old generation's answer.
func TestCacheInvalidatedByHotReload(t *testing.T) {
	dir := t.TempDir()
	path, _ := trainAndSave(t, dir, 2)
	reg := newTestRegistry(t, Config{})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	req := perplexityRequest{Checkpoint: path, Batches: 2, Batch: 4, Seq: 16}
	if status, _, h := postRaw(t, ts.URL+"/v1/perplexity", req); status != http.StatusOK || h.Get("X-Cache") != "miss" {
		t.Fatalf("first query not a computed 200 (%d, %q)", status, h.Get("X-Cache"))
	}
	_, old, _ := postRaw(t, ts.URL+"/v1/perplexity", req)

	// A longer run saved over the same path: the atomic temp+rename save
	// lands a new inode, which Acquire's stat compare always notices.
	newPath, _ := trainAndSave(t, dir, 5)
	if err := copyFile(newPath, path); err != nil {
		t.Fatal(err)
	}

	status, fresh, h := postRaw(t, ts.URL+"/v1/perplexity", req)
	if status != http.StatusOK {
		t.Fatalf("post-reload query: %d (%s)", status, fresh)
	}
	if h.Get("X-Cache") != "miss" {
		t.Fatalf("post-reload query served from cache (X-Cache %q) — stale generation", h.Get("X-Cache"))
	}
	if fresh == old {
		t.Fatal("post-reload response identical to pre-reload; weights changed, so the cache served stale bytes")
	}
	var resp perplexityResponse
	if err := json.Unmarshal([]byte(fresh), &resp); err != nil || resp.Step != 5 {
		t.Fatalf("post-reload step %d, want 5 (%v)", resp.Step, err)
	}
	// And the new generation caches too.
	if _, again, h := postRaw(t, ts.URL+"/v1/perplexity", req); h.Get("X-Cache") != "hit" || again != fresh {
		t.Fatalf("second post-reload query not a byte-identical hit (X-Cache %q)", h.Get("X-Cache"))
	}
}

// TestCacheEvictReloadNoStaleResurrection pins the invalidation-tag choice:
// per-path generations restart at 1 after an eviction, so a generation-keyed
// cache would resurrect stale bytes when an evicted path reloads from a
// changed file. The registry-global load sequence cannot collide.
func TestCacheEvictReloadNoStaleResurrection(t *testing.T) {
	dir := t.TempDir()
	pathA, _ := trainAndSave(t, dir, 2)
	pathB, _ := trainAndSave(t, dir, 3)
	reg := newTestRegistry(t, Config{MaxModels: 1})
	ts := httptest.NewServer(NewServer(reg).Handler())
	defer ts.Close()

	req := perplexityRequest{Checkpoint: pathA, Batches: 2, Batch: 4, Seq: 16}
	_, old, _ := postRaw(t, ts.URL+"/v1/perplexity", req)

	// Evict A by touching B, then change A's bytes on disk.
	if status, _, _ := postRaw(t, ts.URL+"/v1/perplexity",
		perplexityRequest{Checkpoint: pathB, Batches: 1, Batch: 2, Seq: 8}); status != http.StatusOK {
		t.Fatal("warming B failed")
	}
	if reg.Evictions() == 0 {
		t.Fatal("A was not evicted; MaxModels bound broken")
	}
	changed, _ := trainAndSave(t, dir, 6)
	if err := copyFile(changed, pathA); err != nil {
		t.Fatal(err)
	}

	status, fresh, h := postRaw(t, ts.URL+"/v1/perplexity", req)
	if status != http.StatusOK {
		t.Fatalf("reload-after-evict query: %d (%s)", status, fresh)
	}
	if h.Get("X-Cache") == "hit" || fresh == old {
		t.Fatal("evict+reload resurrected a stale cached response")
	}
	var resp perplexityResponse
	if err := json.Unmarshal([]byte(fresh), &resp); err != nil || resp.Step != 6 {
		t.Fatalf("reloaded step %d, want 6 (%v)", resp.Step, err)
	}
}

// TestCacheDisabled: CacheEntries < 0 turns the cache off — every query
// computes and no X-Cache header is emitted.
func TestCacheDisabled(t *testing.T) {
	ts, path, reg := newTestServer(t, Config{CacheEntries: -1})
	if reg.cache != nil {
		t.Fatal("cache built despite CacheEntries < 0")
	}
	req := logProbRequest{Checkpoint: path, Context: []int{1}, Option: []int{2}}
	for i := 0; i < 2; i++ {
		status, _, h := postRaw(t, ts.URL+"/v1/logprob", req)
		if status != http.StatusOK {
			t.Fatalf("query %d: %d", i, status)
		}
		if got := h.Get("X-Cache"); got != "" {
			t.Fatalf("query %d: X-Cache %q with caching disabled", i, got)
		}
	}
}

// TestEntryKeyCanonical: the canonical encodings are length-prefixed so
// adjacent fields cannot bleed into each other.
func TestEntryKeyCanonical(t *testing.T) {
	e1 := &Entry{Path: "/p", loadSeq: 1}
	e2 := &Entry{Path: "/p", loadSeq: 2}
	if entryKey(e1, "q") == entryKey(e2, "q") {
		t.Fatal("different load sequences collided")
	}
	keys := map[string]string{}
	for _, q := range [][2][]int{
		{{1}, {2}},
		{{1, 2}, nil},
		{nil, {1, 2}},
		{{12}, {}},
		{{1}, {2, 0}},
	} {
		canon := logProbCanon(q[0], q[1])
		if prev, dup := keys[canon]; dup {
			t.Fatalf("queries %v and %s collided on %q", q, prev, canon)
		}
		keys[canon] = fmt.Sprint(q)
	}
}

// copyFile atomically replaces dst with src's bytes via temp+rename — the
// same landing pattern as a real checkpoint save, so the registry's inode
// compare sees a change.
func copyFile(src, dst string) error {
	blob, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}
