// Package serve is the checkpoint-streamed evaluation service: it loads any
// internal/ckpt snapshot through the weights-only read path and answers the
// paper's Section 5 queries — validation perplexity, zero-shot multiple
// choice, option log-probabilities and fine-tuning accuracy — without
// re-running training.
//
// Three pieces:
//
//   - Registry: a snapshot registry with an LRU model cache and hot reload.
//     Every Acquire re-stats the checkpoint file; when the bytes on disk
//     changed (a training run's periodic save), a fresh model is loaded and
//     swapped in atomically while in-flight queries finish on the old one —
//     pointing the service at a live run's -save path yields a
//     live-updating endpoint.
//
//   - Batcher (batcher.go): one executor per open snapshot that coalesces
//     concurrent option-scoring queries into batched nn.Model forwards on
//     the shared internal/runtime worker pool.
//
//   - Server (http.go): the HTTP/JSON surface over both.
//
// Determinism contract: a served perplexity query returns the bit-identical
// loss train.Validate computes on the restored snapshot, at any batcher
// concurrency — queries touching a model are serialized through its
// executor, every forward depends only on its inputs (the runtime kernel
// contract), and batched scoring is row-local, so concurrency changes
// latency, never results (TestServedPerplexityBitIdentical,
// TestBatchedScoringMatchesEval).
//
// Memory contract: an open snapshot costs model-weight memory, not
// training memory — ckpt.ReadModel skips the OPTG/OPTP optimizer sections
// and gradient accumulators are freed after load, so Entry.ResidentBytes
// tracks memmodel.ServeBytes within 2% (TestResidentBytesMatchServeModel).
package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/ckpt"
	"apollo/internal/data"
	"apollo/internal/memmodel"
	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/obs/memprof"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

// Config parameterizes a Registry.
type Config struct {
	// Model is the architecture every served checkpoint must match (the
	// checkpoint's self-describing parameter table is verified against it
	// on load). Head count is not recoverable from weight shapes alone, so
	// the service cannot infer this from the file.
	Model nn.Config
	// Corpus supplies the fixed validation batches for perplexity queries
	// and the source for generated zero-shot/fine-tune tasks. It must be
	// built with the same seeds as the training run for served perplexity
	// to equal the trainer's (bench.NewCorpus(seed+17) for the CLIs). May
	// be nil for a logprob/zeroshot-items-only service.
	Corpus *data.Corpus
	// MaxModels bounds the snapshots resident at once; the least recently
	// acquired is evicted beyond it. Default 4.
	MaxModels int
	// MaxBatch caps how many scoring sequences coalesce into one batched
	// forward. Default 8.
	MaxBatch int
	// CacheEntries bounds the response cache (LRU by entry count) that
	// memoizes marshaled scoring responses keyed by (snapshot load sequence,
	// canonical query) — a hot reload bumps the sequence, so stale entries
	// die for free. 0 selects the default 4096; negative disables caching.
	CacheEntries int
	// MaxQueue bounds each snapshot executor's pending queue; submissions
	// beyond it are refused and surface as HTTP 429. 0 selects the default
	// 256; negative leaves the queue unbounded (the pre-admission behavior).
	MaxQueue int
	// ShedThreshold enables load shedding: when the queue-wait p95 over the
	// last ShedWindow exceeds it, new compute queries are refused with 429
	// (cache hits still serve) and /readyz reports backpressure. 0 disables.
	ShedThreshold time.Duration
	// ShedWindow is the rotation interval of the live p95 readout feeding
	// the shed decision. Default 1s.
	ShedWindow time.Duration
	// MaxBodyBytes caps accepted request bodies; larger requests answer 413
	// instead of letting a hostile client exhaust memory. Default 1 MiB.
	MaxBodyBytes int64
	// Metrics, when set, receives the service's counters and histograms —
	// registry cache behavior (hits/loads/hot-reloads/evictions, per-path
	// generation gauge), batcher coalescing (queue wait, batch size) and
	// per-endpoint HTTP request counts/latency — rendered at GET /metrics
	// (Prometheus text exposition) and GET /debug/vars (JSON). Nil disables
	// instrumentation at one branch per event; results are never affected
	// either way (timing-only).
	Metrics *obs.Registry
	// Tracer, when set, emits one JSONL span per HTTP request (request id,
	// endpoint, status, duration); the request id is echoed in the
	// X-Request-Id response header.
	Tracer *obs.Tracer
	// MemProf, when set, receives the service's memory ledger: the resident
	// snapshot bytes ("serve_snapshots", with a live memmodel.ServeBytes
	// prediction alongside) and the queued batcher buffers
	// ("batcher_buffers"). When nil and Metrics is set, the registry creates
	// its own profiler against Metrics so the apollo_mem_bytes gauge family
	// is on /metrics by default; pass an explicitly configured profiler to
	// also get the mem.jsonl timeline, high-water heap capture, or a shared
	// ledger with other subsystems.
	MemProf *memprof.Profiler
	// Pprof exposes net/http/pprof handlers under /debug/pprof/ when true.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxModels < 1 {
		c.MaxModels = 4
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Entry is one immutable open snapshot: the restored eval-only model plus
// identity. A hot reload never mutates an Entry — it builds a successor and
// swaps the registry pointer, so queries running on the old generation
// finish undisturbed.
type Entry struct {
	Path       string
	Optimizer  string
	Step       int
	LR         float64
	Generation int // 1-based reload count for this path
	LoadedAt   time.Time

	fi      os.FileInfo // stat at load time: mtime, size and (via os.SameFile) inode
	loadSeq int64       // registry-global load sequence: the response-cache invalidation tag
	model   *nn.Model
	batcher *batcher
	corpus  *data.Corpus
}

// ResidentBytes is the measured footprint of the open snapshot: the fp32
// weights actually held live. Gradients are freed on load and the optimizer
// sections were never decoded, so this is what serving costs.
func (e *Entry) ResidentBytes() int64 {
	var total int64
	for _, p := range e.model.Params().List() {
		total += 4 * int64(p.NumEl())
		if p.Grad != nil {
			total += 4 * int64(p.Grad.NumEl())
		}
	}
	return total
}

// PredictedBytes is the analytic counterpart of ResidentBytes: what
// memmodel.ServeBytes says this snapshot's architecture should cost resident.
// The memory contract keeps the two within 2%
// (TestResidentBytesMatchServeModel); the registry's memory ledger records
// their live delta on every sample.
func (e *Entry) PredictedBytes() int64 {
	params := e.model.Params().List()
	shapes := make([]memmodel.Shape, 0, len(params))
	for _, p := range params {
		shapes = append(shapes, memmodel.Shape{Name: p.Name, Rows: p.W.Rows, Cols: p.W.Cols})
	}
	return int64(memmodel.ServeBytes(shapes))
}

// ModelConfig exposes the served architecture (not the live instance).
func (e *Entry) ModelConfig() nn.Config { return e.model.Cfg }

// BatcherStats returns the entry's coalescing counters.
func (e *Entry) BatcherStats() Stats { return e.batcher.Stats() }

// Perplexity evaluates the corpus's fixed validation batches exactly as
// train.Validate does, serialized through the entry's executor. The result
// is bit-identical to the offline value at any concurrency.
func (e *Entry) Perplexity(batches, b, t int) (float64, error) {
	if e.corpus == nil {
		return 0, fmt.Errorf("serve: no corpus configured for perplexity queries")
	}
	// Bounded like the finetune knobs: the query runs exclusively on the
	// entry's executor, so an absurd size would wedge every other query on
	// this snapshot behind it (and a huge batch allocation cannot be
	// recovered once it OOMs).
	if batches < 1 || batches > 1024 {
		return 0, fmt.Errorf("serve: perplexity batches %d outside [1, 1024]", batches)
	}
	if b < 1 || b > 1024 || t < 1 || t > e.model.Cfg.MaxSeq {
		return 0, fmt.Errorf("serve: perplexity batch %d x seq %d invalid (batch <= 1024, seq <= MaxSeq %d)", b, t, e.model.Cfg.MaxSeq)
	}
	var loss float64
	err := e.batcher.exec(func(m *nn.Model) {
		loss = train.Validate(m, e.corpus, batches, b, t)
	})
	return loss, err
}

// LogProb scores one candidate continuation under the served model —
// eval.OptionLogProb's length-normalized rule, routed through the batcher
// so concurrent queries share forwards.
func (e *Entry) LogProb(context, option []int) (float64, error) {
	rq, err := e.newScoreReq(context, option)
	if err != nil {
		return 0, err
	}
	if err := e.batcher.score([]*scoreReq{rq}); err != nil {
		return 0, err
	}
	return rq.result, nil
}

// ZeroShot scores a multiple-choice item set and returns the accuracy under
// the likelihood-comparison protocol (eval.ZeroShotAccuracy). All options
// of all items are submitted to the batcher at once, so a single query
// already fills batched forwards.
func (e *Entry) ZeroShot(items []data.MCItem) (float64, error) {
	if len(items) == 0 {
		return 0, nil
	}
	var all []*scoreReq
	per := make([][]*scoreReq, len(items))
	for i, it := range items {
		if len(it.Options) == 0 {
			return 0, fmt.Errorf("serve: item %d has no options", i)
		}
		for _, opt := range it.Options {
			rq, err := e.newScoreReq(it.Context, opt)
			if err != nil {
				return 0, err
			}
			per[i] = append(per[i], rq)
			all = append(all, rq)
		}
	}
	if err := e.batcher.score(all); err != nil {
		return 0, err
	}
	correct := 0
	for i, it := range items {
		best, bi := math.Inf(-1), 0
		for o, rq := range per[i] {
			if rq.result > best {
				best, bi = rq.result, o
			}
		}
		if bi == it.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(items)), nil
}

// CloneModel returns an independent trainable copy of the served weights —
// the starting point for fine-tune-accuracy queries, which must never
// mutate the served snapshot. Weight reads race nothing: entries are
// immutable and forwards do not write weights.
func (e *Entry) CloneModel() *nn.Model {
	m := nn.NewModel(e.model.Cfg, tensor.NewRNG(1))
	src := e.model.Params().List()
	for i, p := range m.Params().List() {
		p.W.CopyFrom(src[i].W)
	}
	return m
}

// newScoreReq validates a query against the served architecture before it
// can reach the executor (a panic there would take the service down).
func (e *Entry) newScoreReq(context, option []int) (*scoreReq, error) {
	cfg := e.model.Cfg
	if n := len(context) + len(option) - 1; n > cfg.MaxSeq {
		return nil, fmt.Errorf("serve: query of %d tokens exceeds MaxSeq %d", n+1, cfg.MaxSeq)
	}
	for _, tok := range context {
		if tok < 0 || tok >= cfg.Vocab {
			return nil, fmt.Errorf("serve: context token %d outside vocab %d", tok, cfg.Vocab)
		}
	}
	for _, tok := range option {
		if tok < 0 || tok >= cfg.Vocab {
			return nil, fmt.Errorf("serve: option token %d outside vocab %d", tok, cfg.Vocab)
		}
	}
	return newScoreReq(context, option), nil
}

// slot is the registry's per-path cell: it serializes loads for one
// checkpoint path and holds the atomically swappable current entry.
type slot struct {
	mu      sync.Mutex
	cur     atomic.Pointer[Entry]
	gen     int
	lastUse int64 // registry LRU clock (under Registry.mu)
}

// Registry is the snapshot registry: path → open model, LRU-bounded, with
// hot reload on file change.
type Registry struct {
	cfg Config

	mu    sync.Mutex
	slots map[string]*slot
	clock int64

	loads  atomic.Int64
	evicts atomic.Int64

	om *registryMetrics // nil when Config.Metrics is nil
	bm *batcherMetrics  // shared by every entry's batcher; nil likewise
	mp *memprof.Profiler

	cache *responseCache // nil when CacheEntries < 0
	adm   *admission     // nil when ShedThreshold == 0
}

// NewRegistry builds a registry for one served architecture.
func NewRegistry(cfg Config) (*Registry, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	r := &Registry{cfg: cfg.withDefaults(), slots: map[string]*slot{}}
	r.om = newRegistryMetrics(r)
	// The shed verdict reads the batcher queue-wait histogram, so that
	// signal must exist even when the caller wired no metrics registry: an
	// unscraped private one costs a few KB and keeps one instrumentation
	// path instead of two.
	bmReg := r.cfg.Metrics
	if bmReg == nil && r.cfg.ShedThreshold > 0 {
		bmReg = obs.NewRegistry()
	}
	r.bm = newBatcherMetrics(bmReg)
	if r.cfg.ShedThreshold > 0 {
		r.adm = newAdmission(r.cfg.ShedThreshold, r.cfg.ShedWindow, r.bm.queueWait, bmReg)
	}
	if r.cfg.CacheEntries > 0 {
		r.cache = newResponseCache(r.cfg.CacheEntries, r.cfg.Metrics)
	}
	r.mp = r.cfg.MemProf
	if r.mp == nil && r.cfg.Metrics != nil {
		// No profiler wired but metrics are: give the gauge family a home so
		// apollo_mem_bytes{component="serve_snapshots"} is on /metrics by
		// default (no timeline, no capture — those need an explicit MemProf).
		r.mp = memprof.New(memprof.Config{Registry: r.cfg.Metrics})
	}
	// The ledger components pull through Entries(), so an eviction's bytes
	// vanish from the gauge the moment the slot leaves the map — the
	// eviction/GC accounting test pins exactly that.
	r.mp.Track(memprof.CompServeSnapshots, func() int64 {
		var total int64
		for _, e := range r.Entries() {
			total += e.ResidentBytes()
		}
		return total
	})
	r.mp.Track(memprof.CompBatcherBuffers, func() int64 {
		var total int64
		for _, e := range r.Entries() {
			total += e.batcher.queuedBytes()
		}
		return total
	})
	r.mp.PredictFunc(memprof.CompServeSnapshots, func() float64 {
		var total float64
		for _, e := range r.Entries() {
			total += float64(e.PredictedBytes())
		}
		return total
	})
	return r, nil
}

// registryMetrics is the snapshot registry's observability surface. All
// record methods are nil-receiver safe — the uninstrumented registry pays
// one branch per event.
type registryMetrics struct {
	reg     *obs.Registry
	hits    *obs.Counter
	loads   *obs.Counter
	reloads *obs.Counter
	evicts  *obs.Counter
}

func newRegistryMetrics(r *Registry) *registryMetrics {
	o := r.cfg.Metrics
	if o == nil {
		return nil
	}
	m := &registryMetrics{
		reg:     o,
		hits:    o.Counter("apollo_serve_registry_hits_total", "Acquires answered by the already-resident snapshot."),
		loads:   o.Counter("apollo_serve_registry_loads_total", "Snapshot loads (initial opens + hot reloads)."),
		reloads: o.Counter("apollo_serve_registry_hot_reloads_total", "Loads that replaced an older generation of the same checkpoint path."),
		evicts:  o.Counter("apollo_serve_registry_evictions_total", "Snapshots evicted by the LRU bound."),
	}
	o.GaugeFunc("apollo_serve_resident_models", "Snapshots currently resident in the LRU registry.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, s := range r.slots {
				if s.cur.Load() != nil {
					n++
				}
			}
			return float64(n)
		})
	return m
}

func (m *registryMetrics) hit() {
	if m == nil {
		return
	}
	m.hits.Inc()
}

func (m *registryMetrics) loaded(path string, gen int) {
	if m == nil {
		return
	}
	m.loads.Inc()
	if gen > 1 {
		m.reloads.Inc()
	}
	m.reg.Gauge("apollo_serve_snapshot_generation",
		"Hot-reload generation of each resident snapshot path.",
		obs.Label{Key: "checkpoint", Value: path}).Set(float64(gen))
}

func (m *registryMetrics) evicted() {
	if m == nil {
		return
	}
	m.evicts.Inc()
}

// Loads returns how many snapshot loads (initial + hot reloads) happened.
func (r *Registry) Loads() int64 { return r.loads.Load() }

// Evictions returns how many snapshots the LRU bound pushed out.
func (r *Registry) Evictions() int64 { return r.evicts.Load() }

// Acquire returns the current entry for a checkpoint path, loading it on
// first use and hot-reloading when the file on disk changed. Change
// detection compares the inode (os.SameFile) as well as mtime and size:
// the atomic temp+rename save always lands on a fresh inode, so two
// periodic saves of the same run are told apart even when they are
// byte-count-identical and within one coarse filesystem timestamp tick.
// The returned entry stays valid for the caller's query even if a newer
// generation or an eviction supersedes it.
func (r *Registry) Acquire(path string) (*Entry, error) {
	r.mu.Lock()
	s, ok := r.slots[path]
	if !ok {
		s = &slot{}
		r.slots[path] = s
		r.evictLocked(path)
	}
	r.clock++
	s.lastUse = r.clock
	r.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	fi, err := os.Stat(path)
	if err != nil {
		r.dropIfEmpty(path, s)
		return nil, err
	}
	if cur := s.cur.Load(); cur != nil && os.SameFile(cur.fi, fi) &&
		cur.fi.ModTime().Equal(fi.ModTime()) && cur.fi.Size() == fi.Size() {
		r.om.hit()
		return cur, nil
	}
	e, err := r.load(path, fi)
	if err != nil {
		r.dropIfEmpty(path, s)
		return nil, err
	}
	s.gen++
	e.Generation = s.gen
	r.om.loaded(path, s.gen)
	if old := s.cur.Swap(e); old != nil {
		old.batcher.close()
	}
	// An eviction (another Acquire filling the registry past MaxModels) may
	// have removed this slot from the map while the load ran — nothing
	// would ever close the fresh entry's executor then. Detect the orphan
	// and drain it; the caller's queries get the retryable errClosed and
	// WithEntry lands on a clean reload.
	r.mu.Lock()
	alive := r.slots[path] == s
	r.mu.Unlock()
	if !alive {
		e.batcher.close()
	}
	return e, nil
}

// Entries snapshots the currently resident entries, most recently used
// first.
func (r *Registry) Entries() []*Entry {
	r.mu.Lock()
	type row struct {
		e  *Entry
		at int64
	}
	var rows []row
	for _, s := range r.slots {
		if e := s.cur.Load(); e != nil {
			rows = append(rows, row{e, s.lastUse})
		}
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].at > rows[j].at })
	out := make([]*Entry, len(rows))
	for i, rw := range rows {
		out[i] = rw.e
	}
	return out
}

// load opens a checkpoint through the weights-only path and builds the
// eval-only model.
func (r *Registry) load(path string, fi os.FileInfo) (*Entry, error) {
	snap, err := ckpt.LoadModelFile(path)
	if err != nil {
		// A vanished or unreadable path is the caller naming a checkpoint
		// the service cannot see (404, like a failed stat); anything else —
		// truncated file, bad magic, decode failure — is a file the service
		// owns but cannot serve (500).
		if errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) {
			return nil, err
		}
		return nil, internalErr(fmt.Errorf("serve: load %s: %w", path, err))
	}
	model := nn.NewModel(r.cfg.Model, tensor.NewRNG(1))
	if err := snap.InstallWeights(model.Params().List()); err != nil {
		return nil, internalErr(fmt.Errorf("serve: %s does not match the served architecture: %w", path, err))
	}
	// Eval-only: free the gradient accumulators; the snapshot's own weight
	// copies are garbage after InstallWeights. Resident cost from here on
	// is one set of fp32 weights (memmodel.ServeBytes).
	model.Params().FreeGrads()
	mq := r.cfg.MaxQueue
	if mq < 0 {
		mq = 0 // negative config = explicitly unbounded
	}
	return &Entry{
		Path:      path,
		Optimizer: snap.Optimizer,
		Step:      snap.Step,
		LR:        snap.LR,
		LoadedAt:  time.Now(),
		fi:        fi,
		loadSeq:   r.loads.Add(1),
		model:     model,
		batcher:   newBatcher(model, r.cfg.MaxBatch, mq, r.bm),
		corpus:    r.cfg.Corpus,
	}, nil
}

// evictLocked drops least-recently-used slots beyond MaxModels, never the
// one just added. Callers hold r.mu.
func (r *Registry) evictLocked(keep string) {
	for len(r.slots) > r.cfg.MaxModels {
		victim, oldest := "", int64(math.MaxInt64)
		for p, s := range r.slots {
			if p != keep && s.lastUse < oldest {
				victim, oldest = p, s.lastUse
			}
		}
		if victim == "" {
			return
		}
		s := r.slots[victim]
		delete(r.slots, victim)
		if e := s.cur.Load(); e != nil {
			e.batcher.close()
		}
		r.evicts.Add(1)
		r.om.evicted()
	}
}

// dropIfEmpty removes a slot that never loaded anything so failed paths
// don't occupy LRU capacity.
func (r *Registry) dropIfEmpty(path string, s *slot) {
	r.mu.Lock()
	if cur, ok := r.slots[path]; ok && cur == s && s.cur.Load() == nil {
		delete(r.slots, path)
	}
	r.mu.Unlock()
}

// WithEntry acquires the path and runs f on its entry, retrying once if the
// entry was superseded (hot reload or eviction) between acquire and use.
func (r *Registry) WithEntry(path string, f func(*Entry) error) error {
	for attempt := 0; ; attempt++ {
		e, err := r.Acquire(path)
		if err != nil {
			return err
		}
		err = f(e)
		if err == errClosed && attempt == 0 {
			continue
		}
		return err
	}
}
