package quant

import (
	"math"
	"testing"
	"testing/quick"

	"apollo/internal/tensor"
)

func TestRoundTripErrorSmall(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := tensor.NewMatrixRand(64, 64, 1, rng)
	if err := QuantError(m, DefaultGroupSize); err > 0.02 {
		t.Fatalf("INT8 round-trip error %v too large", err)
	}
}

func TestRoundTripExactForZeros(t *testing.T) {
	m := tensor.NewMatrix(8, 8)
	q := NewTensor8(8, 8, 4)
	Quantize(q, m, nil)
	back := Dequantize(q, nil)
	if !back.Equal(m) {
		t.Fatal("zero tensor must round-trip exactly")
	}
}

func TestQuantizePreservesSign(t *testing.T) {
	m := tensor.FromSlice(1, 4, []float32{-3, -1, 1, 3})
	q := NewTensor8(1, 4, 4)
	Quantize(q, m, nil)
	back := Dequantize(q, nil)
	for i, v := range back.Data {
		if (v < 0) != (m.Data[i] < 0) {
			t.Fatalf("sign flipped at %d: %v vs %v", i, v, m.Data[i])
		}
	}
}

func TestGroupScalesIndependent(t *testing.T) {
	// A large value in one group must not destroy precision in another.
	m := tensor.NewMatrix(1, 8)
	for i := 0; i < 4; i++ {
		m.Data[i] = 1000
	}
	for i := 4; i < 8; i++ {
		m.Data[i] = 0.001 * float32(i)
	}
	q := NewTensor8(1, 8, 4)
	Quantize(q, m, nil)
	back := Dequantize(q, nil)
	for i := 4; i < 8; i++ {
		if math.Abs(float64(back.Data[i]-m.Data[i])) > 1e-4 {
			t.Fatalf("small group polluted: %v vs %v", back.Data[i], m.Data[i])
		}
	}
}

func TestStochasticRoundingUnbiased(t *testing.T) {
	// Encoding a constant 0.5-of-a-code value many times must average to
	// the true value, not the floor.
	rng := tensor.NewRNG(2)
	m := tensor.NewMatrix(1, 128)
	m.Fill(0.5)
	// Add one sentinel 127 so scale = 1/... known: absmax=127? simpler:
	m.Data[0] = 127
	q := NewTensor8(1, 128, 128)
	var sum float64
	const trials = 400
	for k := 0; k < trials; k++ {
		Quantize(q, m, rng)
		back := Dequantize(q, nil)
		sum += float64(back.Data[1])
	}
	avg := sum / trials
	if math.Abs(avg-0.5) > 0.05 {
		t.Fatalf("stochastic rounding biased: mean %v want 0.5", avg)
	}
}

func TestBytesAccounting(t *testing.T) {
	q := NewTensor8(16, 16, 128)
	want := int64(256 + 4*2) // 256 codes + 2 group scales
	if q.Bytes() != want {
		t.Fatalf("Bytes = %d want %d", q.Bytes(), want)
	}
}

func TestQuantizedWeightUpdate(t *testing.T) {
	rng := tensor.NewRNG(3)
	w := tensor.NewMatrixRand(8, 8, 1, rng)
	qw := NewQuantizedWeight(w, 32, 7)
	delta := tensor.NewMatrixRand(8, 8, 0.1, rng)
	before := qw.Materialize(nil)
	qw.Update(delta)
	after := qw.Materialize(nil)
	moved := tensor.Sub(after, before)
	// The realized movement must correlate strongly with the requested delta.
	dot := tensor.Dot(moved.Data, delta.Data)
	if dot <= 0 {
		t.Fatal("update moved weights against the delta")
	}
	cos := dot / float32(moved.Norm()*delta.Norm())
	if cos < 0.8 {
		t.Fatalf("update direction cosine %v too low", cos)
	}
}

func TestQuantizedWeightAccumulatesSmallUpdates(t *testing.T) {
	// Repeated tiny updates must not be swallowed: stochastic rounding
	// should accumulate them in expectation.
	w := tensor.NewMatrix(1, 128)
	w.Data[0] = 1 // sets the scale
	qw := NewQuantizedWeight(w, 128, 11)
	delta := tensor.NewMatrix(1, 128)
	delta.Data[5] = 0.001 // far below one code (scale ≈ 1/127)
	for i := 0; i < 3000; i++ {
		qw.Update(delta)
	}
	got := qw.Materialize(nil).Data[5]
	if got < 1.0 { // expect ≈ 3.0 accumulated
		t.Fatalf("small updates vanished: got %v want ≈3", got)
	}
}

func TestQuantizeClampsOutliers(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		m := tensor.NewMatrixRand(4, 32, 10, rng)
		q := NewTensor8(4, 32, 16)
		Quantize(q, m, rng)
		for _, c := range q.Codes {
			if c > 127 || c < -127 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDequantizeIntoProvided(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := tensor.NewMatrixRand(4, 4, 1, rng)
	q := NewTensor8(4, 4, 8)
	Quantize(q, m, nil)
	out := tensor.NewMatrix(4, 4)
	got := Dequantize(q, out)
	if got != out {
		t.Fatal("Dequantize must reuse the provided matrix")
	}
}
