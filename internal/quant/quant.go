// Package quant implements group-wise INT8 absmax quantization for weights
// and optimizer states, the storage format behind the paper's 8-bit Adam /
// 8-bit GaLore baselines (Table 3) and the Q-APOLLO / Q-GaLore variants
// (Table 8, Fig. 1 middle). Values are stored as int8 codes plus one float32
// scale per group; stochastic rounding keeps the quantization error unbiased
// so that training still converges.
package quant

import (
	"fmt"
	"math"

	"apollo/internal/tensor"
)

// DefaultGroupSize is the quantization group used throughout the paper's
// INT8 experiments.
const DefaultGroupSize = 128

// Tensor8 is an INT8-quantized tensor: codes in [-127, 127] with one
// float32 absmax scale per group of GroupSize consecutive values.
type Tensor8 struct {
	Rows, Cols int
	GroupSize  int
	Codes      []int8
	Scales     []float32
}

// NewTensor8 allocates a zeroed quantized tensor.
func NewTensor8(rows, cols, groupSize int) *Tensor8 {
	if groupSize <= 0 {
		panic(fmt.Sprintf("quant: group size %d", groupSize))
	}
	n := rows * cols
	groups := (n + groupSize - 1) / groupSize
	return &Tensor8{
		Rows: rows, Cols: cols, GroupSize: groupSize,
		Codes:  make([]int8, n),
		Scales: make([]float32, groups),
	}
}

// Quantize encodes m into q. If rng is non-nil, stochastic rounding is used
// (required when the tensor is an optimizer state that accumulates small
// updates); otherwise round-to-nearest.
func Quantize(q *Tensor8, m *tensor.Matrix, rng *tensor.RNG) {
	if q.Rows != m.Rows || q.Cols != m.Cols {
		panic(fmt.Sprintf("quant: shape mismatch %dx%d vs %dx%d", q.Rows, q.Cols, m.Rows, m.Cols))
	}
	n := len(m.Data)
	for g := 0; g*q.GroupSize < n; g++ {
		lo := g * q.GroupSize
		hi := lo + q.GroupSize
		if hi > n {
			hi = n
		}
		var absmax float32
		for _, v := range m.Data[lo:hi] {
			a := v
			if a < 0 {
				a = -a
			}
			if a > absmax {
				absmax = a
			}
		}
		if absmax == 0 { //apollo:exactfloat exact max of magnitudes; zero means the group is all zeros
			q.Scales[g] = 0
			for i := lo; i < hi; i++ {
				q.Codes[i] = 0
			}
			continue
		}
		scale := absmax / 127
		q.Scales[g] = scale
		inv := 1 / scale
		for i := lo; i < hi; i++ {
			x := float64(m.Data[i] * inv)
			var code int
			if rng != nil {
				floor := math.Floor(x)
				frac := x - floor
				code = int(floor)
				if rng.Float64() < frac {
					code++
				}
			} else {
				code = int(math.Round(x))
			}
			if code > 127 {
				code = 127
			}
			if code < -127 {
				code = -127
			}
			q.Codes[i] = int8(code)
		}
	}
}

// Dequantize decodes q into out (allocating if out is nil) and returns it.
func Dequantize(q *Tensor8, out *tensor.Matrix) *tensor.Matrix {
	if out == nil {
		out = tensor.NewMatrix(q.Rows, q.Cols)
	}
	if out.Rows != q.Rows || out.Cols != q.Cols {
		panic("quant: dequantize shape mismatch")
	}
	for g := 0; g*q.GroupSize < len(q.Codes); g++ {
		lo := g * q.GroupSize
		hi := lo + q.GroupSize
		if hi > len(q.Codes) {
			hi = len(q.Codes)
		}
		s := q.Scales[g]
		for i := lo; i < hi; i++ {
			out.Data[i] = float32(q.Codes[i]) * s
		}
	}
	return out
}

// Bytes returns the resident size of the quantized tensor: one byte per
// code plus four per group scale.
func (q *Tensor8) Bytes() int64 {
	return int64(len(q.Codes)) + 4*int64(len(q.Scales))
}

// QuantError returns the relative Frobenius error between m and its
// round-trip through INT8. Used by tests and by the memory/quality tables.
func QuantError(m *tensor.Matrix, groupSize int) float64 {
	q := NewTensor8(m.Rows, m.Cols, groupSize)
	Quantize(q, m, nil)
	back := Dequantize(q, nil)
	diff := tensor.Sub(back, m)
	denom := m.Norm()
	if denom == 0 { //apollo:exactfloat guard against division by an exact-zero norm
		return 0
	}
	return diff.Norm() / denom
}

// QuantizedWeight keeps a weight matrix in INT8 between steps and exposes a
// float32 working copy for forward/backward. Update() folds a delta into the
// quantized representation with stochastic rounding — the Q-GaLore / Q-APOLLO
// weight path.
type QuantizedWeight struct {
	Q   *Tensor8
	rng *tensor.RNG
}

// NewQuantizedWeight quantizes w as the initial state.
func NewQuantizedWeight(w *tensor.Matrix, groupSize int, seed uint64) *QuantizedWeight {
	qw := &QuantizedWeight{
		Q:   NewTensor8(w.Rows, w.Cols, groupSize),
		rng: tensor.NewRNG(seed),
	}
	Quantize(qw.Q, w, nil)
	return qw
}

// Materialize decodes the current weight into out (or a new matrix).
func (qw *QuantizedWeight) Materialize(out *tensor.Matrix) *tensor.Matrix {
	return Dequantize(qw.Q, out)
}

// Update applies w ← w + delta in the quantized domain: decode, add,
// re-encode with stochastic rounding.
func (qw *QuantizedWeight) Update(delta *tensor.Matrix) {
	w := Dequantize(qw.Q, nil)
	tensor.AddInPlace(w, delta)
	Quantize(qw.Q, w, qw.rng)
}

// Bytes returns the resident byte count.
func (qw *QuantizedWeight) Bytes() int64 { return qw.Q.Bytes() }

// RNGState exposes the stochastic-rounding RNG phase for checkpointing.
func (qw *QuantizedWeight) RNGState() uint64 { return qw.rng.State() }

// SetRNGState restores a phase captured by RNGState.
func (qw *QuantizedWeight) SetRNGState(s uint64) { qw.rng.SetState(s) }
