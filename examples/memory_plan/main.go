// Memory planning: reproduce the paper's headline feasibility results from
// the analytic memory model — 7B under 12 GB with Q-APOLLO-Mini, 13B with
// naive DDP on one A100-80G, and the batch-size advantage behind the 3×
// throughput (Fig. 1, Section 5.3).
package main

import (
	"fmt"

	"apollo/internal/cluster"
	"apollo/internal/memmodel"
)

func main() {
	cfg7, _ := memmodel.ConfigByName("7B")
	cfg13, _ := memmodel.ConfigByName("13B")

	fmt.Println("== LLaMA-7B single-device memory (seq 256, micro-batch 1) ==")
	rows := []struct {
		label string
		plan  memmodel.Plan
	}{
		{"AdamW", memmodel.Plan{Config: cfg7, Method: memmodel.MethodAdamW, SeqLen: 256, MicroBatch: 1}},
		{"GaLore (r=1024)", memmodel.Plan{Config: cfg7, Method: memmodel.MethodGaLore, Rank: 1024, SeqLen: 256, MicroBatch: 1, LayerWiseGrad: true}},
		{"APOLLO (r=256)", memmodel.Plan{Config: cfg7, Method: memmodel.MethodAPOLLO, Rank: 256, SeqLen: 256, MicroBatch: 1, LayerWiseGrad: true}},
		{"APOLLO-Mini", memmodel.Plan{Config: cfg7, Method: memmodel.MethodAPOLLOMini, Rank: 1, SeqLen: 256, MicroBatch: 1, LayerWiseGrad: true}},
		{"Q-APOLLO-Mini", memmodel.Plan{Config: cfg7, Method: memmodel.MethodAPOLLOMini, Rank: 1, SeqLen: 256, MicroBatch: 1, LayerWiseGrad: true, Int8Weights: true, ActivationCkpt: true}},
	}
	for _, r := range rows {
		b := memmodel.Compute(r.plan)
		fmt.Printf("  %-16s total %6.2f GiB (w %5.2f / g %5.2f / s %5.2f / a %5.2f)\n",
			r.label, memmodel.GiB(b.Total()), memmodel.GiB(b.Weights),
			memmodel.GiB(b.Gradients), memmodel.GiB(b.States), memmodel.GiB(b.Activations))
	}

	fmt.Println("\n== Feasible micro-batches on 8×A100-80G, seq 1024 (drives Fig. 1's 3×) ==")
	w := cluster.Workload{Config: cfg7, Dev: cluster.A100_80G(), World: 8, SeqLen: 1024, GlobalBatch: 512}
	wLW := w
	wLW.LayerWise = true
	for _, p := range []struct {
		prof cluster.OptimizerProfile
		work cluster.Workload
	}{
		{cluster.ProfileAdamW(), w},
		{cluster.ProfileGaLore(1024, 200), wLW},
		{cluster.ProfileAPOLLO(256), wLW},
		{cluster.ProfileAPOLLOMini(), wLW},
	} {
		fmt.Printf("  %s\n", cluster.Describe(p.work, p.prof))
	}

	fmt.Println("\n== LLaMA-13B on a single A100-80G (naive DDP shard) ==")
	w13 := cluster.Workload{Config: cfg13, Dev: cluster.A100_80G(), World: 1, SeqLen: 256, GlobalBatch: 8, Ckpt: true}
	w13LW := w13
	w13LW.LayerWise = true
	fmt.Printf("  %s\n", cluster.Describe(w13, cluster.ProfileAdamW()))
	fmt.Printf("  %s\n", cluster.Describe(w13LW, cluster.ProfileAPOLLOMini()))
}
