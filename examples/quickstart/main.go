// Quickstart: pre-train a small LLaMA-style model with APOLLO-Mini and
// compare its memory footprint and quality against AdamW in ~a minute on a
// laptop CPU.
package main

import (
	"fmt"

	"apollo"
)

func main() {
	cfg := apollo.ModelConfig{
		Vocab: 256, Dim: 48, Hidden: 128, Heads: 4, Layers: 3, MaxSeq: 64,
	}
	corpus, err := apollo.NewCorpus(cfg.Vocab, 1, 2)
	if err != nil {
		panic(err)
	}

	const steps = 300
	// The paper's recipe: AdamW at its tuned LR; the APOLLO family inherits
	// GaLore's ~4x higher LR (Appendix A.4).
	const adamLR = 3e-3
	const apolloLR = 4 * adamLR

	train := func(opt apollo.Optimizer, lr float64, seed uint64) apollo.Result {
		model := apollo.NewModel(cfg, seed)
		return apollo.Pretrain(model, opt, corpus, apollo.PretrainConfig{
			Batch: 8, Seq: 32, Steps: steps,
			EvalEvery: 75, EvalBatches: 4,
			Schedule: apollo.WarmupCosine(lr, steps),
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
	}

	fmt.Println("== AdamW baseline ==")
	adam := train(apollo.NewAdamW(apollo.Hyper{LR: adamLR}), adamLR, 7)

	fmt.Println("\n== APOLLO-Mini (rank 1, tensor-wise scaling) ==")
	mini := train(apollo.NewMini(apollo.Hyper{LR: apolloLR}), apolloLR, 7)

	fmt.Println("\n== APOLLO (rank dim/4, channel-wise scaling) ==")
	ap := train(apollo.New(apollo.Hyper{LR: apolloLR}, apollo.Config{Rank: cfg.Dim / 4}), apolloLR, 7)

	fmt.Printf("\n%-14s %12s %14s\n", "optimizer", "val ppl", "optim states")
	for _, r := range []apollo.Result{adam, mini, ap} {
		fmt.Printf("%-14s %12.2f %14d bytes\n", r.Optimizer, r.FinalValPPL, r.StateBytes)
	}
	fmt.Println("\nAPOLLO(-Mini) should match or beat AdamW's perplexity while holding a")
	fmt.Println("fraction of its optimizer state on every projected matrix (2nr+2 vs 2mn).")
}
