// Rank ablation: the Fig. 5d experiment at example scale — sweep the
// auxiliary rank for GaLore, Fira and APOLLO and watch who survives low
// rank. APOLLO-Mini holds at rank 1; GaLore needs dim/4.
package main

import (
	"fmt"

	"apollo/internal/bench"
	"apollo/internal/optim"
	"apollo/internal/train"
)

func main() {
	proxy, err := bench.ProxyByName("60M")
	if err != nil {
		panic(err)
	}
	const steps = 150
	run := func(method string, rank int) float64 {
		opt, err := bench.BuildOptimizer(method, proxy.LR, rank, 1)
		if err != nil {
			panic(err)
		}
		corpus, err := bench.NewCorpus(17)
		if err != nil {
			panic(err)
		}
		model := proxy.NewProxyModel(33)
		res := train.Pretrain(model, opt, corpus, train.PretrainConfig{
			Batch: proxy.Batch, Seq: proxy.Seq, Steps: steps,
			Schedule: optim.NewWarmupCosine(proxy.LR, steps),
		})
		return res.FinalValPPL
	}

	adamw := run("AdamW", 0)
	fmt.Printf("full-rank AdamW reference: %.2f\n\n", adamw)
	fmt.Printf("%-6s %10s %10s %10s %12s\n", "rank", "GaLore", "Fira", "APOLLO", "APOLLO-Mini")
	for _, rank := range []int{1, 2, 4, 8} {
		g := run("GaLore", rank)
		f := run("Fira", rank)
		a := run("APOLLO", rank)
		m := run("APOLLO-Mini", 1) // Mini is rank-1 by definition
		fmt.Printf("%-6d %10.2f %10.2f %10.2f %12.2f\n", rank, g, f, a, m)
	}
	fmt.Println("\nexpected shape (Fig. 5d): GaLore degrades sharply at low rank; APOLLO degrades gently; Mini is flat.")
}
