// Fine-tuning: start from a quickly pretrained base model and compare full
// AdamW fine-tuning against LoRA and the APOLLO family on a synthetic
// topic-classification suite (the Table 5 protocol at example scale).
package main

import (
	"fmt"

	"apollo/internal/bench"
	"apollo/internal/data"
	"apollo/internal/nn"
	"apollo/internal/optim"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

func main() {
	proxy, err := bench.ProxyByName("130M")
	if err != nil {
		panic(err)
	}
	corpus, err := bench.NewCorpus(17)
	if err != nil {
		panic(err)
	}

	fmt.Println("pretraining the base model (AdamW, 150 steps)...")
	base := proxy.NewProxyModel(33)
	res := train.Pretrain(base, optim.NewAdamW(optim.Hyper{LR: proxy.LR}), corpus, train.PretrainConfig{
		Batch: proxy.Batch, Seq: proxy.Seq, Steps: 150,
		Schedule: optim.NewWarmupCosine(proxy.LR, 150),
	})
	fmt.Printf("base model val ppl: %.2f\n\n", res.FinalValPPL)

	task := data.GenerateFTTask(corpus.Source(), data.FTTaskConfig{
		Name: "topic-classification", Train: 160, Test: 96,
		CtxLen: 24, Classes: 4, Noise: 0.1, Seed: 5,
	})

	methods := []string{"AdamW", "LoRA", "DoRA", "GaLore", "Fira", "APOLLO", "APOLLO-Mini"}
	fmt.Printf("%-14s %10s %16s\n", "method", "accuracy", "optim states")
	for _, m := range methods {
		model := cloneModel(base, proxy.Model)
		lr := 3e-3
		if m == "AdamW" {
			lr = 1e-3
		}
		opt, err := bench.BuildOptimizer(m, lr, 8, 7)
		if err != nil {
			panic(err)
		}
		acc := train.FineTune(model, opt, task, train.FineTuneConfig{
			Epochs: 4, Batch: 8, Schedule: optim.Linear{Peak: lr, TotalSteps: 160}, Seed: 11,
		})
		fmt.Printf("%-14s %9.1f%% %16s\n", opt.Name(), acc*100, train.FormatBytes(opt.StateBytes()))
	}
	fmt.Println("\nexpected shape (Table 5): APOLLO family ≈ full fine-tuning accuracy with a fraction of the state.")
}

func cloneModel(base *nn.Model, cfg nn.Config) *nn.Model {
	clone := nn.NewModel(cfg, tensor.NewRNG(0xC10E))
	src := base.Params().List()
	dst := clone.Params().List()
	for i := range src {
		dst[i].W.CopyFrom(src[i].W)
	}
	return clone
}
