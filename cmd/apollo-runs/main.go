// Command apollo-runs inspects the run ledger that apollo-pretrain and
// apollo-bench write under runs/ (see internal/obs/runlog).
//
// Usage:
//
//	apollo-runs list                       # table of every run, oldest first
//	apollo-runs list -q                    # bare IDs (newest last; script-friendly)
//	apollo-runs show <id>                  # one run's manifest, alerts, final metrics
//	apollo-runs diff <idA> <idB>           # align two runs step-by-step
//	apollo-runs diff -baseline DIR <id>    # compare a run against a committed baseline dir
//	apollo-runs mem <id>                   # render a run's memory timeline (mem.jsonl)
//	apollo-runs gc -keep 20 -age 720h      # prune old entries
//	apollo-runs watch <id>                 # live-tail a run's step stream
//	apollo-runs watch -telemetry f.jsonl   # tail a bare -telemetry file instead
//	apollo-runs watch -metrics http://127.0.0.1:8080/metrics <id>
//
// Subcommand flags come before positional arguments (standard Go flag
// parsing stops at the first non-flag).
//
// diff is the CI regression gate: it reports the first loss-divergence step,
// loss deltas at checkpoints, phase-time breakdown deltas, step-wall
// p50/p95, and peak ledger memory, then exits 1 when the loss gate
// (-loss-tol, default 0 = bit-exact), the opt-in time gate (-time-tol,
// fraction; 0 disables), or the opt-in memory gate (-mem-tol, fraction over
// the baseline's peak ledger bytes; 0 disables) trips. mem renders the
// memory timeline apollo-pretrain records (component peaks against their
// memmodel predictions, heap/RSS peaks, high-water marks). watch polls a
// growing steps.jsonl by byte offset — safe against
// torn tail lines — and can additionally scrape a Prometheus /metrics
// endpoint, reporting request rates and latency quantiles interpolated from
// the cumulative histogram buckets.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"apollo/internal/obs"
	"apollo/internal/obs/runlog"
)

func main() {
	root := flag.String("root", "runs", "run-ledger root directory")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "list":
		err = cmdList(*root, args[1:])
	case "show":
		err = cmdShow(*root, args[1:])
	case "diff":
		err = cmdDiff(*root, args[1:])
	case "mem":
		err = cmdMem(*root, args[1:])
	case "gc":
		err = cmdGC(*root, args[1:])
	case "watch":
		err = cmdWatch(*root, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "apollo-runs: unknown command %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "apollo-runs:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: apollo-runs [-root DIR] <command> [flags] [args]

commands:
  list    [-q]                                      list runs (oldest first)
  show    <id>                                      one run in detail
  diff    [-loss-tol F] [-time-tol F] [-mem-tol F] [-baseline DIR] <idA> [<idB>]
                                                    align two runs; exit 1 on gate failure
  mem     [-rows N] <id|dir>                        render a run's memory timeline
  gc      [-keep N] [-age DUR] [-n]                 prune old runs
  watch   [-interval DUR] [-n N] [-metrics URL] [-telemetry FILE] [<id>]
                                                    live-tail a run
`)
}

func cmdList(root string, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print bare run IDs only")
	fs.Parse(args)
	ms, err := runlog.List(root)
	if err != nil {
		return err
	}
	if *quiet {
		for _, m := range ms {
			fmt.Println(m.ID)
		}
		return nil
	}
	if len(ms) == 0 {
		fmt.Printf("no runs under %s\n", root)
		return nil
	}
	fmt.Printf("%-42s %-12s %-10s %6s %10s %8s %7s\n",
		"id", "optimizer", "status", "steps", "final loss", "ppl", "alerts")
	for _, m := range ms {
		loss, ppl := "-", "-"
		if m.Status != runlog.StatusRunning && m.Steps > 0 {
			loss = fmt.Sprintf("%.4f", m.FinalLoss)
			ppl = fmt.Sprintf("%.2f", m.FinalPPL)
		}
		fmt.Printf("%-42s %-12s %-10s %6d %10s %8s %7d\n",
			m.ID, m.Optimizer, m.Status, m.Steps, loss, ppl, m.Alerts)
	}
	return nil
}

func cmdShow(root string, args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("show needs exactly one run ID")
	}
	rd, err := runlog.Load(root, fs.Arg(0))
	if err != nil {
		return err
	}
	m := rd.Manifest
	fmt.Printf("run        %s\n", m.ID)
	fmt.Printf("command    %s\n", m.Command)
	fmt.Printf("optimizer  %s  seed %d  replicas %d  zero %v\n", m.Optimizer, m.Seed, m.Replicas, m.ZeRO)
	fmt.Printf("host       %s  %d cores  %s/%s  %s\n", m.Host.Hostname, m.Host.Cores, m.Host.GOOS, m.Host.GOARCH, m.Host.GoVersion)
	fmt.Printf("start      %s\n", m.Start.Format(time.RFC3339))
	if !m.End.IsZero() {
		fmt.Printf("end        %s  (%.1fs)\n", m.End.Format(time.RFC3339), m.End.Sub(m.Start).Seconds())
	}
	fmt.Printf("status     %s", m.Status)
	if m.Error != "" {
		fmt.Printf("  (%s)", m.Error)
	}
	fmt.Println()
	if keys := sortedKeys(m.Config); len(keys) > 0 {
		fmt.Printf("config    ")
		for _, k := range keys {
			fmt.Printf(" %s=%v", k, m.Config[k])
		}
		fmt.Println()
	}
	if m.Steps > 0 {
		fmt.Printf("steps      %d  final loss %.6f  ppl %.2f  step wall %.3fs\n",
			m.Steps, m.FinalLoss, m.FinalPPL, m.StepWallSeconds)
	}
	if len(m.PhaseSeconds) > 0 {
		fmt.Println("phases:")
		for _, name := range obs.PhaseNames() {
			if s, ok := m.PhaseSeconds[name]; ok {
				fmt.Printf("  %-10s %10.3fs  (%4.1f%%)\n", name, s, 100*s/m.StepWallSeconds)
			}
		}
	}
	if n := len(rd.Steps); n > 0 {
		last := rd.Steps[n-1]
		fmt.Printf("series     %d step events; last: step %d loss %.6f grad %.4f\n",
			n, last.Step, last.Loss, last.GradNorm)
	}
	for _, a := range rd.Alerts {
		fmt.Printf("alert      step %d %s loss=%g median=%g factor=%.1f halt=%v\n",
			a.Step, a.Kind, a.Loss, a.Median, a.Factor, a.Halt)
	}
	return nil
}

func cmdDiff(root string, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	lossTol := fs.Float64("loss-tol", 0, "max |Δloss| per aligned step (0 = bit-exact)")
	timeTol := fs.Float64("time-tol", 0, "max fractional p50 step-wall regression (0 disables the time gate)")
	memTol := fs.Float64("mem-tol", 0, "max fractional peak-ledger-memory regression (0 disables the memory gate)")
	baseline := fs.String("baseline", "", "baseline run directory (A side); compare one run ID against it")
	ckpts := fs.Int("checkpoints", 0, "loss checkpoints to print (0 = default 10)")
	fs.Parse(args)

	var a, b *runlog.RunData
	var err error
	switch {
	case *baseline != "" && fs.NArg() == 1:
		if a, err = runlog.LoadDir(*baseline); err != nil {
			return err
		}
		if b, err = runlog.Load(root, fs.Arg(0)); err != nil {
			return err
		}
	case *baseline == "" && fs.NArg() == 2:
		if a, err = runlog.Load(root, fs.Arg(0)); err != nil {
			return err
		}
		if b, err = runlog.Load(root, fs.Arg(1)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("diff needs two run IDs, or -baseline DIR plus one run ID")
	}
	rep := runlog.Diff(a, b, runlog.DiffOptions{LossTol: *lossTol, TimeTol: *timeTol, MemTol: *memTol, Checkpoints: *ckpts})
	rep.Write(os.Stdout)
	if rep.Failed() {
		os.Exit(1)
	}
	return nil
}

// cmdMem renders a run's memory timeline (mem.jsonl): per-component peaks
// with their analytic predictions, process-level peaks, and a sampled view
// of the timeline itself. Accepts a ledger run ID or a bare run directory
// (e.g. a committed CI baseline).
func cmdMem(root string, args []string) error {
	fs := flag.NewFlagSet("mem", flag.ExitOnError)
	rows := fs.Int("rows", 10, "timeline rows to print (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("mem needs exactly one run ID or directory")
	}
	var rd *runlog.RunData
	var err error
	if st, serr := os.Stat(fs.Arg(0)); serr == nil && st.IsDir() {
		rd, err = runlog.LoadDir(fs.Arg(0))
	} else {
		rd, err = runlog.Load(root, fs.Arg(0))
	}
	if err != nil {
		return err
	}
	if len(rd.Mem) == 0 {
		return fmt.Errorf("run %s has no memory timeline (%s)", rd.Manifest.ID, runlog.MemFile)
	}

	first, last := rd.Mem[0], rd.Mem[len(rd.Mem)-1]
	span := time.Duration(last.UnixUS-first.UnixUS) * time.Microsecond
	fmt.Printf("run        %s\n", rd.Manifest.ID)
	fmt.Printf("samples    %d over %s (steps %d..%d)\n", len(rd.Mem), span.Round(time.Millisecond), first.Step, last.Step)

	// Per-component peaks, with the analytic prediction (from the sample
	// where the component peaked) and its delta when one was recorded.
	type peakInfo struct {
		bytes     int64
		predicted float64
		hasPred   bool
	}
	peaks := map[string]peakInfo{}
	for _, s := range rd.Mem {
		for comp, v := range s.Components {
			p := peaks[comp]
			if v >= p.bytes {
				p.bytes = v
				if pred, ok := s.Predicted[comp]; ok {
					p.predicted, p.hasPred = pred, true
				}
			}
			peaks[comp] = p
		}
	}
	fmt.Printf("components (peak):\n")
	for _, comp := range sortedKeys(peaks) {
		p := peaks[comp]
		line := fmt.Sprintf("  %-24s %12s", comp, fmtBytes(p.bytes))
		if p.hasPred && p.predicted > 0 {
			line += fmt.Sprintf("  predicted %12s  delta %+.2f%%",
				fmtBytes(int64(p.predicted)), 100*(float64(p.bytes)-p.predicted)/p.predicted)
		}
		fmt.Println(line)
	}

	peak, _ := rd.MemPeak()
	fmt.Printf("peaks      ledger %s (step %d)", fmtBytes(peak.TotalBytes), peak.Step)
	var heapMax, rssMax int64
	for _, s := range rd.Mem {
		heapMax = maxI64(heapMax, int64(s.HeapInuse))
		rssMax = maxI64(rssMax, s.RSSBytes)
	}
	fmt.Printf("  heap in-use %s", fmtBytes(heapMax))
	if rssMax > 0 {
		fmt.Printf("  rss %s", fmtBytes(rssMax))
	}
	fmt.Println()
	fmt.Printf("gc         %d cycles, %s total pause\n",
		last.GCCycles, time.Duration(last.GCPauseNS).Round(time.Microsecond))

	// Timeline: up to -rows evenly spaced samples, peaks flagged.
	n := len(rd.Mem)
	stride := 1
	if *rows > 0 && n > *rows {
		stride = (n + *rows - 1) / *rows
	}
	fmt.Printf("%8s %12s %12s %12s %s\n", "step", "ledger", "heap", "rss", "")
	for i := 0; i < n; i += stride {
		s := rd.Mem[i]
		mark := ""
		if s.HighWater {
			mark = "  ← high water"
		}
		rss := "-"
		if s.RSSBytes > 0 {
			rss = fmtBytes(s.RSSBytes)
		}
		fmt.Printf("%8d %12s %12s %12s%s\n", s.Step, fmtBytes(s.TotalBytes), fmtBytes(int64(s.HeapInuse)), rss, mark)
	}
	return nil
}

// fmtBytes prints a byte count at a human scale (matches runlog's diff
// rendering).
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func cmdGC(root string, args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	keep := fs.Int("keep", -1, "keep only the newest N runs (-1 = no count limit)")
	age := fs.Duration("age", 0, "also remove runs older than this (0 = no age limit)")
	dry := fs.Bool("n", false, "dry run: list what would be removed")
	fs.Parse(args)
	if *keep < 0 && *age <= 0 {
		return fmt.Errorf("gc needs -keep N and/or -age DUR")
	}
	if *dry {
		ms, err := runlog.List(root)
		if err != nil {
			return err
		}
		now := time.Now().UTC()
		for i, m := range ms {
			if (*keep >= 0 && len(ms)-i > *keep) || (*age > 0 && now.Sub(m.Start) > *age) {
				fmt.Printf("would remove %s (%s, started %s)\n", m.ID, m.Status, m.Start.Format(time.RFC3339))
			}
		}
		return nil
	}
	removed, err := runlog.GC(root, *keep, *age)
	for _, id := range removed {
		fmt.Printf("removed %s\n", id)
	}
	if err == nil {
		fmt.Printf("gc: removed %d run(s)\n", len(removed))
	}
	return err
}

func cmdWatch(root string, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	iters := fs.Int("n", 0, "stop after N polls (0 = until interrupted)")
	metricsURL := fs.String("metrics", "", "also scrape this Prometheus /metrics endpoint each poll")
	telem := fs.String("telemetry", "", "tail this bare telemetry JSONL file instead of a ledger run")
	fs.Parse(args)

	var path string
	switch {
	case *telem != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("watch takes a run ID or -telemetry FILE, not both")
		}
		path = *telem
	case fs.NArg() == 1:
		path = filepath.Join(root, fs.Arg(0), runlog.StepsFile)
	default:
		return fmt.Errorf("watch needs a run ID or -telemetry FILE")
	}

	tail := &stepTail{path: path}
	lastStep, lastWall := 0, time.Now()
	for poll := 0; *iters == 0 || poll < *iters; poll++ {
		if poll > 0 {
			time.Sleep(*interval)
		}
		evs, err := tail.next()
		if err != nil {
			return err
		}
		now := time.Now()
		line := fmt.Sprintf("%s ", now.Format("15:04:05"))
		if len(evs) > 0 {
			last := evs[len(evs)-1]
			rate := float64(last.Step-lastStep) / now.Sub(lastWall).Seconds()
			if poll == 0 {
				// First poll reads the whole backlog; a rate over the poll
				// window would be meaningless.
				rate = 0
			}
			line += fmt.Sprintf("step %d  loss %.6f  grad %.4f  wall %.3fs",
				last.Step, last.Loss, last.GradNorm, last.WallSeconds)
			if rate > 0 {
				line += fmt.Sprintf("  %.2f steps/s", rate)
			}
			lastStep, lastWall = last.Step, now
		} else {
			line += fmt.Sprintf("no new steps (at %d)", lastStep)
		}
		fmt.Println(line)
		if *metricsURL != "" {
			if err := scrapeMetrics(*metricsURL); err != nil {
				fmt.Printf("  metrics: %v\n", err)
			}
		}
	}
	return nil
}

// stepTail incrementally reads complete JSONL lines from a growing file,
// resuming at the byte offset after the last full line so a torn tail line
// (a write in progress) is retried on the next poll.
type stepTail struct {
	path string
	off  int64
}

func (t *stepTail) next() ([]obs.StepEvent, error) {
	f, err := os.Open(t.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close() //apollo:allowdiscard file opened read-only; close cannot lose written bytes
	if _, err := f.Seek(t.off, io.SeekStart); err != nil {
		return nil, err
	}
	var evs []obs.StepEvent
	rd := bufio.NewReader(f)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			// No trailing newline yet: leave the offset before this partial
			// line and pick it up complete on the next poll.
			break
		}
		t.off += int64(len(line))
		var ev obs.StepEvent
		if jerr := unmarshalStep(line, &ev); jerr == nil {
			evs = append(evs, ev)
		}
	}
	return evs, nil
}

func unmarshalStep(line []byte, ev *obs.StepEvent) error {
	dec := strings.TrimSpace(string(line))
	if dec == "" {
		return fmt.Errorf("empty")
	}
	return json.Unmarshal([]byte(dec), ev)
}

// scrapeMetrics GETs a Prometheus text endpoint and reports counters plus
// latency quantiles interpolated from cumulative histogram buckets.
func scrapeMetrics(url string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //apollo:allowdiscard read-only response stream; body is fully consumed above EOF
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	hists, counters, err := parsePromText(resp.Body)
	if err != nil {
		return err
	}
	for _, name := range sortedKeys(counters) {
		fmt.Printf("  %-44s %d\n", name, counters[name])
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		fmt.Printf("  %-44s n=%d p50=%.4fs p95=%.4fs\n", name, h.count, h.quantile(0.50), h.quantile(0.95))
	}
	return nil
}

// promHist is one histogram series reassembled from its cumulative buckets.
type promHist struct {
	les   []float64 // sorted upper bounds, +Inf last
	cum   []uint64  // cumulative counts aligned with les
	count uint64
}

// quantile interpolates linearly inside the bucket holding rank q·count —
// the same estimate Prometheus's histogram_quantile produces.
func (h *promHist) quantile(q float64) float64 {
	if h.count == 0 || len(h.les) == 0 {
		return 0
	}
	rank := q * float64(h.count)
	for i, c := range h.cum {
		if float64(c) < rank {
			continue
		}
		upper := h.les[i]
		if math.IsInf(upper, 1) {
			// Open-ended bucket: report its lower bound.
			if i > 0 {
				return h.les[i-1]
			}
			return 0
		}
		lower, prev := 0.0, uint64(0)
		if i > 0 {
			lower, prev = h.les[i-1], h.cum[i-1]
		}
		width := float64(c - prev)
		if width <= 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(prev))/width
	}
	return h.les[len(h.les)-1]
}

// parsePromText reads Prometheus text exposition, returning histograms keyed
// by "name{labels}" (labels minus le) and plain counter samples.
func parsePromText(r io.Reader) (map[string]*promHist, map[string]int64, error) {
	hists := map[string]*promHist{}
	counters := map[string]int64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, value := line[:sp], line[sp+1:]
		name, labels := splitSeries(series)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, rest, ok := extractLE(labels)
			if !ok {
				continue
			}
			key := strings.TrimSuffix(name, "_bucket") + rest
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				continue
			}
			h := hists[key]
			if h == nil {
				h = &promHist{}
				hists[key] = h
			}
			h.les = append(h.les, le)
			h.cum = append(h.cum, v)
		case strings.HasSuffix(name, "_count"):
			key := strings.TrimSuffix(name, "_count") + labels
			if h := hists[key]; h != nil {
				if v, err := strconv.ParseUint(value, 10, 64); err == nil {
					h.count = v
				}
			} else if v, err := strconv.ParseUint(value, 10, 64); err == nil {
				// _count for a histogram whose buckets come later; create it.
				hists[key] = &promHist{count: v}
			}
		case strings.HasSuffix(name, "_sum"):
			// Sums aren't needed for quantiles.
		case strings.Contains(name, "_total"):
			if v, err := strconv.ParseInt(value, 10, 64); err == nil {
				counters[series] = v
			}
		}
	}
	for _, h := range hists {
		sortHist(h)
	}
	return hists, counters, sc.Err()
}

// splitSeries separates "name{a="b"}" into name and the brace part.
func splitSeries(s string) (name, labels string) {
	if i := strings.IndexByte(s, '{'); i >= 0 {
		return s[:i], s[i:]
	}
	return s, ""
}

// extractLE pulls le="..." out of a label set, returning its value and the
// label set with le removed (normalized for keying).
func extractLE(labels string) (le float64, rest string, ok bool) {
	if len(labels) < 2 {
		return 0, "", false
	}
	inner := labels[1 : len(labels)-1]
	var kept []string
	for _, part := range strings.Split(inner, ",") {
		k, v, found := strings.Cut(part, "=")
		if !found {
			continue
		}
		v = strings.Trim(v, `"`)
		if k == "le" {
			switch v {
			case "+Inf":
				le, ok = math.Inf(1), true
			default:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return 0, "", false
				}
				le, ok = f, true
			}
			continue
		}
		kept = append(kept, part)
	}
	if len(kept) > 0 {
		rest = "{" + strings.Join(kept, ",") + "}"
	}
	return le, rest, ok
}

func sortHist(h *promHist) {
	idx := make([]int, len(h.les))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.les[idx[a]] < h.les[idx[b]] })
	les := make([]float64, len(idx))
	cum := make([]uint64, len(idx))
	for i, j := range idx {
		les[i], cum[i] = h.les[j], h.cum[j]
	}
	h.les, h.cum = les, cum
	if h.count == 0 && len(cum) > 0 {
		h.count = cum[len(cum)-1]
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
