// Command apollo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	apollo-bench -list
//	apollo-bench -run table2 [-scale full] [-seed 7]
//	apollo-bench -run table1,table11,fig9 -jobs 3
//	apollo-bench -run all -jobs 4 -workers 2
//
// -jobs schedules independent experiments concurrently with per-runner
// output capture (results print in registry order regardless of completion
// order). -workers sizes the shared tensor worker pool each runner draws
// from; kernels are deterministic at any pool size, so both flags change
// only wall time, never the computed results (runners that print measured
// timings, like table7 and runtime, report whatever contention they ran
// under).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"apollo/internal/bench"
	rt "apollo/internal/runtime"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run (or 'all')")
		scale   = flag.String("scale", "quick", "quick | full")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		list    = flag.Bool("list", false, "list available experiments")
		jobs    = flag.Int("jobs", 1, "experiments to run concurrently")
		workers = flag.Int("workers", 0, "tensor worker pool size (0 = GOMAXPROCS)")
		runs    = flag.String("runs", "runs", "run-ledger root for pretrain-family training runs (empty disables; see apollo-runs)")
	)
	flag.Parse()

	if *workers > 0 {
		rt.SetWorkers(*workers)
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %-22s %s\n", e.ID, e.PaperRef, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> (or -run all)")
		}
		return
	}

	sc := bench.Quick
	if *scale == "full" {
		sc = bench.Full
	}

	var targets []bench.Experiment
	if *run == "all" {
		targets = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			targets = append(targets, e)
		}
	}

	if *jobs > 1 && len(targets) > 1 {
		runConcurrent(targets, *jobs, bench.RunContext{Scale: sc, Seed: *seed, RunRoot: *runs})
		return
	}

	for _, e := range targets {
		fmt.Printf("==== %s (%s) — %s ====\n", e.ID, e.PaperRef, e.Title)
		start := time.Now()
		ctx := &bench.RunContext{Scale: sc, Out: os.Stdout, Seed: *seed, RunRoot: *runs}
		if err := e.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %.1fs ----\n\n", e.ID, time.Since(start).Seconds())
	}
}

// runConcurrent fans the experiments out over the scheduler and prints each
// captured report in registry order.
func runConcurrent(targets []bench.Experiment, jobs int, base bench.RunContext) {
	fmt.Printf("running %d experiments with %d jobs, %d tensor workers\n\n",
		len(targets), jobs, rt.Workers())
	start := time.Now()
	reports := bench.RunConcurrentCtx(targets, jobs, base)
	failed := 0
	for _, r := range reports {
		fmt.Printf("==== %s — %s ====\n", r.ID, r.Title)
		os.Stdout.Write(r.Output)
		if r.Err != nil {
			failed++
			fmt.Printf("!!!! %s failed: %v\n\n", r.ID, r.Err)
			continue
		}
		fmt.Printf("---- %s done in %.1fs ----\n\n", r.ID, r.Seconds)
	}
	fmt.Printf("schedule complete: %d ok, %d failed, %.1fs wall\n",
		len(reports)-failed, failed, time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}
