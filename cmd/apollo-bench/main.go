// Command apollo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	apollo-bench -list
//	apollo-bench -run table2 [-scale full] [-seed 7]
//	apollo-bench -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"apollo/internal/bench"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run (or 'all')")
		scale = flag.String("scale", "quick", "quick | full")
		seed  = flag.Uint64("seed", 1, "experiment seed")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %-22s %s\n", e.ID, e.PaperRef, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> (or -run all)")
		}
		return
	}

	sc := bench.Quick
	if *scale == "full" {
		sc = bench.Full
	}

	var targets []bench.Experiment
	if *run == "all" {
		targets = bench.All()
	} else {
		e, err := bench.Lookup(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		targets = []bench.Experiment{e}
	}

	for _, e := range targets {
		fmt.Printf("==== %s (%s) — %s ====\n", e.ID, e.PaperRef, e.Title)
		start := time.Now()
		ctx := &bench.RunContext{Scale: sc, Out: os.Stdout, Seed: *seed}
		if err := e.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %.1fs ----\n\n", e.ID, time.Since(start).Seconds())
	}
}
