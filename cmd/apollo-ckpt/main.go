// Command apollo-ckpt inspects checkpoint files written by apollo-pretrain
// (internal/ckpt format): header and section dump with per-section CRC
// verification, a decoded META summary, and the predicted-vs-actual file
// size from the analytic memory model.
//
// Usage:
//
//	apollo-ckpt run.ckpt            # dump header, sections, summary
//	apollo-ckpt -verify run.ckpt    # integrity check only (exit 1 on corruption)
//
// A corrupt file (any flipped byte — every section carries a CRC-32) is
// reported with the offending section named and a non-zero exit status.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"apollo/internal/ckpt"
	"apollo/internal/memmodel"
	"apollo/internal/nn"
	"apollo/internal/train"
)

func main() {
	verify := flag.Bool("verify", false, "verify integrity only (quiet, exit 1 on corruption)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: apollo-ckpt [-verify] FILE...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := inspect(path, *verify); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func inspect(path string, verifyOnly bool) error {
	// One read serves both the section dump and the full decode — no second
	// pass over a multi-GiB file, and no window for a concurrent periodic
	// save to swap the bytes between CRC check and decode.
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := ckpt.Inspect(raw)
	if err != nil {
		return err
	}
	if verifyOnly {
		fmt.Printf("%s: ok (%d sections, %s)\n", path, len(info.Sections), train.FormatBytes(info.Size))
		return nil
	}

	fmt.Printf("%s: format v%d, %s\n", path, info.Version, train.FormatBytes(info.Size))
	fmt.Printf("  %-4s %12s %10s  %s\n", "tag", "bytes", "crc32", "status")
	for _, s := range info.Sections {
		fmt.Printf("  %-4s %12d %10x  ok\n", s.Tag, s.Len, s.CRC)
	}

	st, err := ckpt.Read(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	var weightElems int64
	statesPresent := 0
	shapes := make([]memmodel.Shape, len(st.Params))
	rank := 0
	for i, p := range st.Params {
		weightElems += int64(p.Rows) * int64(p.Cols)
		shapes[i] = memmodel.Shape{
			Name: p.Name, Rows: p.Rows, Cols: p.Cols,
			Projectable: nn.ParamKind(p.Kind) == nn.KindMatrix,
		}
		if ps := st.OptStates[i]; ps != nil {
			statesPresent++
			// The rank-space matrices reveal the training rank; the first
			// one seen fixes the memmodel prediction below.
			if rank == 0 && len(ps.Whole) > 0 {
				rank = ps.Whole[0].Rows
			}
		}
	}
	fmt.Printf("  optimizer   %s\n", st.Optimizer)
	fmt.Printf("  step        %d (lr %g)\n", st.Step, st.LR)
	fmt.Printf("  params      %d tensors, %d elements (%s fp32)\n",
		len(st.Params), weightElems, train.FormatBytes(4*weightElems))
	fmt.Printf("  opt states  %d/%d parameters, %d global cursors\n",
		statesPresent, len(st.Params), len(st.OptGlobals))
	fmt.Printf("  data cursor %#x\n", st.DataCursor)

	// What the snapshot costs to *serve* (apollo-serve's weights-only open
	// path: optimizer sections CRC-checked but never decoded, gradients
	// freed) — optimizer-independent by construction.
	fmt.Printf("  serving     %s resident (memmodel.ServeBytes; weights only)\n",
		train.FormatBytes(int64(memmodel.ServeBytes(shapes))))

	method, err := memmodel.MethodByName(st.Optimizer)
	if err != nil {
		fmt.Printf("  predicted   n/a (no memory-model entry for %q)\n", st.Optimizer)
		return nil
	}
	predicted := memmodel.CheckpointBytes(shapes, method, rank)
	dev := (float64(info.Size) - predicted) / predicted * 100
	fmt.Printf("  predicted   %s (memmodel.CheckpointBytes, rank %d) — actual %+.1f%%\n",
		train.FormatBytes(int64(predicted)), rank, dev)
	return nil
}
