// Command apollo-vet is the repo's contract linter: a multichecker running
// the internal/analysis suite — mapiter (bit-parity: no unordered map
// iteration in determinism-critical packages), floateq (no float ==/!=
// outside tests and annotated exact helpers), obsguard (nil-receiver
// guards on obs handle types) and closecheck (no discarded Close/Flush/
// Sync/Finalize errors on crash-honest writers).
//
// Usage:
//
//	apollo-vet [flags] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 load or
// usage error. CI runs `go run ./cmd/apollo-vet ./...` as a hard gate; a
// finding is fixed, or suppressed in place with the analyzer's
// //apollo:<directive> comment plus a justification (see README "Static
// analysis").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"apollo/internal/analysis"
	"apollo/internal/analysis/load"
	"apollo/internal/analysis/vet"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("apollo-vet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	dir := fs.String("C", "", "change to this directory before loading (module root)")
	tests := fs.Bool("tests", true, "also analyze _test.go files")
	listOnly := fs.Bool("list", false, "list analyzers and exit")

	all := vet.Suite()
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: apollo-vet [flags] [packages]\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *listOnly {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	if len(active) == 0 {
		fmt.Fprintln(os.Stderr, "apollo-vet: every analyzer disabled")
		return 2
	}

	diags, err := vet.Run(load.Config{Dir: *dir, IncludeTests: *tests}, active, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apollo-vet:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "apollo-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "apollo-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
