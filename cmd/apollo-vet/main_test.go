package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"strings"
	"testing"

	"apollo/internal/analysis"
)

// runVet runs the driver via `go run .` with args and returns its exit
// code and stdout — exercising the real process exit contract CI depends
// on (0 clean, 1 findings, 2 error). stderr is go run's own channel (it
// appends "exit status N") and is surfaced only on unexpected failure.
func runVet(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stdout.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	return ee.ExitCode(), stdout.String()
}

func TestDriverFlagsSeededViolation(t *testing.T) {
	code, out := runVet(t, "-C", "testdata/broken", "./...")
	if code != 1 {
		t.Fatalf("exit %d over seeded violation, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "range over map") || !strings.Contains(out, "[mapiter]") {
		t.Fatalf("missing mapiter diagnostic:\n%s", out)
	}
}

func TestDriverCleanModuleExitsZero(t *testing.T) {
	code, out := runVet(t, "-C", "testdata/clean", "./...")
	if code != 0 {
		t.Fatalf("exit %d over clean module, want 0\n%s", code, out)
	}
}

func TestDriverJSONOutput(t *testing.T) {
	code, out := runVet(t, "-json", "-C", "testdata/broken", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) == 0 || diags[0].Analyzer != "mapiter" || diags[0].Line == 0 {
		t.Fatalf("unexpected diagnostics: %+v", diags)
	}
}

func TestDriverAnalyzerDisableFlag(t *testing.T) {
	// The seeded violation is mapiter's; disabling mapiter must clear it.
	code, out := runVet(t, "-mapiter=false", "-C", "testdata/broken", "./...")
	if code != 0 {
		t.Fatalf("exit %d with mapiter disabled, want 0\n%s", code, out)
	}
}
