// Package pkg is contract-clean: the driver must exit 0 over it.
package pkg

// Add is free of every vice the suite checks for.
func Add(a, b int) int {
	return a + b
}
