// Package optim seeds one deliberate contract violation: CI's negative
// check runs apollo-vet over this module and demands a nonzero exit.
package optim

// SumFloats accumulates in map order — the exact bug mapiter exists for.
func SumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
