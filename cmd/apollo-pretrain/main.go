// Command apollo-pretrain trains a proxy LLaMA-style model on the synthetic
// corpus with any optimizer in the zoo and reports validation perplexity.
//
// Usage:
//
//	apollo-pretrain -size 130M -optimizer APOLLO-Mini -steps 300
//	apollo-pretrain -size 60M -optimizer GaLore -rank 8 -lr 0.003
//	apollo-pretrain -size 60M -replicas 4 -workers 8   # data-parallel
//	apollo-pretrain -size 60M -replicas 4 -zero        # + sharded optimizer states
//	apollo-pretrain -size 60M -accum 4                 # gradient accumulation
//	apollo-pretrain -size 60M -save run.ckpt -ckpt-every 100   # periodic snapshots
//	apollo-pretrain -size 60M -resume run.ckpt -save run.ckpt  # continue a run
//
// -replicas N shards each batch across N model replicas with an exact
// all-reduce: the loss curve is bit-identical for every N (see
// internal/train/dp.go for the determinism contract). -zero additionally
// partitions the optimizer state across the replicas ZeRO-style — still
// bit-identical, but each replica holds only ~1/N of the state (see
// internal/zero). -accum k splits each fused-loop batch into k
// gradient-accumulation micro-batches. -workers sizes the shared tensor
// worker pool; it never changes results, only speed.
//
// -save writes bit-exact checkpoints (internal/ckpt): every -ckpt-every
// steps when set, and always once at the end of the run. -resume continues
// from a checkpoint — the flags must rebuild the same model and optimizer
// method, but the ZeRO world may differ: checkpoints store the canonical
// unsharded state layout, so a `-replicas 3 -zero` snapshot resumes under
// `-replicas 4 -zero`, plain DP, or the fused loop, reproducing the
// uninterrupted run float-for-float (see internal/train's
// TestCheckpointResumeParity / TestElasticReshardParity).
//
// Every run also leaves a ledger entry under -runs DIR (default "runs";
// empty disables): runs/<id>/manifest.json records the full configuration,
// host, and outcome; steps.jsonl holds the per-step series; alerts.jsonl
// any training-health alerts. The manifest is finalized even when the run
// fails, panics, or is interrupted, so the ledger never lies about what
// happened. A training-health watchdog rides along: NaN/Inf loss or
// gradient norm, loss spikes above -spike-factor × the trailing-window
// median, and stalled steps all raise alerts; -halt-on-divergence
// additionally aborts the run at the offending step (exit code 3). The
// ledger and watchdog only observe values the loop already computes —
// results are bit-identical with or without them. Inspect entries with
// the apollo-runs command (list/show/diff/gc/watch).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"apollo/internal/bench"
	"apollo/internal/ckpt"
	"apollo/internal/memmodel"
	"apollo/internal/obs"
	"apollo/internal/obs/memprof"
	"apollo/internal/obs/runlog"
	"apollo/internal/optim"
	rt "apollo/internal/runtime"
	"apollo/internal/train"
	"apollo/internal/zero"
)

func main() {
	var (
		size     = flag.String("size", "60M", "proxy size: 60M 130M 350M 1B 7B")
		method   = flag.String("optimizer", "APOLLO", "optimizer name (see README)")
		steps    = flag.Int("steps", 0, "training steps (0 = proxy default)")
		batch    = flag.Int("batch", 0, "batch size (0 = proxy default)")
		seq      = flag.Int("seq", 0, "sequence length (0 = proxy default)")
		rank     = flag.Int("rank", 0, "low-rank dimension (0 = dim/4)")
		lr       = flag.Float64("lr", 0, "peak learning rate (0 = proxy default)")
		seed     = flag.Uint64("seed", 1, "run seed")
		replicas = flag.Int("replicas", 0, "data-parallel replicas (0 = classic fused loop)")
		zeroOpt  = flag.Bool("zero", false, "shard optimizer states across the replicas (requires -replicas)")
		accum    = flag.Int("accum", 0, "gradient-accumulation micro-batches per step (fused loop)")
		workers  = flag.Int("workers", 0, "tensor worker pool size (0 = GOMAXPROCS)")
		save     = flag.String("save", "", "checkpoint file to write (periodically with -ckpt-every, always at the end)")
		ckptEach = flag.Int("ckpt-every", 0, "steps between periodic checkpoint saves (0 = only final)")
		resume   = flag.String("resume", "", "checkpoint file to resume from")
		telem    = flag.String("telemetry", "", "stream per-step phase timings as JSONL to this file (timing only; never changes results)")
		runsRoot = flag.String("runs", "runs", "run-ledger root directory (empty disables the ledger)")
		runID    = flag.String("run-id", "", "ledger entry name (default: minted from timestamp+size+optimizer)")
		haltDiv  = flag.Bool("halt-on-divergence", false, "abort the run when the watchdog sees NaN/Inf or a loss spike (exit 3)")
		spikeF   = flag.Float64("spike-factor", 0, "watchdog: alert when loss exceeds this × trailing median (0 = default 3)")
		wdWindow = flag.Int("watchdog-window", 0, "watchdog: trailing median window in steps (0 = default 32)")
		memEvery = flag.Int("mem-every", 1, "memory-timeline sampling stride in steps (0 disables; needs a run ledger)")
		memHW    = flag.Int64("mem-highwater", 0, "heap high-water mark in bytes: crossing it captures a heap profile into the run dir (0 disables)")
	)
	flag.Parse()

	// The ledger entry for this run. Created after flag validation; every
	// exit path below finalizes it (Finalize is idempotent and nil-safe) so
	// failed, panicked, and interrupted runs still leave honest manifests.
	var ledger *runlog.Run
	fail := func(v ...any) {
		fmt.Fprintln(os.Stderr, v...)
		obs.CountWriteError(ledger.Finalize(runlog.StatusFailed, runlog.Final{Error: strings.TrimSpace(fmt.Sprintln(v...))}))
		os.Exit(1)
	}
	defer func() {
		if p := recover(); p != nil {
			obs.CountWriteError(ledger.Finalize(runlog.StatusPanic, runlog.Final{Error: fmt.Sprint(p)}))
			panic(p)
		}
	}()

	if *zeroOpt && *replicas < 1 {
		fail("-zero requires -replicas N with N ≥ 1")
	}
	if *ckptEach > 0 && *save == "" {
		fail("-ckpt-every requires -save PATH")
	}

	if *workers > 0 {
		rt.SetWorkers(*workers)
	}

	proxy, err := bench.ProxyByName(*size)
	if err != nil {
		fail(err)
	}
	if *steps > 0 {
		proxy.Steps = *steps
	}
	if *batch > 0 {
		proxy.Batch = *batch
	}
	if *seq > 0 {
		proxy.Seq = *seq
	}
	if *lr > 0 {
		proxy.LR = *lr
	}
	r := *rank
	if r <= 0 {
		r = proxy.DefaultRank()
	}

	opt, err := bench.BuildOptimizer(*method, proxy.LR, r, *seed)
	if err != nil {
		fail(err)
	}
	methodName := opt.Name() // canonical name before any ZeRO wrapping
	if *zeroOpt {
		opt = zero.NewSharded(func() optim.Optimizer {
			o, err := bench.BuildOptimizer(*method, proxy.LR, r, *seed)
			if err != nil {
				fail(err)
			}
			return o
		}, *replicas)
	}
	corpus, err := bench.NewCorpus(*seed + 17)
	if err != nil {
		fail(err)
	}
	model := proxy.NewProxyModel(*seed + 33)
	fmt.Printf("pretraining proxy-%s (%d params) with %s, rank %d, lr %g, %d steps, %d workers\n",
		proxy.Name, model.Params().NumParams(), opt.Name(), r, proxy.LR, proxy.Steps, rt.Workers())

	if *runsRoot != "" {
		id := *runID
		if id == "" {
			id = runlog.NewID(proxy.Name, opt.Name())
		}
		ledger, err = runlog.Create(*runsRoot, runlog.Manifest{
			ID:      id,
			Command: "apollo-pretrain",
			Config: map[string]any{
				"size": proxy.Name, "steps": proxy.Steps, "batch": proxy.Batch,
				"seq": proxy.Seq, "rank": r, "lr": proxy.LR,
				"accum": *accum, "workers": rt.Workers(),
				"save": *save, "ckpt_every": *ckptEach, "resume": *resume,
			},
			Optimizer: opt.Name(),
			Seed:      *seed,
			Replicas:  *replicas,
			ZeRO:      *zeroOpt,
		})
		if err != nil {
			fail("run ledger:", err)
		}
		fmt.Printf("run ledger: %s\n", ledger.Dir())
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sigc
			obs.CountWriteError(ledger.Finalize(runlog.StatusInterrupted, runlog.Final{Error: "signal: " + s.String()}))
			os.Exit(130)
		}()
	}

	// Live memory accounting rides on the ledger: the timeline lands next to
	// steps.jsonl and heap profiles land in the run dir. The component ledger
	// is fed by the training loop; the analytic memmodel prediction for the
	// optimizer state is attached here so every sample carries its own
	// measured-vs-predicted delta. Methods without a memmodel row (plain
	// SGD-family baselines) just record measurements without a prediction.
	var mp *memprof.Profiler
	if ledger != nil && *memEvery > 0 {
		mp = memprof.New(memprof.Config{
			Out:         ledger.MemWriter(),
			SampleEvery: *memEvery,
			HighWater:   *memHW,
			ProfileDir:  ledger.Dir(),
		})
		if mm, err := memmodel.MethodByName(methodName); err == nil {
			shapes := bench.ShapesOf(model.Params().List())
			predicted := memmodel.StateElems(shapes, mm, r) * memmodel.BytesFP32
			if *zeroOpt {
				// ZeRO partitions the same state across the world —
				// the ShardedOptimizerStateBytes rule, per shard.
				for s := 0; s < *replicas; s++ {
					mp.Predict(memprof.ShardComponent(s), predicted/float64(*replicas))
				}
			} else {
				mp.Predict(memprof.CompOptimizerState, predicted)
			}
		}
	}

	startStep := 0
	if *resume != "" {
		st, err := ckpt.LoadFile(*resume)
		if err != nil {
			fail(err)
		}
		if err := ckpt.Restore(st, model.Params().List(), opt, corpus); err != nil {
			fail(err)
		}
		startStep = st.Step
		if startStep >= proxy.Steps {
			fail(fmt.Sprintf("checkpoint is at step %d, run ends at %d — nothing to do", startStep, proxy.Steps))
		}
		fmt.Printf("resumed %s from %s at step %d/%d\n", st.Optimizer, *resume, startStep, proxy.Steps)
	}

	pcfg := train.PretrainConfig{
		Batch: proxy.Batch, Seq: proxy.Seq, Steps: proxy.Steps,
		EvalEvery: maxInt(1, proxy.Steps/10), EvalBatches: 4,
		Schedule:  optim.NewWarmupCosine(proxy.LR, proxy.Steps),
		Accum:     *accum,
		CkptEvery: *ckptEach, CkptPath: *save,
		StartStep: startStep,
		MemProf:   mp,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	// Step events go to the ledger, the -telemetry file, or both; the
	// watchdog rides along whenever a ledger exists or halting is requested.
	var stepSinks []io.Writer
	if ledger != nil {
		stepSinks = append(stepSinks, ledger.StepsWriter())
	}
	if *telem != "" {
		f, err := os.Create(*telem)
		if err != nil {
			fail(err)
		}
		// Telemetry flush failures must surface: count the close error into
		// apollo_obs_write_errors_total instead of dropping it.
		defer func() { obs.CountWriteError(f.Close()) }()
		stepSinks = append(stepSinks, f)
		fmt.Printf("telemetry: per-step phase timings → %s\n", *telem)
	}
	switch len(stepSinks) {
	case 0:
	case 1:
		pcfg.Telemetry = obs.NewTrainRecorder(stepSinks[0])
	default:
		pcfg.Telemetry = obs.NewTrainRecorder(io.MultiWriter(stepSinks...))
	}
	if ledger != nil || *haltDiv {
		pcfg.Watchdog = runlog.NewWatchdog(runlog.WatchdogConfig{
			Window:      *wdWindow,
			SpikeFactor: *spikeF,
			Halt:        *haltDiv,
			Emit: func(ev runlog.AlertEvent) {
				fmt.Fprintf(os.Stderr, "watchdog: step %d: %s (loss %g, median %g)\n",
					ev.Step, ev.Kind, ev.Loss, ev.Median)
				ledger.Alert(ev)
				// Flight recorder: a health alert is exactly the moment a
				// heap snapshot is worth its disk — capture one (bounded by
				// the profiler's MaxProfiles cap).
				if path := mp.CaptureHeapProfile("watchdog-" + ev.Kind); path != "" {
					fmt.Fprintf(os.Stderr, "watchdog: heap profile → %s\n", path)
				}
			},
		})
	}

	var res train.Result
	if *replicas > 0 {
		mode := "data-parallel"
		if *zeroOpt {
			mode = "data-parallel + ZeRO-sharded optimizer states"
		}
		fmt.Printf("%s: %d replicas sharding the global batch of %d\n", mode, *replicas, proxy.Batch)
		res = train.DPPretrain(model, opt, corpus, train.DPConfig{PretrainConfig: pcfg, Replicas: *replicas})
	} else {
		if *accum > 1 {
			fmt.Printf("gradient accumulation: %d micro-batches per step\n", *accum)
		}
		res = train.Pretrain(model, opt, corpus, pcfg)
	}

	fin := runlog.Final{
		Steps:           res.Steps,
		FinalPPL:        res.FinalValPPL,
		StepWallSeconds: res.StepWallSeconds,
		PhaseSeconds:    res.PhaseSeconds,
	}
	if n := len(res.Series); n > 0 {
		fin.FinalLoss = res.Series[n-1].ValLoss
	}
	if res.Halted {
		fin.Error = fmt.Sprintf("watchdog halt at step %d: %s", res.HaltStep, res.HaltReason)
		obs.CountWriteError(ledger.Finalize(runlog.StatusHalted, fin))
		fmt.Fprintf(os.Stderr, "halted: %s\n", fin.Error)
		os.Exit(3)
	}

	// The periodic path already wrote this exact snapshot when the last
	// step hit the -ckpt-every boundary; skip the redundant capture+write.
	finalAlreadySaved := *ckptEach > 0 && proxy.Steps%*ckptEach == 0
	if *save != "" && !finalAlreadySaved {
		st, err := ckpt.Capture(proxy.Steps, model.Params().List(), opt, corpus)
		if err == nil {
			err = ckpt.SaveFile(*save, st)
		}
		if err != nil {
			fail("final checkpoint:", err)
		}
		fmt.Printf("final checkpoint → %s\n", *save)
	}
	if peak := mp.Peak(); peak.TotalBytes > 0 {
		fmt.Printf("memory peak: ledger %s (heap in-use %s) at step %d — timeline in %s\n",
			train.FormatBytes(peak.TotalBytes), train.FormatBytes(int64(peak.HeapInuse)),
			peak.Step, runlog.MemFile)
	}
	if err := ledger.Finalize(runlog.StatusOK, fin); err != nil {
		// The run succeeded but its ledger entry may be torn — say so.
		fmt.Fprintf(os.Stderr, "warning: run ledger finalize: %v\n", obs.CountWriteError(err))
	}
	fmt.Printf("\nfinal: %s\n", res.String())
	if res.PhaseSeconds != nil {
		fmt.Printf("phase breakdown over %s of stepped wall time:\n",
			fmtSeconds(res.StepWallSeconds))
		for _, name := range obs.PhaseNames() {
			if s, ok := res.PhaseSeconds[name]; ok {
				fmt.Printf("  %-10s %10s  (%4.1f%%)\n", name, fmtSeconds(s), 100*s/res.StepWallSeconds)
			}
		}
	}
	if len(res.ReplicaStateBytes) > 0 {
		per := make([]string, len(res.ReplicaStateBytes))
		for i, b := range res.ReplicaStateBytes {
			per[i] = train.FormatBytes(b)
		}
		fmt.Printf("per-replica optimizer states: [%s] (aggregate %s)\n",
			strings.Join(per, " "), train.FormatBytes(res.StateBytes))
	}
}

// fmtSeconds prints a duration in seconds at millisecond resolution.
func fmtSeconds(s float64) string { return fmt.Sprintf("%.3fs", s) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
