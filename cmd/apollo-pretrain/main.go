// Command apollo-pretrain trains a proxy LLaMA-style model on the synthetic
// corpus with any optimizer in the zoo and reports validation perplexity.
//
// Usage:
//
//	apollo-pretrain -size 130M -optimizer APOLLO-Mini -steps 300
//	apollo-pretrain -size 60M -optimizer GaLore -rank 8 -lr 0.003
//	apollo-pretrain -size 60M -replicas 4 -workers 8   # data-parallel
//	apollo-pretrain -size 60M -replicas 4 -zero        # + sharded optimizer states
//	apollo-pretrain -size 60M -accum 4                 # gradient accumulation
//	apollo-pretrain -size 60M -save run.ckpt -ckpt-every 100   # periodic snapshots
//	apollo-pretrain -size 60M -resume run.ckpt -save run.ckpt  # continue a run
//
// -replicas N shards each batch across N model replicas with an exact
// all-reduce: the loss curve is bit-identical for every N (see
// internal/train/dp.go for the determinism contract). -zero additionally
// partitions the optimizer state across the replicas ZeRO-style — still
// bit-identical, but each replica holds only ~1/N of the state (see
// internal/zero). -accum k splits each fused-loop batch into k
// gradient-accumulation micro-batches. -workers sizes the shared tensor
// worker pool; it never changes results, only speed.
//
// -save writes bit-exact checkpoints (internal/ckpt): every -ckpt-every
// steps when set, and always once at the end of the run. -resume continues
// from a checkpoint — the flags must rebuild the same model and optimizer
// method, but the ZeRO world may differ: checkpoints store the canonical
// unsharded state layout, so a `-replicas 3 -zero` snapshot resumes under
// `-replicas 4 -zero`, plain DP, or the fused loop, reproducing the
// uninterrupted run float-for-float (see internal/train's
// TestCheckpointResumeParity / TestElasticReshardParity).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"apollo/internal/bench"
	"apollo/internal/ckpt"
	"apollo/internal/obs"
	"apollo/internal/optim"
	rt "apollo/internal/runtime"
	"apollo/internal/train"
	"apollo/internal/zero"
)

func main() {
	var (
		size     = flag.String("size", "60M", "proxy size: 60M 130M 350M 1B 7B")
		method   = flag.String("optimizer", "APOLLO", "optimizer name (see README)")
		steps    = flag.Int("steps", 0, "training steps (0 = proxy default)")
		batch    = flag.Int("batch", 0, "batch size (0 = proxy default)")
		seq      = flag.Int("seq", 0, "sequence length (0 = proxy default)")
		rank     = flag.Int("rank", 0, "low-rank dimension (0 = dim/4)")
		lr       = flag.Float64("lr", 0, "peak learning rate (0 = proxy default)")
		seed     = flag.Uint64("seed", 1, "run seed")
		replicas = flag.Int("replicas", 0, "data-parallel replicas (0 = classic fused loop)")
		zeroOpt  = flag.Bool("zero", false, "shard optimizer states across the replicas (requires -replicas)")
		accum    = flag.Int("accum", 0, "gradient-accumulation micro-batches per step (fused loop)")
		workers  = flag.Int("workers", 0, "tensor worker pool size (0 = GOMAXPROCS)")
		save     = flag.String("save", "", "checkpoint file to write (periodically with -ckpt-every, always at the end)")
		ckptEach = flag.Int("ckpt-every", 0, "steps between periodic checkpoint saves (0 = only final)")
		resume   = flag.String("resume", "", "checkpoint file to resume from")
		telem    = flag.String("telemetry", "", "stream per-step phase timings as JSONL to this file (timing only; never changes results)")
	)
	flag.Parse()

	if *zeroOpt && *replicas < 1 {
		fmt.Fprintln(os.Stderr, "-zero requires -replicas N with N ≥ 1")
		os.Exit(1)
	}
	if *ckptEach > 0 && *save == "" {
		fmt.Fprintln(os.Stderr, "-ckpt-every requires -save PATH")
		os.Exit(1)
	}

	if *workers > 0 {
		rt.SetWorkers(*workers)
	}

	proxy, err := bench.ProxyByName(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *steps > 0 {
		proxy.Steps = *steps
	}
	if *batch > 0 {
		proxy.Batch = *batch
	}
	if *seq > 0 {
		proxy.Seq = *seq
	}
	if *lr > 0 {
		proxy.LR = *lr
	}
	r := *rank
	if r <= 0 {
		r = proxy.DefaultRank()
	}

	opt, err := bench.BuildOptimizer(*method, proxy.LR, r, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *zeroOpt {
		opt = zero.NewSharded(func() optim.Optimizer {
			o, err := bench.BuildOptimizer(*method, proxy.LR, r, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return o
		}, *replicas)
	}
	corpus, err := bench.NewCorpus(*seed + 17)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model := proxy.NewProxyModel(*seed + 33)
	fmt.Printf("pretraining proxy-%s (%d params) with %s, rank %d, lr %g, %d steps, %d workers\n",
		proxy.Name, model.Params().NumParams(), opt.Name(), r, proxy.LR, proxy.Steps, rt.Workers())

	startStep := 0
	if *resume != "" {
		st, err := ckpt.LoadFile(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ckpt.Restore(st, model.Params().List(), opt, corpus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		startStep = st.Step
		if startStep >= proxy.Steps {
			fmt.Fprintf(os.Stderr, "checkpoint is at step %d, run ends at %d — nothing to do\n", startStep, proxy.Steps)
			os.Exit(1)
		}
		fmt.Printf("resumed %s from %s at step %d/%d\n", st.Optimizer, *resume, startStep, proxy.Steps)
	}

	pcfg := train.PretrainConfig{
		Batch: proxy.Batch, Seq: proxy.Seq, Steps: proxy.Steps,
		EvalEvery: maxInt(1, proxy.Steps/10), EvalBatches: 4,
		Schedule:  optim.NewWarmupCosine(proxy.LR, proxy.Steps),
		Accum:     *accum,
		CkptEvery: *ckptEach, CkptPath: *save,
		StartStep: startStep,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *telem != "" {
		f, err := os.Create(*telem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		pcfg.Telemetry = obs.NewTrainRecorder(f)
		fmt.Printf("telemetry: per-step phase timings → %s\n", *telem)
	}
	var res train.Result
	if *replicas > 0 {
		mode := "data-parallel"
		if *zeroOpt {
			mode = "data-parallel + ZeRO-sharded optimizer states"
		}
		fmt.Printf("%s: %d replicas sharding the global batch of %d\n", mode, *replicas, proxy.Batch)
		res = train.DPPretrain(model, opt, corpus, train.DPConfig{PretrainConfig: pcfg, Replicas: *replicas})
	} else {
		if *accum > 1 {
			fmt.Printf("gradient accumulation: %d micro-batches per step\n", *accum)
		}
		res = train.Pretrain(model, opt, corpus, pcfg)
	}
	// The periodic path already wrote this exact snapshot when the last
	// step hit the -ckpt-every boundary; skip the redundant capture+write.
	finalAlreadySaved := *ckptEach > 0 && proxy.Steps%*ckptEach == 0
	if *save != "" && !finalAlreadySaved {
		st, err := ckpt.Capture(proxy.Steps, model.Params().List(), opt, corpus)
		if err == nil {
			err = ckpt.SaveFile(*save, st)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "final checkpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("final checkpoint → %s\n", *save)
	}
	fmt.Printf("\nfinal: %s\n", res.String())
	if res.PhaseSeconds != nil {
		fmt.Printf("phase breakdown over %s of stepped wall time:\n",
			fmtSeconds(res.StepWallSeconds))
		for _, name := range obs.PhaseNames() {
			if s, ok := res.PhaseSeconds[name]; ok {
				fmt.Printf("  %-10s %10s  (%4.1f%%)\n", name, fmtSeconds(s), 100*s/res.StepWallSeconds)
			}
		}
	}
	if len(res.ReplicaStateBytes) > 0 {
		per := make([]string, len(res.ReplicaStateBytes))
		for i, b := range res.ReplicaStateBytes {
			per[i] = train.FormatBytes(b)
		}
		fmt.Printf("per-replica optimizer states: [%s] (aggregate %s)\n",
			strings.Join(per, " "), train.FormatBytes(res.StateBytes))
	}
}

// fmtSeconds prints a duration in seconds at millisecond resolution.
func fmtSeconds(s float64) string { return fmt.Sprintf("%.3fs", s) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
